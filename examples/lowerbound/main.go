// Lower bound in action: the valency/adversary machinery — the library's
// most distinctive feature — driven through the public consensus facade.
//
// The paper's central result is that NO algorithm can contract faster
// than 1/3 per round when two agents communicate through the rooted
// graphs H0, H1, H2. This example makes that concrete: it races two
// algorithms (the optimal two-thirds rule and the midpoint rule) against
// the greedy valency-splitting adversary from the Theorem 1 proof and
// prints the certified floor δ(C_t) — the diameter of the set of limits
// still reachable — next to the proven 3^-t decay, streamed one round at
// a time from a session with the valency floor and greedy trace enabled.
//
// Run with: go run ./examples/lowerbound
package main

import (
	"context"
	"fmt"
	"math"

	"repro/consensus"
)

func main() {
	ctx := context.Background()
	solv, err := consensus.Solvability(ctx, "twoagent")
	if err != nil {
		panic(err)
	}
	fmt.Printf("model: %v\n", solv.Description)
	fmt.Printf("proven: every algorithm's contraction rate >= %.4f (%s)\n\n",
		solv.BoundRate, solv.BoundTheorem)

	for _, algorithm := range []string{"twothirds", "midpoint"} {
		session, err := consensus.New(
			consensus.WithModel("twoagent"),
			consensus.WithAlgorithm(algorithm),
			consensus.WithAdversary("greedy"),
			consensus.WithDepth(5),
			consensus.WithInputs(0, 1),
			consensus.WithRounds(6),
			consensus.WithValencyFloor(),
			consensus.WithGreedyTrace(),
		)
		if err != nil {
			panic(err)
		}
		fmt.Printf("--- %s vs the greedy valency-splitting adversary ---\n", session.Algorithm())
		fmt.Printf("%3s  %-6s  %-12s  %-12s\n", "t", "graph", "δ(C_t) floor", "3^-t")
		var last consensus.Snapshot
		for snap, err := range session.Rounds(ctx) {
			if err != nil {
				panic(err)
			}
			if snap.Round == 0 {
				fmt.Printf("%3d  %-6s  %-12.6f  %-12.6f\n", 0, "-", snap.Floor, 1.0)
				continue
			}
			fmt.Printf("%3d  H%-5d  %-12.6f  %-12.6f\n",
				snap.Round, snap.ModelIndex, snap.Floor, math.Pow(1.0/3.0, float64(snap.Round)))
			last = snap
		}
		fmt.Printf("adversary's last branching: successor valencies %v | %v | %v\n\n",
			interval(last.Successors[0]), interval(last.Successors[1]), interval(last.Successors[2]))
	}

	fmt.Println("two-thirds decays at exactly the 1/3 floor — it is optimal (Algorithm 1).")
	fmt.Println("midpoint is held at 1/2 per round — strictly suboptimal at n = 2, even")
	fmt.Println("though the same rule is optimal for n >= 3 (Theorem 2). The floor itself")
	fmt.Println("is certified: every interval endpoint above is a genuinely reachable limit.")
}

// interval renders a certified valency interval.
func interval(iv consensus.Interval) string {
	if iv.Lo > iv.Hi {
		return "∅"
	}
	return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi)
}
