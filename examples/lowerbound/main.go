// Lower bound in action: the valency/adversary API — the library's most
// distinctive feature — used directly.
//
// The paper's central result is that NO algorithm can contract faster
// than 1/3 per round when two agents communicate through the rooted
// graphs H0, H1, H2. This example makes that concrete: it races two
// algorithms (the optimal two-thirds rule and the midpoint rule) against
// the greedy valency-splitting adversary from the Theorem 1 proof and
// prints the certified floor δ(C_t) — the diameter of the set of limits
// still reachable — next to the proven 3^-t decay.
//
// Run with: go run ./examples/lowerbound
package main

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/valency"
)

func main() {
	m := model.TwoAgent()
	bound := m.ContractionLowerBound()
	fmt.Printf("model: %v\n", m)
	fmt.Printf("proven: every algorithm's contraction rate >= %.4f (%s)\n\n", bound.Rate, bound.Theorem)

	for _, alg := range []core.Algorithm{algorithms.TwoThirds{}, algorithms.Midpoint{}} {
		fmt.Printf("--- %s vs the greedy valency-splitting adversary ---\n", alg.Name())
		est := valency.NewEstimator(m, 5, alg.Convex())
		var decisions []adversary.Decision
		adv := &adversary.Greedy{Est: est, Trace: &decisions}

		c := core.NewConfig(alg, []float64{0, 1})
		fmt.Printf("%3s  %-6s  %-12s  %-12s\n", "t", "graph", "δ(C_t) floor", "3^-t")
		fmt.Printf("%3d  %-6s  %-12.6f  %-12.6f\n", 0, "-", est.DeltaLower(c), 1.0)
		for round := 1; round <= 6; round++ {
			g := adv.Next(round, c)
			c = c.Step(g)
			fmt.Printf("%3d  H%-5d  %-12.6f  %-12.6f\n",
				round, m.Index(g), est.DeltaLower(c), math.Pow(1.0/3.0, float64(round)))
		}
		last := decisions[len(decisions)-1]
		fmt.Printf("adversary's last branching: successor valencies %v | %v | %v\n\n",
			last.Inner[0], last.Inner[1], last.Inner[2])
	}

	fmt.Println("two-thirds decays at exactly the 1/3 floor — it is optimal (Algorithm 1).")
	fmt.Println("midpoint is held at 1/2 per round — strictly suboptimal at n = 2, even")
	fmt.Println("though the same rule is optimal for n >= 3 (Theorem 2). The floor itself")
	fmt.Println("is certified: every interval endpoint above is a genuinely reachable limit.")
}
