// Clock synchronization: asymptotic consensus on clock corrections, one
// of the paper's motivating applications (Li & Rus 2006 citation in the
// introduction).
//
// Each sensor node owns a hardware clock with a fixed drift rate. Once
// per second the nodes exchange current clock readings over a lossy radio
// (a dynamic non-split communication graph: every two nodes always share
// some common neighbor they both hear, e.g. a base station, but links
// otherwise come and go) and apply the midpoint algorithm to a software
// correction offset. Each radio round is a one-round consensus session on
// the current logical readings — the facade's session API doubles as the
// per-round update rule. The logical clocks — hardware plus correction —
// converge toward a common time base even though the radio topology never
// stabilizes; the residual spread is bounded by the drift accumulated in
// a single round, a direct consequence of midpoint's 1/2 contraction.
//
// Run with: go run ./examples/clocksync
package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro/consensus"
)

const n = 6

func main() {
	rng := rand.New(rand.NewSource(99))

	// Hardware clocks: offset (seconds) and drift (seconds per second).
	offsets := make([]float64, n)
	drifts := make([]float64, n)
	for i := range offsets {
		offsets[i] = rng.Float64()*2 - 1         // up to ±1 s initial skew
		drifts[i] = (rng.Float64()*2 - 1) * 1e-3 // up to ±1 ms/s drift
	}

	hw := func(i int, t float64) float64 { return t + offsets[i] + drifts[i]*t }

	// Software corrections, adjusted by one midpoint round per second.
	corrections := make([]float64, n)

	logical := func(t float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = hw(i, t) + corrections[i]
		}
		return out
	}

	fmt.Println("sec   logical-clock spread (s)   communication graph")
	for sec := 0; sec <= 20; sec++ {
		t := float64(sec)
		readings := logical(t)
		fmt.Printf("%3d   %24.6f", sec, consensus.Diameter(readings))

		// Radio round: one midpoint round on the logical readings under a
		// fresh random non-split graph (all nodes hear some common
		// witness, links otherwise random). The per-second seed makes each
		// session draw a different graph.
		session, err := consensus.New(
			consensus.WithAlgorithm("midpoint"),
			consensus.WithAdversary("randomnonsplit:0.3"),
			consensus.WithSeed(int64(100+sec)),
			consensus.WithInputs(readings...),
			consensus.WithRounds(1),
		)
		if err != nil {
			panic(err)
		}
		var synced []float64
		for snap, err := range session.Rounds(context.Background()) {
			if err != nil {
				panic(err)
			}
			if snap.Round == 1 {
				fmt.Printf("   %v\n", snap.Graph)
				synced = snap.Outputs
			}
		}

		// Node i adopted the midpoint of the logical clocks it heard,
		// i.e. adjusts its correction by (midpoint - own logical clock).
		for i := 0; i < n; i++ {
			corrections[i] += synced[i] - readings[i]
		}
	}

	final := logical(21)
	fmt.Printf("\nfinal spread: %.6f s — bounded by the drift accumulated per round,\n",
		consensus.Diameter(final))
	fmt.Println("because midpoint halves the spread each round while drift adds at most")
	fmt.Println("2 ms/round: steady state ≈ 2·drift, independent of the initial skew.")
}
