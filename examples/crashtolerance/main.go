// Crash tolerance: sensor fusion in an asynchronous system where nodes
// may crash mid-broadcast (Section 8 of the paper).
//
// Nine sensors measure the same physical quantity with noise and must
// agree on a fused estimate despite up to f = 3 crashes and arbitrary
// message delays. The example runs two strategies side by side through
// consensus.AsyncRun:
//
//   - the round-based Fekete-style selected-mean algorithm, which is
//     limited to contraction 1/(⌈n/f⌉+1) per round by Theorem 6, and
//   - MinRelay, a non-round-based algorithm that gets all survivors to an
//     identical estimate by time f+1 (Theorem 7) — the "price of rounds"
//     gap in action.
//
// Run with: go run ./examples/crashtolerance
package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro/consensus"
)

func main() {
	const (
		n = 9
		f = 3
	)
	rng := rand.New(rand.NewSource(2026))
	truth := 21.5
	readings := make([]float64, n)
	for i := range readings {
		readings[i] = truth + rng.NormFloat64()*0.8
	}
	fmt.Printf("true value %.2f, noisy readings: %.2f\n\n", truth, readings)

	// The crash budget is f = 3; two crashes actually occur (fewer crashes
	// than the budget keeps the survivor count above the quorum size, so
	// different agents keep hearing different quorums — the interesting
	// regime for round-based algorithms). Both strategies face the same
	// crash schedule and the same delay distribution.
	spec := consensus.AsyncSpec{
		N:      n,
		F:      f,
		Rounds: 12,
		Inputs: readings,
		Crashes: []consensus.AsyncCrash{
			{Agent: 1, AfterBroadcasts: 1, Recipients: []int{2, 3}},
			{Agent: 7, AfterBroadcasts: 0, Recipients: []int{0, 8}},
		},
		DelaySeed:  5,
		DelayFloor: 0.7,
		Horizon:    8,
	}

	ctx := context.Background()

	// Strategy 1: round-based selected mean (Fekete-style baseline).
	rbSpec := spec
	rbSpec.Process = "selectedmean"
	rb, err := consensus.AsyncRun(ctx, rbSpec)
	if err != nil {
		panic(err)
	}

	// Strategy 2: MinRelay (non-round-based, contraction 0).
	mrSpec := spec
	mrSpec.Process = "minrelay"
	mr, err := consensus.AsyncRun(ctx, mrSpec)
	if err != nil {
		panic(err)
	}

	fmt.Println("time   spread(round-based)   spread(MinRelay)")
	for i := range rb.Samples {
		fmt.Printf("%4.1f   %19.3g   %16.3g\n",
			rb.Samples[i].Time, rb.Samples[i].Diameter, mr.Samples[i].Diameter)
	}

	fmt.Printf("\nMinRelay fused value: %.4f — exact agreement by time f+1 = %d,\n",
		mr.FinalOutputs[0], f+1)
	fmt.Println("guaranteed under EVERY delay and crash schedule (Theorem 7).")
	fmt.Println("The round-based algorithm also converged here, but only because the")
	fmt.Println("random delays were benign: against worst-case scheduling its per-round")
	fmt.Println("contraction is capped at 1/(⌈n/f⌉+1) (Theorem 6) — run")
	fmt.Println("  go run ./cmd/asyncsim -proc minrelay -worstcase")
	fmt.Println("  go run ./cmd/paperbench -run T1/asyncround")
	fmt.Println("to see the adversarial gap.")
}
