// Opinion dynamics: asymptotic consensus as a model of opinion formation
// (Hegselmann-Krause style motivation from the paper's introduction).
//
// A panel of agents holds opinions in [0, 100]. Each day, who-listens-to-
// whom changes arbitrarily — the only guarantee is that the influence
// graph stays rooted (some agent can indirectly reach everyone). The
// example contrasts plain averaging with the amortized midpoint algorithm
// through two consensus sessions sharing the same seeded random-rooted
// pattern, and shows both converge, with the amortized midpoint
// guaranteeing a halving of disagreement every n-1 days.
//
// Run with: go run ./examples/opinion
package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/consensus"
)

func main() {
	const n = 8
	const days = 35
	rng := rand.New(rand.NewSource(7))
	opinions := make([]float64, n)
	for i := range opinions {
		opinions[i] = rng.Float64() * 100
	}
	fmt.Printf("initial opinions: %.1f\n\n", opinions)

	// The influence pattern: a fresh random rooted graph every day, sparse
	// (p = 0.2) so most agents hear only a couple of others. Both sessions
	// use the same adversary seed, i.e. the same sequence of graphs — one
	// physical social process, two update rules.
	run := func(algorithm string) *consensus.Result {
		session, err := consensus.New(
			consensus.WithAlgorithm(algorithm),
			consensus.WithAdversary("randomrooted:0.2"),
			consensus.WithSeed(1),
			consensus.WithInputs(opinions...),
			consensus.WithRounds(days),
		)
		if err != nil {
			panic(err)
		}
		res, err := session.Run(context.Background())
		if err != nil {
			panic(err)
		}
		return res
	}
	mean := run("mean")
	amid := run("amortized")

	fmt.Println("day   disagreement(mean)   disagreement(amortized-midpoint)")
	for t := 0; t <= days; t += 7 {
		fmt.Printf("%3d   %18.4f   %32.4f\n", t, mean.DiameterAt(t), amid.DiameterAt(t))
	}

	fmt.Printf("\nmean final consensus:               %.4f\n", mean.FinalOutputs()[0])
	fmt.Printf("amortized midpoint final consensus: %.4f\n", amid.FinalOutputs()[0])
	fmt.Printf("\nvalidity (opinions stay in the initial hull): mean=%v amortized=%v\n",
		mean.ValidityHolds(1e-9), amid.ValidityHolds(1e-9))
	fmt.Printf("amortized midpoint guarantee: disagreement halves every n-1 = %d days,\n", n-1)
	fmt.Printf("i.e. per-day contraction at most (1/2)^(1/%d) = %.4f — optimal up to one day\n",
		n-1, math.Pow(0.5, 1/float64(n-1)))
}
