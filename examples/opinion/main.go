// Opinion dynamics: asymptotic consensus as a model of opinion formation
// (Hegselmann-Krause style motivation from the paper's introduction).
//
// A panel of agents holds opinions in [0, 100]. Each day, who-listens-to-
// whom changes arbitrarily — the only guarantee is that the influence
// graph stays rooted (some agent can indirectly reach everyone). The
// example contrasts plain averaging with the amortized midpoint algorithm
// and shows both converge, with the amortized midpoint guaranteeing a
// halving of disagreement every n-1 days.
//
// Run with: go run ./examples/opinion
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	const n = 8
	rng := rand.New(rand.NewSource(7))
	opinions := make([]float64, n)
	for i := range opinions {
		opinions[i] = rng.Float64() * 100
	}
	fmt.Printf("initial opinions: %.1f\n\n", opinions)

	// The influence pattern: a fresh random rooted graph every day. Sparse
	// (p = 0.2), so most agents hear only a couple of others.
	pattern := func(seed int64) core.PatternSource {
		r := rand.New(rand.NewSource(seed))
		return core.Func(func(int, *core.Config) graph.Graph {
			return graph.RandomRooted(r, n, 0.2)
		})
	}

	days := 35
	mean := core.Run(algorithms.Mean{}, opinions, pattern(1), days)
	amid := core.Run(algorithms.AmortizedMidpoint{}, opinions, pattern(1), days)

	fmt.Println("day   disagreement(mean)   disagreement(amortized-midpoint)")
	for t := 0; t <= days; t += 7 {
		fmt.Printf("%3d   %18.4f   %32.4f\n", t, mean.DiameterAt(t), amid.DiameterAt(t))
	}

	fmt.Printf("\nmean final consensus:               %.4f\n", mean.Outputs[days][0])
	fmt.Printf("amortized midpoint final consensus: %.4f\n", amid.Outputs[days][0])
	fmt.Printf("\nvalidity (opinions stay in the initial hull): mean=%v amortized=%v\n",
		mean.ValidityHolds(1e-9), amid.ValidityHolds(1e-9))
	fmt.Printf("amortized midpoint guarantee: disagreement halves every n-1 = %d days,\n", n-1)
	fmt.Printf("i.e. per-day contraction at most (1/2)^(1/%d) = %.4f — optimal up to one day\n",
		n-1, math.Pow(0.5, 1/float64(n-1)))
}
