// Rendezvous in the plane: the multi-agent rendezvous problem (Lin,
// Morse, Anderson — cited in the paper's introduction) solved with the
// midpoint algorithm run coordinate-wise via consensus.VectorRun.
//
// A swarm of robots must gather at a single point, but each robot only
// sees a changing subset of the others (its communication in-neighbors).
// As long as every round's visibility graph is non-split, running the
// one-dimensional midpoint algorithm independently per coordinate drives
// all positions to a common point inside the bounding box of the starting
// positions, halving the bounding box every round.
//
// Run with: go run ./examples/rendezvous
package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro/consensus"
)

const n = 7

func main() {
	rng := rand.New(rand.NewSource(3))
	positions := make([][]float64, n)
	for i := range positions {
		positions[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	fmt.Println("initial positions:")
	for i, p := range positions {
		fmt.Printf("  robot %d: (%.2f, %.2f)\n", i, p[0], p[1])
	}

	// The changing visibility pattern: a fresh random non-split graph per
	// round, shared by both coordinates (one physical radio round).
	res, err := consensus.VectorRun(context.Background(), consensus.VectorSpec{
		Algorithm: "midpoint",
		Adversary: "randomnonsplit:0.25",
		Seed:      17,
		Points:    positions,
		Rounds:    12,
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("\nround   swarm spread (max pairwise distance)")
	for t, d := range res.Diameters {
		fmt.Printf("%5d   %.6f\n", t, d)
	}

	final := res.Positions
	fmt.Printf("\nrendezvous point: (%.4f, %.4f)\n", final[0][0], final[0][1])

	// Validity, coordinate-wise: every robot ends inside the initial
	// bounding box.
	inBox := true
	for d := 0; d < 2; d++ {
		lo, hi := positions[0][d], positions[0][d]
		for _, p := range positions[1:] {
			if p[d] < lo {
				lo = p[d]
			}
			if p[d] > hi {
				hi = p[d]
			}
		}
		for _, p := range final {
			if p[d] < lo-1e-9 || p[d] > hi+1e-9 {
				inBox = false
			}
		}
	}
	fmt.Printf("all robots inside the initial bounding box: %v\n", inBox)
	fmt.Println("the bounding box halves every non-split round — the 2-D lift of the")
	fmt.Println("midpoint algorithm's optimal 1/2 contraction (paper, Theorem 2 + [9]).")
}
