// Rendezvous in the plane: the multi-agent rendezvous problem (Lin,
// Morse, Anderson — cited in the paper's introduction) solved with the
// midpoint algorithm run coordinate-wise via the vector runner.
//
// A swarm of robots must gather at a single point, but each robot only
// sees a changing subset of the others (its communication in-neighbors).
// As long as every round's visibility graph is non-split, running the
// one-dimensional midpoint algorithm independently per coordinate drives
// all positions to a common point inside the bounding box of the starting
// positions, halving the bounding box every round.
//
// Run with: go run ./examples/rendezvous
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/vector"
)

const n = 7

func main() {
	rng := rand.New(rand.NewSource(3))
	positions := make([]vector.Point, n)
	for i := range positions {
		positions[i] = vector.Point{rng.Float64() * 10, rng.Float64() * 10}
	}
	fmt.Println("initial positions:")
	for i, p := range positions {
		fmt.Printf("  robot %d: (%.2f, %.2f)\n", i, p[0], p[1])
	}
	lo, hi := vector.BoundingBox(positions)

	runner, err := vector.NewRunner(algorithms.Midpoint{}, positions)
	if err != nil {
		panic(err)
	}

	// The changing visibility pattern: a fresh random non-split graph per
	// round, shared by both coordinates (one physical radio round).
	patRng := rand.New(rand.NewSource(17))
	src := core.Func(func(int, *core.Config) graph.Graph {
		return graph.RandomNonSplit(patRng, n, 0.25)
	})

	fmt.Println("\nround   swarm spread (max pairwise distance)")
	fmt.Printf("%5d   %.6f\n", 0, runner.Diameter())
	const rounds = 12
	for t := 1; t <= rounds; t++ {
		runner.Run(src, 1)
		fmt.Printf("%5d   %.6f\n", t, runner.Diameter())
	}

	final := runner.Positions()
	fmt.Printf("\nrendezvous point: (%.4f, %.4f)\n", final[0][0], final[0][1])
	inBox := true
	for _, p := range final {
		if !vector.InBox(p, lo, hi, 1e-9) {
			inBox = false
		}
	}
	fmt.Printf("all robots inside the initial bounding box: %v\n", inBox)
	fmt.Println("the bounding box halves every non-split round — the 2-D lift of the")
	fmt.Println("midpoint algorithm's optimal 1/2 contraction (paper, Theorem 2 + [9]).")
}
