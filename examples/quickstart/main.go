// Quickstart: the smallest end-to-end tour of the library.
//
// It builds a dynamic network model, runs the midpoint algorithm under a
// random rooted communication pattern, and then asks the analysis
// machinery what contraction rate any algorithm could possibly achieve in
// that model.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

func main() {
	// 1. A dynamic network: every round, the adversary picks one of the
	// deaf(K4) graphs — K4 with one agent's ears removed.
	m := model.DeafModel(graph.Complete(4))
	fmt.Println("network model:", m)

	// 2. Run the midpoint algorithm (Algorithm 2 of the paper) from
	// scattered initial values under a random pattern from the model.
	inputs := []float64{0, 1, 0.2, 0.8}
	src := core.RandomFromModel{Model: m, Rng: rand.New(rand.NewSource(42))}
	trace := core.Run(algorithms.Midpoint{}, inputs, src, 12)

	fmt.Println("\nround  values                                    diameter")
	for t, ys := range trace.Outputs {
		fmt.Printf("%5d  %-40.4g  %.6f\n", t, ys, trace.DiameterAt(t))
	}

	// 3. What does the theory say about this model?
	bound := m.ContractionLowerBound()
	fmt.Printf("\nexact consensus solvable: %v\n", m.ExactConsensusSolvable())
	fmt.Printf("proven contraction lower bound: %.4g (%s)\n", bound.Rate, bound.Theorem)
	fmt.Printf("midpoint's measured per-round contraction: %.4g\n", trace.GeometricRate())
	fmt.Println("\nmidpoint contracts by exactly the proven optimum 1/2 in the worst")
	fmt.Println("case — that is the headline tightness result of the paper.")
}
