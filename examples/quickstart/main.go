// Quickstart: the smallest end-to-end tour of the public consensus API.
//
// It builds a dynamic network model, runs the midpoint algorithm under a
// random rooted communication pattern, and then asks the analysis
// machinery what contraction rate any algorithm could possibly achieve in
// that model — all through the consensus facade.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/consensus"
)

func main() {
	ctx := context.Background()

	// 1. A dynamic network: every round, the adversary picks one of the
	// deaf(K4) graphs — K4 with one agent's ears removed.
	solv, err := consensus.Solvability(ctx, "deaf:4")
	if err != nil {
		panic(err)
	}
	fmt.Println("network model:", solv.Description)

	// 2. Run the midpoint algorithm (Algorithm 2 of the paper) from
	// scattered initial values under a random pattern from the model.
	session, err := consensus.New(
		consensus.WithModel("deaf:4"),
		consensus.WithAlgorithm("midpoint"),
		consensus.WithAdversary("random"),
		consensus.WithSeed(42),
		consensus.WithInputs(0, 1, 0.2, 0.8),
		consensus.WithRounds(12),
	)
	if err != nil {
		panic(err)
	}
	res, err := session.Run(ctx)
	if err != nil {
		panic(err)
	}

	fmt.Println("\nround  values                                    diameter")
	for t := 0; t <= res.Rounds(); t++ {
		fmt.Printf("%5d  %-40.4g  %.6f\n", t, res.Outputs(t), res.DiameterAt(t))
	}

	// 3. What does the theory say about this model?
	fmt.Printf("\nexact consensus solvable: %v\n", solv.ExactConsensusSolvable)
	fmt.Printf("proven contraction lower bound: %.4g (%s)\n", solv.BoundRate, solv.BoundTheorem)
	fmt.Printf("midpoint's measured per-round contraction: %.4g\n", res.GeometricRate())
	fmt.Println("\nmidpoint contracts by exactly the proven optimum 1/2 in the worst")
	fmt.Println("case — that is the headline tightness result of the paper.")
}
