package core

import (
	"encoding/binary"
	"math"
)

// Fingerprinter is an optional Agent capability: agents that can
// serialize their complete behavioral state into a canonical byte string
// implement it to enable configuration memoization (see internal/valency's
// transposition table). Two agents of the same concrete type must produce
// equal fingerprints iff every future Broadcast/Deliver/Output behaves
// identically from the current state onward (given equal round numbers,
// which the Config fingerprint accounts for separately).
//
// Implementations should start with a distinct type tag byte so that
// states of different agent types can never collide, and then append the
// full state with fixed-width encodings (AppendFloat, AppendInt).
type Fingerprinter interface {
	// AppendFingerprint appends the canonical state encoding to dst and
	// returns the extended slice, in the manner of append. ok is false
	// when the agent cannot fingerprint itself after all (e.g. a wrapper
	// around a non-fingerprintable inner agent); the returned slice is
	// then meaningless.
	AppendFingerprint(dst []byte) (fp []byte, ok bool)
}

// AppendFloat appends the IEEE-754 bit pattern of v to dst. Using raw bits
// keeps fingerprints exact: distinct floats (including -0 vs +0) never
// merge, so memoized results are bit-identical to recomputation.
func AppendFloat(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendInt appends a fixed-width encoding of v to dst.
func AppendInt(dst []byte, v int) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

// AppendFingerprint appends a canonical fingerprint of the whole
// configuration — agent count, completed round, and every agent's state in
// index order — to dst. ok is false when some agent does not implement
// Fingerprinter; the returned slice is then meaningless and callers must
// skip memoization for this configuration.
//
// The round number is part of the key because agents may behave
// round-dependently (e.g. the amortized midpoint's phase counter).
func (c *Config) AppendFingerprint(dst []byte) (fp []byte, ok bool) {
	dst = AppendInt(dst, c.n)
	dst = AppendInt(dst, c.round)
	for _, a := range c.agents {
		f, can := a.(Fingerprinter)
		if !can {
			return dst, false
		}
		if dst, can = f.AppendFingerprint(dst); !can {
			return dst, false
		}
	}
	return dst, true
}

// Fingerprint returns the configuration fingerprint as a string key, or
// ok = false when some agent is not fingerprintable.
func (c *Config) Fingerprint() (key string, ok bool) {
	fp, ok := c.AppendFingerprint(nil)
	if !ok {
		return "", false
	}
	return string(fp), true
}
