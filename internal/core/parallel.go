package core

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// This file implements intra-step parallelism for BatchRunner: one
// round's work — the graph clusters of a StepEach round, contiguous
// run ranges within a large cluster, and (for fold-shardable steppers)
// contiguous segment ranges of one plan — is sharded into tasks and
// executed by a process-wide worker pool plus the coordinating
// goroutine itself.
//
// Determinism contract: a parallel step stores exactly the bytes the
// sequential step stores, at every parallelism level, on both
// backends. Three properties make worker scheduling unobservable:
//
//  1. Disjoint writes. A run-range task writes only its own runs' rows
//     of the back buffer (and hull slots); a segment-range task writes
//     only its own receivers' entries. No task reads another task's
//     writes — every input lives in the front buffer.
//  2. Scheduling-independent values. Each task's float operations are
//     the sequential stepper's operations on the same inputs. Worker
//     scratch (shadow fold arrays, output scratch) is fully rewritten
//     before any slot is read, so arena reuse across tasks, jobs, and
//     runners cannot leak state. Segment shards recompute any fold
//     whose canonical owner lies outside the shard from its mask —
//     bit-transparent because min/max folds are exact multiset
//     selections (the BatchStepper reassociation contract), which is
//     exactly why only FoldShardCapable steppers are segment-sharded.
//  3. A fixed join order. The coordinator waits for every task
//     (stepJob.wg) before the buffer swap, so the round's results are
//     complete and identical regardless of which worker ran what.
//
// The plan cache stays owned by the coordinating goroutine: lookups,
// admission, eviction, and recycling all happen before tasks launch,
// and workers only read the immutable segmentation of already-built
// plans — so the cache needs no lock at all (read-mostly by
// construction, rather than sharded).

// rawBatchPar encodes the process-wide default parallelism: 0 unset
// (sequential), -1 auto (GOMAXPROCS at resolve time), k >= 1 a pinned
// worker count.
var rawBatchPar atomic.Int32

func init() {
	if s, ok := os.LookupEnv("REPRO_BATCH_PARALLELISM"); ok {
		if s == "auto" {
			rawBatchPar.Store(-1)
			return
		}
		k, err := strconv.Atoi(s)
		if err != nil || k < 1 {
			// Fail fast, like REPRO_BACKEND: a typo silently falling back
			// to sequential stepping would make parallel gates vacuous.
			panic(fmt.Sprintf("core: invalid REPRO_BATCH_PARALLELISM %q (want auto or an integer >= 1)", s))
		}
		rawBatchPar.Store(int32(k))
	}
}

// DefaultBatchParallelism returns the process-wide default intra-step
// worker count inherited by runners without an explicit
// SetParallelism: the REPRO_BATCH_PARALLELISM environment variable
// ("auto" or an integer >= 1) or the last SetDefaultBatchParallelism,
// with auto resolving to GOMAXPROCS; 1 (sequential stepping) when
// never set.
func DefaultBatchParallelism() int {
	switch p := rawBatchPar.Load(); {
	case p > 0:
		return int(p)
	case p < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// SetDefaultBatchParallelism sets the process-wide default intra-step
// worker count: n >= 1 pins it (1 restores sequential stepping), n <= 0
// selects auto (GOMAXPROCS). It returns the previous resolved default
// so callers can restore it.
func SetDefaultBatchParallelism(n int) int {
	prev := DefaultBatchParallelism()
	if n >= 1 {
		rawBatchPar.Store(int32(n))
	} else {
		rawBatchPar.Store(-1)
	}
	return prev
}

// FoldShardCapable is an optional BatchStepper capability: a stepper
// whose StepDenseBatch honors StepPlan.SegRange — stepping only that
// segment range and recomputing any fold whose canonical owner lies
// before the shard shard-locally — may have its per-plan segment loop
// split across workers. Only steppers whose folds are exact multiset
// selections (min/max) can claim this: a shard boundary reassociates
// the fold, which is bit-transparent exactly for such folds and for
// nothing order-sensitive (sums must not claim it).
type FoldShardCapable interface {
	FoldShardable() bool
}

// maxStepWorkers caps the shared pool; worker counts past the largest
// real machine would only add parked goroutines.
const maxStepWorkers = 64

// minSegShard is the smallest segment-range shard worth creating:
// below it the shard-local refolds at the boundary outweigh the split.
const minSegShard = 8

// stepPool is the process-wide worker pool every BatchRunner fans its
// round tasks out on. One shared pool — instead of per-runner pools —
// bounds whole-process intra-step parallelism near the machine size
// even when many runners step concurrently (a sweep's tiles), costs
// only parked goroutines when idle, and frees runners from any
// lifecycle obligation: there is nothing to close. Each worker owns a
// private scratch arena, so concurrently stepping runners never share
// mutable state through the pool.
type stepPool struct {
	started atomic.Int32
	mu      sync.Mutex
	jobs    chan *stepJob
}

var sharedStepPool = stepPool{jobs: make(chan *stepJob, maxStepWorkers)}

// ensure grows the pool to at least n workers (capped). Workers are
// persistent; an idle pool is parked goroutines only.
func (p *stepPool) ensure(n int) {
	if n > maxStepWorkers {
		n = maxStepWorkers
	}
	if int(p.started.Load()) >= n {
		return
	}
	p.mu.Lock()
	for int(p.started.Load()) < n {
		p.started.Add(1)
		go p.work()
	}
	p.mu.Unlock()
}

// work is one pool worker: it helps whatever job it receives a token
// for until the job's task list is drained, then releases the token.
func (p *stepPool) work() {
	var a stepArena
	for j := range p.jobs {
		j.run(&a)
		j.wg.Done()
	}
}

// stepArena is one executor's private scratch: the shadow plan
// (task-local Runs/hull/fold state over a cluster's shared, read-only
// segmentation) and the output scratch for per-run hull scans. Arena
// contents never survive into results — every run rewrites the fold
// slots it reads — so arenas are freely reused across tasks, jobs, and
// runners.
type stepArena struct {
	shadow StepPlan
	out    []float64
}

// stepTask is one shard of a round. With a plan entry it is a cluster
// shard: the run subset runs stepped through e's segmentation, over
// segment range [segLo, segHi) when segHi > 0 (a fold shard), over the
// word-aligned receiver range [recvLo, recvHi) when recvHi > 0 (a
// receiver shard of a multi-word plan), or the full segmentation
// otherwise. Without an entry it is a generic shard:
// the runs stepped one by one through the runner's persistent views
// (deferred singletons, and whole rounds of algorithms with no
// BatchStepper). hullDone reports whether the task delivered the
// round's requested hulls for its runs.
type stepTask struct {
	e        *planEntry
	runs     []int
	segLo    int
	segHi    int
	recvLo   int
	recvHi   int
	hullDone bool
}

// stepJob is one parallel round of one runner: the task list, the
// graphs generic shards step under (gs per run, or the shared g), and
// the join state. A runner owns exactly one job, reused round after
// round; pool tokens reference it, and wg.Wait guarantees every token
// is consumed before the job may be reused — the fixed join point that
// makes the buffer swap safe.
type stepJob struct {
	r        *BatchRunner
	tasks    []stepTask
	spare    []stepTask
	gs       []graph.Graph
	g        graph.Graph
	wantHull bool
	next     atomic.Int64
	wg       sync.WaitGroup
}

// run drains tasks from the job's shared counter until none remain.
// Task stealing is unordered on purpose: disjoint writes make the
// claim order unobservable in the results.
func (j *stepJob) run(a *stepArena) {
	for {
		i := int(j.next.Add(1)) - 1
		if i >= len(j.tasks) {
			return
		}
		j.r.runTask(&j.tasks[i], a)
	}
}

// SetParallelism sets the runner's intra-step worker count: n >= 1
// pins it (1 = sequential stepping, the classic single-goroutine
// path), n <= 0 reverts to the process default
// (REPRO_BATCH_PARALLELISM / SetDefaultBatchParallelism; sequential
// when unset). Outputs, hulls, and fingerprints are byte-identical at
// every setting.
func (r *BatchRunner) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	r.par = n
}

// Parallelism returns the resolved intra-step worker count.
func (r *BatchRunner) Parallelism() int {
	if r.par >= 1 {
		return r.par
	}
	return DefaultBatchParallelism()
}

// beginTasks readies the runner's job for one parallel round.
func (r *BatchRunner) beginTasks(gs []graph.Graph, g graph.Graph, wantHull bool) {
	j := &r.job
	j.r = r
	j.tasks = j.tasks[:0]
	j.gs, j.g = gs, g
	j.wantHull = wantHull
	j.next.Store(0)
}

// addClusterTasks shards one cluster's runs into contiguous run-range
// tasks, sized so the round yields about two tasks per worker in
// proportion to the cluster's share of totalRuns — enough slack for
// the shared-counter stealing to balance uneven clusters without
// per-run dispatch overhead.
func (r *BatchRunner) addClusterTasks(e *planEntry, runs []int, par, totalRuns int) {
	shards := (2*par*len(runs) + totalRuns - 1) / totalRuns
	if shards < 1 {
		shards = 1
	}
	if shards > len(runs) {
		shards = len(runs)
	}
	for k := 0; k < shards; k++ {
		lo, hi := k*len(runs)/shards, (k+1)*len(runs)/shards
		r.job.tasks = append(r.job.tasks, stepTask{e: e, runs: runs[lo:hi]})
	}
}

// addRunShards shards a generic (per-run views) round into contiguous
// run-range tasks.
func (r *BatchRunner) addRunShards(runs []int, par int) {
	shards := 2 * par
	if shards > len(runs) {
		shards = len(runs)
	}
	for k := 0; k < shards; k++ {
		lo, hi := k*len(runs)/shards, (k+1)*len(runs)/shards
		r.job.tasks = append(r.job.tasks, stepTask{runs: runs[lo:hi]})
	}
}

// expandSegShards splits cluster tasks along the segment axis when run
// sharding alone cannot fill the worker budget — the large-n regime,
// where one cluster holds few runs but many receiver segments. Only
// fold-shardable steppers reach here (r.segOK); each split shard steps
// its runs over its own segment range, and the shard boundaries form
// the deterministic fold-combine tree: every fold is either reused
// in-shard exactly as the sequential stepper would, or recombined
// shard-locally from exact min/max selections.
func (r *BatchRunner) expandSegShards(par int) {
	j := &r.job
	if !r.segOK || len(j.tasks) >= par {
		return
	}
	per := (par + len(j.tasks) - 1) / len(j.tasks)
	split := j.spare[:0]
	for _, t := range j.tasks {
		s := 0
		if t.e != nil {
			s = len(t.e.plan.Segs) / minSegShard
		}
		if s > per {
			s = per
		}
		if s <= 1 {
			split = append(split, t)
			continue
		}
		segs := len(t.e.plan.Segs)
		for k := 0; k < s; k++ {
			t.segLo, t.segHi = k*segs/s, (k+1)*segs/s
			split = append(split, t)
		}
	}
	j.spare = j.tasks
	j.tasks = split
	r.expandWordShards(par)
}

// expandWordShards splits cluster tasks along the fourth shard axis —
// word-aligned receiver ranges within a fold — when neither run nor
// segment sharding could fill the worker budget: the very-large-n,
// few-runs, few-segments regime (one wide graph stepping a handful of
// runs), where a segment spans many mask words and its receiver writes
// dominate. Only multi-word plans of fold-shardable steppers split here;
// each receiver shard intersects every segment with its word-aligned
// receiver range and computes the folds it needs shard-locally from their
// masks (no cross-segment reuse — the canonical owner may lie outside the
// shard's receivers), which is bit-transparent for exact min/max
// selections exactly like segment shards' boundary refolds.
func (r *BatchRunner) expandWordShards(par int) {
	j := &r.job
	if !r.segOK || len(j.tasks) >= par {
		return
	}
	n := r.cur.n
	per := (par + len(j.tasks) - 1) / len(j.tasks)
	split := j.spare[:0]
	for _, t := range j.tasks {
		s := 0
		if t.e != nil && t.segHi == 0 {
			s = t.e.plan.Words
		}
		if s > per {
			s = per
		}
		if s <= 1 {
			split = append(split, t)
			continue
		}
		words := t.e.plan.Words
		for k := 0; k < s; k++ {
			t.recvLo = k * words / s * 64
			t.recvHi = (k + 1) * words / s * 64
			if t.recvHi > n {
				t.recvHi = n
			}
			split = append(split, t)
		}
	}
	j.spare = j.tasks
	j.tasks = split
}

// runTasks executes the round's task list: the coordinator always
// helps, and up to par-1 pool workers join via non-blocking tokens (a
// saturated pool just means the coordinator keeps more of the work).
// It returns once every task has finished — including tasks claimed by
// pool workers — and reports whether all of them delivered the
// requested hulls.
func (r *BatchRunner) runTasks(par int) bool {
	j := &r.job
	r.lastShards = len(j.tasks)
	tokens := par - 1
	if t := len(j.tasks) - 1; tokens > t {
		tokens = t
	}
	if tokens > 0 {
		sharedStepPool.ensure(tokens)
		for k := 0; k < tokens; k++ {
			j.wg.Add(1)
			select {
			case sharedStepPool.jobs <- j:
			default:
				j.wg.Add(-1)
				tokens = k
			}
			if tokens == k {
				break
			}
		}
	}
	j.run(&r.arena)
	j.wg.Wait()
	done := true
	for i := range j.tasks {
		if !j.tasks[i].hullDone {
			done = false
			break
		}
	}
	j.gs = nil
	return done
}

// runTask executes one shard using the arena's private scratch.
func (r *BatchRunner) runTask(t *stepTask, a *stepArena) {
	j := &r.job
	if t.e == nil {
		// Generic shard: per-run stepping through the persistent views,
		// with the per-run hull scan inlined (the same OutputsDense+Hull
		// sequence the post-swap scan would run).
		for _, i := range t.runs {
			g := j.g
			if j.gs != nil {
				g = j.gs[i]
			}
			r.stepRun(i, g)
			if j.wantHull {
				if cap(a.out) < r.cur.n {
					a.out = make([]float64, r.cur.n)
				}
				a.out = a.out[:r.cur.n]
				r.alg.OutputsDense(&r.viewsNext[i], a.out)
				r.hull.lo[i], r.hull.hi[i] = Hull(a.out)
			}
		}
		t.hullDone = j.wantHull
		return
	}
	// Cluster shard: step through a shadow plan sharing only the cached
	// plan's read-only segmentation. Runs, hull relay, fold scratch, and
	// the segment range are task-local, so concurrent shards of one
	// cluster never touch shared mutable state.
	p := &t.e.plan
	sh := &a.shadow
	sh.G = p.G
	sh.Words = p.Words
	sh.Segs = p.Segs
	sh.deltaArena = p.deltaArena
	if cap(sh.F0) < len(p.Segs) {
		sh.F0 = make([]float64, len(p.Segs))
		sh.F1 = make([]float64, len(p.Segs))
	}
	sh.F0, sh.F1 = sh.F0[:len(p.Segs)], sh.F1[:len(p.Segs)]
	sh.Runs = t.runs
	sh.SegLo, sh.SegHi = t.segLo, t.segHi
	sh.RecvLo, sh.RecvHi = t.recvLo, t.recvHi
	// A fold or receiver shard covers only part of each run's output, so
	// it cannot fold the hull; the round falls back to the post-swap scan.
	sh.WantHull = j.wantHull && t.segHi == 0 && t.recvHi == 0
	sh.HullLo, sh.HullHi = r.hull.lo, r.hull.hi
	sh.HullDone = false
	r.bs.StepDenseBatch(r.next, r.cur, sh)
	t.hullDone = sh.HullDone
	sh.Runs, sh.Segs, sh.deltaArena = nil, nil, nil
	sh.WantHull, sh.HullDone = false, false
	sh.HullLo, sh.HullHi = nil, nil
	sh.SegLo, sh.SegHi = 0, 0
	sh.RecvLo, sh.RecvHi = 0, 0
}
