package core_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// Multi-word parity: the n > 64 kernels (word-sliced masks, word-aligned
// receiver shards, delta-arena folds) must be bit-identical to both the
// sequential batch path and the per-run dense path, at every worker
// count. These are the wide-graph counterparts of TestParallelStepParity
// and the batch-vs-single differential gates.

// wideChurn is deafVariant for any width: everyone hears everyone except
// agent k, who hears only itself and its successor.
func wideChurn(t *testing.T, n, k int) graph.Graph {
	t.Helper()
	k %= n
	b := graph.NewBuilder(n)
	for j := 0; j < n; j++ {
		if j == k {
			b.Edge((k+1)%n, j)
			continue
		}
		for i := 0; i < n; i++ {
			b.Edge(i, j)
		}
	}
	return b.Graph()
}

// wideShift is shiftGraph for any width: agent j hears itself and j+s.
func wideShift(n, s int) graph.Graph {
	b := graph.NewBuilder(n)
	for j := 0; j < n; j++ {
		b.Edge((j+s)%n, j)
	}
	return b.Graph()
}

// stepBothMixedWide mirrors stepBothMixed with word-safe generators, so
// the same mixed round schedule (shared, hulls, clustered per-run,
// per-run unclustered) exercises the multi-word plan builder, the
// receiver-word shard axis, and the delta arena.
func stepBothMixedWide(t *testing.T, seq, par *core.BatchRunner, n, rounds int) {
	t.Helper()
	b := seq.B()
	gs := make([]graph.Graph, b)
	loS, hiS := make([]float64, b), make([]float64, b)
	loP, hiP := make([]float64, b), make([]float64, b)
	for round := 0; round < rounds; round++ {
		switch round % 4 {
		case 0:
			g := wideChurn(t, n, round)
			seq.Step(g)
			par.Step(g)
		case 1:
			g := wideShift(n, 1+round%(n-1))
			seq.StepWithHulls(g, loS, hiS)
			par.StepWithHulls(g, loP, hiP)
			for i := 0; i < b; i++ {
				if math.Float64bits(loS[i]) != math.Float64bits(loP[i]) ||
					math.Float64bits(hiS[i]) != math.Float64bits(hiP[i]) {
					t.Fatalf("round %d run %d: hulls diverged: [%v,%v] vs [%v,%v]",
						round, i, loS[i], hiS[i], loP[i], hiP[i])
				}
			}
		case 2:
			for i := range gs {
				gs[i] = wideChurn(t, n, i/3+round)
			}
			seq.StepEach(gs)
			par.StepEach(gs)
		case 3:
			for i := range gs {
				gs[i] = wideShift(n, 1+(i+round)%(n-1))
			}
			seq.StepRuns(gs)
			par.StepRuns(gs)
		}
		assertRunnersEqual(t, fmt.Sprintf("round %d", round), seq, par)
	}
}

// TestMultiWordParallelParity pins worker-count invariance past the word
// boundary: n = 128 at 3 and 8 workers (the issue's differential axis)
// and n = 256 at 4 workers (the acceptance fingerprint axis), each
// against the 1-worker runner, for a fold-shardable single-plane
// stepper, the 3-plane amortized stepper, and an order-sensitive sum
// stepper that must never be fold- or receiver-sharded. Small B forces
// the run axis to starve so the word-aligned receiver shards engage.
func TestMultiWordParallelParity(t *testing.T) {
	cases := []struct {
		n    int
		pars []int
	}{
		{128, []int{3, 8}},
		{256, []int{4}},
	}
	algs := []core.Algorithm{
		algorithms.Midpoint{},
		algorithms.AmortizedMidpoint{},
		algorithms.Mean{},
	}
	for _, tc := range cases {
		for _, alg := range algs {
			d, ok := core.AsDense(alg)
			if !ok {
				t.Fatalf("%s has no dense backend", alg.Name())
			}
			for _, b := range []int{1, 6} {
				for _, par := range tc.pars {
					t.Run(fmt.Sprintf("n%d/%s/b%d/par%d", tc.n, alg.Name(), b, par), func(t *testing.T) {
						seq := core.NewBatchRunner(d, testInputs(tc.n, b))
						seq.SetParallelism(1)
						prl := core.NewBatchRunner(d, testInputs(tc.n, b))
						prl.SetParallelism(par)
						stepBothMixedWide(t, seq, prl, tc.n, 8)
					})
				}
			}
		}
	}
}

// TestMultiWordAgentsVsDense checks the two execution backends agree
// past the word boundary: the agent oracle (message inboxes driven by
// InRow popcount iteration) and the dense kernel produce bit-identical
// fingerprints after every round at n = 128 and n = 256.
func TestMultiWordAgentsVsDense(t *testing.T) {
	algs := []core.Algorithm{algorithms.Midpoint{}, algorithms.AmortizedMidpoint{}, algorithms.Mean{}}
	for _, n := range []int{128, 256} {
		for _, alg := range algs {
			d, ok := core.AsDense(alg)
			if !ok {
				t.Fatalf("%s has no dense backend", alg.Name())
			}
			t.Run(fmt.Sprintf("n%d/%s", n, alg.Name()), func(t *testing.T) {
				inputs := testInputs(n, 1)[0]
				c := core.NewConfig(alg, inputs)
				r := core.NewDenseRunner(d, inputs)
				for round := 1; round <= 6; round++ {
					var g graph.Graph
					if round%2 == 0 {
						g = wideChurn(t, n, round)
					} else {
						g = wideShift(n, 1+round%(n-1))
					}
					c = c.Step(g)
					r.Step(g)
					afp, okA := c.AppendFingerprint(nil)
					dfp, okD := core.AppendDenseFingerprint(d, r.State(), nil)
					if !okA || !okD {
						t.Fatalf("round %d: backends not fingerprintable (agent %v, dense %v)", round, okA, okD)
					}
					if !bytes.Equal(afp, dfp) {
						t.Fatalf("round %d: agent and dense fingerprints diverged", round)
					}
				}
			})
		}
	}
}

// TestMultiWordBatchVsSingleDense runs the third leg of the triangle:
// the batched multi-word kernel (at 1, 3, and 8 workers) against B
// independent per-run DenseRunners, per-run graphs every round, with
// output and fingerprint equality after each of 12 rounds at n = 128.
func TestMultiWordBatchVsSingleDense(t *testing.T) {
	const n, b, rounds = 128, 6, 12
	algs := []core.Algorithm{algorithms.Midpoint{}, algorithms.Mean{}}
	for _, alg := range algs {
		d, ok := core.AsDense(alg)
		if !ok {
			t.Fatalf("%s has no dense backend", alg.Name())
		}
		for _, par := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("%s/par%d", alg.Name(), par), func(t *testing.T) {
				inputs := testInputs(n, b)
				batch := core.NewBatchRunner(d, inputs)
				batch.SetParallelism(par)
				singles := make([]*core.DenseRunner, b)
				for i := range singles {
					singles[i] = core.NewDenseRunner(d, inputs[i])
				}
				gs := make([]graph.Graph, b)
				out := make([]float64, n)
				for round := 0; round < rounds; round++ {
					for i := range gs {
						if (round+i)%3 == 0 {
							gs[i] = wideChurn(t, n, i+round)
						} else {
							gs[i] = wideShift(n, 1+(i*5+round)%(n-1))
						}
					}
					batch.StepEach(gs)
					for i, s := range singles {
						s.Step(gs[i])
					}
					for i, s := range singles {
						batch.Outputs(i, out)
						st := s.State()
						for j := 0; j < n; j++ {
							if math.Float64bits(out[j]) != math.Float64bits(st.Y[j]) {
								t.Fatalf("round %d run %d agent %d: batch %v vs single %v",
									round, i, j, out[j], st.Y[j])
							}
						}
						bfp, okB := batch.AppendRunFingerprint(nil, i)
						sfp, okS := core.AppendDenseFingerprint(d, st, nil)
						if okB != okS || (okB && !bytes.Equal(bfp, sfp)) {
							t.Fatalf("round %d run %d: batch and single fingerprints diverged", round, i)
						}
					}
				}
			})
		}
	}
}
