// Package core implements the round-based dynamic-network execution model
// of Section 2 of Függer, Nowak, Schwarz, "Tight Bounds for Asymptotic and
// Approximate Consensus" (PODC 2018).
//
// Computation proceeds in communication-closed rounds: in every round each
// agent broadcasts a message, receives the messages of its in-neighbors in
// that round's communication graph (always including its own message, per
// the mandatory self-loop), and deterministically updates its state.
//
// Agents are deterministic, clonable state machines. Clonability is part
// of the contract because the valency estimator and the lower-bound
// adversaries fork configurations mid-execution to explore the execution
// tree, exactly as the paper's proofs branch over successor
// configurations.
package core

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/graph"
)

// appendInbox appends the messages of node j's in-neighbors in g to inbox
// in ascending sender order — the order every Deliver contract (and the
// dense steppers' bit-identity contract) is pinned to. The row is iterated
// word by word, so the walk is popcount-driven at any graph width.
func appendInbox(inbox, msgs []Message, g graph.Graph, j int) []Message {
	for wi, m := range g.InRow(j) {
		base := wi * 64
		for ; m != 0; m &= m - 1 {
			inbox = append(inbox, msgs[base+bits.TrailingZeros64(m)])
		}
	}
	return inbox
}

// Message is what an agent broadcasts in a round. Value carries the
// consensus variable y_i; Aux optionally carries extra algorithm state
// (e.g. the running min/max interval of the amortized midpoint algorithm).
// Receivers must treat Aux as read-only; senders must not retain it.
type Message struct {
	From  int
	Value float64
	Aux   []float64
}

// Agent is the deterministic per-agent state machine of an asymptotic
// consensus algorithm. Round numbers start at 1, matching the paper;
// Output before any round reflects the initial value.
type Agent interface {
	// Broadcast returns the message the agent sends in the given round.
	// It must not mutate agent state.
	Broadcast(round int) Message
	// Deliver hands the agent the messages it hears in the given round.
	// The slice always contains the agent's own message (self-loop). The
	// agent must not retain the slice.
	Deliver(round int, msgs []Message)
	// Output returns the current value of the consensus variable y_i.
	Output() float64
	// Clone returns an independent deep copy of the agent.
	Clone() Agent
}

// Algorithm creates agents and describes algorithm-level properties.
type Algorithm interface {
	// Name identifies the algorithm in tables and traces.
	Name() string
	// NewAgent creates the agent with the given identity, system size, and
	// initial value.
	NewAgent(id, n int, initial float64) Agent
	// Convex reports whether the algorithm is a convex combination
	// algorithm: every update keeps y_i inside the convex hull of the
	// values received in that round. Convexity is what licenses the outer
	// valency bound used by the estimator (see internal/valency), and by
	// Theorem 2 of the paper it makes the consensus function continuous.
	Convex() bool
}

// StateCopier is an optional Agent capability: agents that can adopt the
// state of another agent in place implement it so that configuration
// scratch buffers can be refilled without allocating (see StepInto).
type StateCopier interface {
	// CopyStateFrom overwrites the receiver's state with src's and reports
	// whether it succeeded; it must return false (leaving the receiver in
	// any valid state) when src has a different concrete type.
	CopyStateFrom(src Agent) bool
}

// Config is a configuration: the collection of all agent states after some
// round. Step produces successor configurations without mutating the
// receiver, mirroring the paper's G.C notation.
type Config struct {
	n      int
	round  int
	alg    Algorithm // the algorithm the agents run; nil for hand-built configs
	agents []Agent

	// Reusable scratch for StepInto/StepInPlace; never part of the
	// configuration's identity and never copied by Clone.
	msgScratch   []Message
	inboxScratch []Message
}

// NewConfig returns the initial configuration of alg on the given inputs
// (one per agent).
func NewConfig(alg Algorithm, inputs []float64) *Config {
	n := len(inputs)
	if n < 1 || n > graph.MaxNodes {
		panic(fmt.Sprintf("core: invalid agent count %d", n))
	}
	agents := make([]Agent, n)
	for i, v := range inputs {
		agents[i] = alg.NewAgent(i, n, v)
	}
	return &Config{n: n, alg: alg, agents: agents}
}

// Algorithm returns the algorithm the configuration was created for, or
// nil for hand-assembled configurations. The dense execution backend uses
// it to locate the flat-state stepper matching the agents.
func (c *Config) Algorithm() Algorithm { return c.alg }

// N returns the number of agents.
func (c *Config) N() int { return c.n }

// Round returns the number of completed rounds.
func (c *Config) Round() int { return c.round }

// Output returns agent i's current value.
func (c *Config) Output(i int) float64 { return c.agents[i].Output() }

// AgentAt exposes agent i for inspection (e.g. reading decision state of
// wrapper algorithms). Callers must not mutate the agent; fork the
// configuration with Clone first if mutation is needed.
func (c *Config) AgentAt(i int) Agent { return c.agents[i] }

// Outputs returns a fresh slice of all agents' current values.
func (c *Config) Outputs() []float64 {
	out := make([]float64, c.n)
	for i, a := range c.agents {
		out[i] = a.Output()
	}
	return out
}

// Hull returns the convex hull [lo, hi] of the current values without
// allocating.
func (c *Config) Hull() (lo, hi float64) {
	if c.n == 0 {
		return 0, 0
	}
	lo = c.agents[0].Output()
	hi = lo
	for _, a := range c.agents[1:] {
		v := a.Output()
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// Diameter returns the diameter Δ(y) of the current values. It is
// allocation-free: the settle loops of the valency estimator call it once
// per explored round.
func (c *Config) Diameter() float64 {
	lo, hi := c.Hull()
	return hi - lo
}

// Clone returns an independent deep copy of the configuration.
func (c *Config) Clone() *Config {
	agents := make([]Agent, c.n)
	for i, a := range c.agents {
		agents[i] = a.Clone()
	}
	return &Config{n: c.n, round: c.round, alg: c.alg, agents: agents}
}

// Step applies one round with communication graph g and returns the
// successor configuration G.C. The receiver is unchanged.
func (c *Config) Step(g graph.Graph) *Config {
	if g.N() != c.n {
		panic(fmt.Sprintf("core: graph on %d nodes applied to %d agents", g.N(), c.n))
	}
	round := c.round + 1
	msgs := make([]Message, c.n)
	for i, a := range c.agents {
		msgs[i] = a.Broadcast(round)
		msgs[i].From = i
	}
	next := make([]Agent, c.n)
	inbox := make([]Message, 0, c.n)
	for j := 0; j < c.n; j++ {
		next[j] = c.agents[j].Clone()
		inbox = appendInbox(inbox[:0], msgs, g, j)
		next[j].Deliver(round, inbox)
	}
	return &Config{n: c.n, round: round, alg: c.alg, agents: next}
}

// StepInPlace applies one round with communication graph g by mutating
// the receiver's agents — no per-agent cloning. It is the fast path for
// long measurement runs (Run uses it on a private clone); callers that
// fork the execution tree must use Step instead.
func (c *Config) StepInPlace(g graph.Graph) {
	if g.N() != c.n {
		panic(fmt.Sprintf("core: graph on %d nodes applied to %d agents", g.N(), c.n))
	}
	c.round++
	msgs, inbox := c.scratch()
	for i, a := range c.agents {
		msgs[i] = a.Broadcast(c.round)
		msgs[i].From = i
	}
	for j, a := range c.agents {
		inbox = appendInbox(inbox[:0], msgs, g, j)
		a.Deliver(c.round, inbox)
	}
	c.inboxScratch = inbox[:0]
}

// scratch returns the receiver's reusable message and inbox buffers,
// growing them on first use.
func (c *Config) scratch() (msgs, inbox []Message) {
	if cap(c.msgScratch) < c.n {
		c.msgScratch = make([]Message, c.n)
	}
	if cap(c.inboxScratch) < c.n {
		c.inboxScratch = make([]Message, 0, c.n)
	}
	return c.msgScratch[:c.n], c.inboxScratch[:0]
}

// StepInto computes the successor configuration G.C into dst, the
// zero-allocation counterpart of Step for execution-tree walkers that own
// a scratch arena of Config values. The receiver is unchanged; dst is
// overwritten entirely. dst may be a zero &Config{} (its agent slots are
// then populated by cloning) or a previously used scratch configuration
// (its agents are refilled in place via StateCopier when the concrete
// types match, avoiding all allocation).
//
// dst must not alias c or share agents with it; use StepInPlace to advance
// a configuration in place. Concurrent StepInto calls from the same
// receiver into distinct destinations are safe: the receiver is only read.
func (c *Config) StepInto(dst *Config, g graph.Graph) {
	if g.N() != c.n {
		panic(fmt.Sprintf("core: graph on %d nodes applied to %d agents", g.N(), c.n))
	}
	if dst == c {
		panic("core: StepInto destination aliases the receiver; use StepInPlace")
	}
	round := c.round + 1
	dst.n = c.n
	dst.round = round
	dst.alg = c.alg
	if cap(dst.agents) < c.n {
		dst.agents = make([]Agent, c.n)
	}
	dst.agents = dst.agents[:c.n]
	msgs, inbox := dst.scratch()
	for i, a := range c.agents {
		msgs[i] = a.Broadcast(round)
		msgs[i].From = i
	}
	for j := 0; j < c.n; j++ {
		d := dst.agents[j]
		if d == nil {
			d = c.agents[j].Clone()
			dst.agents[j] = d
		} else if sc, ok := d.(StateCopier); !ok || !sc.CopyStateFrom(c.agents[j]) {
			d = c.agents[j].Clone()
			dst.agents[j] = d
		}
		inbox = appendInbox(inbox[:0], msgs, g, j)
		d.Deliver(round, inbox)
	}
	dst.inboxScratch = inbox[:0]
}

// StepAll applies the rounds of the given graph sequence in order and
// returns the resulting configuration. The receiver is unchanged; only one
// clone is made for the whole sequence.
func (c *Config) StepAll(gs []graph.Graph) *Config {
	if len(gs) == 0 {
		return c
	}
	cur := c.Clone()
	for _, g := range gs {
		cur.StepInPlace(g)
	}
	return cur
}

// IndistinguishableFor reports whether agent i has the same output in c
// and d. It is a practical proxy for the paper's ~_i relation restricted
// to observable state; exact state equality is algorithm-specific. Both
// configurations must have the same size.
func (c *Config) IndistinguishableFor(i int, d *Config) bool {
	return c.Output(i) == d.Output(i)
}

// Diameter returns max values minus min values (the 1-dimensional diameter
// of the value set); 0 for empty input.
func Diameter(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

// Hull returns the convex hull [min, max] of the values.
func Hull(values []float64) (lo, hi float64) {
	if len(values) == 0 {
		return 0, 0
	}
	lo, hi = values[0], values[0]
	for _, v := range values[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}
