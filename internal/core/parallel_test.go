package core_test

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// deafVariant returns the n-node graph where everyone hears everyone
// except agent k, who hears only itself and its successor — churn-style
// graphs with few segments and heavy fold sharing.
func deafVariant(t *testing.T, n, k int) graph.Graph {
	t.Helper()
	full := uint64(1)<<uint(n) - 1
	masks := make([]uint64, n)
	for j := range masks {
		masks[j] = full
	}
	masks[k%n] = 1<<uint(k%n) | 1<<uint((k+1)%n)
	g, err := graph.FromInMasks(n, masks)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// assertRunnersEqual asserts every run of the two runners carries
// bit-identical outputs and fingerprints.
func assertRunnersEqual(t *testing.T, label string, a, b *core.BatchRunner) {
	t.Helper()
	if a.B() != b.B() {
		t.Fatalf("%s: batch sizes diverged: %d vs %d", label, a.B(), b.B())
	}
	n := a.N()
	outA, outB := make([]float64, n), make([]float64, n)
	for r := 0; r < a.B(); r++ {
		a.Outputs(r, outA)
		b.Outputs(r, outB)
		for j := 0; j < n; j++ {
			if math.Float64bits(outA[j]) != math.Float64bits(outB[j]) {
				t.Fatalf("%s: run %d agent %d: outputs %v vs %v", label, r, j, outA[j], outB[j])
			}
		}
		fpA, okA := a.AppendRunFingerprint(nil, r)
		fpB, okB := b.AppendRunFingerprint(nil, r)
		if okA != okB || (okA && !bytes.Equal(fpA, fpB)) {
			t.Fatalf("%s: run %d: fingerprints diverged", label, r)
		}
	}
}

// stepBothMixed drives the two runners through an identical mixed round
// sequence — shared-graph rounds, clustered per-run rounds, hull
// variants, and the uncluttered StepRuns path — asserting bit equality
// of outputs, fingerprints, and every delivered hull after each round.
func stepBothMixed(t *testing.T, seq, par *core.BatchRunner, n, rounds int) {
	t.Helper()
	b := seq.B()
	gs := make([]graph.Graph, b)
	loS, hiS := make([]float64, b), make([]float64, b)
	loP, hiP := make([]float64, b), make([]float64, b)
	for round := 0; round < rounds; round++ {
		switch round % 5 {
		case 0:
			g := deafVariant(t, n, round)
			seq.Step(g)
			par.Step(g)
		case 1:
			g := shiftGraph(t, n, 1+round%(n-1))
			seq.StepWithHulls(g, loS, hiS)
			par.StepWithHulls(g, loP, hiP)
		case 2:
			for i := range gs {
				gs[i] = deafVariant(t, n, i/3+round)
			}
			seq.StepEach(gs)
			par.StepEach(gs)
		case 3:
			for i := range gs {
				gs[i] = deafVariant(t, n, i/2)
			}
			seq.StepEachWithHulls(gs, loS, hiS)
			par.StepEachWithHulls(gs, loP, hiP)
		case 4:
			for i := range gs {
				gs[i] = shiftGraph(t, n, 1+(i+round)%(n-1))
			}
			seq.StepRuns(gs)
			par.StepRuns(gs)
		}
		if round%5 == 1 || round%5 == 3 {
			for i := 0; i < b; i++ {
				if math.Float64bits(loS[i]) != math.Float64bits(loP[i]) ||
					math.Float64bits(hiS[i]) != math.Float64bits(hiP[i]) {
					t.Fatalf("round %d run %d: hulls diverged: [%v,%v] vs [%v,%v]",
						round, i, loS[i], hiS[i], loP[i], hiP[i])
				}
			}
		}
		assertRunnersEqual(t, fmt.Sprintf("round %d", round), seq, par)
	}
}

// TestParallelStepParity pins the determinism contract end to end: a
// runner stepping with 2, 3, 7, or 33 workers (including workers > B
// and B = 1) is bit-identical to the sequential runner on every path —
// shared graphs, clustered per-run graphs, hull delivery, and the
// generic per-view path — for a fold-shardable stepper, an
// order-sensitive batched stepper, and an algorithm with no batched
// stepper at all.
func TestParallelStepParity(t *testing.T) {
	algs := []core.Algorithm{
		algorithms.Midpoint{},
		algorithms.Mean{},
		algorithms.SelfWeighted{Alpha: 0.25},
	}
	for _, alg := range algs {
		d, ok := core.AsDense(alg)
		if !ok {
			t.Fatalf("%s has no dense backend", alg.Name())
		}
		for _, b := range []int{1, 5, 16} {
			for _, par := range []int{2, 3, 7, 33} {
				t.Run(fmt.Sprintf("%s/b%d/par%d", alg.Name(), b, par), func(t *testing.T) {
					const n = 9
					seq := core.NewBatchRunner(d, testInputs(n, b))
					seq.SetParallelism(1)
					prl := core.NewBatchRunner(d, testInputs(n, b))
					prl.SetParallelism(par)
					stepBothMixed(t, seq, prl, n, 20)
				})
			}
		}
	}
}

// TestParallelSegShardParity forces the fold-shard path: B below the
// worker count with a 64-node graph of all-distinct masks (64 segments)
// makes expandSegShards split the segment axis, so the shard-local
// refolds and the fold-combine boundaries are what this parity run
// exercises — for each fold-shardable stepper.
func TestParallelSegShardParity(t *testing.T) {
	algs := []core.Algorithm{
		algorithms.Midpoint{},
		algorithms.QuantizedMidpoint{Q: 0.125},
		algorithms.AmortizedMidpoint{},
	}
	const n, b = 64, 2
	for _, alg := range algs {
		d, _ := core.AsDense(alg)
		t.Run(alg.Name(), func(t *testing.T) {
			seq := core.NewBatchRunner(d, testInputs(n, b))
			seq.SetParallelism(1)
			prl := core.NewBatchRunner(d, testInputs(n, b))
			prl.SetParallelism(16)
			stepBothMixed(t, seq, prl, n, 15)
		})
	}
}

// TestParallelCompactAndFork checks the parallel runner through the
// batch lifecycle: Fork inherits the parallelism setting, and stepping
// keeps bit-parity across Compact on both runners.
func TestParallelCompactAndFork(t *testing.T) {
	const n, b = 8, 12
	d, _ := core.AsDense(algorithms.Midpoint{})
	seq := core.NewBatchRunner(d, testInputs(n, b))
	seq.SetParallelism(1)
	prl := core.NewBatchRunner(d, testInputs(n, b))
	prl.SetParallelism(5)
	stepBothMixed(t, seq, prl, n, 5)
	keep := make([]bool, b)
	for i := range keep {
		keep[i] = i%3 != 0
	}
	seq.Compact(keep)
	prl.Compact(keep)
	stepBothMixed(t, seq, prl, n, 5)
	fork := prl.Fork()
	if fork.Parallelism() != 5 {
		t.Fatalf("fork parallelism = %d, want 5", fork.Parallelism())
	}
	seqFork := seq.Fork()
	stepBothMixed(t, seqFork, fork, n, 5)
}

// TestParallelismKnobs pins the knob semantics: explicit settings
// override the process default, 0 reverts to inheriting it, and the
// process default resolves auto to GOMAXPROCS.
func TestParallelismKnobs(t *testing.T) {
	prev := core.SetDefaultBatchParallelism(1)
	defer core.SetDefaultBatchParallelism(prev)

	d, _ := core.AsDense(algorithms.Midpoint{})
	r := core.NewBatchRunner(d, testInputs(4, 2))
	if got := r.Parallelism(); got != 1 {
		t.Fatalf("default parallelism = %d, want 1", got)
	}
	core.SetDefaultBatchParallelism(3)
	if got := r.Parallelism(); got != 3 {
		t.Fatalf("inherited parallelism = %d, want 3", got)
	}
	r.SetParallelism(7)
	if got := r.Parallelism(); got != 7 {
		t.Fatalf("pinned parallelism = %d, want 7", got)
	}
	r.SetParallelism(0)
	if got := r.Parallelism(); got != 3 {
		t.Fatalf("reverted parallelism = %d, want 3", got)
	}
}

// TestParallelZeroAllocSteadyState is the arena-regression gate: after
// warm-up, stepping the full-scale batch (B=1024 at the kernel's n=64
// ceiling) allocates nothing per round — sequentially and with a
// 4-worker parallel fan-out, on the clustered per-run path cycling
// through a pool of graphs.
func TestParallelZeroAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale batch in -short mode")
	}
	const n, b = 64, 1024
	pool := make([]graph.Graph, 8)
	for k := range pool {
		pool[k] = deafVariant(t, n, k)
	}
	gs := make([]graph.Graph, b)
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			d, _ := core.AsDense(algorithms.Midpoint{})
			br := core.NewBatchRunner(d, testInputs(n, b))
			br.SetParallelism(par)
			round := 0
			stepOnce := func() {
				for i := range gs {
					gs[i] = pool[(i/128+round)%len(pool)]
				}
				br.StepEach(gs)
				round++
			}
			// Warm-up: admit the graph pool's plans, grow the task list,
			// the worker arenas, and the goroutine stacks.
			for i := 0; i < 32; i++ {
				stepOnce()
			}
			// Retire any in-flight GC cycle and its finalizer backlog:
			// a concurrent cycle drifting into the measurement window
			// charges background runtime allocations to the stepper.
			// With the window itself allocation-free, no new cycle can
			// trigger inside it.
			runtime.GC()
			runtime.GC()
			if allocs := testing.AllocsPerRun(20, stepOnce); allocs != 0 {
				t.Fatalf("steady-state StepEach allocates %v times per round, want 0", allocs)
			}
		})
	}
}
