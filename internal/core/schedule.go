package core

import (
	"context"
	"fmt"

	"repro/internal/graph"
)

// Schedule is the schedule-driven PatternSource: it plays a finite prefix
// of graphs and then repeats a loop forever — the "lasso" shape
// rho·lambda^omega in which every ultimately periodic dynamic-network
// schedule can be written. An empty loop repeats the last prefix graph
// forever (Sequence semantics), so finite recorded traces extend to any
// horizon deterministically.
//
// A Schedule is oblivious by construction — the graph of round t is a
// pure function of t — so schedule-driven runs take the dense backend and
// batch onto the batched execution plane (per-run schedules included).
type Schedule struct {
	Prefix []graph.Graph
	Loop   []graph.Graph
}

// At returns the graph of the given round (1-based).
func (s Schedule) At(round int) graph.Graph {
	if round < 1 {
		panic(fmt.Sprintf("core: schedule round %d out of range", round))
	}
	t := round - 1
	if t < len(s.Prefix) {
		return s.Prefix[t]
	}
	if len(s.Loop) == 0 {
		if len(s.Prefix) == 0 {
			panic("core: empty schedule")
		}
		return s.Prefix[len(s.Prefix)-1]
	}
	return s.Loop[(t-len(s.Prefix))%len(s.Loop)]
}

// Next implements PatternSource.
func (s Schedule) Next(round int, _ *Config) graph.Graph { return s.At(round) }

// ObliviousSource implements Oblivious.
func (Schedule) ObliviousSource() bool { return true }

// RunBatch steps B runs of one dense algorithm in lock-step for the given
// number of rounds, drawing per-run graphs from per-run oblivious pattern
// sources (srcs[i] drives run i), and returns the runner positioned after
// the last round. Rounds in which every source plays the same graph take
// the shared-segmentation fast path automatically.
//
// It is the batch counterpart of RunBackendCtx for schedule-driven
// workloads: a scenario sweep is one RunBatch call instead of B round
// loops. Every source must be oblivious (it is handed a nil Config);
// non-oblivious sources are a programmer error and panic.
func RunBatch(ctx context.Context, alg DenseAlgorithm, inputs [][]float64, srcs []PatternSource, rounds int) (*BatchRunner, error) {
	if len(srcs) != len(inputs) {
		panic(fmt.Sprintf("core: %d sources for %d batch runs", len(srcs), len(inputs)))
	}
	for i, src := range srcs {
		if !obliviousSource(src) {
			panic(fmt.Sprintf("core: RunBatch source %d is not oblivious", i))
		}
	}
	if rounds < 0 {
		panic(fmt.Sprintf("core: negative round count %d", rounds))
	}
	r := NewBatchRunner(alg, inputs)
	gs := make([]graph.Graph, len(srcs))
	done := ctx.Done()
	for t := 1; t <= rounds; t++ {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		for i, src := range srcs {
			gs[i] = src.Next(t, nil)
		}
		r.StepEach(gs)
	}
	return r, nil
}
