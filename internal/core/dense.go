package core

import (
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/graph"
)

// This file implements the dense struct-of-arrays execution backend: flat
// float64 state stepped directly against the graph's in-neighbor bitmasks,
// with no Message structs, no per-agent cloning, and no virtual dispatch
// in the inner loop. The interface-based Agent path remains the reference
// semantics; dense steppers are required to reproduce it bit-for-bit
// (asserted by the differential tests in internal/algorithms and
// internal/exp), so the two backends are interchangeable everywhere.

// DenseState is the flat state of a configuration under the dense
// backend: the value vector Y plus a fixed number of auxiliary planes,
// each a []float64 with one entry per agent (struct-of-arrays layout).
// Plane k of an n-agent state occupies Aux[k*n : (k+1)*n].
//
// A DenseState is trivially forkable: CopyFrom duplicates it with two
// copy calls and no per-agent work.
type DenseState struct {
	n      int
	round  int
	planes int
	// Y is the consensus variable vector y. For algorithms with internal
	// state beyond y (e.g. a decision wrapper), Y holds the broadcast
	// variable and the observable output is defined by OutputsDense.
	Y []float64
	// Aux holds the auxiliary planes, plane-major.
	Aux []float64
}

// N returns the number of agents.
func (st *DenseState) N() int { return st.n }

// Round returns the number of completed rounds.
func (st *DenseState) Round() int { return st.round }

// Planes returns the number of auxiliary planes.
func (st *DenseState) Planes() int { return st.planes }

// Plane returns auxiliary plane k (one float64 per agent).
func (st *DenseState) Plane(k int) []float64 {
	if k < 0 || k >= st.planes {
		panic(fmt.Sprintf("core: aux plane %d out of range [0,%d)", k, st.planes))
	}
	return st.Aux[k*st.n : (k+1)*st.n]
}

// Resize shapes the state for n agents and the given number of aux
// planes, reusing the backing arrays when possible. Contents are
// unspecified afterwards.
func (st *DenseState) Resize(n, planes int) {
	if n < 1 || n > graph.MaxNodes {
		panic(fmt.Sprintf("core: invalid agent count %d", n))
	}
	if planes < 0 {
		panic(fmt.Sprintf("core: negative aux plane count %d", planes))
	}
	st.n, st.planes = n, planes
	if cap(st.Y) < n {
		st.Y = make([]float64, n)
	}
	st.Y = st.Y[:n]
	if cap(st.Aux) < planes*n {
		st.Aux = make([]float64, planes*n)
	}
	st.Aux = st.Aux[:planes*n]
}

// CopyFrom overwrites st with an independent copy of src.
func (st *DenseState) CopyFrom(src *DenseState) {
	st.Resize(src.n, src.planes)
	st.round = src.round
	copy(st.Y, src.Y)
	copy(st.Aux, src.Aux)
}

// DenseAlgorithm is the dense-backend capability of an Algorithm: a
// stepper over flat state. Implementations must be bit-identical to the
// algorithm's Agent path — same float operations in the same order per
// agent, with senders visited in ascending index (the order Deliver
// receives the inbox in).
type DenseAlgorithm interface {
	Algorithm
	// DensePlanes returns the number of auxiliary float64 planes the
	// algorithm keeps besides Y.
	DensePlanes() int
	// InitDense finalizes a freshly shaped state whose Y holds the raw
	// inputs: snap values if the algorithm's domain requires it and fill
	// the aux planes. The round is 0.
	InitDense(st *DenseState)
	// StepDense writes the successor of src into dst. The caller has
	// already shaped dst (same n and planes as src) and set dst.round =
	// src.round + 1; the implementation must fully overwrite dst.Y and
	// every aux plane it owns. dst never aliases src.
	StepDense(dst, src *DenseState, g graph.Graph)
	// OutputsDense writes each agent's observable output (Agent.Output)
	// into out, which has length N. It must not read from out.
	OutputsDense(st *DenseState, out []float64)
}

// DenseProvider is an optional Algorithm capability for wrappers whose
// dense support depends on the wrapped algorithm (e.g. the deciding
// wrapper in internal/approx): Dense returns the dense view when
// available.
type DenseProvider interface {
	Dense() (DenseAlgorithm, bool)
}

// AsDense returns the dense view of alg: alg itself when it implements
// DenseAlgorithm directly, the provided view for DenseProvider wrappers,
// and ok = false otherwise.
func AsDense(alg Algorithm) (DenseAlgorithm, bool) {
	if d, ok := alg.(DenseAlgorithm); ok {
		return d, true
	}
	if p, ok := alg.(DenseProvider); ok {
		return p.Dense()
	}
	return nil, false
}

// DenseStateWriter is an optional Agent capability: the agent writes its
// complete state into column i of a dense state shaped for its algorithm
// and reports whether it could (wrappers return false when their inner
// agent cannot). It bridges agent configurations into the dense backend
// (Config.WriteDense).
type DenseStateWriter interface {
	WriteDense(st *DenseState, i int) bool
}

// DenseStateReader is the inverse capability: the agent overwrites its
// state from column i of a dense state. It bridges dense states back into
// agent configurations (MaterializeDense).
type DenseStateReader interface {
	ReadDense(st *DenseState, i int) bool
}

// DenseFingerprinter is an optional DenseAlgorithm capability: it appends
// the canonical fingerprint of agent i's dense state, bit-identical to the
// agent's core.Fingerprinter encoding, so dense and agent explorations
// share memoization tables.
type DenseFingerprinter interface {
	AppendDenseFingerprint(dst []byte, st *DenseState, i int) ([]byte, bool)
}

// AppendDenseFingerprint appends the configuration fingerprint of st —
// same format as Config.AppendFingerprint: agent count, completed round,
// then every agent's state in index order. ok is false when alg cannot
// fingerprint dense states.
func AppendDenseFingerprint(alg DenseAlgorithm, st *DenseState, dst []byte) (fp []byte, ok bool) {
	df, can := alg.(DenseFingerprinter)
	if !can {
		return dst, false
	}
	dst = AppendInt(dst, st.n)
	dst = AppendInt(dst, st.round)
	for i := 0; i < st.n; i++ {
		if dst, can = df.AppendDenseFingerprint(dst, st, i); !can {
			return dst, false
		}
	}
	return dst, true
}

// WriteDense shapes st for the configuration's algorithm and writes every
// agent's state into it. It reports false when the configuration has no
// dense-capable algorithm or some agent cannot export its state.
func (c *Config) WriteDense(st *DenseState) bool {
	if c.alg == nil {
		return false
	}
	d, ok := AsDense(c.alg)
	if !ok {
		return false
	}
	st.Resize(c.n, d.DensePlanes())
	st.round = c.round
	for i, a := range c.agents {
		w, ok := a.(DenseStateWriter)
		if !ok || !w.WriteDense(st, i) {
			return false
		}
	}
	return true
}

// MaterializeDense builds an agent configuration equivalent to the dense
// state: fresh agents from alg, each overwritten with its dense column.
// It panics when alg's agents do not implement DenseStateReader — dense
// support without the read bridge is a programmer error.
func MaterializeDense(alg DenseAlgorithm, st *DenseState) *Config {
	c := NewConfig(alg, st.Y)
	c.round = st.round
	for i, a := range c.agents {
		r, ok := a.(DenseStateReader)
		if !ok || !r.ReadDense(st, i) {
			panic(fmt.Sprintf("core: agents of %s lack ReadDense", alg.Name()))
		}
	}
	return c
}

// DenseRunner executes a dense algorithm with double-buffered state: Step
// computes the successor into the back buffer and swaps, allocating
// nothing after construction.
type DenseRunner struct {
	alg        DenseAlgorithm
	cur, next  *DenseState
	outScratch []float64
}

// NewDenseRunner builds a runner from raw inputs (one per agent).
func NewDenseRunner(alg DenseAlgorithm, inputs []float64) *DenseRunner {
	n := len(inputs)
	st := &DenseState{}
	st.Resize(n, alg.DensePlanes())
	copy(st.Y, inputs)
	alg.InitDense(st)
	back := &DenseState{}
	back.Resize(n, st.planes)
	return &DenseRunner{alg: alg, cur: st, next: back, outScratch: make([]float64, n)}
}

// DenseRunnerFromConfig builds a runner that continues an existing agent
// configuration; ok is false when the configuration cannot be bridged.
func DenseRunnerFromConfig(c *Config) (*DenseRunner, bool) {
	if c.alg == nil {
		return nil, false
	}
	d, ok := AsDense(c.alg)
	if !ok {
		return nil, false
	}
	st := &DenseState{}
	if !c.WriteDense(st) {
		return nil, false
	}
	back := &DenseState{}
	back.Resize(st.n, st.planes)
	return &DenseRunner{alg: d, cur: st, next: back, outScratch: make([]float64, st.n)}, true
}

// Alg returns the algorithm being run.
func (r *DenseRunner) Alg() DenseAlgorithm { return r.alg }

// N returns the number of agents.
func (r *DenseRunner) N() int { return r.cur.n }

// Round returns the number of completed rounds.
func (r *DenseRunner) Round() int { return r.cur.round }

// State returns the current dense state. Callers must not mutate it.
func (r *DenseRunner) State() *DenseState { return r.cur }

// Step applies one round with communication graph g.
func (r *DenseRunner) Step(g graph.Graph) {
	if g.N() != r.cur.n {
		panic(fmt.Sprintf("core: graph on %d nodes applied to %d agents", g.N(), r.cur.n))
	}
	DenseStep(r.alg, r.next, r.cur, g)
	r.cur, r.next = r.next, r.cur
}

// DenseStep advances src one round into dst, handling the bookkeeping the
// StepDense contract promises: dst is shaped like src and its round set to
// src.Round()+1 before the stepper runs. dst must not alias src.
func DenseStep(alg DenseAlgorithm, dst, src *DenseState, g graph.Graph) {
	if dst == src {
		panic("core: DenseStep destination aliases the source")
	}
	dst.Resize(src.n, src.planes)
	dst.round = src.round + 1
	alg.StepDense(dst, src, g)
}

// Outputs returns a fresh slice of the observable outputs.
func (r *DenseRunner) Outputs() []float64 {
	out := make([]float64, r.cur.n)
	r.alg.OutputsDense(r.cur, out)
	return out
}

// Hull returns the convex hull [lo, hi] of the observable outputs without
// allocating.
func (r *DenseRunner) Hull() (lo, hi float64) {
	r.alg.OutputsDense(r.cur, r.outScratch)
	return Hull(r.outScratch)
}

// Diameter returns the diameter of the observable outputs without
// allocating.
func (r *DenseRunner) Diameter() float64 {
	lo, hi := r.Hull()
	return hi - lo
}

// Output returns agent i's observable output.
func (r *DenseRunner) Output(i int) float64 {
	r.alg.OutputsDense(r.cur, r.outScratch)
	return r.outScratch[i]
}

// Fork returns an independent copy of the runner, the dense counterpart
// of Config.Clone: two copies and no per-agent work.
func (r *DenseRunner) Fork() *DenseRunner {
	cur := &DenseState{}
	cur.CopyFrom(r.cur)
	back := &DenseState{}
	back.Resize(cur.n, cur.planes)
	return &DenseRunner{alg: r.alg, cur: cur, next: back, outScratch: make([]float64, cur.n)}
}

// Config materializes the runner's state as an agent configuration.
func (r *DenseRunner) Config() *Config { return MaterializeDense(r.alg, r.cur) }

// Backend selects the execution engine used by Run, RunConfig, the vector
// runner, and the valency settle loops.
type Backend uint32

const (
	// BackendAuto uses the dense kernel whenever the algorithm and pattern
	// source support it and falls back to the Agent path otherwise. It is
	// the default: the backends are differentially tested to be
	// bit-identical, so auto-selection is observable only in speed.
	BackendAuto Backend = iota
	// BackendAgents forces the interface-based Agent path everywhere — the
	// reference oracle.
	BackendAgents
	// BackendDense behaves like BackendAuto (dense where supported); it
	// exists so command-line flags can state the intent explicitly.
	BackendDense
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendAgents:
		return "agents"
	case BackendDense:
		return "dense"
	default:
		return fmt.Sprintf("backend(%d)", uint32(b))
	}
}

// ParseBackend parses "auto", "agents", or "dense".
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "auto", "":
		return BackendAuto, nil
	case "agents":
		return BackendAgents, nil
	case "dense":
		return BackendDense, nil
	default:
		return BackendAuto, fmt.Errorf("core: unknown backend %q (want auto|agents|dense)", s)
	}
}

// DenseEnabled reports whether the backend permits the dense kernel.
func (b Backend) DenseEnabled() bool { return b != BackendAgents }

var defaultBackend atomic.Uint32

func init() {
	if s, ok := os.LookupEnv("REPRO_BACKEND"); ok {
		b, err := ParseBackend(s)
		if err != nil {
			// Fail fast: silently ignoring a typo here would make backend-
			// forcing CI jobs (REPRO_BACKEND=agents go test ...) re-run the
			// default backend and pass vacuously.
			panic(fmt.Sprintf("core: invalid REPRO_BACKEND: %v", err))
		}
		defaultBackend.Store(uint32(b))
	}
}

// CurrentBackend returns the process-wide default backend.
func CurrentBackend() Backend { return Backend(defaultBackend.Load()) }

// SetDefaultBackend sets the process-wide default backend (also settable
// via the REPRO_BACKEND environment variable before start-up) and returns
// the previous value.
func SetDefaultBackend(b Backend) Backend {
	return Backend(defaultBackend.Swap(uint32(b)))
}
