package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// stepAlgs are the algorithms the StepInto/fingerprint tests sweep;
// AmortizedMidpoint exercises round-dependent behavior and Aux payloads.
func stepAlgs() []core.Algorithm {
	return []core.Algorithm{
		algorithms.Midpoint{},
		algorithms.Mean{},
		algorithms.SelfWeighted{Alpha: 0.25},
		algorithms.AmortizedMidpoint{},
	}
}

// TestStepIntoMatchesStep drives random graph sequences through Step and
// StepInto (with a reused scratch destination) and demands identical
// outputs after every round.
func TestStepIntoMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, alg := range stepAlgs() {
		t.Run(alg.Name(), func(t *testing.T) {
			const n = 5
			inputs := make([]float64, n)
			for i := range inputs {
				inputs[i] = rng.Float64()
			}
			ref := core.NewConfig(alg, inputs)
			fast := core.NewConfig(alg, inputs)
			dst := &core.Config{} // zero scratch: populated by cloning once, then refilled in place
			for r := 0; r < 30; r++ {
				g := graph.Random(rng, n, 0.4)
				ref = ref.Step(g)
				fast.StepInto(dst, g)
				fast, dst = dst, fast
				if ref.Round() != fast.Round() {
					t.Fatalf("round %d: Step round %d, StepInto round %d", r, ref.Round(), fast.Round())
				}
				for i := 0; i < n; i++ {
					if ref.Output(i) != fast.Output(i) {
						t.Fatalf("round %d agent %d: Step %v, StepInto %v", r, i, ref.Output(i), fast.Output(i))
					}
				}
			}
		})
	}
}

// TestStepIntoDoesNotMutateReceiver pins the read-only contract on the
// source configuration.
func TestStepIntoDoesNotMutateReceiver(t *testing.T) {
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1, 0.5})
	before, _ := c.Fingerprint()
	dst := &core.Config{}
	c.StepInto(dst, graph.Complete(3))
	after, ok := c.Fingerprint()
	if !ok || after != before {
		t.Fatal("StepInto mutated its receiver")
	}
	if dst.Round() != c.Round()+1 {
		t.Fatalf("successor round %d, want %d", dst.Round(), c.Round()+1)
	}
}

// TestStepIntoSelfPanics pins the aliasing guard.
func TestStepIntoSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StepInto(c, ...) onto itself did not panic")
		}
	}()
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})
	c.StepInto(c, graph.Complete(2))
}

// TestFingerprintDistinguishesStateAndRound checks the two key axes of
// the memoization key: agent state and round number.
func TestFingerprintDistinguishesStateAndRound(t *testing.T) {
	a := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})
	b := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})
	fa, ok := a.Fingerprint()
	if !ok {
		t.Fatal("midpoint agents must be fingerprintable")
	}
	fb, _ := b.Fingerprint()
	if fa != fb {
		t.Fatal("identical configurations must share a fingerprint")
	}
	// Stepping with the identity graph keeps every value but advances the
	// round: the fingerprint must change.
	id := b.Step(graph.New(2))
	fid, _ := id.Fingerprint()
	if fid == fa {
		t.Fatal("fingerprint must include the round number")
	}
	// Different values must differ.
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 0.75})
	fc, _ := c.Fingerprint()
	if fc == fa {
		t.Fatal("fingerprint must include agent values")
	}
	// Different algorithms with equal values must differ (type tags).
	d := core.NewConfig(algorithms.Mean{}, []float64{0, 1})
	fd, _ := d.Fingerprint()
	if fd == fa {
		t.Fatal("fingerprints of different algorithms must not collide")
	}
}

// TestDiameterAllocationFree pins the allocation-free settle-loop path.
func TestDiameterAllocationFree(t *testing.T) {
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1, 0.25, 0.75})
	if d := c.Diameter(); d != 1 {
		t.Fatalf("Diameter = %v, want 1", d)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = c.Diameter() }); allocs != 0 {
		t.Fatalf("Diameter allocates %v times per call, want 0", allocs)
	}
	lo, hi := c.Hull()
	if lo != 0 || hi != 1 {
		t.Fatalf("Hull = [%v, %v], want [0, 1]", lo, hi)
	}
}

// TestStepIntoAllocationFree verifies the steady-state zero-allocation
// guarantee for fingerprintable, state-copyable agents without Aux
// payloads.
func TestStepIntoAllocationFree(t *testing.T) {
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1, 0.5, 0.25})
	dst := &core.Config{}
	g := graph.Complete(4)
	c.StepInto(dst, g) // warm-up: populates agents and scratch buffers
	if allocs := testing.AllocsPerRun(100, func() { c.StepInto(dst, g) }); allocs != 0 {
		t.Fatalf("StepInto allocates %v times per call after warm-up, want 0", allocs)
	}
}
