package core_test

import (
	"runtime"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// kernelSeries lists the kernel metric names whose values must be
// bitwise parallelism-invariant: clustering, admission, eviction, and
// deferral all run on the coordinating goroutine before tasks launch
// (the determinism contract in parallel.go), so the flushed plan
// series cannot depend on the worker count. The shard-task counter is
// deliberately absent — it measures the fan-out itself.
var kernelSeries = []string{
	"repro_kernel_step_rounds_total",
	"repro_kernel_stepeach_rounds_total",
	"repro_kernel_plan_cache_hits_total",
	"repro_kernel_plan_cache_misses_total",
	"repro_kernel_plan_cache_evictions_total",
	"repro_kernel_plan_cache_deferrals_total",
}

// mixedWorkload steps a fresh runner through a mixed Step/StepEach
// schedule designed to move every plan-cache counter: a tight cap
// forces evictions, singleton first-sight graphs force deferrals, and
// pool revisits force doorkeeper admissions and memo hits.
func mixedWorkload(t *testing.T, par int) {
	t.Helper()
	const n, b, rounds = 32, 16, 40
	pool := make([]graph.Graph, 64)
	for k := range pool {
		pool[k] = deafVariant(t, n, k%n)
	}
	// deafVariant repeats past n; make the tail distinct by rotation.
	for k := n; k < len(pool); k++ {
		masks := make([]uint64, n)
		full := uint64(1)<<uint(n) - 1
		for j := range masks {
			masks[j] = full
		}
		masks[k%n] = 1<<uint(k%n) | 1<<uint((k+3)%n)
		g, err := graph.FromInMasks(n, masks)
		if err != nil {
			t.Fatal(err)
		}
		pool[k] = g
	}
	d, _ := core.AsDense(algorithms.Midpoint{})
	br := core.NewBatchRunner(d, testInputs(n, b))
	br.SetParallelism(par)
	br.SetPlanCacheCap(4)
	gs := make([]graph.Graph, b)
	for round := 0; round < rounds; round++ {
		switch round % 3 {
		case 0: // shared-graph round
			br.Step(pool[round%len(pool)])
		case 1: // clustered round, 4 runs per graph
			for i := range gs {
				gs[i] = pool[(i/4+round)%len(pool)]
			}
			br.StepEach(gs)
		default: // singleton round: every run a first-sight graph
			for i := range gs {
				gs[i] = pool[(round*b+i)%len(pool)]
			}
			br.StepEach(gs)
		}
	}
}

// TestParallelKernelMetricsParity runs under -race in CI (the
// TestParallel glob): the kernel's flushed metric series must agree
// bitwise between sequential and 4-worker stepping, and histogram
// observation counts must match even though the observed latencies
// differ.
func TestParallelKernelMetricsParity(t *testing.T) {
	defer core.SetObsRegistry(obs.Default())
	read := func(par int) (vals map[string]uint64, histCount uint64, shards uint64) {
		r := obs.NewRegistry()
		core.SetObsRegistry(r)
		mixedWorkload(t, par)
		vals = make(map[string]uint64, len(kernelSeries))
		for _, name := range kernelSeries {
			vals[name] = r.CounterValue(name)
		}
		h := r.Histogram("repro_kernel_stepeach_round_seconds", "", obs.DurationBuckets())
		return vals, h.Count(), r.CounterValue("repro_kernel_step_shards_total")
	}
	seq, seqHist, _ := read(1)
	par, parHist, parShards := read(4)
	for _, name := range kernelSeries {
		if seq[name] != par[name] {
			t.Errorf("%s: par1 %d vs par4 %d", name, seq[name], par[name])
		}
	}
	if seqHist != parHist {
		t.Errorf("round latency histogram counts: par1 %d vs par4 %d", seqHist, parHist)
	}
	if seq["repro_kernel_stepeach_rounds_total"] == 0 ||
		seq["repro_kernel_plan_cache_evictions_total"] == 0 ||
		seq["repro_kernel_plan_cache_deferrals_total"] == 0 {
		t.Fatalf("workload did not move the counters it is built to move: %v", seq)
	}
	if parShards == 0 {
		t.Error("4-worker run recorded no worker-pool shards")
	}
}

// TestKernelNoopRegistryRecordsNothing binds the kernel to a live
// registry, detaches it (the REPRO_OBS=off state), steps more rounds,
// and verifies the detached period left no trace.
func TestKernelNoopRegistryRecordsNothing(t *testing.T) {
	defer core.SetObsRegistry(obs.Default())
	r := obs.NewRegistry()
	core.SetObsRegistry(r)
	mixedWorkload(t, 1)
	before := make(map[string]uint64, len(kernelSeries))
	for _, name := range kernelSeries {
		before[name] = r.CounterValue(name)
	}
	if before["repro_kernel_stepeach_rounds_total"] == 0 {
		t.Fatal("instrumented workload recorded nothing")
	}
	core.SetObsRegistry(nil)
	mixedWorkload(t, 4)
	core.SetObsRegistry(r)
	for _, name := range kernelSeries {
		if got := r.CounterValue(name); got != before[name] {
			t.Errorf("%s moved while detached: %d -> %d", name, before[name], got)
		}
	}
}

// TestInstrumentedSteppingZeroAlloc extends the steady-state
// allocation gate to instrumented stepping: with a live registry
// bound, the per-round sampling (clock reads, histogram observe,
// counter deltas) must allocate nothing.
func TestInstrumentedSteppingZeroAlloc(t *testing.T) {
	defer core.SetObsRegistry(obs.Default())
	core.SetObsRegistry(obs.NewRegistry())
	const n, b = 64, 256
	pool := make([]graph.Graph, 8)
	for k := range pool {
		pool[k] = deafVariant(t, n, k)
	}
	gs := make([]graph.Graph, b)
	d, _ := core.AsDense(algorithms.Midpoint{})
	br := core.NewBatchRunner(d, testInputs(n, b))
	br.SetParallelism(4)
	round := 0
	stepOnce := func() {
		for i := range gs {
			gs[i] = pool[(i/32+round)%len(pool)]
		}
		br.StepEach(gs)
		round++
	}
	for i := 0; i < 32; i++ {
		stepOnce()
	}
	runtime.GC()
	runtime.GC()
	if allocs := testing.AllocsPerRun(20, stepOnce); allocs != 0 {
		t.Fatalf("instrumented steady-state StepEach allocates %v times per round, want 0", allocs)
	}
}
