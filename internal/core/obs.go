package core

import (
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// This file wires the batch kernel into the obs metrics plane under a
// strict sampling contract: all instrumentation happens once per
// Step/StepEach round on the coordinating goroutine — never per run,
// never per fold — so the cost is one time.Now pair plus a handful of
// atomic adds against a round that steps B runs. Plan-cache series are
// flushed as deltas of the runner's plain (coordinator-owned) counters
// around the round, which keeps the hot cache paths untouched.
//
// With REPRO_OBS=off (or SetObsRegistry(nil)) the kernel holds a nil
// metrics bundle and every round skips straight to the raw step —
// there is no clock read and no atomic traffic at all.

// kernelMetrics bundles the kernel's process-wide instruments. One
// bundle per registry; resolved once in SetObsRegistry so rounds pay a
// single atomic pointer load.
type kernelMetrics struct {
	stepRounds     *obs.Counter
	stepEachRounds *obs.Counter
	roundSeconds   *obs.Histogram
	shardTasks     *obs.Counter
	planHits       *obs.Counter
	planMisses     *obs.Counter
	planEvicts     *obs.Counter
	planDefers     *obs.Counter
}

var kernelObs atomic.Pointer[kernelMetrics]

func init() { SetObsRegistry(obs.Default()) }

// SetObsRegistry (re)binds the kernel's metrics to a registry — nil
// disables kernel instrumentation entirely. The process default is
// obs.Default(); tests bind private registries to isolate counts, and
// paperbench toggles nil/fresh to measure instrumentation overhead.
// Not safe to call while another goroutine is mid-step.
func SetObsRegistry(r *obs.Registry) {
	if r == nil {
		kernelObs.Store(nil)
		return
	}
	kernelObs.Store(&kernelMetrics{
		stepRounds: r.Counter("repro_kernel_step_rounds_total",
			"Shared-graph batch rounds stepped (Step/StepWithHulls)."),
		stepEachRounds: r.Counter("repro_kernel_stepeach_rounds_total",
			"Per-run-graph clustered batch rounds stepped (StepEach/StepEachWithHulls)."),
		roundSeconds: r.Histogram("repro_kernel_stepeach_round_seconds",
			"Wall time of one clustered StepEach round across the whole batch.",
			obs.DurationBuckets()),
		shardTasks: r.Counter("repro_kernel_step_shards_total",
			"Worker-pool tasks executed by parallel rounds (0 for sequential rounds)."),
		planHits: r.Counter("repro_kernel_plan_cache_hits_total",
			"Step-plan cache hits (identity memo and key lookups)."),
		planMisses: r.Counter("repro_kernel_plan_cache_misses_total",
			"Step-plan cache misses (plans built)."),
		planEvicts: r.Counter("repro_kernel_plan_cache_evictions_total",
			"Step plans evicted FIFO past the cache cap."),
		planDefers: r.Counter("repro_kernel_plan_cache_deferrals_total",
			"First-sight single-run graphs stepped without building a plan."),
	})
}

// step applies one shared-graph round, sampling kernel metrics around
// the raw step when instrumentation is bound.
func (r *BatchRunner) step(g graph.Graph) (hullDone bool) {
	m := kernelObs.Load()
	if m == nil {
		return r.stepRaw(g)
	}
	h0, mi0, e0, d0 := r.planHits, r.planMisses, r.planEvicts, r.planDefers
	r.lastShards = 0
	hullDone = r.stepRaw(g)
	m.stepRounds.Inc()
	r.flushPlanDeltas(m, h0, mi0, e0, d0)
	return hullDone
}

// stepEach applies one clustered per-run-graph round, sampling kernel
// metrics (including the round latency histogram) around the raw step
// when instrumentation is bound.
func (r *BatchRunner) stepEach(gs []graph.Graph) (hullDone bool) {
	m := kernelObs.Load()
	if m == nil {
		return r.stepEachRaw(gs)
	}
	h0, mi0, e0, d0 := r.planHits, r.planMisses, r.planEvicts, r.planDefers
	r.lastShards = 0
	start := time.Now()
	hullDone = r.stepEachRaw(gs)
	m.roundSeconds.Observe(time.Since(start).Seconds())
	m.stepEachRounds.Inc()
	r.flushPlanDeltas(m, h0, mi0, e0, d0)
	return hullDone
}

// flushPlanDeltas adds the round's plan-cache counter movement and
// worker-shard count to the bound instruments. The runner's plain
// counters are coordinator-owned, so the deltas are exact; since
// clustering and admission are identical at every parallelism level
// (the determinism contract in parallel.go), the flushed plan series
// are parallelism-invariant too.
func (r *BatchRunner) flushPlanDeltas(m *kernelMetrics, h0, mi0, e0, d0 uint64) {
	m.shardTasks.Add(uint64(r.lastShards))
	m.planHits.Add(r.planHits - h0)
	m.planMisses.Add(r.planMisses - mi0)
	m.planEvicts.Add(r.planEvicts - e0)
	m.planDefers.Add(r.planDefers - d0)
}
