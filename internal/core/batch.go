package core

import (
	"fmt"

	"repro/internal/graph"
)

// This file implements the batched execution plane: one flat
// struct-of-arrays state holding B runs × n agents, stepped together.
// Multi-run workloads — sweeps, the d-dimensional vector lift, decision
// sweeps, valency settle fan-outs — are families of runs over one
// algorithm, and stepping them as a batch amortizes everything that is
// per-round but run-independent: the graph's in-mask scan, the
// mask-segment plan, buffer traffic, and the double-buffer swap. Each
// run's view into the batch is a plain DenseState aliasing the batch
// planes, so the per-algorithm steppers (and their bit-identity contract
// with the Agent oracle) are reused unchanged; batched steppers
// (BatchStepper) additionally share the receiver segmentation across
// runs without changing any per-run float operation.

// BatchState is the flat state of B same-shaped runs of one dense
// algorithm: run-major struct-of-arrays planes. Run r's value vector
// occupies Y[r*n:(r+1)*n] and its aux planes occupy
// Aux[r*planes*n:(r+1)*planes*n] (plane-major within the run), so every
// per-run view is a contiguous slice of the batch plane and stepping a
// view is bit-identical to stepping an independent DenseState.
//
// All runs of a batch share one round counter: batches step together.
type BatchState struct {
	b      int
	n      int
	planes int
	round  int
	// Y holds the B value vectors, run-major.
	Y []float64
	// Aux holds the B aux-plane blocks, run-major.
	Aux []float64
}

// B returns the number of runs in the batch.
func (st *BatchState) B() int { return st.b }

// N returns the number of agents per run.
func (st *BatchState) N() int { return st.n }

// Planes returns the number of auxiliary planes per run.
func (st *BatchState) Planes() int { return st.planes }

// Round returns the shared number of completed rounds.
func (st *BatchState) Round() int { return st.round }

// Resize shapes the batch for b runs of n agents with the given aux
// plane count, reusing the backing arrays when possible. Contents are
// unspecified afterwards.
func (st *BatchState) Resize(b, n, planes int) {
	if b < 0 {
		panic(fmt.Sprintf("core: negative batch size %d", b))
	}
	if n < 1 || n > graph.MaxNodes {
		panic(fmt.Sprintf("core: invalid agent count %d", n))
	}
	if planes < 0 {
		panic(fmt.Sprintf("core: negative aux plane count %d", planes))
	}
	st.b, st.n, st.planes = b, n, planes
	if cap(st.Y) < b*n {
		st.Y = make([]float64, b*n)
	}
	st.Y = st.Y[:b*n]
	if cap(st.Aux) < b*planes*n {
		st.Aux = make([]float64, b*planes*n)
	}
	st.Aux = st.Aux[:b*planes*n]
}

// RunY returns run r's value vector (one float64 per agent).
func (st *BatchState) RunY(r int) []float64 {
	lo, hi := r*st.n, (r+1)*st.n
	return st.Y[lo:hi:hi]
}

// RunPlane returns aux plane k of run r.
func (st *BatchState) RunPlane(r, k int) []float64 {
	if k < 0 || k >= st.planes {
		panic(fmt.Sprintf("core: aux plane %d out of range [0,%d)", k, st.planes))
	}
	lo := (r*st.planes + k) * st.n
	hi := lo + st.n
	return st.Aux[lo:hi:hi]
}

// View aliases run r as a DenseState: the view shares the batch's
// backing arrays, so reads and writes through it are reads and writes of
// the batch. Views are capacity-clamped; resizing one never grows into a
// neighboring run.
func (st *BatchState) View(r int, view *DenseState) {
	if r < 0 || r >= st.b {
		panic(fmt.Sprintf("core: batch run %d out of range [0,%d)", r, st.b))
	}
	view.n, view.planes, view.round = st.n, st.planes, st.round
	view.Y = st.RunY(r)
	lo, hi := r*st.planes*st.n, (r+1)*st.planes*st.n
	view.Aux = st.Aux[lo:hi:hi]
}

// CopyFrom overwrites st with an independent copy of src.
func (st *BatchState) CopyFrom(src *BatchState) {
	st.Resize(src.b, src.n, src.planes)
	st.round = src.round
	copy(st.Y, src.Y)
	copy(st.Aux, src.Aux)
}

// copyRun overwrites run dst with run src of the same batch (in-place
// compaction move).
func (st *BatchState) copyRun(dst, src int) {
	if dst == src {
		return
	}
	copy(st.RunY(dst), st.RunY(src))
	n := st.planes * st.n
	copy(st.Aux[dst*n:(dst+1)*n], st.Aux[src*n:(src+1)*n])
}

// MaskSeg is one receiver segment of a StepPlan: the maximal range of
// consecutive receivers [Start, End) sharing the in-neighbor mask Mask.
// Fold is the index of the first segment of the plan carrying the same
// mask: min/max/sum folds are pure functions of the received multiset,
// so a stepper may compute the fold once at segment Fold and reuse it
// here — sharing across non-adjacent equal masks, which the per-run
// last-mask memo cannot see.
type MaskSeg struct {
	Start, End int
	Mask       uint64
	Fold       int
}

// StepPlan is the per-round, run-independent precomputation of a batch
// step under one shared graph: the receiver segmentation by in-mask.
// F0 and F1 are per-segment fold scratch (one slot per segment) for
// BatchStepper implementations; the plan owns them so batched steppers
// stay allocation-free.
//
// WantHull asks the stepper to also report each run's post-step output
// hull into HullLo/HullHi (one slot per run) and acknowledge by setting
// HullDone. Steppers whose outputs are constant per segment fold the
// hull over the segment values — bit-identical to scanning the output
// vector, since min/max are exact selections over the same multiset —
// for a fraction of the scan cost. Steppers that cannot (or choose not
// to) leave HullDone false and the runner scans.
type StepPlan struct {
	G    graph.Graph
	Segs []MaskSeg
	F0   []float64
	F1   []float64

	WantHull bool
	HullDone bool
	HullLo   []float64
	HullHi   []float64
}

// build computes the segmentation of g.
func (p *StepPlan) build(g graph.Graph) {
	p.G = g
	p.Segs = p.Segs[:0]
	n := g.N()
	for j := 0; j < n; {
		m := g.InMask(j)
		end := j + 1
		for end < n && g.InMask(end) == m {
			end++
		}
		fold := len(p.Segs)
		for i, s := range p.Segs {
			if s.Mask == m {
				fold = i
				break
			}
		}
		p.Segs = append(p.Segs, MaskSeg{Start: j, End: end, Mask: m, Fold: fold})
		j = end
	}
	if cap(p.F0) < len(p.Segs) {
		p.F0 = make([]float64, len(p.Segs))
		p.F1 = make([]float64, len(p.Segs))
	}
	p.F0 = p.F0[:len(p.Segs)]
	p.F1 = p.F1[:len(p.Segs)]
}

// BatchStepper is an optional DenseAlgorithm capability: step every run
// of a batch under one shared graph in a single call, using the plan's
// receiver segmentation. Implementations must be bit-identical to
// stepping each run's view with StepDense — same float operations in the
// same order within each run; only run-independent bookkeeping (mask
// scans, segment discovery) may be shared.
type BatchStepper interface {
	StepDenseBatch(dst, src *BatchState, plan *StepPlan)
}

// AsBatchStepper returns the batch-stepping view of alg, unwrapping
// DenseProvider indirections.
func AsBatchStepper(alg Algorithm) (BatchStepper, bool) {
	if bs, ok := alg.(BatchStepper); ok {
		return bs, true
	}
	if p, ok := alg.(DenseProvider); ok {
		if d, dok := p.Dense(); dok {
			bs, bok := d.(BatchStepper)
			return bs, bok
		}
	}
	return nil, false
}

// BatchRunner executes B runs of one dense algorithm in lock-step with
// double-buffered batch state: Step computes every run's successor into
// the back buffer and swaps, allocating nothing after construction.
// Decided runs can be dropped in place (Compact), and the whole batch
// forked by copy (Fork) — the batch counterparts of DenseRunner's
// step/fork surface.
type BatchRunner struct {
	alg       DenseAlgorithm
	bs        BatchStepper
	cur, next *BatchState
	plan      StepPlan
	// viewsCur/viewsNext are persistent per-run views into cur/next,
	// swapped alongside the buffers, so the per-run paths pay two round
	// refreshes per step instead of rebuilding slice headers per use.
	// They stay valid across steps and compaction because the backing
	// arrays are stable and compaction moves data in place.
	viewsCur   []DenseState
	viewsNext  []DenseState
	origin     []int
	outScratch []float64
}

// NewBatchRunner builds a runner from per-run raw inputs (inputs[r] is
// run r's initial value vector; all runs must share the agent count).
func NewBatchRunner(alg DenseAlgorithm, inputs [][]float64) *BatchRunner {
	if len(inputs) == 0 {
		panic("core: empty batch")
	}
	r := &BatchRunner{}
	r.ResetInputs(alg, inputs)
	return r
}

// NewBatchRunnerReplicated builds a runner whose b runs all start as
// independent copies of the already-initialized dense state st —
// the batch counterpart of forking one runner b times.
func NewBatchRunnerReplicated(alg DenseAlgorithm, st *DenseState, b int) *BatchRunner {
	r := &BatchRunner{}
	r.ResetReplicated(alg, st, b)
	return r
}

// ResetInputs re-initializes the runner (reusing its buffers) for fresh
// runs from raw inputs, mirroring NewDenseRunner per run: Y is loaded
// and InitDense finalizes each run's view at round 0.
func (r *BatchRunner) ResetInputs(alg DenseAlgorithm, inputs [][]float64) {
	n := len(inputs[0])
	r.reset(alg, len(inputs), n)
	r.cur.round = 0
	for i, in := range inputs {
		if len(in) != n {
			panic(fmt.Sprintf("core: batch run %d has %d agents, want %d", i, len(in), n))
		}
		copy(r.cur.RunY(i), in)
		alg.InitDense(r.runView(i))
	}
}

// ResetReplicated re-initializes the runner (reusing its buffers) with b
// copies of st, preserving st's round.
func (r *BatchRunner) ResetReplicated(alg DenseAlgorithm, st *DenseState, b int) {
	if st.planes != alg.DensePlanes() {
		panic(fmt.Sprintf("core: state with %d planes for algorithm with %d", st.planes, alg.DensePlanes()))
	}
	r.reset(alg, b, st.n)
	r.cur.round = st.round
	for i := 0; i < b; i++ {
		copy(r.cur.RunY(i), st.Y)
		lo := i * st.planes * st.n
		copy(r.cur.Aux[lo:lo+st.planes*st.n], st.Aux)
	}
}

// reset shapes the buffers, rebuilds the persistent views, and resets
// the origin map.
func (r *BatchRunner) reset(alg DenseAlgorithm, b, n int) {
	r.alg = alg
	r.bs, _ = AsBatchStepper(alg)
	if r.cur == nil {
		r.cur, r.next = &BatchState{}, &BatchState{}
	}
	r.cur.Resize(b, n, alg.DensePlanes())
	r.next.Resize(b, n, alg.DensePlanes())
	r.origin = r.origin[:0]
	for i := 0; i < b; i++ {
		r.origin = append(r.origin, i)
	}
	if cap(r.outScratch) < n {
		r.outScratch = make([]float64, n)
	}
	r.outScratch = r.outScratch[:n]
	r.buildViews()
}

// buildViews (re)derives the persistent per-run views from the current
// buffers.
func (r *BatchRunner) buildViews() {
	b := r.cur.b
	if cap(r.viewsCur) < b {
		r.viewsCur = make([]DenseState, b)
		r.viewsNext = make([]DenseState, b)
	}
	r.viewsCur = r.viewsCur[:b]
	r.viewsNext = r.viewsNext[:b]
	for i := 0; i < b; i++ {
		r.cur.View(i, &r.viewsCur[i])
		r.next.View(i, &r.viewsNext[i])
	}
}

// runView returns run i's current view with a fresh round stamp.
func (r *BatchRunner) runView(i int) *DenseState {
	v := &r.viewsCur[i]
	v.round = r.cur.round
	return v
}

// Alg returns the algorithm being run.
func (r *BatchRunner) Alg() DenseAlgorithm { return r.alg }

// B returns the current number of (surviving) runs.
func (r *BatchRunner) B() int { return r.cur.b }

// N returns the number of agents per run.
func (r *BatchRunner) N() int { return r.cur.n }

// Round returns the shared number of completed rounds.
func (r *BatchRunner) Round() int { return r.cur.round }

// State returns the current batch state. Callers must not mutate it.
func (r *BatchRunner) State() *BatchState { return r.cur }

// Origin returns the original batch index of current run i — the
// identity Compact preserves while dropping decided runs.
func (r *BatchRunner) Origin(i int) int { return r.origin[i] }

// prep shapes the back buffer for one step.
func (r *BatchRunner) prep(n int) {
	if n != r.cur.n {
		panic(fmt.Sprintf("core: graph on %d nodes applied to batch of %d agents", n, r.cur.n))
	}
	r.next.Resize(r.cur.b, r.cur.n, r.cur.planes)
	r.next.round = r.cur.round + 1
}

// Step applies one round with the shared communication graph g to every
// run: through the algorithm's BatchStepper when it has one (receiver
// segmentation shared across runs), per-run views otherwise.
func (r *BatchRunner) Step(g graph.Graph) {
	r.plan.WantHull = false
	r.step(g)
}

// StepWithHulls applies one shared-graph round and reports every run's
// post-round output hull into lo/hi (length B): computed inside the
// batched stepper for free from the segment folds when possible, by
// scanning the outputs otherwise. The hulls are bit-identical to
// calling Hull(i) per run either way.
func (r *BatchRunner) StepWithHulls(g graph.Graph, lo, hi []float64) {
	r.plan.WantHull = true
	r.plan.HullLo, r.plan.HullHi = lo, hi
	r.step(g)
	if !r.plan.HullDone {
		r.scanHulls(lo, hi)
	}
	r.plan.WantHull, r.plan.HullLo, r.plan.HullHi = false, nil, nil
}

func (r *BatchRunner) step(g graph.Graph) {
	r.prep(g.N())
	r.plan.HullDone = false
	if r.bs != nil {
		r.plan.build(g)
		r.bs.StepDenseBatch(r.next, r.cur, &r.plan)
	} else {
		for i := 0; i < r.cur.b; i++ {
			r.stepRun(i, g)
		}
	}
	r.swap()
}

// swap flips the double buffer and its view arrays.
func (r *BatchRunner) swap() {
	r.cur, r.next = r.next, r.cur
	r.viewsCur, r.viewsNext = r.viewsNext, r.viewsCur
}

// scanHulls fills lo/hi with every run's output hull by scanning.
func (r *BatchRunner) scanHulls(lo, hi []float64) {
	for i := 0; i < r.cur.b; i++ {
		lo[i], hi[i] = r.Hull(i)
	}
}

// StepEach applies one round with per-run graphs (gs[i] drives run i).
// When every run plays the same graph the shared-graph fast path is
// taken, segmentation and all.
func (r *BatchRunner) StepEach(gs []graph.Graph) {
	r.plan.WantHull = false
	r.stepEach(gs)
}

// StepEachWithHulls is StepEach plus per-run output hulls, like
// StepWithHulls.
func (r *BatchRunner) StepEachWithHulls(gs []graph.Graph, lo, hi []float64) {
	r.plan.WantHull = true
	r.plan.HullLo, r.plan.HullHi = lo, hi
	_, hullDone := r.stepEach(gs)
	if !hullDone {
		r.scanHulls(lo, hi)
	}
	r.plan.WantHull, r.plan.HullLo, r.plan.HullHi = false, nil, nil
}

func (r *BatchRunner) stepEach(gs []graph.Graph) (shared, hullDone bool) {
	if len(gs) != r.cur.b {
		panic(fmt.Sprintf("core: %d graphs for a batch of %d runs", len(gs), r.cur.b))
	}
	shared = true
	for i := 1; i < len(gs); i++ {
		if !gs[i].Equal(gs[0]) {
			shared = false
			break
		}
	}
	if shared {
		r.step(gs[0])
		return true, r.plan.HullDone
	}
	r.StepRuns(gs)
	return false, false
}

// StepRuns applies one round with per-run graphs, without the
// shared-graph detection of StepEach — for callers that know the graphs
// differ (a settle fan-out repeating a different model graph per run).
func (r *BatchRunner) StepRuns(gs []graph.Graph) {
	if len(gs) != r.cur.b {
		panic(fmt.Sprintf("core: %d graphs for a batch of %d runs", len(gs), r.cur.b))
	}
	r.prep(gs[0].N())
	r.plan.HullDone = false
	for i := 0; i < r.cur.b; i++ {
		if gs[i].N() != r.cur.n {
			panic(fmt.Sprintf("core: graph on %d nodes applied to batch of %d agents", gs[i].N(), r.cur.n))
		}
		r.stepRun(i, gs[i])
	}
	r.swap()
}

// stepRun steps run i through its persistent views (the generic path).
func (r *BatchRunner) stepRun(i int, g graph.Graph) {
	src, dst := &r.viewsCur[i], &r.viewsNext[i]
	src.round = r.cur.round
	dst.round = r.next.round
	r.alg.StepDense(dst, src, g)
}

// Outputs writes run i's observable outputs into out (length N).
func (r *BatchRunner) Outputs(i int, out []float64) {
	r.alg.OutputsDense(r.runView(i), out)
}

// Hull returns the convex hull [lo, hi] of run i's observable outputs
// without allocating.
func (r *BatchRunner) Hull(i int) (lo, hi float64) {
	r.Outputs(i, r.outScratch)
	return Hull(r.outScratch)
}

// Diameter returns the output diameter of run i without allocating.
func (r *BatchRunner) Diameter(i int) float64 {
	lo, hi := r.Hull(i)
	return hi - lo
}

// AppendRunFingerprint appends run i's configuration fingerprint,
// byte-identical to the equivalent DenseRunner's (and therefore to the
// Agent path's) fingerprint. ok is false when the algorithm cannot
// fingerprint dense states.
func (r *BatchRunner) AppendRunFingerprint(dst []byte, i int) ([]byte, bool) {
	return AppendDenseFingerprint(r.alg, r.runView(i), dst)
}

// MaterializeRun builds an agent configuration equivalent to run i.
func (r *BatchRunner) MaterializeRun(i int) *Config {
	return MaterializeDense(r.alg, r.runView(i))
}

// Compact drops every run whose keep entry is false, moving survivors
// forward in place (two copies per surviving displaced run, no per-agent
// work) and preserving their relative order and Origin identities. It
// returns the new batch size.
func (r *BatchRunner) Compact(keep []bool) int {
	if len(keep) != r.cur.b {
		panic(fmt.Sprintf("core: %d keep flags for a batch of %d runs", len(keep), r.cur.b))
	}
	w := 0
	for i := 0; i < r.cur.b; i++ {
		if !keep[i] {
			continue
		}
		r.cur.copyRun(w, i)
		r.origin[w] = r.origin[i]
		w++
	}
	r.origin = r.origin[:w]
	r.cur.b = w
	r.cur.Y = r.cur.Y[:w*r.cur.n]
	r.cur.Aux = r.cur.Aux[:w*r.cur.planes*r.cur.n]
	// The views alias positions, and survivors moved into the kept
	// positions in place, so truncation suffices.
	r.viewsCur = r.viewsCur[:w]
	r.viewsNext = r.viewsNext[:w]
	return w
}

// Fork returns an independent copy of the runner, the batch counterpart
// of DenseRunner.Fork.
func (r *BatchRunner) Fork() *BatchRunner {
	f := &BatchRunner{alg: r.alg, bs: r.bs, cur: &BatchState{}, next: &BatchState{}}
	f.cur.CopyFrom(r.cur)
	f.next.Resize(r.cur.b, r.cur.n, r.cur.planes)
	f.origin = append([]int(nil), r.origin...)
	f.outScratch = make([]float64, r.cur.n)
	f.buildViews()
	return f
}
