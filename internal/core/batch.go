package core

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// This file implements the batched execution plane: one flat
// struct-of-arrays state holding B runs × n agents, stepped together.
// Multi-run workloads — sweeps, the d-dimensional vector lift, decision
// sweeps, valency settle fan-outs — are families of runs over one
// algorithm, and stepping them as a batch amortizes everything that is
// per-round but run-independent: the graph's in-mask scan, the
// mask-segment plan, buffer traffic, and the double-buffer swap. Each
// run's view into the batch is a plain DenseState aliasing the batch
// planes, so the per-algorithm steppers (and their bit-identity contract
// with the Agent oracle) are reused unchanged; batched steppers
// (BatchStepper) additionally share the receiver segmentation across
// runs without changing any per-run float operation.

// BatchState is the flat state of B same-shaped runs of one dense
// algorithm: run-major struct-of-arrays planes. Run r's value vector
// occupies Y[r*n:(r+1)*n] and its aux planes occupy
// Aux[r*planes*n:(r+1)*planes*n] (plane-major within the run), so every
// per-run view is a contiguous slice of the batch plane and stepping a
// view is bit-identical to stepping an independent DenseState.
//
// All runs of a batch share one round counter: batches step together.
type BatchState struct {
	b      int
	n      int
	planes int
	round  int
	// Y holds the B value vectors, run-major.
	Y []float64
	// Aux holds the B aux-plane blocks, run-major.
	Aux []float64
}

// B returns the number of runs in the batch.
func (st *BatchState) B() int { return st.b }

// N returns the number of agents per run.
func (st *BatchState) N() int { return st.n }

// Planes returns the number of auxiliary planes per run.
func (st *BatchState) Planes() int { return st.planes }

// Round returns the shared number of completed rounds.
func (st *BatchState) Round() int { return st.round }

// Resize shapes the batch for b runs of n agents with the given aux
// plane count, reusing the backing arrays when possible. Contents are
// unspecified afterwards.
func (st *BatchState) Resize(b, n, planes int) {
	if b < 0 {
		panic(fmt.Sprintf("core: negative batch size %d", b))
	}
	if n < 1 || n > graph.MaxNodes {
		panic(fmt.Sprintf("core: invalid agent count %d", n))
	}
	if planes < 0 {
		panic(fmt.Sprintf("core: negative aux plane count %d", planes))
	}
	st.b, st.n, st.planes = b, n, planes
	if cap(st.Y) < b*n {
		st.Y = make([]float64, b*n)
	}
	st.Y = st.Y[:b*n]
	if cap(st.Aux) < b*planes*n {
		st.Aux = make([]float64, b*planes*n)
	}
	st.Aux = st.Aux[:b*planes*n]
}

// RunY returns run r's value vector (one float64 per agent).
func (st *BatchState) RunY(r int) []float64 {
	lo, hi := r*st.n, (r+1)*st.n
	return st.Y[lo:hi:hi]
}

// RunPlane returns aux plane k of run r.
func (st *BatchState) RunPlane(r, k int) []float64 {
	if k < 0 || k >= st.planes {
		panic(fmt.Sprintf("core: aux plane %d out of range [0,%d)", k, st.planes))
	}
	lo := (r*st.planes + k) * st.n
	hi := lo + st.n
	return st.Aux[lo:hi:hi]
}

// View aliases run r as a DenseState: the view shares the batch's
// backing arrays, so reads and writes through it are reads and writes of
// the batch. Views are capacity-clamped; resizing one never grows into a
// neighboring run.
func (st *BatchState) View(r int, view *DenseState) {
	if r < 0 || r >= st.b {
		panic(fmt.Sprintf("core: batch run %d out of range [0,%d)", r, st.b))
	}
	view.n, view.planes, view.round = st.n, st.planes, st.round
	view.Y = st.RunY(r)
	lo, hi := r*st.planes*st.n, (r+1)*st.planes*st.n
	view.Aux = st.Aux[lo:hi:hi]
}

// CopyFrom overwrites st with an independent copy of src.
func (st *BatchState) CopyFrom(src *BatchState) {
	st.Resize(src.b, src.n, src.planes)
	st.round = src.round
	copy(st.Y, src.Y)
	copy(st.Aux, src.Aux)
}

// copyRun overwrites run dst with run src of the same batch (in-place
// compaction move).
func (st *BatchState) copyRun(dst, src int) {
	if dst == src {
		return
	}
	copy(st.RunY(dst), st.RunY(src))
	n := st.planes * st.n
	copy(st.Aux[dst*n:(dst+1)*n], st.Aux[src*n:(src+1)*n])
}

// MaskSeg is one receiver segment of a StepPlan: the maximal range of
// consecutive receivers [Start, End) sharing the in-neighbor mask Mask.
// Fold is the index of the first segment of the plan carrying the same
// mask: min/max/sum folds are pure functions of the received multiset,
// so a stepper may compute the fold once at segment Fold and reuse it
// here — sharing across non-adjacent equal masks, which the per-run
// last-mask memo cannot see.
//
// Base/Delta factor a distinct fold (Fold == own index) over an earlier
// one: when Base >= 0, Segs[Base] is an earlier distinct fold whose mask
// is a strict subset of Mask, and Delta = Mask &^ Segs[Base].Mask is the
// non-empty remainder. A stepper whose fold is an exact multiset
// selection (min/max: fmin/fmax results do not depend on association
// order, including the NaN and signed-zero cases) may extend the base
// fold by Delta's bits instead of refolding the whole mask —
// bit-identical, and on churn-style graphs (each down agent's mask is
// the all-up mask plus its self bit) it turns O(n) refolds into O(1)
// extensions. Order-sensitive folds (sums) must ignore Base and fold
// Mask directly.
// Multi-word plans (StepPlan.Words > 1) do not widen the struct — the
// single-word batch kernel copies a MaskSeg per segment per run, so its
// size is hot. Instead Mask stays zero, the segment's mask row is the
// graph's in-row of any receiver in [Start, End) (equal by construction;
// StepPlan.MaskRow), and Delta is reinterpreted as the word offset of the
// segment's delta row in the plan's arena (StepPlan.DeltaRow), valid when
// Base >= 0. Steppers dispatch on the plan's word count once per call.
type MaskSeg struct {
	Start, End int
	Mask       uint64
	Fold       int
	Base       int
	Delta      uint64
}

// StepPlan is the run-independent precomputation of a batch step under
// one graph: the receiver segmentation by in-mask. Plans are built once
// per distinct graph and cached by the runner (keyed by the graph's raw
// mask bytes), so a lasso schedule that revisits its graphs every loop
// period re-steps through ready-made plans. F0 and F1 are per-segment
// fold scratch (one slot per segment) for BatchStepper implementations;
// the plan owns them so batched steppers stay allocation-free.
//
// Runs lists the batch run indices this plan steps in the current call —
// the cluster of runs whose round graph this plan was built from.
// Steppers iterate it instead of the full batch, so one StepEach round
// with heterogeneous graphs is a handful of clustered calls rather than
// a per-run fallback.
//
// WantHull asks the stepper to also report each run's post-step output
// hull into HullLo/HullHi (one slot per run, indexed by the absolute run
// index) and acknowledge by setting HullDone. Steppers whose outputs are
// constant per segment fold the hull over the segment values —
// bit-identical to scanning the output vector, since min/max are exact
// selections over the same multiset — for a fraction of the scan cost.
// Steppers that cannot (or choose not to) leave HullDone false and the
// runner scans.
type StepPlan struct {
	G    graph.Graph
	Segs []MaskSeg
	F0   []float64
	F1   []float64

	// Words is the graph's row width (graph.Words()): 1 for every n <= 64
	// plan. Steppers dispatch once per call: single-word plans read
	// MaskSeg.Mask/Delta directly, wider plans go through MaskRow/DeltaRow.
	Words int

	Runs []int

	// SegLo/SegHi bound the segment range this call must step — set
	// only on fold shards handed to FoldShardCapable steppers. The zero
	// value means the full segmentation (SegRange).
	SegLo, SegHi int

	// RecvLo/RecvHi bound the receiver range this call must write — set
	// only on word shards of multi-word plans handed to FoldShardCapable
	// steppers (the fourth shard axis: word-aligned receiver ranges
	// within a fold). A receiver shard intersects every segment with
	// [RecvLo, RecvHi) and must compute each touched segment's fold
	// shard-locally from its mask, without cross-segment reuse — the
	// fold it reuses might belong to a segment the shard never touched.
	// The zero value means all receivers (RecvRange).
	RecvLo, RecvHi int

	WantHull bool
	HullDone bool
	HullLo   []float64
	HullHi   []float64

	// deltaArena backs the multi-word segments' delta rows (DeltaRow): at
	// most one Words-wide delta per distinct fold, so the arena is sized
	// once per build (n*Words words) and appended into without
	// reallocating — offsets into it stay valid for the plan's lifetime.
	deltaArena []uint64
}

// SegRange returns the segment range the stepper must cover in this
// call: the fold-shard bounds when the runner set them, the full
// segmentation otherwise.
func (p *StepPlan) SegRange() (lo, hi int) {
	if p.SegHi == 0 {
		return 0, len(p.Segs)
	}
	return p.SegLo, p.SegHi
}

// RecvRange returns the receiver range the stepper must write in this
// call: the word-shard bounds when the runner set them, all n receivers
// otherwise.
func (p *StepPlan) RecvRange(n int) (lo, hi int) {
	if p.RecvHi == 0 {
		return 0, n
	}
	return p.RecvLo, p.RecvHi
}

// MaskRow returns a multi-word segment's in-mask row: the graph row of
// any receiver in [Start, End) — equal across the segment by
// construction. The slice aliases the graph's immutable storage.
func (p *StepPlan) MaskRow(seg *MaskSeg) []uint64 {
	return p.G.InRow(seg.Start)
}

// DeltaRow returns a multi-word segment's subset-delta row — Words words
// of the plan's arena at the offset carried in seg.Delta. Valid only
// when seg.Base >= 0.
func (p *StepPlan) DeltaRow(seg *MaskSeg) []uint64 {
	off := int(seg.Delta)
	return p.deltaArena[off : off+p.Words : off+p.Words]
}

// rowsEq reports whether two equal-length mask rows hold the same bits.
func rowsEq(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rowSubset reports whether mask row sub is contained in row super.
func rowSubset(sub, super []uint64) bool {
	for i := range sub {
		if sub[i]&^super[i] != 0 {
			return false
		}
	}
	return true
}

// rowCount returns the popcount of a mask row.
func rowCount(row []uint64) int {
	c := 0
	for _, m := range row {
		c += bits.OnesCount64(m)
	}
	return c
}

// build computes the segmentation of g.
func (p *StepPlan) build(g graph.Graph) {
	p.G = g
	p.Words = g.Words()
	p.Segs = p.Segs[:0]
	n := g.N()
	if p.Words == 1 {
		for j := 0; j < n; {
			m := g.InMask(j)
			end := j + 1
			for end < n && g.InMask(end) == m {
				end++
			}
			fold := len(p.Segs)
			// While scanning for an equal mask, also track the widest earlier
			// distinct fold whose mask is a strict subset of m: a base of one
			// bit saves nothing (the extension costs one combine per delta
			// bit), so only bases of two or more count.
			base, baseBits := -1, 1
			for i, s := range p.Segs {
				if s.Mask == m {
					fold = i
					break
				}
				if s.Fold == i && s.Mask&^m == 0 {
					if pc := bits.OnesCount64(s.Mask); pc > baseBits {
						base, baseBits = i, pc
					}
				}
			}
			seg := MaskSeg{Start: j, End: end, Mask: m, Fold: fold, Base: -1}
			if fold == len(p.Segs) && base >= 0 {
				seg.Base, seg.Delta = base, m&^p.Segs[base].Mask
			}
			p.Segs = append(p.Segs, seg)
			j = end
		}
	} else {
		p.buildW(g, n)
	}
	if cap(p.F0) < len(p.Segs) {
		p.F0 = make([]float64, len(p.Segs))
		p.F1 = make([]float64, len(p.Segs))
	}
	p.F0 = p.F0[:len(p.Segs)]
	p.F1 = p.F1[:len(p.Segs)]
}

// buildW is the multi-word segmentation: the same fold-sharing and
// subset-delta discovery as the single-word build, word-parallel. Segment
// mask rows stay in the graph's immutable storage (MaskRow derives them
// from Start); deltas are materialized into the plan's arena, which is
// sized so appends never reallocate (each distinct fold contributes at
// most one Words-wide delta), and referenced by offset through Delta.
func (p *StepPlan) buildW(g graph.Graph, n int) {
	w := p.Words
	if cap(p.deltaArena) < n*w {
		p.deltaArena = make([]uint64, 0, n*w)
	}
	p.deltaArena = p.deltaArena[:0]
	for j := 0; j < n; {
		row := g.InRow(j)
		end := j + 1
		for end < n && rowsEq(g.InRow(end), row) {
			end++
		}
		fold := len(p.Segs)
		base, baseBits := -1, 1
		for i := range p.Segs {
			s := &p.Segs[i]
			srow := g.InRow(s.Start)
			if rowsEq(srow, row) {
				fold = i
				break
			}
			if s.Fold == i && rowSubset(srow, row) {
				if pc := rowCount(srow); pc > baseBits {
					base, baseBits = i, pc
				}
			}
		}
		seg := MaskSeg{Start: j, End: end, Fold: fold, Base: -1}
		if fold == len(p.Segs) && base >= 0 {
			seg.Base = base
			off := len(p.deltaArena)
			bm := g.InRow(p.Segs[base].Start)
			for x := 0; x < w; x++ {
				p.deltaArena = append(p.deltaArena, row[x]&^bm[x])
			}
			seg.Delta = uint64(off)
		}
		p.Segs = append(p.Segs, seg)
		j = end
	}
}

// BatchStepper is an optional DenseAlgorithm capability: step every run
// of a batch under one shared graph in a single call, using the plan's
// receiver segmentation. Implementations must be bit-identical to
// stepping each run's view with StepDense: every stored float must carry
// the same bits. Beyond sharing run-independent bookkeeping (mask scans,
// segment discovery), a stepper may also reassociate folds whose result
// is an exact multiset selection (min/max), e.g. via MaskSeg.Base;
// order-sensitive arithmetic (sums, averages) must keep StepDense's
// operation order exactly.
type BatchStepper interface {
	StepDenseBatch(dst, src *BatchState, plan *StepPlan)
}

// AsBatchStepper returns the batch-stepping view of alg, unwrapping
// DenseProvider indirections.
func AsBatchStepper(alg Algorithm) (BatchStepper, bool) {
	if bs, ok := alg.(BatchStepper); ok {
		return bs, true
	}
	if p, ok := alg.(DenseProvider); ok {
		if d, dok := p.Dense(); dok {
			bs, bok := d.(BatchStepper)
			return bs, bok
		}
	}
	return nil, false
}

// planEntry is one cached StepPlan plus its cache bookkeeping: the
// owned mask-byte key, the step stamp/slot that assign the entry to a
// cluster during one clustered round, and the recycling state — refs
// counts the per-run identity memos holding the entry, dead marks it
// evicted. A dead entry parks in the runner's graveyard until no memo
// references it, then its segment and fold-scratch storage is reused
// for the next cache miss, so plan churn under many-distinct-graph
// schedules is allocation-free in steady state.
//
// A first-sight entry starts pending: its key lives only in keyBytes
// (a reusable buffer — no string is materialized) and its plan is not
// yet built. Pending entries are admitted — built, string-keyed, and
// inserted into the cache — only when the round shows the plan will be
// shared (a multi-run cluster) or the doorkeeper shows the graph has
// been seen before; otherwise the run steps through the per-run path
// and the entry is returned to the free list untouched.
type planEntry struct {
	plan     StepPlan
	key      string
	keyBytes []byte
	hash     uint64
	mark     uint64
	slot     int
	refs     int
	dead     bool
}

// planCluster is one distinct-graph cluster of a clustered round: the
// plan to step with and the batch run indices stepping under it.
type planCluster struct {
	e    *planEntry
	runs []int
}

// DefaultPlanCacheCap bounds a runner's step-plan cache: past it the
// oldest plans are evicted FIFO, so hostile schedules with unboundedly
// many distinct graphs rebuild plans instead of growing the cache. At
// the default, a 64-agent worst case holds on the order of a megabyte.
const DefaultPlanCacheCap = 512

// BatchRunner executes B runs of one dense algorithm in lock-step with
// double-buffered batch state: Step computes every run's successor into
// the back buffer and swaps, allocating nothing in steady state.
// Decided runs can be dropped in place (Compact), and the whole batch
// forked by copy (Fork) — the batch counterparts of DenseRunner's
// step/fork surface.
//
// Rounds with per-run graphs (StepEach) are stepped clustered: runs are
// grouped by graph identity — the raw mask bytes, with a constant-time
// per-run fast path when a run replays the same graph.Graph value as
// last round — and each cluster steps through one shared, cached
// StepPlan. The plan cache is bounded (SetPlanCacheCap) and instrumented
// (PlanCacheStats).
type BatchRunner struct {
	alg       DenseAlgorithm
	bs        BatchStepper
	cur, next *BatchState
	// hull is the per-call hull request relayed into the plans used by
	// the round's clusters.
	hull struct {
		want   bool
		lo, hi []float64
	}
	// viewsCur/viewsNext are persistent per-run views into cur/next,
	// swapped alongside the buffers, so the per-run paths pay two round
	// refreshes per step instead of rebuilding slice headers per use.
	// They stay valid across steps and compaction because the backing
	// arrays are stable and compaction moves data in place.
	viewsCur   []DenseState
	viewsNext  []DenseState
	origin     []int
	outScratch []float64

	// Plan cache: mask-byte key -> entry, FIFO-bounded, plus the pooled
	// per-round clustering scratch. lastG/lastPlan are the per-run
	// identity memo: run i stepping the same graph.Graph value as last
	// round reuses its plan without touching the key buffer or the map.
	// allRuns is the precomputed 0..B-1 subset for shared-graph rounds.
	plans      map[string]*planEntry
	planOrder  []*planEntry
	planHead   int
	planCap    int
	planFree   []*planEntry
	planDead   []*planEntry
	planHits   uint64
	planMisses uint64
	planEvicts uint64
	planDefers uint64
	keyBuf     []byte
	stepSeq    uint64
	clusters   []planCluster
	allRuns    []int
	lastG      []graph.Graph
	lastPlan   []*planEntry
	// pending is the per-round list of first-sight entries awaiting the
	// admission decision; doorkeeper is the direct-mapped table of
	// recently seen graph hashes that grants admission on second sight.
	pending    []*planEntry
	doorkeeper []uint64

	// Intra-step parallelism (parallel.go): par is the configured worker
	// count (0 = inherit the process default), segOK whether the stepper
	// may be fold-sharded, job the pooled per-round task list, and arena
	// the coordinator's own executor scratch. lastShards is the task
	// count of the most recent parallel round, sampled by the obs
	// wrappers (obs.go); sequential rounds leave it at the wrapper's 0.
	par        int
	segOK      bool
	job        stepJob
	arena      stepArena
	lastShards int
}

// NewBatchRunner builds a runner from per-run raw inputs (inputs[r] is
// run r's initial value vector; all runs must share the agent count).
func NewBatchRunner(alg DenseAlgorithm, inputs [][]float64) *BatchRunner {
	if len(inputs) == 0 {
		panic("core: empty batch")
	}
	r := &BatchRunner{}
	r.ResetInputs(alg, inputs)
	return r
}

// NewBatchRunnerReplicated builds a runner whose b runs all start as
// independent copies of the already-initialized dense state st —
// the batch counterpart of forking one runner b times.
func NewBatchRunnerReplicated(alg DenseAlgorithm, st *DenseState, b int) *BatchRunner {
	r := &BatchRunner{}
	r.ResetReplicated(alg, st, b)
	return r
}

// ResetInputs re-initializes the runner (reusing its buffers) for fresh
// runs from raw inputs, mirroring NewDenseRunner per run: Y is loaded
// and InitDense finalizes each run's view at round 0.
func (r *BatchRunner) ResetInputs(alg DenseAlgorithm, inputs [][]float64) {
	n := len(inputs[0])
	r.reset(alg, len(inputs), n)
	r.cur.round = 0
	for i, in := range inputs {
		if len(in) != n {
			panic(fmt.Sprintf("core: batch run %d has %d agents, want %d", i, len(in), n))
		}
		copy(r.cur.RunY(i), in)
		alg.InitDense(r.runView(i))
	}
}

// ResetReplicated re-initializes the runner (reusing its buffers) with b
// copies of st, preserving st's round.
func (r *BatchRunner) ResetReplicated(alg DenseAlgorithm, st *DenseState, b int) {
	if st.planes != alg.DensePlanes() {
		panic(fmt.Sprintf("core: state with %d planes for algorithm with %d", st.planes, alg.DensePlanes()))
	}
	r.reset(alg, b, st.n)
	r.cur.round = st.round
	for i := 0; i < b; i++ {
		copy(r.cur.RunY(i), st.Y)
		lo := i * st.planes * st.n
		copy(r.cur.Aux[lo:lo+st.planes*st.n], st.Aux)
	}
}

// reset shapes the buffers, rebuilds the persistent views, and resets
// the origin map and the clustering state.
func (r *BatchRunner) reset(alg DenseAlgorithm, b, n int) {
	r.alg = alg
	r.bs, _ = AsBatchStepper(alg)
	r.segOK = false
	if fs, ok := r.bs.(FoldShardCapable); ok {
		r.segOK = fs.FoldShardable()
	}
	if r.cur == nil {
		r.cur, r.next = &BatchState{}, &BatchState{}
	}
	if r.cur.n != 0 && r.cur.n != n {
		// Plans are keyed by mask bytes (node count implied by length),
		// so stale-n plans can never be misapplied — but they would
		// squat in the bounded cache, so drop them on reshape.
		r.clearPlanCache()
	}
	r.cur.Resize(b, n, alg.DensePlanes())
	r.next.Resize(b, n, alg.DensePlanes())
	r.origin = r.origin[:0]
	r.allRuns = r.allRuns[:0]
	for i := 0; i < b; i++ {
		r.origin = append(r.origin, i)
		r.allRuns = append(r.allRuns, i)
	}
	r.releaseMemos()
	if cap(r.lastG) < b {
		r.lastG = make([]graph.Graph, b)
		r.lastPlan = make([]*planEntry, b)
	}
	r.lastG = r.lastG[:b]
	r.lastPlan = r.lastPlan[:b]
	if cap(r.outScratch) < n {
		r.outScratch = make([]float64, n)
	}
	r.outScratch = r.outScratch[:n]
	r.buildViews()
}

// clearPlanCache drops every cached plan, the recycling pools, and the
// per-run memos (the counters persist: they account the runner's
// lifetime).
func (r *BatchRunner) clearPlanCache() {
	r.plans = nil
	r.planOrder = r.planOrder[:0]
	r.planHead = 0
	for i := range r.planFree {
		r.planFree[i] = nil
	}
	r.planFree = r.planFree[:0]
	for i := range r.planDead {
		r.planDead[i] = nil
	}
	r.planDead = r.planDead[:0]
	for i := range r.doorkeeper {
		r.doorkeeper[i] = 0
	}
	r.releaseMemos()
}

// releaseMemos clears every per-run plan memo, returning the refs the
// memos held so dead entries become collectable.
func (r *BatchRunner) releaseMemos() {
	for i := range r.lastPlan {
		if e := r.lastPlan[i]; e != nil {
			e.refs--
		}
		r.lastG[i] = graph.Graph{}
		r.lastPlan[i] = nil
	}
}

// collectPlans moves graveyard entries no memo references any more to
// the free list for reuse. It runs between rounds, so an entry still
// clustered in the current round can never be rebuilt mid-round.
func (r *BatchRunner) collectPlans() {
	if len(r.planDead) == 0 {
		return
	}
	w := 0
	for _, e := range r.planDead {
		if e.refs == 0 {
			r.planFree = append(r.planFree, e)
		} else {
			r.planDead[w] = e
			w++
		}
	}
	for i := w; i < len(r.planDead); i++ {
		r.planDead[i] = nil
	}
	r.planDead = r.planDead[:w]
}

// SetPlanCacheCap bounds the step-plan cache to at most n plans
// (DefaultPlanCacheCap for n <= 0), evicting oldest-first immediately
// when over the new cap.
func (r *BatchRunner) SetPlanCacheCap(n int) {
	if n <= 0 {
		n = DefaultPlanCacheCap
	}
	r.planCap = n
	r.evictPlans(0)
}

// PlanCacheStats returns the plan cache's lifetime accounting: hits
// (per-run identity memo and key lookups served by an existing or
// about-to-be-built plan), misses (plans built), evictions, deferrals
// (first-sight single-run graphs stepped through the per-run path
// without building a plan), and the current entry count — the batch
// plane's counterpart of SweepCache.Stats, so benches can report plan
// reuse rates.
func (r *BatchRunner) PlanCacheStats() (hits, misses, evictions, deferrals uint64, entries int) {
	return r.planHits, r.planMisses, r.planEvicts, r.planDefers, len(r.plans)
}

// lookupPlan returns the cached plan entry for g, building (and
// inserting, evicting oldest past the cap) on miss — the shared-graph
// path, where a plan always pays for itself across the whole batch.
func (r *BatchRunner) lookupPlan(g graph.Graph) *planEntry {
	r.initPlans()
	r.keyBuf = g.AppendMaskKey(r.keyBuf[:0])
	if e, ok := r.plans[string(r.keyBuf)]; ok {
		r.planHits++
		return e
	}
	e := r.takeEntry()
	e.keyBytes = append(e.keyBytes[:0], r.keyBuf...)
	e.hash = maskHash(g)
	e.plan.G = g
	r.admitPlan(e)
	return e
}

// initPlans lazily readies the map and the cap.
func (r *BatchRunner) initPlans() {
	if r.plans == nil {
		r.plans = make(map[string]*planEntry)
	}
	if r.planCap <= 0 {
		r.planCap = DefaultPlanCacheCap
	}
}

// takeEntry pops a recycled entry from the free list, or allocates.
func (r *BatchRunner) takeEntry() *planEntry {
	if k := len(r.planFree) - 1; k >= 0 {
		e := r.planFree[k]
		r.planFree[k] = nil
		r.planFree = r.planFree[:k]
		e.dead = false
		return e
	}
	return &planEntry{}
}

// findPlan resolves g to a plan entry during a clustered round: the
// cache itself, then the round's pending first-sight entries, then a
// fresh pending entry holding g (plan unbuilt, key unmaterialized)
// whose admission is decided after the whole round is clustered.
func (r *BatchRunner) findPlan(g graph.Graph) *planEntry {
	r.initPlans()
	r.keyBuf = g.AppendMaskKey(r.keyBuf[:0])
	if e, ok := r.plans[string(r.keyBuf)]; ok {
		r.planHits++
		return e
	}
	h := maskHash(g)
	for _, e := range r.pending {
		if e.hash == h && string(r.keyBuf) == string(e.keyBytes) {
			r.planHits++
			return e
		}
	}
	e := r.takeEntry()
	e.keyBytes = append(e.keyBytes[:0], r.keyBuf...)
	e.hash = h
	e.plan.G = g
	r.pending = append(r.pending, e)
	return e
}

// admitPlan builds a pending entry's plan and inserts it into the
// cache, evicting oldest-first past the cap. Counts as the miss.
func (r *BatchRunner) admitPlan(e *planEntry) {
	r.planMisses++
	e.key = string(e.keyBytes)
	e.plan.build(e.plan.G)
	r.evictPlans(1)
	r.plans[e.key] = e
	r.planOrder = append(r.planOrder, e)
}

// maskHash hashes the graph's in-mask rows (FNV-1a over words) for the
// doorkeeper and for cheap pending-entry comparison. Single-word graphs
// hash one word per node — the exact pre-multi-word sequence.
func maskHash(g graph.Graph) uint64 {
	h := uint64(14695981039346656037)
	for j, n := 0, g.N(); j < n; j++ {
		for _, m := range g.InRow(j) {
			h ^= m
			h *= 1099511628211
		}
	}
	return h
}

// doorkeeperSeen reports whether hash h was recorded recently. Each
// hash has two candidate slots (low and high hash bits), so one aliased
// neighbor does not forget it — and a forgotten graph is merely
// deferred once more before admission.
func (r *BatchRunner) doorkeeperSeen(h uint64) bool {
	if len(r.doorkeeper) == 0 {
		return false
	}
	mask := uint64(len(r.doorkeeper) - 1)
	return r.doorkeeper[h&mask] == h || r.doorkeeper[(h>>32)&mask] == h
}

// doorkeeperRecord remembers hash h, sizing the table to the cache cap
// on first use (power of two, several slots per cacheable plan). The
// record prefers an empty or already-owned slot and otherwise overwrites
// the low-bits one.
func (r *BatchRunner) doorkeeperRecord(h uint64) {
	if len(r.doorkeeper) == 0 {
		size := 1
		for size < 8*r.planCap {
			size <<= 1
		}
		r.doorkeeper = make([]uint64, size)
	}
	mask := uint64(len(r.doorkeeper) - 1)
	s1, s2 := h&mask, (h>>32)&mask
	if r.doorkeeper[s1] == h || r.doorkeeper[s2] == h {
		return
	}
	if r.doorkeeper[s1] != 0 && r.doorkeeper[s2] == 0 {
		r.doorkeeper[s2] = h
		return
	}
	r.doorkeeper[s1] = h
}

// evictPlans drops oldest plans until the cache fits planCap minus
// room. Evicted entries stay valid for any cluster or per-run memo
// still holding them this round — they just stop being shared — and
// park in the graveyard until collectPlans recycles their storage.
func (r *BatchRunner) evictPlans(room int) {
	for len(r.plans)+room > r.planCap && r.planHead < len(r.planOrder) {
		old := r.planOrder[r.planHead]
		r.planOrder[r.planHead] = nil
		r.planHead++
		delete(r.plans, old.key)
		old.dead = true
		r.planDead = append(r.planDead, old)
		r.planEvicts++
	}
	if r.planHead > len(r.planOrder)/2 {
		r.planOrder = append(r.planOrder[:0], r.planOrder[r.planHead:]...)
		r.planHead = 0
	}
}

// buildViews (re)derives the persistent per-run views from the current
// buffers.
func (r *BatchRunner) buildViews() {
	b := r.cur.b
	if cap(r.viewsCur) < b {
		r.viewsCur = make([]DenseState, b)
		r.viewsNext = make([]DenseState, b)
	}
	r.viewsCur = r.viewsCur[:b]
	r.viewsNext = r.viewsNext[:b]
	for i := 0; i < b; i++ {
		r.cur.View(i, &r.viewsCur[i])
		r.next.View(i, &r.viewsNext[i])
	}
}

// runView returns run i's current view with a fresh round stamp.
func (r *BatchRunner) runView(i int) *DenseState {
	v := &r.viewsCur[i]
	v.round = r.cur.round
	return v
}

// Alg returns the algorithm being run.
func (r *BatchRunner) Alg() DenseAlgorithm { return r.alg }

// B returns the current number of (surviving) runs.
func (r *BatchRunner) B() int { return r.cur.b }

// N returns the number of agents per run.
func (r *BatchRunner) N() int { return r.cur.n }

// Round returns the shared number of completed rounds.
func (r *BatchRunner) Round() int { return r.cur.round }

// State returns the current batch state. Callers must not mutate it.
func (r *BatchRunner) State() *BatchState { return r.cur }

// Origin returns the original batch index of current run i — the
// identity Compact preserves while dropping decided runs.
func (r *BatchRunner) Origin(i int) int { return r.origin[i] }

// prep shapes the back buffer for one step.
func (r *BatchRunner) prep(n int) {
	if n != r.cur.n {
		panic(fmt.Sprintf("core: graph on %d nodes applied to batch of %d agents", n, r.cur.n))
	}
	r.next.Resize(r.cur.b, r.cur.n, r.cur.planes)
	r.next.round = r.cur.round + 1
}

// Step applies one round with the shared communication graph g to every
// run: through the algorithm's BatchStepper when it has one (one cached
// plan covering the whole batch), per-run views otherwise.
func (r *BatchRunner) Step(g graph.Graph) {
	r.hull.want = false
	r.step(g)
}

// StepWithHulls applies one shared-graph round and reports every run's
// post-round output hull into lo/hi (length B): computed inside the
// batched stepper for free from the segment folds when possible, by
// scanning the outputs otherwise. The hulls are bit-identical to
// calling Hull(i) per run either way.
func (r *BatchRunner) StepWithHulls(g graph.Graph, lo, hi []float64) {
	r.hull.want = true
	r.hull.lo, r.hull.hi = lo, hi
	if !r.step(g) {
		r.scanHulls(lo, hi)
	}
	r.hull.want, r.hull.lo, r.hull.hi = false, nil, nil
}

// stepRaw applies one shared-graph round and reports whether the
// stepper delivered the requested hulls. The step wrapper (obs.go)
// samples kernel metrics around it.
func (r *BatchRunner) stepRaw(g graph.Graph) (hullDone bool) {
	r.prep(g.N())
	par := r.Parallelism()
	switch {
	case r.bs != nil && par > 1 && (r.cur.b > 1 || r.segOK):
		r.collectPlans()
		e := r.lookupPlan(g)
		r.beginTasks(nil, g, r.hull.want)
		r.addClusterTasks(e, r.allRuns, par, len(r.allRuns))
		r.expandSegShards(par)
		hullDone = r.runTasks(par)
	case r.bs != nil:
		r.collectPlans()
		hullDone = r.stepCluster(r.lookupPlan(g), r.allRuns)
	case par > 1 && r.cur.b > 1:
		r.beginTasks(nil, g, r.hull.want)
		r.addRunShards(r.allRuns, par)
		hullDone = r.runTasks(par)
	default:
		for i := 0; i < r.cur.b; i++ {
			r.stepRun(i, g)
		}
	}
	r.swap()
	return hullDone
}

// stepCluster steps the given run subset through e's plan, relaying the
// round's hull request, and reports whether the stepper delivered the
// hulls. The plan's per-call fields are cleared afterwards so cached
// plans never retain caller arrays.
func (r *BatchRunner) stepCluster(e *planEntry, runs []int) (hullDone bool) {
	p := &e.plan
	p.Runs = runs
	p.WantHull = r.hull.want
	p.HullLo, p.HullHi = r.hull.lo, r.hull.hi
	p.HullDone = false
	r.bs.StepDenseBatch(r.next, r.cur, p)
	hullDone = p.HullDone
	p.Runs = nil
	p.WantHull, p.HullDone = false, false
	p.HullLo, p.HullHi = nil, nil
	return hullDone
}

// swap flips the double buffer and its view arrays.
func (r *BatchRunner) swap() {
	r.cur, r.next = r.next, r.cur
	r.viewsCur, r.viewsNext = r.viewsNext, r.viewsCur
}

// scanHulls fills lo/hi with every run's output hull by scanning.
func (r *BatchRunner) scanHulls(lo, hi []float64) {
	for i := 0; i < r.cur.b; i++ {
		lo[i], hi[i] = r.Hull(i)
	}
}

// StepEach applies one round with per-run graphs (gs[i] drives run i),
// clustered: runs sharing a graph share one cached plan, lasso loops
// replaying a graph value reuse the run's last plan via the identity
// memo, and a round in which every run plays the same graph degenerates
// to exactly the shared-graph path — one cluster, one plan.
func (r *BatchRunner) StepEach(gs []graph.Graph) {
	r.hull.want = false
	r.stepEach(gs)
}

// StepEachWithHulls is StepEach plus per-run output hulls, like
// StepWithHulls.
func (r *BatchRunner) StepEachWithHulls(gs []graph.Graph, lo, hi []float64) {
	r.hull.want = true
	r.hull.lo, r.hull.hi = lo, hi
	if !r.stepEach(gs) {
		r.scanHulls(lo, hi)
	}
	r.hull.want, r.hull.lo, r.hull.hi = false, nil, nil
}

// stepEachRaw clusters the round's runs by graph identity and steps
// every cluster through its shared plan. It reports whether hulls were
// delivered for every run. The stepEach wrapper (obs.go) samples
// kernel metrics around it.
func (r *BatchRunner) stepEachRaw(gs []graph.Graph) (hullDone bool) {
	if len(gs) != r.cur.b {
		panic(fmt.Sprintf("core: %d graphs for a batch of %d runs", len(gs), r.cur.b))
	}
	if r.bs == nil {
		r.StepRuns(gs)
		return false
	}
	r.prep(gs[0].N())
	for i := 1; i < len(gs); i++ {
		if gs[i].N() != r.cur.n {
			panic(fmt.Sprintf("core: graph on %d nodes applied to batch of %d agents", gs[i].N(), r.cur.n))
		}
	}
	// Assign each run its plan — constant-time when the run replays the
	// same graph value as last round — and bucket runs into clusters via
	// the entries' step stamps. Cluster slots (and their run slices) are
	// pooled across rounds, so steady-state clustering allocates nothing.
	r.stepSeq++
	r.collectPlans()
	clusters := r.clusters[:0]
	for i, g := range gs {
		e := r.lastPlan[i]
		if e == nil || !g.Same(r.lastG[i]) {
			ne := r.findPlan(g)
			if e != nil {
				e.refs--
			}
			ne.refs++
			r.lastG[i], r.lastPlan[i] = g, ne
			e = ne
		} else {
			r.planHits++
		}
		if e.mark != r.stepSeq {
			e.mark = r.stepSeq
			e.slot = len(clusters)
			if len(clusters) == cap(clusters) {
				clusters = append(clusters, planCluster{})
			} else {
				clusters = clusters[:len(clusters)+1]
			}
			c := &clusters[e.slot]
			c.e = e
			c.runs = c.runs[:0]
		}
		c := &clusters[e.slot]
		c.runs = append(c.runs, i)
	}
	// Admission: a first-sight graph gets a built, cached plan only if
	// several runs share it this round or the doorkeeper has seen it
	// before (a lasso or epoch revisiting its graph). A transient
	// singleton — the common case under high-diversity schedules, where
	// every plan would be built once and thrown away — is deferred: its
	// run steps through the per-run views (bit-identical by the
	// BatchStepper contract) and no key string, map traffic, or plan
	// build happens at all.
	for _, e := range r.pending {
		c := &clusters[e.slot]
		if len(c.runs) > 1 || r.doorkeeperSeen(e.hash) {
			r.admitPlan(e)
			continue
		}
		r.doorkeeperRecord(e.hash)
		r.planDefers++
		i := c.runs[0]
		e.refs--
		r.lastPlan[i] = nil
		c.e = nil
		if e.refs == 0 {
			r.planFree = append(r.planFree, e)
		} else {
			e.dead = true
			r.planDead = append(r.planDead, e)
		}
	}
	for i := range r.pending {
		r.pending[i] = nil
	}
	r.pending = r.pending[:0]
	hullDone = true
	if par := r.Parallelism(); par > 1 && (r.cur.b > 1 || r.segOK) {
		// Parallel round: shard the clusters (then, if the budget is not
		// filled, their segment ranges) into tasks and fan out. The
		// clustering and admission above stay coordinator-only, so the
		// plan cache is never touched concurrently.
		r.beginTasks(gs, graph.Graph{}, r.hull.want)
		for ci := range clusters {
			c := &clusters[ci]
			if c.e == nil {
				r.job.tasks = append(r.job.tasks, stepTask{runs: c.runs})
			} else {
				r.addClusterTasks(c.e, c.runs, par, r.cur.b)
			}
			c.e = nil
		}
		r.expandSegShards(par)
		hullDone = r.runTasks(par)
	} else {
		for ci := range clusters {
			c := &clusters[ci]
			if c.e == nil {
				// Deferred singleton: step through the per-run views and,
				// when hulls were requested, scan this run's outputs right
				// here — the same OutputsDense+Hull sequence the post-swap
				// scan would run, so the round's hull delivery stays intact
				// for the clustered runs.
				i := c.runs[0]
				r.stepRun(i, gs[i])
				if r.hull.want {
					r.alg.OutputsDense(&r.viewsNext[i], r.outScratch)
					r.hull.lo[i], r.hull.hi[i] = Hull(r.outScratch)
				}
				continue
			}
			if !r.stepCluster(c.e, c.runs) {
				hullDone = false
			}
			c.e = nil
		}
	}
	r.clusters = clusters[:0]
	r.swap()
	return hullDone
}

// StepRuns applies one round with per-run graphs through the per-run
// views, without clustering — the generic path for algorithms with no
// BatchStepper, and for callers that know the graphs are distinct and
// transient (a settle fan-out repeating a different model graph per
// run).
func (r *BatchRunner) StepRuns(gs []graph.Graph) {
	if len(gs) != r.cur.b {
		panic(fmt.Sprintf("core: %d graphs for a batch of %d runs", len(gs), r.cur.b))
	}
	r.prep(gs[0].N())
	for i := 0; i < r.cur.b; i++ {
		if gs[i].N() != r.cur.n {
			panic(fmt.Sprintf("core: graph on %d nodes applied to batch of %d agents", gs[i].N(), r.cur.n))
		}
	}
	if par := r.Parallelism(); par > 1 && r.cur.b > 1 {
		r.beginTasks(gs, graph.Graph{}, false)
		r.addRunShards(r.allRuns, par)
		r.runTasks(par)
	} else {
		for i := 0; i < r.cur.b; i++ {
			r.stepRun(i, gs[i])
		}
	}
	r.swap()
}

// stepRun steps run i through its persistent views (the generic path).
func (r *BatchRunner) stepRun(i int, g graph.Graph) {
	src, dst := &r.viewsCur[i], &r.viewsNext[i]
	src.round = r.cur.round
	dst.round = r.next.round
	r.alg.StepDense(dst, src, g)
}

// Outputs writes run i's observable outputs into out (length N).
func (r *BatchRunner) Outputs(i int, out []float64) {
	r.alg.OutputsDense(r.runView(i), out)
}

// Hull returns the convex hull [lo, hi] of run i's observable outputs
// without allocating.
func (r *BatchRunner) Hull(i int) (lo, hi float64) {
	r.Outputs(i, r.outScratch)
	return Hull(r.outScratch)
}

// Diameter returns the output diameter of run i without allocating.
func (r *BatchRunner) Diameter(i int) float64 {
	lo, hi := r.Hull(i)
	return hi - lo
}

// AppendRunFingerprint appends run i's configuration fingerprint,
// byte-identical to the equivalent DenseRunner's (and therefore to the
// Agent path's) fingerprint. ok is false when the algorithm cannot
// fingerprint dense states.
func (r *BatchRunner) AppendRunFingerprint(dst []byte, i int) ([]byte, bool) {
	return AppendDenseFingerprint(r.alg, r.runView(i), dst)
}

// MaterializeRun builds an agent configuration equivalent to run i.
func (r *BatchRunner) MaterializeRun(i int) *Config {
	return MaterializeDense(r.alg, r.runView(i))
}

// Compact drops every run whose keep entry is false, moving survivors
// forward in place (two copies per surviving displaced run, no per-agent
// work) and preserving their relative order and Origin identities. It
// returns the new batch size.
func (r *BatchRunner) Compact(keep []bool) int {
	if len(keep) != r.cur.b {
		panic(fmt.Sprintf("core: %d keep flags for a batch of %d runs", len(keep), r.cur.b))
	}
	w := 0
	for i := 0; i < r.cur.b; i++ {
		if !keep[i] {
			// The dropped run's memo reference goes with it.
			if e := r.lastPlan[i]; e != nil {
				e.refs--
			}
			continue
		}
		r.cur.copyRun(w, i)
		r.origin[w] = r.origin[i]
		// The plan identity memo travels with the run, so a surviving
		// run keeps its last-round plan at its new position.
		r.lastG[w] = r.lastG[i]
		r.lastPlan[w] = r.lastPlan[i]
		w++
	}
	r.origin = r.origin[:w]
	for i := w; i < r.cur.b; i++ {
		r.lastG[i] = graph.Graph{}
		r.lastPlan[i] = nil
	}
	r.lastG = r.lastG[:w]
	r.lastPlan = r.lastPlan[:w]
	r.allRuns = r.allRuns[:w]
	r.cur.b = w
	r.cur.Y = r.cur.Y[:w*r.cur.n]
	r.cur.Aux = r.cur.Aux[:w*r.cur.planes*r.cur.n]
	// The views alias positions, and survivors moved into the kept
	// positions in place, so truncation suffices.
	r.viewsCur = r.viewsCur[:w]
	r.viewsNext = r.viewsNext[:w]
	return w
}

// Fork returns an independent copy of the runner, the batch counterpart
// of DenseRunner.Fork. The fork starts with an empty plan cache of its
// own — cached plans are mutated per step (cluster stamps, run subsets),
// so sharing them across runners would race under concurrent stepping.
func (r *BatchRunner) Fork() *BatchRunner {
	f := &BatchRunner{alg: r.alg, bs: r.bs, cur: &BatchState{}, next: &BatchState{}, planCap: r.planCap,
		par: r.par, segOK: r.segOK}
	f.cur.CopyFrom(r.cur)
	f.next.Resize(r.cur.b, r.cur.n, r.cur.planes)
	f.origin = append([]int(nil), r.origin...)
	f.allRuns = append([]int(nil), r.allRuns...)
	f.lastG = make([]graph.Graph, r.cur.b)
	f.lastPlan = make([]*planEntry, r.cur.b)
	f.outScratch = make([]float64, r.cur.n)
	f.buildViews()
	return f
}


