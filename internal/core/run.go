package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/model"
)

// PatternSource produces the communication graph of each round. It is the
// interface both benign schedulers and lower-bound adversaries implement;
// an adversary may inspect the pre-round configuration, exactly like the
// execution-tree constructions in the paper's proofs.
type PatternSource interface {
	// Next returns the communication graph of the given round (1-based).
	// c is the configuration at the start of the round.
	Next(round int, c *Config) graph.Graph
}

// Oblivious is an optional PatternSource capability marking sources whose
// Next ignores the configuration argument (benign schedulers, in the
// terminology of the paper's upper bounds). Only oblivious sources can
// drive the dense backend, which has no *Config to offer and passes nil;
// adaptive adversaries keep the Agent path.
type Oblivious interface {
	// ObliviousSource reports that Next never reads its Config argument.
	ObliviousSource() bool
}

// obliviousSource reports whether src may be driven with a nil Config.
func obliviousSource(src PatternSource) bool {
	o, ok := src.(Oblivious)
	return ok && o.ObliviousSource()
}

// IsOblivious reports whether src declares itself configuration-
// independent (see Oblivious); only such sources can drive the dense
// backend.
func IsOblivious(src PatternSource) bool { return obliviousSource(src) }

// Fixed is a PatternSource that plays the same graph every round — the
// classical fixed-topology setting.
type Fixed struct{ G graph.Graph }

// Next implements PatternSource.
func (f Fixed) Next(int, *Config) graph.Graph { return f.G }

// ObliviousSource implements Oblivious.
func (Fixed) ObliviousSource() bool { return true }

// Cycle plays the given graphs in round-robin order.
type Cycle struct{ Graphs []graph.Graph }

// Next implements PatternSource.
func (c Cycle) Next(round int, _ *Config) graph.Graph {
	if len(c.Graphs) == 0 {
		panic("core: Cycle with no graphs")
	}
	return c.Graphs[(round-1)%len(c.Graphs)]
}

// ObliviousSource implements Oblivious.
func (Cycle) ObliviousSource() bool { return true }

// Sequence plays the given finite prefix and then repeats the final graph
// forever.
type Sequence struct{ Graphs []graph.Graph }

// Next implements PatternSource.
func (s Sequence) Next(round int, _ *Config) graph.Graph {
	if len(s.Graphs) == 0 {
		panic("core: Sequence with no graphs")
	}
	if round-1 < len(s.Graphs) {
		return s.Graphs[round-1]
	}
	return s.Graphs[len(s.Graphs)-1]
}

// ObliviousSource implements Oblivious.
func (Sequence) ObliviousSource() bool { return true }

// RandomFromModel draws a uniformly random member of a network model each
// round, using its own RNG for reproducibility.
type RandomFromModel struct {
	Model *model.Model
	Rng   *rand.Rand
}

// Next implements PatternSource.
func (r RandomFromModel) Next(int, *Config) graph.Graph {
	return r.Model.Graph(r.Rng.Intn(r.Model.Size()))
}

// ObliviousSource implements Oblivious.
func (RandomFromModel) ObliviousSource() bool { return true }

// Func adapts a function to a PatternSource.
type Func func(round int, c *Config) graph.Graph

// Next implements PatternSource.
func (f Func) Next(round int, c *Config) graph.Graph { return f(round, c) }

// ObliviousFunc adapts a configuration-independent function to a
// PatternSource that declares itself Oblivious, so it can drive the dense
// backend (random schedulers drawing graphs from their own RNG, say).
type ObliviousFunc func(round int) graph.Graph

// Next implements PatternSource.
func (f ObliviousFunc) Next(round int, _ *Config) graph.Graph { return f(round) }

// ObliviousSource implements Oblivious.
func (ObliviousFunc) ObliviousSource() bool { return true }

// Trace records an execution: the initial values, the graph played and the
// value vector after every round.
type Trace struct {
	Algorithm string
	Inputs    []float64
	Graphs    []graph.Graph
	// Outputs[t] is the value vector after round t; Outputs[0] = Inputs.
	Outputs [][]float64
	// Final is the configuration after the last round.
	Final *Config
}

// Run executes alg from the given inputs for the given number of rounds,
// drawing graphs from src, and returns the trace. The execution backend
// is CurrentBackend(): with the dense backend enabled (the default) and a
// dense-capable algorithm under an oblivious source, the round loop runs
// on flat struct-of-arrays state; the result is bit-identical either way.
func Run(alg Algorithm, inputs []float64, src PatternSource, rounds int) *Trace {
	return RunBackend(alg, inputs, src, rounds, CurrentBackend())
}

// RunBackend is Run with an explicit backend selection.
func RunBackend(alg Algorithm, inputs []float64, src PatternSource, rounds int, backend Backend) *Trace {
	tr, _ := RunBackendCtx(context.Background(), alg, inputs, src, rounds, backend)
	return tr
}

// RunBackendCtx is RunBackend with cooperative cancellation: the round
// loop checks ctx between rounds and returns (nil, ctx.Err()) when the
// context is done. A context that can never be cancelled (nil Done
// channel, e.g. context.Background) adds no per-round work.
func RunBackendCtx(ctx context.Context, alg Algorithm, inputs []float64, src PatternSource, rounds int, backend Backend) (*Trace, error) {
	if backend.DenseEnabled() && obliviousSource(src) {
		if d, ok := AsDense(alg); ok {
			return runDense(ctx, alg.Name(), NewDenseRunner(d, inputs), src, rounds)
		}
	}
	return runAgents(ctx, alg.Name(), NewConfig(alg, inputs), src, rounds)
}

// RunConfig continues an execution from an existing configuration, again
// selecting the backend via CurrentBackend().
func RunConfig(name string, c *Config, src PatternSource, rounds int) *Trace {
	return RunConfigBackend(name, c, src, rounds, CurrentBackend())
}

// RunConfigBackend is RunConfig with an explicit backend selection.
func RunConfigBackend(name string, c *Config, src PatternSource, rounds int, backend Backend) *Trace {
	tr, _ := RunConfigBackendCtx(context.Background(), name, c, src, rounds, backend)
	return tr
}

// RunConfigBackendCtx is RunConfigBackend with cooperative cancellation,
// with the same contract as RunBackendCtx.
func RunConfigBackendCtx(ctx context.Context, name string, c *Config, src PatternSource, rounds int, backend Backend) (*Trace, error) {
	if backend.DenseEnabled() && obliviousSource(src) {
		if r, ok := DenseRunnerFromConfig(c); ok {
			return runDense(ctx, name, r, src, rounds)
		}
	}
	return runAgents(ctx, name, c, src, rounds)
}

// runAgents is the interface-based round loop — the reference backend.
func runAgents(ctx context.Context, name string, c *Config, src PatternSource, rounds int) (*Trace, error) {
	if rounds < 0 {
		panic(fmt.Sprintf("core: negative round count %d", rounds))
	}
	tr := &Trace{
		Algorithm: name,
		Inputs:    c.Outputs(),
		Graphs:    make([]graph.Graph, 0, rounds),
		Outputs:   make([][]float64, 0, rounds+1),
	}
	tr.Outputs = append(tr.Outputs, c.Outputs())
	done := ctx.Done()
	// Run on a private clone and step in place: one clone total instead of
	// one per agent per round. Pattern sources still observe the live
	// configuration (read-only, per the PatternSource contract).
	cur := c.Clone()
	for t := 1; t <= rounds; t++ {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		g := src.Next(cur.round+1, cur)
		cur.StepInPlace(g)
		tr.Graphs = append(tr.Graphs, g)
		tr.Outputs = append(tr.Outputs, cur.Outputs())
	}
	tr.Final = cur
	return tr, nil
}

// runDense is the dense round loop. src must be oblivious: it is handed a
// nil configuration. The trace's Final configuration is materialized from
// the dense state after the last round.
func runDense(ctx context.Context, name string, r *DenseRunner, src PatternSource, rounds int) (*Trace, error) {
	if rounds < 0 {
		panic(fmt.Sprintf("core: negative round count %d", rounds))
	}
	tr := &Trace{
		Algorithm: name,
		Inputs:    r.Outputs(),
		Graphs:    make([]graph.Graph, 0, rounds),
		Outputs:   make([][]float64, 0, rounds+1),
	}
	tr.Outputs = append(tr.Outputs, r.Outputs())
	done := ctx.Done()
	for t := 1; t <= rounds; t++ {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		g := src.Next(r.Round()+1, nil)
		r.Step(g)
		tr.Graphs = append(tr.Graphs, g)
		tr.Outputs = append(tr.Outputs, r.Outputs())
	}
	tr.Final = r.Config()
	return tr, nil
}

// Rounds returns the number of executed rounds.
func (tr *Trace) Rounds() int { return len(tr.Graphs) }

// DiameterAt returns Δ(y(t)).
func (tr *Trace) DiameterAt(t int) float64 { return Diameter(tr.Outputs[t]) }

// Diameters returns Δ(y(t)) for t = 0..rounds.
func (tr *Trace) Diameters() []float64 {
	out := make([]float64, len(tr.Outputs))
	for t := range tr.Outputs {
		out[t] = tr.DiameterAt(t)
	}
	return out
}

// RoundRatios returns the per-round diameter contraction ratios
// Δ(y(t))/Δ(y(t-1)); rounds whose predecessor diameter is zero yield 0.
func (tr *Trace) RoundRatios() []float64 {
	d := tr.Diameters()
	out := make([]float64, 0, len(d)-1)
	for t := 1; t < len(d); t++ {
		if d[t-1] == 0 {
			out = append(out, 0)
		} else {
			out = append(out, d[t]/d[t-1])
		}
	}
	return out
}

// GeometricRate returns (Δ(y(T))/Δ(y(0)))^(1/T), the empirical per-round
// contraction factor of the whole run; 0 when the initial diameter is 0 or
// the final diameter reached 0.
func (tr *Trace) GeometricRate() float64 {
	T := tr.Rounds()
	if T == 0 {
		return 0
	}
	d0 := tr.DiameterAt(0)
	dT := tr.DiameterAt(T)
	if d0 == 0 || dT == 0 {
		return 0
	}
	return math.Pow(dT/d0, 1/float64(T))
}

// WorstRoundRatio returns the largest per-round contraction ratio of the
// run — the round in which the algorithm contracted least.
func (tr *Trace) WorstRoundRatio() float64 {
	worst := 0.0
	for _, r := range tr.RoundRatios() {
		if r > worst {
			worst = r
		}
	}
	return worst
}

// ValidityHolds reports whether every recorded value vector stays inside
// the convex hull of the inputs, with the given absolute tolerance.
func (tr *Trace) ValidityHolds(tol float64) bool {
	lo, hi := Hull(tr.Inputs)
	for _, ys := range tr.Outputs {
		for _, y := range ys {
			if y < lo-tol || y > hi+tol {
				return false
			}
		}
	}
	return true
}
