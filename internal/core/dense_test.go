package core_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

func TestBackendParseAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want core.Backend
	}{
		{"auto", core.BackendAuto},
		{"", core.BackendAuto},
		{"agents", core.BackendAgents},
		{"dense", core.BackendDense},
	} {
		got, err := core.ParseBackend(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := core.ParseBackend("simd"); err == nil {
		t.Error("ParseBackend accepted an unknown backend")
	}
	if core.BackendAgents.DenseEnabled() {
		t.Error("agents backend claims dense enabled")
	}
	if !core.BackendAuto.DenseEnabled() || !core.BackendDense.DenseEnabled() {
		t.Error("auto/dense backends claim dense disabled")
	}
	if core.BackendAuto.String() != "auto" || core.BackendAgents.String() != "agents" || core.BackendDense.String() != "dense" {
		t.Error("Backend String values wrong")
	}
}

func TestSetDefaultBackendRoundTrip(t *testing.T) {
	prev := core.SetDefaultBackend(core.BackendAgents)
	defer core.SetDefaultBackend(prev)
	if core.CurrentBackend() != core.BackendAgents {
		t.Fatal("SetDefaultBackend did not take effect")
	}
	if got := core.SetDefaultBackend(core.BackendDense); got != core.BackendAgents {
		t.Fatalf("SetDefaultBackend returned %v, want agents", got)
	}
}

func TestObliviousSources(t *testing.T) {
	m := model.TwoAgent()
	for _, src := range []core.PatternSource{
		core.Fixed{G: graph.Complete(2)},
		core.Cycle{Graphs: m.Graphs()},
		core.Sequence{Graphs: m.Graphs()},
		core.RandomFromModel{Model: m, Rng: rand.New(rand.NewSource(1))},
	} {
		if !core.IsOblivious(src) {
			t.Errorf("%T is not marked oblivious", src)
		}
	}
	adaptive := core.Func(func(round int, c *core.Config) graph.Graph {
		if c.Output(0) > c.Output(1) {
			return graph.Complete(2)
		}
		return graph.New(2)
	})
	if core.IsOblivious(adaptive) {
		t.Error("Func sources must not be oblivious: they may inspect the configuration")
	}
}

// TestRunBackendsBitIdentical pins Run's two backends against each other
// on every kind of oblivious source, and checks that an adaptive source
// under the dense backend safely falls back to the Agent path instead of
// receiving a nil configuration.
func TestRunBackendsBitIdentical(t *testing.T) {
	inputs := []float64{0, 1, 0.25, 0.75, 0.5}
	m := model.DeafModel(graph.Complete(5))
	newSources := func() []func() core.PatternSource {
		return []func() core.PatternSource{
			func() core.PatternSource { return core.Fixed{G: graph.Deaf(graph.Complete(5), 0)} },
			func() core.PatternSource { return core.Cycle{Graphs: m.Graphs()} },
			func() core.PatternSource {
				return core.RandomFromModel{Model: m, Rng: rand.New(rand.NewSource(5))}
			},
		}
	}
	for _, mk := range newSources() {
		agents := core.RunBackend(algorithms.Midpoint{}, inputs, mk(), 40, core.BackendAgents)
		dense := core.RunBackend(algorithms.Midpoint{}, inputs, mk(), 40, core.BackendDense)
		assertTracesEqual(t, agents, dense)
	}
	// Adaptive source: both selections must take the Agent path and agree.
	adaptive := func() core.PatternSource {
		return core.Func(func(round int, c *core.Config) graph.Graph {
			if c.Output(0) < c.Output(4) {
				return graph.Deaf(graph.Complete(5), round%5)
			}
			return graph.Complete(5)
		})
	}
	agents := core.RunBackend(algorithms.Midpoint{}, inputs, adaptive(), 20, core.BackendAgents)
	dense := core.RunBackend(algorithms.Midpoint{}, inputs, adaptive(), 20, core.BackendDense)
	assertTracesEqual(t, agents, dense)
}

func assertTracesEqual(t *testing.T, a, b *core.Trace) {
	t.Helper()
	if len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Outputs), len(b.Outputs))
	}
	for round := range a.Outputs {
		for i := range a.Outputs[round] {
			x, y := a.Outputs[round][i], b.Outputs[round][i]
			if math.Float64bits(x) != math.Float64bits(y) {
				t.Fatalf("round %d agent %d: %v != %v", round, i, x, y)
			}
		}
	}
	for i := 0; i < a.Final.N(); i++ {
		if math.Float64bits(a.Final.Output(i)) != math.Float64bits(b.Final.Output(i)) {
			t.Fatalf("final output %d differs", i)
		}
	}
	if a.Final.Round() != b.Final.Round() {
		t.Fatalf("final rounds differ: %d vs %d", a.Final.Round(), b.Final.Round())
	}
}

// TestRunConfigBackendContinuation continues a half-run configuration
// under both backends and pins the traces against each other.
func TestRunConfigBackendContinuation(t *testing.T) {
	inputs := []float64{0, 1, 0.5, 0.25}
	c := core.NewConfig(algorithms.AmortizedMidpoint{}, inputs)
	pool := model.DeafModel(graph.Complete(4)).Graphs()
	for _, g := range pool[:2] {
		c = c.Step(g)
	}
	src := func() core.PatternSource { return core.Cycle{Graphs: pool} }
	agents := core.RunConfigBackend("amid", c, src(), 30, core.BackendAgents)
	dense := core.RunConfigBackend("amid", c, src(), 30, core.BackendDense)
	assertTracesEqual(t, agents, dense)
	if got := agents.Final.Round(); got != c.Round()+30 {
		t.Fatalf("final round %d, want %d", got, c.Round()+30)
	}
}

func TestDenseStateShape(t *testing.T) {
	st := &core.DenseState{}
	st.Resize(4, 2)
	if st.N() != 4 || st.Planes() != 2 || len(st.Y) != 4 || len(st.Aux) != 8 {
		t.Fatalf("Resize produced unexpected shape: %+v", st)
	}
	p0, p1 := st.Plane(0), st.Plane(1)
	p0[3] = 7
	p1[0] = 9
	if st.Aux[3] != 7 || st.Aux[4] != 9 {
		t.Fatal("planes are not laid out plane-major")
	}
	var fromZero core.DenseState
	fromZero.CopyFrom(st)
	if fromZero.Plane(1)[0] != 9 {
		t.Fatal("CopyFrom lost plane contents")
	}
	fromZero.Plane(1)[0] = 1
	if st.Plane(1)[0] != 9 {
		t.Fatal("CopyFrom shares storage with its source")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Plane out of range did not panic")
		}
	}()
	st.Plane(2)
}

func TestWriteDenseUnsupported(t *testing.T) {
	// A hand-assembled configuration has no algorithm and must refuse the
	// bridge rather than guess.
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})
	var st core.DenseState
	if !c.WriteDense(&st) {
		t.Fatal("dense-capable configuration refused WriteDense")
	}
	if st.N() != 2 || st.Round() != 0 {
		t.Fatalf("WriteDense shaped %d agents round %d", st.N(), st.Round())
	}
}
