package core_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// shiftGraph returns the n-node graph in which agent j listens to itself
// and to agent (j+k) mod n — n distinct graphs as k varies, cheap to
// enumerate in bulk for cache-thrash tests.
func shiftGraph(t *testing.T, n, k int) graph.Graph {
	t.Helper()
	masks := make([]uint64, n)
	for j := 0; j < n; j++ {
		masks[j] = 1<<uint(j) | 1<<uint((j+k)%n)
	}
	g, err := graph.FromInMasks(n, masks)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testInputs(n, b int) [][]float64 {
	inputs := make([][]float64, b)
	for i := range inputs {
		in := make([]float64, n)
		for j := range in {
			in[j] = float64((i*31+j*17)%13) / 13
		}
		inputs[i] = in
	}
	return inputs
}

func wantStats(t *testing.T, r *core.BatchRunner, hits, misses, evicts, defers uint64, entries int) {
	t.Helper()
	h, m, e, d, n := r.PlanCacheStats()
	if h != hits || m != misses || e != evicts || d != defers || n != entries {
		t.Fatalf("plan cache stats (hits, misses, evicts, defers, entries) = (%d, %d, %d, %d, %d), want (%d, %d, %d, %d, %d)",
			h, m, e, d, n, hits, misses, evicts, defers, entries)
	}
}

// TestPlanCacheAccounting pins the exact hit/miss/eviction/deferral
// accounting of the clustered stepping paths: a shared-graph round
// costs one lookup, runs joining an existing plan count as hits,
// replayed graph values hit the per-run identity memo, a first-sight
// single-run graph is deferred (no plan built) and admitted on second
// sight, and evicted plans keep serving the memos that still hold them.
func TestPlanCacheAccounting(t *testing.T) {
	const n, B = 5, 4
	br := core.NewBatchRunner(algorithms.Midpoint{}, testInputs(n, B))
	wantStats(t, br, 0, 0, 0, 0, 0)

	shared := shiftGraph(t, n, 1)
	gs := []graph.Graph{shared, shared, shared, shared}

	// All runs play one graph: the first-sight cluster is multi-run, so
	// it is admitted immediately — run 0 builds the plan, the rest hit it.
	br.StepEach(gs)
	wantStats(t, br, 3, 1, 0, 0, 1)

	// Replaying the same graph values hits the per-run memo for every run.
	br.StepEach(gs)
	wantStats(t, br, 7, 1, 0, 0, 1)

	// Per-run distinct first-sight graphs: four singleton clusters, all
	// deferred — stepped per-run, no plans built or cached.
	each := []graph.Graph{shiftGraph(t, n, 0), shiftGraph(t, n, 2), shiftGraph(t, n, 3), shiftGraph(t, n, 4)}
	br.StepEach(each)
	wantStats(t, br, 7, 1, 0, 4, 1)

	// Second sight: the doorkeeper admits each graph, four plans built.
	br.StepEach(each)
	wantStats(t, br, 7, 5, 0, 4, 5)

	// Third sight replays the same graph values: memo hits for every run.
	br.StepEach(each)
	wantStats(t, br, 11, 5, 0, 4, 5)

	// The shared-graph path looks up once per round, not once per run.
	br.Step(shared)
	wantStats(t, br, 12, 5, 0, 4, 5)

	// Shrinking the cap evicts oldest-first immediately...
	br.SetPlanCacheCap(2)
	wantStats(t, br, 12, 5, 3, 4, 2)

	// ...but the per-run memos still hold their (now evicted) plans, so
	// replaying the same graph values stays hit-only and rebuilds nothing.
	br.StepEach(each)
	wantStats(t, br, 16, 5, 3, 4, 2)
}

// TestPlanCacheThrashParity steps per-run lasso schedules through a
// deliberately tiny plan cache — every round churns builds, evictions,
// and storage recycling — and checks the outputs stay bit-identical to
// the single-run backends. This is the hostile many-distinct-graph case
// the cache bound exists for.
func TestPlanCacheThrashParity(t *testing.T) {
	const n, B, rounds = 5, 6, 24
	alg := algorithms.Midpoint{}
	inputs := testInputs(n, B)
	srcs := make([]core.PatternSource, B)
	for i := 0; i < B; i++ {
		srcs[i] = core.Schedule{
			Prefix: []graph.Graph{shiftGraph(t, n, i%n), graph.Cycle(n)},
			Loop:   []graph.Graph{shiftGraph(t, n, (i+1)%n), graph.Star(n, i%n), shiftGraph(t, n, (i+2)%n)},
		}
	}

	br := core.NewBatchRunner(alg, inputs)
	br.SetPlanCacheCap(2)
	gs := make([]graph.Graph, B)
	for round := 1; round <= rounds; round++ {
		for i, src := range srcs {
			gs[i] = src.Next(round, nil)
		}
		br.StepEach(gs)
	}
	_, misses, evicts, _, entries := br.PlanCacheStats()
	if entries > 2 {
		t.Fatalf("cache holds %d entries, cap is 2", entries)
	}
	if evicts == 0 || misses <= 2 {
		t.Fatalf("thrash workload must churn the cache, got misses=%d evicts=%d", misses, evicts)
	}

	out := make([]float64, n)
	for i := 0; i < B; i++ {
		br.Outputs(i, out)
		for _, backend := range []core.Backend{core.BackendAgents, core.BackendDense} {
			tr := core.RunBackend(alg, inputs[i], srcs[i], rounds, backend)
			got := tr.Outputs[rounds]
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(out[j]) {
					t.Fatalf("run %d agent %d backend %v: single %v != batch %v", i, j, backend, got[j], out[j])
				}
			}
		}
	}
}

// TestPlanCacheCompact drops decided runs mid-schedule and checks the
// survivors' plan memos travel with them: stepping resumes hit-only on
// replayed graph values, and outputs match uncompacted single runs.
func TestPlanCacheCompact(t *testing.T) {
	const n, B = 5, 5
	alg := algorithms.Midpoint{}
	inputs := testInputs(n, B)
	br := core.NewBatchRunner(alg, inputs)

	gs := make([]graph.Graph, B)
	for i := range gs {
		gs[i] = shiftGraph(t, n, i%n)
	}
	// Round 1 defers the first-sight singletons, round 2 admits them, so
	// by round 3 every run's memo holds a built plan.
	br.StepEach(gs)
	br.StepEach(gs)
	br.StepEach(gs)
	hits0, misses0, _, _, _ := br.PlanCacheStats()

	keep := []bool{true, false, true, false, true}
	if w := br.Compact(keep); w != 3 {
		t.Fatalf("Compact kept %d runs, want 3", w)
	}
	// Survivors kept their memos: replaying their graph values at the
	// compacted positions is hit-only.
	br.StepEach([]graph.Graph{gs[0], gs[2], gs[4]})
	hits1, misses1, _, _, _ := br.PlanCacheStats()
	if misses1 != misses0 {
		t.Fatalf("post-compact replay rebuilt plans: misses %d -> %d", misses0, misses1)
	}
	if hits1 != hits0+3 {
		t.Fatalf("post-compact replay got %d hits, want %d", hits1-hits0, 3)
	}

	out := make([]float64, n)
	for w, i := range []int{0, 2, 4} {
		br.Outputs(w, out)
		src := core.Schedule{Prefix: []graph.Graph{gs[i]}}
		tr := core.RunBackend(alg, inputs[i], src, 4, core.BackendDense)
		got := tr.Outputs[4]
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(out[j]) {
				t.Fatalf("compacted run %d agent %d: single %v != batch %v", i, j, got[j], out[j])
			}
		}
	}
}

// TestPlanCacheForkIsolation forks a runner and steps parent and fork
// concurrently: the fork starts with an empty cache of its own, neither
// runner's stepping shows up in the other's accounting, and the -race
// build asserts the runners share no mutable plan state.
func TestPlanCacheForkIsolation(t *testing.T) {
	const n, B, rounds = 5, 4, 16
	br := core.NewBatchRunner(algorithms.Midpoint{}, testInputs(n, B))
	gs := make([]graph.Graph, B)
	for i := range gs {
		gs[i] = shiftGraph(t, n, i%n)
	}
	// Two rounds: the first defers the first-sight singletons, the second
	// admits them, so the parent's memos hold built plans before forking.
	br.StepEach(gs)
	br.StepEach(gs)
	f := br.Fork()
	if h, m, e, d, entries := f.PlanCacheStats(); h != 0 || m != 0 || e != 0 || d != 0 || entries != 0 {
		t.Fatalf("fork starts with stats (%d, %d, %d, %d, %d), want all zero", h, m, e, d, entries)
	}
	_, parentMisses0, _, _, _ := br.PlanCacheStats()

	var wg sync.WaitGroup
	for _, r := range []*core.BatchRunner{br, f} {
		wg.Add(1)
		go func(r *core.BatchRunner) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				r.StepEach(gs)
			}
		}(r)
	}
	wg.Wait()

	_, parentMisses1, _, _, _ := br.PlanCacheStats()
	if parentMisses1 != parentMisses0 {
		t.Fatalf("parent rebuilt plans while stepping replayed graphs: misses %d -> %d", parentMisses0, parentMisses1)
	}
	// The fork saw each graph fresh: one deferred round, then admission.
	if _, m, _, d, entries := f.PlanCacheStats(); m != uint64(B) || d != uint64(B) || entries != B {
		t.Fatalf("fork stats (misses=%d, defers=%d, entries=%d), want (%d, %d, %d)", m, d, entries, B, B, B)
	}

	// Parent and fork stepped the same rounds from the same state, so
	// their outputs must agree bit for bit.
	a, b := make([]float64, n), make([]float64, n)
	for i := 0; i < B; i++ {
		br.Outputs(i, a)
		f.Outputs(i, b)
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("run %d agent %d: parent %v != fork %v", i, j, a[j], b[j])
			}
		}
	}
}
