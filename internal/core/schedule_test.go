package core_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

func TestScheduleAtLasso(t *testing.T) {
	a := graph.Complete(3)
	b := graph.Cycle(3)
	c := graph.Star(3, 0)
	s := core.Schedule{Prefix: []graph.Graph{a, b}, Loop: []graph.Graph{c, b}}
	want := []graph.Graph{a, b, c, b, c, b, c}
	for i, g := range want {
		if got := s.At(i + 1); !got.Equal(g) {
			t.Fatalf("round %d: got %v want %v", i+1, got, g)
		}
	}
}

func TestScheduleFiniteRepeatsLast(t *testing.T) {
	a := graph.Complete(3)
	b := graph.Cycle(3)
	s := core.Schedule{Prefix: []graph.Graph{a, b}}
	if !s.At(2).Equal(b) || !s.At(3).Equal(b) || !s.At(100).Equal(b) {
		t.Fatal("finite schedule does not repeat its last graph")
	}
}

func TestScheduleIsOblivious(t *testing.T) {
	if !core.IsOblivious(core.Schedule{Prefix: []graph.Graph{graph.Complete(2)}}) {
		t.Fatal("Schedule must be oblivious so it can drive the dense backend")
	}
}

// TestRunBatchMatchesSingleRuns drives B runs with distinct per-run
// schedules through RunBatch and through individual Run calls under both
// backends; outputs must be bit-identical.
func TestRunBatchMatchesSingleRuns(t *testing.T) {
	const n, B, rounds = 5, 7, 13
	alg := algorithms.Midpoint{}
	inputs := make([][]float64, B)
	srcs := make([]core.PatternSource, B)
	for i := 0; i < B; i++ {
		in := make([]float64, n)
		for j := range in {
			in[j] = float64((i*31+j*17)%11) / 11
		}
		inputs[i] = in
		srcs[i] = core.Schedule{
			Prefix: []graph.Graph{graph.Star(n, i%n), graph.Cycle(n)},
			Loop:   []graph.Graph{graph.Complete(n), graph.Star(n, (i+1)%n)},
		}
	}
	br, err := core.RunBatch(context.Background(), alg, inputs, srcs, rounds)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n)
	for i := 0; i < B; i++ {
		br.Outputs(i, out)
		for _, backend := range []core.Backend{core.BackendAgents, core.BackendDense} {
			tr := core.RunBackend(alg, inputs[i], srcs[i], rounds, backend)
			got := tr.Outputs[rounds]
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(out[j]) {
					t.Fatalf("run %d agent %d backend %v: single %v != batch %v", i, j, backend, got[j], out[j])
				}
			}
		}
	}
}

func TestRunBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := core.Schedule{Prefix: []graph.Graph{graph.Complete(3)}}
	_, err := core.RunBatch(ctx, algorithms.Midpoint{}, [][]float64{{0, 1, 0.5}}, []core.PatternSource{src}, 10)
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
