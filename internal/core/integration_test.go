package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// TestHullNeverExpandsQuick is the whole-stack safety property: for every
// convex combination algorithm, under arbitrary (even unrooted) random
// graph sequences, the convex hull of the values never expands — the
// invariant Validity and the outer valency bound both rest on.
func TestHullNeverExpandsQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64()*200 - 100
		}
		algs := []core.Algorithm{
			algorithms.Midpoint{},
			algorithms.Mean{},
			algorithms.AmortizedMidpoint{},
			algorithms.SelfWeighted{Alpha: rng.Float64()},
			algorithms.QuantizedMidpoint{Q: 0.5},
		}
		alg := algs[rng.Intn(len(algs))]
		c := core.NewConfig(alg, inputs)
		lo, hi := core.Hull(c.Outputs())
		for round := 0; round < 12; round++ {
			c = c.Step(graph.Random(rng, n, rng.Float64()))
			nlo, nhi := core.Hull(c.Outputs())
			if nlo < lo-1e-9 || nhi > hi+1e-9 {
				return false
			}
			lo, hi = nlo, nhi
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestTraceRecordsPlayedGraphs checks the trace bookkeeping end to end.
func TestTraceRecordsPlayedGraphs(t *testing.T) {
	pat := []graph.Graph{graph.H(1), graph.H(2), graph.H(0)}
	tr := core.Run(algorithms.Midpoint{}, []float64{0, 1}, core.Sequence{Graphs: pat}, 3)
	if len(tr.Graphs) != 3 {
		t.Fatalf("recorded %d graphs", len(tr.Graphs))
	}
	for i, g := range pat {
		if !tr.Graphs[i].Equal(g) {
			t.Errorf("round %d: recorded %v, want %v", i+1, tr.Graphs[i], g)
		}
	}
	if tr.Algorithm != "midpoint" {
		t.Errorf("Algorithm = %q", tr.Algorithm)
	}
	if got := tr.Rounds(); got != 3 {
		t.Errorf("Rounds = %d", got)
	}
	// Inputs snapshot is decoupled from later state.
	if tr.Inputs[0] != 0 || tr.Inputs[1] != 1 {
		t.Errorf("Inputs = %v", tr.Inputs)
	}
}
