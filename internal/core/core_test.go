package core_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

func TestNewConfigInitialState(t *testing.T) {
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1, 0.5})
	if c.N() != 3 || c.Round() != 0 {
		t.Fatalf("N=%d Round=%d, want 3, 0", c.N(), c.Round())
	}
	want := []float64{0, 1, 0.5}
	for i, v := range want {
		if c.Output(i) != v {
			t.Errorf("Output(%d) = %v, want %v", i, c.Output(i), v)
		}
	}
	if got := c.Diameter(); got != 1 {
		t.Errorf("Diameter = %v, want 1", got)
	}
}

func TestStepDoesNotMutateReceiver(t *testing.T) {
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})
	d := c.Step(graph.Complete(2))
	if c.Round() != 0 || c.Output(0) != 0 || c.Output(1) != 1 {
		t.Error("Step mutated its receiver")
	}
	if d.Round() != 1 {
		t.Errorf("successor round = %d, want 1", d.Round())
	}
	if d.Output(0) != 0.5 || d.Output(1) != 0.5 {
		t.Errorf("midpoint step on K2: outputs %v, want [0.5 0.5]", d.Outputs())
	}
}

func TestStepRespectsGraph(t *testing.T) {
	// Under H1 (only 0 -> 1): agent 0 hears itself only and keeps 0;
	// agent 1 hears both and moves to the midpoint 0.5.
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})
	d := c.Step(graph.H(1))
	if d.Output(0) != 0 || d.Output(1) != 0.5 {
		t.Errorf("H1 step: outputs %v, want [0 0.5]", d.Outputs())
	}
	// Identity graph: nobody moves (midpoint of own value).
	e := c.Step(graph.New(2))
	if e.Output(0) != 0 || e.Output(1) != 1 {
		t.Errorf("identity step: outputs %v, want [0 1]", e.Outputs())
	}
}

func TestStepPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Step with wrong graph size did not panic")
		}
	}()
	core.NewConfig(algorithms.Midpoint{}, []float64{0, 1}).Step(graph.Complete(3))
}

func TestCloneIsDeep(t *testing.T) {
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})
	cl := c.Clone()
	d := cl.Step(graph.Complete(2))
	_ = d
	if c.Output(0) != 0 || cl.Output(0) != 0 {
		t.Error("Clone shares state with original")
	}
	if !c.IndistinguishableFor(0, cl) || !c.IndistinguishableFor(1, cl) {
		t.Error("clone should be indistinguishable from original for all agents")
	}
}

func TestStepAll(t *testing.T) {
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})
	d := c.StepAll([]graph.Graph{graph.H(1), graph.H(2), graph.H(0)})
	if d.Round() != 3 {
		t.Errorf("StepAll round = %d, want 3", d.Round())
	}
	// Manual: H1: (0, .5); H2: (0.25, .5); H0: (0.375, 0.375).
	if math.Abs(d.Output(0)-0.375) > 1e-15 || math.Abs(d.Output(1)-0.375) > 1e-15 {
		t.Errorf("StepAll outputs %v, want [0.375 0.375]", d.Outputs())
	}
}

// TestStepInPlaceMatchesStep property-checks the fast path against the
// persistent path on random graphs, algorithms, and inputs.
func TestStepInPlaceMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64()
		}
		algs := []core.Algorithm{algorithms.Midpoint{}, algorithms.Mean{}, algorithms.AmortizedMidpoint{}}
		alg := algs[rng.Intn(len(algs))]
		persistent := core.NewConfig(alg, inputs)
		inplace := core.NewConfig(alg, inputs)
		for round := 0; round < 6; round++ {
			g := graph.Random(rng, n, 0.4)
			persistent = persistent.Step(g)
			inplace.StepInPlace(g)
			for i := 0; i < n; i++ {
				if persistent.Output(i) != inplace.Output(i) {
					t.Fatalf("trial %d round %d agent %d: %v vs %v",
						trial, round, i, persistent.Output(i), inplace.Output(i))
				}
			}
			if persistent.Round() != inplace.Round() {
				t.Fatalf("round counters diverged")
			}
		}
	}
}

// TestFrameworkDeterminism: identical algorithm, inputs, and pattern give
// bit-identical traces — the determinism assumption of the paper's model
// (Section 2) that the whole valency machinery rests on.
func TestFrameworkDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 5
	inputs := make([]float64, n)
	for i := range inputs {
		inputs[i] = rng.Float64()
	}
	pat := make([]graph.Graph, 20)
	for i := range pat {
		pat[i] = graph.RandomRooted(rng, n, 0.4)
	}
	for _, alg := range []core.Algorithm{algorithms.Midpoint{}, algorithms.AmortizedMidpoint{}, algorithms.Mean{}} {
		a := core.Run(alg, inputs, core.Sequence{Graphs: pat}, 20)
		b := core.Run(alg, inputs, core.Sequence{Graphs: pat}, 20)
		for tIdx := range a.Outputs {
			for i := 0; i < n; i++ {
				if a.Outputs[tIdx][i] != b.Outputs[tIdx][i] {
					t.Fatalf("%s: nondeterministic at round %d agent %d", alg.Name(), tIdx, i)
				}
			}
		}
	}
}

func TestRunDoesNotMutateCaller(t *testing.T) {
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})
	_ = core.RunConfig("midpoint", c, core.Fixed{G: graph.Complete(2)}, 5)
	if c.Round() != 0 || c.Output(0) != 0 || c.Output(1) != 1 {
		t.Error("RunConfig mutated its input configuration")
	}
}

func TestDiameterAndHull(t *testing.T) {
	if core.Diameter(nil) != 0 {
		t.Error("Diameter(nil) != 0")
	}
	if core.Diameter([]float64{3}) != 0 {
		t.Error("Diameter singleton != 0")
	}
	if core.Diameter([]float64{-1, 4, 2}) != 5 {
		t.Error("Diameter([-1,4,2]) != 5")
	}
	lo, hi := core.Hull([]float64{2, -3, 7})
	if lo != -3 || hi != 7 {
		t.Errorf("Hull = [%v, %v], want [-3, 7]", lo, hi)
	}
}

func TestPatternSources(t *testing.T) {
	h0, h1, h2 := graph.H(0), graph.H(1), graph.H(2)
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})

	if g := (core.Fixed{G: h1}).Next(5, c); !g.Equal(h1) {
		t.Error("Fixed returned wrong graph")
	}
	cyc := core.Cycle{Graphs: []graph.Graph{h0, h1, h2}}
	for round, want := range map[int]graph.Graph{1: h0, 2: h1, 3: h2, 4: h0} {
		if g := cyc.Next(round, c); !g.Equal(want) {
			t.Errorf("Cycle round %d: got %v want %v", round, g, want)
		}
	}
	seq := core.Sequence{Graphs: []graph.Graph{h1, h2}}
	if g := seq.Next(1, c); !g.Equal(h1) {
		t.Error("Sequence round 1 wrong")
	}
	if g := seq.Next(9, c); !g.Equal(h2) {
		t.Error("Sequence should repeat its last graph")
	}
	m := model.TwoAgent()
	rnd := core.RandomFromModel{Model: m, Rng: rand.New(rand.NewSource(3))}
	for i := 0; i < 20; i++ {
		if !m.Contains(rnd.Next(i+1, c)) {
			t.Fatal("RandomFromModel left the model")
		}
	}
	fn := core.Func(func(round int, _ *core.Config) graph.Graph {
		if round%2 == 0 {
			return h0
		}
		return h1
	})
	if !fn.Next(2, c).Equal(h0) || !fn.Next(3, c).Equal(h1) {
		t.Error("Func source wrong")
	}
}

func TestRunTraceMidpointOnComplete(t *testing.T) {
	tr := core.Run(algorithms.Midpoint{}, []float64{0, 1, 0.5}, core.Fixed{G: graph.Complete(3)}, 5)
	if tr.Rounds() != 5 {
		t.Fatalf("Rounds = %d, want 5", tr.Rounds())
	}
	if tr.DiameterAt(0) != 1 {
		t.Errorf("initial diameter %v, want 1", tr.DiameterAt(0))
	}
	// On the complete graph the midpoint algorithm converges in one round.
	if tr.DiameterAt(1) != 0 {
		t.Errorf("diameter after one K3 round = %v, want 0", tr.DiameterAt(1))
	}
	if !tr.ValidityHolds(0) {
		t.Error("midpoint violated validity")
	}
}

func TestTraceMetricsOnKnownDecay(t *testing.T) {
	// Midpoint under the constant graph H1: agent 1 moves halfway to agent
	// 0 every round; diameter halves each round.
	tr := core.Run(algorithms.Midpoint{}, []float64{0, 1}, core.Fixed{G: graph.H(1)}, 8)
	ratios := tr.RoundRatios()
	for i, r := range ratios {
		if math.Abs(r-0.5) > 1e-12 {
			t.Errorf("round %d ratio = %v, want 0.5", i+1, r)
		}
	}
	if gr := tr.GeometricRate(); math.Abs(gr-0.5) > 1e-12 {
		t.Errorf("GeometricRate = %v, want 0.5", gr)
	}
	if w := tr.WorstRoundRatio(); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("WorstRoundRatio = %v, want 0.5", w)
	}
	diams := tr.Diameters()
	if len(diams) != 9 || diams[0] != 1 || math.Abs(diams[8]-1.0/256) > 1e-15 {
		t.Errorf("Diameters = %v", diams)
	}
}

func TestGeometricRateDegenerate(t *testing.T) {
	// Zero initial diameter -> rate 0 by convention.
	tr := core.Run(algorithms.Midpoint{}, []float64{1, 1}, core.Fixed{G: graph.Complete(2)}, 3)
	if tr.GeometricRate() != 0 {
		t.Error("GeometricRate on zero-diameter run should be 0")
	}
	// Exact convergence -> rate 0 by convention.
	tr2 := core.Run(algorithms.Midpoint{}, []float64{0, 1}, core.Fixed{G: graph.Complete(2)}, 3)
	if tr2.GeometricRate() != 0 {
		t.Error("GeometricRate after exact convergence should be 0")
	}
}

func TestRunConfigContinues(t *testing.T) {
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})
	c = c.Step(graph.H(1))
	tr := core.RunConfig("midpoint", c, core.Fixed{G: graph.H(0)}, 2)
	if tr.Outputs[0][1] != 0.5 {
		t.Errorf("continuation should start from stepped config, got %v", tr.Outputs[0])
	}
	if tr.Final.Round() != 3 {
		t.Errorf("final round = %d, want 3", tr.Final.Round())
	}
}
