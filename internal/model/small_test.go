package model

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestModelString(t *testing.T) {
	m := TwoAgent()
	s := m.String()
	for _, frag := range []string{"Model(n=2, 3 graphs)", "0->1", "1->0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
}

func TestCommonRootsEdgeCases(t *testing.T) {
	m := TwoAgent()
	if got := m.CommonRoots(nil); got != 0 {
		t.Errorf("CommonRoots(nil) = %b, want 0", got)
	}
	// H0 alone: both agents are roots.
	if got := m.CommonRoots([]int{0}); got != 0b11 {
		t.Errorf("CommonRoots([H0]) = %b, want 11", got)
	}
	// H0 ∩ H1: agent 0 only.
	if got := m.CommonRoots([]int{0, 1}); got != 0b01 {
		t.Errorf("CommonRoots([H0,H1]) = %b, want 01", got)
	}
}

func TestGraphAccessor(t *testing.T) {
	m := MustNew(graph.H(2), graph.H(0))
	if !m.Graph(0).Equal(graph.H(2)) || !m.Graph(1).Equal(graph.H(0)) {
		t.Error("Graph(i) order wrong")
	}
	gs := m.Graphs()
	gs[0] = graph.H(1) // mutate the copy
	if !m.Graph(0).Equal(graph.H(2)) {
		t.Error("Graphs() exposed internal storage")
	}
}

func TestSubPanicsOnBadIndex(t *testing.T) {
	m := TwoAgent()
	defer func() {
		if recover() == nil {
			t.Error("Sub with out-of-range index did not panic")
		}
	}()
	m.Sub([]int{7})
}
