package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestNewDeduplicates(t *testing.T) {
	m, err := New(graph.H(0), graph.H(1), graph.H(0), graph.H(2), graph.H(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 {
		t.Fatalf("Size = %d, want 3", m.Size())
	}
	if m.N() != 2 {
		t.Fatalf("N = %d, want 2", m.N())
	}
	for k := 0; k < 3; k++ {
		if !m.Contains(graph.H(k)) {
			t.Errorf("model should contain H%d", k)
		}
		if m.Index(graph.H(k)) != k {
			t.Errorf("Index(H%d) = %d, want %d (first-occurrence order)", k, m.Index(graph.H(k)), k)
		}
	}
	if m.Contains(graph.New(2)) {
		t.Error("model should not contain the identity graph")
	}
	if m.Index(graph.New(2)) != -1 {
		t.Error("Index of absent graph should be -1")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty model accepted")
	}
	if _, err := New(graph.Complete(2), graph.Complete(3)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestPredicates(t *testing.T) {
	two := TwoAgent()
	if !two.IsRooted() || !two.IsNonSplit() {
		t.Error("TwoAgent model should be rooted and non-split")
	}
	withIdentity := MustNew(graph.H(0), graph.New(2))
	if withIdentity.IsRooted() {
		t.Error("model containing the identity graph is not rooted")
	}
	psi := PsiModel(6)
	if !psi.IsRooted() {
		t.Error("Psi model should be rooted")
	}
	if psi.IsNonSplit() {
		t.Error("Psi graphs are not non-split (the deaf trio agent splits from the path head)")
	}
}

func TestSub(t *testing.T) {
	m := TwoAgent()
	s := m.Sub([]int{0, 2})
	if s.Size() != 2 || !s.Contains(graph.H(0)) || !s.Contains(graph.H(2)) || s.Contains(graph.H(1)) {
		t.Errorf("Sub([0,2]) wrong: %v", s)
	}
}

func TestAlphaRelated(t *testing.T) {
	// In the two-agent model: H1 has roots {0}, H2 has roots {1},
	// H0 has roots {0,1}.
	h0, h1, h2 := graph.H(0), graph.H(1), graph.H(2)
	// H0 and H1 agree on agent 1's in-neighborhood ({0,1}), and agent 1 is
	// the root of H2 -> H0 alpha_{N,H2} H1.
	if !AlphaRelated(h0, h1, h2) {
		t.Error("H0 and H1 should be alpha-related with witness H2")
	}
	// H0 and H2 agree on agent 0's in-neighborhood, root of H1.
	if !AlphaRelated(h0, h2, h1) {
		t.Error("H0 and H2 should be alpha-related with witness H1")
	}
	// H1 and H2 differ on both agents' in-neighborhoods; H0 has both
	// agents as roots, so no relation with witness H0.
	if AlphaRelated(h1, h2, h0) {
		t.Error("H1 and H2 should not be alpha-related with witness H0")
	}
	// ... and not with the one-root witnesses either (they still disagree
	// on the root's in-neighborhood).
	if AlphaRelated(h1, h2, h1) || AlphaRelated(h1, h2, h2) {
		t.Error("H1 and H2 should not be one-step alpha-related at all")
	}
	// Reflexivity.
	if !AlphaRelated(h1, h1, h0) {
		t.Error("alpha should be reflexive")
	}
}

func TestTwoAgentAlphaDiameter(t *testing.T) {
	// The paper states after Definition 22 that D = 2 for {H0, H1, H2}.
	d, finite := TwoAgent().AlphaDiameter()
	if !finite {
		t.Fatal("TwoAgent alpha-diameter should be finite")
	}
	if d != 2 {
		t.Errorf("TwoAgent alpha-diameter = %d, want 2", d)
	}
}

func TestDeafModelAlphaDiameter(t *testing.T) {
	// The paper states after Definition 22 that D = 1 for deaf(G).
	for _, n := range []int{3, 4, 5} {
		m := DeafModel(graph.Complete(n))
		d, finite := m.AlphaDiameter()
		if !finite {
			t.Fatalf("n=%d: deaf model alpha-diameter should be finite", n)
		}
		if d != 1 {
			t.Errorf("n=%d: deaf model alpha-diameter = %d, want 1", n, d)
		}
	}
}

func TestAlphaDiameterSingleton(t *testing.T) {
	m := MustNew(graph.Complete(3))
	d, finite := m.AlphaDiameter()
	if !finite || d != 1 {
		t.Errorf("singleton model: d=%d finite=%v, want 1,true (Definition 22 floor)", d, finite)
	}
}

func TestAlphaDiameterInfinite(t *testing.T) {
	// Two star graphs with different centers: the only roots are the
	// centers, and the graphs disagree on every node's in-neighborhood
	// except their own centers'... construct a genuinely disconnected pair:
	// g = star at 0, h = star at 1. Roots(g) = {0}, Roots(h) = {1}.
	// alpha_{.,g}: need In_0 equal: In_0(g) = {0}, In_0(h) = {0,1} -> no.
	// alpha_{.,h}: In_1(g) = {0,1}, In_1(h) = {1} -> no.
	g := graph.Star(3, 0)
	h := graph.Star(3, 1)
	m := MustNew(g, h)
	if _, finite := m.AlphaDiameter(); finite {
		t.Error("two disagreeing stars should have infinite alpha-diameter")
	}
	classes := m.AlphaClasses()
	if len(classes) != 2 {
		t.Errorf("expected 2 alpha classes, got %v", classes)
	}
}

func TestBetaClassesTwoAgent(t *testing.T) {
	// For {H0, H1, H2}: alpha* connects everything (H0-H1 via H2, H0-H2
	// via H1). The closure property survives refinement with in-class
	// witnesses, so there is a single beta-class; it is source-incompatible
	// (roots {0,1} ∩ {0} ∩ {1} = ∅), so exact consensus is unsolvable —
	// consistent with Theorem 1's positive contraction bound.
	m := TwoAgent()
	classes := m.BetaClasses()
	if len(classes) != 1 || len(classes[0]) != 3 {
		t.Fatalf("TwoAgent beta classes = %v, want one class of 3", classes)
	}
	if !m.SourceIncompatible(classes[0]) {
		t.Error("TwoAgent beta class should be source-incompatible")
	}
	if m.ExactConsensusSolvable() {
		t.Error("exact consensus should be unsolvable in TwoAgent model")
	}
}

func TestBetaClassesDeafModel(t *testing.T) {
	for _, n := range []int{3, 4} {
		m := DeafModel(graph.Complete(n))
		classes := m.BetaClasses()
		if len(classes) != 1 {
			t.Fatalf("n=%d: deaf model beta classes = %v, want single class", n, classes)
		}
		if !m.SourceIncompatible(classes[0]) {
			t.Errorf("n=%d: deaf class should be source-incompatible", n)
		}
		if m.ExactConsensusSolvable() {
			t.Errorf("n=%d: exact consensus should be unsolvable in deaf model", n)
		}
	}
}

func TestExactConsensusSolvableCases(t *testing.T) {
	// A singleton rooted model: solvable (the fixed graph's roots are
	// common). This matches the classical fixed-topology result.
	m := MustNew(graph.Star(4, 0))
	if !m.ExactConsensusSolvable() {
		t.Error("singleton star model should allow exact consensus")
	}
	// All graphs share root 0: solvable regardless of class structure.
	m2 := MustNew(
		graph.Star(3, 0),
		graph.MustFromEdges(3, [2]int{0, 1}, [2]int{1, 2}),
		graph.Complete(3),
	)
	if !m2.ExactConsensusSolvable() {
		t.Error("common-root model should allow exact consensus")
	}
	// Two disagreeing stars: two beta classes, each a singleton with a
	// common root -> solvable even though the union of roots is empty.
	m3 := MustNew(graph.Star(3, 0), graph.Star(3, 1))
	if !m3.ExactConsensusSolvable() {
		t.Error("disconnected-star model should allow exact consensus")
	}
}

func TestBetaRefinementStrictlyRefines(t *testing.T) {
	// Construct a model where alpha* merges graphs that beta must split.
	// Take the two stars (mutually alpha-unrelated) plus a bridge graph
	// whose root set is empty -> the bridge relates everything as a
	// witness (In over empty set is vacuously equal), gluing the alpha*
	// classes together; beta refinement with in-class witnesses must then
	// split off the unrooted bridge's gluing power only if consistent.
	bridge := graph.New(3) // identity graph: no roots at all
	m := MustNew(graph.Star(3, 0), graph.Star(3, 1), bridge)
	alpha := m.AlphaClasses()
	if len(alpha) != 1 {
		t.Fatalf("bridge should alpha-glue everything, got %v", alpha)
	}
	beta := m.BetaClasses()
	// The bridge stays a universal witness inside the single class, so
	// beta cannot split it: closure property holds with K = bridge.
	if len(beta) != 1 {
		t.Fatalf("beta classes = %v, want single class (bridge is in-class witness)", beta)
	}
	// With an empty-root witness in its class, the class has empty common
	// roots -> source-incompatible -> exact consensus unsolvable. (The
	// model is not rooted, so not even asymptotic consensus is solvable.)
	if m.ExactConsensusSolvable() {
		t.Error("bridge model should be exact-consensus unsolvable")
	}
}

func TestContractionLowerBoundTwoAgent(t *testing.T) {
	b := TwoAgent().ContractionLowerBound()
	if b.Rate != 1.0/3.0 {
		t.Errorf("TwoAgent bound = %v (%s), want 1/3 via Theorem 1", b.Rate, b.Theorem)
	}
	if b.Theorem != "Theorem 1" {
		t.Errorf("TwoAgent bound theorem = %s, want Theorem 1", b.Theorem)
	}
}

func TestContractionLowerBoundDeaf(t *testing.T) {
	for _, n := range []int{3, 5} {
		b := DeafModel(graph.Complete(n)).ContractionLowerBound()
		if b.Rate != 0.5 {
			t.Errorf("n=%d: deaf bound = %v (%s), want 1/2 via Theorem 2", n, b.Rate, b.Theorem)
		}
	}
	// deaf(G) for a non-complete base graph also qualifies.
	g := graph.MustFromEdges(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 0}, [2]int{0, 2}, [2]int{1, 3})
	b := DeafModel(g).ContractionLowerBound()
	if b.Rate != 0.5 {
		t.Errorf("deaf(cycle+) bound = %v (%s), want 1/2", b.Rate, b.Theorem)
	}
}

func TestContractionLowerBoundPsi(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		b := PsiModel(n).ContractionLowerBound()
		want := math.Pow(0.5, 1/float64(n-2))
		if math.Abs(b.Rate-want) > 1e-12 {
			t.Errorf("n=%d: Psi bound = %v (%s), want %v via Theorem 3", n, b.Rate, b.Theorem, want)
		}
		if b.Theorem != "Theorem 3" {
			t.Errorf("n=%d: Psi bound theorem = %s, want Theorem 3", n, b.Theorem)
		}
	}
}

func TestContractionLowerBoundVacuous(t *testing.T) {
	// A non-rooted model has no asymptotic consensus algorithm at all;
	// the bound is flagged vacuous with the trivial rate 1.
	m := MustNew(graph.New(3), graph.Complete(3))
	b := m.ContractionLowerBound()
	if b.Theorem != "vacuous" || b.Rate != 1 {
		t.Errorf("vacuous bound = %+v", b)
	}
}

func TestContractionLowerBoundSolvable(t *testing.T) {
	b := MustNew(graph.Star(4, 0)).ContractionLowerBound()
	if b.Rate != 0 {
		t.Errorf("solvable model bound = %v, want 0", b.Rate)
	}
}

func TestFindDeafTripleOnSupersetModel(t *testing.T) {
	// A model strictly containing deaf(K4) plus unrelated graphs should
	// still be detected.
	gs := graph.DeafFamily(graph.Complete(4))
	gs = append(gs, graph.Cycle(4), graph.Star(4, 2))
	m := MustNew(gs...)
	triple, ok := m.FindDeafTriple()
	if !ok {
		t.Fatal("deaf triple not found in superset model")
	}
	seen := map[int]bool{}
	for k, a := range triple.Agents {
		if !triple.Graphs[k].IsDeaf(a) {
			t.Errorf("witness graph %d not deaf at %d", k, a)
		}
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Errorf("deaf triple agents not distinct: %v", triple.Agents)
	}
	// A model with deaf graphs from *different* bases must not match.
	m2 := MustNew(
		graph.Deaf(graph.Complete(4), 0),
		graph.Deaf(graph.Cycle(4), 1),
		graph.Deaf(graph.Star(4, 3), 2),
	)
	if _, ok := m2.FindDeafTriple(); ok {
		t.Error("inconsistent deaf graphs wrongly matched as a triple")
	}
}

func TestAsyncChainModel(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{4, 1}, {6, 2}, {9, 3}, {5, 2}} {
		m, err := AsyncChain(tc.n, tc.f)
		if err != nil {
			t.Fatalf("AsyncChain(%d,%d): %v", tc.n, tc.f, err)
		}
		q := graph.NumBlocks(tc.n, tc.f)
		for _, g := range m.Graphs() {
			if g.MinInDegree() < tc.n-tc.f {
				t.Errorf("n=%d f=%d: member leaves N_A: %v", tc.n, tc.f, g)
			}
		}
		d, finite := m.AlphaDiameter()
		if !finite {
			t.Fatalf("n=%d f=%d: AsyncChain alpha-diameter infinite", tc.n, tc.f)
		}
		// The model chains q+1 anchors with Lemma 24 chains of length q
		// each, so its diameter is at most q*(q+1). (The ⌈n/f⌉ bound of
		// Lemma 24 is for the full N_A, not this finite sub-model.)
		if d > q*(q+1) {
			t.Errorf("n=%d f=%d: alpha-diameter %d exceeds anchor-chain bound %d", tc.n, tc.f, d, q*(q+1))
		}
		if m.ExactConsensusSolvable() {
			t.Errorf("n=%d f=%d: AsyncChain should be exact-consensus unsolvable", tc.n, tc.f)
		}
		bound := m.ContractionLowerBound()
		if bound.Rate <= 0 {
			t.Errorf("n=%d f=%d: expected a positive contraction bound", tc.n, tc.f)
		}
		t.Logf("AsyncChain(%d,%d): %d graphs, D=%d, bound=%.4f via %s",
			tc.n, tc.f, m.Size(), d, bound.Rate, bound.Theorem)
	}
	if _, err := AsyncChain(4, 2); err == nil {
		t.Error("AsyncChain with f >= n/2 accepted")
	}
}

// TestFullAsyncRoundModel computes the exact alpha-diameter of the full
// asynchronous-round model N_A(4, 1) and checks it against the Lemma 24
// upper bound ⌈n/f⌉ = 4, which yields Theorem 6's 1/(⌈n/f⌉+1) round-based
// contraction bound.
func TestFullAsyncRoundModel(t *testing.T) {
	m, err := FullAsyncRound(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 256 {
		t.Fatalf("N_A(4,1) has %d graphs, want 4^4 = 256", m.Size())
	}
	for _, g := range m.Graphs() {
		if g.MinInDegree() < 3 {
			t.Fatalf("N_A(4,1) member with min in-degree %d: %v", g.MinInDegree(), g)
		}
	}
	d, finite := m.AlphaDiameter()
	if !finite {
		t.Fatal("N_A(4,1) alpha-diameter should be finite")
	}
	if d > graph.NumBlocks(4, 1) {
		t.Errorf("N_A(4,1) alpha-diameter %d exceeds Lemma 24 bound %d", d, graph.NumBlocks(4, 1))
	}
	if m.ExactConsensusSolvable() {
		t.Error("exact consensus should be unsolvable in N_A(4,1) (f >= 1 crash)")
	}
	bound := m.ContractionLowerBound()
	if bound.Rate < 1.0/float64(graph.NumBlocks(4, 1)+1)-1e-12 {
		t.Errorf("N_A(4,1) bound %.4f below Theorem 6 value %.4f", bound.Rate, 1.0/5.0)
	}
	t.Logf("N_A(4,1): exact D=%d, bound=%.4f via %s", d, bound.Rate, bound.Theorem)
	if _, err := FullAsyncRound(6, 2); err == nil {
		t.Error("FullAsyncRound(6,2) should refuse enumeration")
	}
}

func TestSilencedBlocksModel(t *testing.T) {
	m, err := SilencedBlocks(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 {
		t.Fatalf("SilencedBlocks(6,2) size = %d, want 3", m.Size())
	}
	// The union of silenced blocks covers [n], so the intersection of the
	// root sets is empty.
	if m.CommonRoots(m.allIndices()) != 0 {
		t.Error("silenced-block graphs should have no common root")
	}
	if _, err := SilencedBlocks(4, 4); err == nil {
		t.Error("SilencedBlocks with f >= n accepted")
	}
}

// TestCorollary23WithInfiniteFullDiameter builds a model whose full
// alpha-diameter is infinite (Theorem 5 inapplicable) but that still has
// a positive bound through its source-incompatible beta-class: deaf(K3)
// plus an alpha-isolated 3-cycle. The cycle's in-neighborhoods differ
// from every deaf graph's on every potential witness root, so it forms
// its own class.
func TestCorollary23WithInfiniteFullDiameter(t *testing.T) {
	gs := append(graph.DeafFamily(graph.Complete(3)), graph.Cycle(3))
	m := MustNew(gs...)
	if _, finite := m.AlphaDiameter(); finite {
		t.Fatal("expected infinite full alpha-diameter")
	}
	if m.ExactConsensusSolvable() {
		t.Fatal("deaf class should make the model unsolvable")
	}
	classes := m.BetaClasses()
	if len(classes) != 2 {
		t.Fatalf("beta classes = %v, want deaf-class + cycle", classes)
	}
	b := m.ContractionLowerBound()
	if b.Rate != 0.5 {
		t.Errorf("bound = %v via %s, want 1/2 (deaf triple / Corollary 23)", b.Rate, b.Theorem)
	}
}

// TestSilencedBlocksSolvable documents a subtlety of Theorem 19: the
// model of the silenced-block graphs alone is exact-consensus solvable —
// the K_r are pairwise alpha-unrelated, so each forms its own beta-class
// with a nonempty root set, even though the union of the model's root
// sets is empty.
func TestSilencedBlocksSolvable(t *testing.T) {
	m, err := SilencedBlocks(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.CommonRoots(m.allIndices()) != 0 {
		t.Fatal("sanity: no common root across all blocks")
	}
	classes := m.BetaClasses()
	if len(classes) != m.Size() {
		t.Fatalf("beta classes = %v, want singletons", classes)
	}
	if !m.ExactConsensusSolvable() {
		t.Error("singleton-class model should be solvable (Theorem 19)")
	}
	if b := m.ContractionLowerBound(); b.Rate != 0 {
		t.Errorf("bound = %v, want 0 for a solvable model", b.Rate)
	}
}

func TestAllRootedAllNonSplit(t *testing.T) {
	r, err := AllRooted(3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsRooted() {
		t.Error("AllRooted contains unrooted graph")
	}
	ns, err := AllNonSplit(3)
	if err != nil {
		t.Fatal(err)
	}
	if !ns.IsNonSplit() {
		t.Error("AllNonSplit contains split graph")
	}
	if ns.Size() >= r.Size() {
		t.Errorf("non-split model (%d) should be smaller than rooted model (%d)", ns.Size(), r.Size())
	}
	// The non-split model on >= 3 agents contains deaf(K_n)? It contains
	// every non-split graph; Deaf(K3, i) is non-split, so yes.
	for i := 0; i < 3; i++ {
		if !ns.Contains(graph.Deaf(graph.Complete(3), i)) {
			t.Errorf("AllNonSplit(3) missing Deaf(K3,%d)", i)
		}
	}
	// Hence its contraction bound is 1/2.
	if b := ns.ContractionLowerBound(); b.Rate != 0.5 {
		t.Errorf("AllNonSplit(3) bound = %v via %s, want 1/2", b.Rate, b.Theorem)
	}
	if _, err := AllRooted(7); err == nil {
		t.Error("AllRooted(7) should refuse enumeration")
	}
}

// TestLemma17BetaClassIsOwnSingleClass machine-checks Lemma 17: a
// beta-class N' of N, viewed as a model of its own, is alpha*-connected
// and has the single beta-class N' x N'.
func TestLemma17BetaClassIsOwnSingleClass(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	models := []*Model{
		TwoAgent(),
		DeafModel(graph.Complete(3)),
		PsiModel(5),
	}
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(3)
		size := 2 + rng.Intn(5)
		gs := make([]graph.Graph, size)
		for i := range gs {
			gs[i] = graph.Random(rng, n, 0.4)
		}
		models = append(models, MustNew(gs...))
	}
	for mi, m := range models {
		for _, class := range m.BetaClasses() {
			sub := m.Sub(class)
			subAlpha := sub.AlphaClasses()
			if len(subAlpha) != 1 {
				t.Errorf("model %d: beta-class %v not alpha*-connected as own model: %v",
					mi, class, subAlpha)
			}
			subBeta := sub.BetaClasses()
			if len(subBeta) != 1 || len(subBeta[0]) != sub.Size() {
				t.Errorf("model %d: beta-class %v splits further as own model: %v",
					mi, class, subBeta)
			}
		}
	}
}

func TestBetaClassesRandomizedInvariants(t *testing.T) {
	// Invariants on random models: beta refines alpha*; classes partition
	// the model; solvability is consistent with the class predicate.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(3)
		size := 2 + rng.Intn(5)
		gs := make([]graph.Graph, size)
		for i := range gs {
			gs[i] = graph.Random(rng, n, 0.4)
		}
		m := MustNew(gs...)
		alpha := m.AlphaClasses()
		beta := m.BetaClasses()
		if !isPartition(beta, m.Size()) {
			t.Fatalf("beta classes %v are not a partition of %d graphs", beta, m.Size())
		}
		if !refines(beta, alpha) {
			t.Fatalf("beta %v does not refine alpha* %v", beta, alpha)
		}
		wantSolvable := true
		for _, c := range beta {
			if m.SourceIncompatible(c) {
				wantSolvable = false
			}
		}
		if got := m.ExactConsensusSolvable(); got != wantSolvable {
			t.Fatalf("solvability inconsistent: got %v want %v", got, wantSolvable)
		}
	}
}

func isPartition(classes [][]int, size int) bool {
	seen := make([]bool, size)
	count := 0
	for _, c := range classes {
		for _, i := range c {
			if i < 0 || i >= size || seen[i] {
				return false
			}
			seen[i] = true
			count++
		}
	}
	return count == size
}

func refines(fine, coarse [][]int) bool {
	owner := map[int]int{}
	for ci, c := range coarse {
		for _, i := range c {
			owner[i] = ci
		}
	}
	for _, c := range fine {
		for _, i := range c[1:] {
			if owner[i] != owner[c[0]] {
				return false
			}
		}
	}
	return true
}
