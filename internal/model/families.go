package model

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// This file provides the named network models the paper's table rows are
// stated for.

// TwoAgent returns the model {H0, H1, H2}: all rooted two-agent graphs
// (Figure 1). It is the weakest two-agent model in which asymptotic
// consensus is solvable; Theorem 1 proves the 1/3 contraction bound on it.
func TwoAgent() *Model {
	return MustNew(graph.HFamily()...)
}

// DeafModel returns the model deaf(g) = {F_1, ..., F_n} (Section 5).
// Theorem 2 proves the 1/2 contraction bound for every model containing
// it; for g = K_n it is a sub-model of the all-non-split model.
func DeafModel(g graph.Graph) *Model {
	return MustNew(graph.DeafFamily(g)...)
}

// PsiModel returns the model {Psi_0, Psi_1, Psi_2} on n >= 4 nodes
// (Figure 2), the carrier of the Theorem 3 rooted-model bound.
func PsiModel(n int) *Model {
	return MustNew(graph.PsiFamily(n)...)
}

// AllRooted returns the model of all rooted graphs on n nodes — the
// weakest model in which asymptotic consensus is solvable. Enumeration is
// exponential, so this is available only for small n (see
// graph.EnumerateRooted).
func AllRooted(n int) (*Model, error) {
	gs, err := graph.EnumerateRooted(n)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	return New(gs...)
}

// AllNonSplit returns the model of all non-split graphs on n nodes, for
// small n.
func AllNonSplit(n int) (*Model, error) {
	gs, err := graph.EnumerateNonSplit(n)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	return New(gs...)
}

// AsyncChain returns a finite, alpha-connected sub-model of the
// asynchronous-round model N_A(n, f) = {G : min in-degree >= n-f}. It
// contains the complete graph, every silenced-block graph K_0..K_{q-1}
// (q = ⌈n/f⌉), and the Lemma 24 mixture chains joining the complete graph
// to K_0 and each K_r to K_{r+1}. The chain witnesses are silenced-block
// graphs and hence themselves members, so the whole model is
// alpha*-connected and its alpha-diameter is finite (though in general
// larger than the ⌈n/f⌉ the lemma certifies for the full N_A — the
// experiments report both).
//
// Every member has min in-degree >= n-f, so every execution of this
// sub-model is a legal round-based asynchronous execution with up to f
// crashes (Section 8.1), and contraction lower bounds computed for it
// apply to round-based algorithms per Theorem 6's argument.
func AsyncChain(n, f int) (*Model, error) {
	if f < 1 || 2*f >= n {
		return nil, fmt.Errorf("model: AsyncChain requires 0 < f < n/2, got n=%d f=%d", n, f)
	}
	q := graph.NumBlocks(n, f)
	anchors := make([]graph.Graph, 0, q+1)
	anchors = append(anchors, graph.Complete(n))
	for r := 0; r < q; r++ {
		anchors = append(anchors, graph.SilenceBlock(n, f, r))
	}
	var all []graph.Graph
	all = append(all, anchors...)
	for i := 0; i+1 < len(anchors); i++ {
		hs, ks, err := graph.Lemma24Chain(anchors[i], anchors[i+1], f)
		if err != nil {
			return nil, fmt.Errorf("model: %w", err)
		}
		all = append(all, hs...)
		all = append(all, ks...)
	}
	return New(all...)
}

// FullAsyncRound returns the complete asynchronous-round model N_A(n, f):
// every communication graph with minimum in-degree >= n-f. The member
// count is (sum_{k<=f} C(n-1,k))^n, so this is only available when that
// count is at most 4096 (e.g. n=4 f=1: 256 graphs; n=5 f=1: 3125). For
// these models Lemma 24 gives alpha-diameter <= ⌈n/f⌉ and Theorem 6 the
// 1/(⌈n/f⌉+1) round-based contraction bound; the exact diameter is
// computed, not assumed.
func FullAsyncRound(n, f int) (*Model, error) {
	if f < 1 || f >= n {
		return nil, fmt.Errorf("model: FullAsyncRound requires 0 < f < n, got n=%d f=%d", n, f)
	}
	// The subset enumeration below shifts 1<<n, and the member count is
	// astronomically over the 4096 cap long before n = 64 anyway; reject
	// wide n up front instead of silently enumerating an empty range.
	if n > 64 {
		return nil, fmt.Errorf("model: FullAsyncRound supports n <= 64, got %d", n)
	}
	// Per node i: the legal sets of senders i may fail to hear — at most f
	// of them, never i itself.
	perNode := make([][]uint64, n)
	limit := uint64(1) << uint(n)
	for i := 0; i < n; i++ {
		for m := uint64(0); m < limit; m++ {
			if bits.OnesCount64(m) <= f && m&(1<<uint(i)) == 0 {
				perNode[i] = append(perNode[i], m)
			}
		}
	}
	total := 1
	for i := 0; i < n; i++ {
		total *= len(perNode[i])
		if total > 4096 {
			return nil, fmt.Errorf("model: FullAsyncRound(%d,%d) would enumerate more than 4096 graphs", n, f)
		}
	}
	choice := make([]int, n)
	gs := make([]graph.Graph, 0, total)
	for {
		b := graph.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.InMask(i, ^perNode[i][choice[i]])
		}
		gs = append(gs, b.Graph())
		pos := 0
		for pos < n {
			choice[pos]++
			if choice[pos] < len(perNode[pos]) {
				break
			}
			choice[pos] = 0
			pos++
		}
		if pos == n {
			break
		}
	}
	return New(gs...)
}

// SilencedBlocks returns the model {K_0, ..., K_{q-1}} of all
// silenced-block graphs for the given n and f. It is a sub-model of
// N_A(n, f) whose graphs' root sets cover-complement [n], making every
// all-in-one beta-class source-incompatible.
func SilencedBlocks(n, f int) (*Model, error) {
	if f < 1 || f >= n {
		return nil, fmt.Errorf("model: SilencedBlocks requires 0 < f < n, got n=%d f=%d", n, f)
	}
	q := graph.NumBlocks(n, f)
	gs := make([]graph.Graph, q)
	for r := 0; r < q; r++ {
		gs[r] = graph.SilenceBlock(n, f, r)
	}
	return New(gs...)
}
