// Package model implements network models — sets of communication graphs
// from which a dynamic-network adversary picks one graph per round — and
// the solvability machinery of Section 7 of Függer, Nowak, Schwarz,
// "Tight Bounds for Asymptotic and Approximate Consensus" (PODC 2018):
//
//   - the alpha relation of Coulouma, Godard, Peters (Definition 15),
//   - its transitive closure and the alpha-diameter (Definition 22),
//   - the beta equivalence classes (Definition 16) and
//     source-incompatibility (Definition 18),
//   - the exact-consensus solvability test (Theorem 19), and
//   - the contraction-rate lower-bound selector that combines Theorems 1,
//     2, 3, 5 and Corollary 23.
package model

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Model is an immutable, deduplicated set of communication graphs on a
// common node count. The adversary of the dynamic-network model picks an
// arbitrary member in every round.
type Model struct {
	n      int
	graphs []graph.Graph
	index  map[string]int
}

// New builds a model from the given graphs, deduplicating them and
// preserving first-occurrence order. It returns an error if the set is
// empty or the node counts disagree.
func New(gs ...graph.Graph) (*Model, error) {
	if len(gs) == 0 {
		return nil, fmt.Errorf("model: empty graph set")
	}
	n := gs[0].N()
	m := &Model{n: n, index: make(map[string]int)}
	for _, g := range gs {
		if g.N() != n {
			return nil, fmt.Errorf("model: node count mismatch: %d vs %d", g.N(), n)
		}
		k := g.Key()
		if _, dup := m.index[k]; dup {
			continue
		}
		m.index[k] = len(m.graphs)
		m.graphs = append(m.graphs, g)
	}
	return m, nil
}

// MustNew is New that panics on error; for statically known models.
func MustNew(gs ...graph.Graph) *Model {
	m, err := New(gs...)
	if err != nil {
		panic(err)
	}
	return m
}

// N returns the number of agents.
func (m *Model) N() int { return m.n }

// Size returns the number of distinct graphs.
func (m *Model) Size() int { return len(m.graphs) }

// Graph returns the i-th graph in deterministic model order.
func (m *Model) Graph(i int) graph.Graph { return m.graphs[i] }

// Graphs returns a copy of the graph list.
func (m *Model) Graphs() []graph.Graph {
	out := make([]graph.Graph, len(m.graphs))
	copy(out, m.graphs)
	return out
}

// Contains reports whether g is a member of the model.
func (m *Model) Contains(g graph.Graph) bool {
	_, ok := m.index[g.Key()]
	return ok
}

// Index returns the position of g in the model, or -1.
func (m *Model) Index(g graph.Graph) int {
	if i, ok := m.index[g.Key()]; ok {
		return i
	}
	return -1
}

// IsRooted reports whether every member graph is rooted. By Theorem 1 of
// Charron-Bost et al. (restated as Section 2.2, Theorem 1 in the paper),
// asymptotic consensus is solvable in the model iff this holds.
func (m *Model) IsRooted() bool {
	for _, g := range m.graphs {
		if !g.IsRooted() {
			return false
		}
	}
	return true
}

// IsNonSplit reports whether every member graph is non-split.
func (m *Model) IsNonSplit() bool {
	for _, g := range m.graphs {
		if !g.IsNonSplit() {
			return false
		}
	}
	return true
}

// Sub returns the sub-model consisting of the graphs at the given indices.
func (m *Model) Sub(indices []int) *Model {
	gs := make([]graph.Graph, 0, len(indices))
	for _, i := range indices {
		gs = append(gs, m.graphs[i])
	}
	sub, err := New(gs...)
	if err != nil {
		panic(fmt.Sprintf("model: Sub on invalid index set: %v", err))
	}
	return sub
}

// String lists the member graphs.
func (m *Model) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Model(n=%d, %d graphs){", m.n, len(m.graphs))
	for i, g := range m.graphs {
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteString(g.String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// AlphaRelated reports g alpha_{N,K} h: g and h assign the same
// in-neighborhoods to every root of k (Definition 15). The relation is
// reflexive and symmetric; the model only contributes the requirement
// k ∈ N, which the caller asserts by passing a member graph.
func AlphaRelated(g, h, k graph.Graph) bool {
	return graph.InsOnSet(g, h, k.RootsSet())
}

// bitMatrix is a square symmetric boolean matrix stored as packed 64-bit
// rows, the idiom used for in-neighbor masks in internal/graph. Row i
// occupies words[i*stride : (i+1)*stride]; bit j of a row marks adjacency
// to column j. The packed layout makes the reachability sweeps below
// (component closure, BFS level expansion) word-parallel: one OR merges
// 64 adjacency columns at a time.
type bitMatrix struct {
	n      int
	stride int
	words  []uint64
}

func newBitMatrix(n int) bitMatrix {
	stride := (n + 63) / 64
	return bitMatrix{n: n, stride: stride, words: make([]uint64, n*stride)}
}

func (bm bitMatrix) set(i, j int) {
	bm.words[i*bm.stride+j>>6] |= 1 << uint(j&63)
}

func (bm bitMatrix) row(i int) []uint64 {
	return bm.words[i*bm.stride : (i+1)*bm.stride]
}

// orRowsOf ORs into dst the adjacency rows of every index set in src,
// i.e. dst |= ∪_{i ∈ src} row(i).
func (bm bitMatrix) orRowsOf(dst, src []uint64) {
	for w, word := range src {
		base := w << 6
		for word != 0 {
			i := base + trailingZeros(word)
			word &= word - 1
			row := bm.row(i)
			for x := range dst {
				dst[x] |= row[x]
			}
		}
	}
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// alphaAdjacency returns the adjacency matrix of the one-step alpha
// relation over model indices, using the allowed witness indices, as
// packed bitmask rows. Bit b of row a is set iff some witness k satisfies
// graphs[members[a]] alpha_{.,k} graphs[members[b]].
func (m *Model) alphaAdjacency(members, witnesses []int) bitMatrix {
	// A witness enters the alpha relation only through its root set, so
	// deduplicating root sets shrinks the inner loop drastically: models
	// like FullAsyncRound(4,1) have 256 witnesses but only a handful of
	// distinct root sets.
	rootSets := make([][]uint64, 0, len(witnesses))
	for _, k := range witnesses {
		roots := m.graphs[k].RootsSet()
		dup := false
		for _, seen := range rootSets {
			if graph.SetsEqual(seen, roots) {
				dup = true
				break
			}
		}
		if !dup {
			rootSets = append(rootSets, roots)
		}
	}
	adj := newBitMatrix(len(members))
	for a, i := range members {
		adj.set(a, a)
		for b := a + 1; b < len(members); b++ {
			j := members[b]
			for _, roots := range rootSets {
				if graph.InsOnSet(m.graphs[i], m.graphs[j], roots) {
					adj.set(a, b)
					adj.set(b, a)
					break
				}
			}
		}
	}
	return adj
}

// AlphaClasses returns the partition of the model into connected
// components of the alpha* relation (transitive closure of the union of
// alpha_{N,K} over K in N). Classes are sorted by smallest member index.
func (m *Model) AlphaClasses() [][]int {
	all := m.allIndices()
	adj := m.alphaAdjacency(all, all)
	return components(adj, all)
}

// AlphaDiameter returns the alpha-diameter of the model (Definition 22):
// the smallest D such that any two member graphs are joined by an
// alpha-chain of length at most D with all chain members and witnesses in
// the model. finite is false when the model is not alpha*-connected, in
// which case the paper sets D = infinity.
func (m *Model) AlphaDiameter() (d int, finite bool) {
	all := m.allIndices()
	return m.alphaDiameterWithin(all, all)
}

// alphaDiameterWithin computes the diameter of the one-step alpha graph
// restricted to members, with witnesses drawn from the witness set, via
// BFS from every member.
func (m *Model) alphaDiameterWithin(members, witnesses []int) (int, bool) {
	adj := m.alphaAdjacency(members, witnesses)
	n := len(members)
	stride := adj.stride
	full := make([]uint64, stride)
	for i := 0; i < n; i++ {
		full[i>>6] |= 1 << uint(i&63)
	}
	visited := make([]uint64, stride)
	frontier := make([]uint64, stride)
	next := make([]uint64, stride)
	maxDist := 0
	for s := 0; s < n; s++ {
		// Level-synchronous BFS on bitmask frontiers: each level expands
		// by OR-ing whole adjacency rows, 64 columns per word operation.
		for w := range visited {
			visited[w] = 0
			frontier[w] = 0
		}
		visited[s>>6] = 1 << uint(s&63)
		frontier[s>>6] = visited[s>>6]
		dist := 0
		for !equalWords(visited, full) {
			for w := range next {
				next[w] = 0
			}
			adj.orRowsOf(next, frontier)
			advanced := false
			for w := range next {
				next[w] &^= visited[w]
				if next[w] != 0 {
					advanced = true
				}
			}
			if !advanced {
				return 0, false // s cannot reach every member
			}
			dist++
			for w := range next {
				visited[w] |= next[w]
			}
			copy(frontier, next)
		}
		if dist > maxDist {
			maxDist = dist
		}
	}
	if maxDist < 1 {
		maxDist = 1 // Definition 22 requires D >= 1.
	}
	return maxDist, true
}

func equalWords(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BetaClasses returns the beta-equivalence classes of the model
// (Definition 16): the coarsest equivalence relation included in alpha*
// satisfying the closure property that any two related graphs are joined
// by an alpha-chain whose members and witnesses all lie in the same class.
//
// The computation is the standard greatest-fixpoint refinement: start from
// the alpha*-classes and repeatedly split each class into the connected
// components of the one-step alpha relation that only uses witnesses from
// the class itself, until stable. Classes only ever shrink, so the loop
// terminates; the result satisfies the closure property by construction
// and is coarsest because every relation satisfying the property is
// preserved by each refinement step.
func (m *Model) BetaClasses() [][]int {
	classes := m.AlphaClasses()
	for {
		var next [][]int
		changed := false
		for _, class := range classes {
			adj := m.alphaAdjacency(class, class)
			comps := components(adj, class)
			if len(comps) > 1 {
				changed = true
			}
			next = append(next, comps...)
		}
		classes = next
		if !changed {
			sortClasses(classes)
			return classes
		}
	}
}

// SourceIncompatible reports whether the sub-model given by the indices is
// source-incompatible (Definition 18): the intersection of the root sets
// of its graphs is empty. An empty index set is vacuously compatible.
func (m *Model) SourceIncompatible(indices []int) bool {
	if len(indices) == 0 {
		return false
	}
	inter := append([]uint64(nil), m.graphs[indices[0]].RootsSet()...)
	for _, i := range indices[1:] {
		r := m.graphs[i].RootsSet()
		for w := range inter {
			inter[w] &= r[w]
		}
	}
	return graph.SetCount(inter) == 0
}

// CommonRoots returns the bitmask of agents that are roots of every graph
// in the index set. Like every single-word mask API it is valid for
// n <= 64 models; wider models use CommonRootsSet.
func (m *Model) CommonRoots(indices []int) uint64 {
	inter := ^uint64(0)
	for _, i := range indices {
		inter &= m.graphs[i].Roots()
	}
	if len(indices) == 0 {
		return 0
	}
	return inter & rootUniverse(m.n)
}

// CommonRootsSet returns the word-sliced node set of agents that are
// roots of every graph in the index set — CommonRoots at any width. An
// empty index set yields the empty set.
func (m *Model) CommonRootsSet(indices []int) []uint64 {
	inter := make([]uint64, graph.WordsFor(m.n))
	if len(indices) == 0 {
		return inter
	}
	copy(inter, m.graphs[indices[0]].RootsSet())
	for _, i := range indices[1:] {
		r := m.graphs[i].RootsSet()
		for w := range inter {
			inter[w] &= r[w]
		}
	}
	return inter
}

// ExactConsensusSolvable decides exact consensus solvability in the model
// via Theorem 19 (the generalization of Coulouma et al., Theorem 4.10):
// exact consensus is solvable iff no beta-class is source-incompatible.
func (m *Model) ExactConsensusSolvable() bool {
	for _, class := range m.BetaClasses() {
		if m.SourceIncompatible(class) {
			return false
		}
	}
	return true
}

func (m *Model) allIndices() []int {
	all := make([]int, len(m.graphs))
	for i := range all {
		all[i] = i
	}
	return all
}

func rootUniverse(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// components returns the connected components of an undirected adjacency
// bit matrix, translated back to the original index labels. The closure of
// each component is computed word-parallel: the frontier is a bitmask and
// each expansion ORs whole adjacency rows.
//
// labels must be in ascending order: extracting members in bit order then
// yields each component already sorted, which sortClasses relies on
// (classes are ordered by their first = smallest member). Every caller
// passes ascending labels (allIndices, or a component of a previous
// components call).
func components(adj bitMatrix, labels []int) [][]int {
	n := len(labels)
	stride := adj.stride
	seen := make([]uint64, stride)
	comp := make([]uint64, stride)
	frontier := make([]uint64, stride)
	next := make([]uint64, stride)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s>>6]&(1<<uint(s&63)) != 0 {
			continue
		}
		for w := range comp {
			comp[w] = 0
			frontier[w] = 0
		}
		comp[s>>6] = 1 << uint(s&63)
		frontier[s>>6] = comp[s>>6]
		for {
			for w := range next {
				next[w] = 0
			}
			adj.orRowsOf(next, frontier)
			grew := false
			for w := range next {
				next[w] &^= comp[w]
				if next[w] != 0 {
					grew = true
				}
				comp[w] |= next[w]
			}
			if !grew {
				break
			}
			copy(frontier, next)
		}
		members := make([]int, 0, 8)
		for w, word := range comp {
			seen[w] |= word
			base := w << 6
			for word != 0 {
				members = append(members, labels[base+trailingZeros(word)])
				word &= word - 1
			}
		}
		comps = append(comps, members)
	}
	sortClasses(comps)
	return comps
}

func sortClasses(classes [][]int) {
	sort.Slice(classes, func(a, b int) bool { return classes[a][0] < classes[b][0] })
}
