package model

import (
	"math"
	"strconv"

	"repro/internal/graph"
)

// Bound is a contraction-rate lower bound derived for a model, together
// with the theorem that justifies it.
type Bound struct {
	// Rate is the proven lower bound on the contraction rate of every
	// asymptotic consensus algorithm in the model (0 means no nontrivial
	// bound, which by the paper happens exactly when exact consensus is
	// solvable).
	Rate float64
	// Theorem names the paper result the bound comes from.
	Theorem string
	// Detail is a human-readable justification (e.g. the alpha-diameter).
	Detail string
}

// ContainsHFamily reports whether the two-agent model contains all three
// rooted graphs H0, H1, H2 of Figure 1.
func (m *Model) ContainsHFamily() bool {
	if m.n != 2 {
		return false
	}
	for _, h := range graph.HFamily() {
		if !m.Contains(h) {
			return false
		}
	}
	return true
}

// ContainsPsiFamily reports whether the model contains the three Psi
// graphs of Figure 2.
func (m *Model) ContainsPsiFamily() bool {
	if m.n < 4 {
		return false
	}
	for _, psi := range graph.PsiFamily(m.n) {
		if !m.Contains(psi) {
			return false
		}
	}
	return true
}

// DeafTriple is a witness for the Theorem 2 hypothesis: three model graphs
// F_a, F_b, F_c that are the deaf-at-a, deaf-at-b, deaf-at-c members of
// deaf(G) for a single (possibly non-member) base graph G.
type DeafTriple struct {
	Agents [3]int
	Graphs [3]graph.Graph
}

// FindDeafTriple searches the model for a deaf triple. The paper notes
// (end of Section 5) that the 1/2 bound already follows from three
// members F_i, F_j, F_l of some deaf(G); consistency with a common base G
// means: F_x is deaf at x, the graphs agree on every row outside
// {a, b, c}, and each row x in {a, b, c} agrees between the two graphs
// that are not deaf at x.
func (m *Model) FindDeafTriple() (DeafTriple, bool) {
	if m.n < 3 {
		return DeafTriple{}, false
	}
	type deafGraph struct {
		agent int
		g     graph.Graph
	}
	var deaf []deafGraph
	for _, g := range m.graphs {
		for i := 0; i < m.n; i++ {
			if g.IsDeaf(i) {
				deaf = append(deaf, deafGraph{agent: i, g: g})
			}
		}
	}
	consistentPair := func(x, y deafGraph) bool {
		if x.agent == y.agent {
			return false
		}
		for row := 0; row < m.n; row++ {
			if row == x.agent || row == y.agent {
				continue
			}
			if !graph.RowsEqual(x.g, y.g, row) {
				return false
			}
		}
		return true
	}
	for a := 0; a < len(deaf); a++ {
		for b := a + 1; b < len(deaf); b++ {
			if !consistentPair(deaf[a], deaf[b]) {
				continue
			}
			for c := b + 1; c < len(deaf); c++ {
				if deaf[c].agent == deaf[a].agent || deaf[c].agent == deaf[b].agent {
					continue
				}
				if consistentPair(deaf[a], deaf[c]) && consistentPair(deaf[b], deaf[c]) {
					return DeafTriple{
						Agents: [3]int{deaf[a].agent, deaf[b].agent, deaf[c].agent},
						Graphs: [3]graph.Graph{deaf[a].g, deaf[b].g, deaf[c].g},
					}, true
				}
			}
		}
	}
	return DeafTriple{}, false
}

// ContractionLowerBound derives the strongest contraction-rate lower bound
// the paper proves for this model:
//
//   - rate 0 if exact consensus is solvable (reduction noted before
//     Definition 22);
//   - 1/3 for two-agent models containing {H0, H1, H2} (Theorem 1);
//   - 1/2 for models of n >= 3 agents containing a deaf triple
//     (Theorem 2);
//   - (1/2)^(1/(n-2)) for models of n >= 4 agents containing the Psi
//     graphs (Theorem 3);
//   - otherwise 1/(D+1) where D is the smallest alpha-diameter over the
//     full model and every source-incompatible beta-class, per Theorem 5
//     and Corollary 23. (Corollary 23 quantifies over all unsolvable
//     sub-models; source-incompatible beta-classes are the canonical
//     witnesses — each is unsolvable by Lemma 17 + Theorem 19 — so this
//     is a sound, if not always optimal, instantiation.)
//
// For models that are not rooted, asymptotic consensus is unsolvable
// (Section 2.2, Theorem 1), so there is no algorithm to bound: the rate 1
// is returned with the "vacuous" marker — every statement about all
// algorithms holds vacuously.
//
// The returned rate is always a valid lower bound; when several cases
// apply, the largest rate is reported.
func (m *Model) ContractionLowerBound() Bound {
	if !m.IsRooted() {
		return Bound{Rate: 1, Theorem: "vacuous",
			Detail: "model not rooted: asymptotic consensus unsolvable, no algorithm to bound"}
	}
	if m.ExactConsensusSolvable() {
		return Bound{Rate: 0, Theorem: "Theorem 19 (Coulouma et al.)",
			Detail: "exact consensus solvable: contraction rate 0 by reduction"}
	}
	best := Bound{Rate: 0, Theorem: "none", Detail: "no applicable bound"}
	consider := func(b Bound) {
		if b.Rate > best.Rate {
			best = b
		}
	}
	if m.ContainsHFamily() {
		consider(Bound{Rate: 1.0 / 3.0, Theorem: "Theorem 1",
			Detail: "n = 2 and model contains {H0, H1, H2}"})
	}
	if m.n >= 3 {
		if triple, ok := m.FindDeafTriple(); ok {
			consider(Bound{Rate: 0.5, Theorem: "Theorem 2",
				Detail: formatDeafDetail(triple)})
		}
	}
	if m.ContainsPsiFamily() {
		consider(Bound{Rate: math.Pow(0.5, 1/float64(m.n-2)), Theorem: "Theorem 3",
			Detail: "model contains the Psi graphs of Figure 2"})
	}
	if d, finite := m.AlphaDiameter(); finite {
		consider(Bound{Rate: 1 / float64(d+1), Theorem: "Theorem 5",
			Detail: formatAlphaDetail(d, "full model")})
	}
	for _, class := range m.BetaClasses() {
		if !m.SourceIncompatible(class) {
			continue
		}
		if d, finite := m.alphaDiameterWithin(class, class); finite {
			consider(Bound{Rate: 1 / float64(d+1), Theorem: "Corollary 23",
				Detail: formatAlphaDetail(d, "source-incompatible beta-class")})
		}
	}
	return best
}

func formatDeafDetail(t DeafTriple) string {
	return "model contains a deaf triple at agents " +
		strconv.Itoa(t.Agents[0]) + ", " + strconv.Itoa(t.Agents[1]) + ", " + strconv.Itoa(t.Agents[2])
}

func formatAlphaDetail(d int, scope string) string {
	return "alpha-diameter D = " + strconv.Itoa(d) + " of " + scope + ": bound 1/(D+1)"
}
