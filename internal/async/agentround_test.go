package async_test

import (
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/async"
	"repro/internal/core"
)

func newAgentSystem(t *testing.T, alg core.Algorithm, n, f int, inputs []float64, maxRound int) []async.Process {
	t.Helper()
	procs := make([]async.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = async.NewAgentRoundBased(alg.NewAgent(i, n, inputs[i]), i, n, f, maxRound)
	}
	return procs
}

// The agent bridge running an UpdateFn-equivalent algorithm must agree
// with the original RoundBased process on every delivery schedule: both
// compute the midpoint of the same n-f-message quorums.
func TestAgentRoundBasedMatchesRoundBasedMidpoint(t *testing.T) {
	const n, f, rounds = 5, 2, 12
	inputs := []float64{0, 1, 0.25, 0.75, 0.5}

	viaUpdate := make([]async.Process, n)
	for i := 0; i < n; i++ {
		viaUpdate[i] = async.NewRoundBased(i, n, f, inputs[i], async.MidpointUpdate, rounds)
	}
	viaAgent := newAgentSystem(t, algorithms.Midpoint{}, n, f, inputs, rounds)

	for _, seed := range []int64{1, 2, 7} {
		crashes := []async.Crash{{Agent: 1, AfterBroadcasts: 1, Recipients: 1 << 2}}
		s1, err := async.NewSimulator(viaUpdate, async.UniformDelays(seed, 0.1), crashes)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := async.NewSimulator(viaAgent, async.UniformDelays(seed, 0.1), crashes)
		if err != nil {
			t.Fatal(err)
		}
		s1.RunUntil(float64(rounds + 2))
		s2.RunUntil(float64(rounds + 2))
		got, want := s2.CorrectOutputs(), s1.CorrectOutputs()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: agent bridge output %v, RoundBased output %v", seed, got, want)
			}
		}
		// Fresh processes for the next seed (state was consumed).
		for i := 0; i < n; i++ {
			viaUpdate[i] = async.NewRoundBased(i, n, f, inputs[i], async.MidpointUpdate, rounds)
		}
		viaAgent = newAgentSystem(t, algorithms.Midpoint{}, n, f, inputs, rounds)
	}
}

// Quantized midpoint through the bridge: all outputs must stay on the
// grid and converge to a single grid point.
func TestAgentRoundBasedQuantized(t *testing.T) {
	const n, f, rounds, q = 6, 2, 20, 0.125
	inputs := []float64{0, 1, 0.5, 0.25, 0.875, 0.625}
	procs := newAgentSystem(t, algorithms.QuantizedMidpoint{Q: q}, n, f, inputs, rounds)
	sim, err := async.NewSimulator(procs, async.UniformDelays(3, 0.05), nil)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(float64(rounds + 2))
	outs := sim.CorrectOutputs()
	for i, y := range outs {
		if r := math.Mod(y/q, 1); r != 0 {
			t.Errorf("agent %d output %v off the %v grid", i, y, q)
		}
	}
	if d := sim.CorrectDiameter(); d != 0 {
		t.Errorf("quantized midpoint did not reach exact agreement: diameter %v, outputs %v", d, outs)
	}
}

// Flood-root through the bridge: its Aux payload (informed flag + root
// value) must survive asynchronous transport, so every agent that keeps
// making quorums ends at the root's initial value.
func TestAgentRoundBasedFloodRootAux(t *testing.T) {
	const n, f, rounds = 5, 1, 10
	inputs := []float64{42, 1, 2, 3, 4}
	procs := newAgentSystem(t, algorithms.FloodRoot{Root: 0}, n, f, inputs, rounds)
	sim, err := async.NewSimulator(procs, async.UniformDelays(9, 0.2), nil)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(float64(rounds + 2))
	for i, y := range sim.CorrectOutputs() {
		if y != 42 {
			t.Errorf("agent %d output %v, want the root value 42 (outputs %v)",
				i, y, sim.CorrectOutputs())
		}
	}
}

// The amortized midpoint broadcasts an Aux interval that aliases agent
// state in the synchronous model; the bridge must deep-copy it so that
// in-flight messages are not corrupted by the sender's later rounds.
// With crash-free uniform delays the async run still converges.
func TestAgentRoundBasedAmortizedConverges(t *testing.T) {
	const n, f, rounds = 6, 2, 30
	inputs := []float64{0, 1, 0.2, 0.9, 0.4, 0.7}
	procs := newAgentSystem(t, algorithms.AmortizedMidpoint{}, n, f, inputs, rounds)
	sim, err := async.NewSimulator(procs, async.UniformDelays(11, 0.05), nil)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(float64(rounds + 2))
	if d := sim.CorrectDiameter(); d > 1e-3 {
		t.Errorf("amortized midpoint diameter %v after %d rounds, want near 0", d, rounds)
	}
	for _, y := range sim.CorrectOutputs() {
		if y < 0 || y > 1 {
			t.Errorf("validity violated: output %v outside [0,1]", y)
		}
	}
}

func TestAgentRoundBasedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("f = n accepted")
		}
	}()
	async.NewAgentRoundBased(algorithms.Midpoint{}.NewAgent(0, 3, 0), 0, 3, 3, 0)
}
