package async

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// AgentRoundBased embeds an arbitrary synchronous core.Agent into the
// round-based asynchronous framework of Section 8: the process waits for
// n-f messages of its current round (its own included), delivers them to
// the wrapped agent as one synchronous round — senders in ascending index
// order, exactly the order Config.Step builds an inbox — and broadcasts
// the agent's next-round message.
//
// This generalizes RoundBased from value-only UpdateFn rules to any
// algorithm of the synchronous model, including those with auxiliary
// message payloads (amortized midpoint, flood-root) or stateful updates
// (quantized midpoint's grid snapping happens in NewAgent). The effective
// communication graph of each asynchronous round has minimum in-degree
// >= n-f, so the reduction behind Theorem 6 (Section 8.1) applies
// unchanged.
type AgentRoundBased struct {
	id, n, f int
	agent    core.Agent
	maxRound int

	round int
	inbox map[int]map[int]Message // round -> sender -> message

	// deliverScratch is reused across rounds for the synchronous inbox.
	deliverScratch []core.Message
}

// NewAgentRoundBased wraps agent (agent id's state machine of some
// core.Algorithm on n agents) as a round-based asynchronous process
// tolerating f crashes. maxRound caps the executed rounds; 0 means no cap.
func NewAgentRoundBased(agent core.Agent, id, n, f, maxRound int) *AgentRoundBased {
	if f < 0 || f >= n {
		panic(fmt.Sprintf("async: AgentRoundBased requires 0 <= f < n, got f=%d n=%d", f, n))
	}
	return &AgentRoundBased{
		id: id, n: n, f: f,
		agent:    agent,
		maxRound: maxRound,
		round:    1,
		inbox:    make(map[int]map[int]Message),
	}
}

// ID implements Process.
func (p *AgentRoundBased) ID() int { return p.id }

// Round returns the process's current round number.
func (p *AgentRoundBased) Round() int { return p.round }

// Output implements Process.
func (p *AgentRoundBased) Output() float64 { return p.agent.Output() }

// Agent exposes the wrapped agent for inspection; callers must not mutate
// it.
func (p *AgentRoundBased) Agent() core.Agent { return p.agent }

// outgoing builds the broadcast of the given round. The agent's Aux
// payload is deep-copied: unlike the synchronous lockstep model, async
// messages stay in flight while the sender keeps advancing rounds, so an
// Aux slice aliasing sender state would be corrupted before delivery.
func (p *AgentRoundBased) outgoing(round int) Message {
	m := p.agent.Broadcast(round)
	var aux []float64
	if len(m.Aux) > 0 {
		aux = append(aux, m.Aux...)
	}
	return Message{Round: round, Value: m.Value, Aux: aux}
}

// Init implements Process: broadcast the round-1 message.
func (p *AgentRoundBased) Init() []Message {
	return []Message{p.outgoing(1)}
}

// Receive implements Process.
func (p *AgentRoundBased) Receive(m Message) []Message {
	if m.Round < p.round {
		return nil // stale round, communication closed
	}
	buf := p.inbox[m.Round]
	if buf == nil {
		buf = make(map[int]Message, p.n)
		p.inbox[m.Round] = buf
	}
	if _, dup := buf[m.From]; dup {
		return nil
	}
	buf[m.From] = m

	var out []Message
	for {
		cur := p.inbox[p.round]
		if len(cur) < p.n-p.f {
			break
		}
		// Deliver the round as a synchronous inbox: senders in ascending
		// index order, matching Config.Step's self-loop-included inbox.
		senders := make([]int, 0, len(cur))
		for from := range cur {
			senders = append(senders, from)
		}
		sort.Ints(senders)
		msgs := p.deliverScratch[:0]
		for _, from := range senders {
			am := cur[from]
			msgs = append(msgs, core.Message{From: from, Value: am.Value, Aux: am.Aux})
		}
		p.deliverScratch = msgs[:0]
		p.agent.Deliver(p.round, msgs)
		delete(p.inbox, p.round)
		p.round++
		if p.maxRound > 0 && p.round > p.maxRound {
			return out
		}
		out = append(out, p.outgoing(p.round))
	}
	return out
}
