package async

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// UpdateFn computes a round-based agent's next value from the multiset of
// values received in the round (at least n-f of them, own value included).
// The slice may be reordered in place.
type UpdateFn func(received []float64) float64

// MidpointUpdate is the midpoint rule (min+max)/2 — Algorithm 2 of the
// paper applied round-by-round. Because every round's effective
// communication graph in a system with f < n/2 crashes is non-split, it
// contracts the range by 1/2 per asynchronous round.
func MidpointUpdate(received []float64) float64 {
	if len(received) == 0 {
		panic("async: update on empty receive set")
	}
	lo, hi := received[0], received[0]
	for _, v := range received[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return (lo + hi) / 2
}

// MeanUpdate averages all received values.
func MeanUpdate(received []float64) float64 {
	if len(received) == 0 {
		panic("async: update on empty receive set")
	}
	sum := 0.0
	for _, v := range received {
		sum += v
	}
	return sum / float64(len(received))
}

// SelectedMeanUpdate returns the Fekete-style update for up to f crashes:
// sort the received values and average every f-th one (ranks 0, f, 2f,
// ...). Any two agents' rank-kf values are within f global ranks of each
// other, so the averages of the >= ⌈n/f⌉-1 selected values differ by at
// most range/(⌈n/f⌉-1): the 1/(⌈n/f⌉-1) round contraction the paper's
// Table 1 lists as the round-based upper bound (Fekete 1994).
func SelectedMeanUpdate(f int) UpdateFn {
	if f < 1 {
		panic(fmt.Sprintf("async: SelectedMeanUpdate requires f >= 1, got %d", f))
	}
	return func(received []float64) float64 {
		if len(received) == 0 {
			panic("async: update on empty receive set")
		}
		sort.Float64s(received)
		sum, count := 0.0, 0
		for k := 0; k < len(received); k += f {
			sum += received[k]
			count++
		}
		return sum / float64(count)
	}
}

// RoundBased is the classical round-based asynchronous agent: it waits for
// n-f messages of its current round (its own included), applies the
// update, and broadcasts the next round's message. Messages of past
// rounds are discarded; messages of future rounds are buffered.
type RoundBased struct {
	id, n, f int
	update   UpdateFn
	maxRound int

	round int
	y     float64
	inbox map[int]map[int]float64 // round -> sender -> value
}

// NewRoundBased constructs a round-based agent. maxRound caps how many
// rounds the agent executes (keeping simulations finite); 0 means no cap.
func NewRoundBased(id, n, f int, initial float64, update UpdateFn, maxRound int) *RoundBased {
	if f < 0 || f >= n {
		panic(fmt.Sprintf("async: RoundBased requires 0 <= f < n, got f=%d n=%d", f, n))
	}
	return &RoundBased{
		id: id, n: n, f: f,
		update:   update,
		maxRound: maxRound,
		round:    1,
		y:        initial,
		inbox:    make(map[int]map[int]float64),
	}
}

// ID implements Process.
func (p *RoundBased) ID() int { return p.id }

// Round returns the agent's current round number.
func (p *RoundBased) Round() int { return p.round }

// Output implements Process.
func (p *RoundBased) Output() float64 { return p.y }

// Init implements Process: broadcast the round-1 value.
func (p *RoundBased) Init() []Message {
	return []Message{{Round: 1, Value: p.y}}
}

// Receive implements Process.
func (p *RoundBased) Receive(m Message) []Message {
	if m.Round < p.round {
		return nil // stale round, communication closed
	}
	buf := p.inbox[m.Round]
	if buf == nil {
		buf = make(map[int]float64, p.n)
		p.inbox[m.Round] = buf
	}
	if _, dup := buf[m.From]; dup {
		return nil
	}
	buf[m.From] = m.Value

	var out []Message
	for {
		cur := p.inbox[p.round]
		if len(cur) < p.n-p.f {
			break
		}
		values := make([]float64, 0, len(cur))
		for _, v := range cur {
			values = append(values, v)
		}
		// Maps iterate in random order; sort for determinism before the
		// update sees the slice.
		sort.Float64s(values)
		p.y = p.update(values)
		delete(p.inbox, p.round)
		p.round++
		if p.maxRound > 0 && p.round > p.maxRound {
			return out
		}
		out = append(out, Message{Round: p.round, Value: p.y})
	}
	return out
}

// MinRelay is the non-round-based algorithm of Theorem 7: each agent
// maintains the set S_i of values it knows, initially its own input.
// Whenever the set grows, the agent sets y_i = min(S_i) and broadcasts the
// set. By the causal-chain argument of Theorem 7, all correct agents hold
// identical sets — and hence identical outputs — by time f+1, giving
// contraction rate 0.
type MinRelay struct {
	id  int
	set []float64 // sorted ascending, deduplicated
	y   float64
}

// NewMinRelay constructs a MinRelay agent with its initial value.
func NewMinRelay(id int, initial float64) *MinRelay {
	return &MinRelay{id: id, set: []float64{initial}, y: initial}
}

// ID implements Process.
func (p *MinRelay) ID() int { return p.id }

// Output implements Process.
func (p *MinRelay) Output() float64 { return p.y }

// Set returns a copy of the agent's current value set.
func (p *MinRelay) Set() []float64 {
	out := make([]float64, len(p.set))
	copy(out, p.set)
	return out
}

// Init implements Process.
func (p *MinRelay) Init() []Message {
	return []Message{{Set: p.Set()}}
}

// Receive implements Process.
func (p *MinRelay) Receive(m Message) []Message {
	if m.Set == nil {
		return nil
	}
	grew := false
	for _, v := range m.Set {
		if !containsSorted(p.set, v) {
			p.set = insertSorted(p.set, v)
			grew = true
		}
	}
	if !grew {
		return nil
	}
	p.y = p.set[0]
	return []Message{{Set: p.Set()}}
}

func containsSorted(s []float64, v float64) bool {
	i := sort.SearchFloat64s(s, v)
	return i < len(s) && s[i] == v
}

func insertSorted(s []float64, v float64) []float64 {
	i := sort.SearchFloat64s(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// roundUpdateAlgorithm adapts an UpdateFn to a synchronous core.Algorithm,
// embedding round-based asynchronous algorithms into the Heard-Of model:
// a synchronous round under a communication graph with minimum in-degree
// >= n-f is exactly an asynchronous round in which each agent's first
// n-f (or more) arrivals are its in-neighbors' messages. This is the
// reduction behind Theorem 6 (Section 8.1).
type roundUpdateAlgorithm struct {
	name   string
	update UpdateFn
}

// AsCoreAlgorithm wraps a round-based update rule as a core.Algorithm for
// use with network models such as N_A(n, f). The update must be a convex
// combination rule (all of MidpointUpdate, MeanUpdate, SelectedMeanUpdate
// are).
func AsCoreAlgorithm(name string, update UpdateFn) core.Algorithm {
	return roundUpdateAlgorithm{name: name, update: update}
}

// Name implements core.Algorithm.
func (a roundUpdateAlgorithm) Name() string { return a.name }

// Convex implements core.Algorithm.
func (a roundUpdateAlgorithm) Convex() bool { return true }

// NewAgent implements core.Algorithm.
func (a roundUpdateAlgorithm) NewAgent(id, n int, initial float64) core.Agent {
	return &roundUpdateAgent{update: a.update, y: initial}
}

type roundUpdateAgent struct {
	update UpdateFn
	y      float64
}

func (p *roundUpdateAgent) Broadcast(int) core.Message { return core.Message{Value: p.y} }

func (p *roundUpdateAgent) Deliver(_ int, msgs []core.Message) {
	values := make([]float64, len(msgs))
	for i, m := range msgs {
		values[i] = m.Value
	}
	p.y = p.update(values)
}

func (p *roundUpdateAgent) Output() float64 { return p.y }
func (p *roundUpdateAgent) Clone() core.Agent {
	cp := *p
	return &cp
}
