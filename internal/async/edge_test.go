package async_test

import (
	"math"
	"testing"

	"repro/internal/async"
)

// chainDelay builds a deterministic delay function from a table keyed by
// (from, to); unknown pairs get the default.
func chainDelay(table map[[2]int]float64, def float64) async.DelayFn {
	return func(from, to int, _ float64) float64 {
		if d, ok := table[[2]int{from, to}]; ok {
			return d
		}
		return def
	}
}

func TestRoundBasedZeroFaultIsSynchronous(t *testing.T) {
	// With f = 0 every agent waits for all n messages: the system behaves
	// like a synchronous complete-graph execution regardless of delays.
	n := 4
	inputs := []float64{0, 1, 0.25, 0.75}
	procs := make([]async.Process, n)
	for i := range procs {
		procs[i] = async.NewRoundBased(i, n, 0, inputs[i], async.MidpointUpdate, 3)
	}
	sim, err := async.NewSimulator(procs, async.UniformDelays(3, 0.2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.RunToQuiescence(100000) {
		t.Fatal("no quiescence")
	}
	// One complete round of midpoint equalizes everyone at 0.5.
	for i := 0; i < n; i++ {
		if got := procs[i].Output(); got != 0.5 {
			t.Errorf("agent %d = %v, want 0.5 after complete-graph midpoint", i, got)
		}
	}
}

func TestRoundBasedBuffersFutureRounds(t *testing.T) {
	// Agent 2 is slow toward agent 0 only; fast agents 1..3 race ahead and
	// their round-2 messages reach agent 0 before some round-1 messages.
	// Round-2 messages must be buffered, not dropped, and agent 0 must
	// still complete its rounds.
	n, f := 4, 1
	inputs := []float64{0, 1, 1, 1}
	procs := make([]async.Process, n)
	for i := range procs {
		procs[i] = async.NewRoundBased(i, n, f, inputs[i], async.MidpointUpdate, 4)
	}
	table := map[[2]int]float64{}
	for _, to := range []int{0} {
		table[[2]int{2, to}] = 1.0 // slow link 2 -> 0
	}
	sim, err := async.NewSimulator(procs, chainDelay(table, 0.1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.RunToQuiescence(100000) {
		t.Fatal("no quiescence")
	}
	for i := 0; i < n; i++ {
		rb := procs[i].(*async.RoundBased)
		if rb.Round() != 5 {
			t.Errorf("agent %d finished at round %d, want 5 (4 rounds + 1)", i, rb.Round())
		}
	}
	if d := sim.CorrectDiameter(); d > 0.25+1e-12 {
		t.Errorf("diameter %v after 4 rounds of midpoint with f=1", d)
	}
}

func TestCrashBeforeAnyBroadcastSilencesAgent(t *testing.T) {
	// AfterBroadcasts = 0 kills the very first broadcast; with empty
	// recipients the agent is completely silent.
	procs := []async.Process{
		async.NewMinRelay(0, 5),
		async.NewMinRelay(1, 1),
		async.NewMinRelay(2, 9),
	}
	crashes := []async.Crash{{Agent: 1, AfterBroadcasts: 0, Recipients: 0}}
	sim, err := async.NewSimulator(procs, async.ConstantDelay(1), crashes)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(10)
	if !sim.Crashed(1) {
		t.Error("agent 1 should have crashed")
	}
	// The minimum 1 is lost with the silent crash: survivors agree on 5.
	outs := sim.CorrectOutputs()
	if len(outs) != 2 {
		t.Fatalf("want 2 correct agents, got %d", len(outs))
	}
	for _, v := range outs {
		if v != 5 {
			t.Errorf("survivor output %v, want 5 (crashed minimum must not leak)", v)
		}
	}
}

func TestCrashScheduleNeverReached(t *testing.T) {
	// A crash after more broadcasts than the protocol performs never
	// fires: the agent stays correct.
	n := 3
	procs := make([]async.Process, n)
	for i := range procs {
		procs[i] = async.NewRoundBased(i, n, 1, float64(i), async.MidpointUpdate, 2)
	}
	crashes := []async.Crash{{Agent: 0, AfterBroadcasts: 99, Recipients: 0}}
	sim, err := async.NewSimulator(procs, async.ConstantDelay(0.5), crashes)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence(100000)
	if sim.Crashed(0) {
		t.Error("agent 0 crashed although its schedule was never reached")
	}
	if len(sim.CorrectOutputs()) != n {
		t.Error("some agent wrongly marked crashed")
	}
}

func TestMinRelayIgnoresNonSetMessages(t *testing.T) {
	p := async.NewMinRelay(0, 3)
	if out := p.Receive(async.Message{From: 1, Round: 1, Value: 7}); out != nil {
		t.Error("MinRelay reacted to a round-based message")
	}
	if p.Output() != 3 {
		t.Error("MinRelay state changed on foreign message")
	}
}

func TestMinRelayDedupAndBroadcastDiscipline(t *testing.T) {
	p := async.NewMinRelay(0, 3)
	out := p.Receive(async.Message{From: 1, Set: []float64{1, 5}})
	if len(out) != 1 {
		t.Fatalf("growth should trigger exactly one broadcast, got %d", len(out))
	}
	if got := p.Set(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("merged set = %v", got)
	}
	if p.Output() != 1 {
		t.Errorf("output %v, want min 1", p.Output())
	}
	// Re-delivering the same set must not re-broadcast (termination).
	if out := p.Receive(async.Message{From: 2, Set: []float64{1, 5}}); out != nil {
		t.Error("duplicate set triggered a broadcast")
	}
	// A strict subset must not re-broadcast either.
	if out := p.Receive(async.Message{From: 2, Set: []float64{5}}); out != nil {
		t.Error("subset set triggered a broadcast")
	}
}

func TestSimulatorClockAndDeliveredMonotone(t *testing.T) {
	n := 4
	procs := make([]async.Process, n)
	for i := range procs {
		procs[i] = async.NewMinRelay(i, float64(i))
	}
	sim, err := async.NewSimulator(procs, async.UniformDelays(9, 0.3), nil)
	if err != nil {
		t.Fatal(err)
	}
	prevNow, prevDel := 0.0, 0
	for _, horizon := range []float64{0.25, 0.5, 1, 2, 4} {
		sim.RunUntil(horizon)
		if sim.Now() < prevNow {
			t.Error("clock went backwards")
		}
		if sim.Now() < horizon {
			t.Errorf("clock %v below horizon %v", sim.Now(), horizon)
		}
		if sim.Delivered() < prevDel {
			t.Error("delivery count decreased")
		}
		prevNow, prevDel = sim.Now(), sim.Delivered()
	}
	if math.IsNaN(sim.CorrectDiameter()) {
		t.Error("diameter NaN")
	}
}

func TestRoundBasedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("f >= n accepted")
		}
	}()
	async.NewRoundBased(0, 3, 3, 0, async.MidpointUpdate, 5)
}
