// Package async implements the classical asynchronous message-passing
// system with crashes of Section 8 of Függer, Nowak, Schwarz (PODC 2018):
// an event-driven simulator with per-message delays normalized to at most
// 1 (the paper's standard convention of measuring asynchronous time),
// unclean crashes whose final broadcast reaches an adversarially chosen
// subset of agents, the round-based algorithm framework (wait for n-f
// messages of the current round), the Fekete-style selected-mean update
// matching the 1/(⌈n/f⌉-1) upper bound, and the MinRelay algorithm of
// Theorem 7 that equalizes all correct agents by time f+1.
package async

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Message is what an asynchronous process broadcasts.
type Message struct {
	From int
	// Round tags messages of round-based algorithms; 0 for untagged.
	Round int
	// Value carries the consensus variable.
	Value float64
	// Aux carries extra algorithm state for round-based agents whose
	// synchronous counterparts broadcast auxiliary payloads (e.g. the
	// amortized midpoint's interval or flood-root's informed flag); nil
	// otherwise. Receivers must not mutate it.
	Aux []float64
	// Set carries the MinRelay value set (sorted ascending); nil
	// otherwise. Receivers must not mutate it.
	Set []float64
}

// Process is a deterministic asynchronous agent: it emits broadcasts at
// start-up and in reaction to deliveries.
type Process interface {
	// ID returns the agent identity.
	ID() int
	// Init returns the broadcasts issued at time 0.
	Init() []Message
	// Receive handles one delivered message and returns the broadcasts it
	// triggers (usually none or one).
	Receive(m Message) []Message
	// Output returns the agent's current consensus value.
	Output() float64
}

// DelayFn assigns each transmission a delay. Returned delays must lie in
// (0, 1]; the simulator enforces this, matching the normalization that
// the longest end-to-end delay is one time unit.
type DelayFn func(from, to int, sendTime float64) float64

// UniformDelays returns a DelayFn drawing i.i.d. delays from
// [lo, 1], using the given seed.
func UniformDelays(seed int64, lo float64) DelayFn {
	if lo <= 0 || lo > 1 {
		panic(fmt.Sprintf("async: delay floor %v outside (0,1]", lo))
	}
	rng := rand.New(rand.NewSource(seed))
	return func(int, int, float64) float64 {
		return lo + (1-lo)*rng.Float64()
	}
}

// ConstantDelay returns a DelayFn with a fixed delay d in (0, 1].
func ConstantDelay(d float64) DelayFn {
	if d <= 0 || d > 1 {
		panic(fmt.Sprintf("async: constant delay %v outside (0,1]", d))
	}
	return func(int, int, float64) float64 { return d }
}

// Crash describes an unclean crash: the agent completes AfterBroadcasts
// broadcasts normally, then crashes during its next broadcast, which is
// delivered only to the agents in Recipients (a bitmask; the crashing
// agent itself never counts). The agent takes no further steps.
type Crash struct {
	Agent           int
	AfterBroadcasts int
	Recipients      uint64
}

// event is a message delivery.
type event struct {
	time float64
	seq  int
	to   int
	msg  Message
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// Simulator drives a set of processes through an asynchronous execution.
type Simulator struct {
	n          int
	procs      []Process
	delay      DelayFn
	crashes    map[int]Crash
	crashed    []bool
	broadcasts []int
	queue      eventHeap
	now        float64
	seq        int
	delivered  int
}

// NewSimulator wires processes, a delay function, and a crash schedule
// together and enqueues the initial broadcasts. Process IDs must be
// 0..n-1 in order.
func NewSimulator(procs []Process, delay DelayFn, crashes []Crash) (*Simulator, error) {
	n := len(procs)
	if n == 0 {
		return nil, fmt.Errorf("async: no processes")
	}
	for i, p := range procs {
		if p.ID() != i {
			return nil, fmt.Errorf("async: process %d reports ID %d", i, p.ID())
		}
	}
	s := &Simulator{
		n:          n,
		procs:      procs,
		delay:      delay,
		crashes:    make(map[int]Crash, len(crashes)),
		crashed:    make([]bool, n),
		broadcasts: make([]int, n),
	}
	for _, c := range crashes {
		if c.Agent < 0 || c.Agent >= n {
			return nil, fmt.Errorf("async: crash of unknown agent %d", c.Agent)
		}
		if _, dup := s.crashes[c.Agent]; dup {
			return nil, fmt.Errorf("async: duplicate crash for agent %d", c.Agent)
		}
		s.crashes[c.Agent] = c
	}
	heap.Init(&s.queue)
	for i, p := range procs {
		for _, m := range p.Init() {
			s.broadcast(i, m)
		}
	}
	return s, nil
}

// broadcast fans m out from agent i at the current time, honoring the
// crash schedule.
func (s *Simulator) broadcast(i int, m Message) {
	if s.crashed[i] {
		return
	}
	m.From = i
	recipients := ^uint64(0)
	if c, ok := s.crashes[i]; ok && s.broadcasts[i] == c.AfterBroadcasts {
		recipients = c.Recipients
		s.crashed[i] = true
	}
	s.broadcasts[i]++
	for j := 0; j < s.n; j++ {
		var delay float64
		if j == i {
			// Self-communication is instantaneous (paper, Section 2); the
			// crashing agent still "hears itself" but is already stopped,
			// so skip it.
			if s.crashed[i] {
				continue
			}
			delay = 0
		} else {
			if recipients&(1<<uint(j)) == 0 {
				continue
			}
			delay = s.delay(i, j, s.now)
			if delay <= 0 || delay > 1 {
				panic(fmt.Sprintf("async: delay %v outside (0,1]", delay))
			}
		}
		s.seq++
		heap.Push(&s.queue, event{time: s.now + delay, seq: s.seq, to: j, msg: m})
	}
}

// RunUntil processes all deliveries with time <= until (and the broadcasts
// they trigger). It returns the number of deliveries processed.
func (s *Simulator) RunUntil(until float64) int {
	count := 0
	for {
		e, ok := s.queue.Peek()
		if !ok || e.time > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = e.time
		if s.crashed[e.to] {
			continue
		}
		count++
		s.delivered++
		for _, out := range s.procs[e.to].Receive(e.msg) {
			s.broadcast(e.to, out)
		}
	}
	if s.now < until {
		s.now = until
	}
	return count
}

// RunToQuiescence processes events until the queue empties or the event
// budget is exhausted; it returns false on budget exhaustion (a likely
// livelock or unbounded protocol).
func (s *Simulator) RunToQuiescence(maxEvents int) bool {
	for i := 0; i < maxEvents; i++ {
		e, ok := s.queue.Peek()
		if !ok {
			return true
		}
		heap.Pop(&s.queue)
		s.now = e.time
		if s.crashed[e.to] {
			continue
		}
		s.delivered++
		for _, out := range s.procs[e.to].Receive(e.msg) {
			s.broadcast(e.to, out)
		}
	}
	return s.queue.Len() == 0
}

// Now returns the simulation clock.
func (s *Simulator) Now() float64 { return s.now }

// Delivered returns the number of processed deliveries.
func (s *Simulator) Delivered() int { return s.delivered }

// Crashed reports whether agent i has crashed.
func (s *Simulator) Crashed(i int) bool { return s.crashed[i] }

// CorrectOutputs returns the outputs of the non-crashed agents.
func (s *Simulator) CorrectOutputs() []float64 {
	var out []float64
	for i, p := range s.procs {
		if !s.crashed[i] {
			out = append(out, p.Output())
		}
	}
	return out
}

// CorrectDiameter returns the value diameter over correct agents.
func (s *Simulator) CorrectDiameter() float64 {
	out := s.CorrectOutputs()
	if len(out) == 0 {
		return 0
	}
	lo, hi := out[0], out[0]
	for _, v := range out[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}
