package async_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/graph"
)

func TestUpdateRules(t *testing.T) {
	if got := async.MidpointUpdate([]float64{1, 5, 2}); got != 3 {
		t.Errorf("MidpointUpdate = %v, want 3", got)
	}
	if got := async.MeanUpdate([]float64{1, 2, 3}); got != 2 {
		t.Errorf("MeanUpdate = %v, want 2", got)
	}
	// SelectedMean with f=2 over 5 sorted values picks ranks 0, 2, 4.
	if got := async.SelectedMeanUpdate(2)([]float64{5, 1, 3, 2, 4}); got != (1+3+5)/3.0 {
		t.Errorf("SelectedMeanUpdate(2) = %v, want 3", got)
	}
	// f=1 selects everything: equals the mean.
	vals := []float64{4, 8, 15, 16}
	if got, want := async.SelectedMeanUpdate(1)(append([]float64(nil), vals...)), async.MeanUpdate(vals); got != want {
		t.Errorf("SelectedMeanUpdate(1) = %v, want mean %v", got, want)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SelectedMeanUpdate(0) did not panic")
			}
		}()
		async.SelectedMeanUpdate(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty update did not panic")
			}
		}()
		async.MidpointUpdate(nil)
	}()
}

func newRoundBasedSystem(n, f int, inputs []float64, update async.UpdateFn, maxRound int) []async.Process {
	procs := make([]async.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = async.NewRoundBased(i, n, f, inputs[i], update, maxRound)
	}
	return procs
}

func TestSimulatorValidation(t *testing.T) {
	if _, err := async.NewSimulator(nil, async.ConstantDelay(1), nil); err == nil {
		t.Error("empty process set accepted")
	}
	procs := newRoundBasedSystem(3, 1, []float64{0, 1, 2}, async.MidpointUpdate, 4)
	if _, err := async.NewSimulator(procs, async.ConstantDelay(1),
		[]async.Crash{{Agent: 7}}); err == nil {
		t.Error("crash of unknown agent accepted")
	}
	if _, err := async.NewSimulator(procs, async.ConstantDelay(1),
		[]async.Crash{{Agent: 0}, {Agent: 0}}); err == nil {
		t.Error("duplicate crash accepted")
	}
	bad := []async.Process{procs[1]}
	if _, err := async.NewSimulator(bad, async.ConstantDelay(1), nil); err == nil {
		t.Error("mismatched process IDs accepted")
	}
}

func TestDelayValidation(t *testing.T) {
	for _, d := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ConstantDelay(%v) did not panic", d)
				}
			}()
			async.ConstantDelay(d)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("UniformDelays with bad floor did not panic")
			}
		}()
		async.UniformDelays(1, 0)
	}()
}

// TestRoundBasedCrashFreeConvergence runs the round-based midpoint with
// random delays and no crashes: every agent executes its rounds and the
// values contract to agreement.
func TestRoundBasedCrashFreeConvergence(t *testing.T) {
	n, f := 5, 2
	inputs := []float64{0, 1, 0.25, 0.75, 0.5}
	procs := newRoundBasedSystem(n, f, inputs, async.MidpointUpdate, 30)
	sim, err := async.NewSimulator(procs, async.UniformDelays(7, 0.05), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.RunToQuiescence(1_000_000) {
		t.Fatal("simulation did not quiesce")
	}
	if d := sim.CorrectDiameter(); d > 1e-6 {
		t.Errorf("round-based midpoint did not converge: diameter %v", d)
	}
	for i := 0; i < n; i++ {
		if rb := procs[i].(*async.RoundBased); rb.Round() != 31 {
			t.Errorf("agent %d stopped at round %d, want 31", i, rb.Round())
		}
	}
}

// TestRoundBasedWithCrashesStillConverges injects f unclean crashes; the
// surviving agents keep completing rounds (they only wait for n-f
// messages) and still converge.
func TestRoundBasedWithCrashesStillConverges(t *testing.T) {
	n, f := 6, 2
	inputs := []float64{0, 1, 0.2, 0.9, 0.5, 0.7}
	procs := newRoundBasedSystem(n, f, inputs, async.MidpointUpdate, 25)
	crashes := []async.Crash{
		{Agent: 0, AfterBroadcasts: 1, Recipients: 1 << 1}, // dies in round 2, heard only by 1
		{Agent: 3, AfterBroadcasts: 3, Recipients: 0},      // dies in round 4, heard by nobody
	}
	sim, err := async.NewSimulator(procs, async.UniformDelays(11, 0.05), crashes)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.RunToQuiescence(1_000_000) {
		t.Fatal("simulation did not quiesce")
	}
	if !sim.Crashed(0) || !sim.Crashed(3) {
		t.Error("crash schedule not applied")
	}
	outs := sim.CorrectOutputs()
	if len(outs) != n-2 {
		t.Fatalf("%d correct outputs, want %d", len(outs), n-2)
	}
	if d := sim.CorrectDiameter(); d > 1e-6 {
		t.Errorf("survivors did not converge: diameter %v", d)
	}
	// Validity: outputs stay in the initial hull.
	for _, v := range outs {
		if v < 0-1e-9 || v > 1+1e-9 {
			t.Errorf("output %v escaped the initial hull", v)
		}
	}
}

// TestMinRelayEqualByFPlusOne reproduces Theorem 7 on its worst-case
// schedule: a chain of f unclean crashes relaying the unique minimum, with
// all delays exactly 1. All correct agents hold the minimum — and
// identical sets — by time f+1, and not before.
func TestMinRelayEqualByFPlusOne(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{4, 2}, {6, 3}, {8, 7}} {
		n, f := tc.n, tc.f
		procs := make([]async.Process, n)
		inputs := make([]float64, n)
		for i := range inputs {
			if i == 0 {
				inputs[i] = 0 // unique minimum enters through the crash chain
			} else {
				inputs[i] = 1 // shared value: only the minimum triggers relays
			}
			procs[i] = async.NewMinRelay(i, inputs[i])
		}
		// Agent 0 crashes during its initial broadcast, reaching only
		// agent 1. Every later chain agent i relays the minimum with its
		// second broadcast (the first being the harmless init) and crashes
		// during it, reaching only agent i+1: the minimum travels a chain
		// of f dying relays — the Theorem 7 worst case.
		crashes := make([]async.Crash, f)
		crashes[0] = async.Crash{Agent: 0, AfterBroadcasts: 0, Recipients: 1 << 1}
		for i := 1; i < f; i++ {
			crashes[i] = async.Crash{Agent: i, AfterBroadcasts: 1, Recipients: 1 << uint(i+1)}
		}
		sim, err := async.NewSimulator(procs, async.ConstantDelay(1), crashes)
		if err != nil {
			t.Fatal(err)
		}
		// Just before time f+1 the farthest agents must not yet know the
		// minimum: it reaches agent f at time f and everyone else at f+1.
		// (With a single correct agent the diameter is trivially 0.)
		sim.RunUntil(float64(f+1) - 0.5)
		if n > f+1 && sim.CorrectDiameter() == 0 {
			t.Errorf("n=%d f=%d: agreement before time f+1 on the worst-case chain", n, f)
		}
		sim.RunUntil(float64(f + 1))
		if d := sim.CorrectDiameter(); d != 0 {
			t.Errorf("n=%d f=%d: diameter %v at time f+1, want 0 (Theorem 7)", n, f, d)
		}
		for i := f; i < n; i++ {
			if got := procs[i].Output(); got != 0 {
				t.Errorf("n=%d f=%d: agent %d output %v, want the minimum 0", n, f, i, got)
			}
		}
		// All correct agents hold identical sets, not just outputs.
		ref := procs[f].(*async.MinRelay).Set()
		for i := f + 1; i < n; i++ {
			got := procs[i].(*async.MinRelay).Set()
			if len(got) != len(ref) {
				t.Fatalf("n=%d f=%d: set size mismatch between correct agents", n, f)
			}
			for k := range ref {
				if got[k] != ref[k] {
					t.Fatalf("n=%d f=%d: sets differ between correct agents", n, f)
				}
			}
		}
	}
}

// TestMinRelayRandomSchedules property-checks Theorem 7 under random
// delays and random crash schedules: equality always holds by time f+1.
func TestMinRelayRandomSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		f := rng.Intn(n-1) + 0 // 0..n-2 crashes keeps >= 2 correct agents
		procs := make([]async.Process, n)
		for i := 0; i < n; i++ {
			procs[i] = async.NewMinRelay(i, math.Round(rng.Float64()*8))
		}
		crashes := make([]async.Crash, 0, f)
		perm := rng.Perm(n)
		for _, a := range perm[:f] {
			crashes = append(crashes, async.Crash{
				Agent:           a,
				AfterBroadcasts: rng.Intn(2),
				Recipients:      uint64(rng.Intn(1 << uint(n))),
			})
		}
		sim, err := async.NewSimulator(procs, async.UniformDelays(int64(trial), 0.1), crashes)
		if err != nil {
			t.Fatal(err)
		}
		sim.RunUntil(float64(f + 1))
		if d := sim.CorrectDiameter(); d != 0 {
			t.Errorf("trial %d (n=%d f=%d): diameter %v at time f+1", trial, n, f, d)
		}
	}
}

// TestTheorem6RoundBasedContractionUpperBounds embeds the round-based
// update rules into the Heard-Of model N_A(n, f) (the Section 8.1
// reduction) and measures their worst per-round contraction over random
// and structured adversarial patterns:
//
//   - midpoint contracts by at most 1/2 (every N_A graph with f < n/2 is
//     non-split), and
//   - the Fekete-style selected mean contracts by at most 1/(⌈n/f⌉-1),
//     matching Table 1's round-based upper bound.
func TestTheorem6RoundBasedContractionUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := []struct{ n, f int }{{4, 1}, {6, 2}, {8, 2}, {9, 4}}
	for _, tc := range cases {
		n, f := tc.n, tc.f
		q := graph.NumBlocks(n, f)
		selBound := 1 / float64(q-1)
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64()
		}
		// Midpoint pool: any N_A graphs (in-degree >= n-f), including the
		// Lemma 24 chain graphs — midpoint tolerates extra messages.
		var pool []graph.Graph
		for k := 0; k < 40; k++ {
			pool = append(pool, graph.RandomMinInDegree(rng, n, f))
		}
		g := graph.RandomMinInDegree(rng, n, f)
		h := graph.RandomMinInDegree(rng, n, f)
		hs, ks, err := graph.Lemma24Chain(g, h, f)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, hs...)
		pool = append(pool, ks...)
		src := core.Cycle{Graphs: pool}

		mid := async.AsCoreAlgorithm("rb-midpoint", async.MidpointUpdate)
		trMid := core.Run(mid, inputs, src, len(pool))
		if w := trMid.WorstRoundRatio(); w > 0.5+1e-9 {
			t.Errorf("n=%d f=%d: round-based midpoint worst ratio %v exceeds 1/2", n, f, w)
		}

		// Selected-mean pool: in-degree exactly n-f — the genuine
		// asynchronous round steps on exactly the first n-f arrivals, and
		// the rank-pairing argument behind the 1/(⌈n/f⌉-1) bound needs
		// equal receive-set sizes.
		var exactPool []graph.Graph
		for k := 0; k < 60; k++ {
			exactPool = append(exactPool, graph.RandomExactInDegree(rng, n, f))
		}
		sel := async.AsCoreAlgorithm("rb-selected-mean", async.SelectedMeanUpdate(f))
		trSel := core.Run(sel, inputs, core.Cycle{Graphs: exactPool}, len(exactPool))
		if w := trSel.WorstRoundRatio(); w > selBound+1e-9 {
			t.Errorf("n=%d f=%d: selected-mean worst ratio %v exceeds 1/(⌈n/f⌉-1) = %v",
				n, f, w, selBound)
		}
	}
}

// TestAsyncRoundsRealizeNAGraphs cross-checks the Section 8.1 embedding in
// the other direction: a concrete delay schedule in the event-driven
// simulator realizes a chosen N_A graph as "the n-f messages heard first"
// — messages the graph delivers get delay 0.5, all others 1.0, so each
// agent's round-r quorum is exactly its in-neighborhood.
func TestAsyncRoundsRealizeNAGraphs(t *testing.T) {
	n, f := 4, 1
	target := graph.SilenceBlock(n, f, 0) // nobody hears agent 0
	inputs := []float64{0, 1, 1, 1}
	procs := newRoundBasedSystem(n, f, inputs, async.MidpointUpdate, 1)
	delay := func(from, to int, _ float64) float64 {
		if target.HasEdge(from, to) {
			return 0.5
		}
		return 1.0
	}
	sim, err := async.NewSimulator(procs, delay, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.RunToQuiescence(100_000) {
		t.Fatal("no quiescence")
	}
	// Agent 0 hears itself (instant) plus 1, 2, 3 at 0.5 but needs only
	// n-f = 3: quorum = {0, 1, 2} or {0, 1, 3} or {0, 2, 3} — the first
	// three arrivals; with equal delays the heap tiebreak is send order
	// (1 before 2 before 3), so agent 0 hears {0, 1, 2}: midpoint 0.5.
	// Agents 1..3 get 1's own instant message plus 2 and 3 at delay 0.5
	// (from 0 only at 1.0): quorum {self, 2, 3}-ish, all values 1.
	sync := core.NewConfig(async.AsCoreAlgorithm("rb-midpoint", async.MidpointUpdate), inputs)
	wantCfg := sync.Step(graph.NewBuilder(n).
		InMask(0, 0b0111).
		InMask(1, 0b1110).
		InMask(2, 0b1110).
		InMask(3, 0b1110).
		Graph())
	for i := 0; i < n; i++ {
		if got, want := procs[i].Output(), wantCfg.Output(i); got != want {
			t.Errorf("agent %d: async output %v, sync-embedded output %v", i, got, want)
		}
	}
}
