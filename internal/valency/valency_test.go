package valency_test

import (
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

func TestIntervalBasics(t *testing.T) {
	a := valency.Interval{Lo: 0, Hi: 1}
	b := valency.Interval{Lo: 0.5, Hi: 2}
	c := valency.Interval{Lo: 3, Hi: 4}
	if a.Diameter() != 1 {
		t.Errorf("Diameter = %v, want 1", a.Diameter())
	}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Error("Intersects wrong")
	}
	if u := a.Union(c); u.Lo != 0 || u.Hi != 4 {
		t.Errorf("Union = %v", u)
	}
	if !a.Contains(0.5) || a.Contains(1.5) {
		t.Error("Contains wrong")
	}
	empty := valency.Interval{Lo: 1, Hi: 0}
	if !empty.Empty() || empty.Diameter() != 0 {
		t.Error("empty interval misbehaves")
	}
	if u := empty.Union(a); u != a {
		t.Errorf("empty union = %v, want %v", u, a)
	}
	if empty.Intersects(a) || a.Intersects(empty) {
		t.Error("empty should intersect nothing")
	}
	if empty.String() != "∅" || a.String() != "[0, 1]" {
		t.Errorf("String: %q %q", empty.String(), a.String())
	}
}

// TestLemma8InitialValency machine-checks Lemma 8: when every agent is
// deaf in some model graph, δ(C_0) equals the diameter of the initial
// values. The inner estimate must witness the full initial spread and the
// outer bound must not exceed it.
func TestLemma8InitialValency(t *testing.T) {
	cases := []struct {
		name   string
		m      *model.Model
		alg    core.Algorithm
		inputs []float64
	}{
		{"two-thirds/H", model.TwoAgent(), algorithms.TwoThirds{}, []float64{0, 1}},
		{"midpoint/H", model.TwoAgent(), algorithms.Midpoint{}, []float64{0, 1}},
		{"midpoint/deafK3", model.DeafModel(graph.Complete(3)), algorithms.Midpoint{}, []float64{0, 1, 0.25}},
		{"mean/deafK4", model.DeafModel(graph.Complete(4)), algorithms.Mean{}, []float64{0, 0.5, 1, 0.75}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			est := valency.NewEstimator(tc.m, 3, true)
			c0 := core.NewConfig(tc.alg, tc.inputs)
			want := core.Diameter(tc.inputs)
			inner := est.Inner(c0)
			outer := est.Outer(c0)
			if math.Abs(inner.Diameter()-want) > 1e-6 {
				t.Errorf("inner δ(C0) = %v, want %v (Lemma 8)", inner.Diameter(), want)
			}
			if outer.Diameter() > want+1e-9 {
				t.Errorf("outer δ(C0) = %v exceeds initial diameter %v", outer.Diameter(), want)
			}
			if inner.Lo < outer.Lo-1e-9 || inner.Hi > outer.Hi+1e-9 {
				t.Errorf("inner %v not contained in outer %v", inner, outer)
			}
		})
	}
}

// TestLemma7SuccessorIntersections machine-checks Lemma 7's conclusion on
// the two-agent model: the valencies of the successors H0.C and H1.C
// intersect (agent 1 has identical in-neighborhoods in H0 and H1, and is
// deaf in H2); symmetrically for H0.C and H2.C. Witnessed via inner
// bounds, which only contain genuine limits.
func TestLemma7SuccessorIntersections(t *testing.T) {
	m := model.TwoAgent()
	for _, alg := range []core.Algorithm{algorithms.TwoThirds{}, algorithms.Midpoint{}} {
		est := valency.NewEstimator(m, 4, true)
		c := core.NewConfig(alg, []float64{0, 1})
		inners := est.SuccessorInners(c)
		// Endpoints carry the estimator tolerance; the true valencies touch
		// exactly (e.g. at 1/3 for the two-thirds algorithm), so compare
		// with a small expansion.
		eps := 100 * est.Tol
		if !inners[0].Expand(eps).Intersects(inners[1]) {
			t.Errorf("%s: Y*(H0.C) and Y*(H1.C) should intersect: %v vs %v",
				alg.Name(), inners[0], inners[1])
		}
		if !inners[0].Expand(eps).Intersects(inners[2]) {
			t.Errorf("%s: Y*(H0.C) and Y*(H2.C) should intersect: %v vs %v",
				alg.Name(), inners[0], inners[2])
		}
	}
}

// TestLemma4Covering checks Lemma 4's covering property through the
// interval lens: the union of successor outer bounds contains the inner
// bound of C (since Y*(C) = ∪_G Y*(G.C)).
func TestLemma4Covering(t *testing.T) {
	m := model.DeafModel(graph.Complete(3))
	est := valency.NewEstimator(m, 3, true)
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1, 0.5})
	inner := est.Inner(c)
	union := valency.Interval{Lo: math.Inf(1), Hi: math.Inf(-1)}
	for k := 0; k < m.Size(); k++ {
		union = union.Union(est.Outer(c.Step(m.Graph(k))))
	}
	if inner.Lo < union.Lo-1e-6 || inner.Hi > union.Hi+1e-6 {
		t.Errorf("inner %v escapes successor-union %v", inner, union)
	}
}

func TestOuterPanicsForNonConvex(t *testing.T) {
	m := model.TwoAgent()
	est := valency.NewEstimator(m, 2, false)
	defer func() {
		if recover() == nil {
			t.Error("Outer on non-convex estimator did not panic")
		}
	}()
	est.Outer(core.NewConfig(algorithms.Midpoint{}, []float64{0, 1}))
}

func TestLimitOfConstant(t *testing.T) {
	m := model.TwoAgent()
	est := valency.NewEstimator(m, 0, true)
	c := core.NewConfig(algorithms.TwoThirds{}, []float64{0, 1})
	// Constant H1: agent 0 deaf, limit = 0. Constant H2: limit = 1.
	// Constant H0: symmetric averaging, limit = 1/2.
	for k, want := range map[int]float64{1: 0, 2: 1, 0: 0.5} {
		got, ok := est.LimitOfConstant(c, k)
		if !ok {
			t.Fatalf("constant H%d did not converge", k)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("constant H%d limit = %v, want %v", k, got, want)
		}
	}
}

func TestLimitOfConstantNonConverging(t *testing.T) {
	// An identity graph never contracts; the continuation must report !ok.
	m := model.MustNew(graph.New(2))
	est := valency.NewEstimator(m, 0, true)
	est.Settle = 50
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})
	if _, ok := est.LimitOfConstant(c, 0); ok {
		t.Error("identity continuation should not converge")
	}
	// Inner over a model with no converging continuation is empty.
	if iv := est.Inner(c); !iv.Empty() {
		t.Errorf("inner over identity-only model = %v, want empty", iv)
	}
}

// TestLemma21InitialValencyWithoutDeafGraphs machine-checks Lemma 21 on a
// model where no agent is ever deaf (so Lemma 8 does not apply): in any
// model where exact consensus is unsolvable, some step initial
// configuration C_0^(k) has δ(C_0) >= Δ/n.
func TestLemma21InitialValencyWithoutDeafGraphs(t *testing.T) {
	m, err := model.AsyncChain(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.ExactConsensusSolvable() {
		t.Fatal("AsyncChain(4,1) should be unsolvable")
	}
	for _, g := range m.Graphs() {
		for i := 0; i < 4; i++ {
			if g.IsDeaf(i) {
				t.Fatalf("unexpected deaf agent %d in %v", i, g)
			}
		}
	}
	est := valency.NewEstimator(m, 1, true)
	const delta = 1.0
	best := 0.0
	// The Lemma 21 construction: step inputs y_i = Δ for i < k, 0 else.
	for k := 0; k <= 4; k++ {
		inputs := make([]float64, 4)
		for i := 0; i < k; i++ {
			inputs[i] = delta
		}
		c := core.NewConfig(algorithms.Midpoint{}, inputs)
		if d := est.DeltaLower(c); d > best {
			best = d
		}
	}
	if best < delta/4-1e-6 {
		t.Errorf("max step-configuration δ(C_0) = %v below Δ/n = %v (Lemma 21)", best, delta/4)
	}
}

// TestDeltaShrinksAlongExecutions checks the paper's observation that
// δ(C_t) -> 0 in every execution (by Convergence + Agreement): outer
// bounds along a run shrink toward zero.
func TestDeltaShrinksAlongExecutions(t *testing.T) {
	m := model.TwoAgent()
	est := valency.NewEstimator(m, 4, true)
	c := core.NewConfig(algorithms.TwoThirds{}, []float64{0, 1})
	prev := est.DeltaUpper(c)
	for round := 1; round <= 8; round++ {
		c = c.Step(graph.H(round % 3))
		cur := est.DeltaUpper(c)
		if cur > prev+1e-12 {
			t.Errorf("round %d: δ upper grew from %v to %v", round, prev, cur)
		}
		prev = cur
	}
	if prev > 0.05 {
		t.Errorf("δ upper after 8 rounds still %v", prev)
	}
}

// TestDepthTightensOuter checks monotonicity of the outer bound in Depth.
func TestDepthTightensOuter(t *testing.T) {
	m := model.TwoAgent()
	c := core.NewConfig(algorithms.TwoThirds{}, []float64{0, 1})
	prev := math.Inf(1)
	for depth := 0; depth <= 5; depth++ {
		est := valency.NewEstimator(m, depth, true)
		d := est.DeltaUpper(c)
		if d > prev+1e-12 {
			t.Errorf("depth %d: outer δ %v exceeds shallower %v", depth, d, prev)
		}
		prev = d
	}
}
