// Package valency estimates the valency of configurations of asymptotic
// consensus algorithms — the central concept of Section 3 of Függer,
// Nowak, Schwarz (PODC 2018).
//
// The valency Y*(C) of a configuration C in a network model N is the set
// of limits reachable from C, and δ(C) = diam(Y*(C)) is the quantity whose
// decay the paper's lower bounds control: an adversary that keeps
// δ(C_t) >= γ^t · δ(C_0) forces a contraction rate of at least γ.
//
// Y*(C) is not computable in general, so the estimator computes certified
// interval bounds:
//
//   - Inner bound: limits of "eventually constant" continuations — play an
//     arbitrary pattern prefix from the execution tree, then repeat a
//     single model graph forever. Every such limit is, by definition, a
//     member of Y*(C), so the returned interval's endpoints are genuine
//     reachable limits (up to the configured numerical tolerance) and its
//     diameter is a sound lower bound on δ(C).
//   - Outer bound: the union over all depth-k reachable configurations of
//     the convex hulls of their value vectors. For convex combination
//     algorithms every limit reachable from a configuration lies in that
//     configuration's hull (by Validity applied to the suffix execution),
//     so the union is a superset of Y*(C) and its diameter a sound upper
//     bound on δ(C). For non-convex algorithms the outer bound is
//     unavailable.
//
// Both bounds tighten as Depth grows; the exploration is exhaustive over
// the |N|^Depth pattern prefixes, mirroring the execution-tree branching
// arguments (Lemmas 4 and 5) of the paper.
package valency

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
)

// Interval is a closed real interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Empty reports whether the interval is the canonical empty interval
// (Lo > Hi).
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Diameter returns Hi - Lo, or 0 for empty intervals.
func (iv Interval) Diameter() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Union returns the smallest interval containing both.
func (iv Interval) Union(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	return Interval{Lo: math.Min(iv.Lo, other.Lo), Hi: math.Max(iv.Hi, other.Hi)}
}

// Intersects reports whether the intervals share a point.
func (iv Interval) Intersects(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return !iv.Empty() && iv.Lo <= x && x <= iv.Hi }

// Expand returns the interval widened by eps on both sides. It is the
// standard slack for comparing numerically estimated valencies whose
// endpoints carry the estimator's tolerance.
func (iv Interval) Expand(eps float64) Interval {
	if iv.Empty() {
		return iv
	}
	return Interval{Lo: iv.Lo - eps, Hi: iv.Hi + eps}
}

// String renders the interval.
func (iv Interval) String() string {
	if iv.Empty() {
		return "∅"
	}
	return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi)
}

// emptyInterval is the canonical empty interval.
func emptyInterval() Interval { return Interval{Lo: math.Inf(1), Hi: math.Inf(-1)} }

// Estimator computes valency bounds for configurations under a network
// model. It is a thin wrapper around Engine, kept for API stability: the
// exploration itself is memoized, allocation-free, and parallel (see
// Engine). The zero value is not usable; use NewEstimator, which binds a
// persistent engine whose transposition tables survive across calls — the
// cross-round reuse the greedy adversaries depend on.
//
// An Estimator built as a plain struct literal still works: every call
// then runs on a fresh engine (memoization still collapses the tree
// within the call, but nothing carries over between calls).
type Estimator struct {
	// Model is the network model N.
	Model *model.Model
	// Depth is the exhaustive exploration depth of the execution tree.
	// Cost is O(|N|^Depth) before memoization, so keep Depth*log|N|
	// modest.
	Depth int
	// Settle caps the number of rounds a constant-graph continuation is
	// run when hunting for its limit.
	Settle int
	// Tol is the diameter below which a continuation counts as converged;
	// the returned limit estimate then errs by at most Tol.
	Tol float64
	// Convex asserts the algorithm under analysis is a convex combination
	// algorithm, enabling the outer bound.
	Convex bool

	eng *Engine
}

// NewEstimator returns an estimator with sensible defaults: the given
// depth, Settle = 512, Tol = 1e-9, and a persistent engine using all CPUs.
func NewEstimator(m *model.Model, depth int, convex bool) Estimator {
	e := Estimator{Model: m, Depth: depth, Settle: 512, Tol: 1e-9, Convex: convex}
	e.eng = NewEngine(m, e.params())
	return e
}

func (e Estimator) params() Params {
	return Params{Depth: e.Depth, Settle: e.Settle, Tol: e.Tol, Convex: e.Convex}
}

// EstimatorFromEngine returns an estimator bound to an existing engine,
// inheriting its model and parameters. It is how callers that pool
// engines (e.g. the public consensus facade, which shares one engine per
// model/algorithm/depth across sessions) hand the paper's adversaries an
// estimator whose transposition tables are the shared ones.
func EstimatorFromEngine(eng *Engine) Estimator {
	p := eng.Params()
	return Estimator{
		Model:  eng.Model(),
		Depth:  p.Depth,
		Settle: p.Settle,
		Tol:    p.Tol,
		Convex: p.Convex,
		eng:    eng,
	}
}

// Engine returns the engine backing the estimator. When the estimator was
// built by NewEstimator and its fields were not mutated afterwards, the
// bound persistent engine is returned; otherwise a fresh engine matching
// the current field values is created.
func (e Estimator) Engine() *Engine {
	if e.eng != nil && e.eng.model == e.Model && e.eng.params == e.params() {
		return e.eng
	}
	return NewEngine(e.Model, e.params())
}

// Inner returns the inner valency bound: an interval spanned by genuine
// members of Y*(C). Its diameter is a sound lower bound on δ(C).
func (e Estimator) Inner(c *core.Config) Interval { return e.Engine().Inner(c) }

// LimitOfConstant runs the continuation that repeats model graph k forever
// from c and returns the (approximate) common limit. ok is false when the
// continuation did not contract below Tol within Settle rounds (e.g. the
// constant graph does not drive the algorithm to consensus).
func (e Estimator) LimitOfConstant(c *core.Config, k int) (limit float64, ok bool) {
	return e.Engine().LimitOfConstant(c, k)
}

// Outer returns the outer valency bound for convex combination algorithms:
// an interval provably containing Y*(C). It panics when the estimator was
// not constructed for a convex algorithm, because the hull argument is
// unsound then.
func (e Estimator) Outer(c *core.Config) Interval { return e.Engine().Outer(c) }

// DeltaLower returns a sound lower bound on δ(C) = diam(Y*(C)).
func (e Estimator) DeltaLower(c *core.Config) float64 { return e.Inner(c).Diameter() }

// DeltaUpper returns a sound upper bound on δ(C) for convex algorithms.
func (e Estimator) DeltaUpper(c *core.Config) float64 { return e.Outer(c).Diameter() }

// SuccessorInners returns, for each model graph G, the inner valency bound
// of the successor configuration G.C — the branching data the paper's
// greedy adversaries (proofs of Theorems 1, 2, 5) act on.
func (e Estimator) SuccessorInners(c *core.Config) []Interval {
	return e.Engine().SuccessorInners(c)
}

// ReferenceInner is the original naive recursive inner-bound walk: no
// memoization, no scratch arenas, no parallelism, one fresh configuration
// per tree edge. It is retained verbatim as the differential-testing
// oracle for Engine — the engine must reproduce its intervals
// bit-identically.
func (e Estimator) ReferenceInner(c *core.Config) Interval {
	iv := emptyInterval()
	e.walkInner(c, e.Depth, &iv)
	return iv
}

func (e Estimator) walkInner(c *core.Config, depth int, acc *Interval) {
	for k := 0; k < e.Model.Size(); k++ {
		g := e.Model.Graph(k)
		if limit, ok := e.referenceLimitOfConstant(c, k); ok {
			*acc = acc.Union(Interval{Lo: limit, Hi: limit})
		}
		if depth > 0 {
			e.walkInner(c.Step(g), depth-1, acc)
		}
	}
}

func (e Estimator) referenceLimitOfConstant(c *core.Config, k int) (limit float64, ok bool) {
	g := e.Model.Graph(k)
	cur := c
	for r := 0; r < e.Settle; r++ {
		if cur.Diameter() <= e.Tol {
			lo, hi := core.Hull(cur.Outputs())
			return (lo + hi) / 2, true
		}
		cur = cur.Step(g)
	}
	if cur.Diameter() <= e.Tol {
		lo, hi := core.Hull(cur.Outputs())
		return (lo + hi) / 2, true
	}
	return 0, false
}

// ReferenceOuter is the original naive recursive outer-bound walk, the
// differential-testing oracle for Engine.Outer.
func (e Estimator) ReferenceOuter(c *core.Config) Interval {
	if !e.Convex {
		panic("valency: Outer bound requires a convex combination algorithm")
	}
	return e.walkOuter(c, e.Depth)
}

func (e Estimator) walkOuter(c *core.Config, depth int) Interval {
	if depth == 0 {
		lo, hi := core.Hull(c.Outputs())
		return Interval{Lo: lo, Hi: hi}
	}
	iv := emptyInterval()
	for k := 0; k < e.Model.Size(); k++ {
		iv = iv.Union(e.walkOuter(c.Step(e.Model.Graph(k)), depth-1))
	}
	return iv
}
