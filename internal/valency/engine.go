package valency

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

// Params bundles the tunables of a valency Engine. The zero value is not
// useful; DefaultParams supplies the estimator defaults.
type Params struct {
	// Depth is the exhaustive exploration depth of the execution tree.
	Depth int
	// Settle caps the rounds a constant-graph continuation is run when
	// hunting for its limit.
	Settle int
	// Tol is the diameter below which a continuation counts as converged.
	Tol float64
	// Convex asserts the algorithm under analysis is a convex combination
	// algorithm, enabling the outer bound.
	Convex bool
	// Workers bounds the goroutines used for the top-level branch fan-out;
	// 0 means runtime.NumCPU(). 1 forces a sequential walk. Results are
	// bit-identical for every worker count: branch results are merged in
	// model-index order and every branch value is a pure function of the
	// configuration.
	Workers int
}

// DefaultParams returns the engine defaults for the given depth:
// Settle = 512, Tol = 1e-9, Workers = NumCPU.
func DefaultParams(depth int, convex bool) Params {
	return Params{Depth: depth, Settle: 512, Tol: 1e-9, Convex: convex}
}

// CacheStats is a snapshot of the engine's transposition-table counters.
type CacheStats struct {
	// InnerHits/InnerMisses count memoized subtree lookups in Inner walks.
	InnerHits, InnerMisses uint64
	// OuterHits/OuterMisses count memoized subtree lookups in Outer walks.
	OuterHits, OuterMisses uint64
	// LimitHits/LimitMisses count memoized constant-graph limit lookups.
	LimitHits, LimitMisses uint64
	// InnerEntries/OuterEntries/LimitEntries are current table sizes.
	InnerEntries, OuterEntries, LimitEntries int
}

// HitRate returns the overall cache hit rate across all three tables, or
// 0 when nothing was looked up yet.
func (s CacheStats) HitRate() float64 {
	hits := s.InnerHits + s.OuterHits + s.LimitHits
	total := hits + s.InnerMisses + s.OuterMisses + s.LimitMisses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// maxEntriesPerTable bounds each transposition table; past the cap the
// engine keeps computing correctly but stops inserting new entries.
const maxEntriesPerTable = 1 << 21

// Engine is the memoized, zero-allocation, parallel valency exploration
// engine. It computes the same certified Inner/Outer interval bounds as
// the naive recursive walk (see Estimator.ReferenceInner) but
//
//   - memoizes Inner/Outer subtree results per (configuration
//     fingerprint, remaining depth) and constant-graph limits per
//     (fingerprint, graph index), collapsing the many pattern prefixes
//     that reach identical configurations;
//   - pre-fills the limit table along every settle chain: repeating graph
//     G from C visits exactly the configurations G.C, G².C, ... whose own
//     constant-G limits coincide with C's, so one settle loop resolves the
//     whole chain — the dominant cost of the naive walk;
//   - steps through the tree with core.StepInto on a per-walker arena of
//     scratch configurations, allocating nothing per node after warm-up;
//   - fans the top-level model branches out over a worker pool and merges
//     the per-branch intervals in model-index order, so results are
//     bit-identical to the sequential walk.
//
// An Engine is safe for concurrent use. Its caches persist across calls,
// which is what the greedy adversaries exploit: when the next round
// re-explores the chosen successor's subtree (one level deeper), all of
// its constant-graph settle loops — the dominant cost — hit the
// depth-independent limit table. Identical repeated queries are answered
// from the root entry of the inner/outer tables; deeper re-explorations
// miss those, since their keys include the remaining depth.
//
// Caches are only keyed by agent state, round, and depth — NOT by
// algorithm identity — so an Engine must only ever see configurations of
// one algorithm. Agent fingerprints carry type tags, so mixing algorithms
// falls back to cache misses rather than wrong results, but sharing an
// engine across algorithms wastes its tables. Configurations whose agents
// are not fingerprintable are explored without memoization (still using
// the zero-allocation arena).
type Engine struct {
	model  *model.Model
	params Params

	mu      sync.Mutex
	inner   map[string]Interval
	outer   map[string]Interval
	limits  map[string]limitEntry
	walkers []*walker

	innerHits, innerMisses uint64
	outerHits, outerMisses uint64
	limitHits, limitMisses uint64
}

type limitEntry struct {
	limit float64
	ok    bool
}

// NewEngine returns an engine for the model with the given parameters.
func NewEngine(m *model.Model, p Params) *Engine {
	return &Engine{
		model:  m,
		params: p,
		inner:  make(map[string]Interval),
		outer:  make(map[string]Interval),
		limits: make(map[string]limitEntry),
	}
}

// Model returns the network model the engine explores.
func (e *Engine) Model() *model.Model { return e.model }

// Params returns the engine's parameters.
func (e *Engine) Params() Params { return e.params }

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return CacheStats{
		InnerHits:    atomic.LoadUint64(&e.innerHits),
		InnerMisses:  atomic.LoadUint64(&e.innerMisses),
		OuterHits:    atomic.LoadUint64(&e.outerHits),
		OuterMisses:  atomic.LoadUint64(&e.outerMisses),
		LimitHits:    atomic.LoadUint64(&e.limitHits),
		LimitMisses:  atomic.LoadUint64(&e.limitMisses),
		InnerEntries: len(e.inner),
		OuterEntries: len(e.outer),
		LimitEntries: len(e.limits),
	}
}

// ResetCaches drops all memoized results and counters; the walker arenas
// are kept.
func (e *Engine) ResetCaches() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.inner = make(map[string]Interval)
	e.outer = make(map[string]Interval)
	e.limits = make(map[string]limitEntry)
	atomic.StoreUint64(&e.innerHits, 0)
	atomic.StoreUint64(&e.innerMisses, 0)
	atomic.StoreUint64(&e.outerHits, 0)
	atomic.StoreUint64(&e.outerMisses, 0)
	atomic.StoreUint64(&e.limitHits, 0)
	atomic.StoreUint64(&e.limitMisses, 0)
}

// workerCount resolves the effective fan-out width for `branches`
// top-level tasks.
func (e *Engine) workerCount(branches int) int {
	w := e.params.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > branches {
		w = branches
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Inner returns the inner valency bound: an interval spanned by genuine
// members of Y*(C). Its diameter is a sound lower bound on δ(C).
func (e *Engine) Inner(c *core.Config) Interval {
	return e.explore(c, e.innerBranch, e.lookupInner, e.storeInner)
}

// Outer returns the outer valency bound for convex combination
// algorithms: an interval provably containing Y*(C). It panics when the
// engine was not built for a convex algorithm, because the hull argument
// is unsound then.
func (e *Engine) Outer(c *core.Config) Interval {
	if !e.params.Convex {
		panic("valency: Outer bound requires a convex combination algorithm")
	}
	return e.explore(c, e.outerBranch, e.lookupOuter, e.storeOuter)
}

// DeltaLower returns a sound lower bound on δ(C) = diam(Y*(C)).
func (e *Engine) DeltaLower(c *core.Config) float64 { return e.Inner(c).Diameter() }

// DeltaUpper returns a sound upper bound on δ(C) for convex algorithms.
func (e *Engine) DeltaUpper(c *core.Config) float64 { return e.Outer(c).Diameter() }

// explore runs one top-level walk: a root-memo check, then the per-branch
// work (sequential or fanned out), then a model-index-order merge.
func (e *Engine) explore(
	c *core.Config,
	branch func(w *walker, c *core.Config, k int) Interval,
	lookup func(key []byte) (Interval, bool),
	store func(key string, iv Interval),
) Interval {
	size := e.model.Size()
	w := e.getWalker()
	rootKey := ""
	if fp, ok := c.AppendFingerprint(w.key[:0]); ok {
		fp = appendDepth(fp, e.params.Depth)
		w.key = fp
		if iv, hit := lookup(fp); hit {
			e.putWalker(w)
			return iv
		}
		rootKey = string(fp)
	}

	nw := e.workerCount(size)
	var iv Interval
	if nw <= 1 {
		iv = emptyInterval()
		for k := 0; k < size; k++ {
			iv = iv.Union(branch(w, c, k))
		}
	} else {
		results := make([]Interval, size)
		var next int64
		var wg sync.WaitGroup
		worker := func(w *walker) {
			defer wg.Done()
			defer e.putWalker(w)
			for {
				k := int(atomic.AddInt64(&next, 1)) - 1
				if k >= size {
					return
				}
				results[k] = branch(w, c, k)
			}
		}
		wg.Add(nw)
		go worker(w)
		for i := 1; i < nw; i++ {
			go worker(e.getWalker())
		}
		wg.Wait()
		w = nil // returned to the pool by its worker
		iv = emptyInterval()
		for _, r := range results {
			iv = iv.Union(r)
		}
	}
	if rootKey != "" {
		store(rootKey, iv)
	}
	if w != nil {
		e.putWalker(w)
	}
	return iv
}

// innerBranch computes branch k's contribution to Inner(c): the limit of
// the constant-k continuation from c, plus the whole subtree below the
// successor G_k.C when depth remains.
func (e *Engine) innerBranch(w *walker, c *core.Config, k int) Interval {
	iv := emptyInterval()
	if limit, ok := w.limit(c, k); ok {
		iv = iv.Union(Interval{Lo: limit, Hi: limit})
	}
	if e.params.Depth > 0 {
		child := w.level(0)
		c.StepInto(child, e.model.Graph(k))
		iv = iv.Union(w.inner(child, e.params.Depth-1, 1))
	}
	return iv
}

// outerBranch computes branch k's contribution to Outer(c). With Depth 0
// the walk never branches: every branch returns the hull of c itself,
// matching the reference recursion's base case.
func (e *Engine) outerBranch(w *walker, c *core.Config, k int) Interval {
	if e.params.Depth == 0 {
		lo, hi := c.Hull()
		return Interval{Lo: lo, Hi: hi}
	}
	child := w.level(0)
	c.StepInto(child, e.model.Graph(k))
	return w.outer(child, e.params.Depth-1, 1)
}

// LimitOfConstant runs the continuation that repeats model graph k
// forever from c and returns the (approximate) common limit; memoized.
// ok is false when the continuation did not contract below Tol within
// Settle rounds.
func (e *Engine) LimitOfConstant(c *core.Config, k int) (limit float64, ok bool) {
	w := e.getWalker()
	defer e.putWalker(w)
	return w.limit(c, k)
}

// SuccessorInners returns, for each model graph G, the inner valency
// bound of the successor configuration G.C — the branching data the
// paper's greedy adversaries act on. Each successor's subtree is explored
// at full engine depth and its settle-loop limits land in the shared,
// depth-independent limit table — the reuse that makes the adversary's
// next round cheap.
func (e *Engine) SuccessorInners(c *core.Config) []Interval {
	size := e.model.Size()
	out := make([]Interval, size)
	nw := e.workerCount(size)
	if nw <= 1 {
		w := e.getWalker()
		defer e.putWalker(w)
		for k := 0; k < size; k++ {
			child := w.level(0)
			c.StepInto(child, e.model.Graph(k))
			out[k] = w.inner(child, e.params.Depth, 1)
		}
		return out
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for i := 0; i < nw; i++ {
		go func() {
			defer wg.Done()
			w := e.getWalker()
			defer e.putWalker(w)
			for {
				k := int(atomic.AddInt64(&next, 1)) - 1
				if k >= size {
					return
				}
				child := w.level(0)
				c.StepInto(child, e.model.Graph(k))
				out[k] = w.inner(child, e.params.Depth, 1)
			}
		}()
	}
	wg.Wait()
	return out
}

// SuccessorValueDiameters returns the plain value diameter Δ(y) of every
// successor G.C, computed on a scratch configuration — no per-candidate
// materialization. It is the greedy adversary's zero-valency fallback
// ranking.
func (e *Engine) SuccessorValueDiameters(c *core.Config) []float64 {
	w := e.getWalker()
	defer e.putWalker(w)
	out := make([]float64, e.model.Size())
	for k := range out {
		child := w.level(0)
		c.StepInto(child, e.model.Graph(k))
		out[k] = child.Diameter()
	}
	return out
}

func (e *Engine) lookupInner(key []byte) (Interval, bool) {
	e.mu.Lock()
	iv, hit := e.inner[string(key)]
	e.mu.Unlock()
	if hit {
		atomic.AddUint64(&e.innerHits, 1)
	} else {
		atomic.AddUint64(&e.innerMisses, 1)
	}
	return iv, hit
}

func (e *Engine) storeInner(key string, iv Interval) {
	e.mu.Lock()
	if len(e.inner) < maxEntriesPerTable {
		e.inner[key] = iv
	}
	e.mu.Unlock()
}

func (e *Engine) lookupOuter(key []byte) (Interval, bool) {
	e.mu.Lock()
	iv, hit := e.outer[string(key)]
	e.mu.Unlock()
	if hit {
		atomic.AddUint64(&e.outerHits, 1)
	} else {
		atomic.AddUint64(&e.outerMisses, 1)
	}
	return iv, hit
}

func (e *Engine) storeOuter(key string, iv Interval) {
	e.mu.Lock()
	if len(e.outer) < maxEntriesPerTable {
		e.outer[key] = iv
	}
	e.mu.Unlock()
}

// getWalker pops a walker arena from the free list, or builds one.
func (e *Engine) getWalker() *walker {
	e.mu.Lock()
	if n := len(e.walkers); n > 0 {
		w := e.walkers[n-1]
		e.walkers = e.walkers[:n-1]
		e.mu.Unlock()
		return w
	}
	e.mu.Unlock()
	return &walker{e: e}
}

func (e *Engine) putWalker(w *walker) {
	e.mu.Lock()
	e.walkers = append(e.walkers, w)
	e.mu.Unlock()
}

// appendDepth suffixes a memo key with the remaining depth.
func appendDepth(key []byte, depth int) []byte {
	return binary.LittleEndian.AppendUint32(key, uint32(depth))
}

// appendGraph suffixes a memo key with a model graph index.
func appendGraph(key []byte, k int) []byte {
	return binary.LittleEndian.AppendUint32(key, uint32(k))
}

// walker is a per-goroutine exploration arena: scratch configurations for
// every tree level and for the settle loop, plus reusable fingerprint
// buffers. Walkers allocate only while warming up (growing to the depth
// and chain lengths actually visited) and are recycled through the
// engine's free list.
type walker struct {
	e *Engine
	// levels[i] is the scratch destination configuration of tree level i.
	levels []*core.Config
	// settleA/settleB ping-pong through the constant-graph continuation.
	settleA, settleB core.Config
	// key is the general fingerprint scratch buffer.
	key []byte
	// levelKeys[i] holds level i's memo key across the recursion into its
	// subtree (the key is needed again for the store after the walk).
	levelKeys [][]byte
	// chain holds the settle-loop fingerprint keys for table pre-filling.
	chain [][]byte
	// denseA/denseB ping-pong through dense settle loops; denseOut is the
	// observable-output scratch for their convergence checks.
	denseA, denseB core.DenseState
	denseOut       []float64
	// batch is the batched-settle arena: one core.BatchRunner stepping
	// every unresolved constant-graph continuation of a tree node
	// together, with per-run chain recording (settleRuns) and the
	// per-level result buffers (limitsLv) the recursion reads from.
	batch      *core.BatchRunner
	settleRuns []batchSettleRun
	limitsLv   [][]limitEntry
	resolved   []bool
	keepBuf    []bool
	gsBuf      []graph.Graph
}

// batchSettleRun is the per-run bookkeeping of a batched settle loop:
// the model graph the run repeats, its recorded chain-key prefix, and
// its verdict once resolved.
type batchSettleRun struct {
	k        int
	g        graph.Graph
	memo     bool
	chain    [][]byte
	chainLen int
	limit    float64
	ok       bool
	done     bool
}

// chainBuf borrows the run's chain buffer i.
func (r *batchSettleRun) chainBuf(i int) []byte {
	for len(r.chain) <= i {
		r.chain = append(r.chain, nil)
	}
	return r.chain[i][:0]
}

// level returns the scratch configuration of tree level i.
func (w *walker) level(i int) *core.Config {
	for len(w.levels) <= i {
		w.levels = append(w.levels, &core.Config{})
	}
	return w.levels[i]
}

// levelKey borrows level i's key buffer.
func (w *walker) levelKey(i int) []byte {
	for len(w.levelKeys) <= i {
		w.levelKeys = append(w.levelKeys, nil)
	}
	return w.levelKeys[i][:0]
}

// inner is the memoized recursion behind Inner: the union of every
// constant-graph limit from c and, while depth remains, of the subtrees
// below every successor. level indexes the walker's scratch arena. The
// node's constant-graph limits are resolved up front as one batched
// settle loop (allLimits) — the batch plane's replacement for the per-k
// sequential settles, bit-identical in values, counters, and table
// pre-fill.
func (w *walker) inner(c *core.Config, depth, level int) Interval {
	e := w.e
	key, memo := c.AppendFingerprint(w.levelKey(level))
	if memo {
		key = appendDepth(key, depth)
		w.levelKeys[level] = key
		if iv, hit := e.lookupInner(key); hit {
			return iv
		}
	}
	iv := emptyInterval()
	size := e.model.Size()
	lims := w.allLimits(c, level)
	for k := 0; k < size; k++ {
		if lims[k].ok {
			iv = iv.Union(Interval{Lo: lims[k].limit, Hi: lims[k].limit})
		}
		if depth > 0 {
			child := w.level(level)
			c.StepInto(child, e.model.Graph(k))
			iv = iv.Union(w.inner(child, depth-1, level+1))
		}
	}
	if memo {
		e.storeInner(string(w.levelKeys[level]), iv)
	}
	return iv
}

// limitsBuf borrows level i's limit-result buffer, sized to the model.
func (w *walker) limitsBuf(i int) []limitEntry {
	for len(w.limitsLv) <= i {
		w.limitsLv = append(w.limitsLv, nil)
	}
	if cap(w.limitsLv[i]) < w.e.model.Size() {
		w.limitsLv[i] = make([]limitEntry, w.e.model.Size())
	}
	w.limitsLv[i] = w.limitsLv[i][:w.e.model.Size()]
	return w.limitsLv[i]
}

// allLimits computes the constant-graph limit of every model graph from
// c — the per-node settle fan-out — returning out[k] = limit(c, k). On
// the dense backend the unresolved continuations run as one batched
// settle loop; otherwise each k takes the sequential path.
func (w *walker) allLimits(c *core.Config, level int) []limitEntry {
	out := w.limitsBuf(level)
	if w.batchLimits(c, out) {
		return out
	}
	for k := range out {
		limit, ok := w.limit(c, k)
		out[k] = limitEntry{limit: limit, ok: ok}
	}
	return out
}

// batchLimits is the batched counterpart of calling w.limit(c, k) for
// every k: one fingerprint of c covers all lookups (single lock
// acquisition), and the misses settle together as a core.BatchRunner —
// every unresolved constant-graph continuation is one run, converged
// runs are compacted out in place, and the chain pre-fill commits under
// one lock at the end. Values, hit/miss accounting, and table contents
// are identical to the sequential path; handled is false when the
// configuration must take it (dense backend disabled, no dense support,
// or unusable dense fingerprints while memoization is on).
func (w *walker) batchLimits(c *core.Config, out []limitEntry) (handled bool) {
	e := w.e
	if !core.CurrentBackend().DenseEnabled() {
		return false
	}
	alg := c.Algorithm()
	if alg == nil {
		return false
	}
	d, ok := core.AsDense(alg)
	if !ok {
		return false
	}
	key, memo := c.AppendFingerprint(w.key[:0])
	w.key = key
	if _, fpOK := d.(core.DenseFingerprinter); memo && !fpOK {
		return false
	}
	if !c.WriteDense(&w.denseA) {
		return false
	}

	size := e.model.Size()
	if cap(w.resolved) < size {
		w.resolved = make([]bool, size)
	}
	resolved := w.resolved[:size]
	base := len(key)
	if memo {
		var hits, misses uint64
		e.mu.Lock()
		for k := 0; k < size; k++ {
			key = appendGraph(key[:base], k)
			if entry, hit := e.limits[string(key)]; hit {
				out[k] = entry
				resolved[k] = true
				hits++
			} else {
				resolved[k] = false
				misses++
			}
		}
		e.mu.Unlock()
		w.key = key
		atomic.AddUint64(&e.limitHits, hits)
		atomic.AddUint64(&e.limitMisses, misses)
	} else {
		for k := 0; k < size; k++ {
			resolved[k] = false
		}
	}

	// Gather the misses into the batch (one run per unresolved graph).
	w.settleRuns = w.settleRuns[:0]
	for k := 0; k < size; k++ {
		if resolved[k] {
			continue
		}
		if len(w.settleRuns) == cap(w.settleRuns) {
			w.settleRuns = append(w.settleRuns, batchSettleRun{})
		} else {
			w.settleRuns = w.settleRuns[:len(w.settleRuns)+1]
		}
		run := &w.settleRuns[len(w.settleRuns)-1]
		run.k, run.g, run.memo, run.chainLen = k, e.model.Graph(k), memo, 0
		run.limit, run.ok, run.done = 0, false, false
	}
	if len(w.settleRuns) == 0 {
		return true
	}
	// Every missing continuation starts at c itself: when c is already
	// within tolerance, they all settle at round 0 with the same limit —
	// no stepping, no batch. This is the common case deep in the tree,
	// where most configurations are contracted. The table entries match
	// the per-k settle exactly: each chain records c as its first (and
	// only) configuration.
	n := c.N()
	if cap(w.denseOut) < n {
		w.denseOut = make([]float64, n)
	}
	dOut := w.denseOut[:n]
	d.OutputsDense(&w.denseA, dOut)
	if lo, hi := core.Hull(dOut); hi-lo <= e.params.Tol {
		limit := (lo + hi) / 2
		entry := limitEntry{limit: limit, ok: true}
		for i := range w.settleRuns {
			out[w.settleRuns[i].k] = entry
		}
		if memo {
			e.mu.Lock()
			for i := range w.settleRuns {
				if len(e.limits) >= maxEntriesPerTable {
					break
				}
				key = appendGraph(key[:base], w.settleRuns[i].k)
				e.limits[string(key)] = entry
			}
			e.mu.Unlock()
			w.key = key
		}
		return true
	}
	if len(w.settleRuns) == 1 {
		// A single unresolved continuation gains nothing from the batch
		// machinery; settle it on the plain dense path (the lookup and
		// its accounting already happened above).
		k := w.settleRuns[0].k
		limit, okLimit, h := w.denseLimit(c, k, memo)
		if h {
			out[k] = limitEntry{limit: limit, ok: okLimit}
			return true
		}
	}
	if w.batch == nil {
		w.batch = core.NewBatchRunnerReplicated(d, &w.denseA, len(w.settleRuns))
	} else {
		w.batch.ResetReplicated(d, &w.denseA, len(w.settleRuns))
	}
	br := w.batch
	settle, tol := e.params.Settle, e.params.Tol
	maxChain := e.params.Depth + 1
	if cap(w.keepBuf) < br.B() {
		w.keepBuf = make([]bool, br.B())
	}

	gs := w.gsBuf[:0]
	for i := 0; i < br.B(); i++ {
		gs = append(gs, w.settleRuns[br.Origin(i)].g)
	}
	for r := 0; ; r++ {
		anyDone := false
		b := br.B()
		keep := w.keepBuf[:b]
		for i := 0; i < b; i++ {
			run := &w.settleRuns[br.Origin(i)]
			if run.memo && run.chainLen < maxChain {
				fp, okFP := br.AppendRunFingerprint(run.chainBuf(run.chainLen), i)
				if !okFP {
					run.memo = false
				} else {
					run.chain[run.chainLen] = appendGraph(fp, run.k)
					run.chainLen++
				}
			}
			lo, hi := br.Hull(i)
			keep[i] = true
			if hi-lo <= tol {
				run.limit, run.ok, run.done = (lo+hi)/2, true, true
				keep[i] = false
				anyDone = true
			}
		}
		if anyDone {
			if br.Compact(keep) == 0 {
				break
			}
			gs = gs[:0]
			for i := 0; i < br.B(); i++ {
				gs = append(gs, w.settleRuns[br.Origin(i)].g)
			}
		}
		if r == settle {
			break
		}
		br.StepRuns(gs)
	}
	w.gsBuf = gs[:0]

	// Commit results and the chain pre-fill in one lock acquisition:
	// converged runs fill their whole recorded chain (repeating k from
	// G_k^i.C converges to the same limit through the same
	// configurations); unconverged runs record the failure verdict for
	// their first configuration only — an intermediate configuration
	// still has its full Settle budget ahead.
	e.mu.Lock()
	for i := range w.settleRuns {
		run := &w.settleRuns[i]
		out[run.k] = limitEntry{limit: run.limit, ok: run.done}
		if !run.memo {
			continue
		}
		if run.done {
			for j := 0; j < run.chainLen && len(e.limits) < maxEntriesPerTable; j++ {
				e.limits[string(run.chain[j])] = limitEntry{limit: run.limit, ok: true}
			}
		} else if run.chainLen > 0 && len(e.limits) < maxEntriesPerTable {
			e.limits[string(run.chain[0])] = limitEntry{ok: false}
		}
	}
	e.mu.Unlock()
	return true
}

// outer is the memoized recursion behind Outer.
func (w *walker) outer(c *core.Config, depth, level int) Interval {
	if depth == 0 {
		lo, hi := c.Hull()
		return Interval{Lo: lo, Hi: hi}
	}
	e := w.e
	key, memo := c.AppendFingerprint(w.levelKey(level))
	if memo {
		key = appendDepth(key, depth)
		w.levelKeys[level] = key
		if iv, hit := e.lookupOuter(key); hit {
			return iv
		}
	}
	iv := emptyInterval()
	size := e.model.Size()
	for k := 0; k < size; k++ {
		child := w.level(level)
		c.StepInto(child, e.model.Graph(k))
		iv = iv.Union(w.outer(child, depth-1, level+1))
	}
	if memo {
		e.storeOuter(string(w.levelKeys[level]), iv)
	}
	return iv
}

// chainKey borrows chain buffer i.
func (w *walker) chainKey(i int) []byte {
	for len(w.chain) <= i {
		w.chain = append(w.chain, nil)
	}
	return w.chain[i][:0]
}

// chainRecorder carries the settle-chain memoization policy of a limit
// computation — which configurations get recorded, how many, and how the
// resolved limit is committed to the engine's table. It is shared by the
// agent and dense settle loops so their caching behavior cannot diverge
// (the transposition table is common to both backends).
type chainRecorder struct {
	w        *walker
	k        int
	memo     bool
	chainLen int
	maxChain int
}

// newChainRecorder starts a recording for graph k. Pre-filling deeper
// than Depth+1 configurations down the chain is pointless: the execution
// tree can never reach them, so their entries would only bloat the table
// and the insert cost.
func (w *walker) newChainRecorder(k int, memo bool) chainRecorder {
	return chainRecorder{w: w, k: k, memo: memo, maxChain: w.e.params.Depth + 1}
}

// active reports whether the next configuration should be fingerprinted;
// buffer returns the scratch to fingerprint it into.
func (r *chainRecorder) active() bool   { return r.memo && r.chainLen < r.maxChain }
func (r *chainRecorder) buffer() []byte { return r.w.chainKey(r.chainLen) }

// commit finishes recording one configuration from its fingerprint
// (fp, ok as returned by the AppendFingerprint flavor in use); a
// non-fingerprintable configuration turns the whole recording off.
func (r *chainRecorder) commit(fp []byte, ok bool) {
	if !ok {
		r.memo = false
		return
	}
	r.w.chain[r.chainLen] = appendGraph(fp, r.k)
	r.chainLen++
}

// fill stores the resolved limit for every recorded chain configuration:
// repeating k from G_k^i.C converges to the same limit through the same
// configurations, so one settle loop resolves its entire chain at once.
func (r *chainRecorder) fill(limit float64, ok bool) {
	if !r.memo {
		return
	}
	e := r.w.e
	e.mu.Lock()
	for i := 0; i < r.chainLen && len(e.limits) < maxEntriesPerTable; i++ {
		e.limits[string(r.w.chain[i])] = limitEntry{limit: limit, ok: ok}
	}
	e.mu.Unlock()
}

// fillNotConverged stores the failure verdict for the chain's first
// configuration only: the verdict holds just for c itself — an
// intermediate configuration still has its full Settle budget ahead.
func (r *chainRecorder) fillNotConverged() {
	if !r.memo || r.chainLen == 0 {
		return
	}
	e := r.w.e
	e.mu.Lock()
	if len(e.limits) < maxEntriesPerTable {
		e.limits[string(r.w.chain[0])] = limitEntry{ok: false}
	}
	e.mu.Unlock()
}

// limit computes (memoized) the limit of the constant-graph-k
// continuation from c. On a miss it runs the settle loop on the walker's
// ping-pong scratch pair and then pre-fills the table for every
// intermediate configuration of the chain: repeating k from G_k^i.C
// converges to the same limit through the same configurations, so each
// settle loop resolves its entire chain at once.
func (w *walker) limit(c *core.Config, k int) (float64, bool) {
	e := w.e
	g := e.model.Graph(k)
	key, memo := c.AppendFingerprint(w.key[:0])
	w.key = key
	if memo {
		key = appendGraph(key, k)
		w.key = key
		e.mu.Lock()
		entry, hit := e.limits[string(key)]
		e.mu.Unlock()
		if hit {
			atomic.AddUint64(&e.limitHits, 1)
			return entry.limit, entry.ok
		}
		atomic.AddUint64(&e.limitMisses, 1)
	}

	if limit, ok, handled := w.denseLimit(c, k, memo); handled {
		return limit, ok
	}

	settle, tol := e.params.Settle, e.params.Tol
	cur := c
	rec := w.newChainRecorder(k, memo)
	for r := 0; ; r++ {
		if rec.active() {
			rec.commit(cur.AppendFingerprint(rec.buffer()))
		}
		if cur.Diameter() <= tol {
			lo, hi := cur.Hull()
			limit := (lo + hi) / 2
			rec.fill(limit, true)
			return limit, true
		}
		if r == settle {
			break
		}
		next := &w.settleA
		if cur == next {
			next = &w.settleB
		}
		cur.StepInto(next, g)
		cur = next
	}
	rec.fillNotConverged()
	return 0, false
}

// denseLimit is the dense-backend settle loop: the same chain recording,
// convergence test, and table pre-fill as the agent loop below it in
// limit, but stepping flat struct-of-arrays state instead of cloning and
// delivering messages. handled is false when the configuration must take
// the agent path: dense backend disabled, algorithm not dense-capable, no
// dense fingerprints while memoization is on (the chain pre-fill would be
// lost), or agents that cannot export their state.
func (w *walker) denseLimit(c *core.Config, k int, memo bool) (limit float64, okLimit, handled bool) {
	if !core.CurrentBackend().DenseEnabled() {
		return 0, false, false
	}
	alg := c.Algorithm()
	if alg == nil {
		return 0, false, false
	}
	d, ok := core.AsDense(alg)
	if !ok {
		return 0, false, false
	}
	if _, fpOK := d.(core.DenseFingerprinter); memo && !fpOK {
		return 0, false, false
	}
	if !c.WriteDense(&w.denseA) {
		return 0, false, false
	}
	e := w.e
	g := e.model.Graph(k)
	n := c.N()
	if cap(w.denseOut) < n {
		w.denseOut = make([]float64, n)
	}
	out := w.denseOut[:n]

	settle, tol := e.params.Settle, e.params.Tol
	cur, next := &w.denseA, &w.denseB
	rec := w.newChainRecorder(k, memo)
	for r := 0; ; r++ {
		if rec.active() {
			rec.commit(core.AppendDenseFingerprint(d, cur, rec.buffer()))
		}
		d.OutputsDense(cur, out)
		lo, hi := core.Hull(out)
		if hi-lo <= tol {
			limit := (lo + hi) / 2
			rec.fill(limit, true)
			return limit, true, true
		}
		if r == settle {
			break
		}
		core.DenseStep(d, next, cur, g)
		cur, next = next, cur
	}
	rec.fillNotConverged()
	return 0, false, true
}
