package valency_test

import (
	"fmt"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

// engineCase is one (model, algorithm, inputs) instance the differential
// tests sweep over: the seed models of the paper experiments.
type engineCase struct {
	name   string
	m      *model.Model
	alg    core.Algorithm
	inputs []float64
}

func engineCases() []engineCase {
	cases := []engineCase{
		{"twoagent/two-thirds", model.TwoAgent(), algorithms.TwoThirds{}, []float64{0, 1}},
		{"twoagent/midpoint", model.TwoAgent(), algorithms.Midpoint{}, []float64{0, 1}},
	}
	for n := 3; n <= 5; n++ {
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = float64(i) / float64(n-1)
		}
		m := model.DeafModel(graph.Complete(n))
		cases = append(cases,
			engineCase{fmt.Sprintf("deafK%d/midpoint", n), m, algorithms.Midpoint{}, inputs},
			engineCase{fmt.Sprintf("deafK%d/amortized", n), m, algorithms.AmortizedMidpoint{}, inputs},
		)
	}
	return cases
}

// TestEngineMatchesReferenceInner asserts bit-identical Inner intervals
// between the memoized engine and the naive recursive reference walk on
// every seed model.
func TestEngineMatchesReferenceInner(t *testing.T) {
	for _, tc := range engineCases() {
		for depth := 0; depth <= 3; depth++ {
			t.Run(fmt.Sprintf("%s/depth-%d", tc.name, depth), func(t *testing.T) {
				est := valency.NewEstimator(tc.m, depth, true)
				c := core.NewConfig(tc.alg, tc.inputs)
				want := est.ReferenceInner(c)
				got := est.Inner(c)
				if got != want {
					t.Fatalf("engine Inner = %v, reference = %v", got, want)
				}
				// A second call must serve the root from cache and still
				// agree exactly.
				if again := est.Inner(c); again != want {
					t.Fatalf("cached Inner = %v, reference = %v", again, want)
				}
			})
		}
	}
}

// TestEngineMatchesReferenceOuter asserts bit-identical Outer intervals
// between engine and reference.
func TestEngineMatchesReferenceOuter(t *testing.T) {
	for _, tc := range engineCases() {
		for depth := 0; depth <= 3; depth++ {
			t.Run(fmt.Sprintf("%s/depth-%d", tc.name, depth), func(t *testing.T) {
				est := valency.NewEstimator(tc.m, depth, true)
				c := core.NewConfig(tc.alg, tc.inputs)
				want := est.ReferenceOuter(c)
				got := est.Outer(c)
				if got != want {
					t.Fatalf("engine Outer = %v, reference = %v", got, want)
				}
			})
		}
	}
}

// TestEngineLimitOfConstantMatchesReference checks the memoized settle
// loop, including chain pre-filling, against the reference on every model
// graph and several tree prefixes.
func TestEngineLimitOfConstantMatchesReference(t *testing.T) {
	for _, tc := range engineCases() {
		t.Run(tc.name, func(t *testing.T) {
			est := valency.NewEstimator(tc.m, 2, true)
			eng := est.Engine()
			var walk func(c *core.Config, depth int)
			walk = func(c *core.Config, depth int) {
				for k := 0; k < tc.m.Size(); k++ {
					wantL, wantOK := referenceLimit(est, c, k)
					gotL, gotOK := eng.LimitOfConstant(c, k)
					if gotL != wantL || gotOK != wantOK {
						t.Fatalf("limit(depth=%d, k=%d) = (%v, %v), reference (%v, %v)",
							depth, k, gotL, gotOK, wantL, wantOK)
					}
					if depth > 0 {
						walk(c.Step(tc.m.Graph(k)), depth-1)
					}
				}
			}
			walk(core.NewConfig(tc.alg, tc.inputs), 2)
		})
	}
}

// referenceLimit mirrors the pre-engine LimitOfConstant implementation.
func referenceLimit(est valency.Estimator, c *core.Config, k int) (float64, bool) {
	g := est.Model.Graph(k)
	cur := c
	for r := 0; r < est.Settle; r++ {
		if cur.Diameter() <= est.Tol {
			lo, hi := core.Hull(cur.Outputs())
			return (lo + hi) / 2, true
		}
		cur = cur.Step(g)
	}
	if cur.Diameter() <= est.Tol {
		lo, hi := core.Hull(cur.Outputs())
		return (lo + hi) / 2, true
	}
	return 0, false
}

// TestEngineParallelDeterminism runs the parallel walk repeatedly with
// varying worker counts and demands bit-identical intervals every time.
func TestEngineParallelDeterminism(t *testing.T) {
	for _, tc := range engineCases() {
		t.Run(tc.name, func(t *testing.T) {
			c := core.NewConfig(tc.alg, tc.inputs)
			p := valency.DefaultParams(3, true)
			p.Workers = 1
			want := valency.NewEngine(tc.m, p).Inner(c)
			wantOut := valency.NewEngine(tc.m, p).Outer(c)
			for _, workers := range []int{0, 2, 3, 4, 8} {
				for rep := 0; rep < 3; rep++ {
					pp := p
					pp.Workers = workers
					eng := valency.NewEngine(tc.m, pp)
					if got := eng.Inner(c); got != want {
						t.Fatalf("workers=%d rep=%d: Inner = %v, sequential = %v", workers, rep, got, want)
					}
					if got := eng.Outer(c); got != wantOut {
						t.Fatalf("workers=%d rep=%d: Outer = %v, sequential = %v", workers, rep, got, wantOut)
					}
				}
			}
		})
	}
}

// TestEngineSuccessorInnersMatchReference pins the adversary-facing
// branching data to the reference walk.
func TestEngineSuccessorInnersMatchReference(t *testing.T) {
	for _, tc := range engineCases() {
		t.Run(tc.name, func(t *testing.T) {
			est := valency.NewEstimator(tc.m, 2, true)
			c := core.NewConfig(tc.alg, tc.inputs)
			got := est.SuccessorInners(c)
			for k := 0; k < tc.m.Size(); k++ {
				want := est.ReferenceInner(c.Step(tc.m.Graph(k)))
				if got[k] != want {
					t.Fatalf("successor %d: engine %v, reference %v", k, got[k], want)
				}
			}
		})
	}
}

// TestEngineCacheEffectiveness asserts the transposition table actually
// fires: a repeated Inner call must be answered from the root entry, and
// the settle-chain pre-fill must produce limit hits within the first walk.
func TestEngineCacheEffectiveness(t *testing.T) {
	m := model.TwoAgent()
	eng := valency.NewEngine(m, valency.DefaultParams(4, true))
	c := core.NewConfig(algorithms.TwoThirds{}, []float64{0, 1})
	first := eng.Inner(c)
	s1 := eng.Stats()
	if s1.LimitHits == 0 {
		t.Fatalf("no limit-cache hits during first walk; stats %+v", s1)
	}
	if s1.LimitEntries == 0 || s1.InnerEntries == 0 {
		t.Fatalf("empty transposition tables after walk; stats %+v", s1)
	}
	second := eng.Inner(c)
	s2 := eng.Stats()
	if second != first {
		t.Fatalf("cached result %v differs from first %v", second, first)
	}
	if s2.InnerHits != s1.InnerHits+1 || s2.InnerMisses != s1.InnerMisses {
		t.Fatalf("second call was not a pure root hit: before %+v, after %+v", s1, s2)
	}
}

// TestEngineUnfingerprintableFallback checks that an algorithm without
// fingerprint support is still explored correctly, just without caching.
func TestEngineUnfingerprintableFallback(t *testing.T) {
	m := model.TwoAgent()
	alg := opaqueAlg{algorithms.Midpoint{}}
	est := valency.NewEstimator(m, 3, true)
	c := core.NewConfig(alg, []float64{0, 1})
	want := est.ReferenceInner(c)
	eng := est.Engine()
	if got := eng.Inner(c); got != want {
		t.Fatalf("engine Inner = %v, reference = %v", got, want)
	}
	if s := eng.Stats(); s.InnerEntries != 0 || s.LimitEntries != 0 {
		t.Fatalf("opaque agents must not be memoized; stats %+v", s)
	}
}

// opaqueAlg wraps an algorithm so its agents hide every optional
// capability (no Fingerprinter, no StateCopier).
type opaqueAlg struct{ inner core.Algorithm }

func (o opaqueAlg) Name() string { return "opaque(" + o.inner.Name() + ")" }
func (o opaqueAlg) Convex() bool { return o.inner.Convex() }
func (o opaqueAlg) NewAgent(id, n int, initial float64) core.Agent {
	return &opaqueAgent{inner: o.inner.NewAgent(id, n, initial)}
}

type opaqueAgent struct{ inner core.Agent }

func (a *opaqueAgent) Broadcast(round int) core.Message       { return a.inner.Broadcast(round) }
func (a *opaqueAgent) Deliver(round int, msgs []core.Message) { a.inner.Deliver(round, msgs) }
func (a *opaqueAgent) Output() float64                        { return a.inner.Output() }
func (a *opaqueAgent) Clone() core.Agent                      { return &opaqueAgent{inner: a.inner.Clone()} }
