package valency_test

import (
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

// TestLemma5DiameterRealizingPair machine-checks Lemma 5: there exist two
// successor configurations G.C, H.C whose valency union realizes the full
// diameter of Y*(C). With interval estimates: the union of the two best
// successors' inner intervals must span (up to tolerance) the inner
// interval of C.
func TestLemma5DiameterRealizingPair(t *testing.T) {
	cases := []struct {
		name string
		m    *model.Model
		alg  core.Algorithm
		in   []float64
	}{
		{"two-thirds/H", model.TwoAgent(), algorithms.TwoThirds{}, []float64{0, 1}},
		{"midpoint/deafK3", model.DeafModel(graph.Complete(3)), algorithms.Midpoint{}, []float64{0, 1, 0.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			est := valency.NewEstimator(tc.m, 3, true)
			c := core.NewConfig(tc.alg, tc.in)
			parent := est.Inner(c)
			inners := est.SuccessorInners(c)
			best := 0.0
			for i := range inners {
				for j := i; j < len(inners); j++ {
					if d := inners[i].Union(inners[j]).Diameter(); d > best {
						best = d
					}
				}
			}
			if best < parent.Diameter()-1e-6 {
				t.Errorf("no successor pair spans δ(C): best union %v vs parent %v", best, parent.Diameter())
			}
		})
	}
}

// TestLemma20AlphaWitnessIntersection machine-checks Lemma 20: whenever
// G alpha_{N,K} H, the valencies of G.C and H.C intersect. The inner
// estimates witness the intersection (they only contain genuine limits).
func TestLemma20AlphaWitnessIntersection(t *testing.T) {
	m := model.DeafModel(graph.Complete(3))
	est := valency.NewEstimator(m, 3, true)
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1, 0.5})
	inners := est.SuccessorInners(c)
	eps := 100 * est.Tol
	checked := 0
	for i := 0; i < m.Size(); i++ {
		for j := i + 1; j < m.Size(); j++ {
			related := false
			for k := 0; k < m.Size(); k++ {
				if model.AlphaRelated(m.Graph(i), m.Graph(j), m.Graph(k)) {
					related = true
					break
				}
			}
			if !related {
				continue
			}
			checked++
			if !inners[i].Expand(eps).Intersects(inners[j]) {
				t.Errorf("alpha-related successors %d,%d have disjoint valencies %v vs %v",
					i, j, inners[i], inners[j])
			}
		}
	}
	if checked == 0 {
		t.Fatal("no alpha-related pair found; deaf model should have them all (D=1)")
	}
	// In deaf(G) every pair is one-step alpha-related (D = 1): all pairs
	// must have been checked.
	if want := m.Size() * (m.Size() - 1) / 2; checked != want {
		t.Errorf("checked %d pairs, want all %d", checked, want)
	}
}

// TestTheorem5ChainIntersections combines the two: along a Lemma 24
// alpha-chain in the AsyncChain model, consecutive successor valencies
// intersect — the inequality chain behind Theorem 5's (15).
func TestTheorem5ChainIntersections(t *testing.T) {
	m, err := model.AsyncChain(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	est := valency.NewEstimator(m, 0, true)
	est.Settle = 256
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1, 0.5, 0.25})
	inners := est.SuccessorInners(c)
	eps := 1e-6
	pairs, intersecting := 0, 0
	for i := 0; i < m.Size(); i++ {
		for j := i + 1; j < m.Size(); j++ {
			related := false
			for k := 0; k < m.Size(); k++ {
				if model.AlphaRelated(m.Graph(i), m.Graph(j), m.Graph(k)) {
					related = true
					break
				}
			}
			if !related {
				continue
			}
			pairs++
			if inners[i].Expand(eps).Intersects(inners[j]) {
				intersecting++
			}
		}
	}
	if pairs == 0 {
		t.Fatal("AsyncChain should contain alpha-related pairs")
	}
	if intersecting != pairs {
		t.Errorf("%d of %d alpha-related successor pairs intersect; Lemma 20 demands all", intersecting, pairs)
	}
}
