package valency_test

import (
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

// settleCases are model/algorithm/configuration triples covering dense
// settle loops with and without auxiliary planes, plus the non-dense
// fallback (opaque agents built by hand are exercised elsewhere).
func settleCases() []struct {
	name   string
	m      *model.Model
	alg    core.Algorithm
	inputs []float64
	convex bool
} {
	return []struct {
		name   string
		m      *model.Model
		alg    core.Algorithm
		inputs []float64
		convex bool
	}{
		{"twoagent/twothirds", model.TwoAgent(), algorithms.TwoThirds{}, []float64{0, 1}, true},
		{"deafK3/midpoint", model.DeafModel(graph.Complete(3)), algorithms.Midpoint{}, []float64{0, 1, 0.5}, true},
		{"deafK3/amortized", model.DeafModel(graph.Complete(3)), algorithms.AmortizedMidpoint{}, []float64{0, 1, 0.5}, true},
	}
}

// TestEngineDenseSettleMatchesAgents runs the full valency exploration
// under both backends and requires bit-identical intervals: the dense
// settle loop must be transparent, including its transposition-table
// pre-fill (same entries from the shared fingerprint encoding).
func TestEngineDenseSettleMatchesAgents(t *testing.T) {
	prev := core.SetDefaultBackend(core.BackendAgents)
	defer core.SetDefaultBackend(prev)
	for _, tc := range settleCases() {
		t.Run(tc.name, func(t *testing.T) {
			c := core.NewConfig(tc.alg, tc.inputs)
			for _, depth := range []int{0, 1, 2} {
				core.SetDefaultBackend(core.BackendAgents)
				engA := valency.NewEngine(tc.m, valency.DefaultParams(depth, tc.convex))
				innerA := engA.Inner(c)
				outerA := engA.Outer(c)

				core.SetDefaultBackend(core.BackendDense)
				engD := valency.NewEngine(tc.m, valency.DefaultParams(depth, tc.convex))
				innerD := engD.Inner(c)
				outerD := engD.Outer(c)

				if innerA != innerD {
					t.Fatalf("depth %d: Inner differs: agents %v, dense %v", depth, innerA, innerD)
				}
				if outerA != outerD {
					t.Fatalf("depth %d: Outer differs: agents %v, dense %v", depth, outerA, outerD)
				}
				statsA, statsD := engA.Stats(), engD.Stats()
				if statsA.LimitEntries != statsD.LimitEntries {
					t.Fatalf("depth %d: limit-table pre-fill differs: agents %d entries, dense %d",
						depth, statsA.LimitEntries, statsD.LimitEntries)
				}
			}
		})
	}
}

// TestEngineDenseSettleMatchesReference pins the dense-backed engine
// against the retained naive recursion — the end-to-end oracle.
func TestEngineDenseSettleMatchesReference(t *testing.T) {
	prev := core.SetDefaultBackend(core.BackendDense)
	defer core.SetDefaultBackend(prev)
	for _, tc := range settleCases() {
		t.Run(tc.name, func(t *testing.T) {
			c := core.NewConfig(tc.alg, tc.inputs)
			est := valency.NewEstimator(tc.m, 2, tc.convex)
			if got, want := est.Inner(c), est.ReferenceInner(c); got != want {
				t.Fatalf("dense engine Inner %v differs from naive reference %v", got, want)
			}
		})
	}
}

// TestLimitOfConstantDenseParity compares memoized constant-graph limits
// across backends graph by graph, including the cold (uncached) path.
func TestLimitOfConstantDenseParity(t *testing.T) {
	prev := core.SetDefaultBackend(core.BackendAgents)
	defer core.SetDefaultBackend(prev)
	for _, tc := range settleCases() {
		t.Run(tc.name, func(t *testing.T) {
			c := core.NewConfig(tc.alg, tc.inputs)
			for k := 0; k < tc.m.Size(); k++ {
				core.SetDefaultBackend(core.BackendAgents)
				limA, okA := valency.NewEngine(tc.m, valency.DefaultParams(2, tc.convex)).LimitOfConstant(c, k)
				core.SetDefaultBackend(core.BackendDense)
				limD, okD := valency.NewEngine(tc.m, valency.DefaultParams(2, tc.convex)).LimitOfConstant(c, k)
				if okA != okD || limA != limD {
					t.Fatalf("graph %d: limit differs: agents (%v,%v), dense (%v,%v)", k, limA, okA, limD, okD)
				}
			}
		})
	}
}
