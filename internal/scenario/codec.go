// Package scenario implements the compact deterministic binary codec for
// dynamic-network schedules: a finite prefix of per-round communication
// graphs followed by a loop that repeats forever (the "lasso" shape
// rho·lambda^omega in which every ultimately periodic schedule can be
// written; a finite schedule is a lasso with an empty loop).
//
// The format is designed for three properties the scenario plane depends
// on:
//
//   - Determinism: Encode is a pure function of (n, prefix, loop) — equal
//     schedules encode to equal bytes, so a schedule's identity is the
//     digest of its encoding (Fingerprint) and caches can key on it.
//   - Compactness: rounds reference a deduplicated graph table in
//     first-occurrence order, so a 10^6-round schedule over a handful of
//     distinct graphs costs one uvarint per round, not one mask row.
//   - Round-trip exactness: Decode(Encode(s)) reproduces the schedule
//     graph-for-graph, and Encode(Decode(b)) == b for every b Encode can
//     emit (asserted by FuzzTraceRoundTrip).
//
// Layout (all integers unsigned varints, per encoding/binary):
//
//	magic "RSC1" (n <= 64) or "RSC2" (n > 64)
//	n                                 agents (1..graph.MaxNodes)
//	prefixLen loopLen                 round counts
//	tableLen                          distinct graphs
//	table[tableLen]                   in-neighbor rows, one per node:
//	                                  one mask uvarint (RSC1) or
//	                                  graph.WordsFor(n) word uvarints,
//	                                  lowest word first (RSC2)
//	prefixIdx[prefixLen]              indices into the table
//	loopIdx[loopLen]                  indices into the table
//
// The version split keeps every schedule's canonical encoding unique:
// Encode emits RSC1 for n <= 64 — byte-identical to the pre-multi-word
// codec, so committed fingerprints and golden traces survive — and RSC2
// only for n > 64; Decode enforces the same boundary, rejecting an RSC2
// body that a canonical RSC1 encoding should carry and vice versa.
package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/graph"
)

// magic identifies the trace format; the trailing digit is the version.
// Version 1 carries one mask uvarint per node (n <= 64 only); version 2
// carries graph.WordsFor(n) word uvarints per node (n > 64 only).
const (
	magic   = "RSC1"
	magicV2 = "RSC2"
)

// MaxRounds bounds the prefix and loop lengths a trace may declare, so a
// corrupt or hostile header cannot demand an absurd allocation before the
// payload is validated.
const MaxRounds = 1 << 22

// Encode serializes a lasso schedule on n agents. It panics when a graph's
// node count disagrees with n — schedules are validated at construction,
// so a mismatch here is a programmer error.
func Encode(n int, prefix, loop []graph.Graph) []byte {
	if n < 1 || n > graph.MaxNodes {
		panic(fmt.Sprintf("scenario: invalid agent count %d", n))
	}
	// Deduplicate graphs in first-occurrence order across prefix then
	// loop. The dedup key is the raw little-endian mask row — cheaper by
	// an order of magnitude than graph.Key()'s formatted string, which
	// matters because encoding (and therefore fingerprinting) sits on
	// the session-construction path of scenario sweeps. Schedules hold
	// one Graph value per round and epoch-style generators repeat it for
	// whole stretches, so a constant-time identity check against the
	// previous round (graph.Same) skips the keying entirely on the
	// common consecutive-repeat case.
	table := make([]graph.Graph, 0, 8)
	index := make(map[string]int, 8)
	keyBuf := make([]byte, 0, n*8)
	var prev graph.Graph
	prevIdx := -1
	lookup := func(g graph.Graph) int {
		if g.N() != n {
			panic(fmt.Sprintf("scenario: graph on %d nodes in schedule of %d agents", g.N(), n))
		}
		if prevIdx >= 0 && g.Same(prev) {
			return prevIdx
		}
		keyBuf = g.AppendMaskKey(keyBuf[:0])
		i, ok := index[string(keyBuf)]
		if !ok {
			i = len(table)
			index[string(keyBuf)] = i
			table = append(table, g)
		}
		prev, prevIdx = g, i
		return i
	}
	prefixIdx := make([]int, len(prefix))
	for i, g := range prefix {
		prefixIdx[i] = lookup(g)
	}
	loopIdx := make([]int, len(loop))
	for i, g := range loop {
		loopIdx[i] = lookup(g)
	}

	w := graph.WordsFor(n)
	buf := make([]byte, 0, 16+len(table)*n*w+len(prefixIdx)+len(loopIdx))
	if w == 1 {
		buf = append(buf, magic...)
	} else {
		buf = append(buf, magicV2...)
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(len(prefixIdx)))
	buf = binary.AppendUvarint(buf, uint64(len(loopIdx)))
	buf = binary.AppendUvarint(buf, uint64(len(table)))
	for _, g := range table {
		if w == 1 {
			for i := 0; i < n; i++ {
				buf = binary.AppendUvarint(buf, g.InMask(i))
			}
			continue
		}
		for i := 0; i < n; i++ {
			for _, word := range g.InRow(i) {
				buf = binary.AppendUvarint(buf, word)
			}
		}
	}
	for _, i := range prefixIdx {
		buf = binary.AppendUvarint(buf, uint64(i))
	}
	for _, i := range loopIdx {
		buf = binary.AppendUvarint(buf, uint64(i))
	}
	return buf
}

// decoder walks an encoded trace.
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, k := binary.Uvarint(d.data[d.pos:])
	if k <= 0 {
		return 0, fmt.Errorf("scenario: truncated or malformed %s at byte %d", what, d.pos)
	}
	d.pos += k
	return v, nil
}

// Decode parses an encoded trace back into (n, prefix, loop). Every mask
// row is validated through graph.FromInMasks / graph.FromInWords
// (self-loops mandatory, no bits beyond n), and trailing bytes after the
// payload are rejected. The agent count must match the version's range —
// RSC1 carries n <= 64, RSC2 n > 64 — so every decodable trace is the
// canonical encoding of its schedule and Encode(Decode(b)) == b.
func Decode(data []byte) (n int, prefix, loop []graph.Graph, err error) {
	v2 := false
	switch {
	case len(data) >= len(magic) && string(data[:len(magic)]) == magic:
	case len(data) >= len(magicV2) && string(data[:len(magicV2)]) == magicV2:
		v2 = true
	default:
		return 0, nil, nil, fmt.Errorf("scenario: bad magic (want %q or %q)", magic, magicV2)
	}
	d := &decoder{data: data, pos: len(magic)}
	nv, err := d.uvarint("agent count")
	if err != nil {
		return 0, nil, nil, err
	}
	if nv < 1 || nv > graph.MaxNodes {
		return 0, nil, nil, fmt.Errorf("scenario: invalid agent count %d (want 1..%d)", nv, graph.MaxNodes)
	}
	if !v2 && nv > 64 {
		return 0, nil, nil, fmt.Errorf("scenario: RSC1 traces carry at most 64 agents, got %d", nv)
	}
	if v2 && nv <= 64 {
		return 0, nil, nil, fmt.Errorf("scenario: RSC2 trace with %d agents; canonical encodings of n <= 64 are RSC1", nv)
	}
	n = int(nv)
	prefixLen, err := d.uvarint("prefix length")
	if err != nil {
		return 0, nil, nil, err
	}
	loopLen, err := d.uvarint("loop length")
	if err != nil {
		return 0, nil, nil, err
	}
	if prefixLen > MaxRounds || loopLen > MaxRounds {
		return 0, nil, nil, fmt.Errorf("scenario: schedule of %d+%d rounds exceeds the %d-round cap", prefixLen, loopLen, MaxRounds)
	}
	tableLen, err := d.uvarint("table length")
	if err != nil {
		return 0, nil, nil, err
	}
	// Every table entry is referenced at least once in a canonical
	// encoding, so the table can never be larger than the round count.
	if tableLen > prefixLen+loopLen {
		return 0, nil, nil, fmt.Errorf("scenario: %d table entries for %d rounds", tableLen, prefixLen+loopLen)
	}
	// The declared counts must fit the bytes actually present — every
	// table entry needs at least one payload byte per row word and every
	// round index at least one — so a tiny body with an absurd header is
	// rejected here, before the header sizes any allocation. (Counts are
	// capped above, so this sum cannot overflow.)
	w := graph.WordsFor(n)
	if need := tableLen*uint64(n*w) + prefixLen + loopLen; need > uint64(len(data)-d.pos) {
		return 0, nil, nil, fmt.Errorf("scenario: header declares %d payload bytes but %d remain", need, len(data)-d.pos)
	}
	table := make([]graph.Graph, tableLen)
	words := make([]uint64, n*w)
	for t := range table {
		for i := range words {
			m, err := d.uvarint("graph mask")
			if err != nil {
				return 0, nil, nil, err
			}
			words[i] = m
		}
		var g graph.Graph
		if v2 {
			g, err = graph.FromInWords(n, words)
		} else {
			g, err = graph.FromInMasks(n, words)
		}
		if err != nil {
			return 0, nil, nil, err
		}
		table[t] = g
	}
	readRounds := func(count uint64, what string) ([]graph.Graph, error) {
		out := make([]graph.Graph, count)
		for i := range out {
			idx, err := d.uvarint(what)
			if err != nil {
				return nil, err
			}
			if idx >= tableLen {
				return nil, fmt.Errorf("scenario: %s references graph %d of %d", what, idx, tableLen)
			}
			out[i] = table[idx]
		}
		return out, nil
	}
	if prefix, err = readRounds(prefixLen, "prefix round"); err != nil {
		return 0, nil, nil, err
	}
	if loop, err = readRounds(loopLen, "loop round"); err != nil {
		return 0, nil, nil, err
	}
	if d.pos != len(data) {
		return 0, nil, nil, fmt.Errorf("scenario: %d trailing bytes after payload", len(data)-d.pos)
	}
	return n, prefix, loop, nil
}

// Fingerprint returns the hex SHA-256 digest of the canonical encoding —
// the schedule's identity for caches and replay verification.
func Fingerprint(n int, prefix, loop []graph.Graph) string {
	sum := sha256.Sum256(Encode(n, prefix, loop))
	return hex.EncodeToString(sum[:])
}
