package scenario

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomSchedule derives a schedule shape deterministically from a seed:
// random n, random prefix/loop lengths, and random graphs with repetition
// (so the dedup table is exercised).
func randomSchedule(seed int64) (n int, prefix, loop []graph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	n = 1 + rng.Intn(8)
	distinct := make([]graph.Graph, 1+rng.Intn(5))
	for i := range distinct {
		distinct[i] = graph.Random(rng, n, rng.Float64())
	}
	pick := func(count int) []graph.Graph {
		out := make([]graph.Graph, count)
		for i := range out {
			out[i] = distinct[rng.Intn(len(distinct))]
		}
		return out
	}
	return n, pick(rng.Intn(20)), pick(rng.Intn(10))
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		n, prefix, loop := randomSchedule(seed)
		enc := Encode(n, prefix, loop)
		dn, dp, dl, err := Decode(enc)
		if err != nil {
			t.Fatalf("seed %d: decode failed: %v", seed, err)
		}
		if dn != n || len(dp) != len(prefix) || len(dl) != len(loop) {
			t.Fatalf("seed %d: shape mismatch: got n=%d |p|=%d |l|=%d", seed, dn, len(dp), len(dl))
		}
		for i := range prefix {
			if !dp[i].Equal(prefix[i]) {
				t.Fatalf("seed %d: prefix round %d differs", seed, i+1)
			}
		}
		for i := range loop {
			if !dl[i].Equal(loop[i]) {
				t.Fatalf("seed %d: loop round %d differs", seed, i+1)
			}
		}
		// Canonical: re-encoding the decode reproduces the bytes.
		if !bytes.Equal(Encode(dn, dp, dl), enc) {
			t.Fatalf("seed %d: re-encode is not byte-identical", seed)
		}
	}
}

func TestFingerprintIdentity(t *testing.T) {
	n, prefix, loop := randomSchedule(7)
	a := Fingerprint(n, prefix, loop)
	b := Fingerprint(n, prefix, loop)
	if a != b {
		t.Fatalf("fingerprint not deterministic: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(a))
	}
	// Any change to the schedule changes the fingerprint.
	if len(prefix) > 0 {
		if c := Fingerprint(n, prefix[:len(prefix)-1], loop); c == a {
			t.Fatal("dropping a round did not change the fingerprint")
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	n, prefix, loop := randomSchedule(3)
	enc := Encode(n, prefix, loop)
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     append([]byte("XXXX"), enc[4:]...),
		"truncated":     enc[:len(enc)-1],
		"trailing junk": append(append([]byte{}, enc...), 0),
	}
	for name, data := range cases {
		if _, _, _, err := Decode(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestDecodeRejectsOversizedHeader(t *testing.T) {
	// Header declaring MaxRounds+1 prefix rounds must be rejected before
	// any allocation of that size.
	buf := []byte(magic)
	buf = appendUvarint(buf, 2)            // n
	buf = appendUvarint(buf, MaxRounds+1)  // prefixLen
	buf = appendUvarint(buf, 0)            // loopLen
	buf = appendUvarint(buf, 0)            // tableLen
	if _, _, _, err := Decode(buf); err == nil {
		t.Fatal("oversized header accepted")
	}
}

func TestDecodeRejectsMissingSelfLoop(t *testing.T) {
	buf := []byte(magic)
	buf = appendUvarint(buf, 2) // n
	buf = appendUvarint(buf, 1) // prefixLen
	buf = appendUvarint(buf, 0) // loopLen
	buf = appendUvarint(buf, 1) // tableLen
	buf = appendUvarint(buf, 0) // node 0 mask: no self-loop
	buf = appendUvarint(buf, 2) // node 1 mask
	buf = appendUvarint(buf, 0) // prefix round 0
	if _, _, _, err := Decode(buf); err == nil {
		t.Fatal("graph without self-loop accepted")
	}
}

// appendUvarint mirrors binary.AppendUvarint without the import noise.
func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}
