package scenario

import (
	"bytes"
	"testing"
)

// FuzzTraceRoundTrip drives the codec from both ends. Structured inputs
// (a seed expanded into a random schedule by the same generator the unit
// tests use) must round-trip Encode -> Decode graph-exactly and re-encode
// byte-identically; arbitrary bytes that happen to Decode must re-encode
// to something that decodes back to the same schedule (the codec never
// "repairs" a trace into a different one).
func FuzzTraceRoundTrip(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		n, prefix, loop := randomSchedule(seed)
		f.Add(Encode(n, prefix, loop))
	}
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, prefix, loop, err := Decode(data)
		if err != nil {
			return
		}
		enc := Encode(n, prefix, loop)
		n2, p2, l2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encode of a decoded trace does not decode: %v", err)
		}
		if n2 != n || len(p2) != len(prefix) || len(l2) != len(loop) {
			t.Fatalf("round trip changed the shape: n %d->%d, prefix %d->%d, loop %d->%d",
				n, n2, len(prefix), len(p2), len(loop), len(l2))
		}
		for i := range prefix {
			if !p2[i].Equal(prefix[i]) {
				t.Fatalf("round trip changed prefix round %d", i+1)
			}
		}
		for i := range loop {
			if !l2[i].Equal(loop[i]) {
				t.Fatalf("round trip changed loop round %d", i+1)
			}
		}
		// Canonical encodings are a fixed point: encoding the decode of
		// enc must reproduce enc.
		if !bytes.Equal(Encode(n2, p2, l2), enc) {
			t.Fatal("canonical encoding is not a fixed point")
		}
		if Fingerprint(n, prefix, loop) != Fingerprint(n2, p2, l2) {
			t.Fatal("fingerprint changed across the round trip")
		}
	})
}
