package scenario

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// FuzzTraceRoundTrip drives the codec from both ends. Structured inputs
// (a seed expanded into a random schedule by the same generator the unit
// tests use) must round-trip Encode -> Decode graph-exactly and re-encode
// byte-identically; arbitrary bytes that happen to Decode must re-encode
// to something that decodes back to the same schedule (the codec never
// "repairs" a trace into a different one).
func FuzzTraceRoundTrip(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		n, prefix, loop := randomSchedule(seed)
		f.Add(Encode(n, prefix, loop))
	}
	// Multi-word seeds: RSC2 canonical round-trips at and past every
	// word boundary the codec can cross.
	for _, n := range []int{65, 127, 128, 256} {
		rng := rand.New(rand.NewSource(int64(n)))
		distinct := []graph.Graph{
			graph.Random(rng, n, 0.3),
			graph.Random(rng, n, 0.7),
		}
		prefix := []graph.Graph{distinct[0], distinct[1], distinct[0]}
		loop := []graph.Graph{distinct[1]}
		f.Add(Encode(n, prefix, loop))
	}
	// Version-boundary bytes: an RSC1 header declaring n > 64 and an
	// RSC2 header declaring n <= 64 must both be rejected, never
	// reinterpreted (the fuzz body then just returns — the seed's value
	// is forcing the mutator through the version check).
	f.Add(binary.AppendUvarint([]byte(magic), 65))
	f.Add(binary.AppendUvarint([]byte(magicV2), 4))
	f.Add([]byte(magic))
	f.Add([]byte(magicV2))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, prefix, loop, err := Decode(data)
		if err != nil {
			return
		}
		enc := Encode(n, prefix, loop)
		n2, p2, l2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encode of a decoded trace does not decode: %v", err)
		}
		if n2 != n || len(p2) != len(prefix) || len(l2) != len(loop) {
			t.Fatalf("round trip changed the shape: n %d->%d, prefix %d->%d, loop %d->%d",
				n, n2, len(prefix), len(p2), len(loop), len(l2))
		}
		for i := range prefix {
			if !p2[i].Equal(prefix[i]) {
				t.Fatalf("round trip changed prefix round %d", i+1)
			}
		}
		for i := range loop {
			if !l2[i].Equal(loop[i]) {
				t.Fatalf("round trip changed loop round %d", i+1)
			}
		}
		// Canonical encodings are a fixed point: encoding the decode of
		// enc must reproduce enc.
		if !bytes.Equal(Encode(n2, p2, l2), enc) {
			t.Fatal("canonical encoding is not a fixed point")
		}
		if Fingerprint(n, prefix, loop) != Fingerprint(n2, p2, l2) {
			t.Fatal("fingerprint changed across the round trip")
		}
	})
}
