package exp

import (
	"math/rand"
	"sort"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

func init() {
	register(Experiment{
		ID:    "X/topology",
		Title: "Theorem 4 dichotomy: valency topology vs exact-consensus solvability",
		Paper: "Theorem 4 (Section 7)",
		Run:   runXTopology,
	})
}

// runXTopology makes Theorem 4's dichotomy visible: exact consensus is
// solvable iff some asymptotic consensus algorithm has valencies that are
// singletons or disconnected for every initial configuration.
//
//   - Solvable side: a common-root model with the FloodRoot algorithm —
//     every reachable limit equals the root's input, so the sampled
//     valency is a singleton.
//   - Unsolvable side: {H0,H1,H2} with any convex algorithm — Lemma 21 +
//     the connectedness argument force a nontrivial interval. Sampling
//     limits over random pattern prefixes shows the reachable limits fill
//     the interval: the largest gap between consecutive sampled limits
//     shrinks as the sample grows (a connected set has no persistent gap).
func runXTopology() *Table {
	t := &Table{
		ID:     "X/topology",
		Title:  "sampled valency structure of solvable vs unsolvable models",
		Paper:  "Theorem 4: Y* singleton/disconnected iff exact consensus solvable",
		Header: []string{"model", "algorithm", "samples", "distinct limits", "span", "largest interior gap"},
	}

	// Solvable: FloodRoot on a common-root model.
	solvable := model.MustNew(
		graph.Star(4, 0),
		graph.MustFromEdges(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}),
	)
	limitsS := sampleLimits(solvable, algorithms.FloodRoot{Root: 0}, []float64{0.25, 1, 0, 0.5}, 200, 40)
	t.AddRow("common-root (solvable)", "flood-root(0)", 200, distinct(limitsS), span(limitsS), largestGap(limitsS))

	// Unsolvable: the two-agent model under two different convex
	// algorithms; the limits fill [0, 1].
	unsolvable := model.TwoAgent()
	for _, alg := range []core.Algorithm{algorithms.TwoThirds{}, algorithms.Midpoint{}} {
		limitsU := sampleLimits(unsolvable, alg, []float64{0, 1}, 600, 12)
		t.AddRow("{H0,H1,H2} (unsolvable)", alg.Name(), 600, distinct(limitsU), span(limitsU), largestGap(limitsU))
	}

	t.Notes = append(t.Notes,
		"solvable + exact algorithm: one distinct limit — a singleton valency, as Theorem 4's (⇒) direction constructs",
		"unsolvable: hundreds of distinct limits spanning [0,1] with shrinking gaps — a connected nontrivial valency, Theorem 4's (⇐) contradiction witness",
		"limits are sampled as random pattern prefixes followed by constant-graph tails (genuine members of Y*)")
	return t
}

// sampleLimits draws random pattern prefixes of the given length and
// finishes each with a constant-graph tail, returning the sampled
// reachable limits (sorted).
func sampleLimits(m *model.Model, alg core.Algorithm, inputs []float64, samples, prefixLen int) []float64 {
	rng := rand.New(rand.NewSource(424242))
	est := valency.NewEstimator(m, 0, alg.Convex())
	var out []float64
	for s := 0; s < samples; s++ {
		c := core.NewConfig(alg, inputs)
		for r := 0; r < prefixLen; r++ {
			c = c.Step(m.Graph(rng.Intn(m.Size())))
		}
		if limit, ok := est.LimitOfConstant(c, rng.Intn(m.Size())); ok {
			out = append(out, limit)
		}
	}
	sort.Float64s(out)
	return out
}

func distinct(sorted []float64) int {
	const tol = 1e-9
	count := 0
	for i, v := range sorted {
		if i == 0 || v-sorted[i-1] > tol {
			count++
		}
	}
	return count
}

func span(sorted []float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[len(sorted)-1] - sorted[0]
}

func largestGap(sorted []float64) float64 {
	gap := 0.0
	for i := 1; i < len(sorted); i++ {
		if g := sorted[i] - sorted[i-1]; g > gap {
			gap = g
		}
	}
	return gap
}
