package exp_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
)

// TestExperimentsBackendParity is the tentpole's end-to-end differential
// gate: every registered experiment — every Table 1 cell, figure, and
// decision-time theorem — must render the exact same table under the
// Agent backend and under the dense struct-of-arrays backend.
func TestExperimentsBackendParity(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-scale; skipped with -short")
	}
	prev := core.CurrentBackend()
	defer core.SetDefaultBackend(prev)
	for _, e := range exp.All() {
		e := e
		t.Run(strings.ReplaceAll(e.ID, "/", "_"), func(t *testing.T) {
			core.SetDefaultBackend(core.BackendAgents)
			agents := e.Run().Render()
			core.SetDefaultBackend(core.BackendDense)
			dense := e.Run().Render()
			if agents != dense {
				t.Fatalf("experiment %s renders differently across backends\n--- agents ---\n%s\n--- dense ---\n%s",
					e.ID, agents, dense)
			}
		})
	}
}
