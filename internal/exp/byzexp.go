package exp

import (
	"math/rand"

	"repro/internal/byzantine"
)

func init() {
	register(Experiment{
		ID:    "X/byzantine",
		Title: "Dolev et al. synchronous Byzantine baseline: cautious 1/2 and the 3f+1 cliff",
		Paper: "related work [14]/[19]: round-by-round 1/2 for cautious algorithms; resilience n > 3f",
		Run:   runXByzantine,
	})
}

// runXByzantine reproduces the classical synchronous Byzantine baseline
// the paper's story departs from: the trimmed-midpoint ("cautious")
// update contracts by exactly 1/2 per round whenever n > 3f, against
// every implemented Byzantine strategy — and collapses (zero contraction)
// at n <= 3f under the split attack, the Fischer-Lynch-Merritt
// resilience cliff.
func runXByzantine() *Table {
	t := &Table{
		ID:     "X/byzantine",
		Title:  "trimmed-midpoint contraction under Byzantine strategies",
		Paper:  "reference [14]: cautious round contraction 1/2, tight; [19]: n > 3f needed",
		Header: []string{"n", "f", "n>3f", "strategy", "worst round ratio", "converged (10 rounds)"},
	}
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}, {3, 1}, {6, 2}}
	strategies := []byzantine.Strategy{
		byzantine.Echo{Value: 1e6},
		byzantine.Split{Magnitude: 1e6},
		byzantine.Mirror{},
	}
	for _, tc := range cases {
		for _, strat := range strategies {
			inputs := make([]float64, tc.n)
			for i := range inputs {
				inputs[i] = rng.Float64()
			}
			// Deterministic Byzantine placement: the last f agents.
			byzSet := make([]int, tc.f)
			for k := range byzSet {
				byzSet[k] = tc.n - 1 - k
			}
			sys, err := byzantine.NewSystem(inputs, byzSet, strat)
			if err != nil {
				panic(err)
			}
			diams := sys.Run(10)
			worst := 0.0
			for r := 1; r < len(diams); r++ {
				if diams[r-1] > 0 {
					if ratio := diams[r] / diams[r-1]; ratio > worst {
						worst = ratio
					}
				}
			}
			t.AddRow(tc.n, tc.f, tc.n > 3*tc.f, strat.Name(), worst, diams[len(diams)-1] < 1e-3*diams[0])
		}
	}
	t.Notes = append(t.Notes,
		"n > 3f rows: worst ratio <= 1/2 against every strategy — the cautious bound of [14]",
		"n <= 3f rows: the split strategy pins the worst ratio at 1 (no convergence) — the [19] resilience cliff",
		"this classical baseline is what made the paper's algorithm-independent lower bounds an open problem")
	appendAsyncByzantine(t, rng)
	return t
}

// appendAsyncByzantine adds the asynchronous-round rows: quorums of n-f
// values with adversarial composition; convergence for n > 5f (the [14]
// regime the paper cites after Theorem 6) and pinning at n = 5f.
func appendAsyncByzantine(t *Table, rng *rand.Rand) {
	cases := []struct{ n, f int }{{6, 1}, {11, 2}, {5, 1}}
	for _, tc := range cases {
		inputs := make([]float64, tc.n)
		for i := range inputs {
			inputs[i] = rng.Float64()
		}
		if tc.n == 5 {
			// The explicit pinning construction at n = 5f.
			inputs = []float64{0, 0, 1, 1, 99}
		}
		byzSet := make([]int, tc.f)
		for k := range byzSet {
			byzSet[k] = tc.n - 1 - k
		}
		sys, err := byzantine.NewAsyncSystem(inputs, byzSet,
			byzantine.Split{Magnitude: 1e6}, byzantine.SplitQuorums{})
		if err != nil {
			panic(err)
		}
		diams := sys.Run(10)
		worst := 0.0
		for r := 1; r < len(diams); r++ {
			if diams[r-1] > 0 {
				if ratio := diams[r] / diams[r-1]; ratio > worst {
					worst = ratio
				}
			}
		}
		t.AddRow(tc.n, tc.f, tc.n > 5*tc.f, "async split+quorums", worst, diams[len(diams)-1] < 1e-3*diams[0])
	}
	t.Notes = append(t.Notes,
		"async rows: the n>3f column reads n>5f — the asynchronous resilience regime of [14]; n = 5f pins at ratio 1")
}
