package exp

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

func init() {
	register(Experiment{
		ID:    "S/curves",
		Title: "convergence curves: value diameter and certified δ-floor per round",
		Paper: "the decay series behind every Table 1 cell, as a plottable table",
		Run:   runSeriesCurves,
	})
}

// runSeriesCurves emits, for each canonical (model, algorithm) pair, the
// per-round value diameter Δ(y(t)) and the certified valency floor
// δ(C_t) under the greedy adversary — the data a systems paper would plot
// as its convergence figures.
func runSeriesCurves() *Table {
	t := &Table{
		ID:     "S/curves",
		Title:  "Δ(y(t)) and δ-floor(t) under the greedy adversary",
		Paper:  "decay series for Table 1; columns are plottable as figures",
		Header: []string{"model", "algorithm", "t", "Δ(y(t))", "δ-floor(t)", "paper floor γ^t"},
	}
	type setting struct {
		name   string
		m      *model.Model
		alg    core.Algorithm
		gamma  float64
		depth  int
		rounds int
		inputs []float64
	}
	settings := []setting{
		{"{H0,H1,H2}", model.TwoAgent(), algorithms.TwoThirds{}, 1.0 / 3.0, 5, 6, []float64{0, 1}},
		{"{H0,H1,H2}", model.TwoAgent(), algorithms.Midpoint{}, 1.0 / 3.0, 5, 6, []float64{0, 1}},
		{"deaf(K3)", model.DeafModel(graph.Complete(3)), algorithms.Midpoint{}, 0.5, 3, 5, []float64{0, 1, 0.5}},
		{"deaf(K3)", model.DeafModel(graph.Complete(3)), algorithms.Mean{}, 0.5, 3, 5, []float64{0, 1, 0.5}},
	}
	for _, s := range settings {
		est := valency.NewEstimator(s.m, s.depth, s.alg.Convex())
		adv := &adversary.Greedy{Est: est}
		c := core.NewConfig(s.alg, s.inputs)
		gammaT := 1.0
		t.AddRow(s.name, s.alg.Name(), 0, c.Diameter(), est.DeltaLower(c), gammaT)
		for round := 1; round <= s.rounds; round++ {
			c = c.Step(adv.Next(round, c))
			gammaT *= s.gamma
			t.AddRow(s.name, s.alg.Name(), round, c.Diameter(), est.DeltaLower(c), gammaT)
		}
	}
	t.Notes = append(t.Notes,
		"δ-floor(t) >= γ^t in every row: the proven decay floors hold along the whole execution",
		fmt.Sprintf("export for plotting with: go run ./cmd/paperbench -run S/curves -format csv"))
	return t
}
