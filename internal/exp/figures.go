package exp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

// newRNG returns a deterministic RNG for experiment workloads.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func init() {
	register(Experiment{
		ID:    "F1/twoagent",
		Title: "Figure 1 graphs and the n=2 execution-tree δ decay",
		Paper: "Figure 1; proof of Theorem 1 (execution construction, Eq. (2))",
		Run:   runF1,
	})
	register(Experiment{
		ID:    "F2/psi",
		Title: "Figure 2 Psi graphs and Lemma 14 indistinguishability",
		Paper: "Figure 2; Lemma 14; Section 6",
		Run:   runF2,
	})
	register(Experiment{
		ID:    "X/product",
		Title: "substrate check: products of n-1 rooted graphs are non-split",
		Paper: "Section 1 (property (ii), Charron-Bost et al. ICALP'15)",
		Run:   runXProduct,
	})
	register(Experiment{
		ID:    "X/continuity",
		Title: "continuity of the consensus function of convex algorithms",
		Paper: "Theorem 2 (Section 2.2)",
		Run:   runXContinuity,
	})
}

func runF1() *Table {
	t := &Table{
		ID:     "F1/twoagent",
		Title:  "δ(C_t) along the adversarial execution, two-thirds algorithm",
		Paper:  "Figure 1 + Theorem 1: δ(C_t) >= δ(C_0)/3^t",
		Header: []string{"t", "graph played", "inner δ(C_t)", "floor 1/3^t", "floor holds"},
	}
	for k, g := range graph.HFamily() {
		t.Notes = append(t.Notes, fmt.Sprintf("H%d = %v (roots %v)", k, g, graph.MaskToNodes(g.Roots())))
	}
	m := model.TwoAgent()
	est := valency.NewEstimator(m, 5, true)
	var decisions []adversary.Decision
	adv := &adversary.Greedy{Est: est, Trace: &decisions}
	c := core.NewConfig(algorithms.TwoThirds{}, []float64{0, 1})
	t.AddRow(0, "-", est.DeltaLower(c), 1.0, true)
	for round := 1; round <= 7; round++ {
		g := adv.Next(round, c)
		c = c.Step(g)
		floor := math.Pow(1.0/3.0, float64(round))
		inner := est.DeltaLower(c)
		t.AddRow(round, fmt.Sprintf("H%d", m.Index(g)), inner, floor, inner >= floor-1e-6)
	}
	return t
}

func runF2() *Table {
	t := &Table{
		ID:     "F2/psi",
		Title:  "Psi graph structure and sigma-block indistinguishability",
		Paper:  "Figure 2 + Lemma 14: σ_i.C ~_ℓ σ_j.C for ℓ ∉ {i,j}",
		Header: []string{"n", "Psi_i rooted at i only", "deaf trio agent", "Lemma 14 holds (midpoint)", "Lemma 14 holds (amortized)"},
	}
	for _, n := range []int{4, 5, 6, 7, 8} {
		rootedOK, deafOK := true, true
		for i := 0; i < 3; i++ {
			psi := graph.Psi(n, i)
			if psi.Roots() != 1<<uint(i) {
				rootedOK = false
			}
			if !psi.IsDeaf(i) {
				deafOK = false
			}
		}
		check := func(alg core.Algorithm) bool {
			inputs := make([]float64, n)
			for i := range inputs {
				inputs[i] = float64(i+1) / float64(n)
			}
			c := core.NewConfig(alg, inputs)
			ends := [3]*core.Config{}
			for i := 0; i < 3; i++ {
				ends[i] = c.StepAll(graph.SigmaBlock(n, i))
			}
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					if i == j {
						continue
					}
					for l := 0; l < 3; l++ {
						if l != i && l != j && ends[i].Output(l) != ends[j].Output(l) {
							return false
						}
					}
				}
			}
			return true
		}
		t.AddRow(n, rootedOK, deafOK, check(algorithms.Midpoint{}), check(algorithms.AmortizedMidpoint{}))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("example: Psi(6,0) = %v", graph.Psi(6, 0)),
		"Lemma 14 is what lets the Theorem 3 adversary hide its block choice from the surviving trio agent")
	return t
}

func runXProduct() *Table {
	t := &Table{
		ID:     "X/product",
		Title:  "products of n-1 random rooted graphs are non-split",
		Paper:  "Section 1, property (ii) of non-split graphs (ICALP'15 substrate)",
		Header: []string{"n", "trials", "all products non-split"},
	}
	rng := newRNG(1234)
	for _, n := range []int{3, 4, 5, 6, 7, 8} {
		trials := 200
		ok := true
		for trial := 0; trial < trials; trial++ {
			gs := make([]graph.Graph, n-1)
			for i := range gs {
				gs[i] = graph.RandomRooted(rng, n, 0.3)
			}
			if !graph.ProductAll(gs...).IsNonSplit() {
				ok = false
				break
			}
		}
		t.AddRow(n, trials, ok)
	}
	t.Notes = append(t.Notes,
		"this substrate theorem is why the amortized midpoint halves its range once per n-1 rounds in any rooted model")
	return t
}

func runXContinuity() *Table {
	t := &Table{
		ID:     "X/continuity",
		Title:  "consensus-function continuity: perturbing the pattern tail",
		Paper:  "Theorem 2 (Section 2.2): convex combination algorithms have continuous consensus functions",
		Header: []string{"shared prefix", "|y*(E) - y*(E_s)| (midpoint)", "|y*(E) - y*(E_s)| (mean)"},
	}
	// Reference execution E: cycle through the deaf(K3) graphs. Perturbed
	// executions E_s share a prefix of length s and then switch to a
	// different constant suffix. As s grows, the limits must converge —
	// exactly the ε/3 argument of the paper's proof.
	m := model.DeafModel(graph.Complete(3))
	inputs := []float64{0, 1, 0.4}
	limit := func(alg core.Algorithm, prefix int) (ref, pert float64) {
		refSrc := core.Func(func(round int, _ *core.Config) graph.Graph {
			return m.Graph((round - 1) % m.Size())
		})
		pertSrc := core.Func(func(round int, _ *core.Config) graph.Graph {
			if round <= prefix {
				return m.Graph((round - 1) % m.Size())
			}
			return m.Graph(0) // constant deaf-at-0 suffix
		})
		const rounds = 200
		trRef := core.Run(alg, inputs, refSrc, rounds)
		trPert := core.Run(alg, inputs, pertSrc, rounds)
		refLo, refHi := core.Hull(trRef.Outputs[rounds])
		pertLo, pertHi := core.Hull(trPert.Outputs[rounds])
		return (refLo + refHi) / 2, (pertLo + pertHi) / 2
	}
	for _, prefix := range []int{0, 2, 4, 8, 16, 32} {
		r1, p1 := limit(algorithms.Midpoint{}, prefix)
		r2, p2 := limit(algorithms.Mean{}, prefix)
		t.AddRow(prefix, math.Abs(r1-p1), math.Abs(r2-p2))
	}
	t.Notes = append(t.Notes,
		"distances shrink geometrically with the shared prefix length: the consensus function is continuous",
		"the paper notes non-convex algorithms may have discontinuous consensus functions; convexity is essential")
	return t
}
