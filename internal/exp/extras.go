package exp

import (
	"math"

	"repro/internal/adversary"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

func init() {
	register(Experiment{
		ID:    "X/failuremodels",
		Title: "classical failure models generate non-split round graphs",
		Paper: "Section 1, property (i) of non-split graphs",
		Run:   runXFailureModels,
	})
	register(Experiment{
		ID:    "A/adversary",
		Title: "ablation: greedy valency-splitting adversary vs benign schedulers",
		Paper: "proofs of Theorems 1 and 2 (why the adversary is needed)",
		Run:   runAblationAdversary,
	})
	register(Experiment{
		ID:    "A/depth",
		Title: "ablation: valency estimator depth vs bound quality",
		Paper: "Section 3 (valency as execution-tree exploration)",
		Run:   runAblationDepth,
	})
}

func runXFailureModels() *Table {
	t := &Table{
		ID:     "X/failuremodels",
		Title:  "per-round graphs of classical benign failure models",
		Paper:  "Section 1 (i): crashes, send omissions, async minority crashes yield non-split graphs",
		Header: []string{"failure model", "n", "trials", "all non-split", "all rooted", "midpoint worst ratio"},
	}
	type gen struct {
		name string
		make func(n int) graph.Graph
	}
	rng := newRNG(2024)
	gens := []gen{
		{"synchronous crashes", func(n int) graph.Graph {
			// Up to ⌊(n-1)/2⌋ prior crashes plus up to ⌊(n-1)/2⌋ crashing
			// this round, always leaving a correct agent.
			return graph.RandomSynchronousCrashRound(rng, n, (n-1)/2, (n-1)/2)
		}},
		{"send omissions", func(n int) graph.Graph {
			return graph.RandomSendOmissionRound(rng, n, n-1)
		}},
		{"async minority crashes", func(n int) graph.Graph {
			return graph.RandomAsyncMinorityCrashRound(rng, n, (n-1)/2)
		}},
	}
	for _, g := range gens {
		for _, n := range []int{4, 6} {
			const trials = 150
			nonsplit, rooted := true, true
			pool := make([]graph.Graph, 0, trials)
			for trial := 0; trial < trials; trial++ {
				gr := g.make(n)
				nonsplit = nonsplit && gr.IsNonSplit()
				rooted = rooted && gr.IsRooted()
				pool = append(pool, gr)
			}
			inputs := make([]float64, n)
			for i := range inputs {
				inputs[i] = float64(i) / float64(n-1)
			}
			tr := core.Run(algorithms.Midpoint{}, inputs, core.Cycle{Graphs: pool}, trials)
			t.AddRow(g.name, n, trials, nonsplit, rooted, tr.WorstRoundRatio())
		}
	}
	t.Notes = append(t.Notes,
		"non-splitness is what transfers the paper's 1/2 bound (Theorem 2) to these classical systems",
		"midpoint's worst per-round ratio stays at or below 1/2 across all failure models, as [9] guarantees")
	return t
}

func runAblationAdversary() *Table {
	t := &Table{
		ID:     "A/adversary",
		Title:  "δ-floor decay under different schedulers (midpoint, deaf(K3))",
		Paper:  "Theorem 2 proof: only the valency-splitting choice preserves δ(C_t) >= δ(C_0)/2^t",
		Header: []string{"scheduler", "δ-floor after 4 rounds", "2^-4 floor", "holds floor"},
	}
	m := model.DeafModel(graph.Complete(3))
	inputs := []float64{0, 1, 0.5}
	want := math.Pow(0.5, 4)
	run := func(name string, src core.PatternSource) {
		est := valency.NewEstimator(m, 3, true)
		c := core.NewConfig(algorithms.Midpoint{}, inputs)
		for round := 1; round <= 4; round++ {
			c = c.Step(src.Next(round, c))
		}
		floor := est.DeltaLower(c)
		t.AddRow(name, floor, want, floor >= want-1e-6)
	}
	est := valency.NewEstimator(m, 3, true)
	run("greedy (proof adversary)", &adversary.Greedy{Est: est})
	run("round-robin", core.Cycle{Graphs: m.Graphs()})
	run("random seed 1", core.RandomFromModel{Model: m, Rng: newRNG(1)})
	run("random seed 2", core.RandomFromModel{Model: m, Rng: newRNG(2)})
	run("constant F_0", core.Fixed{G: m.Graph(0)})
	t.Notes = append(t.Notes,
		"benign schedulers can let δ collapse faster than the floor — the adversary choice in the proof is essential",
		"only rows marked true certify the lower bound; the greedy adversary always does")
	return t
}

func runAblationDepth() *Table {
	t := &Table{
		ID:     "A/depth",
		Title:  "valency interval quality vs exploration depth",
		Paper:  "Section 3: Y*(C) bracketed by execution-tree exploration",
		Header: []string{"config", "depth", "inner δ", "outer δ", "gap"},
	}
	// Case 1: extremes held by agents that can be made deaf ({H_k} model):
	// constant continuations already reach both extremes, so the bracket
	// closes at depth 0 — this is why the Table 1 experiments get away
	// with small depths.
	m2 := model.TwoAgent()
	c2 := core.NewConfig(algorithms.TwoThirds{}, []float64{0, 1})
	for _, depth := range []int{0, 2, 4} {
		est := valency.NewEstimator(m2, depth, true)
		inner := est.Inner(c2).Diameter()
		outer := est.Outer(c2).Diameter()
		t.AddRow("two-thirds/{H_k}, extremes deaf-able", depth, inner, outer, outer-inner)
	}
	// Case 2: extremes held by Psi path agents, which are never deaf —
	// the true valency is strictly smaller than the hull, and the outer
	// bound needs depth to see the contraction while the inner bound needs
	// depth to discover richer reachable limits.
	m5 := model.PsiModel(5)
	c5 := core.NewConfig(algorithms.Midpoint{}, []float64{0.5, 0.5, 0.5, 0, 1})
	for _, depth := range []int{0, 1, 2, 3} {
		est := valency.NewEstimator(m5, depth, true)
		inner := est.Inner(c5).Diameter()
		outer := est.Outer(c5).Diameter()
		t.AddRow("midpoint/Psi(5), extremes on path", depth, inner, outer, outer-inner)
	}
	t.Notes = append(t.Notes,
		"when every extreme value sits at a deaf-able agent (Lemma 8/13 situations), depth 0 already brackets δ exactly",
		"otherwise outer bounds tighten monotonically with depth; cost grows as |N|^depth")
	return t
}
