package exp

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/algorithms"
	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

func init() {
	register(Experiment{
		ID:    "T1/n2",
		Title: "two agents: tight 1/3 contraction bound",
		Paper: "Table 1 column 1 (n=2); Theorem 1; Algorithm 1",
		Run:   runT1N2,
	})
	register(Experiment{
		ID:    "T1/nonsplit",
		Title: "non-split models (deaf triples): tight 1/2 contraction bound",
		Paper: "Table 1 column 1 (n>=3); Theorem 2; midpoint algorithm",
		Run:   runT1NonSplit,
	})
	register(Experiment{
		ID:    "T1/alphadiam",
		Title: "alpha-diameter bounds and exact-consensus solvability",
		Paper: "Table 1 column 2; Theorem 5; Corollary 23; Theorem 19",
		Run:   runT1AlphaDiam,
	})
	register(Experiment{
		ID:    "T1/rooted",
		Title: "rooted models (Psi graphs): (1/2)^(1/(n-2)) bound vs amortized midpoint",
		Paper: "Table 1 column 3; Theorem 3",
		Run:   runT1Rooted,
	})
	register(Experiment{
		ID:    "T1/asyncround",
		Title: "asynchronous round-based algorithms with f crashes",
		Paper: "Table 1 column 4; Theorem 6; Lemma 24; Fekete-style upper bound",
		Run:   runT1AsyncRound,
	})
	register(Experiment{
		ID:    "T1/asyncgeneral",
		Title: "asynchronous general algorithms: MinRelay reaches contraction 0",
		Paper: "Table 1 column 5; Theorem 7",
		Run:   runT1AsyncGeneral,
	})
}

// deltaFloor runs alg under the greedy adversary on m and returns the
// certified inner δ(C_t) sequence.
func deltaFloor(alg core.Algorithm, m *model.Model, inputs []float64, depth, rounds int) []float64 {
	est := valency.NewEstimator(m, depth, alg.Convex())
	adv := &adversary.Greedy{Est: est}
	c := core.NewConfig(alg, inputs)
	floors := []float64{est.DeltaLower(c)}
	for round := 1; round <= rounds; round++ {
		c = c.Step(adv.Next(round, c))
		floors = append(floors, est.DeltaLower(c))
	}
	return floors
}

// perRoundFloorRate fits the geometric decay (δ_T/δ_0)^(1/T).
func perRoundFloorRate(floors []float64) float64 {
	T := len(floors) - 1
	if T < 1 || floors[0] <= 0 || floors[T] <= 0 {
		return 0
	}
	return math.Pow(floors[T]/floors[0], 1/float64(T))
}

func runT1N2() *Table {
	t := &Table{
		ID:     "T1/n2",
		Title:  "worst-case contraction, n=2, model {H0,H1,H2}",
		Paper:  "Table 1 (n=2): lower bound 1/3 (Theorem 1), upper 1/3 (Algorithm 1)",
		Header: []string{"algorithm", "δ-floor rate (measured)", "paper lower bound", "tight?"},
	}
	m := model.TwoAgent()
	bound := m.ContractionLowerBound()
	algs := []core.Algorithm{
		algorithms.TwoThirds{},
		algorithms.Midpoint{},
		algorithms.Mean{},
		algorithms.SelfWeighted{Alpha: 0.5},
	}
	rounds := 6
	for _, alg := range algs {
		floors := deltaFloor(alg, m, []float64{0, 1}, 5, rounds)
		rate := perRoundFloorRate(floors)
		tight := "no"
		if math.Abs(rate-bound.Rate) < 1e-3 {
			tight = "YES"
		}
		t.AddRow(alg.Name(), rate, bound.Rate, tight)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("bound derived by %s (%s)", bound.Theorem, bound.Detail),
		"δ-floor rate: geometric mean of certified inner valency diameters under the greedy adversary",
		"two-thirds matches 1/3 exactly: Algorithm 1 is optimal; no algorithm can beat the floor")
	return t
}

func runT1NonSplit() *Table {
	t := &Table{
		ID:     "T1/nonsplit",
		Title:  "worst-case contraction, deaf(K_n) sub-models of the non-split model",
		Paper:  "Table 1 (n>=3 non-split): lower bound 1/2 (Theorem 2), upper 1/2 (midpoint)",
		Header: []string{"n", "algorithm", "δ-floor rate (measured)", "paper lower bound", "tight?"},
	}
	for _, tc := range []struct{ n, depth, rounds int }{{3, 3, 5}, {4, 2, 4}} {
		m := model.DeafModel(graph.Complete(tc.n))
		bound := m.ContractionLowerBound()
		inputs := make([]float64, tc.n)
		inputs[1] = 1
		for i := 2; i < tc.n; i++ {
			inputs[i] = 0.5
		}
		for _, alg := range []core.Algorithm{algorithms.Midpoint{}, algorithms.Mean{}, algorithms.AmortizedMidpoint{}} {
			floors := deltaFloor(alg, m, inputs, tc.depth, tc.rounds)
			rate := perRoundFloorRate(floors)
			tight := "no"
			if math.Abs(rate-bound.Rate) < 1e-3 {
				tight = "YES"
			}
			t.AddRow(tc.n, alg.Name(), rate, bound.Rate, tight)
		}
	}
	t.Notes = append(t.Notes,
		"midpoint matches the 1/2 floor exactly in every deaf(K_n) model: Theorem 2 is tight",
		"deaf(K_n) is a sub-model of the all-non-split model, so the bound carries over (Lemma 3)")
	return t
}

func runT1AlphaDiam() *Table {
	t := &Table{
		ID:     "T1/alphadiam",
		Title:  "alpha-diameter, beta-classes, solvability, and the 1/(D+1) bound",
		Paper:  "Table 1 column 2: rate 0 iff exact consensus solvable, else >= 1/(D+1)",
		Header: []string{"model", "|N|", "alpha-diam D", "beta classes", "exact solvable", "bound", "via"},
	}
	type entry struct {
		name string
		m    *model.Model
	}
	na41, err := model.FullAsyncRound(4, 1)
	if err != nil {
		panic(err)
	}
	ac62, err := model.AsyncChain(6, 2)
	if err != nil {
		panic(err)
	}
	nonsplit3, err := model.AllNonSplit(3)
	if err != nil {
		panic(err)
	}
	entries := []entry{
		{"{H0,H1,H2} (Fig.1)", model.TwoAgent()},
		{"deaf(K3)", model.DeafModel(graph.Complete(3))},
		{"deaf(K5)", model.DeafModel(graph.Complete(5))},
		{"all non-split, n=3", nonsplit3},
		{"N_A(4,1) full", na41},
		{"AsyncChain(6,2)", ac62},
		{"singleton star (solvable)", model.MustNew(graph.Star(4, 0))},
		{"two stars (solvable)", model.MustNew(graph.Star(3, 0), graph.Star(3, 1))},
	}
	for _, e := range entries {
		dStr := "∞"
		if d, finite := e.m.AlphaDiameter(); finite {
			dStr = fmt.Sprintf("%d", d)
		}
		bound := e.m.ContractionLowerBound()
		t.AddRow(e.name, e.m.Size(), dStr, len(e.m.BetaClasses()),
			e.m.ExactConsensusSolvable(), bound.Rate, bound.Theorem)
	}
	t.Notes = append(t.Notes,
		"D = 2 for {H0,H1,H2} and D = 1 for deaf(G), as stated after Definition 22",
		"for N_A(4,1), Lemma 24 certifies D <= ⌈n/f⌉ = 4; the exact computed value appears above")
	return t
}

func runT1Rooted() *Table {
	t := &Table{
		ID:     "T1/rooted",
		Title:  "worst-case contraction in rooted models containing the Psi graphs",
		Paper:  "Table 1 column 3: [ (1/2)^(1/(n-2)), (1/2)^(1/(n-1)) ]; Theorem 3",
		Header: []string{"n", "algorithm", "per-block δ ratio", "per-round δ rate", "lower bound/round", "upper bound/round"},
	}
	for _, n := range []int{4, 5, 6} {
		m := model.PsiModel(n)
		lower := math.Pow(0.5, 1/float64(n-2))
		upper := math.Pow(0.5, 1/float64(n-1))
		inputs := make([]float64, n)
		inputs[1] = 1
		for i := 2; i < n; i++ {
			inputs[i] = 0.5
		}
		est := valency.NewEstimator(m, 1, true)
		for _, alg := range []core.Algorithm{algorithms.AmortizedMidpoint{}, algorithms.Midpoint{}} {
			adv, err := adversary.NewBlockGreedy(est, adversary.SigmaBlocks(n))
			if err != nil {
				panic(err)
			}
			c := core.NewConfig(alg, inputs)
			d0 := est.DeltaLower(c)
			blocks := 3
			round := 0
			for b := 0; b < blocks; b++ {
				for r := 0; r < n-2; r++ {
					round++
					c = c.Step(adv.Next(round, c))
				}
			}
			dT := est.DeltaLower(c)
			ratio, perRound := 0.0, 0.0
			if d0 > 0 && dT > 0 {
				ratio = math.Pow(dT/d0, 1/float64(blocks))
				perRound = math.Pow(ratio, 1/float64(n-2))
			}
			t.AddRow(n, alg.Name(), ratio, perRound, lower, upper)
		}
	}
	t.Notes = append(t.Notes,
		"per-block ratio >= 1/2 certifies the per-round floor (1/2)^(1/(n-2)) of Theorem 3",
		"the amortized midpoint achieves (1/2)^(1/(n-1)) per round: asymptotically tight",
		"measured per-round rates sit slightly above the upper bound because 3 blocks of n-2 rounds complete only ⌊3(n-2)/(n-1)⌋ halving phases (phase rounding)")
	return t
}

func runT1AsyncRound() *Table {
	t := &Table{
		ID:     "T1/asyncround",
		Title:  "round-based asynchronous algorithms with f crashes",
		Paper:  "Table 1 column 4: [ 1/(⌈n/f⌉+1), 1/(⌈n/f⌉-1) ]; Theorem 6",
		Header: []string{"n", "f", "⌈n/f⌉", "Thm 6 lower", "midpoint worst ratio", "selected-mean worst ratio", "Fekete upper 1/(⌈n/f⌉-1)"},
	}
	cases := []struct{ n, f int }{{4, 1}, {6, 2}, {8, 2}, {9, 3}}
	for _, tc := range cases {
		n, f := tc.n, tc.f
		q := graph.NumBlocks(n, f)
		lower := 1 / float64(q+1)
		feketeUpper := 1 / float64(q-1)
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = float64(i) / float64(n-1)
		}
		worst := func(alg core.Algorithm, exact bool) float64 {
			rng := newRNG(int64(1000*n + f))
			var pool []graph.Graph
			for k := 0; k < 60; k++ {
				if exact {
					pool = append(pool, graph.RandomExactInDegree(rng, n, f))
				} else {
					pool = append(pool, graph.RandomMinInDegree(rng, n, f))
				}
			}
			tr := core.Run(alg, inputs, core.Cycle{Graphs: pool}, len(pool))
			return tr.WorstRoundRatio()
		}
		midWorst := worst(async.AsCoreAlgorithm("rb-midpoint", async.MidpointUpdate), false)
		selWorst := worst(async.AsCoreAlgorithm("rb-selected-mean", async.SelectedMeanUpdate(f)), true)
		t.AddRow(n, f, q, lower, midWorst, selWorst, feketeUpper)
	}
	t.Notes = append(t.Notes,
		"lower bound via the Lemma 24 alpha-chain: machine-verified in internal/graph (Lemma24Chain)",
		"selected-mean is the Fekete-1994-style baseline; its worst measured ratio stays below 1/(⌈n/f⌉-1)",
		"the round-based floor is realized by the greedy adversary on the N_A sub-models (see T1/alphadiam)")
	return t
}

func runT1AsyncGeneral() *Table {
	t := &Table{
		ID:     "T1/asyncgeneral",
		Title:  "general asynchronous algorithms: MinRelay equalizes by time f+1",
		Paper:  "Table 1 column 5: contraction 0 for 0 < f < n; Theorem 7",
		Header: []string{"n", "f", "diameter at f+0.5", "diameter at f+1", "all-equal by f+1"},
	}
	for _, tc := range []struct{ n, f int }{{4, 2}, {6, 3}, {8, 5}, {8, 7}} {
		n, f := tc.n, tc.f
		procs := make([]async.Process, n)
		for i := 0; i < n; i++ {
			v := 1.0
			if i == 0 {
				v = 0
			}
			procs[i] = async.NewMinRelay(i, v)
		}
		crashes := make([]async.Crash, f)
		crashes[0] = async.Crash{Agent: 0, AfterBroadcasts: 0, Recipients: 1 << 1}
		for i := 1; i < f; i++ {
			crashes[i] = async.Crash{Agent: i, AfterBroadcasts: 1, Recipients: 1 << uint(i+1)}
		}
		sim, err := async.NewSimulator(procs, async.ConstantDelay(1), crashes)
		if err != nil {
			panic(err)
		}
		sim.RunUntil(float64(f) + 0.5)
		dBefore := sim.CorrectDiameter()
		sim.RunUntil(float64(f + 1))
		dAfter := sim.CorrectDiameter()
		t.AddRow(n, f, dBefore, dAfter, dAfter == 0)
	}
	t.Notes = append(t.Notes,
		"worst-case schedule: the unique minimum travels a chain of f unclean crashes with delay-1 hops",
		"a non-round-based algorithm achieves contraction 0 while every round-based one is stuck at 1/(⌈n/f⌉+1): the price of rounds")
	return t
}
