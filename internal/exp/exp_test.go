package exp_test

import (
	"strings"
	"testing"

	"repro/internal/exp"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"A/adversary",
		"A/depth",
		"F1/twoagent",
		"F2/psi",
		"S/curves",
		"T1/alphadiam",
		"T1/asyncgeneral",
		"T1/asyncround",
		"T1/n2",
		"T1/nonsplit",
		"T1/rooted",
		"THM10/decision-rooted",
		"THM11/decision-general",
		"THM8/decision-n2",
		"THM9/decision-nonsplit",
		"X/byzantine",
		"X/census",
		"X/continuity",
		"X/failuremodels",
		"X/product",
		"X/topology",
	}
	got := exp.IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if _, ok := exp.Find("T1/n2"); !ok {
		t.Error("Find failed for registered ID")
	}
	if _, ok := exp.Find("nope"); ok {
		t.Error("Find succeeded for unknown ID")
	}
}

// TestAllExperimentsRun executes every registered experiment end-to-end —
// the repository's integration test — and sanity-checks the rendered
// output.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-scale; skipped with -short")
	}
	for _, e := range exp.All() {
		e := e
		t.Run(strings.ReplaceAll(e.ID, "/", "_"), func(t *testing.T) {
			tbl := e.Run()
			if tbl.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Error("experiment produced no rows")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row width %d != header width %d: %v", len(row), len(tbl.Header), row)
				}
			}
			text := tbl.Render()
			if !strings.Contains(text, e.ID) || !strings.Contains(text, tbl.Header[0]) {
				t.Errorf("render missing ID or header:\n%s", text)
			}
		})
	}
}

// TestExperimentVerdicts spot-checks that key experiments report the
// paper-matching verdicts in their cells.
func TestExperimentVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-scale; skipped with -short")
	}
	e, _ := exp.Find("T1/n2")
	tbl := e.Run()
	foundTight := false
	for _, row := range tbl.Rows {
		if row[0] == "two-thirds" && row[len(row)-1] == "YES" {
			foundTight = true
		}
	}
	if !foundTight {
		t.Errorf("T1/n2 should report two-thirds as tight:\n%s", tbl.Render())
	}

	e, _ = exp.Find("T1/asyncgeneral")
	tbl = e.Run()
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("T1/asyncgeneral row not all-equal by f+1: %v", row)
		}
	}

	e, _ = exp.Find("F1/twoagent")
	tbl = e.Run()
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("F1 floor violated in row %v", row)
		}
	}
}

// TestExperimentsDeterministic re-runs a representative subset and checks
// the rendered output is bit-identical — all experiment randomness is
// seeded.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale; skipped with -short")
	}
	for _, id := range []string{"T1/n2", "X/failuremodels", "S/curves", "X/census"} {
		e, ok := exp.Find(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		a := e.Run().Render()
		b := e.Run().Render()
		if a != b {
			t.Errorf("%s is not deterministic", id)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &exp.Table{
		ID:     "demo",
		Header: []string{"a", "b"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("plain", 1.5)
	tbl.AddRow("with,comma", `with"quote`)
	got := tbl.CSV()
	want := "a,b\nplain,1.5\n\"with,comma\",\"with\"\"quote\"\n# a note\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant\n%q", got, want)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tbl := &exp.Table{
		ID:     "demo",
		Title:  "demo",
		Header: []string{"a", "long-header"},
	}
	tbl.AddRow("xxxxxxxx", 1.5)
	tbl.AddRow(2, "y")
	text := tbl.Render()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) < 4 {
		t.Fatalf("unexpected render:\n%s", text)
	}
	// Column 2 should start at the same offset in header and data rows.
	head := lines[1]
	row := lines[3]
	if strings.Index(head, "long-header") != strings.Index(row, "1.5") {
		t.Errorf("columns misaligned:\n%s", text)
	}
}
