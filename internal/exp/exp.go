// Package exp is the experiment harness: one registered experiment per
// cell of Table 1, per figure, and per decision-time theorem of Függer,
// Nowak, Schwarz (PODC 2018), each regenerating the corresponding
// paper-reported numbers (bounds) next to the measured ones.
//
// The registry is consumed by cmd/paperbench (human-readable tables), by
// the repository-level benchmarks (one bench per experiment), and by the
// integration tests.
package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a rendered experiment result: a header, rows, and free-form
// notes (e.g. the paper claim being reproduced).
type Table struct {
	ID     string
	Title  string
	Paper  string // the paper artifact this reproduces, e.g. "Table 1, column 1"
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table as aligned monospace text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&sb, "reproduces: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len([]rune(c)); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as RFC-4180-ish comma-separated values (header
// row first; cells containing commas or quotes are quoted). Notes are
// emitted as trailing comment lines prefixed with "#".
func (t *Table) CSV() string {
	var sb strings.Builder
	writeCSVRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeCSVRow(t.Header)
	for _, row := range t.Rows {
		writeCSVRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("# ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Experiment is a registered reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Paper string
	Run   func() *Table
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate IDs are programmer errors.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns the sorted experiment IDs.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}
