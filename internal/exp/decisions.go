package exp

import (
	"fmt"
	"math"

	"repro/internal/algorithms"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

func init() {
	register(Experiment{
		ID:    "THM8/decision-n2",
		Title: "decision time, n=2: ceil(log3(Δ/ε)) is optimal",
		Paper: "Theorem 8 + Algorithm 1 decider",
		Run:   runThm8,
	})
	register(Experiment{
		ID:    "THM9/decision-nonsplit",
		Title: "decision time, non-split: ceil(log2(Δ/ε)) is optimal",
		Paper: "Theorem 9 + midpoint decider",
		Run:   runThm9,
	})
	register(Experiment{
		ID:    "THM10/decision-rooted",
		Title: "decision time, rooted: (n-1)ceil(log2(Δ/ε)) vs (n-2)log2(Δ/ε)",
		Paper: "Theorem 10 + amortized midpoint decider",
		Run:   runThm10,
	})
	register(Experiment{
		ID:    "THM11/decision-general",
		Title: "decision time, general models: log_{D+1}(Δ/(εn))",
		Paper: "Theorem 11 / Corollary 25",
		Run:   runThm11,
	})
}

var sweepEps = []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6}

func runThm8() *Table {
	t := &Table{
		ID:     "THM8/decision-n2",
		Title:  "two-thirds decider vs Theorem 8 lower bound (Δ=1)",
		Paper:  "Theorem 8: decision time >= log3(Δ/ε)",
		Header: []string{"ε", "lower bound (rounds)", "decider rounds", "spread at decision", "ε-agreement", "validity"},
	}
	d := approx.Decider{Alg: algorithms.TwoThirds{}, Contraction: 1.0 / 3.0}
	for _, eps := range sweepEps {
		res := d.Run([]float64{0, 1}, core.Fixed{G: graph.H(1)}, 1, eps)
		t.AddRow(eps, approx.Theorem8LowerBound(1, eps), res.DecisionRound, res.Spread,
			res.EpsAgreement, res.Validity)
	}
	t.Notes = append(t.Notes,
		"worst pattern: constant H1 (agent 0 deaf) — the decider needs every one of its rounds",
		"decider rounds = ⌈lower bound⌉: Algorithm 1's deciding version is optimal")
	return t
}

func runThm9() *Table {
	t := &Table{
		ID:     "THM9/decision-nonsplit",
		Title:  "midpoint decider vs Theorem 9 lower bound (Δ=1, deaf(K_n))",
		Paper:  "Theorem 9: decision time >= log2(Δ/ε)",
		Header: []string{"n", "ε", "lower bound (rounds)", "decider rounds", "spread at decision", "ok"},
	}
	d := approx.Decider{Alg: algorithms.Midpoint{}, Contraction: 0.5}
	for _, n := range []int{3, 5} {
		inputs := make([]float64, n)
		inputs[1] = 1
		for i := 2; i < n; i++ {
			inputs[i] = 0.5
		}
		worst := core.Fixed{G: graph.Deaf(graph.Complete(n), 0)}
		for _, eps := range sweepEps {
			res := d.Run(inputs, worst, 1, eps)
			t.AddRow(n, eps, approx.Theorem9LowerBound(1, eps), res.DecisionRound, res.Spread,
				res.EpsAgreement && res.Validity)
		}
	}
	t.Notes = append(t.Notes, "decider rounds = ⌈log2(Δ/ε)⌉: the midpoint decider is optimal in non-split models")
	return t
}

func runThm10() *Table {
	t := &Table{
		ID:     "THM10/decision-rooted",
		Title:  "amortized midpoint decider vs Theorem 10 lower bound (Δ=1, Psi model)",
		Paper:  "Theorem 10: decision time >= (n-2)·log2(Δ/ε); decider uses (n-1)⌈log2(Δ/ε)⌉",
		Header: []string{"n", "ε", "lower bound (rounds)", "decider rounds", "ratio to bound", "ok"},
	}
	for _, n := range []int{4, 6, 8} {
		contraction := math.Pow(0.5, 1/float64(n-1))
		d := approx.Decider{Alg: algorithms.AmortizedMidpoint{}, Contraction: contraction}
		inputs := make([]float64, n)
		inputs[1] = 1
		for i := 2; i < n; i++ {
			inputs[i] = 0.5
		}
		for _, eps := range []float64{1e-2, 1e-4, 1e-6} {
			res := d.Run(inputs, core.Cycle{Graphs: graph.PsiFamily(n)}, 1, eps)
			lb := approx.Theorem10LowerBound(n, 1, eps)
			ratio := 0.0
			if lb > 0 {
				ratio = float64(res.DecisionRound) / lb
			}
			t.AddRow(n, eps, lb, res.DecisionRound, ratio, res.EpsAgreement && res.Validity)
		}
	}
	t.Notes = append(t.Notes,
		"ratio tends to (n-1)/(n-2) as ε -> 0: the multiplicative optimality gap stated in Section 9")
	return t
}

func runThm11() *Table {
	t := &Table{
		ID:     "THM11/decision-general",
		Title:  "generic decision-time lower bounds from the alpha-diameter",
		Paper:  "Theorem 11: decision time >= log_{D+1}(Δ/(εn))",
		Header: []string{"model", "n", "D", "ε", "generic bound", "specialized bound"},
	}
	type entry struct {
		name        string
		m           *model.Model
		specialized func(eps float64) float64
	}
	entries := []entry{
		{"{H0,H1,H2}", model.TwoAgent(), func(eps float64) float64 { return approx.Theorem8LowerBound(1, eps) }},
		{"deaf(K3)", model.DeafModel(graph.Complete(3)), func(eps float64) float64 { return approx.Theorem9LowerBound(1, eps) }},
	}
	for _, e := range entries {
		dAlpha, finite := e.m.AlphaDiameter()
		if !finite {
			panic(fmt.Sprintf("exp: infinite alpha-diameter for %s", e.name))
		}
		for _, eps := range []float64{1e-2, 1e-4, 1e-6} {
			t.AddRow(e.name, e.m.N(), dAlpha, eps,
				approx.Theorem11LowerBound(dAlpha, e.m.N(), 1, eps), e.specialized(eps))
		}
	}
	t.Notes = append(t.Notes,
		"the generic bound is weaker than the specialized Theorems 8/9 (as it must be), but applies to every unsolvable model")
	return t
}
