package exp

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
)

func init() {
	register(Experiment{
		ID:    "X/census",
		Title: "exhaustive census of all two-agent network models",
		Paper: "Theorem 1 boundary: which two-agent models force which bounds",
		Run:   runXCensus,
	})
}

// runXCensus classifies every nonempty model over the four two-agent
// graphs (identity, H0, H1, H2): asymptotic-consensus solvability
// (rootedness), exact-consensus solvability (Theorem 19), alpha-diameter,
// and the contraction bound. The boundary confirms Theorem 1: the 1/3
// bound appears exactly for the rooted models containing all of
// {H0, H1, H2}, and only {H0,H1,H2} itself is both solvable and subject
// to it.
func runXCensus() *Table {
	t := &Table{
		ID:     "X/census",
		Title:  "all 15 nonempty two-agent models",
		Paper:  "Theorem 1 + Theorem 19 boundary map",
		Header: []string{"model", "asymptotic solvable", "exact solvable", "alpha-diam", "bound", "via"},
	}
	graphs := []graph.Graph{graph.New(2), graph.H(0), graph.H(1), graph.H(2)}
	names := []string{"I", "H0", "H1", "H2"}
	for mask := 1; mask < 1<<4; mask++ {
		var gs []graph.Graph
		label := ""
		for k := 0; k < 4; k++ {
			if mask&(1<<k) != 0 {
				gs = append(gs, graphs[k])
				if label != "" {
					label += ","
				}
				label += names[k]
			}
		}
		m := model.MustNew(gs...)
		dStr := "∞"
		if d, finite := m.AlphaDiameter(); finite {
			dStr = fmt.Sprintf("%d", d)
		}
		bound := m.ContractionLowerBound()
		rate := fmt.Sprintf("%.6g", bound.Rate)
		if bound.Theorem == "vacuous" {
			rate = "n/a"
		}
		t.AddRow("{"+label+"}", m.IsRooted(), m.ExactConsensusSolvable(), dStr, rate, bound.Theorem)
	}
	t.Notes = append(t.Notes,
		"I is the identity graph (self-loops only); models containing it are not rooted, so even asymptotic consensus is unsolvable there",
		"the 1/3 bound appears exactly when all of H0, H1, H2 are present (Theorem 1's hypothesis)",
		"singleton and two-graph models are exact-consensus solvable (common root within each beta-class) -> bound 0")
	return t
}
