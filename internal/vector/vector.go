// Package vector lifts the one-dimensional consensus machinery to
// d-dimensional values. The paper states asymptotic consensus in R^d
// (Section 2.1) and notes that its algorithms and bounds are effective in
// dimension one — higher-dimensional inputs embed into a line for the
// lower bounds, and coordinate-wise execution lifts the convex combination
// algorithms for the upper bounds (validity then holds with respect to the
// axis-aligned bounding box, which contains the convex hull's extent per
// coordinate).
//
// Runner executes one core.Algorithm instance per coordinate, feeding all
// of them the same communication pattern — exactly what a d-dimensional
// agent running the algorithm on each coordinate would do.
package vector

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
)

// Point is a d-dimensional value.
type Point []float64

// Clone returns an independent copy.
func (p Point) Clone() Point {
	cp := make(Point, len(p))
	copy(cp, p)
	return cp
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point {
	if len(p) != len(q) {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", len(p), len(q)))
	}
	out := make(Point, len(p))
	for i := range p {
		out[i] = p[i] - q[i]
	}
	return out
}

// Norm returns the Euclidean norm.
func (p Point) Norm() float64 {
	sum := 0.0
	for _, v := range p {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 { return p.Sub(q).Norm() }

// Diameter returns the largest pairwise Euclidean distance, the paper's
// diam over R^d.
func Diameter(points []Point) float64 {
	d := 0.0
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			if x := Dist(points[i], points[j]); x > d {
				d = x
			}
		}
	}
	return d
}

// BoundingBox returns per-coordinate [lo, hi] hulls of the points.
func BoundingBox(points []Point) (lo, hi Point) {
	if len(points) == 0 {
		return nil, nil
	}
	dim := len(points[0])
	lo, hi = points[0].Clone(), points[0].Clone()
	for _, p := range points[1:] {
		if len(p) != dim {
			panic("vector: ragged point set")
		}
		for c := 0; c < dim; c++ {
			lo[c] = math.Min(lo[c], p[c])
			hi[c] = math.Max(hi[c], p[c])
		}
	}
	return lo, hi
}

// InBox reports whether p lies in the axis-aligned box [lo, hi], within
// tolerance tol.
func InBox(p, lo, hi Point, tol float64) bool {
	for c := range p {
		if p[c] < lo[c]-tol || p[c] > hi[c]+tol {
			return false
		}
	}
	return true
}

// Runner executes a scalar consensus algorithm coordinate-wise on
// d-dimensional inputs under a single shared communication pattern.
//
// The execution backend follows core.CurrentBackend() at construction:
// with the dense backend enabled and a dense-capable algorithm, the d
// coordinates run as one core.BatchRunner — a single flat
// struct-of-arrays batch of d runs stepped together under the shared
// graph, so the per-round receiver segmentation is computed once for
// all coordinates instead of once per coordinate. The two backends are
// bit-identical.
type Runner struct {
	alg     core.Algorithm
	dim     int
	n       int
	configs []*core.Config    // one per coordinate (agents backend)
	batch   *core.BatchRunner // all coordinates as one batch (dense backend)
	scratch []float64
}

// NewRunner builds the per-coordinate configurations from the initial
// points (one per agent; all points must share a dimension >= 1).
func NewRunner(alg core.Algorithm, inputs []Point) (*Runner, error) {
	return NewRunnerBackend(alg, inputs, core.CurrentBackend())
}

// NewRunnerBackend is NewRunner with an explicit backend selection.
func NewRunnerBackend(alg core.Algorithm, inputs []Point, backend core.Backend) (*Runner, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("vector: no agents")
	}
	dim := len(inputs[0])
	if dim < 1 {
		return nil, fmt.Errorf("vector: zero-dimensional inputs")
	}
	for i, p := range inputs {
		if len(p) != dim {
			return nil, fmt.Errorf("vector: agent %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	r := &Runner{alg: alg, dim: dim, n: len(inputs)}
	d, denseOK := core.AsDense(alg)
	useDense := backend.DenseEnabled() && denseOK
	if useDense {
		coords := make([][]float64, dim)
		for c := 0; c < dim; c++ {
			coords[c] = make([]float64, len(inputs))
			for i, p := range inputs {
				coords[c][i] = p[c]
			}
		}
		r.batch = core.NewBatchRunner(d, coords)
		r.scratch = make([]float64, len(inputs))
		return r, nil
	}
	coords := make([]float64, len(inputs))
	for c := 0; c < dim; c++ {
		for i, p := range inputs {
			coords[i] = p[c]
		}
		r.configs = append(r.configs, core.NewConfig(alg, coords))
	}
	return r, nil
}

// Dim returns the value dimension.
func (r *Runner) Dim() int { return r.dim }

// N returns the number of agents.
func (r *Runner) N() int { return r.n }

// Round returns the number of completed rounds.
func (r *Runner) Round() int {
	if r.batch != nil {
		return r.batch.Round()
	}
	return r.configs[0].Round()
}

// Step applies one round with communication graph g to every coordinate.
func (r *Runner) Step(g graph.Graph) {
	if r.batch != nil {
		r.batch.Step(g)
		return
	}
	for c := range r.configs {
		r.configs[c] = r.configs[c].Step(g)
	}
}

// Run applies rounds drawn from src. On the dense backend, oblivious
// sources (core.Oblivious) are queried without a configuration; a
// configuration-inspecting source is handed coordinate 0's state
// materialized as agents, so adaptive adversaries remain correct (if
// slower — force core.BackendAgents for adversarial vector runs).
func (r *Runner) Run(src core.PatternSource, rounds int) {
	for t := 0; t < rounds; t++ {
		var g graph.Graph
		switch {
		case r.batch == nil:
			g = src.Next(r.Round()+1, r.configs[0])
		case core.IsOblivious(src):
			g = src.Next(r.Round()+1, nil)
		default:
			g = src.Next(r.Round()+1, r.batch.MaterializeRun(0))
		}
		r.Step(g)
	}
}

// Positions returns the agents' current d-dimensional values.
func (r *Runner) Positions() []Point {
	n := r.N()
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		out[i] = make(Point, r.dim)
	}
	if r.batch != nil {
		for c := 0; c < r.dim; c++ {
			r.batch.Outputs(c, r.scratch)
			for i := 0; i < n; i++ {
				out[i][c] = r.scratch[i]
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		for c := 0; c < r.dim; c++ {
			out[i][c] = r.configs[c].Output(i)
		}
	}
	return out
}

// Diameter returns the current Euclidean diameter of the agents' values.
func (r *Runner) Diameter() float64 { return Diameter(r.Positions()) }
