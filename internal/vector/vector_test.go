package vector_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/vector"
)

func TestPointOps(t *testing.T) {
	p := vector.Point{3, 4}
	q := vector.Point{0, 0}
	if p.Norm() != 5 {
		t.Errorf("Norm = %v, want 5", p.Norm())
	}
	if vector.Dist(p, q) != 5 {
		t.Errorf("Dist = %v, want 5", vector.Dist(p, q))
	}
	d := p.Sub(q)
	if d[0] != 3 || d[1] != 4 {
		t.Errorf("Sub = %v", d)
	}
	cl := p.Clone()
	cl[0] = 99
	if p[0] != 3 {
		t.Error("Clone shares storage")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("dimension mismatch did not panic")
			}
		}()
		p.Sub(vector.Point{1})
	}()
}

func TestDiameterAndBox(t *testing.T) {
	pts := []vector.Point{{0, 0}, {3, 4}, {1, 1}}
	if got := vector.Diameter(pts); got != 5 {
		t.Errorf("Diameter = %v, want 5", got)
	}
	lo, hi := vector.BoundingBox(pts)
	if lo[0] != 0 || lo[1] != 0 || hi[0] != 3 || hi[1] != 4 {
		t.Errorf("BoundingBox = %v %v", lo, hi)
	}
	if !vector.InBox(vector.Point{1, 2}, lo, hi, 0) {
		t.Error("InBox false for interior point")
	}
	if vector.InBox(vector.Point{4, 0}, lo, hi, 0) {
		t.Error("InBox true for exterior point")
	}
	if vector.Diameter(nil) != 0 {
		t.Error("Diameter(nil) != 0")
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := vector.NewRunner(algorithms.Midpoint{}, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := vector.NewRunner(algorithms.Midpoint{}, []vector.Point{{}}); err == nil {
		t.Error("zero-dimensional input accepted")
	}
	if _, err := vector.NewRunner(algorithms.Midpoint{}, []vector.Point{{1, 2}, {3}}); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestRunnerMatchesScalarPerCoordinate(t *testing.T) {
	inputs := []vector.Point{{0, 10}, {1, 20}, {0.5, 12}}
	r, err := vector.NewRunner(algorithms.Midpoint{}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	pattern := []graph.Graph{graph.Complete(3), graph.Star(3, 1), graph.Cycle(3)}
	r.Run(core.Sequence{Graphs: pattern}, 3)

	// Scalar references per coordinate.
	for c := 0; c < 2; c++ {
		coords := make([]float64, 3)
		for i, p := range inputs {
			coords[i] = p[c]
		}
		tr := core.Run(algorithms.Midpoint{}, coords, core.Sequence{Graphs: pattern}, 3)
		for i := 0; i < 3; i++ {
			if got := r.Positions()[i][c]; got != tr.Outputs[3][i] {
				t.Errorf("coord %d agent %d: vector %v, scalar %v", c, i, got, tr.Outputs[3][i])
			}
		}
	}
	if r.Round() != 3 || r.N() != 3 || r.Dim() != 2 {
		t.Errorf("Round/N/Dim = %d/%d/%d", r.Round(), r.N(), r.Dim())
	}
}

// TestRendezvousConvergesInBox is the property the rendezvous example
// relies on: under non-split patterns, coordinate-wise midpoint drives all
// points to a common location inside the initial bounding box, with
// Euclidean diameter at most halving per round (each coordinate halves).
func TestRendezvousConvergesInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(5)
		dim := 1 + rng.Intn(3)
		inputs := make([]vector.Point, n)
		for i := range inputs {
			p := make(vector.Point, dim)
			for c := range p {
				p[c] = rng.Float64() * 10
			}
			inputs[i] = p
		}
		lo, hi := vector.BoundingBox(inputs)
		r, err := vector.NewRunner(algorithms.Midpoint{}, inputs)
		if err != nil {
			t.Fatal(err)
		}
		// Each coordinate's range halves per non-split round, so the
		// Euclidean diameter is bounded by the norm of the coordinate
		// ranges, which halves per round. (The raw pairwise diameter need
		// not halve monotonically — only this envelope does.)
		envelope := func() float64 {
			blo, bhi := vector.BoundingBox(r.Positions())
			return bhi.Sub(blo).Norm()
		}
		prevEnv := envelope()
		for round := 0; round < 20; round++ {
			r.Step(graph.RandomNonSplit(rng, n, 0.3))
			env := envelope()
			if prevEnv > 0 && env > prevEnv*0.5+1e-9 {
				t.Fatalf("trial %d round %d: range envelope %v did not halve from %v",
					trial, round, env, prevEnv)
			}
			if d := r.Diameter(); d > env+1e-9 {
				t.Fatalf("trial %d round %d: diameter %v exceeds envelope %v", trial, round, d, env)
			}
			prevEnv = env
		}
		if d := r.Diameter(); d > 1e-4 {
			t.Errorf("trial %d: did not converge, diameter %v", trial, d)
		}
		for _, p := range r.Positions() {
			if !vector.InBox(p, lo, hi, 1e-9) {
				t.Errorf("trial %d: point %v escaped the initial box", trial, p)
			}
		}
	}
}

// TestDiameterTriangleQuick property-checks that Diameter is a proper
// max-metric aggregate: adding a point never decreases it, and it is
// bounded by the sum over coordinates of scalar diameters.
func TestDiameterTriangleQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		pts := make([]vector.Point, n)
		for i := range pts {
			pts[i] = vector.Point{rng.Float64(), rng.Float64()}
		}
		base := vector.Diameter(pts)
		more := append(append([]vector.Point{}, pts...), vector.Point{rng.Float64() * 2, rng.Float64() * 2})
		if vector.Diameter(more) < base-1e-12 {
			return false
		}
		// Coordinate-wise bound: diam <= sqrt(dx^2 + dy^2).
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, p[0])
			ys = append(ys, p[1])
		}
		dx := core.Diameter(xs)
		dy := core.Diameter(ys)
		return base <= math.Hypot(dx, dy)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
