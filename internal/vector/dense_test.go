package vector_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/vector"
)

// TestRunnerBackendParity runs the d-dimensional lift under both backends
// on the same pattern and requires bit-identical positions coordinate by
// coordinate, for algorithms with and without auxiliary planes.
func TestRunnerBackendParity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, dim, rounds = 6, 3, 25
	inputs := make([]vector.Point, n)
	for i := range inputs {
		p := make(vector.Point, dim)
		for c := range p {
			p[c] = rng.Float64()*2 - 1
		}
		inputs[i] = p
	}
	m := model.DeafModel(graph.Complete(n))
	for _, alg := range []core.Algorithm{algorithms.Midpoint{}, algorithms.AmortizedMidpoint{}} {
		t.Run(alg.Name(), func(t *testing.T) {
			agents, err := vector.NewRunnerBackend(alg, inputs, core.BackendAgents)
			if err != nil {
				t.Fatal(err)
			}
			dense, err := vector.NewRunnerBackend(alg, inputs, core.BackendDense)
			if err != nil {
				t.Fatal(err)
			}
			mk := func() core.PatternSource {
				return core.RandomFromModel{Model: m, Rng: rand.New(rand.NewSource(4))}
			}
			agents.Run(mk(), rounds)
			dense.Run(mk(), rounds)
			if agents.Round() != rounds || dense.Round() != rounds {
				t.Fatalf("round counters differ: agents %d, dense %d", agents.Round(), dense.Round())
			}
			pa, pd := agents.Positions(), dense.Positions()
			for i := range pa {
				for c := range pa[i] {
					if math.Float64bits(pa[i][c]) != math.Float64bits(pd[i][c]) {
						t.Fatalf("agent %d coord %d: %v != %v", i, c, pa[i][c], pd[i][c])
					}
				}
			}
			if da, dd := agents.Diameter(), dense.Diameter(); math.Float64bits(da) != math.Float64bits(dd) {
				t.Fatalf("diameters differ: %v != %v", da, dd)
			}
		})
	}
}

// TestRunnerDenseAdaptiveSource checks that a configuration-inspecting
// source still works on the dense backend: it receives a materialized
// configuration, never nil, and the run matches the agents backend.
func TestRunnerDenseAdaptiveSource(t *testing.T) {
	inputs := []vector.Point{{0, 1}, {1, 0}, {0.5, 0.5}}
	adaptive := func() core.PatternSource {
		return core.Func(func(round int, c *core.Config) graph.Graph {
			if c == nil {
				t.Fatal("dense runner handed a nil configuration to an adaptive source")
			}
			if c.Output(0) < c.Output(1) {
				return graph.Complete(3)
			}
			return graph.Cycle(3)
		})
	}
	agents, err := vector.NewRunnerBackend(algorithms.Midpoint{}, inputs, core.BackendAgents)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := vector.NewRunnerBackend(algorithms.Midpoint{}, inputs, core.BackendDense)
	if err != nil {
		t.Fatal(err)
	}
	agents.Run(adaptive(), 10)
	dense.Run(adaptive(), 10)
	pa, pd := agents.Positions(), dense.Positions()
	for i := range pa {
		for c := range pa[i] {
			if math.Float64bits(pa[i][c]) != math.Float64bits(pd[i][c]) {
				t.Fatalf("agent %d coord %d: %v != %v", i, c, pa[i][c], pd[i][c])
			}
		}
	}
}
