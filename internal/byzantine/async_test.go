package byzantine_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/byzantine"
)

func TestAsyncSystemValidation(t *testing.T) {
	if _, err := byzantine.NewAsyncSystem(nil, nil, byzantine.Mirror{}, byzantine.SplitQuorums{}); err == nil {
		t.Error("empty system accepted")
	}
	// n = 3f rejected for async rounds.
	if _, err := byzantine.NewAsyncSystem(make([]float64, 6), []int{4, 5}, byzantine.Mirror{}, byzantine.SplitQuorums{}); err == nil {
		t.Error("n <= 3f accepted")
	}
	if _, err := byzantine.NewAsyncSystem(make([]float64, 4), []int{9}, byzantine.Mirror{}, byzantine.SplitQuorums{}); err == nil {
		t.Error("out-of-range Byzantine agent accepted")
	}
}

// TestAsyncValidityAlways checks that with n > 3f the correct values
// never leave the correct hull, no matter the quorum picker or strategy:
// trimming f from both sides of an n-f quorum with at most f Byzantine
// entries removes every injected extreme.
func TestAsyncValidityAlways(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	strategies := []byzantine.Strategy{
		byzantine.Echo{Value: -1e9},
		byzantine.Split{Magnitude: 1e9},
		byzantine.Mirror{},
	}
	for _, tc := range []struct{ n, f int }{{4, 1}, {7, 2}, {11, 2}, {13, 2}} {
		for _, strat := range strategies {
			for _, picker := range []byzantine.QuorumPicker{
				byzantine.RandomQuorums{Rng: rng},
				byzantine.SplitQuorums{},
			} {
				inputs := make([]float64, tc.n)
				for i := range inputs {
					inputs[i] = rng.Float64()
				}
				byzSet := make([]int, tc.f)
				for k := range byzSet {
					byzSet[k] = tc.n - 1 - k
				}
				sys, err := byzantine.NewAsyncSystem(inputs, byzSet, strat, picker)
				if err != nil {
					t.Fatal(err)
				}
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, v := range sys.CorrectValues() {
					lo = math.Min(lo, v)
					hi = math.Max(hi, v)
				}
				diams := sys.Run(8)
				for r := 1; r < len(diams); r++ {
					if diams[r] > diams[r-1]+1e-12 {
						t.Errorf("n=%d f=%d %s: diameter grew at round %d", tc.n, tc.f, strat.Name(), r)
					}
				}
				for _, v := range sys.CorrectValues() {
					if v < lo-1e-9 || v > hi+1e-9 {
						t.Errorf("n=%d f=%d %s: validity violated: %v outside [%v,%v]",
							tc.n, tc.f, strat.Name(), v, lo, hi)
					}
				}
			}
		}
	}
}

// TestAsyncConvergesAboveFiveF checks the Dolev et al. regime the paper
// cites: for n > 5f the asynchronous trimmed-midpoint keeps contracting
// against every implemented adversary.
func TestAsyncConvergesAboveFiveF(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, tc := range []struct{ n, f int }{{6, 1}, {11, 2}, {16, 3}} {
		for _, strat := range []byzantine.Strategy{byzantine.Split{Magnitude: 1e6}, byzantine.Mirror{}} {
			inputs := make([]float64, tc.n)
			for i := range inputs {
				inputs[i] = rng.Float64()
			}
			byzSet := make([]int, tc.f)
			for k := range byzSet {
				byzSet[k] = tc.n - 1 - k
			}
			sys, err := byzantine.NewAsyncSystem(inputs, byzSet, strat, byzantine.SplitQuorums{})
			if err != nil {
				t.Fatal(err)
			}
			diams := sys.Run(40)
			if diams[len(diams)-1] > 1e-6*diams[0] {
				t.Errorf("n=%d f=%d %s: no convergence: %v -> %v",
					tc.n, tc.f, strat.Name(), diams[0], diams[len(diams)-1])
			}
		}
	}
}

// TestAsyncPinsAtFiveF demonstrates the n <= 5f cliff with the explicit
// construction: n = 5, f = 1, correct values {0, 0, 1, 1}. The split
// quorum hands low agents {0, 0, byz-low, x} and high agents symmetric
// quorums; after trimming, low agents stay at 0 and high agents at 1.
func TestAsyncPinsAtFiveF(t *testing.T) {
	sys, err := byzantine.NewAsyncSystem(
		[]float64{0, 0, 1, 1, 99}, []int{4},
		byzantine.Split{Magnitude: 1e6}, byzantine.SplitQuorums{})
	if err != nil {
		t.Fatal(err)
	}
	diams := sys.Run(10)
	for r, d := range diams {
		if d != 1 {
			t.Fatalf("round %d: diameter %v, want the attack to pin it at 1", r, d)
		}
	}
}

func TestAsyncQuorumShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sys, err := byzantine.NewAsyncSystem(
		[]float64{0.1, 0.9, 0.5, 0.3, 0.7, 99}, []int{5},
		byzantine.Mirror{}, byzantine.RandomQuorums{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	// Step panics on malformed quorums; several rounds exercise the
	// pickers' invariants.
	sys.Run(5)
	if sys.CorrectDiameter() > 0.8 {
		t.Errorf("little progress under random quorums: %v", sys.CorrectDiameter())
	}
}
