// Package byzantine implements the synchronous approximate-agreement
// setting of Dolev, Lynch, Pinter, Stark, Weihl (JACM 1986) — the paper's
// reference [14] and the origin of the open problem its Theorems 1-3
// resolve. The paper recounts that [14] proved the round-by-round
// contraction rate 1/2 tight for "cautious" algorithms in synchronous
// systems with Byzantine agents, leaving arbitrary algorithms open; this
// package reproduces that classical baseline:
//
//   - a synchronous full-information round structure in which every
//     correct agent receives one value from everybody, with Byzantine
//     agents free to send different values to different recipients,
//   - the cautious trimmed-midpoint update: discard the f lowest and f
//     highest received values, then take the midpoint of the remainder —
//     contraction 1/2 per round for n > 3f, and
//   - adversarial Byzantine strategies, including the classic "split"
//     strategy that pins correct agents apart and shows the n <= 3f
//     resilience bound is sharp (Fischer, Lynch, Merritt — reference
//     [19]).
package byzantine

import (
	"fmt"
	"math"
	"sort"
)

// Strategy decides what a Byzantine agent sends: the value agent byz
// delivers to the given recipient in the given round. Implementations see
// the correct agents' current values (read-only) to mount adaptive
// attacks.
type Strategy interface {
	// Name identifies the strategy in tables.
	Name() string
	// Send returns the value Byzantine agent byz sends to recipient in
	// round round, given the current values of all agents (entries of
	// Byzantine agents are meaningless).
	Send(round, byz, recipient int, values []float64) float64
}

// Echo is the benign strategy: Byzantine agents echo a fixed constant to
// everyone (a crashed-but-babbling agent).
type Echo struct{ Value float64 }

// Name implements Strategy.
func (e Echo) Name() string { return fmt.Sprintf("echo(%g)", e.Value) }

// Send implements Strategy.
func (e Echo) Send(int, int, int, []float64) float64 { return e.Value }

// Split is the classical attack: to recipients whose value is in the
// upper half of the correct range it sends a huge value, to the others a
// tiny one, trying to keep the correct agents apart. With n > 3f the
// trimming removes the extremes and the attack fails; with n <= 3f it
// pins the correct agents at their positions forever.
type Split struct{ Magnitude float64 }

// Name implements Strategy.
func (s Split) Name() string { return "split" }

// Send implements Strategy.
func (s Split) Send(_, _, recipient int, values []float64) float64 {
	lo, hi := correctHull(values)
	mid := (lo + hi) / 2
	if values[recipient] >= mid {
		return s.Magnitude
	}
	return -s.Magnitude
}

// Mirror sends every recipient its own current value back, reinforcing
// disagreement without ever leaving the plausible range.
type Mirror struct{}

// Name implements Strategy.
func (Mirror) Name() string { return "mirror" }

// Send implements Strategy.
func (Mirror) Send(_, _, recipient int, values []float64) float64 {
	return values[recipient]
}

func correctHull(values []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if !math.IsNaN(v) {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	return lo, hi
}

// TrimmedMidpoint returns the cautious update of [14]: sort the received
// values, discard the f smallest and f largest, and return the midpoint
// of the remainder. It panics if fewer than 2f+1 values are supplied.
func TrimmedMidpoint(received []float64, f int) float64 {
	if len(received) < 2*f+1 {
		panic(fmt.Sprintf("byzantine: %d values cannot survive trimming f=%d", len(received), f))
	}
	sorted := append([]float64(nil), received...)
	sort.Float64s(sorted)
	trimmed := sorted[f : len(sorted)-f]
	return (trimmed[0] + trimmed[len(trimmed)-1]) / 2
}

// System is a synchronous full-information system with a fixed Byzantine
// set. Correct agents run the trimmed-midpoint update; Byzantine agents
// follow the configured strategy.
type System struct {
	n        int
	f        int // trimming parameter = Byzantine budget
	byz      map[int]bool
	strategy Strategy
	values   []float64 // correct agents' values; Byzantine entries NaN
	round    int
}

// NewSystem builds a system with the given initial values, Byzantine agent
// set, and strategy. The trimming parameter f is the size of the
// Byzantine set (the classical setting: the budget is known and fully
// used).
func NewSystem(initial []float64, byzantine []int, strategy Strategy) (*System, error) {
	n := len(initial)
	if n < 1 {
		return nil, fmt.Errorf("byzantine: no agents")
	}
	byz := make(map[int]bool, len(byzantine))
	for _, b := range byzantine {
		if b < 0 || b >= n {
			return nil, fmt.Errorf("byzantine: agent %d out of range", b)
		}
		if byz[b] {
			return nil, fmt.Errorf("byzantine: duplicate agent %d", b)
		}
		byz[b] = true
	}
	f := len(byz)
	if n <= 2*f {
		return nil, fmt.Errorf("byzantine: n=%d cannot trim f=%d from both sides", n, f)
	}
	values := make([]float64, n)
	for i, v := range initial {
		if byz[i] {
			values[i] = math.NaN()
		} else {
			values[i] = v
		}
	}
	return &System{n: n, f: f, byz: byz, strategy: strategy, values: values}, nil
}

// N returns the agent count, F the Byzantine budget.
func (s *System) N() int { return s.n }

// F returns the Byzantine budget (also the trimming parameter).
func (s *System) F() int { return s.f }

// Round returns the number of completed rounds.
func (s *System) Round() int { return s.round }

// CorrectValues returns the current values of the correct agents, in
// agent order.
func (s *System) CorrectValues() []float64 {
	out := make([]float64, 0, s.n-s.f)
	for i, v := range s.values {
		if !s.byz[i] {
			out = append(out, v)
		}
	}
	return out
}

// CorrectDiameter returns the value diameter over correct agents.
func (s *System) CorrectDiameter() float64 {
	lo, hi := correctHull(s.values)
	if math.IsInf(lo, 1) {
		return 0
	}
	return hi - lo
}

// Step executes one synchronous round: every correct agent receives n
// values (its own, the other correct agents', and whatever the Byzantine
// agents choose per recipient) and applies the trimmed midpoint.
func (s *System) Step() {
	s.round++
	next := make([]float64, s.n)
	received := make([]float64, 0, s.n)
	for i := 0; i < s.n; i++ {
		if s.byz[i] {
			next[i] = math.NaN()
			continue
		}
		received = received[:0]
		for j := 0; j < s.n; j++ {
			if s.byz[j] {
				received = append(received, s.strategy.Send(s.round, j, i, s.values))
			} else {
				received = append(received, s.values[j])
			}
		}
		next[i] = TrimmedMidpoint(received, s.f)
	}
	s.values = next
}

// Run executes the given number of rounds and returns the correct-agent
// diameters after each round (index 0 = initial).
func (s *System) Run(rounds int) []float64 {
	out := make([]float64, 0, rounds+1)
	out = append(out, s.CorrectDiameter())
	for r := 0; r < rounds; r++ {
		s.Step()
		out = append(out, s.CorrectDiameter())
	}
	return out
}
