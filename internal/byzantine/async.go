package byzantine

import (
	"fmt"
	"math"
	"math/rand"
)

// This file adds the *asynchronous* rounds of Dolev et al.: each correct
// agent proceeds on the first n-f round-r values it receives (its own
// included), of which up to f may come from Byzantine agents. The paper
// states that this algorithm's contraction rate is asymptotically optimal
// for round-based algorithms when n > 5f (Section 1, discussion after
// Theorem 6); the resilience bound n > 5f of [14] was later improved to
// n > 3f by Abraham, Amit, Dolev [1], which is out of scope here.

// QuorumPicker chooses which n-f senders each correct agent hears in a
// round — the asynchrony adversary. Byzantine membership of quorums is
// the attack surface: stuffing a quorum with f Byzantine values maximizes
// damage.
type QuorumPicker interface {
	// Pick returns the quorum (bitmask over senders, must include self,
	// must have exactly n-f members) for the given recipient and round.
	Pick(round, recipient int, sys *AsyncSystem) uint64
}

// RandomQuorums samples uniform quorums that always include every
// Byzantine agent (worst case for value injection) and the recipient.
type RandomQuorums struct{ Rng *rand.Rand }

// Pick implements QuorumPicker.
func (q RandomQuorums) Pick(_, recipient int, sys *AsyncSystem) uint64 {
	mask := uint64(1) << uint(recipient)
	for b := range sys.byz {
		mask |= 1 << uint(b)
	}
	perm := q.Rng.Perm(sys.n)
	for _, j := range perm {
		if popcount(mask) == sys.n-sys.f {
			break
		}
		if j != recipient && !sys.byz[j] {
			mask |= 1 << uint(j)
		}
	}
	return mask
}

// SplitQuorums is the pinning adversary for the resilience boundary: it
// gives low-valued agents quorums of low correct values plus Byzantine
// lows, and symmetrically for high-valued agents.
type SplitQuorums struct{}

// Pick implements QuorumPicker.
func (SplitQuorums) Pick(_, recipient int, sys *AsyncSystem) uint64 {
	lo, hi := correctHull(sys.values)
	mid := (lo + hi) / 2
	recipientLow := sys.values[recipient] < mid
	type cand struct {
		id  int
		val float64
	}
	var cands []cand
	for j := 0; j < sys.n; j++ {
		if j == recipient || sys.byz[j] {
			continue
		}
		cands = append(cands, cand{j, sys.values[j]})
	}
	// Sort correct candidates so the recipient's side comes first.
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			less := cands[j].val < cands[i].val
			if !recipientLow {
				less = cands[j].val > cands[i].val
			}
			if less {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	mask := uint64(1) << uint(recipient)
	for b := range sys.byz {
		mask |= 1 << uint(b)
	}
	for _, c := range cands {
		if popcount(mask) == sys.n-sys.f {
			break
		}
		mask |= 1 << uint(c.id)
	}
	return mask
}

func popcount(m uint64) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}

// AsyncSystem is the asynchronous-round Byzantine system: correct agents
// step on n-f values per round (quorum chosen by the picker), trim f
// from each side, and take the midpoint of the remainder.
type AsyncSystem struct {
	n        int
	f        int
	byz      map[int]bool
	strategy Strategy
	picker   QuorumPicker
	values   []float64
	round    int
}

// NewAsyncSystem validates and builds the system. It requires n > 3f so
// the trimmed quorum (n-f values minus 2f trims) is nonempty; the
// classical convergence guarantee needs n > 5f, which callers assert per
// experiment.
func NewAsyncSystem(initial []float64, byzantine []int, strategy Strategy, picker QuorumPicker) (*AsyncSystem, error) {
	n := len(initial)
	if n < 1 {
		return nil, fmt.Errorf("byzantine: no agents")
	}
	byz := make(map[int]bool, len(byzantine))
	for _, b := range byzantine {
		if b < 0 || b >= n {
			return nil, fmt.Errorf("byzantine: agent %d out of range", b)
		}
		if byz[b] {
			return nil, fmt.Errorf("byzantine: duplicate agent %d", b)
		}
		byz[b] = true
	}
	f := len(byz)
	if n <= 3*f {
		return nil, fmt.Errorf("byzantine: async rounds need n > 3f, got n=%d f=%d", n, f)
	}
	values := make([]float64, n)
	for i, v := range initial {
		if byz[i] {
			values[i] = math.NaN()
		} else {
			values[i] = v
		}
	}
	return &AsyncSystem{n: n, f: f, byz: byz, strategy: strategy, picker: picker, values: values}, nil
}

// CorrectValues returns the correct agents' values in agent order.
func (s *AsyncSystem) CorrectValues() []float64 {
	out := make([]float64, 0, s.n-s.f)
	for i, v := range s.values {
		if !s.byz[i] {
			out = append(out, v)
		}
	}
	return out
}

// CorrectDiameter returns the diameter over correct agents.
func (s *AsyncSystem) CorrectDiameter() float64 {
	lo, hi := correctHull(s.values)
	if math.IsInf(lo, 1) {
		return 0
	}
	return hi - lo
}

// Step runs one asynchronous round.
func (s *AsyncSystem) Step() {
	s.round++
	next := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		if s.byz[i] {
			next[i] = math.NaN()
			continue
		}
		quorum := s.picker.Pick(s.round, i, s)
		if quorum&(1<<uint(i)) == 0 || popcount(quorum) != s.n-s.f {
			panic(fmt.Sprintf("byzantine: picker produced invalid quorum %b for agent %d", quorum, i))
		}
		var received []float64
		for j := 0; j < s.n; j++ {
			if quorum&(1<<uint(j)) == 0 {
				continue
			}
			if s.byz[j] {
				received = append(received, s.strategy.Send(s.round, j, i, s.values))
			} else {
				received = append(received, s.values[j])
			}
		}
		next[i] = TrimmedMidpoint(received, s.f)
	}
	s.values = next
}

// Run executes rounds and returns the correct diameters (index 0 =
// initial).
func (s *AsyncSystem) Run(rounds int) []float64 {
	out := make([]float64, 0, rounds+1)
	out = append(out, s.CorrectDiameter())
	for r := 0; r < rounds; r++ {
		s.Step()
		out = append(out, s.CorrectDiameter())
	}
	return out
}
