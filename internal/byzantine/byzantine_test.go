package byzantine_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/byzantine"
)

func TestTrimmedMidpoint(t *testing.T) {
	// f=1 on {0, 0, 1, 100}: trim to {0, 1}, midpoint 0.5.
	if got := byzantine.TrimmedMidpoint([]float64{100, 0, 1, 0}, 1); got != 0.5 {
		t.Errorf("TrimmedMidpoint = %v, want 0.5", got)
	}
	// f=0 degenerates to plain midpoint.
	if got := byzantine.TrimmedMidpoint([]float64{1, 3}, 0); got != 2 {
		t.Errorf("f=0 midpoint = %v, want 2", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-trimming did not panic")
			}
		}()
		byzantine.TrimmedMidpoint([]float64{1, 2}, 1)
	}()
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := byzantine.NewSystem(nil, nil, byzantine.Mirror{}); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := byzantine.NewSystem([]float64{1, 2}, []int{5}, byzantine.Mirror{}); err == nil {
		t.Error("out-of-range Byzantine agent accepted")
	}
	if _, err := byzantine.NewSystem([]float64{1, 2, 3}, []int{0, 0}, byzantine.Mirror{}); err == nil {
		t.Error("duplicate Byzantine agent accepted")
	}
	if _, err := byzantine.NewSystem([]float64{1, 2, 3}, []int{0, 1}, byzantine.Mirror{}); err == nil {
		t.Error("n <= 2f accepted")
	}
}

// TestValidityAndHalvingAboveResilience checks the [14] guarantees for
// n > 3f: correct values never leave the correct hull, and the correct
// diameter halves every round, against all implemented strategies.
func TestValidityAndHalvingAboveResilience(t *testing.T) {
	strategies := []byzantine.Strategy{
		byzantine.Echo{Value: 1e9},
		byzantine.Split{Magnitude: 1e9},
		byzantine.Mirror{},
	}
	rng := rand.New(rand.NewSource(91))
	for _, tc := range []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}} {
		for _, strat := range strategies {
			inputs := make([]float64, tc.n)
			for i := range inputs {
				inputs[i] = rng.Float64()
			}
			byzSet := rng.Perm(tc.n)[:tc.f]
			sys, err := byzantine.NewSystem(inputs, byzSet, strat)
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range sys.CorrectValues() {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			diams := sys.Run(10)
			for r := 1; r < len(diams); r++ {
				if diams[r] > diams[r-1]/2+1e-12 {
					t.Errorf("n=%d f=%d %s: round %d diameter %v did not halve from %v",
						tc.n, tc.f, strat.Name(), r, diams[r], diams[r-1])
				}
			}
			for _, v := range sys.CorrectValues() {
				if v < lo-1e-9 || v > hi+1e-9 {
					t.Errorf("n=%d f=%d %s: value %v escaped correct hull [%v,%v]",
						tc.n, tc.f, strat.Name(), v, lo, hi)
				}
			}
		}
	}
}

// TestSplitAttackPinsBelowResilience shows sharpness of the n > 3f
// requirement (reference [19] of the paper): with n = 3f the split
// strategy keeps two correct agents at distance Δ forever.
func TestSplitAttackPinsBelowResilience(t *testing.T) {
	// n = 3, f = 1: correct agents 0 (value 0) and 1 (value 1); agent 2
	// Byzantine. (n > 2f holds, so trimming is defined, but n <= 3f.)
	sys, err := byzantine.NewSystem([]float64{0, 1, 0}, []int{2}, byzantine.Split{Magnitude: 1})
	if err != nil {
		t.Fatal(err)
	}
	diams := sys.Run(8)
	for r, d := range diams {
		if math.Abs(d-1) > 1e-12 {
			t.Fatalf("round %d: diameter %v, want the attack to pin it at 1", r, d)
		}
	}
}

// TestMirrorKeepsFixpoint: the mirror strategy feeds each agent its own
// value; with everything else fixed the trimmed midpoint still contracts
// for n > 3f (checked above); here we pin the exact one-round outcome on
// a hand-computed case.
func TestMirrorExactRound(t *testing.T) {
	// n = 4, f = 1, byz = {3}, values (0, 1, 0.5).
	// Agent 0 receives {0, 1, 0.5, 0(mirror)} -> sorted {0,0,0.5,1} ->
	// trimmed {0, 0.5} -> 0.25.
	// Agent 1 receives {0, 1, 0.5, 1} -> trimmed {0.5, 1} -> 0.75.
	// Agent 2 receives {0, 1, 0.5, 0.5} -> trimmed {0.5, 0.5} -> 0.5.
	sys, err := byzantine.NewSystem([]float64{0, 1, 0.5, 99}, []int{3}, byzantine.Mirror{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Step()
	got := sys.CorrectValues()
	want := []float64{0.25, 0.75, 0.5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("agent %d: %v, want %v", i, got[i], want[i])
		}
	}
	if sys.Round() != 1 || sys.N() != 4 || sys.F() != 1 {
		t.Errorf("metadata wrong: round=%d n=%d f=%d", sys.Round(), sys.N(), sys.F())
	}
}

// TestHalvingIsTightForCautious reproduces the [14] tightness anecdote the
// paper recounts: there is a configuration and strategy where the
// trimmed-midpoint contraction is exactly 1/2 — cautious algorithms
// cannot beat it, which is what made the paper's algorithm-independent
// bounds an open problem.
func TestHalvingIsTightForCautious(t *testing.T) {
	// From TestMirrorExactRound: diameter went 1 -> 0.5 exactly.
	sys, err := byzantine.NewSystem([]float64{0, 1, 0.5, 99}, []int{3}, byzantine.Mirror{})
	if err != nil {
		t.Fatal(err)
	}
	d := sys.Run(1)
	if d[0] != 1 || d[1] != 0.5 {
		t.Errorf("diameters %v, want exact halving 1 -> 0.5", d)
	}
}

func TestStrategyNames(t *testing.T) {
	if (byzantine.Echo{Value: 2}).Name() != "echo(2)" {
		t.Error("Echo name")
	}
	if (byzantine.Split{}).Name() != "split" || (byzantine.Mirror{}).Name() != "mirror" {
		t.Error("strategy names")
	}
}
