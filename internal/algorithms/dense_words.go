package algorithms

import (
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/graph"
)

// This file holds the multi-word (n > 64) variants of the dense fold
// kernels and steppers. Each is the word-parallel generalization of its
// single-word counterpart in dense.go / dense_batch.go: the same float
// operations on the same values in the same ascending-sender order, with
// the mask scan iterating the receiver's row words instead of one uint64.
// The single-word kernels keep their own code paths untouched — StepDense
// and StepDenseBatch dispatch once per call on the graph's word count —
// so n <= 64 performance and fingerprints are unchanged by construction.
//
// Fold memoization across receivers compares row contents (rowEq) instead
// of uint64 equality; everything else about the bit-identity contract
// (exact min/max selections, order-sensitive sums folded in index order)
// carries over verbatim.

// rowEq reports whether two equal-length mask rows hold the same bits.
func rowEq(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// foldMinMaxW is foldMinMax over a multi-word mask row: min and max of y
// over the row's set bits, visited in ascending index. The row must be
// non-empty (every row carries the self-loop).
func foldMinMaxW(y []float64, row []uint64) (lo, hi float64) {
	first := true
	for wi, m := range row {
		base := wi * 64
		for ; m != 0; m &= m - 1 {
			v := y[base+bits.TrailingZeros64(m)]
			if first {
				lo, hi, first = v, v, false
				continue
			}
			lo = fmin(lo, v)
			hi = fmax(hi, v)
		}
	}
	return lo, hi
}

// foldMinMaxDeltaW extends an already-computed fold by the values at the
// delta row's set bits; bit-identical to folding the union row directly
// because fmin/fmax are exact multiset selections (see foldMinMaxDelta).
func foldMinMaxDeltaW(y []float64, delta []uint64, lo0, hi0 float64) (lo, hi float64) {
	lo, hi = lo0, hi0
	for wi, m := range delta {
		base := wi * 64
		for ; m != 0; m &= m - 1 {
			v := y[base+bits.TrailingZeros64(m)]
			lo = fmin(lo, v)
			hi = fmax(hi, v)
		}
	}
	return lo, hi
}

// foldIntervalW is foldInterval over a multi-word mask row.
func foldIntervalW(loPlane, hiPlane []float64, row []uint64) (lo, hi float64) {
	first := true
	for wi, m := range row {
		base := wi * 64
		for ; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			if first {
				lo, hi, first = loPlane[i], hiPlane[i], false
				continue
			}
			lo = fmin(lo, loPlane[i])
			hi = fmax(hi, hiPlane[i])
		}
	}
	return lo, hi
}

// foldIntervalDeltaW extends an interval fold by the plane values at the
// delta row's set bits.
func foldIntervalDeltaW(loPlane, hiPlane []float64, delta []uint64, lo0, hi0 float64) (lo, hi float64) {
	lo, hi = lo0, hi0
	for wi, m := range delta {
		base := wi * 64
		for ; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			lo = fmin(lo, loPlane[i])
			hi = fmax(hi, hiPlane[i])
		}
	}
	return lo, hi
}

// foldMeanW is foldMean over a multi-word mask row: the sum starts at 0.0
// and adds in ascending index, exactly the Agent path's Deliver order.
func foldMeanW(y []float64, row []uint64) float64 {
	sum, count := 0.0, 0
	for wi, m := range row {
		base := wi * 64
		for ; m != 0; m &= m - 1 {
			sum += y[base+bits.TrailingZeros64(m)]
			count++
		}
	}
	return sum / float64(count)
}

// foldFlowSumW is foldFlowSum over a multi-word mask row.
func foldFlowSumW(y []float64, degs []int, row []uint64) float64 {
	sum := 0.0
	for wi, m := range row {
		base := wi * 64
		for ; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			sum += y[i] / float64(degs[i])
		}
	}
	return sum
}

// scanInformedW reports whether the mask row contains an informed sender
// and the root value carried by the first (lowest-index) one.
func scanInformedW(inf0, rv0 []float64, row []uint64) (heard bool, value float64) {
	for wi, m := range row {
		base := wi * 64
		for ; m != 0; m &= m - 1 {
			if i := base + bits.TrailingZeros64(m); inf0[i] == 1 {
				return true, rv0[i]
			}
		}
	}
	return false, 0
}

// ---- multi-word StepDense bodies ----

func midpointStepDenseW(dst, src *core.DenseState, g graph.Graph) {
	y, out := src.Y, dst.Y
	var last []uint64
	var mid float64
	for j := 0; j < src.N(); j++ {
		if row := g.InRow(j); last == nil || !rowEq(row, last) {
			lo, hi := foldMinMaxW(y, row)
			mid = (lo + hi) / 2
			last = row
		}
		out[j] = mid
	}
}

func meanStepDenseW(dst, src *core.DenseState, g graph.Graph) {
	y, out := src.Y, dst.Y
	var last []uint64
	var mean float64
	for j := 0; j < src.N(); j++ {
		if row := g.InRow(j); last == nil || !rowEq(row, last) {
			mean = foldMeanW(y, row)
			last = row
		}
		out[j] = mean
	}
}

func (s SelfWeighted) stepDenseW(dst, src *core.DenseState, g graph.Graph) {
	y, out := src.Y, dst.Y
	for j := 0; j < src.N(); j++ {
		sum, count := 0.0, 0
		for wi, m := range g.InRow(j) {
			base := wi * 64
			for ; m != 0; m &= m - 1 {
				i := base + bits.TrailingZeros64(m)
				if i == j {
					continue
				}
				sum += y[i]
				count++
			}
		}
		if count == 0 {
			out[j] = y[j]
			continue
		}
		out[j] = s.Alpha*y[j] + (1-s.Alpha)*sum/float64(count)
	}
}

func amortizedStepDenseW(dst, src *core.DenseState, g graph.Graph) {
	n := src.N()
	phase := amortizedPhase(n)
	round := dst.Round()
	y := src.Y
	lo0, hi0 := src.Plane(amortizedPlaneLo), src.Plane(amortizedPlaneHi)
	oy := dst.Y
	olo, ohi := dst.Plane(amortizedPlaneLo), dst.Plane(amortizedPlaneHi)
	phaseEnd := round%phase == 0
	var last []uint64
	var lo, hi float64
	for j := 0; j < n; j++ {
		if row := g.InRow(j); last == nil || !rowEq(row, last) {
			last = row
			lo, hi = foldIntervalW(lo0, hi0, row)
		}
		if phaseEnd {
			yj := (lo + hi) / 2
			oy[j], olo[j], ohi[j] = yj, yj, yj
		} else {
			oy[j], olo[j], ohi[j] = y[j], lo, hi
		}
	}
}

func (a QuantizedMidpoint) stepDenseW(dst, src *core.DenseState, g graph.Graph) {
	y, out := src.Y, dst.Y
	var last []uint64
	var snapped float64
	for j := 0; j < src.N(); j++ {
		if row := g.InRow(j); last == nil || !rowEq(row, last) {
			last = row
			lo, hi := foldMinMaxW(y, row)
			snapped = math.Floor((lo+hi)/(2*a.Q)) * a.Q
		}
		out[j] = snapped
	}
}

func floodRootStepDenseW(dst, src *core.DenseState, g graph.Graph) {
	n := src.N()
	y := src.Y
	inf0, rv0 := src.Plane(floodPlaneInformed), src.Plane(floodPlaneRoot)
	oy := dst.Y
	oinf, orv := dst.Plane(floodPlaneInformed), dst.Plane(floodPlaneRoot)
	var last []uint64
	heard := false
	var heardValue float64
	for j := 0; j < n; j++ {
		oy[j], oinf[j], orv[j] = y[j], inf0[j], rv0[j]
		if inf0[j] == 1 {
			continue
		}
		if row := g.InRow(j); last == nil || !rowEq(row, last) {
			last = row
			heard, heardValue = scanInformedW(inf0, rv0, row)
		}
		if heard {
			oy[j], oinf[j], orv[j] = heardValue, 1, heardValue
		}
	}
}

func (f FlowSum) stepDenseW(dst, src *core.DenseState, g graph.Graph) {
	y, out := src.Y, dst.Y
	var last []uint64
	var sum float64
	for j := 0; j < src.N(); j++ {
		if row := g.InRow(j); last == nil || !rowEq(row, last) {
			last = row
			sum = foldFlowSumW(y, f.OutDegrees, row)
		}
		out[j] = sum
	}
}

// ---- multi-word StepDenseBatch bodies ----

// segRecvBounds intersects a segment's receiver range with a receiver
// shard's bounds; an empty intersection means the shard skips the segment.
func segRecvBounds(seg *core.MaskSeg, recvLo, recvHi int) (lo, hi int) {
	lo, hi = seg.Start, seg.End
	if lo < recvLo {
		lo = recvLo
	}
	if hi > recvHi {
		hi = recvHi
	}
	return lo, hi
}

func midpointStepDenseBatchW(dst, src *core.BatchState, plan *core.StepPlan) {
	los, his := plan.F0, plan.F1
	segLo, segHi := plan.SegRange()
	recvLo, recvHi := plan.RecvRange(src.N())
	recvShard := plan.RecvHi != 0
	for _, r := range plan.Runs {
		y, out := src.RunY(r), dst.RunY(r)
		var hull hullAcc
		for si := segLo; si < segHi; si++ {
			seg := &plan.Segs[si]
			jLo, jHi := seg.Start, seg.End
			if recvShard {
				if jLo, jHi = segRecvBounds(seg, recvLo, recvHi); jLo >= jHi {
					continue
				}
			}
			var lo, hi float64
			switch {
			case recvShard:
				// Receiver shards refold every touched segment from its own
				// mask: cross-segment reuse could read a fold slot owned by a
				// segment this shard never visited. Bit-transparent — exact
				// multiset selection, same value multiset.
				lo, hi = foldMinMaxW(y, plan.MaskRow(seg))
			case seg.Fold != si && seg.Fold >= segLo:
				lo, hi = los[seg.Fold], his[seg.Fold]
			case seg.Fold == si && seg.Base >= segLo:
				lo, hi = foldMinMaxDeltaW(y, plan.DeltaRow(seg), los[seg.Base], his[seg.Base])
				los[si], his[si] = lo, hi
			default:
				lo, hi = foldMinMaxW(y, plan.MaskRow(seg))
				los[si], his[si] = lo, hi
			}
			mid := (lo + hi) / 2
			if plan.WantHull {
				hull.add(mid)
			}
			for j := jLo; j < jHi; j++ {
				out[j] = mid
			}
		}
		if plan.WantHull {
			hull.commit(plan, r)
		}
	}
	plan.HullDone = plan.WantHull
}

func meanStepDenseBatchW(dst, src *core.BatchState, plan *core.StepPlan) {
	means := plan.F0
	for _, r := range plan.Runs {
		y, out := src.RunY(r), dst.RunY(r)
		var hull hullAcc
		for si := range plan.Segs {
			seg := &plan.Segs[si]
			var mean float64
			if seg.Fold == si {
				mean = foldMeanW(y, plan.MaskRow(seg))
				means[si] = mean
			} else {
				mean = means[seg.Fold]
			}
			if plan.WantHull {
				hull.add(mean)
			}
			for j := seg.Start; j < seg.End; j++ {
				out[j] = mean
			}
		}
		if plan.WantHull {
			hull.commit(plan, r)
		}
	}
	plan.HullDone = plan.WantHull
}

func (a QuantizedMidpoint) stepDenseBatchW(dst, src *core.BatchState, plan *core.StepPlan) {
	los, his := plan.F0, plan.F1
	segLo, segHi := plan.SegRange()
	recvLo, recvHi := plan.RecvRange(src.N())
	recvShard := plan.RecvHi != 0
	for _, r := range plan.Runs {
		y, out := src.RunY(r), dst.RunY(r)
		var hull hullAcc
		for si := segLo; si < segHi; si++ {
			seg := &plan.Segs[si]
			jLo, jHi := seg.Start, seg.End
			if recvShard {
				if jLo, jHi = segRecvBounds(seg, recvLo, recvHi); jLo >= jHi {
					continue
				}
			}
			var lo, hi float64
			switch {
			case recvShard:
				lo, hi = foldMinMaxW(y, plan.MaskRow(seg))
			case seg.Fold != si && seg.Fold >= segLo:
				lo, hi = los[seg.Fold], his[seg.Fold]
			case seg.Fold == si && seg.Base >= segLo:
				lo, hi = foldMinMaxDeltaW(y, plan.DeltaRow(seg), los[seg.Base], his[seg.Base])
				los[si], his[si] = lo, hi
			default:
				lo, hi = foldMinMaxW(y, plan.MaskRow(seg))
				los[si], his[si] = lo, hi
			}
			snapped := math.Floor((lo+hi)/(2*a.Q)) * a.Q
			if plan.WantHull {
				hull.add(snapped)
			}
			for j := jLo; j < jHi; j++ {
				out[j] = snapped
			}
		}
		if plan.WantHull {
			hull.commit(plan, r)
		}
	}
	plan.HullDone = plan.WantHull
}

func amortizedStepDenseBatchW(dst, src *core.BatchState, plan *core.StepPlan) {
	n := src.N()
	phase := amortizedPhase(n)
	phaseEnd := dst.Round()%phase == 0
	los, his := plan.F0, plan.F1
	segLo, segHi := plan.SegRange()
	recvLo, recvHi := plan.RecvRange(n)
	recvShard := plan.RecvHi != 0
	for _, r := range plan.Runs {
		y := src.RunY(r)
		lo0, hi0 := src.RunPlane(r, amortizedPlaneLo), src.RunPlane(r, amortizedPlaneHi)
		oy := dst.RunY(r)
		olo, ohi := dst.RunPlane(r, amortizedPlaneLo), dst.RunPlane(r, amortizedPlaneHi)
		var hull hullAcc
		for si := segLo; si < segHi; si++ {
			seg := &plan.Segs[si]
			jLo, jHi := seg.Start, seg.End
			if recvShard {
				if jLo, jHi = segRecvBounds(seg, recvLo, recvHi); jLo >= jHi {
					continue
				}
			}
			var lo, hi float64
			switch {
			case recvShard:
				lo, hi = foldIntervalW(lo0, hi0, plan.MaskRow(seg))
			case seg.Fold != si && seg.Fold >= segLo:
				lo, hi = los[seg.Fold], his[seg.Fold]
			case seg.Fold == si && seg.Base >= segLo:
				lo, hi = foldIntervalDeltaW(lo0, hi0, plan.DeltaRow(seg), los[seg.Base], his[seg.Base])
				los[si], his[si] = lo, hi
			default:
				lo, hi = foldIntervalW(lo0, hi0, plan.MaskRow(seg))
				los[si], his[si] = lo, hi
			}
			if phaseEnd {
				mid := (lo + hi) / 2
				if plan.WantHull {
					hull.add(mid)
				}
				for j := jLo; j < jHi; j++ {
					oy[j], olo[j], ohi[j] = mid, mid, mid
				}
			} else {
				for j := jLo; j < jHi; j++ {
					oy[j], olo[j], ohi[j] = y[j], lo, hi
					if plan.WantHull {
						hull.add(y[j])
					}
				}
			}
		}
		if plan.WantHull {
			hull.commit(plan, r)
		}
	}
	plan.HullDone = plan.WantHull
}

func (f FlowSum) stepDenseBatchW(dst, src *core.BatchState, plan *core.StepPlan) {
	sums := plan.F0
	for _, r := range plan.Runs {
		y, out := src.RunY(r), dst.RunY(r)
		var hull hullAcc
		for si := range plan.Segs {
			seg := &plan.Segs[si]
			var sum float64
			if seg.Fold == si {
				sum = foldFlowSumW(y, f.OutDegrees, plan.MaskRow(seg))
				sums[si] = sum
			} else {
				sum = sums[seg.Fold]
			}
			if plan.WantHull {
				hull.add(sum)
			}
			for j := seg.Start; j < seg.End; j++ {
				out[j] = sum
			}
		}
		if plan.WantHull {
			hull.commit(plan, r)
		}
	}
	plan.HullDone = plan.WantHull
}

func floodRootStepDenseBatchW(dst, src *core.BatchState, plan *core.StepPlan) {
	heards, values := plan.F0, plan.F1
	for _, r := range plan.Runs {
		y := src.RunY(r)
		inf0, rv0 := src.RunPlane(r, floodPlaneInformed), src.RunPlane(r, floodPlaneRoot)
		oy := dst.RunY(r)
		oinf, orv := dst.RunPlane(r, floodPlaneInformed), dst.RunPlane(r, floodPlaneRoot)
		var hull hullAcc
		for si := range plan.Segs {
			seg := &plan.Segs[si]
			scanned := false
			for j := seg.Start; j < seg.End; j++ {
				oy[j], oinf[j], orv[j] = y[j], inf0[j], rv0[j]
				if inf0[j] != 1 {
					if !scanned {
						scanned = true
						if seg.Fold != si && heards[seg.Fold] >= 0 {
							heards[si], values[si] = heards[seg.Fold], values[seg.Fold]
						} else {
							heard, v := scanInformedW(inf0, rv0, plan.MaskRow(seg))
							if heard {
								heards[si], values[si] = 1, v
							} else {
								heards[si], values[si] = 0, 0
							}
						}
					}
					if heards[si] == 1 {
						oy[j], oinf[j], orv[j] = values[si], 1, values[si]
					}
				}
				if plan.WantHull {
					hull.add(oy[j])
				}
			}
			if !scanned {
				heards[si] = -1
			}
		}
		if plan.WantHull {
			hull.commit(plan, r)
		}
	}
	plan.HullDone = plan.WantHull
}
