package algorithms

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/graph"
)

// This file implements the dense struct-of-arrays backend
// (core.DenseAlgorithm) for every algorithm in the package, plus the
// agent<->dense state bridges (core.DenseStateWriter/Reader) and the dense
// fingerprints that keep the valency engine's transposition tables shared
// between backends.
//
// Bit-identity contract: each stepper performs exactly the float
// operations of the corresponding Agent's Deliver, visiting senders in
// ascending index — the order Step builds the inbox in. min/max folds may
// start from a different element of the same multiset (math.Min/Max are
// exact selections, so the result is order-independent); sums and
// averaged updates replicate the Deliver expressions verbatim. The
// differential tests in dense_test.go pin the equivalence on randomized
// graph sequences, and TestDenseFingerprintParity pins the fingerprint
// encodings.

// Plane indices of the algorithms with auxiliary state.
const (
	amortizedPlaneLo = 0
	amortizedPlaneHi = 1

	floodPlaneInformed = 0
	floodPlaneRoot     = 1
)

// fmin and fmax are inlinable replacements for math.Min and math.Max,
// which are plain function calls on this toolchain and dominate the
// dense stepper profile. They are pointwise bit-identical to the math
// versions — same canonical NaN on NaN inputs, same -0/+0 tie-breaks —
// which TestFminFmaxMatchMath pins over the special values. The ordered
// comparisons and the nonzero-tie case (contracted states hit the tie
// on every fold) stay on the inlined path; only zero ties and unordered
// (NaN) inputs fall through to the outlined slow halves, keeping fmin
// and fmax themselves within the inliner's budget so folds pay no call
// per element.

func fmin(x, y float64) float64 {
	if x < y || (x == y && x != 0) {
		return x
	}
	return fminSlow(x, y)
}

// fminSlow takes over when x is not the ordered-or-nonzero-tie winner:
// a new running minimum (the common outlined case, one cheap branch),
// zero ties (math.Min prefers -0), and unordered inputs (a NaN is
// involved, but math.Min ranks -Inf above it).
func fminSlow(x, y float64) float64 {
	if y < x {
		return y
	}
	if x == y {
		if math.Signbit(x) {
			return x
		}
		return y
	}
	if x == math.Inf(-1) || y == math.Inf(-1) {
		return math.Inf(-1)
	}
	return math.NaN()
}

func fmax(x, y float64) float64 {
	if x > y || (x == y && x != 0) {
		return x
	}
	return fmaxSlow(x, y)
}

// fmaxSlow takes over when x is not the ordered-or-nonzero-tie winner:
// a new running maximum, zero ties (math.Max prefers +0), and unordered
// inputs (a NaN is involved, but math.Max ranks +Inf above it).
func fmaxSlow(x, y float64) float64 {
	if y > x {
		return y
	}
	if x == y {
		if !math.Signbit(x) {
			return x
		}
		return y
	}
	if x == math.Inf(1) || y == math.Inf(1) {
		return math.Inf(1)
	}
	return math.NaN()
}

// ---- Midpoint ----

// DensePlanes implements core.DenseAlgorithm.
func (Midpoint) DensePlanes() int { return 0 }

// InitDense implements core.DenseAlgorithm.
func (Midpoint) InitDense(*core.DenseState) {}

// foldMinMax returns the min and max of y over the mask's set bits. The
// scan is range-based (no per-element bounds checks) in ascending index —
// the Agent path's inbox order; the fold result is a pure function of the
// value multiset anyway (math.Min/Max are exact selections with
// multiset-determined NaN and -0 handling), which is what licenses the
// per-mask memoization in the steppers: receivers sharing an in-mask
// share the fold. m must be non-empty.
func foldMinMax(y []float64, m uint64) (lo, hi float64) {
	first := bits.TrailingZeros64(m)
	lo = y[first]
	hi = lo
	bit := uint64(1) << uint(first)
	for _, v := range y[first+1:] {
		bit <<= 1
		if m&bit == 0 {
			continue
		}
		lo = fmin(lo, v)
		hi = fmax(hi, v)
	}
	return lo, hi
}

// foldMinMaxDelta extends an already-computed fold (lo0, hi0) by the
// values at delta's set bits — the subset-delta path of MaskSeg.Base.
// Bit-identical to folding the union mask directly in index order:
// fmin/fmax are exact multiset selections (NaN and signed-zero handling
// included), so association order is free. delta must be non-empty.
func foldMinMaxDelta(y []float64, delta uint64, lo0, hi0 float64) (lo, hi float64) {
	lo, hi = lo0, hi0
	for m := delta; m != 0; m &= m - 1 {
		v := y[bits.TrailingZeros64(m)]
		lo = fmin(lo, v)
		hi = fmax(hi, v)
	}
	return lo, hi
}

// StepDense implements core.DenseAlgorithm. Receivers with equal in-masks
// (ubiquitous in the paper's families: complete, deaf, Psi, silence
// blocks) share one fold via the last-mask memo.
func (Midpoint) StepDense(dst, src *core.DenseState, g graph.Graph) {
	if g.Words() > 1 {
		midpointStepDenseW(dst, src, g)
		return
	}
	y, out := src.Y, dst.Y
	var lastMask uint64 // 0 is impossible: every mask carries the self-loop
	var mid float64
	for j := 0; j < src.N(); j++ {
		if m := g.InMask(j); m != lastMask {
			lo, hi := foldMinMax(y, m)
			mid = (lo + hi) / 2
			lastMask = m
		}
		out[j] = mid
	}
}

// OutputsDense implements core.DenseAlgorithm.
func (Midpoint) OutputsDense(st *core.DenseState, out []float64) { copy(out, st.Y) }

// AppendDenseFingerprint implements core.DenseFingerprinter.
func (Midpoint) AppendDenseFingerprint(dst []byte, st *core.DenseState, i int) ([]byte, bool) {
	dst = append(dst, tagMidpoint)
	return core.AppendFloat(dst, st.Y[i]), true
}

func (a *midpointAgent) WriteDense(st *core.DenseState, i int) bool {
	st.Y[i] = a.y
	return true
}

func (a *midpointAgent) ReadDense(st *core.DenseState, i int) bool {
	a.y = st.Y[i]
	return true
}

// ---- TwoThirds ----

// DensePlanes implements core.DenseAlgorithm.
func (TwoThirds) DensePlanes() int { return 0 }

// InitDense implements core.DenseAlgorithm. It panics unless n == 2,
// mirroring NewAgent.
func (TwoThirds) InitDense(st *core.DenseState) {
	if st.N() != 2 {
		panic(fmt.Sprintf("algorithms: TwoThirds requires n = 2, got %d", st.N()))
	}
}

// StepDense implements core.DenseAlgorithm.
func (TwoThirds) StepDense(dst, src *core.DenseState, g graph.Graph) {
	for j := 0; j < 2; j++ {
		o := 1 - j
		if g.InMask(j)&(1<<uint(o)) != 0 {
			dst.Y[j] = src.Y[j]/3 + 2*src.Y[o]/3
		} else {
			dst.Y[j] = src.Y[j]
		}
	}
}

// OutputsDense implements core.DenseAlgorithm.
func (TwoThirds) OutputsDense(st *core.DenseState, out []float64) { copy(out, st.Y) }

// AppendDenseFingerprint implements core.DenseFingerprinter.
func (TwoThirds) AppendDenseFingerprint(dst []byte, st *core.DenseState, i int) ([]byte, bool) {
	dst = append(dst, tagTwoThirds)
	dst = core.AppendInt(dst, i)
	return core.AppendFloat(dst, st.Y[i]), true
}

func (a *twoThirdsAgent) WriteDense(st *core.DenseState, i int) bool {
	st.Y[i] = a.y
	return true
}

func (a *twoThirdsAgent) ReadDense(st *core.DenseState, i int) bool {
	a.y = st.Y[i]
	return true
}

// ---- Mean ----

// DensePlanes implements core.DenseAlgorithm.
func (Mean) DensePlanes() int { return 0 }

// InitDense implements core.DenseAlgorithm.
func (Mean) InitDense(*core.DenseState) {}

// foldMean returns the mean of y over the mask's set bits. The fold
// starts at 0.0 like the Agent path's Deliver: the leading zero addition
// matters for -0 inputs. m must be non-empty.
func foldMean(y []float64, m uint64) float64 {
	count := bits.OnesCount64(m)
	sum := 0.0
	first := bits.TrailingZeros64(m)
	bit := uint64(1) << uint(first)
	for _, v := range y[first:] {
		if m&bit != 0 {
			sum += v
		}
		bit <<= 1
	}
	return sum / float64(count)
}

// StepDense implements core.DenseAlgorithm. The received mean is a pure
// function of the in-mask, so receivers sharing a mask share the fold.
func (Mean) StepDense(dst, src *core.DenseState, g graph.Graph) {
	if g.Words() > 1 {
		meanStepDenseW(dst, src, g)
		return
	}
	y, out := src.Y, dst.Y
	var lastMask uint64
	var mean float64
	for j := 0; j < src.N(); j++ {
		if m := g.InMask(j); m != lastMask {
			lastMask = m
			mean = foldMean(y, m)
		}
		out[j] = mean
	}
}

// OutputsDense implements core.DenseAlgorithm.
func (Mean) OutputsDense(st *core.DenseState, out []float64) { copy(out, st.Y) }

// AppendDenseFingerprint implements core.DenseFingerprinter.
func (Mean) AppendDenseFingerprint(dst []byte, st *core.DenseState, i int) ([]byte, bool) {
	dst = append(dst, tagMean)
	return core.AppendFloat(dst, st.Y[i]), true
}

func (a *meanAgent) WriteDense(st *core.DenseState, i int) bool {
	st.Y[i] = a.y
	return true
}

func (a *meanAgent) ReadDense(st *core.DenseState, i int) bool {
	a.y = st.Y[i]
	return true
}

// ---- SelfWeighted ----

// DensePlanes implements core.DenseAlgorithm.
func (SelfWeighted) DensePlanes() int { return 0 }

// InitDense implements core.DenseAlgorithm. It panics for Alpha outside
// [0, 1], mirroring NewAgent.
func (s SelfWeighted) InitDense(*core.DenseState) {
	if s.Alpha < 0 || s.Alpha > 1 {
		panic(fmt.Sprintf("algorithms: SelfWeighted alpha %v outside [0,1]", s.Alpha))
	}
}

// StepDense implements core.DenseAlgorithm.
func (s SelfWeighted) StepDense(dst, src *core.DenseState, g graph.Graph) {
	if g.Words() > 1 {
		s.stepDenseW(dst, src, g)
		return
	}
	y, out := src.Y, dst.Y
	for j := 0; j < src.N(); j++ {
		sum, count := 0.0, 0
		for m := g.InMask(j); m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if i == j {
				continue
			}
			sum += y[i]
			count++
		}
		if count == 0 {
			out[j] = y[j]
			continue
		}
		out[j] = s.Alpha*y[j] + (1-s.Alpha)*sum/float64(count)
	}
}

// OutputsDense implements core.DenseAlgorithm.
func (SelfWeighted) OutputsDense(st *core.DenseState, out []float64) { copy(out, st.Y) }

// AppendDenseFingerprint implements core.DenseFingerprinter.
func (s SelfWeighted) AppendDenseFingerprint(dst []byte, st *core.DenseState, i int) ([]byte, bool) {
	dst = append(dst, tagSelfWeighted)
	dst = core.AppendInt(dst, i)
	dst = core.AppendFloat(dst, s.Alpha)
	return core.AppendFloat(dst, st.Y[i]), true
}

func (a *selfWeightedAgent) WriteDense(st *core.DenseState, i int) bool {
	st.Y[i] = a.y
	return true
}

func (a *selfWeightedAgent) ReadDense(st *core.DenseState, i int) bool {
	a.y = st.Y[i]
	return true
}

// ---- AmortizedMidpoint ----

// amortizedPhase returns the phase length for n agents, as NewAgent
// computes it.
func amortizedPhase(n int) int {
	phase := n - 1
	if phase < 1 {
		phase = 1
	}
	return phase
}

// DensePlanes implements core.DenseAlgorithm: the running lo/hi interval.
func (AmortizedMidpoint) DensePlanes() int { return 2 }

// InitDense implements core.DenseAlgorithm.
func (AmortizedMidpoint) InitDense(st *core.DenseState) {
	copy(st.Plane(amortizedPlaneLo), st.Y)
	copy(st.Plane(amortizedPlaneHi), st.Y)
}

// StepDense implements core.DenseAlgorithm. The agent's fold starts at
// its own running interval, but the self-loop puts that interval in the
// received multiset anyway, so the result is a pure function of the
// in-mask and receivers sharing a mask share the fold (min/max are exact
// selections — see foldMinMax).
func (AmortizedMidpoint) StepDense(dst, src *core.DenseState, g graph.Graph) {
	if g.Words() > 1 {
		amortizedStepDenseW(dst, src, g)
		return
	}
	n := src.N()
	phase := amortizedPhase(n)
	round := dst.Round()
	y := src.Y
	lo0, hi0 := src.Plane(amortizedPlaneLo), src.Plane(amortizedPlaneHi)
	oy := dst.Y
	olo, ohi := dst.Plane(amortizedPlaneLo), dst.Plane(amortizedPlaneHi)
	phaseEnd := round%phase == 0
	var lastMask uint64
	var lo, hi float64
	for j := 0; j < n; j++ {
		if m := g.InMask(j); m != lastMask {
			lastMask = m
			lo, hi = foldInterval(lo0, hi0, m)
		}
		if phaseEnd {
			yj := (lo + hi) / 2
			oy[j], olo[j], ohi[j] = yj, yj, yj
		} else {
			oy[j], olo[j], ohi[j] = y[j], lo, hi
		}
	}
}

// OutputsDense implements core.DenseAlgorithm.
func (AmortizedMidpoint) OutputsDense(st *core.DenseState, out []float64) { copy(out, st.Y) }

// AppendDenseFingerprint implements core.DenseFingerprinter.
func (AmortizedMidpoint) AppendDenseFingerprint(dst []byte, st *core.DenseState, i int) ([]byte, bool) {
	dst = append(dst, tagAmortized)
	dst = core.AppendInt(dst, amortizedPhase(st.N()))
	dst = core.AppendFloat(dst, st.Y[i])
	dst = core.AppendFloat(dst, st.Plane(amortizedPlaneLo)[i])
	return core.AppendFloat(dst, st.Plane(amortizedPlaneHi)[i]), true
}

func (a *amortizedAgent) WriteDense(st *core.DenseState, i int) bool {
	st.Y[i] = a.y
	st.Plane(amortizedPlaneLo)[i] = a.lo
	st.Plane(amortizedPlaneHi)[i] = a.hi
	return true
}

func (a *amortizedAgent) ReadDense(st *core.DenseState, i int) bool {
	a.y = st.Y[i]
	a.lo = st.Plane(amortizedPlaneLo)[i]
	a.hi = st.Plane(amortizedPlaneHi)[i]
	return true
}

// foldInterval folds min over loPlane and max over hiPlane across the
// mask's set bits, in ascending index. m must be non-empty.
func foldInterval(loPlane, hiPlane []float64, m uint64) (lo, hi float64) {
	first := bits.TrailingZeros64(m)
	lo, hi = loPlane[first], hiPlane[first]
	bit := uint64(1) << uint(first)
	for i := first + 1; i < len(loPlane); i++ {
		bit <<= 1
		if m&bit == 0 {
			continue
		}
		lo = fmin(lo, loPlane[i])
		hi = fmax(hi, hiPlane[i])
	}
	return lo, hi
}

// foldIntervalDelta extends an already-computed interval fold by the
// plane values at delta's set bits; see foldMinMaxDelta for why this is
// bit-identical to folding the union mask. delta must be non-empty.
func foldIntervalDelta(loPlane, hiPlane []float64, delta uint64, lo0, hi0 float64) (lo, hi float64) {
	lo, hi = lo0, hi0
	for m := delta; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		lo = fmin(lo, loPlane[i])
		hi = fmax(hi, hiPlane[i])
	}
	return lo, hi
}

// ---- QuantizedMidpoint ----

// DensePlanes implements core.DenseAlgorithm.
func (QuantizedMidpoint) DensePlanes() int { return 0 }

// InitDense implements core.DenseAlgorithm: it validates Q and snaps the
// inputs down to the grid, mirroring NewAgent.
func (a QuantizedMidpoint) InitDense(st *core.DenseState) {
	if !(a.Q > 0) {
		panic(fmt.Sprintf("algorithms: QuantizedMidpoint requires Q > 0, got %v", a.Q))
	}
	for i, v := range st.Y {
		st.Y[i] = math.Floor(v/a.Q) * a.Q
	}
}

// StepDense implements core.DenseAlgorithm, sharing folds across equal
// in-masks like Midpoint.
func (a QuantizedMidpoint) StepDense(dst, src *core.DenseState, g graph.Graph) {
	if g.Words() > 1 {
		a.stepDenseW(dst, src, g)
		return
	}
	y, out := src.Y, dst.Y
	var lastMask uint64
	var snapped float64
	for j := 0; j < src.N(); j++ {
		if m := g.InMask(j); m != lastMask {
			lastMask = m
			lo, hi := foldMinMax(y, m)
			snapped = math.Floor((lo+hi)/(2*a.Q)) * a.Q
		}
		out[j] = snapped
	}
}

// OutputsDense implements core.DenseAlgorithm.
func (QuantizedMidpoint) OutputsDense(st *core.DenseState, out []float64) { copy(out, st.Y) }

// AppendDenseFingerprint implements core.DenseFingerprinter.
func (a QuantizedMidpoint) AppendDenseFingerprint(dst []byte, st *core.DenseState, i int) ([]byte, bool) {
	dst = append(dst, tagQuantized)
	dst = core.AppendFloat(dst, a.Q)
	return core.AppendFloat(dst, st.Y[i]), true
}

func (a *quantizedAgent) WriteDense(st *core.DenseState, i int) bool {
	st.Y[i] = a.y
	return true
}

func (a *quantizedAgent) ReadDense(st *core.DenseState, i int) bool {
	a.y = st.Y[i]
	return true
}

// ---- FloodRoot ----

// DensePlanes implements core.DenseAlgorithm: the informed flag (0/1) and
// the learned root value.
func (FloodRoot) DensePlanes() int { return 2 }

// InitDense implements core.DenseAlgorithm. It panics when Root is not an
// agent, mirroring NewAgent.
func (f FloodRoot) InitDense(st *core.DenseState) {
	n := st.N()
	if f.Root < 0 || f.Root >= n {
		panic(fmt.Sprintf("algorithms: FloodRoot root %d out of range [0,%d)", f.Root, n))
	}
	inf, rv := st.Plane(floodPlaneInformed), st.Plane(floodPlaneRoot)
	for i := 0; i < n; i++ {
		inf[i], rv[i] = 0, 0
	}
	inf[f.Root] = 1
	rv[f.Root] = st.Y[f.Root]
}

// StepDense implements core.DenseAlgorithm. Whether a mask contains an
// informed sender (and which value the first one carries) is a pure
// function of the mask, shared across receivers.
func (FloodRoot) StepDense(dst, src *core.DenseState, g graph.Graph) {
	if g.Words() > 1 {
		floodRootStepDenseW(dst, src, g)
		return
	}
	n := src.N()
	y := src.Y
	inf0, rv0 := src.Plane(floodPlaneInformed), src.Plane(floodPlaneRoot)
	oy := dst.Y
	oinf, orv := dst.Plane(floodPlaneInformed), dst.Plane(floodPlaneRoot)
	var lastMask uint64
	heard := false
	var heardValue float64
	for j := 0; j < n; j++ {
		oy[j], oinf[j], orv[j] = y[j], inf0[j], rv0[j]
		if inf0[j] == 1 {
			continue
		}
		if m := g.InMask(j); m != lastMask {
			lastMask = m
			heard, heardValue = scanInformed(inf0, rv0, m)
		}
		if heard {
			oy[j], oinf[j], orv[j] = heardValue, 1, heardValue
		}
	}
}

// scanInformed reports whether the mask contains an informed sender and
// the root value carried by the first (lowest-index) one.
func scanInformed(inf0, rv0 []float64, m uint64) (heard bool, value float64) {
	for ; m != 0; m &= m - 1 {
		if i := bits.TrailingZeros64(m); inf0[i] == 1 {
			return true, rv0[i]
		}
	}
	return false, 0
}

// OutputsDense implements core.DenseAlgorithm.
func (FloodRoot) OutputsDense(st *core.DenseState, out []float64) { copy(out, st.Y) }

// AppendDenseFingerprint implements core.DenseFingerprinter.
func (FloodRoot) AppendDenseFingerprint(dst []byte, st *core.DenseState, i int) ([]byte, bool) {
	dst = append(dst, tagFloodRoot)
	informed := 0
	if st.Plane(floodPlaneInformed)[i] == 1 {
		informed = 1
	}
	dst = core.AppendInt(dst, informed)
	dst = core.AppendFloat(dst, st.Y[i])
	return core.AppendFloat(dst, st.Plane(floodPlaneRoot)[i]), true
}

func (a *floodRootAgent) WriteDense(st *core.DenseState, i int) bool {
	st.Y[i] = a.y
	flag := 0.0
	if a.informed {
		flag = 1
	}
	st.Plane(floodPlaneInformed)[i] = flag
	st.Plane(floodPlaneRoot)[i] = a.rootValue
	return true
}

func (a *floodRootAgent) ReadDense(st *core.DenseState, i int) bool {
	a.y = st.Y[i]
	a.informed = st.Plane(floodPlaneInformed)[i] == 1
	a.rootValue = st.Plane(floodPlaneRoot)[i]
	return true
}

// ---- FlowSum ----

// DensePlanes implements core.DenseAlgorithm.
func (FlowSum) DensePlanes() int { return 0 }

// InitDense implements core.DenseAlgorithm. It panics when the out-degree
// table does not cover every agent, mirroring NewAgent.
func (f FlowSum) InitDense(st *core.DenseState) {
	for i := 0; i < st.N(); i++ {
		if i >= len(f.OutDegrees) || f.OutDegrees[i] < 1 {
			panic(fmt.Sprintf("algorithms: FlowSum missing out-degree for agent %d", i))
		}
	}
}

// foldFlowSum returns the sum of y_i/deg_i over the mask's set bits.
func foldFlowSum(y []float64, degs []int, m uint64) float64 {
	sum := 0.0
	for ; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		sum += y[i] / float64(degs[i])
	}
	return sum
}

// StepDense implements core.DenseAlgorithm. The per-sender share
// y_i/deg_i is recomputed per receiver; IEEE division is deterministic,
// so the result matches the Agent path that computes it once in
// Broadcast.
func (f FlowSum) StepDense(dst, src *core.DenseState, g graph.Graph) {
	if g.Words() > 1 {
		f.stepDenseW(dst, src, g)
		return
	}
	y, out := src.Y, dst.Y
	var lastMask uint64
	var sum float64
	for j := 0; j < src.N(); j++ {
		if m := g.InMask(j); m != lastMask {
			lastMask = m
			sum = foldFlowSum(y, f.OutDegrees, m)
		}
		out[j] = sum
	}
}

// OutputsDense implements core.DenseAlgorithm.
func (FlowSum) OutputsDense(st *core.DenseState, out []float64) { copy(out, st.Y) }

// AppendDenseFingerprint implements core.DenseFingerprinter.
func (f FlowSum) AppendDenseFingerprint(dst []byte, st *core.DenseState, i int) ([]byte, bool) {
	dst = append(dst, tagFlowSum)
	dst = core.AppendInt(dst, f.OutDegrees[i])
	return core.AppendFloat(dst, st.Y[i]), true
}

func (a *flowSumAgent) WriteDense(st *core.DenseState, i int) bool {
	st.Y[i] = a.y
	return true
}

func (a *flowSumAgent) ReadDense(st *core.DenseState, i int) bool {
	a.y = st.Y[i]
	return true
}
