package algorithms

import (
	"math"

	"repro/internal/core"
)

// This file implements the batched execution plane (core.BatchStepper)
// for the algorithms whose per-receiver update is a pure function of the
// in-mask: one call steps every run of plan.Runs — the whole batch on
// shared-graph rounds, one graph-cluster of it on clustered per-run
// rounds — under one shared graph, with the receiver segmentation
// (plan.Segs) computed once (and cached by the runner across rounds)
// instead of once per run per receiver.
//
// Bit-identity contract: within each run every stored float carries the
// same bits StepDense would store. Two fold-sharing moves go beyond the
// single-run last-mask memo: fold reuse across non-adjacent segments
// with equal masks (seg.Fold), and subset-delta folds (seg.Base) that
// extend an earlier fold by the mask difference. Both are transparent
// for min/max folds because fmin/fmax are exact multiset selections —
// the result does not depend on association order, NaN and signed-zero
// cases included. Order-sensitive folds (Mean's sum, FlowSum) ignore
// seg.Base and fold their masks in StepDense's index order. The
// randomized differential tests in dense_batch_test.go pin
// batch-vs-single equivalence for every dense algorithm, batched
// stepper or not.
//
// SelfWeighted and TwoThirds keep the generic per-view path: their
// updates depend on the receiver index, so there is nothing
// run-independent to share.

// hullAcc accumulates a running output hull. The accumulated interval
// is bit-identical to core.Hull over the full output vector as long as
// every distinct output value is fed at least once in output order:
// min/max are exact multiset selections, so repeated values (a segment's
// shared fold result) need only one visit. fmin/fmax are pinned
// bit-identical to the math.Min/Max that core.Hull uses.
type hullAcc struct {
	lo, hi float64
	any    bool
}

func (h *hullAcc) add(v float64) {
	if !h.any {
		h.lo, h.hi, h.any = v, v, true
		return
	}
	h.lo = fmin(h.lo, v)
	h.hi = fmax(h.hi, v)
}

func (h *hullAcc) commit(plan *core.StepPlan, r int) {
	plan.HullLo[r], plan.HullHi[r] = h.lo, h.hi
}

// FoldShardable implements core.FoldShardCapable: the midpoint folds
// are exact min/max selections, so a segment shard may recompute an
// out-of-shard fold from its mask with the same resulting bits.
func (Midpoint) FoldShardable() bool { return true }

// StepDenseBatch implements core.BatchStepper. Distinct folds carrying a
// subset base (MaskSeg.Base) extend the base fold by the delta bits — an
// exact multiset selection, so the midpoint bits match the full refold.
// The segment loop honors plan.SegRange: fold reuse and subset-delta
// extension apply when the referenced fold lies in the shard, and
// anything owned before the shard is refolded from its mask —
// bit-identical either way.
func (Midpoint) StepDenseBatch(dst, src *core.BatchState, plan *core.StepPlan) {
	if plan.Words > 1 {
		midpointStepDenseBatchW(dst, src, plan)
		return
	}
	los, his := plan.F0, plan.F1
	segLo, segHi := plan.SegRange()
	for _, r := range plan.Runs {
		y, out := src.RunY(r), dst.RunY(r)
		var hull hullAcc
		for si := segLo; si < segHi; si++ {
			seg := &plan.Segs[si]
			var lo, hi float64
			switch {
			case seg.Fold != si && seg.Fold >= segLo:
				lo, hi = los[seg.Fold], his[seg.Fold]
			case seg.Fold == si && seg.Base >= segLo:
				lo, hi = foldMinMaxDelta(y, seg.Delta, los[seg.Base], his[seg.Base])
				los[si], his[si] = lo, hi
			default:
				lo, hi = foldMinMax(y, seg.Mask)
				los[si], his[si] = lo, hi
			}
			mid := (lo + hi) / 2
			if plan.WantHull {
				hull.add(mid)
			}
			for j := seg.Start; j < seg.End; j++ {
				out[j] = mid
			}
		}
		if plan.WantHull {
			hull.commit(plan, r)
		}
	}
	plan.HullDone = plan.WantHull
}

// StepDenseBatch implements core.BatchStepper.
func (Mean) StepDenseBatch(dst, src *core.BatchState, plan *core.StepPlan) {
	if plan.Words > 1 {
		meanStepDenseBatchW(dst, src, plan)
		return
	}
	means := plan.F0
	for _, r := range plan.Runs {
		y, out := src.RunY(r), dst.RunY(r)
		var hull hullAcc
		for si := range plan.Segs {
			seg := &plan.Segs[si]
			var mean float64
			if seg.Fold == si {
				mean = foldMean(y, seg.Mask)
				means[si] = mean
			} else {
				mean = means[seg.Fold]
			}
			if plan.WantHull {
				hull.add(mean)
			}
			for j := seg.Start; j < seg.End; j++ {
				out[j] = mean
			}
		}
		if plan.WantHull {
			hull.commit(plan, r)
		}
	}
	plan.HullDone = plan.WantHull
}

// FoldShardable implements core.FoldShardCapable (see Midpoint).
func (QuantizedMidpoint) FoldShardable() bool { return true }

// StepDenseBatch implements core.BatchStepper, honoring plan.SegRange
// like Midpoint.
func (a QuantizedMidpoint) StepDenseBatch(dst, src *core.BatchState, plan *core.StepPlan) {
	if plan.Words > 1 {
		a.stepDenseBatchW(dst, src, plan)
		return
	}
	los, his := plan.F0, plan.F1
	segLo, segHi := plan.SegRange()
	for _, r := range plan.Runs {
		y, out := src.RunY(r), dst.RunY(r)
		var hull hullAcc
		for si := segLo; si < segHi; si++ {
			seg := &plan.Segs[si]
			var lo, hi float64
			switch {
			case seg.Fold != si && seg.Fold >= segLo:
				lo, hi = los[seg.Fold], his[seg.Fold]
			case seg.Fold == si && seg.Base >= segLo:
				lo, hi = foldMinMaxDelta(y, seg.Delta, los[seg.Base], his[seg.Base])
				los[si], his[si] = lo, hi
			default:
				lo, hi = foldMinMax(y, seg.Mask)
				los[si], his[si] = lo, hi
			}
			snapped := math.Floor((lo+hi)/(2*a.Q)) * a.Q
			if plan.WantHull {
				hull.add(snapped)
			}
			for j := seg.Start; j < seg.End; j++ {
				out[j] = snapped
			}
		}
		if plan.WantHull {
			hull.commit(plan, r)
		}
	}
	plan.HullDone = plan.WantHull
}

// FoldShardable implements core.FoldShardCapable: the interval fold is
// a pair of exact min/max selections, so segment shards stay
// bit-transparent (see Midpoint).
func (AmortizedMidpoint) FoldShardable() bool { return true }

// StepDenseBatch implements core.BatchStepper, honoring plan.SegRange
// like Midpoint.
func (AmortizedMidpoint) StepDenseBatch(dst, src *core.BatchState, plan *core.StepPlan) {
	if plan.Words > 1 {
		amortizedStepDenseBatchW(dst, src, plan)
		return
	}
	n := src.N()
	phase := amortizedPhase(n)
	phaseEnd := dst.Round()%phase == 0
	los, his := plan.F0, plan.F1
	segLo, segHi := plan.SegRange()
	for _, r := range plan.Runs {
		y := src.RunY(r)
		lo0, hi0 := src.RunPlane(r, amortizedPlaneLo), src.RunPlane(r, amortizedPlaneHi)
		oy := dst.RunY(r)
		olo, ohi := dst.RunPlane(r, amortizedPlaneLo), dst.RunPlane(r, amortizedPlaneHi)
		var hull hullAcc
		for si := segLo; si < segHi; si++ {
			seg := &plan.Segs[si]
			var lo, hi float64
			switch {
			case seg.Fold != si && seg.Fold >= segLo:
				lo, hi = los[seg.Fold], his[seg.Fold]
			case seg.Fold == si && seg.Base >= segLo:
				lo, hi = foldIntervalDelta(lo0, hi0, seg.Delta, los[seg.Base], his[seg.Base])
				los[si], his[si] = lo, hi
			default:
				lo, hi = foldInterval(lo0, hi0, seg.Mask)
				los[si], his[si] = lo, hi
			}
			if phaseEnd {
				mid := (lo + hi) / 2
				if plan.WantHull {
					hull.add(mid)
				}
				for j := seg.Start; j < seg.End; j++ {
					oy[j], olo[j], ohi[j] = mid, mid, mid
				}
			} else {
				for j := seg.Start; j < seg.End; j++ {
					oy[j], olo[j], ohi[j] = y[j], lo, hi
					if plan.WantHull {
						hull.add(y[j])
					}
				}
			}
		}
		if plan.WantHull {
			hull.commit(plan, r)
		}
	}
	plan.HullDone = plan.WantHull
}

// StepDenseBatch implements core.BatchStepper.
func (f FlowSum) StepDenseBatch(dst, src *core.BatchState, plan *core.StepPlan) {
	if plan.Words > 1 {
		f.stepDenseBatchW(dst, src, plan)
		return
	}
	sums := plan.F0
	for _, r := range plan.Runs {
		y, out := src.RunY(r), dst.RunY(r)
		var hull hullAcc
		for si := range plan.Segs {
			seg := &plan.Segs[si]
			var sum float64
			if seg.Fold == si {
				sum = foldFlowSum(y, f.OutDegrees, seg.Mask)
				sums[si] = sum
			} else {
				sum = sums[seg.Fold]
			}
			if plan.WantHull {
				hull.add(sum)
			}
			for j := seg.Start; j < seg.End; j++ {
				out[j] = sum
			}
		}
		if plan.WantHull {
			hull.commit(plan, r)
		}
	}
	plan.HullDone = plan.WantHull
}

// StepDenseBatch implements core.BatchStepper. Whether a mask contains
// an informed sender depends on the run's informed plane, so the scan is
// per run per segment — but the segmentation itself, the dominant
// per-receiver bookkeeping on mostly-uninformed rounds, is shared.
func (FloodRoot) StepDenseBatch(dst, src *core.BatchState, plan *core.StepPlan) {
	if plan.Words > 1 {
		floodRootStepDenseBatchW(dst, src, plan)
		return
	}
	heards, values := plan.F0, plan.F1
	for _, r := range plan.Runs {
		y := src.RunY(r)
		inf0, rv0 := src.RunPlane(r, floodPlaneInformed), src.RunPlane(r, floodPlaneRoot)
		oy := dst.RunY(r)
		oinf, orv := dst.RunPlane(r, floodPlaneInformed), dst.RunPlane(r, floodPlaneRoot)
		var hull hullAcc
		for si := range plan.Segs {
			seg := &plan.Segs[si]
			scanned := false
			for j := seg.Start; j < seg.End; j++ {
				oy[j], oinf[j], orv[j] = y[j], inf0[j], rv0[j]
				if inf0[j] != 1 {
					if !scanned {
						scanned = true
						if seg.Fold != si && heards[seg.Fold] >= 0 {
							heards[si], values[si] = heards[seg.Fold], values[seg.Fold]
						} else {
							heard, v := scanInformed(inf0, rv0, seg.Mask)
							if heard {
								heards[si], values[si] = 1, v
							} else {
								heards[si], values[si] = 0, 0
							}
						}
					}
					if heards[si] == 1 {
						oy[j], oinf[j], orv[j] = values[si], 1, values[si]
					}
				}
				if plan.WantHull {
					hull.add(oy[j])
				}
			}
			if !scanned {
				// No uninformed receiver consulted this segment; mark its
				// fold slot unset so later equal-mask segments rescan.
				heards[si] = -1
			}
		}
		if plan.WantHull {
			hull.commit(plan, r)
		}
	}
	plan.HullDone = plan.WantHull
}
