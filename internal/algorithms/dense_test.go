package algorithms_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// denseCases returns every algorithm of the package paired with a system
// size and seeded inputs, covering all dense steppers.
func denseCases(rng *rand.Rand) []struct {
	alg    core.Algorithm
	n      int
	inputs []float64
} {
	randomInputs := func(n int) []float64 {
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.Float64()*2 - 1
		}
		return in
	}
	g7 := graph.Random(rng, 7, 0.4)
	return []struct {
		alg    core.Algorithm
		n      int
		inputs []float64
	}{
		{algorithms.Midpoint{}, 6, randomInputs(6)},
		{algorithms.TwoThirds{}, 2, []float64{0, 1}},
		{algorithms.Mean{}, 5, randomInputs(5)},
		{algorithms.SelfWeighted{Alpha: 0.25}, 5, randomInputs(5)},
		{algorithms.AmortizedMidpoint{}, 6, randomInputs(6)},
		{algorithms.QuantizedMidpoint{Q: 0.125}, 5, randomInputs(5)},
		{algorithms.FloodRoot{Root: 2}, 6, randomInputs(6)},
		{algorithms.FlowSumFor(g7), 7, randomInputs(7)},
	}
}

// TestDenseMatchesAgentsRandomized is the tentpole's differential gate at
// the algorithms layer: on randomized graph sequences, the dense backend
// must reproduce the Agent path bit for bit — every agent's output after
// every round, and the full hidden state via the fingerprint encodings.
func TestDenseMatchesAgentsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range denseCases(rng) {
		t.Run(tc.alg.Name(), func(t *testing.T) {
			d, ok := core.AsDense(tc.alg)
			if !ok {
				t.Fatalf("%s does not implement the dense backend", tc.alg.Name())
			}
			for trial := 0; trial < 20; trial++ {
				c := core.NewConfig(tc.alg, tc.inputs)
				r := core.NewDenseRunner(d, tc.inputs)
				rounds := 1 + rng.Intn(24)
				for round := 1; round <= rounds; round++ {
					g := graph.Random(rng, tc.n, 0.15+0.7*rng.Float64())
					c = c.Step(g)
					r.Step(g)
					for i := 0; i < tc.n; i++ {
						want, got := c.Output(i), r.Output(i)
						if math.Float64bits(want) != math.Float64bits(got) {
							t.Fatalf("trial %d round %d agent %d: dense output %v != agent output %v",
								trial, round, i, got, want)
						}
					}
					assertSameFingerprint(t, c, d, r.State(),
						fmt.Sprintf("trial %d round %d", trial, round))
				}
			}
		})
	}
}

// assertSameFingerprint compares the full hidden state of the two
// backends via the canonical fingerprints (when the algorithm supports
// them).
func assertSameFingerprint(t *testing.T, c *core.Config, d core.DenseAlgorithm, st *core.DenseState, ctx string) {
	t.Helper()
	agentFP, okA := c.AppendFingerprint(nil)
	denseFP, okD := core.AppendDenseFingerprint(d, st, nil)
	if okA != okD {
		t.Fatalf("%s: fingerprint support differs: agents %v, dense %v", ctx, okA, okD)
	}
	if okA && !bytes.Equal(agentFP, denseFP) {
		t.Fatalf("%s: dense fingerprint differs from agent fingerprint\nagents: %x\ndense:  %x",
			ctx, agentFP, denseFP)
	}
}

// TestDenseBridgeRoundTrip drives the agent path for a prefix, bridges
// the configuration into dense state mid-run, continues both backends,
// and checks the dense continuation and its re-materialized configuration
// stay bit-identical to the pure agent run.
func TestDenseBridgeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range denseCases(rng) {
		t.Run(tc.alg.Name(), func(t *testing.T) {
			c := core.NewConfig(tc.alg, tc.inputs)
			prefix := make([]graph.Graph, 4)
			for i := range prefix {
				prefix[i] = graph.Random(rng, tc.n, 0.5)
				c = c.Step(prefix[i])
			}
			r, ok := core.DenseRunnerFromConfig(c)
			if !ok {
				t.Fatalf("%s: configuration did not bridge into dense state", tc.alg.Name())
			}
			if r.Round() != c.Round() {
				t.Fatalf("bridge lost the round counter: %d != %d", r.Round(), c.Round())
			}
			for round := 0; round < 12; round++ {
				g := graph.Random(rng, tc.n, 0.5)
				c = c.Step(g)
				r.Step(g)
			}
			mat := r.Config()
			for i := 0; i < tc.n; i++ {
				if math.Float64bits(c.Output(i)) != math.Float64bits(r.Output(i)) {
					t.Fatalf("agent %d: dense continuation diverged", i)
				}
				if math.Float64bits(mat.Output(i)) != math.Float64bits(c.Output(i)) {
					t.Fatalf("agent %d: materialized configuration diverged", i)
				}
			}
			d, _ := core.AsDense(tc.alg)
			assertSameFingerprint(t, c, d, r.State(), "post-continuation")
			if fpA, okA := c.AppendFingerprint(nil); okA {
				fpM, okM := mat.AppendFingerprint(nil)
				if !okM || !bytes.Equal(fpA, fpM) {
					t.Fatal("materialized configuration fingerprint differs from the agent run")
				}
			}
		})
	}
}

// TestDenseForkIndependence checks the dense fork semantics the valency
// machinery relies on: a fork is an independent copy and the parent's
// subsequent steps do not leak into it (and vice versa).
func TestDenseForkIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inputs := []float64{0, 1, 0.25, 0.75, 0.5, -0.5}
	d, _ := core.AsDense(algorithms.AmortizedMidpoint{})
	r := core.NewDenseRunner(d, inputs)
	g1 := graph.Random(rng, 6, 0.5)
	g2 := graph.Random(rng, 6, 0.5)
	r.Step(g1)
	fork := r.Fork()
	// Diverge the parent; the fork must be unaffected.
	r.Step(g2)
	want := core.NewConfig(algorithms.AmortizedMidpoint{}, inputs).Step(g1)
	for i := 0; i < 6; i++ {
		if math.Float64bits(fork.Output(i)) != math.Float64bits(want.Output(i)) {
			t.Fatalf("fork agent %d corrupted by parent step", i)
		}
	}
	// Diverge the fork; the parent's successor must match the reference.
	fork.Step(g1)
	wantParent := want.Step(g2)
	for i := 0; i < 6; i++ {
		if math.Float64bits(r.Output(i)) != math.Float64bits(wantParent.Output(i)) {
			t.Fatalf("parent agent %d corrupted by fork step", i)
		}
	}
}
