package algorithms

import (
	"math"
	"testing"
)

// TestFminFmaxMatchMath pins the inlinable fold primitives against
// math.Min/math.Max bit for bit over all pairs of special and ordinary
// values — NaN canonicalization and the -0/+0 tie-breaks included — which
// is what licenses substituting them in the dense steppers.
func TestFminFmaxMatchMath(t *testing.T) {
	values := []float64{
		math.Inf(-1), -math.MaxFloat64, -2.5, -1, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1, 2.5,
		math.MaxFloat64, math.Inf(1), math.NaN(),
	}
	for _, x := range values {
		for _, y := range values {
			if got, want := fmin(x, y), math.Min(x, y); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("fmin(%v, %v) = %v (bits %x), math.Min = %v (bits %x)",
					x, y, got, math.Float64bits(got), want, math.Float64bits(want))
			}
			if got, want := fmax(x, y), math.Max(x, y); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("fmax(%v, %v) = %v (bits %x), math.Max = %v (bits %x)",
					x, y, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}
