package algorithms_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// These tests pin down the Message.Aux aliasing contract ("receivers must
// treat Aux as read-only; senders must not retain it"): the two
// algorithms that flood auxiliary state through Aux — the amortized
// midpoint (its running interval) and flood-root (the informed flag and
// root value) — must copy what they need out of a delivered Aux slice,
// so a harness (or hostile peer) that retains every Aux slice and
// scribbles over it later cannot corrupt them or any fork of them.

func auxAlgorithms() []core.Algorithm {
	return []core.Algorithm{algorithms.AmortizedMidpoint{}, algorithms.FloodRoot{Root: 1}}
}

// stepRetaining plays one round by hand, returning the delivered messages
// so the caller can mutate their Aux slices after the fact.
func stepRetaining(agents []core.Agent, round int, g graph.Graph) []core.Message {
	n := len(agents)
	msgs := make([]core.Message, n)
	for i, a := range agents {
		msgs[i] = a.Broadcast(round)
		msgs[i].From = i
	}
	for j, a := range agents {
		var inbox []core.Message
		m := g.InMask(j)
		for i := 0; i < n; i++ {
			if m&(1<<uint(i)) != 0 {
				inbox = append(inbox, msgs[i])
			}
		}
		a.Deliver(round, inbox)
	}
	return msgs
}

// TestDeliveredAuxIsNotRetained runs the Aux-flooding algorithms with a
// harness that keeps every delivered Aux slice and overwrites it with
// NaNs after each round. If any agent retained a delivered (or sent) Aux
// slice instead of copying its contents, the scribbles would leak into
// its state and diverge from the clean reference execution.
func TestDeliveredAuxIsNotRetained(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, rounds = 5, 12
	inputs := []float64{0, 1, 0.25, 0.75, 0.5}
	for _, alg := range auxAlgorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			ref := core.NewConfig(alg, inputs)
			agents := make([]core.Agent, n)
			for i := range agents {
				agents[i] = alg.NewAgent(i, n, inputs[i])
			}
			for round := 1; round <= rounds; round++ {
				g := graph.Random(rng, n, 0.6)
				ref = ref.Step(g)
				msgs := stepRetaining(agents, round, g)
				for i := range msgs {
					for k := range msgs[i].Aux {
						msgs[i].Aux[k] = math.NaN()
					}
				}
				for i, a := range agents {
					if math.Float64bits(a.Output()) != math.Float64bits(ref.Output(i)) {
						t.Fatalf("round %d agent %d: state corrupted by scribbling retained Aux slices", round, i)
					}
				}
			}
		})
	}
}

// TestAuxScribbleCannotCorruptSiblingFork forks an execution mid-run and
// checks that mutating the Aux slices delivered on one branch cannot
// corrupt the sibling fork: clones must share no Aux-backed storage with
// their originals.
func TestAuxScribbleCannotCorruptSiblingFork(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, prefix, suffix = 5, 4, 8
	inputs := []float64{0, 1, 0.25, 0.75, 0.5}
	for _, alg := range auxAlgorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			agents := make([]core.Agent, n)
			for i := range agents {
				agents[i] = alg.NewAgent(i, n, inputs[i])
			}
			prefixGraphs := make([]graph.Graph, prefix)
			suffixGraphs := make([]graph.Graph, suffix)
			for r := range prefixGraphs {
				prefixGraphs[r] = graph.Random(rng, n, 0.6)
			}
			for r := range suffixGraphs {
				suffixGraphs[r] = graph.Random(rng, n, 0.6)
			}
			var retained [][]core.Message
			for round := 1; round <= prefix; round++ {
				retained = append(retained, stepRetaining(agents, round, prefixGraphs[round-1]))
			}
			// Fork a sibling from the parent state, then scribble every Aux
			// slice the parent ever received and keep stepping the parent on a
			// divergent schedule: if any clone shared Aux-backed storage with
			// its original, the fork would see the corruption.
			fork := make([]core.Agent, n)
			for i, a := range agents {
				fork[i] = a.Clone()
			}
			for _, msgs := range retained {
				for i := range msgs {
					for k := range msgs[i].Aux {
						msgs[i].Aux[k] = math.Inf(1)
					}
				}
			}
			for round := prefix + 1; round <= prefix+suffix; round++ {
				stepRetaining(agents, round, graph.Complete(n))
				stepRetaining(fork, round, suffixGraphs[round-prefix-1])
			}
			// Ground truth: a never-scribbled execution of the fork's schedule.
			ref := core.NewConfig(alg, inputs)
			for _, g := range prefixGraphs {
				ref = ref.Step(g)
			}
			for _, g := range suffixGraphs {
				ref = ref.Step(g)
			}
			for i := range fork {
				if math.Float64bits(fork[i].Output()) != math.Float64bits(ref.Output(i)) {
					t.Fatalf("agent %d: sibling fork corrupted through a shared Aux slice", i)
				}
			}
		})
	}
}
