package algorithms

import "repro/internal/core"

// This file implements the optional core.Fingerprinter and core.StateCopier
// capabilities for every agent in the package, enabling the valency
// engine's transposition table and zero-allocation scratch stepping.
//
// Each fingerprint starts with a distinct type tag so states of different
// algorithms can never collide in a shared cache, then encodes the full
// agent state with fixed-width encodings. Fields that are constant across
// an execution (ids, parameters) are still included: they cost little and
// make the fingerprints self-describing.
const (
	tagMidpoint = iota + 1
	tagTwoThirds
	tagMean
	tagSelfWeighted
	tagAmortized
	tagFlowSum
	tagQuantized
	tagFloodRoot
)

// AppendFingerprint implements core.Fingerprinter.
func (a *midpointAgent) AppendFingerprint(dst []byte) ([]byte, bool) {
	dst = append(dst, tagMidpoint)
	return core.AppendFloat(dst, a.y), true
}

// CopyStateFrom implements core.StateCopier.
func (a *midpointAgent) CopyStateFrom(src core.Agent) bool {
	s, ok := src.(*midpointAgent)
	if ok {
		*a = *s
	}
	return ok
}

// AppendFingerprint implements core.Fingerprinter.
func (a *twoThirdsAgent) AppendFingerprint(dst []byte) ([]byte, bool) {
	dst = append(dst, tagTwoThirds)
	dst = core.AppendInt(dst, a.id)
	return core.AppendFloat(dst, a.y), true
}

// CopyStateFrom implements core.StateCopier.
func (a *twoThirdsAgent) CopyStateFrom(src core.Agent) bool {
	s, ok := src.(*twoThirdsAgent)
	if ok {
		*a = *s
	}
	return ok
}

// AppendFingerprint implements core.Fingerprinter.
func (a *meanAgent) AppendFingerprint(dst []byte) ([]byte, bool) {
	dst = append(dst, tagMean)
	return core.AppendFloat(dst, a.y), true
}

// CopyStateFrom implements core.StateCopier.
func (a *meanAgent) CopyStateFrom(src core.Agent) bool {
	s, ok := src.(*meanAgent)
	if ok {
		*a = *s
	}
	return ok
}

// AppendFingerprint implements core.Fingerprinter.
func (a *selfWeightedAgent) AppendFingerprint(dst []byte) ([]byte, bool) {
	dst = append(dst, tagSelfWeighted)
	dst = core.AppendInt(dst, a.id)
	dst = core.AppendFloat(dst, a.alpha)
	return core.AppendFloat(dst, a.y), true
}

// CopyStateFrom implements core.StateCopier.
func (a *selfWeightedAgent) CopyStateFrom(src core.Agent) bool {
	s, ok := src.(*selfWeightedAgent)
	if ok {
		*a = *s
	}
	return ok
}

// AppendFingerprint implements core.Fingerprinter.
func (a *amortizedAgent) AppendFingerprint(dst []byte) ([]byte, bool) {
	dst = append(dst, tagAmortized)
	dst = core.AppendInt(dst, a.phaseLen)
	dst = core.AppendFloat(dst, a.y)
	dst = core.AppendFloat(dst, a.lo)
	return core.AppendFloat(dst, a.hi), true
}

// CopyStateFrom implements core.StateCopier.
func (a *amortizedAgent) CopyStateFrom(src core.Agent) bool {
	s, ok := src.(*amortizedAgent)
	if ok {
		*a = *s
	}
	return ok
}

// AppendFingerprint implements core.Fingerprinter.
func (a *flowSumAgent) AppendFingerprint(dst []byte) ([]byte, bool) {
	dst = append(dst, tagFlowSum)
	dst = core.AppendInt(dst, a.deg)
	return core.AppendFloat(dst, a.y), true
}

// CopyStateFrom implements core.StateCopier.
func (a *flowSumAgent) CopyStateFrom(src core.Agent) bool {
	s, ok := src.(*flowSumAgent)
	if ok {
		*a = *s
	}
	return ok
}

// AppendFingerprint implements core.Fingerprinter.
func (a *quantizedAgent) AppendFingerprint(dst []byte) ([]byte, bool) {
	dst = append(dst, tagQuantized)
	dst = core.AppendFloat(dst, a.q)
	return core.AppendFloat(dst, a.y), true
}

// CopyStateFrom implements core.StateCopier.
func (a *quantizedAgent) CopyStateFrom(src core.Agent) bool {
	s, ok := src.(*quantizedAgent)
	if ok {
		*a = *s
	}
	return ok
}

// AppendFingerprint implements core.Fingerprinter.
func (a *floodRootAgent) AppendFingerprint(dst []byte) ([]byte, bool) {
	dst = append(dst, tagFloodRoot)
	informed := 0
	if a.informed {
		informed = 1
	}
	dst = core.AppendInt(dst, informed)
	dst = core.AppendFloat(dst, a.y)
	return core.AppendFloat(dst, a.rootValue), true
}

// CopyStateFrom implements core.StateCopier.
func (a *floodRootAgent) CopyStateFrom(src core.Agent) bool {
	s, ok := src.(*floodRootAgent)
	if ok {
		*a = *s
	}
	return ok
}
