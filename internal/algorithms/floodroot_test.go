package algorithms_test

import (
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

// rootedAtSource samples a random graph guaranteed to have the given
// common root (root gets a random spanning arborescence on top of random
// edges).
func rootedAt(rng *rand.Rand, n, root int) graph.Graph {
	b := graph.NewBuilder(n)
	// Random extra edges.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < 0.2 {
				b.Edge(i, j)
			}
		}
	}
	// A random arborescence from root: connect each node to a previously
	// connected one.
	order := rng.Perm(n)
	// Move root to front.
	for k, v := range order {
		if v == root {
			order[0], order[k] = order[k], order[0]
			break
		}
	}
	for k := 1; k < n; k++ {
		parent := order[rng.Intn(k)]
		b.Edge(parent, order[k])
	}
	return b.Graph()
}

func TestFloodRootExactConsensusWithinNMinusOneRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, n := range []int{2, 4, 7} {
		root := rng.Intn(n)
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64()
		}
		src := core.Func(func(int, *core.Config) graph.Graph {
			return rootedAt(rng, n, root)
		})
		tr := core.Run(algorithms.FloodRoot{Root: root}, inputs, src, n-1)
		for i := 0; i < n; i++ {
			if got := tr.Outputs[n-1][i]; got != inputs[root] {
				t.Errorf("n=%d: agent %d ended at %v, want root value %v", n, i, got, inputs[root])
			}
		}
		if d := tr.DiameterAt(n - 1); d != 0 {
			t.Errorf("n=%d: diameter %v after n-1 rounds, want exact 0", n, d)
		}
	}
}

// TestFloodRootWorstCasePath checks the n-1 bound is attained: on the
// directed path rooted at 0, the value needs exactly n-1 rounds.
func TestFloodRootWorstCasePath(t *testing.T) {
	n := 6
	inputs := []float64{42, 0, 0, 0, 0, 0}
	tr := core.Run(algorithms.FloodRoot{Root: 0}, inputs, core.Fixed{G: graph.PathGraph(n)}, n-1)
	for tt := 0; tt < n-1; tt++ {
		if tr.DiameterAt(tt) == 0 {
			t.Errorf("converged at round %d, before the worst-case n-1 = %d", tt, n-1)
		}
	}
	if tr.DiameterAt(n-1) != 0 {
		t.Errorf("not converged after n-1 rounds")
	}
}

func TestFloodRootValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range root accepted")
		}
	}()
	algorithms.FloodRoot{Root: 5}.NewAgent(0, 3, 0)
}

// TestFloodRootContractionZeroCell ties the algorithm to the Table 1
// claim: a common-root model is exact-consensus solvable, its proven
// bound is 0, and FloodRoot realizes contraction 0 (exact agreement in
// finitely many rounds).
func TestFloodRootContractionZeroCell(t *testing.T) {
	m := model.MustNew(
		graph.Star(4, 0),
		graph.MustFromEdges(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}),
		graph.MustFromEdges(4, [2]int{0, 2}, [2]int{2, 1}, [2]int{0, 3}),
	)
	if !m.ExactConsensusSolvable() {
		t.Fatal("common-root model should be exact-consensus solvable")
	}
	if b := m.ContractionLowerBound(); b.Rate != 0 {
		t.Fatalf("bound = %v, want 0", b.Rate)
	}
	if roots := m.CommonRoots([]int{0, 1, 2}); roots&1 == 0 {
		t.Fatal("agent 0 should be a common root")
	}
	// Exhaust all patterns of length n-1 = 3 over the model: exact
	// agreement on agent 0's input in every one of them.
	inputs := []float64{7, 1, 2, 3}
	var walk func(c *core.Config, depth int)
	walk = func(c *core.Config, depth int) {
		if depth == 0 {
			for i := 0; i < 4; i++ {
				if c.Output(i) != 7 {
					t.Fatalf("agent %d at %v after 3 rounds", i, c.Output(i))
				}
			}
			return
		}
		for k := 0; k < m.Size(); k++ {
			walk(c.Step(m.Graph(k)), depth-1)
		}
	}
	walk(core.NewConfig(algorithms.FloodRoot{Root: 0}, inputs), 3)
}
