package algorithms

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// QuantizedMidpoint is the quantized variant of the midpoint algorithm
// from Charron-Bost, Függer, Nowak, "Fast, robust, quantizable
// approximate consensus" (ICALP'16) — the paper's reference [9], whose
// title feature this implements. Values live on the grid q·Z: the update
// is the midpoint of the received values rounded down to the grid,
//
//	y_i <- q * floor((min + max) / (2q)).
//
// On non-split communication graphs the grid range (max-min)/q is an
// integer that at least halves (rounded up) per round, so all agents
// reach a common grid point after about log2(Δ/q) rounds and then stay
// exactly equal — approximate consensus with exact termination, using
// only bounded-size messages when inputs are grid points.
type QuantizedMidpoint struct {
	// Q is the grid spacing; must be positive.
	Q float64
}

// Name implements core.Algorithm.
func (a QuantizedMidpoint) Name() string { return fmt.Sprintf("quantized-midpoint(q=%g)", a.Q) }

// Convex implements core.Algorithm. Rounding the midpoint down stays
// within [min, max] whenever the received values are themselves grid
// points, which the algorithm maintains for grid-point inputs; for
// off-grid inputs the very first update may leave the received hull by
// less than q, so the algorithm advertises convexity only for its
// intended grid-point domain.
func (QuantizedMidpoint) Convex() bool { return true }

// NewAgent implements core.Algorithm. It panics for non-positive Q and
// snaps the initial value down to the grid (the algorithm's domain is
// grid points; snapping keeps off-grid callers safe).
func (a QuantizedMidpoint) NewAgent(id, n int, initial float64) core.Agent {
	if !(a.Q > 0) {
		panic(fmt.Sprintf("algorithms: QuantizedMidpoint requires Q > 0, got %v", a.Q))
	}
	return &quantizedAgent{q: a.Q, y: math.Floor(initial/a.Q) * a.Q}
}

type quantizedAgent struct {
	q float64
	y float64
}

func (a *quantizedAgent) Broadcast(int) core.Message { return core.Message{Value: a.y} }

func (a *quantizedAgent) Deliver(_ int, msgs []core.Message) {
	lo, hi := msgs[0].Value, msgs[0].Value
	for _, m := range msgs[1:] {
		lo = math.Min(lo, m.Value)
		hi = math.Max(hi, m.Value)
	}
	a.y = math.Floor((lo+hi)/(2*a.q)) * a.q
}

func (a *quantizedAgent) Output() float64   { return a.y }
func (a *quantizedAgent) Clone() core.Agent { cp := *a; return &cp }
