package algorithms_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

func TestQuantizedMidpointStaysOnGrid(t *testing.T) {
	q := 0.125
	alg := algorithms.QuantizedMidpoint{Q: q}
	rng := rand.New(rand.NewSource(61))
	inputs := []float64{0, 1, 0.625, 0.25}
	c := core.NewConfig(alg, inputs)
	for round := 0; round < 10; round++ {
		c = c.Step(graph.RandomNonSplit(rng, 4, 0.4))
		for i := 0; i < 4; i++ {
			v := c.Output(i)
			if rem := math.Mod(v, q); math.Abs(rem) > 1e-12 && math.Abs(rem-q) > 1e-12 {
				t.Fatalf("round %d: agent %d off grid: %v", round, i, v)
			}
		}
	}
}

func TestQuantizedMidpointReachesExactAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for _, n := range []int{3, 5, 8} {
		q := 1.0 / 64
		alg := algorithms.QuantizedMidpoint{Q: q}
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = math.Floor(rng.Float64()/q) * q
		}
		src := core.Func(func(int, *core.Config) graph.Graph {
			return graph.RandomNonSplit(rng, n, 0.3)
		})
		// log2(Δ/q) <= log2(64) = 6; allow generous slack for rounding.
		rounds := 16
		tr := core.Run(alg, inputs, src, rounds)
		if d := tr.DiameterAt(rounds); d != 0 {
			t.Errorf("n=%d: no exact agreement after %d rounds, diameter %v", n, rounds, d)
		}
		// Exact termination: once equal, stays equal forever.
		last := tr.Final
		for i := 0; i < 5; i++ {
			last = last.Step(graph.RandomNonSplit(rng, n, 0.3))
			if last.Diameter() != 0 {
				t.Errorf("n=%d: agreement lost after reaching it", n)
			}
		}
	}
}

func TestQuantizedMidpointRangeNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	q := 0.25
	alg := algorithms.QuantizedMidpoint{Q: q}
	inputs := []float64{0, 4, 1.5, 2.75, 3.25}
	tr := core.Run(alg, inputs, core.Func(func(int, *core.Config) graph.Graph {
		return graph.RandomNonSplit(rng, 5, 0.4)
	}), 12)
	d := tr.Diameters()
	for i := 1; i < len(d); i++ {
		if d[i] > d[i-1]+1e-12 {
			t.Fatalf("range grew at round %d: %v -> %v", i, d[i-1], d[i])
		}
	}
}

func TestQuantizedMidpointValidation(t *testing.T) {
	for _, q := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Q=%v accepted", q)
				}
			}()
			algorithms.QuantizedMidpoint{Q: q}.NewAgent(0, 2, 0)
		}()
	}
	// Off-grid initial values snap down.
	a := algorithms.QuantizedMidpoint{Q: 0.5}.NewAgent(0, 2, 0.74)
	if a.Output() != 0.5 {
		t.Errorf("off-grid input snapped to %v, want 0.5", a.Output())
	}
}
