// Package algorithms implements the asymptotic consensus algorithms whose
// contraction rates the paper's lower bounds are matched against:
//
//   - TwoThirds — Algorithm 1 of the paper: the two-agent convex
//     combination algorithm with contraction rate exactly 1/3 in the model
//     {H0, H1, H2}, matching the Theorem 1 lower bound.
//   - Midpoint — Algorithm 2 of the paper (Charron-Bost et al.,
//     ICALP'16): y_i <- (min received + max received)/2, contraction rate
//     1/2 in non-split models, matching the Theorem 2 lower bound.
//   - AmortizedMidpoint — the amortized variant for rooted models:
//     phases of n-1 rounds during which agents flood their running
//     min/max interval, then set y to the midpoint; contraction
//     (1/2)^(1/(n-1)) per round, asymptotically matching Theorem 3.
//   - Mean — plain averaging of received values, the folklore convex
//     combination algorithm (contraction 1 - 1/n at best in non-split
//     models, cf. Cao, Spielman, Morse 2005).
//   - SelfWeighted — y_i <- a*y_i + (1-a)*mean(others); the classical
//     consensus iteration with a tunable self-confidence parameter.
//   - FlowSum — the introduction's example of a non-convex algorithm:
//     each agent sends an equal fraction of its value to its
//     out-neighbors and sets its value to the sum of received fractions.
//     It conserves the total mass and solves asymptotic consensus on a
//     fixed strongly-connected aperiodic graph while violating the convex
//     combination property.
//
// All algorithms are deterministic and their agents clonable, as the core
// contract requires.
package algorithms

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
)

// Midpoint is Algorithm 2 of the paper.
type Midpoint struct{}

// Name implements core.Algorithm.
func (Midpoint) Name() string { return "midpoint" }

// Convex implements core.Algorithm.
func (Midpoint) Convex() bool { return true }

// NewAgent implements core.Algorithm.
func (Midpoint) NewAgent(id, n int, initial float64) core.Agent {
	return &midpointAgent{y: initial}
}

type midpointAgent struct{ y float64 }

func (a *midpointAgent) Broadcast(int) core.Message { return core.Message{Value: a.y} }

func (a *midpointAgent) Deliver(_ int, msgs []core.Message) {
	lo, hi := msgs[0].Value, msgs[0].Value
	for _, m := range msgs[1:] {
		lo = math.Min(lo, m.Value)
		hi = math.Max(hi, m.Value)
	}
	a.y = (lo + hi) / 2
}

func (a *midpointAgent) Output() float64   { return a.y }
func (a *midpointAgent) Clone() core.Agent { cp := *a; return &cp }

// TwoThirds is Algorithm 1 of the paper, defined for exactly two agents:
// on hearing the other agent, y_i <- y_i/3 + 2*y_j/3; otherwise y_i is
// kept. Its contraction rate in {H0, H1, H2} is exactly 1/3.
type TwoThirds struct{}

// Name implements core.Algorithm.
func (TwoThirds) Name() string { return "two-thirds" }

// Convex implements core.Algorithm.
func (TwoThirds) Convex() bool { return true }

// NewAgent implements core.Algorithm. It panics unless n == 2.
func (TwoThirds) NewAgent(id, n int, initial float64) core.Agent {
	if n != 2 {
		panic(fmt.Sprintf("algorithms: TwoThirds requires n = 2, got %d", n))
	}
	return &twoThirdsAgent{id: id, y: initial}
}

type twoThirdsAgent struct {
	id int
	y  float64
}

func (a *twoThirdsAgent) Broadcast(int) core.Message { return core.Message{Value: a.y} }

func (a *twoThirdsAgent) Deliver(_ int, msgs []core.Message) {
	for _, m := range msgs {
		if m.From != a.id {
			a.y = a.y/3 + 2*m.Value/3
			return
		}
	}
}

func (a *twoThirdsAgent) Output() float64   { return a.y }
func (a *twoThirdsAgent) Clone() core.Agent { cp := *a; return &cp }

// Mean sets y_i to the arithmetic mean of the received values.
type Mean struct{}

// Name implements core.Algorithm.
func (Mean) Name() string { return "mean" }

// Convex implements core.Algorithm.
func (Mean) Convex() bool { return true }

// NewAgent implements core.Algorithm.
func (Mean) NewAgent(id, n int, initial float64) core.Agent {
	return &meanAgent{y: initial}
}

type meanAgent struct{ y float64 }

func (a *meanAgent) Broadcast(int) core.Message { return core.Message{Value: a.y} }

func (a *meanAgent) Deliver(_ int, msgs []core.Message) {
	sum := 0.0
	for _, m := range msgs {
		sum += m.Value
	}
	a.y = sum / float64(len(msgs))
}

func (a *meanAgent) Output() float64   { return a.y }
func (a *meanAgent) Clone() core.Agent { cp := *a; return &cp }

// SelfWeighted sets y_i <- Alpha*y_i + (1-Alpha)*mean(received others);
// with no other message received, y_i is kept. Alpha must lie in [0, 1].
type SelfWeighted struct {
	// Alpha is the weight on the agent's own value.
	Alpha float64
}

// Name implements core.Algorithm.
func (s SelfWeighted) Name() string { return fmt.Sprintf("self-weighted(%.2f)", s.Alpha) }

// Convex implements core.Algorithm.
func (SelfWeighted) Convex() bool { return true }

// NewAgent implements core.Algorithm. It panics for Alpha outside [0, 1].
func (s SelfWeighted) NewAgent(id, n int, initial float64) core.Agent {
	if s.Alpha < 0 || s.Alpha > 1 {
		panic(fmt.Sprintf("algorithms: SelfWeighted alpha %v outside [0,1]", s.Alpha))
	}
	return &selfWeightedAgent{id: id, alpha: s.Alpha, y: initial}
}

type selfWeightedAgent struct {
	id    int
	alpha float64
	y     float64
}

func (a *selfWeightedAgent) Broadcast(int) core.Message { return core.Message{Value: a.y} }

func (a *selfWeightedAgent) Deliver(_ int, msgs []core.Message) {
	sum, count := 0.0, 0
	for _, m := range msgs {
		if m.From != a.id {
			sum += m.Value
			count++
		}
	}
	if count == 0 {
		return
	}
	a.y = a.alpha*a.y + (1-a.alpha)*sum/float64(count)
}

func (a *selfWeightedAgent) Output() float64   { return a.y }
func (a *selfWeightedAgent) Clone() core.Agent { cp := *a; return &cp }

// AmortizedMidpoint is the amortized midpoint algorithm for rooted network
// models (Charron-Bost et al., ICALP'16). Rounds are grouped into phases
// of n-1 rounds. During a phase every agent floods the smallest and
// largest values it has seen since the phase started; at the end of the
// phase it sets y to the midpoint of its interval and resets the interval
// to {y}. Because any product of n-1 rooted graphs is non-split, the
// intervals of any two agents intersect at the end of each phase, so the
// global range halves per phase: contraction (1/2)^(1/(n-1)) per round.
type AmortizedMidpoint struct{}

// Name implements core.Algorithm.
func (AmortizedMidpoint) Name() string { return "amortized-midpoint" }

// Convex implements core.Algorithm. The phase-end update is a convex
// combination of values received during the phase; within a phase the
// output is simply kept, so outputs never leave the running convex hull.
func (AmortizedMidpoint) Convex() bool { return true }

// NewAgent implements core.Algorithm.
func (AmortizedMidpoint) NewAgent(id, n int, initial float64) core.Agent {
	phase := n - 1
	if phase < 1 {
		phase = 1
	}
	return &amortizedAgent{phaseLen: phase, y: initial, lo: initial, hi: initial}
}

type amortizedAgent struct {
	phaseLen int
	y        float64
	lo, hi   float64
}

func (a *amortizedAgent) Broadcast(int) core.Message {
	return core.Message{Value: a.y, Aux: []float64{a.lo, a.hi}}
}

func (a *amortizedAgent) Deliver(round int, msgs []core.Message) {
	for _, m := range msgs {
		if len(m.Aux) == 2 {
			a.lo = math.Min(a.lo, m.Aux[0])
			a.hi = math.Max(a.hi, m.Aux[1])
		} else {
			a.lo = math.Min(a.lo, m.Value)
			a.hi = math.Max(a.hi, m.Value)
		}
	}
	if round%a.phaseLen == 0 {
		a.y = (a.lo + a.hi) / 2
		a.lo, a.hi = a.y, a.y
	}
}

func (a *amortizedAgent) Output() float64   { return a.y }
func (a *amortizedAgent) Clone() core.Agent { cp := *a; return &cp }

// FlowSum is the non-convex algorithm sketched in the paper's
// introduction: on a fixed communication graph, each agent sends y_i/d_i
// to each of its d_i out-neighbors (self included) and replaces y_i by the
// sum of the received fractions. The total mass is conserved, and on a
// fixed strongly-connected aperiodic graph the values converge to a
// common limit that may lie outside the convex hull of any single round's
// received values — hence Convex() is false.
//
// The out-degrees are fixed at construction because, in a message-passing
// round, an agent cannot know its current out-degree; the algorithm is
// only an asymptotic consensus algorithm for the fixed graph it was built
// for, exactly as in the paper's discussion.
type FlowSum struct {
	// OutDegrees[i] is the fixed out-degree (including the self-loop) that
	// agent i divides its value by.
	OutDegrees []int
}

// NewFlowSum builds a FlowSum for the fixed graph's out-degrees.
func NewFlowSum(outDegrees []int) FlowSum {
	cp := make([]int, len(outDegrees))
	copy(cp, outDegrees)
	return FlowSum{OutDegrees: cp}
}

// Name implements core.Algorithm.
func (FlowSum) Name() string { return "flow-sum" }

// Convex implements core.Algorithm.
func (FlowSum) Convex() bool { return false }

// NewAgent implements core.Algorithm. It panics if the out-degree table
// does not cover agent id or lists a non-positive degree.
func (f FlowSum) NewAgent(id, n int, initial float64) core.Agent {
	if id >= len(f.OutDegrees) || f.OutDegrees[id] < 1 {
		panic(fmt.Sprintf("algorithms: FlowSum missing out-degree for agent %d", id))
	}
	return &flowSumAgent{deg: f.OutDegrees[id], y: initial}
}

type flowSumAgent struct {
	deg int
	y   float64
}

func (a *flowSumAgent) Broadcast(int) core.Message {
	return core.Message{Value: a.y / float64(a.deg)}
}

func (a *flowSumAgent) Deliver(_ int, msgs []core.Message) {
	sum := 0.0
	for _, m := range msgs {
		sum += m.Value
	}
	a.y = sum
}

func (a *flowSumAgent) Output() float64   { return a.y }
func (a *flowSumAgent) Clone() core.Agent { cp := *a; return &cp }

// FlowSumFor returns a FlowSum configured for the out-degrees of the
// fixed graph g.
func FlowSumFor(g graph.Graph) FlowSum {
	degs := make([]int, g.N())
	for i := range degs {
		degs[i] = g.OutDegree(i)
	}
	return FlowSum{OutDegrees: degs}
}
