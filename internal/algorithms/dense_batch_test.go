package algorithms_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// randomBatchGraph draws graphs biased towards the paper's shared-mask
// families (complete, deaf, identity) half the time, so the batched
// steppers' segment fold-sharing is exercised, and fully random graphs
// the other half.
func randomBatchGraph(rng *rand.Rand, n int) graph.Graph {
	switch rng.Intn(4) {
	case 0:
		return graph.Complete(n)
	case 1:
		return graph.Deaf(graph.Complete(n), rng.Intn(n))
	default:
		return graph.Random(rng, n, 0.15+0.7*rng.Float64())
	}
}

// batchParityCheck steps a BatchRunner and B independent DenseRunners
// through the same graph sequence and asserts bit-identical outputs and
// fingerprints run by run, round by round.
func batchParityCheck(t *testing.T, alg core.Algorithm, n, b, rounds int, rng *rand.Rand, perRunGraphs bool) {
	t.Helper()
	batchParityCheckPar(t, alg, n, b, rounds, rng, perRunGraphs, 1)
}

// batchParityCheckPar is batchParityCheck with the batch runner's
// intra-step parallelism pinned to par workers; the single runners stay
// the sequential reference, so any par proves parallel == sequential.
func batchParityCheckPar(t *testing.T, alg core.Algorithm, n, b, rounds int, rng *rand.Rand, perRunGraphs bool, par int) {
	t.Helper()
	d, ok := core.AsDense(alg)
	if !ok {
		t.Fatalf("%s does not implement the dense backend", alg.Name())
	}
	inputs := make([][]float64, b)
	for r := range inputs {
		inputs[r] = make([]float64, n)
		for i := range inputs[r] {
			inputs[r][i] = rng.Float64()*2 - 1
		}
	}
	batch := core.NewBatchRunner(d, inputs)
	batch.SetParallelism(par)
	singles := make([]*core.DenseRunner, b)
	for r := range singles {
		singles[r] = core.NewDenseRunner(d, inputs[r])
	}
	out := make([]float64, n)
	gs := make([]graph.Graph, b)
	for round := 1; round <= rounds; round++ {
		if perRunGraphs {
			for r := range gs {
				gs[r] = randomBatchGraph(rng, n)
			}
			batch.StepEach(gs)
		} else {
			g := randomBatchGraph(rng, n)
			for r := range gs {
				gs[r] = g
			}
			batch.Step(g)
		}
		for r := 0; r < b; r++ {
			singles[r].Step(gs[r])
			batch.Outputs(r, out)
			for i := 0; i < n; i++ {
				want, got := singles[r].Output(i), out[i]
				if math.Float64bits(want) != math.Float64bits(got) {
					t.Fatalf("round %d run %d agent %d: batch output %v != single output %v",
						round, r, i, got, want)
				}
			}
			wantFP, okW := core.AppendDenseFingerprint(d, singles[r].State(), nil)
			gotFP, okG := batch.AppendRunFingerprint(nil, r)
			if okW != okG {
				t.Fatalf("round %d run %d: fingerprint support differs: single %v, batch %v", round, r, okW, okG)
			}
			if okW && !bytes.Equal(wantFP, gotFP) {
				t.Fatalf("round %d run %d: batch fingerprint differs from single\nsingle: %x\nbatch:  %x",
					round, r, wantFP, gotFP)
			}
			if hw, hg := singlesDiameter(singles[r]), batch.Diameter(r); math.Float64bits(hw) != math.Float64bits(hg) {
				t.Fatalf("round %d run %d: batch diameter %v != single diameter %v", round, r, hg, hw)
			}
		}
	}
}

func singlesDiameter(r *core.DenseRunner) float64 { return r.Diameter() }

// TestBatchMatchesSinglesRandomized is the batch plane's differential
// gate: for every dense algorithm (batched stepper or generic per-view
// path), a BatchRunner must be bit-identical to B independent
// DenseRunners — outputs, diameters, and full hidden state via the
// fingerprint encodings — under both shared and per-run graph sequences.
func TestBatchMatchesSinglesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for _, tc := range denseCases(rng) {
		for _, perRun := range []bool{false, true} {
			name := tc.alg.Name() + "/shared"
			if perRun {
				name = tc.alg.Name() + "/per-run"
			}
			t.Run(name, func(t *testing.T) {
				for trial := 0; trial < 8; trial++ {
					b := 1 + rng.Intn(7)
					rounds := 1 + rng.Intn(16)
					batchParityCheck(t, tc.alg, tc.n, b, rounds, rng, perRun)
				}
			})
		}
	}
}

// TestBatchCompact drops random runs mid-execution and checks the
// survivors keep stepping bit-identically to their reference runners,
// with Origin tracking the original indices.
func TestBatchCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alg := algorithms.AmortizedMidpoint{}
	d, _ := core.AsDense(alg)
	const n, b = 5, 8
	inputs := make([][]float64, b)
	singles := make([]*core.DenseRunner, b)
	for r := range inputs {
		inputs[r] = make([]float64, n)
		for i := range inputs[r] {
			inputs[r][i] = rng.Float64()
		}
		singles[r] = core.NewDenseRunner(d, inputs[r])
	}
	batch := core.NewBatchRunner(d, inputs)
	out := make([]float64, n)
	for round := 1; round <= 20; round++ {
		g := randomBatchGraph(rng, n)
		batch.Step(g)
		for _, s := range singles {
			s.Step(g)
		}
		if batch.B() > 1 && rng.Intn(3) == 0 {
			keep := make([]bool, batch.B())
			kept := 0
			for i := range keep {
				keep[i] = rng.Intn(4) != 0
				if keep[i] {
					kept++
				}
			}
			if kept == 0 {
				keep[rng.Intn(len(keep))] = true
			}
			batch.Compact(keep)
		}
		for i := 0; i < batch.B(); i++ {
			ref := singles[batch.Origin(i)]
			batch.Outputs(i, out)
			for j := 0; j < n; j++ {
				if math.Float64bits(ref.Output(j)) != math.Float64bits(out[j]) {
					t.Fatalf("round %d: compacted run %d (origin %d) diverged", round, i, batch.Origin(i))
				}
			}
		}
	}
}

// TestBatchReplicatedAndFork checks NewBatchRunnerReplicated spreads one
// mid-run state into identical runs (round preserved) and Fork yields an
// independent copy.
func TestBatchReplicatedAndFork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alg := algorithms.Midpoint{}
	d, _ := core.AsDense(alg)
	const n = 6
	in := make([]float64, n)
	for i := range in {
		in[i] = rng.Float64()
	}
	single := core.NewDenseRunner(d, in)
	for i := 0; i < 5; i++ {
		single.Step(randomBatchGraph(rng, n))
	}
	batch := core.NewBatchRunnerReplicated(d, single.State(), 4)
	if batch.Round() != single.Round() {
		t.Fatalf("replicated batch lost the round: %d != %d", batch.Round(), single.Round())
	}
	fork := batch.Fork()
	g := graph.Deaf(graph.Complete(n), 1)
	batch.Step(g)
	single.Step(g)
	out := make([]float64, n)
	for r := 0; r < batch.B(); r++ {
		batch.Outputs(r, out)
		for j := 0; j < n; j++ {
			if math.Float64bits(single.Output(j)) != math.Float64bits(out[j]) {
				t.Fatalf("replicated run %d agent %d diverged", r, j)
			}
		}
	}
	// The fork must still hold the pre-step state.
	if fork.Round() != batch.Round()-1 {
		t.Fatalf("fork advanced with its parent: round %d vs %d", fork.Round(), batch.Round())
	}
}

// TestBatchStepperResolution pins which algorithms advertise the batched
// stepper capability through core.AsBatchStepper.
func TestBatchStepperResolution(t *testing.T) {
	if _, ok := core.AsBatchStepper(algorithms.Midpoint{}); !ok {
		t.Fatal("Midpoint lost its batched stepper")
	}
	if _, ok := core.AsBatchStepper(algorithms.SelfWeighted{Alpha: 0.5}); ok {
		t.Fatal("SelfWeighted unexpectedly claims a batched stepper")
	}
}
