package algorithms_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

// convexAlgorithms is the portfolio of convex combination algorithms used
// across the tests.
func convexAlgorithms(n int) []core.Algorithm {
	algs := []core.Algorithm{
		algorithms.Midpoint{},
		algorithms.Mean{},
		algorithms.SelfWeighted{Alpha: 0.5},
		algorithms.AmortizedMidpoint{},
	}
	if n == 2 {
		algs = append(algs, algorithms.TwoThirds{})
	}
	return algs
}

func TestMidpointSingleRound(t *testing.T) {
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 4, 1})
	d := c.Step(graph.Complete(3))
	for i := 0; i < 3; i++ {
		if d.Output(i) != 2 {
			t.Errorf("agent %d: %v, want 2 (= (0+4)/2)", i, d.Output(i))
		}
	}
}

func TestMidpointContractionNonSplit(t *testing.T) {
	// Midpoint halves the diameter per round in any non-split model
	// (Charron-Bost et al.). Check over random non-split patterns.
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{3, 4, 6} {
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64()
		}
		src := core.Func(func(int, *core.Config) graph.Graph {
			return graph.RandomNonSplit(rng, n, 0.3)
		})
		tr := core.Run(algorithms.Midpoint{}, inputs, src, 12)
		for round, r := range tr.RoundRatios() {
			if r > 0.5+1e-12 {
				t.Errorf("n=%d round %d: midpoint ratio %v exceeds 1/2 on non-split graph", n, round+1, r)
			}
		}
		if !tr.ValidityHolds(1e-12) {
			t.Errorf("n=%d: midpoint violated validity", n)
		}
	}
}

func TestTwoThirdsContractionExactly(t *testing.T) {
	// Under H0, both agents move to within 1/3 of each other:
	// y0' = y0/3 + 2 y1/3, y1' = y1/3 + 2 y0/3 -> diameter ratio 1/3.
	tr := core.Run(algorithms.TwoThirds{}, []float64{0, 1}, core.Fixed{G: graph.H(0)}, 6)
	for round, r := range tr.RoundRatios() {
		if math.Abs(r-1.0/3.0) > 1e-12 {
			t.Errorf("round %d: two-thirds ratio %v, want exactly 1/3 under H0", round+1, r)
		}
	}
	// Under H1 only agent 1 moves: y1' = y1/3 + 2 y0/3, diameter ratio 1/3.
	tr = core.Run(algorithms.TwoThirds{}, []float64{0, 1}, core.Fixed{G: graph.H(1)}, 6)
	for round, r := range tr.RoundRatios() {
		if math.Abs(r-1.0/3.0) > 1e-12 {
			t.Errorf("round %d: two-thirds ratio %v under H1, want 1/3", round+1, r)
		}
	}
}

// TestTwoThirdsWorstCaseOverAllPatterns exhaustively checks that the
// two-thirds algorithm contracts by exactly 1/3 per round on every pattern
// over {H0, H1, H2} of bounded length — the upper-bound half of the n = 2
// tight bound (Theorem 1 + Algorithm 1).
func TestTwoThirdsWorstCaseOverAllPatterns(t *testing.T) {
	m := model.TwoAgent()
	var walk func(c *core.Config, depth int)
	worst := 0.0
	walk = func(c *core.Config, depth int) {
		if depth == 0 {
			return
		}
		for k := 0; k < m.Size(); k++ {
			d := c.Step(m.Graph(k))
			before := c.Diameter()
			after := d.Diameter()
			if before > 0 {
				if ratio := after / before; ratio > worst {
					worst = ratio
				}
			}
			walk(d, depth-1)
		}
	}
	walk(core.NewConfig(algorithms.TwoThirds{}, []float64{0, 1}), 5)
	if math.Abs(worst-1.0/3.0) > 1e-12 {
		t.Errorf("worst per-round ratio over all length-5 patterns = %v, want 1/3", worst)
	}
}

func TestTwoThirdsPanicsForWrongN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TwoThirds with n=3 did not panic")
		}
	}()
	core.NewConfig(algorithms.TwoThirds{}, []float64{0, 1, 2})
}

func TestMeanOnCompleteGraphAverages(t *testing.T) {
	tr := core.Run(algorithms.Mean{}, []float64{0, 1, 2, 3}, core.Fixed{G: graph.Complete(4)}, 1)
	for i := 0; i < 4; i++ {
		if tr.Outputs[1][i] != 1.5 {
			t.Errorf("agent %d: %v, want 1.5", i, tr.Outputs[1][i])
		}
	}
}

func TestSelfWeightedKeepsValueWhenAlone(t *testing.T) {
	tr := core.Run(algorithms.SelfWeighted{Alpha: 0.3}, []float64{0, 1, 2}, core.Fixed{G: graph.New(3)}, 3)
	for i, v := range []float64{0, 1, 2} {
		if tr.Outputs[3][i] != v {
			t.Errorf("isolated agent %d moved: %v", i, tr.Outputs[3][i])
		}
	}
}

func TestSelfWeightedAlphaValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SelfWeighted alpha > 1 did not panic")
		}
	}()
	algorithms.SelfWeighted{Alpha: 1.5}.NewAgent(0, 3, 0)
}

func TestAmortizedMidpointHalvesPerPhase(t *testing.T) {
	// In any rooted model the amortized midpoint algorithm halves the
	// diameter every n-1 rounds.
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{3, 4, 5, 6} {
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64() * 10
		}
		src := core.Func(func(int, *core.Config) graph.Graph {
			return graph.RandomRooted(rng, n, 0.25)
		})
		phases := 6
		tr := core.Run(algorithms.AmortizedMidpoint{}, inputs, src, (n-1)*phases)
		for p := 1; p <= phases; p++ {
			before := tr.DiameterAt((p - 1) * (n - 1))
			after := tr.DiameterAt(p * (n - 1))
			if before > 0 && after/before > 0.5+1e-12 {
				t.Errorf("n=%d phase %d: amortized midpoint phase ratio %v exceeds 1/2",
					n, p, after/before)
			}
		}
		if !tr.ValidityHolds(1e-12) {
			t.Errorf("n=%d: amortized midpoint violated validity", n)
		}
	}
}

func TestAmortizedMidpointWorstCasePsiModel(t *testing.T) {
	// Against the Psi model (rooted), the per-phase ratio must still be
	// at most 1/2 even under an adversarial-ish cyclic pattern.
	n := 6
	src := core.Cycle{Graphs: graph.PsiFamily(n)}
	inputs := []float64{0, 1, 0.5, 0.25, 0.75, 0.1}
	tr := core.Run(algorithms.AmortizedMidpoint{}, inputs, src, (n-1)*8)
	for p := 1; p <= 8; p++ {
		before := tr.DiameterAt((p - 1) * (n - 1))
		after := tr.DiameterAt(p * (n - 1))
		if before > 0 && after/before > 0.5+1e-12 {
			t.Errorf("phase %d ratio %v exceeds 1/2", p, after/before)
		}
	}
}

func TestFlowSumConservesMassAndConverges(t *testing.T) {
	g := graph.Cycle(4) // strongly connected; with self-loops, aperiodic
	alg := algorithms.FlowSumFor(g)
	inputs := []float64{0, 1, 2, 3}
	tr := core.Run(alg, inputs, core.Fixed{G: g}, 200)
	wantSum := 6.0
	for tIdx, ys := range tr.Outputs {
		sum := 0.0
		for _, y := range ys {
			sum += y
		}
		if math.Abs(sum-wantSum) > 1e-9 {
			t.Fatalf("round %d: mass %v, want %v", tIdx, sum, wantSum)
		}
	}
	if tr.DiameterAt(200) > 1e-9 {
		t.Errorf("flow-sum did not converge: final diameter %v", tr.DiameterAt(200))
	}
	// Non-convexity in action: on the star, the center's first update can
	// leave the convex hull of what it received. Verify the algorithm
	// self-reports as non-convex and genuinely violates hull validity on
	// some graph.
	if alg.Convex() {
		t.Error("FlowSum must report Convex() == false")
	}
	star := graph.Star(3, 0)
	tr2 := core.Run(algorithms.FlowSumFor(star), []float64{9, 0, 0}, core.Fixed{G: star}, 1)
	// Center keeps 9/3 = 3; leaves get 3 + own share. Agent 0's new value 3
	// is inside, but mass piles onto leaves: y1 = 9/3 + 0 = 3. All inside
	// hull here; use two rounds where leaf values exceed initial hull of
	// received messages. The cheap check: hull validity of the whole trace
	// against inputs must still hold for mass reasons? It need not; just
	// assert outputs changed non-trivially.
	if tr2.Outputs[1][0] != 3 {
		t.Errorf("star center after one round = %v, want 3", tr2.Outputs[1][0])
	}
}

func TestFlowSumLeavesConvexHullOfReceived(t *testing.T) {
	// Two agents, complete graph, out-degree 2 each. Received fractions at
	// agent 0: {y0/2, y1/2} = {0, 0.5}; new value 0.5 is their sum and lies
	// outside the received-values hull [0, 0.5]? 0.5 is the boundary.
	// Use asymmetric degrees: fixed graph 0->1 (deg(0)=2, deg(1)=1).
	g := graph.MustFromEdges(2, [2]int{0, 1})
	alg := algorithms.FlowSumFor(g)
	c := core.NewConfig(alg, []float64{6, 0})
	d := c.Step(g)
	// Agent 1 receives 6/2 = 3 from agent 0 and 0/1 = 0 from itself; new
	// value 3 = sum, within [0,3] hull. Agent 0 receives only its own 3,
	// new value 3. Total mass preserved at 6.
	if d.Output(0)+d.Output(1) != 6 {
		t.Errorf("mass not conserved: %v", d.Outputs())
	}
	// Run the canonical non-convex witness: cycle with a heavy node; after
	// one round every agent holds the sum of in-shares, which exceeds the
	// max received share whenever two shares arrive — i.e. the update is
	// NOT a convex combination of received values.
	g3 := graph.Cycle(3)
	c3 := core.NewConfig(algorithms.FlowSumFor(g3), []float64{3, 3, 0})
	d3 := c3.Step(g3)
	// Agent 1 hears shares {3/2 (own), 3/2 (from 0)} and sets 3 — strictly
	// above every received share 1.5: outside their convex hull.
	if d3.Output(1) <= 1.5 {
		t.Errorf("expected non-convex update, got %v", d3.Output(1))
	}
}

func TestFlowSumValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FlowSum without degree table did not panic")
		}
	}()
	algorithms.FlowSum{}.NewAgent(0, 2, 1)
}

// TestConvexAlgorithmsSolveAsymptoticConsensusOnRootedModels is the
// integration property: every convex algorithm in the portfolio converges
// to a common value inside the initial hull under random rooted patterns.
func TestConvexAlgorithmsSolveAsymptoticConsensusOnRootedModels(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{2, 3, 5} {
		for _, alg := range convexAlgorithms(n) {
			inputs := make([]float64, n)
			for i := range inputs {
				inputs[i] = rng.Float64()*20 - 10
			}
			src := core.Func(func(int, *core.Config) graph.Graph {
				return graph.RandomRooted(rng, n, 0.5)
			})
			rounds := 60 * n
			tr := core.Run(alg, inputs, src, rounds)
			if d := tr.DiameterAt(rounds); d > 1e-6 {
				t.Errorf("n=%d %s: did not converge, final diameter %v", n, alg.Name(), d)
			}
			if !tr.ValidityHolds(1e-9) {
				t.Errorf("n=%d %s: validity violated", n, alg.Name())
			}
		}
	}
}

// TestConvexityPropertyQuick property-checks that single-round updates of
// convex algorithms stay within the hull of received values, on random
// graphs and inputs.
func TestConvexityPropertyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		g := graph.Random(r, n, 0.5)
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = r.Float64()*100 - 50
		}
		for _, alg := range convexAlgorithms(n) {
			if n != 2 && alg.Name() == "two-thirds" {
				continue
			}
			c := core.NewConfig(alg, inputs)
			d := c.Step(g)
			for j := 0; j < n; j++ {
				var vals []float64
				for _, i := range g.In(j) {
					vals = append(vals, inputs[i])
				}
				lo, hi := core.Hull(vals)
				y := d.Output(j)
				if y < lo-1e-9 || y > hi+1e-9 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestCloneIndependenceQuick property-checks that cloned agents evolve
// independently for all algorithms.
func TestCloneIndependenceQuick(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = r.Float64()
		}
		for _, alg := range convexAlgorithms(n) {
			if n != 2 && alg.Name() == "two-thirds" {
				continue
			}
			c := core.NewConfig(alg, inputs)
			cl := c.Clone()
			c2 := c.Step(graph.RandomRooted(r, n, 0.5))
			_ = c2
			for i := 0; i < n; i++ {
				if cl.Output(i) != inputs[i] || c.Output(i) != inputs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNamesAndConvexFlags(t *testing.T) {
	cases := []struct {
		alg    core.Algorithm
		name   string
		convex bool
	}{
		{algorithms.Midpoint{}, "midpoint", true},
		{algorithms.TwoThirds{}, "two-thirds", true},
		{algorithms.Mean{}, "mean", true},
		{algorithms.SelfWeighted{Alpha: 0.25}, "self-weighted(0.25)", true},
		{algorithms.AmortizedMidpoint{}, "amortized-midpoint", true},
		{algorithms.NewFlowSum([]int{1, 1}), "flow-sum", false},
	}
	for _, tc := range cases {
		if tc.alg.Name() != tc.name {
			t.Errorf("Name = %q, want %q", tc.alg.Name(), tc.name)
		}
		if tc.alg.Convex() != tc.convex {
			t.Errorf("%s: Convex = %v, want %v", tc.name, tc.alg.Convex(), tc.convex)
		}
	}
}
