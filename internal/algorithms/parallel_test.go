package algorithms_test

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestBatchParallelMatchesSequential is the parallel kernel's
// differential gate across every dense algorithm: a BatchRunner
// stepping with intra-step workers must be bit-identical — outputs,
// diameters, and full hidden state via the fingerprints — to the
// independent sequential runners, under shared and per-run graph
// sequences, at worker counts spanning 1, a modest pool, workers close
// to B, and workers far beyond B.
func TestBatchParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7777))
	for _, tc := range denseCases(rng) {
		for _, par := range []int{1, 3, 8, 33} {
			for _, perRun := range []bool{false, true} {
				mode := "shared"
				if perRun {
					mode = "per-run"
				}
				t.Run(fmt.Sprintf("%s/%s/par%d", tc.alg.Name(), mode, par), func(t *testing.T) {
					for trial := 0; trial < 3; trial++ {
						b := 1 + rng.Intn(7)
						rounds := 1 + rng.Intn(12)
						batchParityCheckPar(t, tc.alg, tc.n, b, rounds, rng, perRun, par)
					}
				})
			}
		}
	}
}
