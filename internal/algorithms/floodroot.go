package algorithms

import (
	"fmt"

	"repro/internal/core"
)

// FloodRoot is an exact consensus algorithm for network models whose
// graphs all share a designated root agent: every agent forwards the
// root's initial value as soon as it has (transitively) heard it, and
// adopts it as its output. Because the root is a root of every round's
// graph, the informed set grows by at least one agent per round (take any
// uninformed agent j and a root-to-j path: its first edge leaving the
// informed set informs somebody), so after at most n-1 rounds every
// output equals the root's initial value exactly.
//
// This realizes the "contraction rate 0" entry of Table 1 for solvable
// models: the paper reduces it to exact consensus before Definition 22;
// common-root models are the canonical solvable case (every beta-class
// shares the root, so Theorem 19 applies).
type FloodRoot struct {
	// Root is the designated common root agent.
	Root int
}

// Name implements core.Algorithm.
func (f FloodRoot) Name() string { return fmt.Sprintf("flood-root(%d)", f.Root) }

// Convex implements core.Algorithm: outputs are always either the agent's
// own initial value or the root's initial value — both received values.
func (FloodRoot) Convex() bool { return true }

// NewAgent implements core.Algorithm. It panics when Root is not an agent.
func (f FloodRoot) NewAgent(id, n int, initial float64) core.Agent {
	if f.Root < 0 || f.Root >= n {
		panic(fmt.Sprintf("algorithms: FloodRoot root %d out of range [0,%d)", f.Root, n))
	}
	a := &floodRootAgent{y: initial}
	if id == f.Root {
		a.informed = true
		a.rootValue = initial
	}
	return a
}

type floodRootAgent struct {
	y         float64
	informed  bool
	rootValue float64
}

func (a *floodRootAgent) Broadcast(int) core.Message {
	flag := 0.0
	if a.informed {
		flag = 1
	}
	return core.Message{Value: a.y, Aux: []float64{flag, a.rootValue}}
}

func (a *floodRootAgent) Deliver(_ int, msgs []core.Message) {
	if a.informed {
		return
	}
	for _, m := range msgs {
		if len(m.Aux) == 2 && m.Aux[0] == 1 {
			a.informed = true
			a.rootValue = m.Aux[1]
			a.y = m.Aux[1]
			return
		}
	}
}

func (a *floodRootAgent) Output() float64   { return a.y }
func (a *floodRootAgent) Clone() core.Agent { cp := *a; return &cp }

// Informed reports whether the agent has heard the root's value; exported
// for tests and experiments inspecting flooding progress.
func (a *floodRootAgent) Informed() bool { return a.informed }
