// Package spec parses the compact command-line descriptions of network
// models and algorithms shared by the cmd/ tools.
//
// Model specs:
//
//	twoagent          the Figure 1 model {H0, H1, H2}
//	deaf:N            deaf(K_N)
//	psi:N             the Figure 2 model {Psi_0, Psi_1, Psi_2} on N nodes
//	rooted:N          all rooted graphs on N nodes (N <= 5)
//	nonsplit:N        all non-split graphs on N nodes (N <= 5)
//	na:N,F            the full asynchronous-round model N_A(N, F) (small N)
//	asyncchain:N,F    the Lemma 24 chain sub-model of N_A(N, F)
//	edges:N;A>B,C>D   a singleton model with the given edge list
//
// Algorithm specs:
//
//	midpoint | mean | amortized | twothirds | selfweighted:ALPHA |
//	rb-midpoint | rb-selectedmean:F
package spec

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/algorithms"
	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

// ParseModel builds a network model from a spec string.
func ParseModel(s string) (*model.Model, error) {
	name, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, arg = s[:i], s[i+1:]
	}
	switch name {
	case "twoagent":
		return model.TwoAgent(), nil
	case "deaf":
		n, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		return model.DeafModel(graph.Complete(n)), nil
	case "psi":
		n, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		if n < 4 {
			return nil, fmt.Errorf("spec: psi requires n >= 4, got %d", n)
		}
		return model.PsiModel(n), nil
	case "rooted":
		n, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		return model.AllRooted(n)
	case "nonsplit":
		n, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		return model.AllNonSplit(n)
	case "na":
		n, f, err := parseNF(arg)
		if err != nil {
			return nil, err
		}
		return model.FullAsyncRound(n, f)
	case "asyncchain":
		n, f, err := parseNF(arg)
		if err != nil {
			return nil, err
		}
		return model.AsyncChain(n, f)
	case "edges":
		g, err := ParseGraph(arg)
		if err != nil {
			return nil, err
		}
		return model.New(g)
	default:
		return nil, fmt.Errorf("spec: unknown model %q", name)
	}
}

// ParseGraph parses "N;A>B,C>D,..." into a graph with the listed edges.
func ParseGraph(arg string) (graph.Graph, error) {
	parts := strings.SplitN(arg, ";", 2)
	n, err := parseN(parts[0])
	if err != nil {
		return graph.Graph{}, err
	}
	var edges [][2]int
	if len(parts) == 2 && parts[1] != "" {
		for _, e := range strings.Split(parts[1], ",") {
			ft := strings.SplitN(e, ">", 2)
			if len(ft) != 2 {
				return graph.Graph{}, fmt.Errorf("spec: malformed edge %q (want A>B)", e)
			}
			from, err := strconv.Atoi(strings.TrimSpace(ft[0]))
			if err != nil {
				return graph.Graph{}, fmt.Errorf("spec: edge %q: %v", e, err)
			}
			to, err := strconv.Atoi(strings.TrimSpace(ft[1]))
			if err != nil {
				return graph.Graph{}, fmt.Errorf("spec: edge %q: %v", e, err)
			}
			edges = append(edges, [2]int{from, to})
		}
	}
	return graph.FromEdges(n, edges...)
}

// ParseAlgorithm builds an algorithm from a spec string. n is the system
// size (needed for validation only).
func ParseAlgorithm(s string, n int) (core.Algorithm, error) {
	name, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, arg = s[:i], s[i+1:]
	}
	switch name {
	case "midpoint":
		return algorithms.Midpoint{}, nil
	case "mean":
		return algorithms.Mean{}, nil
	case "amortized":
		return algorithms.AmortizedMidpoint{}, nil
	case "twothirds":
		if n != 2 {
			return nil, fmt.Errorf("spec: twothirds requires n = 2, got %d", n)
		}
		return algorithms.TwoThirds{}, nil
	case "selfweighted":
		a, err := strconv.ParseFloat(arg, 64)
		if err != nil || a < 0 || a > 1 {
			return nil, fmt.Errorf("spec: selfweighted needs alpha in [0,1], got %q", arg)
		}
		return algorithms.SelfWeighted{Alpha: a}, nil
	case "rb-midpoint":
		return async.AsCoreAlgorithm("rb-midpoint", async.MidpointUpdate), nil
	case "rb-selectedmean":
		f, err := strconv.Atoi(arg)
		if err != nil || f < 1 {
			return nil, fmt.Errorf("spec: rb-selectedmean needs f >= 1, got %q", arg)
		}
		return async.AsCoreAlgorithm(fmt.Sprintf("rb-selected-mean(f=%d)", f), async.SelectedMeanUpdate(f)), nil
	default:
		return nil, fmt.Errorf("spec: unknown algorithm %q", name)
	}
}

// ParseFloats parses a comma-separated float list.
func ParseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("spec: empty float list")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("spec: bad float %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseN(arg string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(arg))
	if err != nil || n < 1 {
		return 0, fmt.Errorf("spec: bad node count %q", arg)
	}
	return n, nil
}

func parseNF(arg string) (int, int, error) {
	parts := strings.Split(arg, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("spec: want N,F, got %q", arg)
	}
	n, err := parseN(parts[0])
	if err != nil {
		return 0, 0, err
	}
	f, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil || f < 1 {
		return 0, 0, fmt.Errorf("spec: bad crash count %q", parts[1])
	}
	return n, f, nil
}
