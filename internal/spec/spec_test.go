package spec_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/spec"
)

func TestParseModel(t *testing.T) {
	cases := []struct {
		in      string
		wantN   int
		wantLen int
	}{
		{"twoagent", 2, 3},
		{"deaf:4", 4, 4},
		{"psi:5", 5, 3},
		{"rooted:2", 2, 3},
		{"nonsplit:2", 2, 3},
		{"na:4,1", 4, 256},
		{"edges:3;0>1,1>2", 3, 1},
	}
	for _, tc := range cases {
		m, err := spec.ParseModel(tc.in)
		if err != nil {
			t.Errorf("ParseModel(%q): %v", tc.in, err)
			continue
		}
		if m.N() != tc.wantN || m.Size() != tc.wantLen {
			t.Errorf("ParseModel(%q) = n=%d size=%d, want n=%d size=%d",
				tc.in, m.N(), m.Size(), tc.wantN, tc.wantLen)
		}
	}
	m, err := spec.ParseModel("asyncchain:6,2")
	if err != nil {
		t.Fatalf("asyncchain: %v", err)
	}
	if m.N() != 6 || m.Size() < 4 {
		t.Errorf("asyncchain:6,2 = n=%d size=%d", m.N(), m.Size())
	}
	for _, bad := range []string{"", "wat", "deaf:x", "deaf:0", "psi:3", "na:4", "na:4,0",
		"edges:3;0-1", "edges:3;9>1", "edges:x;0>1", "rooted:9"} {
		if _, err := spec.ParseModel(bad); err == nil {
			t.Errorf("ParseModel(%q) succeeded, want error", bad)
		}
	}
}

func TestParseGraph(t *testing.T) {
	g, err := spec.ParseGraph("3;0>1,1>2")
	if err != nil {
		t.Fatal(err)
	}
	want := graph.MustFromEdges(3, [2]int{0, 1}, [2]int{1, 2})
	if !g.Equal(want) {
		t.Errorf("ParseGraph = %v, want %v", g, want)
	}
	// No-edge spec yields the identity graph.
	id, err := spec.ParseGraph("2")
	if err != nil {
		t.Fatal(err)
	}
	if !id.Equal(graph.New(2)) {
		t.Errorf("ParseGraph(\"2\") = %v, want identity", id)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, tc := range []struct {
		in   string
		n    int
		name string
	}{
		{"midpoint", 3, "midpoint"},
		{"mean", 3, "mean"},
		{"amortized", 4, "amortized-midpoint"},
		{"twothirds", 2, "two-thirds"},
		{"selfweighted:0.25", 3, "self-weighted(0.25)"},
		{"rb-midpoint", 4, "rb-midpoint"},
		{"rb-selectedmean:2", 6, "rb-selected-mean(f=2)"},
	} {
		alg, err := spec.ParseAlgorithm(tc.in, tc.n)
		if err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", tc.in, err)
			continue
		}
		if alg.Name() != tc.name {
			t.Errorf("ParseAlgorithm(%q).Name = %q, want %q", tc.in, alg.Name(), tc.name)
		}
	}
	for _, bad := range []struct {
		in string
		n  int
	}{
		{"nope", 3}, {"twothirds", 3}, {"selfweighted:2", 3},
		{"selfweighted:x", 3}, {"rb-selectedmean:0", 4},
	} {
		if _, err := spec.ParseAlgorithm(bad.in, bad.n); err == nil {
			t.Errorf("ParseAlgorithm(%q, n=%d) succeeded, want error", bad.in, bad.n)
		}
	}
}

func TestParseFloats(t *testing.T) {
	got, err := spec.ParseFloats("0, 1, 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 0.5 {
		t.Errorf("ParseFloats = %v", got)
	}
	for _, bad := range []string{"", "a,b", "1,,2"} {
		if _, err := spec.ParseFloats(bad); err == nil {
			t.Errorf("ParseFloats(%q) succeeded, want error", bad)
		}
	}
}
