package adversary_test

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

// deltaFloorRun drives alg from inputs under the greedy adversary for the
// given rounds and returns the certified inner δ(C_t) for every t.
func deltaFloorRun(t *testing.T, alg core.Algorithm, m *model.Model, inputs []float64, depth, rounds int) []float64 {
	t.Helper()
	est := valency.NewEstimator(m, depth, alg.Convex())
	adv := &adversary.Greedy{Est: est}
	c := core.NewConfig(alg, inputs)
	floors := []float64{est.DeltaLower(c)}
	for round := 1; round <= rounds; round++ {
		g := adv.Next(round, c)
		c = c.Step(g)
		floors = append(floors, est.DeltaLower(c))
	}
	return floors
}

// TestTheorem1FloorTwoAgents reproduces the Theorem 1 lower bound: under
// the greedy valency-splitting adversary over {H0, H1, H2}, every
// algorithm retains δ(C_t) >= δ(C_0)/3^t. The inner estimates are sound
// lower bounds on δ, so the check is conservative.
func TestTheorem1FloorTwoAgents(t *testing.T) {
	m := model.TwoAgent()
	rounds := 6
	for _, alg := range []core.Algorithm{algorithms.TwoThirds{}, algorithms.Midpoint{}, algorithms.Mean{}} {
		floors := deltaFloorRun(t, alg, m, []float64{0, 1}, 5, rounds)
		if math.Abs(floors[0]-1) > 1e-6 {
			t.Fatalf("%s: δ(C0) = %v, want 1 (Lemma 8)", alg.Name(), floors[0])
		}
		for tt := 1; tt <= rounds; tt++ {
			want := math.Pow(1.0/3.0, float64(tt))
			if floors[tt] < want-1e-6 {
				t.Errorf("%s: δ(C_%d) = %v below Theorem 1 floor %v", alg.Name(), tt, floors[tt], want)
			}
		}
	}
}

// TestTwoThirdsIsExactlyOptimal checks tightness at n = 2: for the
// two-thirds algorithm the adversary can do no better than the 1/3 floor
// (ratio exactly 1/3 per round), certifying that Algorithm 1 matches the
// Theorem 1 bound.
func TestTwoThirdsIsExactlyOptimal(t *testing.T) {
	floors := deltaFloorRun(t, algorithms.TwoThirds{}, model.TwoAgent(), []float64{0, 1}, 5, 5)
	for tt := 1; tt < len(floors); tt++ {
		want := math.Pow(1.0/3.0, float64(tt))
		if math.Abs(floors[tt]-want) > 1e-5 {
			t.Errorf("δ(C_%d) = %v, want exactly %v for the optimal algorithm", tt, floors[tt], want)
		}
	}
}

// TestMidpointSuboptimalAtTwoAgents documents the interesting gap the
// bounds expose: at n = 2 the midpoint algorithm only achieves contraction
// 1/2 (the adversary holds δ at 2^-t), strictly worse than the optimal
// 3^-t of the two-thirds algorithm.
func TestMidpointSuboptimalAtTwoAgents(t *testing.T) {
	floors := deltaFloorRun(t, algorithms.Midpoint{}, model.TwoAgent(), []float64{0, 1}, 5, 5)
	for tt := 1; tt < len(floors); tt++ {
		want := math.Pow(0.5, float64(tt))
		if floors[tt] < want-1e-5 {
			t.Errorf("δ(C_%d) = %v below midpoint's 2^-t = %v", tt, floors[tt], want)
		}
	}
}

// TestTheorem2FloorDeafModel reproduces the Theorem 2 lower bound: in
// deaf(K_n) the greedy adversary keeps δ(C_t) >= δ(C_0)/2^t, for n >= 3,
// against the full algorithm portfolio.
func TestTheorem2FloorDeafModel(t *testing.T) {
	cases := []struct {
		n      int
		depth  int
		rounds int
	}{
		{3, 3, 5},
		{4, 2, 4},
	}
	for _, tc := range cases {
		m := model.DeafModel(graph.Complete(tc.n))
		inputs := make([]float64, tc.n)
		inputs[0], inputs[1] = 0, 1
		for i := 2; i < tc.n; i++ {
			inputs[i] = 0.5
		}
		for _, alg := range []core.Algorithm{algorithms.Midpoint{}, algorithms.Mean{}, algorithms.AmortizedMidpoint{}} {
			floors := deltaFloorRun(t, alg, m, inputs, tc.depth, tc.rounds)
			if math.Abs(floors[0]-1) > 1e-6 {
				t.Fatalf("n=%d %s: δ(C0) = %v, want 1", tc.n, alg.Name(), floors[0])
			}
			for tt := 1; tt <= tc.rounds; tt++ {
				want := math.Pow(0.5, float64(tt))
				if floors[tt] < want-1e-5 {
					t.Errorf("n=%d %s: δ(C_%d) = %v below Theorem 2 floor %v",
						tc.n, alg.Name(), tt, floors[tt], want)
				}
			}
		}
	}
}

// TestMidpointTightInDeafModel checks tightness: midpoint's δ decays at
// exactly 2^-t under the adversary, matching upper and lower bounds.
func TestMidpointTightInDeafModel(t *testing.T) {
	m := model.DeafModel(graph.Complete(3))
	floors := deltaFloorRun(t, algorithms.Midpoint{}, m, []float64{0, 1, 0.5}, 3, 5)
	for tt := 1; tt < len(floors); tt++ {
		want := math.Pow(0.5, float64(tt))
		if math.Abs(floors[tt]-want) > 1e-5 {
			t.Errorf("δ(C_%d) = %v, want exactly %v", tt, floors[tt], want)
		}
	}
}

// TestTheorem3FloorPsiBlocks reproduces the Theorem 3 lower bound: under
// the σ-block adversary over the Ψ graphs, δ halves at most once per
// block of n-2 rounds, i.e. the per-round contraction is at least
// (1/2)^(1/(n-2)).
func TestTheorem3FloorPsiBlocks(t *testing.T) {
	for _, n := range []int{4, 5} {
		m := model.PsiModel(n)
		est := valency.NewEstimator(m, 1, true)
		adv, err := adversary.NewBlockGreedy(est, adversary.SigmaBlocks(n))
		if err != nil {
			t.Fatal(err)
		}
		if adv.BlockLen() != n-2 {
			t.Fatalf("block length %d, want n-2 = %d", adv.BlockLen(), n-2)
		}
		inputs := make([]float64, n)
		inputs[0], inputs[1] = 0, 1
		for i := 2; i < n; i++ {
			inputs[i] = 0.5
		}
		for _, alg := range []core.Algorithm{algorithms.AmortizedMidpoint{}, algorithms.Midpoint{}} {
			c := core.NewConfig(alg, inputs)
			if d0 := est.DeltaLower(c); math.Abs(d0-1) > 1e-6 {
				t.Fatalf("n=%d %s: δ(C0) = %v, want 1 (Lemma 13)", n, alg.Name(), d0)
			}
			blocks := 4
			round := 0
			for b := 1; b <= blocks; b++ {
				for r := 0; r < n-2; r++ {
					round++
					c = c.Step(adv.Next(round, c))
				}
				floor := est.DeltaLower(c)
				want := math.Pow(0.5, float64(b))
				if floor < want-1e-5 {
					t.Errorf("n=%d %s: δ after block %d = %v below Theorem 3 floor %v",
						n, alg.Name(), b, floor, want)
				}
			}
		}
	}
}

// TestLemma14Indistinguishability machine-checks Lemma 14: after playing
// σ_i versus σ_j from the same configuration, every trio agent ℓ distinct
// from i and j ends with identical state (observable via its output and
// via continued identical behavior).
func TestLemma14Indistinguishability(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7} {
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = float64(i) / float64(n)
		}
		for _, alg := range []core.Algorithm{algorithms.Midpoint{}, algorithms.AmortizedMidpoint{}, algorithms.Mean{}} {
			c := core.NewConfig(alg, inputs)
			ends := make([]*core.Config, 3)
			for i := 0; i < 3; i++ {
				ends[i] = c.StepAll(graph.SigmaBlock(n, i))
			}
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					if i == j {
						continue
					}
					for l := 0; l < 3; l++ {
						if l == i || l == j {
							continue
						}
						if ends[i].Output(l) != ends[j].Output(l) {
							t.Errorf("n=%d %s: agent %d distinguishes σ_%d from σ_%d: %v vs %v",
								n, alg.Name(), l, i, j, ends[i].Output(l), ends[j].Output(l))
						}
						// The lemma also covers agents k+3..n-1 at full block
						// length: all path agents are indistinguishable too.
						for p := 3; p < n; p++ {
							_ = p
						}
					}
				}
			}
			// Stronger check from the inductive statement: path agents
			// m in {k+3, ..., n} after k rounds. At k = n-2 the surviving
			// set is empty, so only trio agents are asserted above; check
			// the k = 1 case explicitly.
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					if i == j {
						continue
					}
					ci := c.Step(graph.Psi(n, i))
					cj := c.Step(graph.Psi(n, j))
					for p := 4; p < n; p++ {
						if ci.Output(p) != cj.Output(p) {
							t.Errorf("n=%d %s: path agent %d distinguishes Ψ_%d from Ψ_%d after 1 round",
								n, alg.Name(), p, i, j)
						}
					}
				}
			}
		}
	}
}

// TestTheorem5FloorAlphaDiameter reproduces the generic Theorem 5 bound on
// the async-chain sub-model: the greedy adversary preserves
// δ(C_t) >= δ(C_0)/(D+1)^t where D is the model's alpha-diameter.
func TestTheorem5FloorAlphaDiameter(t *testing.T) {
	// The full N_A(4,1) has 256 graphs; greedy exploration over 256
	// successors with 256 continuations each is too slow for a unit test,
	// so use the sub-model of silenced blocks joined by Lemma 24 chains
	// (alpha-connected, unsolvable) instead, with its own computed D.
	sub, err := model.AsyncChain(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, finite := sub.AlphaDiameter()
	if !finite {
		t.Fatal("sub-model alpha-diameter infinite")
	}
	bound := 1 / float64(d+1)
	est := valency.NewEstimator(sub, 0, true)
	adv := &adversary.Greedy{Est: est}
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1, 0.5, 0.25})
	d0 := est.DeltaLower(c)
	if d0 <= 0 {
		t.Fatal("δ(C0) estimate is zero; estimator too coarse")
	}
	rounds := 4
	for round := 1; round <= rounds; round++ {
		c = c.Step(adv.Next(round, c))
		floor := est.DeltaLower(c)
		want := d0 * math.Pow(bound, float64(round))
		if floor < want-1e-6 {
			t.Errorf("δ(C_%d) = %v below Theorem 5 floor %v (D=%d)", round, floor, want, d)
		}
	}
}

// TestGreedyFallbackOnBlindEstimator forces the inner estimates to come
// up empty (Settle too small for any continuation to converge) and checks
// the adversary falls back to maximizing the successor value diameter.
func TestGreedyFallbackOnBlindEstimator(t *testing.T) {
	m := model.TwoAgent()
	est := valency.NewEstimator(m, 1, true)
	est.Settle = 1 // nothing converges within one round from diameter 1
	est.Tol = 1e-12
	adv := &adversary.Greedy{Est: est}
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})
	g := adv.Next(1, c)
	// Fallback maximizes the successor diameter: H0 collapses to 0, H1/H2
	// keep 1/2; either one-sided graph is a correct choice.
	if g.Equal(graph.H(0)) {
		t.Errorf("fallback chose the diameter-collapsing graph H0")
	}
}

// TestBlockGreedyFallback exercises the same fallback for the block
// adversary.
func TestBlockGreedyFallback(t *testing.T) {
	n := 4
	m := model.PsiModel(n)
	est := valency.NewEstimator(m, 0, true)
	est.Settle = 1
	adv, err := adversary.NewBlockGreedy(est, adversary.SigmaBlocks(n))
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1, 0.5, 0.5})
	for round := 1; round <= 2*(n-2); round++ {
		g := adv.Next(round, c)
		if !m.Contains(g) {
			t.Fatalf("fallback left the model: %v", g)
		}
		c = c.Step(g)
	}
	if c.Diameter() <= 0 {
		t.Error("fallback adversary should preserve a positive diameter")
	}
}

func TestBlockGreedyValidation(t *testing.T) {
	m := model.PsiModel(5)
	est := valency.NewEstimator(m, 1, true)
	if _, err := adversary.NewBlockGreedy(est, nil); err == nil {
		t.Error("accepted empty block set")
	}
	if _, err := adversary.NewBlockGreedy(est, [][]graph.Graph{{}}); err == nil {
		t.Error("accepted empty block")
	}
	ragged := [][]graph.Graph{graph.SigmaBlock(5, 0), {graph.Psi(5, 1)}}
	if _, err := adversary.NewBlockGreedy(est, ragged); err == nil {
		t.Error("accepted ragged blocks")
	}
	alien := [][]graph.Graph{{graph.Complete(5), graph.Complete(5), graph.Complete(5)}}
	if _, err := adversary.NewBlockGreedy(est, alien); err == nil {
		t.Error("accepted block with non-member graph")
	}
}

func TestGreedyTraceRecording(t *testing.T) {
	m := model.TwoAgent()
	est := valency.NewEstimator(m, 3, true)
	var decisions []adversary.Decision
	adv := &adversary.Greedy{Est: est, Trace: &decisions}
	c := core.NewConfig(algorithms.TwoThirds{}, []float64{0, 1})
	for round := 1; round <= 3; round++ {
		c = c.Step(adv.Next(round, c))
	}
	if len(decisions) != 3 {
		t.Fatalf("recorded %d decisions, want 3", len(decisions))
	}
	for i, d := range decisions {
		if d.Round != i+1 || len(d.Inner) != 3 {
			t.Errorf("decision %d malformed: %+v", i, d)
		}
		if d.Chosen < 0 || d.Chosen >= 3 {
			t.Errorf("decision %d chose out-of-range graph %d", i, d.Chosen)
		}
	}
}
