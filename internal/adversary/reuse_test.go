package adversary_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

// TestGreedyCrossRoundReuseIsTransparent runs the same adversarial
// execution twice — once with the persistent shared-cache engine, once
// with a cold engine per round — and demands identical graph choices and
// identical final values: cross-round memoization must be invisible in
// behavior.
func TestGreedyCrossRoundReuseIsTransparent(t *testing.T) {
	m := model.DeafModel(graph.Complete(3))
	inputs := []float64{0, 1, 0.5}
	const rounds = 6

	warm := &adversary.Greedy{Est: valency.NewEstimator(m, 2, true)}
	warmTrace := core.Run(algorithms.Midpoint{}, inputs, warm, rounds)

	cold := core.Func(func(round int, c *core.Config) graph.Graph {
		adv := &adversary.Greedy{Est: valency.NewEstimator(m, 2, true)}
		return adv.Next(round, c)
	})
	coldTrace := core.Run(algorithms.Midpoint{}, inputs, cold, rounds)

	for r := 0; r < rounds; r++ {
		if warmTrace.Graphs[r].Key() != coldTrace.Graphs[r].Key() {
			t.Fatalf("round %d: warm adversary played %v, cold played %v",
				r+1, warmTrace.Graphs[r], coldTrace.Graphs[r])
		}
	}
	for i := range warmTrace.Outputs[rounds] {
		if warmTrace.Outputs[rounds][i] != coldTrace.Outputs[rounds][i] {
			t.Fatalf("agent %d final value differs: warm %v, cold %v",
				i, warmTrace.Outputs[rounds][i], coldTrace.Outputs[rounds][i])
		}
	}

	// The warm run must actually have reused its tables across rounds.
	stats := warm.Est.Engine().Stats()
	if stats.LimitHits == 0 && stats.InnerHits == 0 {
		t.Fatalf("persistent engine recorded no cache hits across %d rounds: %+v", rounds, stats)
	}
}

// TestGreedyZeroDiameterFallback pins the fallback ranking: with Settle=0
// no constant continuation ever certifies a limit, every inner bound is
// empty, and the adversary must fall back to maximizing the successor's
// plain value diameter — computed without materializing successor
// configurations, but identical to the materializing reference.
func TestGreedyZeroDiameterFallback(t *testing.T) {
	m := model.DeafModel(graph.Complete(3))
	est := valency.NewEstimator(m, 1, true)
	est.Settle = 0 // kill the inner bound: forces the fallback path
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1, 0.5})

	if iv := est.Inner(c); iv.Diameter() != 0 {
		t.Fatalf("precondition failed: inner bound %v should be empty with Settle=0", iv)
	}

	adv := &adversary.Greedy{Est: est}
	got := adv.Next(1, c)

	wantIdx, wantDiam := 0, -1.0
	for k := 0; k < m.Size(); k++ {
		if d := c.Step(m.Graph(k)).Diameter(); d > wantDiam {
			wantIdx, wantDiam = k, d
		}
	}
	if got.Key() != m.Graph(wantIdx).Key() {
		t.Fatalf("fallback chose %v, reference ranking chose %v", got, m.Graph(wantIdx))
	}
}

// TestBlockGreedyMatchesStepAllReference checks the scratch-stepping
// block playout against a plain StepAll + reference-walk ranking.
func TestBlockGreedyMatchesStepAllReference(t *testing.T) {
	const n = 4
	blocks := adversary.SigmaBlocks(n)
	var gs []graph.Graph
	for _, b := range blocks {
		gs = append(gs, b...)
	}
	m := model.MustNew(gs...)
	est := valency.NewEstimator(m, 1, true)
	adv, err := adversary.NewBlockGreedy(est, blocks)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []float64{0, 1, 0.25, 0.75}
	c := core.NewConfig(algorithms.AmortizedMidpoint{}, inputs)

	got := adv.Next(1, c)

	refEst := valency.NewEstimator(m, 1, true)
	wantIdx, wantDiam := 0, -1.0
	for k, block := range blocks {
		end := c.StepAll(block)
		if d := refEst.ReferenceInner(end).Diameter(); d > wantDiam {
			wantIdx, wantDiam = k, d
		}
	}
	if wantDiam <= 0 {
		for k, block := range blocks {
			if d := c.StepAll(block).Diameter(); d > wantDiam {
				wantIdx, wantDiam = k, d
			}
		}
	}
	if got.Key() != blocks[wantIdx][0].Key() {
		t.Fatalf("block greedy played %v, reference ranking starts block %d with %v",
			got, wantIdx, blocks[wantIdx][0])
	}
}
