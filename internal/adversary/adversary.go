// Package adversary implements the worst-case pattern constructions from
// the lower-bound proofs of Függer, Nowak, Schwarz (PODC 2018).
//
// The proofs of Theorems 1, 2 and 5 all share one skeleton: from the
// current configuration C, some successor G.C must retain a valency
// diameter of at least δ(C)/(q+1) (where q+1 is 3, 2, and D+1
// respectively), because the successor valencies cover Y*(C) (Lemma 4)
// and pairwise intersect along an indistinguishability chain (Lemmas 7
// and 20). The adversary that always moves to the successor with the
// largest valency diameter therefore maintains δ(C_t) >= δ(C_0)/(q+1)^t.
//
// Greedy is that adversary, instantiated with the valency estimator's
// sound inner bounds: it maximizes a certified lower bound on δ(G.C), so
// every decay floor it exhibits is genuine. BlockGreedy is the Theorem 3
// variant that plays whole σ_i blocks of n-2 Ψ_i graphs between decisions,
// following the proof's generalization from graph choices to sequence
// choices (Section 6.1).
package adversary

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/valency"
)

// Greedy is a core.PatternSource that, in every round, plays the model
// graph whose successor configuration has the largest certified (inner)
// valency diameter, breaking ties toward the lowest model index for
// determinism. When every successor's inner bound is zero (estimator too
// coarse to witness any spread), it falls back to maximizing the plain
// value diameter of the successor.
type Greedy struct {
	// Est provides the model and the valency bounds.
	Est valency.Estimator
	// Trace, if non-nil, receives one record per decision.
	Trace *[]Decision
}

// Decision records one greedy adversary choice.
type Decision struct {
	Round  int
	Chosen int // model index of the graph played
	// Inner[k] is the inner valency interval of successor k.
	Inner []valency.Interval
}

// Next implements core.PatternSource. The valency exploration runs on the
// estimator's persistent engine, so when the next round's call re-explores
// the chosen successor's subtree, every constant-graph settle loop — the
// dominant cost, already resolved while ranking candidates here — is
// served from the depth-independent limit table. (Inner-table entries are
// keyed by remaining depth, so the deeper re-exploration misses those.)
func (a *Greedy) Next(round int, c *core.Config) graph.Graph {
	m := a.Est.Model
	eng := a.Est.Engine()
	inners := eng.SuccessorInners(c)
	best, bestDiam := 0, -1.0
	for k, iv := range inners {
		if d := iv.Diameter(); d > bestDiam {
			best, bestDiam = k, d
		}
	}
	if bestDiam <= 0 {
		// Fallback: maximize the successor's value diameter, computed on
		// the engine's scratch arena — no per-candidate configuration is
		// materialized.
		for k, d := range eng.SuccessorValueDiameters(c) {
			if d > bestDiam {
				best, bestDiam = k, d
			}
		}
	}
	if a.Trace != nil {
		*a.Trace = append(*a.Trace, Decision{Round: round, Chosen: best, Inner: inners})
	}
	return m.Graph(best)
}

// BlockGreedy is the Theorem 3 adversary: it decides once per block of
// Len rounds, choosing among the given graph blocks (typically the three
// σ_i = Ψ_i^(n-2) sequences) the one whose end-of-block configuration has
// the largest inner valency diameter, then plays that block out.
type BlockGreedy struct {
	// Est provides valency bounds; its model must contain every graph
	// appearing in Blocks.
	Est valency.Estimator
	// Blocks are the candidate graph sequences; all must have equal,
	// positive length.
	Blocks [][]graph.Graph

	pending []graph.Graph
	scratch *core.Config
}

// NewBlockGreedy validates the blocks and returns the adversary.
func NewBlockGreedy(est valency.Estimator, blocks [][]graph.Graph) (*BlockGreedy, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("adversary: no blocks")
	}
	length := len(blocks[0])
	if length == 0 {
		return nil, fmt.Errorf("adversary: empty block")
	}
	for _, b := range blocks {
		if len(b) != length {
			return nil, fmt.Errorf("adversary: ragged block lengths %d vs %d", len(b), length)
		}
		for _, g := range b {
			if !est.Model.Contains(g) {
				return nil, fmt.Errorf("adversary: block graph %v not in estimator model", g)
			}
		}
	}
	return &BlockGreedy{Est: est, Blocks: blocks}, nil
}

// BlockLen returns the common block length.
func (a *BlockGreedy) BlockLen() int { return len(a.Blocks[0]) }

// Next implements core.PatternSource. Candidate blocks are played out on
// a reused scratch configuration, and the end-of-block valencies come
// from the estimator's persistent engine, whose caches carry the chosen
// block's exploration into the next decision.
func (a *BlockGreedy) Next(round int, c *core.Config) graph.Graph {
	if len(a.pending) == 0 {
		eng := a.Est.Engine()
		if a.scratch == nil {
			a.scratch = &core.Config{}
		}
		playBlock := func(block []graph.Graph) *core.Config {
			end := a.scratch
			c.StepInto(end, block[0])
			for _, g := range block[1:] {
				end.StepInPlace(g)
			}
			return end
		}
		best, bestDiam := 0, -1.0
		for k, block := range a.Blocks {
			if d := eng.Inner(playBlock(block)).Diameter(); d > bestDiam {
				best, bestDiam = k, d
			}
		}
		if bestDiam <= 0 {
			for k, block := range a.Blocks {
				if d := playBlock(block).Diameter(); d > bestDiam {
					best, bestDiam = k, d
				}
			}
		}
		a.pending = append(a.pending[:0], a.Blocks[best]...)
	}
	g := a.pending[0]
	a.pending = a.pending[1:]
	return g
}

// SigmaBlocks returns the three σ_i blocks of Theorem 3 for n agents.
func SigmaBlocks(n int) [][]graph.Graph {
	return [][]graph.Graph{
		graph.SigmaBlock(n, 0),
		graph.SigmaBlock(n, 1),
		graph.SigmaBlock(n, 2),
	}
}
