package approx

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
)

// Dense backend support for the deciding wrapper. The wrapper adds one
// auxiliary plane — the write-once decision variable, NaN (⊥) until the
// decision round — after the inner algorithm's planes; the inner stepper
// runs on the same state and never touches the extra plane.

// Dense implements core.DenseProvider: the deciding wrapper is dense-
// capable exactly when its inner algorithm is. When the inner algorithm
// also steps batches (core.BatchStepper), so does the wrapper.
func (d DecidingAlgorithm) Dense() (core.DenseAlgorithm, bool) {
	inner, ok := core.AsDense(d.Inner)
	if !ok {
		return nil, false
	}
	dd := denseDeciding{DecidingAlgorithm: d, inner: inner}
	if bs, ok := inner.(core.BatchStepper); ok {
		return denseDecidingBatch{denseDeciding: dd, innerBatch: bs}, true
	}
	return dd, true
}

// denseDeciding is the dense view of a DecidingAlgorithm.
type denseDeciding struct {
	DecidingAlgorithm
	inner core.DenseAlgorithm
}

// decisionPlane returns the wrapper's decision plane (the last one).
func decisionPlane(st *core.DenseState) []float64 { return st.Plane(st.Planes() - 1) }

// DensePlanes implements core.DenseAlgorithm.
func (d denseDeciding) DensePlanes() int { return d.inner.DensePlanes() + 1 }

// InitDense implements core.DenseAlgorithm.
func (d denseDeciding) InitDense(st *core.DenseState) {
	if d.DecisionRound < 0 {
		panic(fmt.Sprintf("approx: negative decision round %d", d.DecisionRound))
	}
	d.inner.InitDense(st)
	dec := decisionPlane(st)
	if d.DecisionRound == 0 {
		// Decide immediately on the input, as NewAgent does.
		d.inner.OutputsDense(st, dec)
		return
	}
	for i := range dec {
		dec[i] = Undecided
	}
}

// StepDense implements core.DenseAlgorithm. After deciding, the inner
// algorithm keeps participating, exactly like the agent wrapper.
func (d denseDeciding) StepDense(dst, src *core.DenseState, g graph.Graph) {
	d.inner.StepDense(dst, src, g)
	srcDec, dec := decisionPlane(src), decisionPlane(dst)
	if dst.Round() != d.DecisionRound {
		copy(dec, srcDec)
		return
	}
	d.inner.OutputsDense(dst, dec)
	// Write-once: an already-set decision is never overwritten.
	for i, v := range srcDec {
		if !math.IsNaN(v) {
			dec[i] = v
		}
	}
}

// denseDecidingBatch extends the dense view with batch stepping for
// batch-capable inner algorithms: the inner planes keep their indices in
// the batch layout (the decision plane is appended last per run), so the
// inner batched stepper runs unchanged and the wrapper replays the
// decision-plane logic of StepDense per run.
type denseDecidingBatch struct {
	denseDeciding
	innerBatch core.BatchStepper
}

// StepDenseBatch implements core.BatchStepper.
func (d denseDecidingBatch) StepDenseBatch(dst, src *core.BatchState, plan *core.StepPlan) {
	// The wrapper's observable outputs override the inner values with
	// taken decisions, so the inner stepper's hull would be discarded
	// anyway — suppress it and leave the runner to scan.
	wantHull := plan.WantHull
	plan.WantHull = false
	d.innerBatch.StepDenseBatch(dst, src, plan)
	plan.WantHull, plan.HullDone = wantHull, false
	last := dst.Planes() - 1
	var view core.DenseState
	for _, r := range plan.Runs {
		srcDec, dec := src.RunPlane(r, last), dst.RunPlane(r, last)
		if dst.Round() != d.DecisionRound {
			copy(dec, srcDec)
			continue
		}
		dst.View(r, &view)
		d.inner.OutputsDense(&view, dec)
		// Write-once: an already-set decision is never overwritten.
		for i, v := range srcDec {
			if !math.IsNaN(v) {
				dec[i] = v
			}
		}
	}
}

// OutputsDense implements core.DenseAlgorithm: the decision once taken,
// the running inner estimate before.
func (d denseDeciding) OutputsDense(st *core.DenseState, out []float64) {
	d.inner.OutputsDense(st, out)
	for i, v := range decisionPlane(st) {
		if !math.IsNaN(v) {
			out[i] = v
		}
	}
}

// AppendDenseFingerprint implements core.DenseFingerprinter, matching the
// decidingAgent encoding byte for byte.
func (d denseDeciding) AppendDenseFingerprint(dst []byte, st *core.DenseState, i int) ([]byte, bool) {
	df, ok := d.inner.(core.DenseFingerprinter)
	if !ok {
		return dst, false
	}
	dst = append(dst, decidingAgentTag)
	dst = core.AppendInt(dst, d.DecisionRound)
	dst = core.AppendFloat(dst, decisionPlane(st)[i])
	return df.AppendDenseFingerprint(dst, st, i)
}

// WriteDense implements core.DenseStateWriter.
func (a *decidingAgent) WriteDense(st *core.DenseState, i int) bool {
	w, ok := a.inner.(core.DenseStateWriter)
	if !ok || !w.WriteDense(st, i) {
		return false
	}
	decisionPlane(st)[i] = a.decision
	return true
}

// ReadDense implements core.DenseStateReader.
func (a *decidingAgent) ReadDense(st *core.DenseState, i int) bool {
	r, ok := a.inner.(core.DenseStateReader)
	if !ok || !r.ReadDense(st, i) {
		return false
	}
	a.decision = decisionPlane(st)[i]
	return true
}
