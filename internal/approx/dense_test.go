package approx_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

// TestDecidingDenseMatchesAgents pins the dense deciding wrapper against
// the agent wrapper: trace outputs, decision values, and the full
// approximate-consensus check must agree bit for bit, including across
// the decision round.
func TestDecidingDenseMatchesAgents(t *testing.T) {
	inputs := []float64{0, 1, 0.5, 0.25, 0.75}
	m := model.DeafModel(graph.Complete(5))
	for _, decideAt := range []int{0, 1, 3, 10} {
		alg := approx.DecidingAlgorithm{Inner: algorithms.Midpoint{}, DecisionRound: decideAt}
		if _, ok := core.AsDense(alg); !ok {
			t.Fatal("deciding wrapper around a dense algorithm is not dense-capable")
		}
		mk := func() core.PatternSource {
			return core.RandomFromModel{Model: m, Rng: rand.New(rand.NewSource(3))}
		}
		agents := core.RunBackend(alg, inputs, mk(), 15, core.BackendAgents)
		dense := core.RunBackend(alg, inputs, mk(), 15, core.BackendDense)
		for round := range agents.Outputs {
			for i := range agents.Outputs[round] {
				a, d := agents.Outputs[round][i], dense.Outputs[round][i]
				if math.Float64bits(a) != math.Float64bits(d) {
					t.Fatalf("decideAt %d round %d agent %d: %v != %v", decideAt, round, i, a, d)
				}
			}
		}
		// The materialized final configuration must carry the decision state:
		// Decisions and CheckRun see no difference between the backends.
		av, aok := approx.Decisions(agents.Final)
		dv, dok := approx.Decisions(dense.Final)
		for i := range av {
			if aok[i] != dok[i] || math.Float64bits(av[i]) != math.Float64bits(dv[i]) {
				t.Fatalf("decideAt %d agent %d: decision state differs (%v/%v vs %v/%v)",
					decideAt, i, av[i], aok[i], dv[i], dok[i])
			}
		}
		if errA, errD := approx.CheckRun(agents, 1.0), approx.CheckRun(dense, 1.0); (errA == nil) != (errD == nil) {
			t.Fatalf("decideAt %d: CheckRun verdicts differ: %v vs %v", decideAt, errA, errD)
		}
	}
}

// TestDecidingDenseUnavailableForOpaqueInner checks the capability
// plumbing: wrapping a non-dense inner algorithm yields no dense view and
// Run silently stays on the Agent path.
func TestDecidingDenseUnavailableForOpaqueInner(t *testing.T) {
	opaque := opaqueAlgorithm{algorithms.Midpoint{}}
	alg := approx.DecidingAlgorithm{Inner: opaque, DecisionRound: 2}
	if _, ok := core.AsDense(alg); ok {
		t.Fatal("deciding wrapper claims dense support for an opaque inner algorithm")
	}
	tr := core.RunBackend(alg, []float64{0, 1}, core.Fixed{G: graph.Complete(2)}, 4, core.BackendDense)
	if err := approx.CheckRun(tr, 1.0); err != nil {
		t.Fatalf("agent-path fallback broke the deciding run: %v", err)
	}
}

// opaqueAlgorithm hides the dense capability of the algorithm it wraps
// (no embedding: promoted methods would re-expose the capability).
type opaqueAlgorithm struct{ inner algorithms.Midpoint }

func (opaqueAlgorithm) Name() string { return "opaque-midpoint" }

func (o opaqueAlgorithm) Convex() bool { return o.inner.Convex() }

func (o opaqueAlgorithm) NewAgent(id, n int, initial float64) core.Agent {
	return o.inner.NewAgent(id, n, initial)
}
