package approx

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// This file implements the paper's formal approximate-consensus interface
// (Section 9): each agent carries a write-once decision variable d_i,
// initialized to ⊥, set at most once ("agent i decides v"). Deciding is
// wrapped around an arbitrary asymptotic consensus algorithm: run it for a
// fixed number of rounds, then decide the current output — the reduction
// used in both directions by Theorems 8-11.

// Undecided is the ⊥ value of the decision variable.
var Undecided = math.NaN()

// DecidingAlgorithm wraps an asymptotic consensus algorithm with the
// write-once decision semantics: agents decide their current output at
// the end of round DecisionRound (0 decides immediately on the input).
// It is itself a valid core.Algorithm — after deciding, agents keep
// participating (forwarding their frozen value), which keeps the wrapped
// executions well-formed.
type DecidingAlgorithm struct {
	Inner core.Algorithm
	// DecisionRound is the round after which agents decide.
	DecisionRound int
}

// Name implements core.Algorithm.
func (d DecidingAlgorithm) Name() string {
	return fmt.Sprintf("deciding(%s,T=%d)", d.Inner.Name(), d.DecisionRound)
}

// Convex implements core.Algorithm: freezing the output at a reachable
// value preserves the convex combination property.
func (d DecidingAlgorithm) Convex() bool { return d.Inner.Convex() }

// NewAgent implements core.Algorithm.
func (d DecidingAlgorithm) NewAgent(id, n int, initial float64) core.Agent {
	if d.DecisionRound < 0 {
		panic(fmt.Sprintf("approx: negative decision round %d", d.DecisionRound))
	}
	a := &decidingAgent{inner: d.Inner.NewAgent(id, n, initial), decideAt: d.DecisionRound, decision: Undecided}
	if d.DecisionRound == 0 {
		a.decision = a.inner.Output()
	}
	return a
}

type decidingAgent struct {
	inner    core.Agent
	decideAt int
	decision float64
}

func (a *decidingAgent) Broadcast(round int) core.Message { return a.inner.Broadcast(round) }

func (a *decidingAgent) Deliver(round int, msgs []core.Message) {
	a.inner.Deliver(round, msgs)
	if round == a.decideAt && !a.Decided() {
		a.decision = a.inner.Output()
	}
}

// Output returns the decision once taken, the running estimate before.
func (a *decidingAgent) Output() float64 {
	if a.Decided() {
		return a.decision
	}
	return a.inner.Output()
}

func (a *decidingAgent) Clone() core.Agent {
	return &decidingAgent{inner: a.inner.Clone(), decideAt: a.decideAt, decision: a.decision}
}

// decidingAgentTag namespaces decidingAgent fingerprints; it is distinct
// from the tag bytes used by internal/algorithms because the wrapped
// agent's own tagged fingerprint follows.
const decidingAgentTag = 0x40

// AppendFingerprint implements core.Fingerprinter. It reports ok only
// when the wrapped agent is fingerprintable itself; configurations of
// non-fingerprintable wrappers simply skip memoization.
func (a *decidingAgent) AppendFingerprint(dst []byte) ([]byte, bool) {
	f, ok := a.inner.(core.Fingerprinter)
	if !ok {
		return dst, false
	}
	dst = append(dst, decidingAgentTag)
	dst = core.AppendInt(dst, a.decideAt)
	dst = core.AppendFloat(dst, a.decision)
	return f.AppendFingerprint(dst)
}

// CopyStateFrom implements core.StateCopier.
func (a *decidingAgent) CopyStateFrom(src core.Agent) bool {
	s, ok := src.(*decidingAgent)
	if !ok {
		return false
	}
	sc, ok := a.inner.(core.StateCopier)
	if !ok || !sc.CopyStateFrom(s.inner) {
		a.inner = s.inner.Clone()
	}
	a.decideAt = s.decideAt
	a.decision = s.decision
	return true
}

// Decided reports whether the write-once decision variable has been set.
func (a *decidingAgent) Decided() bool { return !math.IsNaN(a.decision) }

// Decision returns the decision value; it panics if called before the
// agent decided (reading ⊥ as a value is a protocol error).
func (a *decidingAgent) Decision() float64 {
	if !a.Decided() {
		panic("approx: Decision read before deciding")
	}
	return a.decision
}

// Decisions extracts the decision state of every agent in a configuration
// of a DecidingAlgorithm: values[i] is the decision of agent i and ok[i]
// reports whether it has decided. It panics if the configuration does not
// hold deciding agents.
func Decisions(c *core.Config) (values []float64, ok []bool) {
	n := c.N()
	values = make([]float64, n)
	ok = make([]bool, n)
	for i := 0; i < n; i++ {
		a, is := c.AgentAt(i).(*decidingAgent)
		if !is {
			panic("approx: Decisions on a non-deciding configuration")
		}
		ok[i] = a.Decided()
		if ok[i] {
			values[i] = a.Decision()
		} else {
			values[i] = Undecided
		}
	}
	return values, ok
}

// CheckRun verifies the three approximate-consensus conditions of the
// paper on a deciding run: Termination (everyone decided), ε-Agreement,
// and Validity w.r.t. the inputs. It also re-runs the trace's round
// structure to confirm irrevocability: once decided, an agent's output
// never changes again.
func CheckRun(tr *core.Trace, eps float64) error {
	final := tr.Final
	values, ok := Decisions(final)
	for i, decided := range ok {
		if !decided {
			return fmt.Errorf("approx: agent %d never decided (Termination violated)", i)
		}
		_ = values[i]
	}
	if spread := core.Diameter(values); spread > eps*(1+1e-9) {
		return fmt.Errorf("approx: decision spread %v exceeds eps %v (ε-Agreement violated)", spread, eps)
	}
	lo, hi := core.Hull(tr.Inputs)
	for i, v := range values {
		if v < lo-1e-9 || v > hi+1e-9 {
			return fmt.Errorf("approx: agent %d decided %v outside initial hull [%v,%v] (Validity violated)", i, v, lo, hi)
		}
	}
	// Irrevocability: after the decision round, recorded outputs are
	// constant.
	for i := range values {
		var frozen *float64
		for t, ys := range tr.Outputs {
			if frozen == nil {
				if t >= decisionRoundOf(final) {
					v := ys[i]
					frozen = &v
				}
				continue
			}
			if ys[i] != *frozen {
				return fmt.Errorf("approx: agent %d output changed after deciding (irrevocability violated)", i)
			}
		}
	}
	return nil
}

func decisionRoundOf(c *core.Config) int {
	a, ok := c.AgentAt(0).(*decidingAgent)
	if !ok {
		panic("approx: non-deciding configuration")
	}
	return a.decideAt
}
