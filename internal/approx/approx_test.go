package approx_test

import (
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

func TestDecisionRounds(t *testing.T) {
	cases := []struct {
		contraction, delta, eps float64
		want                    int
	}{
		{1.0 / 3.0, 1, 1.0 / 3.0, 1},
		{1.0 / 3.0, 1, 0.34, 1},
		{1.0 / 3.0, 1, 0.1, 3}, // 3^-2 = 1/9 > 0.1 -> need 3
		{0.5, 1, 0.5, 1},
		{0.5, 1, 1.0 / 1024, 10},
		{0.5, 8, 1, 3},
		{0.5, 1, 2, 0}, // eps >= delta: decide immediately
	}
	for _, tc := range cases {
		if got := approx.DecisionRounds(tc.contraction, tc.delta, tc.eps); got != tc.want {
			t.Errorf("DecisionRounds(%v, %v, %v) = %d, want %d",
				tc.contraction, tc.delta, tc.eps, got, tc.want)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad contraction accepted")
			}
		}()
		approx.DecisionRounds(1.5, 1, 0.1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad eps accepted")
			}
		}()
		approx.DecisionRounds(0.5, 1, 0)
	}()
}

func TestLowerBoundFormulas(t *testing.T) {
	if got := approx.Theorem8LowerBound(1, 1.0/27); math.Abs(got-3) > 1e-12 {
		t.Errorf("Theorem8(1, 3^-3) = %v, want 3", got)
	}
	if got := approx.Theorem9LowerBound(1, 1.0/32); math.Abs(got-5) > 1e-12 {
		t.Errorf("Theorem9(1, 2^-5) = %v, want 5", got)
	}
	if got := approx.Theorem10LowerBound(6, 1, 1.0/8); math.Abs(got-12) > 1e-12 {
		t.Errorf("Theorem10(n=6, 1, 2^-3) = %v, want (6-2)*3 = 12", got)
	}
	if got := approx.Theorem11LowerBound(2, 2, 1, 1.0/18); math.Abs(got-2) > 1e-12 {
		t.Errorf("Theorem11(D=2, n=2, 1, 1/18) = %v, want 2 (log_3 9)", got)
	}
	if got := approx.Theorem11LowerBound(2, 4, 1, 1); got != 0 {
		t.Errorf("Theorem11 with eps*n >= delta = %v, want 0", got)
	}
}

// TestTwoThirdsDeciderMatchesTheorem8 checks the tight pair for n = 2: the
// two-thirds decider achieves ε-agreement against the *worst* constant
// pattern in exactly ⌈log3(Δ/ε)⌉ rounds, and its decision round never
// exceeds the Theorem 8 lower bound by more than the one-round ceiling.
func TestTwoThirdsDeciderMatchesTheorem8(t *testing.T) {
	d := approx.Decider{Alg: algorithms.TwoThirds{}, Contraction: 1.0 / 3.0}
	for _, eps := range []float64{0.3, 0.1, 1e-2, 1e-4, 1e-6} {
		res := d.Run([]float64{0, 1}, core.Fixed{G: graph.H(1)}, 1, eps)
		if !res.EpsAgreement {
			t.Errorf("eps=%v: decider failed ε-agreement (spread %v)", eps, res.Spread)
		}
		if !res.Validity {
			t.Errorf("eps=%v: decider violated validity", eps)
		}
		lb := approx.Theorem8LowerBound(1, eps)
		if float64(res.DecisionRound) < lb-1e-9 {
			t.Errorf("eps=%v: decided in %d rounds, below the Theorem 8 bound %v — impossible",
				eps, res.DecisionRound, lb)
		}
		if float64(res.DecisionRound) > lb+1 {
			t.Errorf("eps=%v: decided in %d rounds, more than one round above optimum %v",
				eps, res.DecisionRound, lb)
		}
		// Tightness: one round earlier the worst pattern still violates ε.
		if res.DecisionRound > 0 {
			tr := core.Run(algorithms.TwoThirds{}, []float64{0, 1}, core.Fixed{G: graph.H(1)}, res.DecisionRound-1)
			if tr.DiameterAt(res.DecisionRound-1) <= eps {
				t.Errorf("eps=%v: ε-agreement already holds one round early — decision time not tight", eps)
			}
		}
	}
}

// TestMidpointDeciderMatchesTheorem9 checks the non-split pair: the
// midpoint decider needs exactly ⌈log2(Δ/ε)⌉ rounds against the worst
// deaf(K_n) pattern.
func TestMidpointDeciderMatchesTheorem9(t *testing.T) {
	for _, n := range []int{3, 5} {
		d := approx.Decider{Alg: algorithms.Midpoint{}, Contraction: 0.5}
		inputs := make([]float64, n)
		inputs[0], inputs[1] = 0, 1
		for i := 2; i < n; i++ {
			inputs[i] = 0.5
		}
		worst := core.Fixed{G: graph.Deaf(graph.Complete(n), 0)}
		for _, eps := range []float64{0.3, 1e-3, 1e-6} {
			res := d.Run(inputs, worst, 1, eps)
			if !res.EpsAgreement || !res.Validity {
				t.Errorf("n=%d eps=%v: decider failed (spread %v)", n, eps, res.Spread)
			}
			lb := approx.Theorem9LowerBound(1, eps)
			if float64(res.DecisionRound) < lb-1e-9 {
				t.Errorf("n=%d eps=%v: decision round %d below Theorem 9 bound %v",
					n, eps, res.DecisionRound, lb)
			}
			if float64(res.DecisionRound) > lb+1 {
				t.Errorf("n=%d eps=%v: decision round %d more than a round above optimum %v",
					n, eps, res.DecisionRound, lb)
			}
		}
	}
}

// TestAmortizedDeciderNearTheorem10 checks the rooted pair: the amortized
// midpoint decider needs (n-1)⌈log2(Δ/ε)⌉ rounds, within the (n-1)/(n-2)
// factor of Theorem 10's (n-2)·log2(Δ/ε) bound the paper states.
func TestAmortizedDeciderNearTheorem10(t *testing.T) {
	for _, n := range []int{4, 6} {
		contraction := math.Pow(0.5, 1/float64(n-1))
		d := approx.Decider{Alg: algorithms.AmortizedMidpoint{}, Contraction: contraction}
		inputs := make([]float64, n)
		inputs[0], inputs[1] = 0, 1
		for i := 2; i < n; i++ {
			inputs[i] = 0.5
		}
		for _, eps := range []float64{0.2, 1e-3} {
			res := d.Run(inputs, core.Cycle{Graphs: graph.PsiFamily(n)}, 1, eps)
			if !res.EpsAgreement || !res.Validity {
				t.Errorf("n=%d eps=%v: amortized decider failed (spread %v, round %d)",
					n, eps, res.Spread, res.DecisionRound)
			}
			lb := approx.Theorem10LowerBound(n, 1, eps)
			if float64(res.DecisionRound) < lb-1e-9 {
				t.Errorf("n=%d eps=%v: decision round %d below Theorem 10 bound %v",
					n, eps, res.DecisionRound, lb)
			}
			// Optimality within a multiplicative (n-1)/(n-2) plus one
			// phase-rounding round per the paper.
			slack := (float64(res.DecisionRound) - float64(n-1)) * float64(n-2) / float64(n-1)
			if slack > lb+1e-9 && lb > 0 {
				t.Errorf("n=%d eps=%v: decision round %d not within (n-1)/(n-2) of bound %v",
					n, eps, res.DecisionRound, lb)
			}
		}
	}
}

func TestDeciderPanicsOnUndeclaredDiameter(t *testing.T) {
	d := approx.Decider{Alg: algorithms.Midpoint{}, Contraction: 0.5}
	defer func() {
		if recover() == nil {
			t.Error("initial diameter above delta accepted")
		}
	}()
	d.Run([]float64{0, 2}, core.Fixed{G: graph.H(0)}, 1, 0.1)
}

func TestSweepMonotone(t *testing.T) {
	d := approx.Decider{Alg: algorithms.TwoThirds{}, Contraction: 1.0 / 3.0}
	epss := []float64{0.5, 0.1, 0.01, 1e-3, 1e-4}
	pts := d.Sweep([]float64{0, 1},
		func() core.PatternSource { return core.Fixed{G: graph.H(1)} },
		1, epss,
		func(eps float64) float64 { return approx.Theorem8LowerBound(1, eps) })
	if len(pts) != len(epss) {
		t.Fatalf("sweep returned %d points, want %d", len(pts), len(epss))
	}
	for i, p := range pts {
		if !p.OK {
			t.Errorf("eps=%v: run failed", p.Eps)
		}
		if i > 0 && p.Rounds < pts[i-1].Rounds {
			t.Errorf("rounds not monotone in 1/eps: %v", pts)
		}
		if float64(p.Rounds) < p.LowerBound-1e-9 {
			t.Errorf("eps=%v: rounds %d below lower bound %v", p.Eps, p.Rounds, p.LowerBound)
		}
	}
}

// TestTheorem11Consistency cross-checks Theorem 11 against the computed
// alpha-diameter of the two-agent model: with D = 2 the generic bound
// log_3(Δ/(2ε)) must stay below the specialized Theorem 8 bound
// log_3(Δ/ε).
func TestTheorem11Consistency(t *testing.T) {
	m := model.TwoAgent()
	dAlpha, finite := m.AlphaDiameter()
	if !finite || dAlpha != 2 {
		t.Fatalf("two-agent alpha-diameter = %d (finite=%v), want 2", dAlpha, finite)
	}
	for _, eps := range []float64{1e-2, 1e-4} {
		generic := approx.Theorem11LowerBound(dAlpha, 2, 1, eps)
		special := approx.Theorem8LowerBound(1, eps)
		if generic > special+1e-9 {
			t.Errorf("eps=%v: generic bound %v exceeds specialized bound %v", eps, generic, special)
		}
	}
}
