// Package approx implements the approximate consensus problem of
// Section 9 of Függer, Nowak, Schwarz (PODC 2018): agents must
// irrevocably decide values within ε of each other, inside the convex
// hull of the initial values, knowing an a-priori bound Δ on the initial
// diameter.
//
// The package provides the deciding versions of the paper's asymptotic
// consensus algorithms — run for ⌈log_{1/γ}(Δ/ε)⌉ rounds, then decide the
// current output — together with the decision-time lower-bound formulas of
// Theorems 8-11 they are matched against.
package approx

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// DecisionRounds returns ⌈log_{1/contraction}(Δ/ε)⌉, the number of rounds
// after which an algorithm with the given per-round contraction factor has
// certainly shrunk an initial diameter of at most delta below eps. It
// panics for nonsensical parameters.
func DecisionRounds(contraction, delta, eps float64) int {
	if contraction <= 0 || contraction >= 1 {
		panic(fmt.Sprintf("approx: contraction %v outside (0,1)", contraction))
	}
	if delta <= 0 || eps <= 0 {
		panic(fmt.Sprintf("approx: delta %v and eps %v must be positive", delta, eps))
	}
	if eps >= delta {
		return 0
	}
	// ⌈log(Δ/ε) / log(1/γ)⌉ with care at exact integer boundaries.
	r := math.Log(delta/eps) / math.Log(1/contraction)
	k := int(math.Ceil(r - 1e-12))
	if k < 0 {
		k = 0
	}
	return k
}

// Theorem8LowerBound returns the n = 2 decision-time lower bound
// log_3(Δ/ε) for models containing {H0, H1, H2}.
func Theorem8LowerBound(delta, eps float64) float64 {
	return math.Log(delta/eps) / math.Log(3)
}

// Theorem9LowerBound returns the n >= 3 decision-time lower bound
// log_2(Δ/ε) for models containing deaf(G).
func Theorem9LowerBound(delta, eps float64) float64 {
	return math.Log2(delta / eps)
}

// Theorem10LowerBound returns the rooted-model decision-time lower bound
// (n-2)·log_2(Δ/ε) for models containing the Ψ graphs.
func Theorem10LowerBound(n int, delta, eps float64) float64 {
	return float64(n-2) * math.Log2(delta/eps)
}

// Theorem11LowerBound returns the generic decision-time lower bound
// log_{D+1}(Δ/(εn)) for models with alpha-diameter D in which exact
// consensus is not solvable.
func Theorem11LowerBound(d int, n int, delta, eps float64) float64 {
	arg := delta / (eps * float64(n))
	if arg <= 1 {
		return 0
	}
	return math.Log(arg) / math.Log(float64(d+1))
}

// Result reports one approximate-consensus run.
type Result struct {
	// DecisionRound is the round at which all agents decided.
	DecisionRound int
	// Decisions holds the decided values.
	Decisions []float64
	// Spread is the diameter of the decisions.
	Spread float64
	// EpsAgreement reports whether Spread <= eps (+ floating-point slack).
	EpsAgreement bool
	// Validity reports whether all decisions lie in the initial hull.
	Validity bool
}

// Decider runs an asymptotic consensus algorithm for a fixed number of
// rounds and decides the then-current outputs — the reduction the paper
// uses in both directions between asymptotic and approximate consensus.
type Decider struct {
	// Alg is the underlying asymptotic consensus algorithm.
	Alg core.Algorithm
	// Contraction is the per-round contraction factor the algorithm
	// guarantees in the target model (1/3 for two-thirds in {H_k}; 1/2 for
	// midpoint in non-split models; (1/2)^(1/(n-1)) for the amortized
	// midpoint in rooted models).
	Contraction float64
}

// Rounds returns the decision round for the given Δ and ε.
func (d Decider) Rounds(delta, eps float64) int {
	return DecisionRounds(d.Contraction, delta, eps)
}

// Run executes the decider on the given inputs against the pattern source
// and returns the outcome. delta must upper-bound the initial diameter,
// matching the problem statement where agents receive Δ as input.
func (d Decider) Run(inputs []float64, src core.PatternSource, delta, eps float64) Result {
	if got := core.Diameter(inputs); got > delta {
		panic(fmt.Sprintf("approx: initial diameter %v exceeds declared delta %v", got, delta))
	}
	rounds := d.Rounds(delta, eps)
	tr := core.Run(d.Alg, inputs, src, rounds)
	decisions := tr.Outputs[rounds]
	spread := core.Diameter(decisions)
	lo, hi := core.Hull(inputs)
	validity := true
	for _, v := range decisions {
		if v < lo-1e-9 || v > hi+1e-9 {
			validity = false
		}
	}
	return Result{
		DecisionRound: rounds,
		Decisions:     decisions,
		Spread:        spread,
		EpsAgreement:  spread <= eps*(1+1e-9),
		Validity:      validity,
	}
}

// SweepPoint is one (ε, rounds) sample of a decision-time sweep.
type SweepPoint struct {
	Eps        float64
	Rounds     int
	LowerBound float64
	Spread     float64
	OK         bool
}

// Sweep runs the decider over a list of tolerances against the pattern
// produced by newSrc (a fresh source per run, so adversaries reset).
func (d Decider) Sweep(inputs []float64, newSrc func() core.PatternSource, delta float64, epss []float64, lower func(eps float64) float64) []SweepPoint {
	out := make([]SweepPoint, 0, len(epss))
	for _, eps := range epss {
		res := d.Run(inputs, newSrc(), delta, eps)
		out = append(out, SweepPoint{
			Eps:        eps,
			Rounds:     res.DecisionRound,
			LowerBound: lower(eps),
			Spread:     res.Spread,
			OK:         res.EpsAgreement && res.Validity,
		})
	}
	return out
}
