package approx_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/graph"
)

// clusterGraph returns the n-node graph where agent j listens to itself
// and agent (j+k) mod n.
func clusterGraph(t *testing.T, n, k int) graph.Graph {
	t.Helper()
	masks := make([]uint64, n)
	for j := 0; j < n; j++ {
		masks[j] = 1<<uint(j) | 1<<uint((j+k)%n)
	}
	g, err := graph.FromInMasks(n, masks)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDecidingBatchClusteredParity steps a deciding batch through an
// adversarial clustered workload — per-run graph sequences that blend
// shared and distinct graphs under a plan cache too small to hold them,
// with decided runs compacted away mid-run — and asserts per-round
// parity against both single-run backends: bit-identical outputs and
// configuration fingerprints every round, for every surviving run.
func TestDecidingBatchClusteredParity(t *testing.T) {
	const n, B, rounds, decideAt, compactAt = 5, 6, 14, 4, 7
	alg := approx.DecidingAlgorithm{Inner: algorithms.Midpoint{}, DecisionRound: decideAt}
	d, ok := core.AsDense(alg)
	if !ok {
		t.Fatal("deciding midpoint is not dense-capable")
	}

	inputs := make([][]float64, B)
	for i := range inputs {
		in := make([]float64, n)
		for j := range in {
			in[j] = float64((i*29+j*13)%17) / 17
		}
		inputs[i] = in
	}
	// Round r graph for run i: runs with even i share one graph per
	// round, odd runs play their own — each round mixes one multi-run
	// cluster with singleton clusters, and the graph stream never
	// repeats, so the tiny cap below keeps evicting and recycling.
	graphAt := func(i, round int) graph.Graph {
		if i%2 == 0 {
			return clusterGraph(t, n, round%n)
		}
		return clusterGraph(t, n, (round+i)%n)
	}

	br := core.NewBatchRunner(d, inputs)
	br.SetPlanCacheCap(2)

	// References: a dense runner and an agent configuration per run.
	denseRuns := make([]*core.DenseRunner, B)
	agentRuns := make([]*core.Config, B)
	for i := 0; i < B; i++ {
		denseRuns[i] = core.NewDenseRunner(d, inputs[i])
		agentRuns[i] = core.NewConfig(alg, inputs[i])
	}

	checkRun := func(round, batchIdx, runID int) {
		t.Helper()
		out := make([]float64, n)
		br.Outputs(batchIdx, out)
		want := denseRuns[runID].Outputs()
		for j := range want {
			if math.Float64bits(out[j]) != math.Float64bits(want[j]) {
				t.Fatalf("round %d run %d agent %d: batch %v != dense %v", round, runID, j, out[j], want[j])
			}
		}
		bfp, bok := br.AppendRunFingerprint(nil, batchIdx)
		dfp, dok := core.AppendDenseFingerprint(d, denseRuns[runID].State(), nil)
		afp, aok := agentRuns[runID].AppendFingerprint(nil)
		if !bok || !dok || !aok {
			t.Fatalf("round %d run %d: fingerprint unavailable (batch %v dense %v agents %v)", round, runID, bok, dok, aok)
		}
		if !bytes.Equal(bfp, dfp) || !bytes.Equal(bfp, afp) {
			t.Fatalf("round %d run %d: fingerprints diverge across backends", round, runID)
		}
	}

	// origin[b] maps the batch position to the original run identity
	// across compaction.
	gs := make([]graph.Graph, 0, B)
	for round := 1; round <= rounds; round++ {
		gs = gs[:0]
		for b := 0; b < br.B(); b++ {
			gs = append(gs, graphAt(br.Origin(b), round))
		}
		br.StepEach(gs)
		for i := 0; i < B; i++ {
			denseRuns[i].Step(graphAt(i, round))
			agentRuns[i] = agentRuns[i].Step(graphAt(i, round))
		}
		for b := 0; b < br.B(); b++ {
			checkRun(round, b, br.Origin(b))
		}
		if round == compactAt {
			// Drop the decided even-index runs, as a deciding sweep
			// would: survivors must keep stepping bit-identically from
			// their compacted positions.
			keep := make([]bool, br.B())
			for b := range keep {
				keep[b] = br.Origin(b)%2 == 1
			}
			if w := br.Compact(keep); w != B/2 {
				t.Fatalf("Compact kept %d runs, want %d", w, B/2)
			}
		}
	}

	if _, misses, evicts, defers, entries := br.PlanCacheStats(); evicts == 0 || entries > 2 || misses+defers < uint64(rounds) {
		t.Fatalf("workload was meant to thrash the 2-plan cache (misses=%d evicts=%d defers=%d entries=%d)", misses, evicts, defers, entries)
	}
}
