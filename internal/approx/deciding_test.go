package approx_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/graph"
)

func TestDecidingAgentLifecycle(t *testing.T) {
	alg := approx.DecidingAlgorithm{Inner: algorithms.Midpoint{}, DecisionRound: 2}
	c := core.NewConfig(alg, []float64{0, 1, 0.5})
	_, ok := approx.Decisions(c)
	for i, decided := range ok {
		if decided {
			t.Errorf("agent %d decided before any round", i)
		}
	}
	c = c.Step(graph.Complete(3))
	if _, ok := approx.Decisions(c); ok[0] {
		t.Error("decided before the decision round")
	}
	c = c.Step(graph.Complete(3))
	values, ok2 := approx.Decisions(c)
	for i, decided := range ok2 {
		if !decided {
			t.Errorf("agent %d undecided after the decision round", i)
		}
		if values[i] != 0.5 {
			t.Errorf("agent %d decided %v, want 0.5", i, values[i])
		}
	}
}

func TestDecisionIsIrrevocable(t *testing.T) {
	alg := approx.DecidingAlgorithm{Inner: algorithms.Midpoint{}, DecisionRound: 1}
	c := core.NewConfig(alg, []float64{0, 1})
	c = c.Step(graph.H(1)) // agent 1 moves to 0.5 and decides; agent 0 decides 0
	valuesBefore, _ := approx.Decisions(c)
	// Keep running with graphs that would move a non-frozen midpoint agent.
	for i := 0; i < 5; i++ {
		c = c.Step(graph.H(0))
	}
	valuesAfter, _ := approx.Decisions(c)
	for i := range valuesBefore {
		if valuesBefore[i] != valuesAfter[i] {
			t.Errorf("agent %d decision drifted from %v to %v", i, valuesBefore[i], valuesAfter[i])
		}
		if c.Output(i) != valuesAfter[i] {
			t.Errorf("agent %d output %v differs from its decision %v", i, c.Output(i), valuesAfter[i])
		}
	}
}

func TestDecideAtZero(t *testing.T) {
	alg := approx.DecidingAlgorithm{Inner: algorithms.Midpoint{}, DecisionRound: 0}
	c := core.NewConfig(alg, []float64{0.25, 0.75})
	values, ok := approx.Decisions(c)
	if !ok[0] || !ok[1] || values[0] != 0.25 || values[1] != 0.75 {
		t.Errorf("immediate decision wrong: %v %v", values, ok)
	}
}

func TestDecidingAlgorithmMetadata(t *testing.T) {
	alg := approx.DecidingAlgorithm{Inner: algorithms.Midpoint{}, DecisionRound: 3}
	if !strings.Contains(alg.Name(), "midpoint") || !strings.Contains(alg.Name(), "T=3") {
		t.Errorf("Name = %q", alg.Name())
	}
	if !alg.Convex() {
		t.Error("deciding midpoint should stay convex")
	}
	nonconvex := approx.DecidingAlgorithm{Inner: algorithms.NewFlowSum([]int{1, 1}), DecisionRound: 1}
	if nonconvex.Convex() {
		t.Error("deciding flow-sum should stay non-convex")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative decision round accepted")
			}
		}()
		approx.DecidingAlgorithm{Inner: algorithms.Midpoint{}, DecisionRound: -1}.NewAgent(0, 2, 0)
	}()
}

func TestDecisionsPanicsOnWrongConfig(t *testing.T) {
	c := core.NewConfig(algorithms.Midpoint{}, []float64{0, 1})
	defer func() {
		if recover() == nil {
			t.Error("Decisions on plain config did not panic")
		}
	}()
	approx.Decisions(c)
}

func TestCheckRunVerdicts(t *testing.T) {
	// A correct run: midpoint decider on deaf(K3) with enough rounds.
	eps := 1e-3
	rounds := approx.DecisionRounds(0.5, 1, eps)
	alg := approx.DecidingAlgorithm{Inner: algorithms.Midpoint{}, DecisionRound: rounds}
	worst := core.Fixed{G: graph.Deaf(graph.Complete(3), 0)}
	tr := core.Run(alg, []float64{0, 1, 0.5}, worst, rounds)
	if err := approx.CheckRun(tr, eps); err != nil {
		t.Errorf("valid run rejected: %v", err)
	}
	// An under-provisioned run: one round short violates ε-Agreement on
	// the worst pattern.
	short := approx.DecidingAlgorithm{Inner: algorithms.Midpoint{}, DecisionRound: rounds - 1}
	trShort := core.Run(short, []float64{0, 1, 0.5}, worst, rounds-1)
	if err := approx.CheckRun(trShort, eps); err == nil {
		t.Error("ε-violating run accepted")
	} else if !strings.Contains(err.Error(), "Agreement") {
		t.Errorf("wrong verdict: %v", err)
	}
	// A truncated run: agents never reach their decision round.
	trTrunc := core.Run(alg, []float64{0, 1, 0.5}, worst, rounds-1)
	if err := approx.CheckRun(trTrunc, eps); err == nil {
		t.Error("non-terminating run accepted")
	} else if !strings.Contains(err.Error(), "Termination") {
		t.Errorf("wrong verdict: %v", err)
	}
}

func TestUndecidedSentinel(t *testing.T) {
	if !math.IsNaN(approx.Undecided) {
		t.Error("Undecided should be NaN (⊥)")
	}
}

// TestDecidingUnderAdversarialPerturbation checks decision stability: the
// same decider run against every length-3 pattern prefix over {H_k}
// always terminates, agrees within eps, and stays valid.
func TestDecidingUnderAdversarialPerturbation(t *testing.T) {
	eps := 0.05
	rounds := approx.DecisionRounds(1.0/3.0, 1, eps)
	alg := approx.DecidingAlgorithm{Inner: algorithms.TwoThirds{}, DecisionRound: rounds}
	var walk func(prefix []graph.Graph, depth int)
	walk = func(prefix []graph.Graph, depth int) {
		if depth == 0 {
			src := core.Sequence{Graphs: append(append([]graph.Graph{}, prefix...), graph.H(1))}
			tr := core.Run(alg, []float64{0, 1}, src, rounds)
			if err := approx.CheckRun(tr, eps); err != nil {
				t.Fatalf("prefix %v: %v", prefix, err)
			}
			return
		}
		for k := 0; k < 3; k++ {
			walk(append(prefix, graph.H(k)), depth-1)
		}
	}
	walk(nil, 3)
}
