package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus writes every registered series in the Prometheus
// text exposition format (version 0.0.4), sorted by name so output is
// stable across scrapes. Series whose name carries an inline label set
// (`name{label="v"}`) are grouped under one HELP/TYPE header per base
// name. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	snap := make(map[string]*metric, len(r.metrics))
	for name, m := range r.metrics {
		snap[name] = m
	}
	r.mu.Unlock()
	// Sort by base name first so labeled variants of one series stay
	// adjacent and share a single header block.
	sort.Slice(names, func(i, j int) bool {
		bi, _ := splitName(names[i])
		bj, _ := splitName(names[j])
		if bi != bj {
			return bi < bj
		}
		return names[i] < names[j]
	})

	lastBase := ""
	for _, name := range names {
		m := snap[name]
		base, labels := splitName(name)
		if base != lastBase {
			if err := writeHeader(w, base, m); err != nil {
				return err
			}
			lastBase = base
		}
		if err := writeSeries(w, base, labels, m); err != nil {
			return err
		}
	}
	return nil
}

// WriteAllPrometheus writes several registries' series to one stream —
// the /metrics handlers use it to combine an instance registry with
// the process-wide Default() registry. Nil registries are skipped.
func WriteAllPrometheus(w io.Writer, regs ...*Registry) error {
	for _, r := range regs {
		if err := r.WritePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

// splitName separates `base{label="v"}` into base and the inner label
// string (`label="v"`, empty when the name carries no labels).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

func writeHeader(w io.Writer, base string, m *metric) error {
	typ := "counter"
	switch m.kind {
	case kindGauge, kindGaugeFunc:
		typ = "gauge"
	case kindHistogram:
		typ = "histogram"
	}
	if m.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, m.help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
	return err
}

func writeSeries(w io.Writer, base, labels string, m *metric) error {
	braced := ""
	if labels != "" {
		braced = "{" + labels + "}"
	}
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", base, braced, m.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", base, braced, formatFloat(m.gauge.Value()))
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", base, braced, formatFloat(m.gaugeFn()))
		return err
	case kindHistogram:
		return writeHistogram(w, base, labels, m.histogram)
	}
	return nil
}

func writeHistogram(w io.Writer, base, labels string, h *Histogram) error {
	counts := h.BucketCounts()
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += counts[i]
		le := formatFloat(bound)
		if err := writeBucket(w, base, labels, le, cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if err := writeBucket(w, base, labels, "+Inf", cum); err != nil {
		return err
	}
	braced := ""
	if labels != "" {
		braced = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, braced, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, braced, h.Count())
	return err
}

func writeBucket(w io.Writer, base, labels, le string, cum uint64) error {
	all := `le="` + le + `"`
	if labels != "" {
		all = labels + "," + all
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, all, cum)
	return err
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest round-trip form, with NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}
