package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsRecordNothing(t *testing.T) {
	// The disabled registry hands out nil instruments; every method
	// must be a safe no-op and every read must return zero.
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", DurationBuckets())
	r.GaugeFunc("x_fn", "", func() float64 { return 42 })
	c.Add(3)
	c.Inc()
	g.Set(1.5)
	g.Add(2)
	h.Observe(0.01)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments recorded: c=%d g=%v h=%d/%v",
			c.Value(), g.Value(), h.Count(), h.Sum())
	}
	if r.CounterValue("x_total") != 0 || r.GaugeValue("x_fn") != 0 {
		t.Fatal("nil registry reads nonzero")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v out=%q", err, sb.String())
	}
}

func TestRegistrationIdempotentFirstWins(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "requests")
	b := r.Counter("reqs_total", "ignored second help")
	if a != b {
		t.Fatal("same name did not return the same counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("shared counter value = %d, want 2", b.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind re-registration did not panic")
		}
	}()
	r.Gauge("reqs_total", "")
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.1, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	want := []uint64{2, 1, 1} // <=0.1: {0.05, 0.1}; <=1: {0.5}; +Inf: {2}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_sum 2.65",
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestLabeledSeriesShareOneHeader(t *testing.T) {
	r := NewRegistry()
	r.Counter(`req_total{endpoint="run"}`, "requests").Add(1)
	r.Counter(`req_total{endpoint="sweep"}`, "requests").Add(2)
	r.Gauge("depth", "queue depth").Set(3)
	r.GaugeFunc("rate", "hit rate", func() float64 { return 0.5 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE req_total counter"); n != 1 {
		t.Fatalf("want exactly one req_total header, got %d:\n%s", n, out)
	}
	for _, line := range []string{
		`req_total{endpoint="run"} 1`,
		`req_total{endpoint="sweep"} 2`,
		"depth 3",
		"rate 0.5",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
	// Stable output across scrapes.
	var sb2 strings.Builder
	r.WritePrometheus(&sb2)
	if sb2.String() != out {
		t.Fatal("exposition not stable across scrapes")
	}
}

func TestConcurrentRecording(t *testing.T) {
	// -race gate: counters, gauges, and histograms must tolerate
	// concurrent writers and a concurrent scraper.
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", RatioBuckets())
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%21) * 0.05)
			}
		}(w)
	}
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		sb.Reset()
		r.WritePrometheus(&sb)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

func TestTracerRingAndJSON(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Begin("sweep", 0, Attr{Key: "specs", Value: "6"})
	kids := make([]SpanID, 3)
	for i := range kids {
		kids[i] = tr.Begin("shard", root)
	}
	for _, id := range kids {
		tr.End(id)
	}
	tr.Annotate(kids[0], Attr{Key: "worker", Value: "http://w1"})
	tr.End(root)

	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(spans))
	}
	for _, sp := range spans[1:] {
		if sp.Parent != root || sp.Name != "shard" {
			t.Fatalf("child span %+v not linked to root %d", sp, root)
		}
		if sp.EndUnix == 0 || sp.EndUnix < sp.StartUnix {
			t.Fatalf("span %d not properly ended: %+v", sp.ID, sp)
		}
	}
	// Overflow: two more spans evict the two oldest; ending an evicted
	// span is a no-op, not a corruption.
	a := tr.Begin("late", 0) // id 5, evicts root (id 1)
	tr.Begin("late", 0)      // id 6, evicts the first shard (id 2)
	tr.End(root)             // evicted: silent no-op
	tr.End(a)
	spans = tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("post-overflow snapshot len = %d, want 4", len(spans))
	}
	if spans[0].ID != 3 || spans[3].ID != 6 {
		t.Fatalf("ring order wrong: ids %d..%d, want 3..6", spans[0].ID, spans[3].ID)
	}

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{`"spans"`, `"name":"shard"`, `"name":"late"`} {
		if !strings.Contains(out, frag) {
			t.Fatalf("JSON export missing %s:\n%s", frag, out)
		}
	}

	var nilT *Tracer
	if id := nilT.Begin("x", 0); id != 0 {
		t.Fatal("nil tracer handed out a span id")
	}
	nilT.End(1)
	if s := nilT.Snapshot(); s != nil {
		t.Fatal("nil tracer snapshot non-nil")
	}
}
