// Package obs is the repo's observability core: a dependency-free
// metrics registry (atomic counters, gauges, fixed-bucket histograms)
// with Prometheus text exposition, plus a ring-buffered in-process span
// tracer (trace.go).
//
// The design contract is "allocation-free on the hot path": every
// instrument is a concrete struct whose methods are no-ops on a nil
// receiver, so callers hold plain pointers and never pay an interface
// dispatch or a nil-check branch beyond the one inlined into the
// method. Disabling observability is therefore free — a nil *Registry
// hands out nil instruments and the recording calls compile down to a
// predicted-not-taken branch.
//
// Two registries coexist by convention:
//
//   - Default() is the process-wide registry backing hot-path series
//     (kernel, sweep, valency, convergence). REPRO_OBS=off turns it
//     into nil, making every Default-backed instrument a no-op.
//   - Per-instance registries (one per Server / Coordinator / Worker)
//     back request counters and status endpoints. They are always on:
//     /api/v1/status reads them, so they must record regardless of
//     REPRO_OBS.
package obs

import (
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; a nil *Counter records nothing.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. The zero value is ready
// to use; a nil *Gauge records nothing.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value; 0 on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative-export histogram. Buckets are
// the sorted upper bounds passed at registration; an implicit +Inf
// bucket catches the tail. Observe is lock-free: one binary search plus
// three atomic adds. A nil *Histogram records nothing.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; [i] counts v <= bounds[i], last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values; 0 on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the bucket upper bounds (excluding +Inf); nil on a
// nil receiver. The returned slice is shared — do not mutate.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns a snapshot of the per-bucket counts, one per
// bound plus a final +Inf bucket; nil on a nil receiver. The snapshot
// is not atomic across buckets.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// DurationBuckets is the default latency bucket ladder, in seconds:
// 1µs to 10s, roughly ×3 per step. Wide enough for a 180ns kernel
// round (first bucket) and a multi-second distributed sweep (tail).
func DurationBuckets() []float64 {
	return []float64{
		1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
		1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10,
	}
}

// RatioBuckets is the default bucket ladder for values in [0, 1]
// (contraction rates, hit rates): 0.05-wide linear buckets up to 1.0;
// expansion (> 1.0, a round that grew the diameter) lands in +Inf.
func RatioBuckets() []float64 {
	out := make([]float64, 20)
	for i := range out {
		out[i] = float64(i+1) * 0.05
	}
	out[19] = 1.0 // exact, so rate == 1.0 is "no contraction", not +Inf
	return out
}

// metricKind discriminates the registry's name table.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type metric struct {
	kind      metricKind
	help      string
	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
}

// Registry is a named collection of instruments. Registration is
// idempotent and first-wins: asking for an already-registered name of
// the same kind returns the existing instrument, so independent call
// sites can share a series without coordination. Registering a name
// under a different kind panics — that is a programming error, not a
// runtime condition.
//
// A nil *Registry is the disabled registry: every constructor returns
// nil (a no-op instrument) and exposition writes nothing.
//
// Names follow Prometheus conventions and may carry a fixed label set
// inline: `repro_server_requests_total{endpoint="run"}`. The exporter
// groups such series under one HELP/TYPE header per base name.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter registers (or finds) a counter. Nil registry → nil counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindCounter)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	c := m.counter
	r.mu.Unlock()
	return c
}

// Gauge registers (or finds) a gauge. Nil registry → nil gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindGauge)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	g := m.gauge
	r.mu.Unlock()
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for quantities that already live elsewhere (cache sizes,
// queue depths under someone else's lock). First registration wins;
// fn must be safe to call from any goroutine. No-op on nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	m := r.lookup(name, help, kindGaugeFunc)
	if m.gaugeFn == nil {
		m.gaugeFn = fn
	}
	r.mu.Unlock()
}

// Histogram registers (or finds) a histogram with the given sorted
// bucket upper bounds (+Inf is implicit). Nil registry → nil
// histogram. Bounds are only consulted on first registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindHistogram)
	if m.histogram == nil {
		if !sort.Float64sAreSorted(bounds) {
			r.mu.Unlock()
			panic(fmt.Sprintf("obs: histogram %q bounds not sorted", name))
		}
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.buckets = make([]atomic.Uint64, len(h.bounds)+1)
		m.histogram = h
	}
	h := m.histogram
	r.mu.Unlock()
	return h
}

// lookup finds or creates the named metric entry and returns with
// r.mu HELD; the caller fills the kind-specific slot and unlocks.
func (r *Registry) lookup(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			r.mu.Unlock()
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{kind: kind, help: help}
	r.metrics[name] = m
	return m
}

// CounterValue returns the named counter's value, or 0 if absent.
// Convenience for status endpoints reading back their own registry.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	m := r.metrics[name]
	r.mu.Unlock()
	if m == nil || m.kind != kindCounter {
		return 0
	}
	return m.counter.Value()
}

// GaugeValue returns the named gauge's current value (including
// GaugeFunc gauges, which are evaluated), or 0 if absent.
func (r *Registry) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	m := r.metrics[name]
	r.mu.Unlock()
	if m == nil {
		return 0
	}
	switch m.kind {
	case kindGauge:
		return m.gauge.Value()
	case kindGaugeFunc:
		return m.gaugeFn()
	}
	return 0
}

// defaultRegistry backs the process-wide hot-path series. REPRO_OBS=off
// replaces it with nil at startup, turning every Default-registered
// instrument into a no-op without touching call sites.
var defaultRegistry atomic.Pointer[Registry]

func init() {
	if os.Getenv("REPRO_OBS") != "off" {
		defaultRegistry.Store(NewRegistry())
	}
}

// Default returns the process-wide registry, or nil when REPRO_OBS=off
// (or after SetDefault(nil)).
func Default() *Registry {
	return defaultRegistry.Load()
}

// SetDefault replaces the process-wide registry and returns the
// previous one. Benchmarks and tests use it to toggle hot-path
// instrumentation in-process; packages that cache instruments from
// Default() must re-resolve (e.g. core.SetObsRegistry) after a swap.
func SetDefault(r *Registry) *Registry {
	return defaultRegistry.Swap(r)
}
