package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanID identifies one span within a Tracer. IDs are assigned
// monotonically from 1; 0 means "no span" (no parent, or a Begin on a
// nil tracer).
type SpanID uint64

// Attr is one key=value annotation on a span. Values are strings so
// spans marshal to flat, grep-able JSON; callers strconv numbers.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation. EndUnixNs == 0 means still active.
// Parent links let a consumer reassemble the tree: a distributed sweep
// is one "sweep" span with a "shard" child per dispatched shard.
type Span struct {
	ID        SpanID `json:"id"`
	Parent    SpanID `json:"parent,omitempty"`
	Name      string `json:"name"`
	StartUnix int64  `json:"start_unix_ns"`
	EndUnix   int64  `json:"end_unix_ns,omitempty"`
	Attrs     []Attr `json:"attrs,omitempty"`
}

// Tracer is a fixed-capacity ring of spans: Begin overwrites the
// oldest slot once the ring wraps, so memory is bounded and a
// long-running coordinator keeps the most recent window of work.
// All methods are mutex-guarded — spans mark coarse operations
// (sweeps, shards, requests), never per-fold kernel work, so the lock
// is uncontended in practice. A nil *Tracer records nothing.
type Tracer struct {
	mu   sync.Mutex
	ring []Span
	seq  uint64 // last assigned SpanID; slot of id is (id-1) % cap
}

// NewTracer returns a tracer keeping the most recent capacity spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Span, 0, capacity)}
}

// Begin starts a span and returns its ID. parent is 0 for a root span.
// No-op (returning 0) on a nil tracer.
func (t *Tracer) Begin(name string, parent SpanID, attrs ...Attr) SpanID {
	if t == nil {
		return 0
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	t.seq++
	sp := Span{ID: SpanID(t.seq), Parent: parent, Name: name, StartUnix: now, Attrs: attrs}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[(t.seq-1)%uint64(cap(t.ring))] = sp
	}
	t.mu.Unlock()
	return sp.ID
}

// End closes the span. Ending an already-evicted (ring-overwritten) or
// unknown ID is a silent no-op, as is a nil tracer or id 0.
func (t *Tracer) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	if sp := t.slot(id); sp != nil {
		sp.EndUnix = now
	}
	t.mu.Unlock()
}

// Annotate appends attributes to a live (or finished, not-yet-evicted)
// span — retry counts, the worker that finally served a shard.
func (t *Tracer) Annotate(id SpanID, attrs ...Attr) {
	if t == nil || id == 0 || len(attrs) == 0 {
		return
	}
	t.mu.Lock()
	if sp := t.slot(id); sp != nil {
		sp.Attrs = append(sp.Attrs, attrs...)
	}
	t.mu.Unlock()
}

// slot returns the ring entry for id if it has not been overwritten.
// Caller holds t.mu.
func (t *Tracer) slot(id SpanID) *Span {
	i := (uint64(id) - 1) % uint64(cap(t.ring))
	if i < uint64(len(t.ring)) && t.ring[i].ID == id {
		return &t.ring[i]
	}
	return nil
}

// Snapshot returns the retained spans ordered oldest-first. Nil tracer
// returns nil.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		out = append(out, t.ring...)
	} else {
		// Full ring: oldest entry sits just past the newest write.
		start := t.seq % uint64(cap(t.ring))
		out = append(out, t.ring[start:]...)
		out = append(out, t.ring[:start]...)
	}
	// Clone attrs: a later Annotate must not race a snapshot reader
	// through a shared backing array.
	for i := range out {
		out[i].Attrs = append([]Attr(nil), out[i].Attrs...)
	}
	return out
}

// WriteJSON writes {"spans":[...]} oldest-first. Nil tracer writes an
// empty span list.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Snapshot()
	if spans == nil {
		spans = []Span{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Spans []Span `json:"spans"`
	}{Spans: spans})
}
