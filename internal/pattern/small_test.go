package pattern_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/pattern"
)

func TestFromModelDefaultName(t *testing.T) {
	p := pattern.FromModel{Model: model.TwoAgent()}
	if p.Name() != "model-patterns" {
		t.Errorf("default name = %q", p.Name())
	}
}

func TestSigmaName(t *testing.T) {
	p := pattern.SigmaConcatenations{Agents: 6}
	if p.Name() != "P_seq(n=6)" {
		t.Errorf("Name = %q", p.Name())
	}
}
