package pattern_test

import (
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/pattern"
)

func TestFromModelIsMemoryless(t *testing.T) {
	p := pattern.FromModel{Model: model.TwoAgent(), Label: "two-agent"}
	if p.Name() != "two-agent" || p.N() != 2 {
		t.Fatalf("metadata wrong: %q n=%d", p.Name(), p.N())
	}
	empty := p.Extensions(nil)
	later := p.Extensions([]graph.Graph{graph.H(0), graph.H(2)})
	if len(empty) != 3 || len(later) != 3 {
		t.Fatalf("memoryless property changed its extensions: %d vs %d", len(empty), len(later))
	}
	if !pattern.Member(p, []graph.Graph{graph.H(1), graph.H(1), graph.H(0)}) {
		t.Error("valid prefix rejected")
	}
	if pattern.Member(p, []graph.Graph{graph.New(2)}) {
		t.Error("identity graph accepted by the rooted two-agent property")
	}
}

func TestSigmaConcatenationsStructure(t *testing.T) {
	n := 5
	p := pattern.SigmaConcatenations{Agents: n}
	if p.N() != n {
		t.Fatalf("N = %d", p.N())
	}
	// At a block boundary: three choices.
	if got := p.Extensions(nil); len(got) != 3 {
		t.Fatalf("boundary extensions = %d, want 3", len(got))
	}
	// Inside a block: exactly the block's graph.
	prefix := []graph.Graph{graph.Psi(n, 1)}
	ext := p.Extensions(prefix)
	if len(ext) != 1 || !ext[0].Equal(graph.Psi(n, 1)) {
		t.Fatalf("mid-block extensions = %v", ext)
	}
	// A full block later, choices reopen.
	full := graph.SigmaBlock(n, 1)
	if got := p.Extensions(full); len(got) != 3 {
		t.Fatalf("post-block extensions = %d, want 3", len(got))
	}
	// Membership: legal concatenation accepted, block-switch mid-block
	// rejected.
	legal := append(append([]graph.Graph{}, graph.SigmaBlock(n, 0)...), graph.SigmaBlock(n, 2)...)
	if !pattern.Member(p, legal) {
		t.Error("legal sigma concatenation rejected")
	}
	illegal := []graph.Graph{graph.Psi(n, 0), graph.Psi(n, 1)}
	if pattern.Member(p, illegal) {
		t.Error("mid-block switch accepted")
	}
}

func TestSnapshotStepTracksPrefix(t *testing.T) {
	s := pattern.NewSnapshot(algorithms.Midpoint{}, []float64{0, 1})
	s1 := s.Step(graph.H(1))
	s2 := s1.Step(graph.H(0))
	if s.Round() != 0 || s1.Round() != 1 || s2.Round() != 2 {
		t.Fatalf("rounds: %d %d %d", s.Round(), s1.Round(), s2.Round())
	}
	if !s2.Prefix[0].Equal(graph.H(1)) || !s2.Prefix[1].Equal(graph.H(0)) {
		t.Errorf("prefix wrong: %v", s2.Prefix)
	}
	// Stepping must not mutate the parent snapshot's prefix.
	_ = s1.Step(graph.H(2))
	if len(s1.Prefix) != 1 {
		t.Error("child step mutated parent prefix")
	}
	if s.Config.Round() != 0 {
		t.Error("stepping mutated the origin configuration")
	}
}

// TestLemma14ViaSnapshots restates the Lemma 14 check in the paper's own
// snapshot vocabulary: σ_i.S ~_ℓ σ_j.S for the surviving trio agent ℓ.
func TestLemma14ViaSnapshots(t *testing.T) {
	for _, n := range []int{4, 6} {
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = float64(i)
		}
		s := pattern.NewSnapshot(algorithms.AmortizedMidpoint{}, inputs)
		var ends [3]pattern.Snapshot
		for i := 0; i < 3; i++ {
			ends[i] = s.StepAll(graph.SigmaBlock(n, i))
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				for l := 0; l < 3; l++ {
					if i == j || l == i || l == j {
						continue
					}
					if !ends[i].IndistinguishableFor(l, ends[j]) {
						t.Errorf("n=%d: agent %d distinguishes σ_%d from σ_%d", n, l, i, j)
					}
				}
			}
		}
	}
}

func TestSourceFollowsProperty(t *testing.T) {
	n := 5
	p := pattern.SigmaConcatenations{Agents: n}
	rng := rand.New(rand.NewSource(5))
	src := &pattern.Source{
		Property: p,
		Choice: func(_ int, options []graph.Graph, _ *core.Config) int {
			return rng.Intn(len(options))
		},
	}
	c := core.NewConfig(algorithms.AmortizedMidpoint{}, []float64{0, 1, 0.5, 0.25, 0.75})
	var played []graph.Graph
	for round := 1; round <= 4*(n-2); round++ {
		g := src.Next(round, c)
		played = append(played, g)
		c = c.Step(g)
	}
	if !pattern.Member(p, played) {
		t.Fatalf("source left its property: %v", played)
	}
	// Blocks are homogeneous.
	for b := 0; b < 4; b++ {
		blk := played[b*(n-2) : (b+1)*(n-2)]
		for _, g := range blk[1:] {
			if !g.Equal(blk[0]) {
				t.Fatalf("block %d not homogeneous", b)
			}
		}
	}
	// Out-of-range choice indices clamp to 0 rather than panicking.
	srcBad := &pattern.Source{Property: p, Choice: func(int, []graph.Graph, *core.Config) int { return 99 }}
	if g := srcBad.Next(1, c); g.N() != n {
		t.Error("clamped choice failed")
	}
}

// TestSigmaPatternsAreRootedPatterns checks the observation opening
// Section 6: any concatenation of σ blocks is a communication pattern of
// the rooted network model (every played graph is rooted).
func TestSigmaPatternsAreRootedPatterns(t *testing.T) {
	p := pattern.SigmaConcatenations{Agents: 6}
	src := &pattern.Source{Property: p, Choice: func(r int, options []graph.Graph, _ *core.Config) int {
		return r % len(options)
	}}
	c := core.NewConfig(algorithms.Midpoint{}, make([]float64, 6))
	for round := 1; round <= 20; round++ {
		g := src.Next(round, c)
		if !g.IsRooted() {
			t.Fatalf("round %d: sigma pattern played unrooted graph %v", round, g)
		}
	}
}
