// Package pattern formalizes Section 6.1 of Függer, Nowak, Schwarz
// (PODC 2018): the generalization from network models (per-round graph
// sets) to *properties* — arbitrary sets of communication patterns,
// including safety/liveness-style constraints that couple rounds.
//
// The Theorem 3 lower bound needs this generality: its adversary commits
// to whole σ_i blocks (n-2 copies of Ψ_i), so the allowed continuations
// at a given round depend on the position inside the current block —
// something a memoryless graph set cannot express.
//
// A Property here is an effectively-checkable prefix language: it tells
// which finite graph sequences are prefixes of allowed patterns and which
// graphs may extend a given prefix. Snapshots pair a configuration with
// the prefix that produced it, mirroring the paper's S = (C, π).
package pattern

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Property is a prefix-closed description of a set of communication
// patterns (the paper's P). Implementations must be deterministic.
type Property interface {
	// Name identifies the property.
	Name() string
	// N returns the agent count of its patterns.
	N() int
	// Extensions returns the graphs that may follow the given prefix; the
	// prefix is guaranteed to have been built from prior Extensions calls
	// (or to be empty). An empty result means the prefix is a dead end —
	// valid properties never produce one on reachable prefixes.
	Extensions(prefix []graph.Graph) []graph.Graph
}

// FromModel lifts a network model to the memoryless property containing
// every pattern over the model's graphs.
type FromModel struct {
	Model interface {
		N() int
		Graphs() []graph.Graph
	}
	Label string
}

// Name implements Property.
func (p FromModel) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "model-patterns"
}

// N implements Property.
func (p FromModel) N() int { return p.Model.N() }

// Extensions implements Property.
func (p FromModel) Extensions([]graph.Graph) []graph.Graph { return p.Model.Graphs() }

// SigmaConcatenations is the property P_seq of Section 6.2: all patterns
// arising from concatenations of σ_i blocks, each block being n-2 copies
// of one Ψ_i graph. At a block boundary any of the three blocks may
// start; inside a block the only extension is the block's own Ψ graph.
type SigmaConcatenations struct {
	Agents int
}

// Name implements Property.
func (p SigmaConcatenations) Name() string { return fmt.Sprintf("P_seq(n=%d)", p.Agents) }

// N implements Property.
func (p SigmaConcatenations) N() int { return p.Agents }

// Extensions implements Property.
func (p SigmaConcatenations) Extensions(prefix []graph.Graph) []graph.Graph {
	n := p.Agents
	blockLen := n - 2
	pos := len(prefix) % blockLen
	if pos == 0 {
		return graph.PsiFamily(n)
	}
	// Inside a block: must repeat the block's graph, which is the one the
	// block started with.
	start := prefix[len(prefix)-pos]
	return []graph.Graph{start}
}

// Member reports whether the given finite sequence is a valid prefix of
// the property, by replaying it against Extensions.
func Member(p Property, prefix []graph.Graph) bool {
	for i, g := range prefix {
		ok := false
		for _, e := range p.Extensions(prefix[:i]) {
			if e.Equal(g) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Snapshot is the paper's S = (C, π): a configuration together with the
// finite graph sequence that produced it.
type Snapshot struct {
	Config *Configuration
	Prefix []graph.Graph
}

// Configuration aliases core.Config to keep the package self-describing.
type Configuration = core.Config

// NewSnapshot returns the initial snapshot of alg on the inputs.
func NewSnapshot(alg core.Algorithm, inputs []float64) Snapshot {
	return Snapshot{Config: core.NewConfig(alg, inputs)}
}

// Step returns G.S = (G.C, π·G). The receiver is unchanged.
func (s Snapshot) Step(g graph.Graph) Snapshot {
	prefix := make([]graph.Graph, 0, len(s.Prefix)+1)
	prefix = append(prefix, s.Prefix...)
	prefix = append(prefix, g)
	return Snapshot{Config: s.Config.Step(g), Prefix: prefix}
}

// StepAll folds Step over a sequence (e.g. a σ block).
func (s Snapshot) StepAll(gs []graph.Graph) Snapshot {
	cur := s
	for _, g := range gs {
		cur = cur.Step(g)
	}
	return cur
}

// Round returns the prefix length.
func (s Snapshot) Round() int { return len(s.Prefix) }

// IndistinguishableFor reports whether agent i's observable state (its
// output) coincides in both snapshots — the practical ~_i proxy used by
// the Lemma 14 checks.
func (s Snapshot) IndistinguishableFor(i int, other Snapshot) bool {
	return s.Config.Output(i) == other.Config.Output(i)
}

// Source adapts a Property to a core.PatternSource by following a
// deterministic choice function over the allowed extensions (index into
// Extensions, clamped). Choice nil always picks extension 0.
type Source struct {
	Property Property
	Choice   func(round int, options []graph.Graph, c *core.Config) int

	prefix []graph.Graph
}

// Next implements core.PatternSource.
func (s *Source) Next(round int, c *core.Config) graph.Graph {
	options := s.Property.Extensions(s.prefix)
	if len(options) == 0 {
		panic(fmt.Sprintf("pattern: property %s dead-ends after %d rounds", s.Property.Name(), len(s.prefix)))
	}
	idx := 0
	if s.Choice != nil {
		idx = s.Choice(round, options, c)
		if idx < 0 || idx >= len(options) {
			idx = 0
		}
	}
	g := options[idx]
	s.prefix = append(s.prefix, g)
	return g
}
