// Package graph implements directed communication graphs for round-based
// dynamic-network models in the style of the Heard-Of model (Charron-Bost,
// Schiper 2009), as used by Függer, Nowak, Schwarz, "Tight Bounds for
// Asymptotic and Approximate Consensus" (PODC 2018).
//
// A communication graph on n agents (nodes 0..n-1) has a directed edge
// (i, j) iff agent j receives agent i's message in the given round. Every
// graph carries a mandatory self-loop at each node: an agent always hears
// itself (paper, Section 2).
//
// Graphs are represented by one in-neighbor bit row per node, sliced into
// W = ⌈n/64⌉ machine words, which makes the graph product, root
// computation, and the non-split predicate word-parallel. The number of
// agents is capped at MaxNodes = 1024 (W <= 16). For n <= 64 the row is a
// single word and the classic uint64 mask API (InMask, Roots, ReachMask,
// ...) applies unchanged; for larger n those accessors panic and the
// word-sliced API (InRow, RootsSet, ReachSet, ...) is the one to use.
// Single-word graphs keep dedicated fast paths so the n <= 64 kernels run
// the exact pre-multi-word code.
//
// A Graph value is immutable after construction. Use a Builder, one of the
// named constructors (Complete, Cycle, ...), or the paper-specific families
// (H, Psi, Deaf, SilenceBlock) to create graphs.
package graph

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxNodes is the maximum number of agents supported by the word-sliced
// bitmask representation.
const MaxNodes = 1024

// wordBits is the size of one mask word.
const wordBits = 64

// WordsFor returns W = ⌈n/64⌉, the number of mask words per node row for a
// graph on n nodes.
func WordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// Graph is an immutable directed communication graph with mandatory
// self-loops. The zero value is not a valid graph; use New or a Builder.
type Graph struct {
	n  int
	w  int      // words per row, WordsFor(n)
	in []uint64 // row-major: node j's in-row is in[j*w : (j+1)*w], bit j set
}

// fullMask returns the single-word bitmask with bits 0..n-1 set (n <= 64).
func fullMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// fillFull sets row to the full node set {0..n-1}. len(row) = WordsFor(n).
func fillFull(row []uint64, n int) {
	for wi := range row {
		row[wi] = ^uint64(0)
	}
	if tail := n % wordBits; tail != 0 {
		row[len(row)-1] = fullMask(tail)
	}
}

// checkN panics unless 1 <= n <= MaxNodes. Invalid sizes are programmer
// errors, analogous to a negative slice length.
func checkN(n int) {
	if n < 1 || n > MaxNodes {
		panic(fmt.Sprintf("graph: invalid node count %d (want 1..%d)", n, MaxNodes))
	}
}

// checkNode panics unless 0 <= i < n.
func checkNode(n, i int) {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", i, n))
	}
}

// single panics unless the graph fits one mask word. It guards the legacy
// uint64 accessors, which cannot express nodes >= 64.
func (g Graph) single(op string) {
	if g.w > 1 {
		panic(fmt.Sprintf("graph: %s requires n <= 64, got n=%d; use the word-sliced API", op, g.n))
	}
}

// row returns node j's in-row storage (not a copy).
func (g Graph) row(j int) []uint64 {
	return g.in[j*g.w : (j+1)*g.w : (j+1)*g.w]
}

// selfLoops returns a fresh row-major mask slab for n nodes with exactly
// the self-loop bits set.
func selfLoops(n int) []uint64 {
	w := WordsFor(n)
	in := make([]uint64, n*w)
	for i := 0; i < n; i++ {
		in[i*w+i/wordBits] |= 1 << uint(i%wordBits)
	}
	return in
}

// New returns the identity graph on n nodes: self-loops only. In the
// dynamic-network model this is the round in which nobody hears anybody.
func New(n int) Graph {
	checkN(n)
	return Graph{n: n, w: WordsFor(n), in: selfLoops(n)}
}

// Complete returns the complete communication graph K_n: every agent hears
// every agent.
func Complete(n int) Graph {
	checkN(n)
	w := WordsFor(n)
	in := make([]uint64, n*w)
	for i := 0; i < n; i++ {
		fillFull(in[i*w:(i+1)*w], n)
	}
	return Graph{n: n, w: w, in: in}
}

// Cycle returns the directed cycle 0 -> 1 -> ... -> n-1 -> 0 (plus
// self-loops).
func Cycle(n int) Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Edge(i, (i+1)%n)
	}
	return b.Graph()
}

// PathGraph returns the directed path 0 -> 1 -> ... -> n-1 (plus self-loops).
func PathGraph(n int) Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.Edge(i, i+1)
	}
	return b.Graph()
}

// Star returns the out-star centered at node c: edges c -> j for all j != c
// (plus self-loops). The center is the unique root.
func Star(n, c int) Graph {
	checkNode(n, c)
	b := NewBuilder(n)
	for j := 0; j < n; j++ {
		if j != c {
			b.Edge(c, j)
		}
	}
	return b.Graph()
}

// FromInMasks constructs a graph directly from single-word in-neighbor
// bitmasks (n <= 64; larger graphs use FromInWords). It returns an error if
// a mask references a node >= n or misses the mandatory self-loop.
func FromInMasks(n int, masks []uint64) (Graph, error) {
	checkN(n)
	if n > wordBits {
		return Graph{}, fmt.Errorf("graph: FromInMasks supports n <= 64, got %d; use FromInWords", n)
	}
	if len(masks) != n {
		return Graph{}, fmt.Errorf("graph: got %d masks for %d nodes", len(masks), n)
	}
	all := fullMask(n)
	in := make([]uint64, n)
	for i, m := range masks {
		if m&^all != 0 {
			return Graph{}, fmt.Errorf("graph: mask of node %d references nodes >= %d", i, n)
		}
		if m&(1<<uint(i)) == 0 {
			return Graph{}, fmt.Errorf("graph: node %d is missing its self-loop", i)
		}
		in[i] = m
	}
	return Graph{n: n, w: 1, in: in}, nil
}

// FromInWords constructs a graph from row-major word-sliced in-rows: node
// j's in-neighbors occupy words[j*W : (j+1)*W] with W = WordsFor(n),
// little-endian within the row (bit i of word i/64). It returns an error
// if a row references a node >= n (a set bit above the tail) or misses the
// mandatory self-loop. For n <= 64 this is FromInMasks with W = 1.
func FromInWords(n int, words []uint64) (Graph, error) {
	checkN(n)
	w := WordsFor(n)
	if len(words) != n*w {
		return Graph{}, fmt.Errorf("graph: got %d words for %d nodes x %d words", len(words), n, w)
	}
	tail := n % wordBits
	in := make([]uint64, n*w)
	copy(in, words)
	for i := 0; i < n; i++ {
		row := in[i*w : (i+1)*w]
		if tail != 0 && row[w-1]&^fullMask(tail) != 0 {
			return Graph{}, fmt.Errorf("graph: row of node %d references nodes >= %d", i, n)
		}
		if row[i/wordBits]&(1<<uint(i%wordBits)) == 0 {
			return Graph{}, fmt.Errorf("graph: node %d is missing its self-loop", i)
		}
	}
	return Graph{n: n, w: w, in: in}, nil
}

// FromEdges constructs a graph on n nodes from the given (from, to) edge
// list. Self-loops are added automatically and need not be listed.
func FromEdges(n int, edges ...[2]int) (Graph, error) {
	checkN(n)
	w := WordsFor(n)
	in := selfLoops(n)
	for _, e := range edges {
		from, to := e[0], e[1]
		if from < 0 || from >= n || to < 0 || to >= n {
			return Graph{}, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", from, to, n)
		}
		in[to*w+from/wordBits] |= 1 << uint(from%wordBits)
	}
	return Graph{n: n, w: w, in: in}, nil
}

// MustFromEdges is FromEdges that panics on error; intended for statically
// known edge lists in tests and examples.
func MustFromEdges(n int, edges ...[2]int) Graph {
	g, err := FromEdges(n, edges...)
	if err != nil {
		panic(err)
	}
	return g
}

// Builder incrementally assembles a Graph. The zero Builder is not usable;
// call NewBuilder.
type Builder struct {
	n  int
	w  int
	in []uint64 // row-major, like Graph.in
}

// NewBuilder returns a Builder for a graph on n nodes, pre-populated with
// the mandatory self-loops.
func NewBuilder(n int) *Builder {
	checkN(n)
	return &Builder{n: n, w: WordsFor(n), in: selfLoops(n)}
}

// row returns node i's in-row storage (not a copy).
func (b *Builder) row(i int) []uint64 {
	return b.in[i*b.w : (i+1)*b.w : (i+1)*b.w]
}

// Edge adds the directed edge from -> to and returns the builder for
// chaining.
func (b *Builder) Edge(from, to int) *Builder {
	checkNode(b.n, from)
	checkNode(b.n, to)
	b.in[to*b.w+from/wordBits] |= 1 << uint(from%wordBits)
	return b
}

// InMask sets the whole in-neighbor mask of node i from a single word (the
// self-loop is forced back on) and returns the builder. It panics for
// n > 64; use SetInRow there.
func (b *Builder) InMask(i int, mask uint64) *Builder {
	checkNode(b.n, i)
	if b.w > 1 {
		panic(fmt.Sprintf("graph: Builder.InMask requires n <= 64, got n=%d; use SetInRow", b.n))
	}
	b.in[i] = (mask & fullMask(b.n)) | 1<<uint(i)
	return b
}

// SetInRow sets the whole in-neighbor row of node i from a word slice of
// length WordsFor(n) (bits above n-1 are dropped, the self-loop is forced
// back on) and returns the builder. The row is copied.
func (b *Builder) SetInRow(i int, row []uint64) *Builder {
	checkNode(b.n, i)
	if len(row) != b.w {
		panic(fmt.Sprintf("graph: SetInRow got %d words, want %d", len(row), b.w))
	}
	dst := b.row(i)
	copy(dst, row)
	if tail := b.n % wordBits; tail != 0 {
		dst[b.w-1] &= fullMask(tail)
	}
	dst[i/wordBits] |= 1 << uint(i%wordBits)
	return b
}

// Graph finalizes the builder. The builder remains usable; the returned
// graph is an independent snapshot.
func (b *Builder) Graph() Graph {
	in := make([]uint64, len(b.in))
	copy(in, b.in)
	return Graph{n: b.n, w: b.w, in: in}
}

// N returns the number of nodes.
func (g Graph) N() int { return g.n }

// Words returns W = ⌈n/64⌉, the number of mask words per node row. It is 1
// for every n <= 64 graph; kernels dispatch their single-word fast path on
// it once per graph.
func (g Graph) Words() int { return g.w }

// inMaskPanic reports why an InMask call was illegal. Kept out of line so
// InMask itself stays within the inlining budget — it is the hottest
// accessor in the dense kernels.
//
//go:noinline
func (g Graph) inMaskPanic(i int) uint64 {
	checkNode(g.n, i)
	g.single("InMask")
	panic("unreachable")
}

// InMask returns the in-neighbor bitmask of node i (bit i always set) as a
// single word. It panics for n > 64; use InRow there.
func (g Graph) InMask(i int) uint64 {
	if uint(i) >= uint(g.n) || g.w != 1 {
		return g.inMaskPanic(i)
	}
	return g.in[i]
}

// rowPanic is InRow's out-of-line bounds report; see inMaskPanic.
//
//go:noinline
func (g Graph) rowPanic(i int) {
	checkNode(g.n, i)
	panic("unreachable")
}

// InRow returns node i's in-neighbor row: WordsFor(n) little-endian words,
// bit i of word i/64 always set. The returned slice aliases the graph's
// immutable storage — callers must not modify it.
func (g Graph) InRow(i int) []uint64 {
	if uint(i) >= uint(g.n) {
		g.rowPanic(i)
	}
	j := i * g.w
	return g.in[j : j+g.w : j+g.w]
}

// HasEdge reports whether the edge from -> to is present.
func (g Graph) HasEdge(from, to int) bool {
	checkNode(g.n, from)
	checkNode(g.n, to)
	return g.in[to*g.w+from/wordBits]&(1<<uint(from%wordBits)) != 0
}

// In returns the sorted in-neighbors of node i (including i itself).
func (g Graph) In(i int) []int {
	checkNode(g.n, i)
	return SetToNodes(g.row(i))
}

// Out returns the sorted out-neighbors of node i (including i itself).
func (g Graph) Out(i int) []int {
	checkNode(g.n, i)
	var out []int
	wi, bit := i/wordBits, uint64(1)<<uint(i%wordBits)
	for j := 0; j < g.n; j++ {
		if g.in[j*g.w+wi]&bit != 0 {
			out = append(out, j)
		}
	}
	return out
}

// OutMask returns the out-neighbor bitmask of node i as a single word. It
// panics for n > 64; use Out or OutDegree there.
func (g Graph) OutMask(i int) uint64 {
	checkNode(g.n, i)
	g.single("OutMask")
	var m uint64
	bit := uint64(1) << uint(i)
	for j := 0; j < g.n; j++ {
		if g.in[j]&bit != 0 {
			m |= 1 << uint(j)
		}
	}
	return m
}

// InDegree returns the in-degree of node i (counting the self-loop).
func (g Graph) InDegree(i int) int {
	checkNode(g.n, i)
	return SetCount(g.row(i))
}

// OutDegree returns the out-degree of node i (counting the self-loop).
func (g Graph) OutDegree(i int) int {
	checkNode(g.n, i)
	d := 0
	wi, bit := i/wordBits, uint64(1)<<uint(i%wordBits)
	for j := 0; j < g.n; j++ {
		if g.in[j*g.w+wi]&bit != 0 {
			d++
		}
	}
	return d
}

// EdgeCount returns the total number of edges, self-loops included.
func (g Graph) EdgeCount() int {
	c := 0
	for _, m := range g.in {
		c += bits.OnesCount64(m)
	}
	return c
}

// Edges returns all edges (from, to), self-loops excluded, sorted by
// (from, to).
func (g Graph) Edges() [][2]int {
	var edges [][2]int
	for j := 0; j < g.n; j++ {
		row := g.row(j)
		for wi, m := range row {
			if wi == j/wordBits {
				m &^= 1 << uint(j%wordBits)
			}
			for m != 0 {
				i := wi*wordBits + bits.TrailingZeros64(m)
				m &= m - 1
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})
	return edges
}

// Equal reports whether g and h are the same graph on the same node count.
func (g Graph) Equal(h Graph) bool {
	if g.n != h.n {
		return false
	}
	for i := range g.in {
		if g.in[i] != h.in[i] {
			return false
		}
	}
	return true
}

// Same reports whether g and h share the same backing mask storage — a
// constant-time identity test, strictly stronger than Equal. Schedules
// replay the same Graph value round after round (a lasso loop plays one
// value per loop slot), so Same lets per-round consumers — the batch
// plane's plan cache, the trace codec's dedup table — skip re-keying a
// graph they just keyed, without ever confusing two distinct graphs.
func (g Graph) Same(h Graph) bool {
	return g.n == h.n && len(g.in) > 0 && len(h.in) > 0 && &g.in[0] == &h.in[0]
}

// AppendMaskKey appends the graph's raw little-endian mask rows to dst —
// the cheap canonical byte identity (the representation the trace codec
// dedups on, an order of magnitude cheaper than the formatted Key).
// Equal graphs produce equal bytes; the node count is implied by the
// length (8*W bytes per node, and n*WordsFor(n) is strictly increasing in
// n, so graphs of different sizes never collide either).
func (g Graph) AppendMaskKey(dst []byte) []byte {
	for _, m := range g.in {
		dst = binary.LittleEndian.AppendUint64(dst, m)
	}
	return dst
}

// Key returns a compact canonical string identifying the graph, suitable
// for use as a map key. FromKey inverts it. Single-word graphs render one
// hex mask per node ("3:7,7,7"); wider rows join their words little-endian
// first with '-' ("65:1-1,...").
func (g Graph) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:", g.n)
	for i := 0; i < g.n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		for wi, m := range g.row(i) {
			if wi > 0 {
				sb.WriteByte('-')
			}
			fmt.Fprintf(&sb, "%x", m)
		}
	}
	return sb.String()
}

// FromKey parses a string produced by Key.
func FromKey(key string) (Graph, error) {
	colon := strings.IndexByte(key, ':')
	if colon < 0 {
		return Graph{}, fmt.Errorf("graph: malformed key %q", key)
	}
	var n int
	if _, err := fmt.Sscanf(key[:colon], "%d", &n); err != nil {
		return Graph{}, fmt.Errorf("graph: malformed key %q: %v", key, err)
	}
	if n < 1 || n > MaxNodes {
		return Graph{}, fmt.Errorf("graph: key %q has invalid node count %d", key, n)
	}
	w := WordsFor(n)
	parts := strings.Split(key[colon+1:], ",")
	if len(parts) != n {
		return Graph{}, fmt.Errorf("graph: key %q has %d masks, want %d", key, len(parts), n)
	}
	words := make([]uint64, n*w)
	for i, p := range parts {
		ws := strings.Split(p, "-")
		if len(ws) != w {
			return Graph{}, fmt.Errorf("graph: key row %q has %d words, want %d", p, len(ws), w)
		}
		for wi, s := range ws {
			if _, err := fmt.Sscanf(s, "%x", &words[i*w+wi]); err != nil {
				return Graph{}, fmt.Errorf("graph: malformed mask %q in key: %v", s, err)
			}
		}
	}
	return FromInWords(n, words)
}

// String renders the graph as an edge list, e.g. "G(3){0->1 1->2}"
// (self-loops omitted).
func (g Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "G(%d){", g.n)
	for k, e := range g.Edges() {
		if k > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d->%d", e[0], e[1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// DOT renders the graph in Graphviz DOT format (self-loops omitted).
func (g Graph) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %s {\n", name)
	for i := 0; i < g.n; i++ {
		fmt.Fprintf(&sb, "  %d;\n", i)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %d -> %d;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Product returns the graph product g∘h: edge (i, j) present iff there is a
// k with (i, k) in g and (k, j) in h. Operationally: information that flows
// along g in round t and along h in round t+1 flows along g∘h over the two
// rounds (paper, Section 2).
func Product(g, h Graph) Graph {
	if g.n != h.n {
		panic(fmt.Sprintf("graph: product of mismatched sizes %d and %d", g.n, h.n))
	}
	if g.w == 1 {
		in := make([]uint64, g.n)
		for j := 0; j < g.n; j++ {
			var m uint64
			hm := h.in[j]
			for hm != 0 {
				k := bits.TrailingZeros64(hm)
				hm &= hm - 1
				m |= g.in[k]
			}
			in[j] = m
		}
		return Graph{n: g.n, w: 1, in: in}
	}
	w := g.w
	in := make([]uint64, g.n*w)
	for j := 0; j < g.n; j++ {
		dst := in[j*w : (j+1)*w]
		for wi, hm := range h.row(j) {
			base := wi * wordBits
			for hm != 0 {
				k := base + bits.TrailingZeros64(hm)
				hm &= hm - 1
				gr := g.row(k)
				for x := range dst {
					dst[x] |= gr[x]
				}
			}
		}
	}
	return Graph{n: g.n, w: w, in: in}
}

// ProductAll folds Product over the given graphs left to right. It panics
// if no graph is given.
func ProductAll(gs ...Graph) Graph {
	if len(gs) == 0 {
		panic("graph: ProductAll of empty sequence")
	}
	p := gs[0]
	for _, g := range gs[1:] {
		p = Product(p, g)
	}
	return p
}

// ReachMask returns the bitmask of nodes reachable from i by directed paths
// (including i itself) as a single word. It panics for n > 64; use
// ReachSet there.
func (g Graph) ReachMask(i int) uint64 {
	checkNode(g.n, i)
	g.single("ReachMask")
	reach := uint64(1) << uint(i)
	for {
		next := reach
		for j := 0; j < g.n; j++ {
			if next&(1<<uint(j)) == 0 && g.in[j]&reach != 0 {
				next |= 1 << uint(j)
			}
		}
		if next == reach {
			return reach
		}
		reach = next
	}
}

// ReachSet returns the set of nodes reachable from i by directed paths
// (including i itself) as a word-sliced node set of length WordsFor(n).
func (g Graph) ReachSet(i int) []uint64 {
	checkNode(g.n, i)
	if g.w == 1 {
		return []uint64{g.ReachMask(i)}
	}
	reach := make([]uint64, g.w)
	reach[i/wordBits] = 1 << uint(i%wordBits)
	for {
		grew := false
		for j := 0; j < g.n; j++ {
			if reach[j/wordBits]&(1<<uint(j%wordBits)) != 0 {
				continue
			}
			row := g.row(j)
			for wi, m := range row {
				if m&reach[wi] != 0 {
					reach[j/wordBits] |= 1 << uint(j%wordBits)
					grew = true
					break
				}
			}
		}
		if !grew {
			return reach
		}
	}
}

// Roots returns the bitmask of roots — nodes with a directed path to every
// other node — as a single word; the paper writes R(G). A graph is rooted
// iff this is nonempty. It panics for n > 64; use RootsSet there.
func (g Graph) Roots() uint64 {
	g.single("Roots")
	all := fullMask(g.n)
	var roots uint64
	for i := 0; i < g.n; i++ {
		if g.ReachMask(i) == all {
			roots |= 1 << uint(i)
		}
	}
	return roots
}

// RootsSet returns the root set as a word-sliced node set of length
// WordsFor(n). For multi-word graphs it goes through the condensation
// (RootsViaSCC's characterization), which stays near-linear instead of
// running one reachability closure per node.
func (g Graph) RootsSet() []uint64 {
	if g.w == 1 {
		return []uint64{g.Roots()}
	}
	return g.sccRootsSet()
}

// IsRooted reports whether the graph contains a rooted spanning tree, i.e.
// has at least one root. Asymptotic consensus is solvable in a network
// model iff all its graphs are rooted (paper, Theorem 1 of Section 2.2).
func (g Graph) IsRooted() bool {
	if g.w == 1 {
		return g.Roots() != 0
	}
	for _, m := range g.sccRootsSet() {
		if m != 0 {
			return true
		}
	}
	return false
}

// IsNonSplit reports whether any two nodes have a common in-neighbor.
// Non-split graphs arise as communication graphs of benign classical
// failure models and admit the midpoint algorithm's 1/2 contraction.
func (g Graph) IsNonSplit() bool {
	if g.w == 1 {
		for i := 0; i < g.n; i++ {
			for j := i + 1; j < g.n; j++ {
				if g.in[i]&g.in[j] == 0 {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < g.n; i++ {
		ri := g.row(i)
		for j := i + 1; j < g.n; j++ {
			rj := g.row(j)
			meet := false
			for wi := range ri {
				if ri[wi]&rj[wi] != 0 {
					meet = true
					break
				}
			}
			if !meet {
				return false
			}
		}
	}
	return true
}

// IsComplete reports whether every agent hears every agent.
func (g Graph) IsComplete() bool {
	return g.EdgeCount() == g.n*g.n
}

// InMaskSet returns the union of in-neighbor masks over the node set S
// (given as a single-word bitmask); the paper writes In_S(G). It panics
// for n > 64.
func (g Graph) InMaskSet(s uint64) uint64 {
	g.single("InMaskSet")
	var m uint64
	for i := 0; i < g.n; i++ {
		if s&(1<<uint(i)) != 0 {
			m |= g.in[i]
		}
	}
	return m
}

// InsOn reports whether g and h assign identical in-neighborhoods to every
// node in the set S (single-word bitmask). This is the building block of
// the alpha relation of Coulouma et al. used in Section 7 of the paper. It
// panics for n > 64; use InsOnSet there.
func InsOn(g, h Graph, s uint64) bool {
	if g.n != h.n {
		return false
	}
	g.single("InsOn")
	for i := 0; i < g.n; i++ {
		if s&(1<<uint(i)) != 0 && g.in[i] != h.in[i] {
			return false
		}
	}
	return true
}

// InsOnSet reports whether g and h assign identical in-neighborhoods to
// every node in the word-sliced set s (length WordsFor(n)).
func InsOnSet(g, h Graph, s []uint64) bool {
	if g.n != h.n {
		return false
	}
	for wi, m := range s {
		base := wi * wordBits
		for m != 0 {
			i := base + bits.TrailingZeros64(m)
			m &= m - 1
			if i >= g.n {
				break
			}
			ri, hi := g.row(i), h.row(i)
			for x := range ri {
				if ri[x] != hi[x] {
					return false
				}
			}
		}
	}
	return true
}

// RowsEqual reports whether g and h assign the same in-neighborhood to
// node i (both graphs must have the same node count).
func RowsEqual(g, h Graph, i int) bool {
	if g.n != h.n {
		return false
	}
	ri, hi := g.row(i), h.row(i)
	for x := range ri {
		if ri[x] != hi[x] {
			return false
		}
	}
	return true
}

// maskToNodes expands a single-word bitmask into a sorted node slice.
func maskToNodes(m uint64) []int {
	nodes := make([]int, 0, bits.OnesCount64(m))
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		nodes = append(nodes, i)
	}
	return nodes
}

// MaskToNodes expands a single-word node bitmask into a sorted node slice.
// Exported for callers that work with Roots or ReachMask results.
func MaskToNodes(m uint64) []int { return maskToNodes(m) }

// NodesToMask packs a node slice into a single-word bitmask. Nodes must be
// below 64; use NodesToSet for wider graphs.
func NodesToMask(nodes []int) uint64 {
	var m uint64
	for _, i := range nodes {
		if i < 0 || i >= wordBits {
			panic(fmt.Sprintf("graph: node %d out of range [0,%d)", i, wordBits))
		}
		m |= 1 << uint(i)
	}
	return m
}

// SetToNodes expands a word-sliced node set into a sorted node slice.
func SetToNodes(s []uint64) []int {
	nodes := make([]int, 0, SetCount(s))
	for wi, m := range s {
		base := wi * wordBits
		for m != 0 {
			i := bits.TrailingZeros64(m)
			m &= m - 1
			nodes = append(nodes, base+i)
		}
	}
	return nodes
}

// NodesToSet packs a node slice into a word-sliced set of length
// WordsFor(n).
func NodesToSet(n int, nodes []int) []uint64 {
	checkN(n)
	s := make([]uint64, WordsFor(n))
	for _, i := range nodes {
		checkNode(n, i)
		s[i/wordBits] |= 1 << uint(i%wordBits)
	}
	return s
}

// SetHas reports whether node i is in the word-sliced set s.
func SetHas(s []uint64, i int) bool {
	wi := i / wordBits
	return wi < len(s) && s[wi]&(1<<uint(i%wordBits)) != 0
}

// SetCount returns the number of nodes in the word-sliced set s.
func SetCount(s []uint64) int {
	c := 0
	for _, m := range s {
		c += bits.OnesCount64(m)
	}
	return c
}

// SetsEqual reports whether two word-sliced sets of equal length hold the
// same nodes.
func SetsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
