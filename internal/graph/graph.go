// Package graph implements directed communication graphs for round-based
// dynamic-network models in the style of the Heard-Of model (Charron-Bost,
// Schiper 2009), as used by Függer, Nowak, Schwarz, "Tight Bounds for
// Asymptotic and Approximate Consensus" (PODC 2018).
//
// A communication graph on n agents (nodes 0..n-1) has a directed edge
// (i, j) iff agent j receives agent i's message in the given round. Every
// graph carries a mandatory self-loop at each node: an agent always hears
// itself (paper, Section 2).
//
// Graphs are represented by one in-neighbor bitmask per node, which makes
// the graph product, root computation, and the non-split predicate
// word-parallel. The number of agents is capped at MaxNodes = 64.
//
// A Graph value is immutable after construction. Use a Builder, one of the
// named constructors (Complete, Cycle, ...), or the paper-specific families
// (H, Psi, Deaf, SilenceBlock) to create graphs.
package graph

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxNodes is the maximum number of agents supported by the bitmask
// representation.
const MaxNodes = 64

// Graph is an immutable directed communication graph with mandatory
// self-loops. The zero value is not a valid graph; use New or a Builder.
type Graph struct {
	n  int
	in []uint64 // in[j] = bitmask of in-neighbors of j, bit j always set
}

// fullMask returns the bitmask with bits 0..n-1 set.
func fullMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// checkN panics unless 1 <= n <= MaxNodes. Invalid sizes are programmer
// errors, analogous to a negative slice length.
func checkN(n int) {
	if n < 1 || n > MaxNodes {
		panic(fmt.Sprintf("graph: invalid node count %d (want 1..%d)", n, MaxNodes))
	}
}

// checkNode panics unless 0 <= i < n.
func checkNode(n, i int) {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", i, n))
	}
}

// New returns the identity graph on n nodes: self-loops only. In the
// dynamic-network model this is the round in which nobody hears anybody.
func New(n int) Graph {
	checkN(n)
	in := make([]uint64, n)
	for i := range in {
		in[i] = 1 << uint(i)
	}
	return Graph{n: n, in: in}
}

// Complete returns the complete communication graph K_n: every agent hears
// every agent.
func Complete(n int) Graph {
	checkN(n)
	in := make([]uint64, n)
	all := fullMask(n)
	for i := range in {
		in[i] = all
	}
	return Graph{n: n, in: in}
}

// Cycle returns the directed cycle 0 -> 1 -> ... -> n-1 -> 0 (plus
// self-loops).
func Cycle(n int) Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Edge(i, (i+1)%n)
	}
	return b.Graph()
}

// PathGraph returns the directed path 0 -> 1 -> ... -> n-1 (plus self-loops).
func PathGraph(n int) Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.Edge(i, i+1)
	}
	return b.Graph()
}

// Star returns the out-star centered at node c: edges c -> j for all j != c
// (plus self-loops). The center is the unique root.
func Star(n, c int) Graph {
	checkNode(n, c)
	b := NewBuilder(n)
	for j := 0; j < n; j++ {
		if j != c {
			b.Edge(c, j)
		}
	}
	return b.Graph()
}

// FromInMasks constructs a graph directly from in-neighbor bitmasks.
// It returns an error if a mask references a node >= n or misses the
// mandatory self-loop.
func FromInMasks(n int, masks []uint64) (Graph, error) {
	checkN(n)
	if len(masks) != n {
		return Graph{}, fmt.Errorf("graph: got %d masks for %d nodes", len(masks), n)
	}
	all := fullMask(n)
	in := make([]uint64, n)
	for i, m := range masks {
		if m&^all != 0 {
			return Graph{}, fmt.Errorf("graph: mask of node %d references nodes >= %d", i, n)
		}
		if m&(1<<uint(i)) == 0 {
			return Graph{}, fmt.Errorf("graph: node %d is missing its self-loop", i)
		}
		in[i] = m
	}
	return Graph{n: n, in: in}, nil
}

// FromEdges constructs a graph on n nodes from the given (from, to) edge
// list. Self-loops are added automatically and need not be listed.
func FromEdges(n int, edges ...[2]int) (Graph, error) {
	checkN(n)
	in := make([]uint64, n)
	for i := range in {
		in[i] = 1 << uint(i)
	}
	for _, e := range edges {
		from, to := e[0], e[1]
		if from < 0 || from >= n || to < 0 || to >= n {
			return Graph{}, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", from, to, n)
		}
		in[to] |= 1 << uint(from)
	}
	return Graph{n: n, in: in}, nil
}

// MustFromEdges is FromEdges that panics on error; intended for statically
// known edge lists in tests and examples.
func MustFromEdges(n int, edges ...[2]int) Graph {
	g, err := FromEdges(n, edges...)
	if err != nil {
		panic(err)
	}
	return g
}

// Builder incrementally assembles a Graph. The zero Builder is not usable;
// call NewBuilder.
type Builder struct {
	n  int
	in []uint64
}

// NewBuilder returns a Builder for a graph on n nodes, pre-populated with
// the mandatory self-loops.
func NewBuilder(n int) *Builder {
	checkN(n)
	in := make([]uint64, n)
	for i := range in {
		in[i] = 1 << uint(i)
	}
	return &Builder{n: n, in: in}
}

// Edge adds the directed edge from -> to and returns the builder for
// chaining.
func (b *Builder) Edge(from, to int) *Builder {
	checkNode(b.n, from)
	checkNode(b.n, to)
	b.in[to] |= 1 << uint(from)
	return b
}

// InMask sets the whole in-neighbor mask of node i (the self-loop is forced
// back on) and returns the builder.
func (b *Builder) InMask(i int, mask uint64) *Builder {
	checkNode(b.n, i)
	b.in[i] = (mask & fullMask(b.n)) | 1<<uint(i)
	return b
}

// Graph finalizes the builder. The builder remains usable; the returned
// graph is an independent snapshot.
func (b *Builder) Graph() Graph {
	in := make([]uint64, b.n)
	copy(in, b.in)
	return Graph{n: b.n, in: in}
}

// N returns the number of nodes.
func (g Graph) N() int { return g.n }

// InMask returns the in-neighbor bitmask of node i (bit i always set).
func (g Graph) InMask(i int) uint64 {
	checkNode(g.n, i)
	return g.in[i]
}

// HasEdge reports whether the edge from -> to is present.
func (g Graph) HasEdge(from, to int) bool {
	checkNode(g.n, from)
	checkNode(g.n, to)
	return g.in[to]&(1<<uint(from)) != 0
}

// In returns the sorted in-neighbors of node i (including i itself).
func (g Graph) In(i int) []int {
	checkNode(g.n, i)
	return maskToNodes(g.in[i])
}

// Out returns the sorted out-neighbors of node i (including i itself).
func (g Graph) Out(i int) []int {
	checkNode(g.n, i)
	var out []int
	bit := uint64(1) << uint(i)
	for j := 0; j < g.n; j++ {
		if g.in[j]&bit != 0 {
			out = append(out, j)
		}
	}
	return out
}

// OutMask returns the out-neighbor bitmask of node i.
func (g Graph) OutMask(i int) uint64 {
	checkNode(g.n, i)
	var m uint64
	bit := uint64(1) << uint(i)
	for j := 0; j < g.n; j++ {
		if g.in[j]&bit != 0 {
			m |= 1 << uint(j)
		}
	}
	return m
}

// InDegree returns the in-degree of node i (counting the self-loop).
func (g Graph) InDegree(i int) int {
	checkNode(g.n, i)
	return bits.OnesCount64(g.in[i])
}

// EdgeCount returns the total number of edges, self-loops included.
func (g Graph) EdgeCount() int {
	c := 0
	for _, m := range g.in {
		c += bits.OnesCount64(m)
	}
	return c
}

// Edges returns all edges (from, to), self-loops excluded, sorted by
// (from, to).
func (g Graph) Edges() [][2]int {
	var edges [][2]int
	for j := 0; j < g.n; j++ {
		m := g.in[j] &^ (1 << uint(j))
		for m != 0 {
			i := bits.TrailingZeros64(m)
			m &= m - 1
			edges = append(edges, [2]int{i, j})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})
	return edges
}

// Equal reports whether g and h are the same graph on the same node count.
func (g Graph) Equal(h Graph) bool {
	if g.n != h.n {
		return false
	}
	for i := range g.in {
		if g.in[i] != h.in[i] {
			return false
		}
	}
	return true
}

// Same reports whether g and h share the same backing mask storage — a
// constant-time identity test, strictly stronger than Equal. Schedules
// replay the same Graph value round after round (a lasso loop plays one
// value per loop slot), so Same lets per-round consumers — the batch
// plane's plan cache, the trace codec's dedup table — skip re-keying a
// graph they just keyed, without ever confusing two distinct graphs.
func (g Graph) Same(h Graph) bool {
	return g.n == h.n && len(g.in) > 0 && len(h.in) > 0 && &g.in[0] == &h.in[0]
}

// AppendMaskKey appends the graph's raw little-endian mask rows to dst —
// the cheap canonical byte identity (the representation the trace codec
// dedups on, an order of magnitude cheaper than the formatted Key).
// Equal graphs produce equal bytes; the node count is implied by the
// length (8 bytes per node).
func (g Graph) AppendMaskKey(dst []byte) []byte {
	for _, m := range g.in {
		dst = binary.LittleEndian.AppendUint64(dst, m)
	}
	return dst
}

// Key returns a compact canonical string identifying the graph, suitable
// for use as a map key. FromKey inverts it.
func (g Graph) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:", g.n)
	for i, m := range g.in {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%x", m)
	}
	return sb.String()
}

// FromKey parses a string produced by Key.
func FromKey(key string) (Graph, error) {
	colon := strings.IndexByte(key, ':')
	if colon < 0 {
		return Graph{}, fmt.Errorf("graph: malformed key %q", key)
	}
	var n int
	if _, err := fmt.Sscanf(key[:colon], "%d", &n); err != nil {
		return Graph{}, fmt.Errorf("graph: malformed key %q: %v", key, err)
	}
	if n < 1 || n > MaxNodes {
		return Graph{}, fmt.Errorf("graph: key %q has invalid node count %d", key, n)
	}
	parts := strings.Split(key[colon+1:], ",")
	if len(parts) != n {
		return Graph{}, fmt.Errorf("graph: key %q has %d masks, want %d", key, len(parts), n)
	}
	masks := make([]uint64, n)
	for i, p := range parts {
		if _, err := fmt.Sscanf(p, "%x", &masks[i]); err != nil {
			return Graph{}, fmt.Errorf("graph: malformed mask %q in key: %v", p, err)
		}
	}
	return FromInMasks(n, masks)
}

// String renders the graph as an edge list, e.g. "G(3){0->1 1->2}"
// (self-loops omitted).
func (g Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "G(%d){", g.n)
	for k, e := range g.Edges() {
		if k > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d->%d", e[0], e[1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// DOT renders the graph in Graphviz DOT format (self-loops omitted).
func (g Graph) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %s {\n", name)
	for i := 0; i < g.n; i++ {
		fmt.Fprintf(&sb, "  %d;\n", i)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %d -> %d;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Product returns the graph product g∘h: edge (i, j) present iff there is a
// k with (i, k) in g and (k, j) in h. Operationally: information that flows
// along g in round t and along h in round t+1 flows along g∘h over the two
// rounds (paper, Section 2).
func Product(g, h Graph) Graph {
	if g.n != h.n {
		panic(fmt.Sprintf("graph: product of mismatched sizes %d and %d", g.n, h.n))
	}
	in := make([]uint64, g.n)
	for j := 0; j < g.n; j++ {
		var m uint64
		hm := h.in[j]
		for hm != 0 {
			k := bits.TrailingZeros64(hm)
			hm &= hm - 1
			m |= g.in[k]
		}
		in[j] = m
	}
	return Graph{n: g.n, in: in}
}

// ProductAll folds Product over the given graphs left to right. It panics
// if no graph is given.
func ProductAll(gs ...Graph) Graph {
	if len(gs) == 0 {
		panic("graph: ProductAll of empty sequence")
	}
	p := gs[0]
	for _, g := range gs[1:] {
		p = Product(p, g)
	}
	return p
}

// ReachMask returns the bitmask of nodes reachable from i by directed paths
// (including i itself).
func (g Graph) ReachMask(i int) uint64 {
	checkNode(g.n, i)
	reach := uint64(1) << uint(i)
	for {
		next := reach
		for j := 0; j < g.n; j++ {
			if next&(1<<uint(j)) == 0 && g.in[j]&reach != 0 {
				next |= 1 << uint(j)
			}
		}
		if next == reach {
			return reach
		}
		reach = next
	}
}

// Roots returns the bitmask of roots: nodes with a directed path to every
// other node. A graph is rooted iff this is nonempty; the paper writes R(G).
func (g Graph) Roots() uint64 {
	all := fullMask(g.n)
	var roots uint64
	for i := 0; i < g.n; i++ {
		if g.ReachMask(i) == all {
			roots |= 1 << uint(i)
		}
	}
	return roots
}

// IsRooted reports whether the graph contains a rooted spanning tree, i.e.
// has at least one root. Asymptotic consensus is solvable in a network
// model iff all its graphs are rooted (paper, Theorem 1 of Section 2.2).
func (g Graph) IsRooted() bool { return g.Roots() != 0 }

// IsNonSplit reports whether any two nodes have a common in-neighbor.
// Non-split graphs arise as communication graphs of benign classical
// failure models and admit the midpoint algorithm's 1/2 contraction.
func (g Graph) IsNonSplit() bool {
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if g.in[i]&g.in[j] == 0 {
				return false
			}
		}
	}
	return true
}

// IsComplete reports whether every agent hears every agent.
func (g Graph) IsComplete() bool {
	all := fullMask(g.n)
	for _, m := range g.in {
		if m != all {
			return false
		}
	}
	return true
}

// InMaskSet returns the union of in-neighbor masks over the node set S
// (given as a bitmask); the paper writes In_S(G).
func (g Graph) InMaskSet(s uint64) uint64 {
	var m uint64
	for i := 0; i < g.n; i++ {
		if s&(1<<uint(i)) != 0 {
			m |= g.in[i]
		}
	}
	return m
}

// InsOn reports whether g and h assign identical in-neighborhoods to every
// node in the set S (bitmask). This is the building block of the alpha
// relation of Coulouma et al. used in Section 7 of the paper.
func InsOn(g, h Graph, s uint64) bool {
	if g.n != h.n {
		return false
	}
	for i := 0; i < g.n; i++ {
		if s&(1<<uint(i)) != 0 && g.in[i] != h.in[i] {
			return false
		}
	}
	return true
}

// maskToNodes expands a bitmask into a sorted node slice.
func maskToNodes(m uint64) []int {
	nodes := make([]int, 0, bits.OnesCount64(m))
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		nodes = append(nodes, i)
	}
	return nodes
}

// MaskToNodes expands a node bitmask into a sorted node slice. Exported for
// callers that work with Roots or ReachMask results.
func MaskToNodes(m uint64) []int { return maskToNodes(m) }

// NodesToMask packs a node slice into a bitmask.
func NodesToMask(nodes []int) uint64 {
	var m uint64
	for _, i := range nodes {
		if i < 0 || i >= MaxNodes {
			panic(fmt.Sprintf("graph: node %d out of range [0,%d)", i, MaxNodes))
		}
		m |= 1 << uint(i)
	}
	return m
}
