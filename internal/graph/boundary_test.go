package graph

import (
	"math/big"
	"math/rand"
	"testing"
)

// Differential tests at the word boundaries: every mask-kernel result is
// checked against an independent math/big implementation of the same
// operation, at n one below, at, and one above each word boundary the
// multi-word layout can cross (63/64/65, 127/128, 256, 1024). The big.Int
// reference shares no code with the word-sliced kernels — in particular
// RootsSet goes through the SCC condensation for n > 64 while the
// reference runs plain reachability closures, so an agreement here is an
// agreement between two genuinely different algorithms.

var boundaryNs = []int{63, 64, 65, 127, 128, 256, 1024}

// bigGraph is the reference representation: row j holds bit i iff i is an
// in-neighbor of j (edge i -> j), the same convention as Graph.
type bigGraph struct {
	n    int
	rows []*big.Int
}

func toBig(g Graph) bigGraph {
	n := g.N()
	rows := make([]*big.Int, n)
	word := new(big.Int)
	for j := 0; j < n; j++ {
		acc := new(big.Int)
		for wi, m := range g.InRow(j) {
			word.SetUint64(m)
			word.Lsh(word, uint(wi*64))
			acc.Or(acc, word)
		}
		rows[j] = acc
	}
	return bigGraph{n: n, rows: rows}
}

func (b bigGraph) equal(g Graph) bool {
	other := toBig(g)
	for j := range b.rows {
		if b.rows[j].Cmp(other.rows[j]) != 0 {
			return false
		}
	}
	return true
}

// product is the reference g∘h: edge (i, j) iff some k has (i, k) in g
// and (k, j) in h — row j of the product ORs g's row k for every k in
// h's row j.
func refProduct(g, h bigGraph) bigGraph {
	rows := make([]*big.Int, g.n)
	for j := 0; j < g.n; j++ {
		acc := new(big.Int)
		hr := h.rows[j]
		for k := 0; k < g.n; k++ {
			if hr.Bit(k) == 1 {
				acc.Or(acc, g.rows[k])
			}
		}
		rows[j] = acc
	}
	return bigGraph{n: g.n, rows: rows}
}

// refRoots computes the root set by reachability closure: square the
// in-closure matrix until it stops growing, then intersect all rows — a
// node that is in every node's in-closure reaches every node.
func refRoots(g bigGraph) *big.Int {
	cl := bigGraph{n: g.n, rows: make([]*big.Int, g.n)}
	for j := range cl.rows {
		cl.rows[j] = new(big.Int).SetBit(g.rows[j], j, 1)
	}
	for {
		next := refProduct(cl, cl)
		grew := false
		for j := range next.rows {
			if next.rows[j].Cmp(cl.rows[j]) != 0 {
				grew = true
				break
			}
		}
		cl = next
		if !grew {
			break
		}
	}
	inter := new(big.Int).Set(cl.rows[0])
	for _, r := range cl.rows[1:] {
		inter.And(inter, r)
	}
	return inter
}

func refNonSplit(g bigGraph) bool {
	meet := new(big.Int)
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if meet.And(g.rows[i], g.rows[j]).Sign() == 0 {
				return false
			}
		}
	}
	return true
}

// setToBig converts a word-sliced node set to the reference integer.
func setToBig(s []uint64) *big.Int {
	acc := new(big.Int)
	word := new(big.Int)
	for wi, m := range s {
		word.SetUint64(m)
		word.Lsh(word, uint(wi*64))
		acc.Or(acc, word)
	}
	return acc
}

// boundaryGraphs returns a deterministic pool per n: structured graphs
// whose properties are known plus random ones at two densities. Density
// scales down with n so the 1024-node cases stay sparse enough for the
// closure reference to converge in a few squarings without the test
// taking seconds.
func boundaryGraphs(n int) []Graph {
	rng := rand.New(rand.NewSource(int64(n)))
	p := 8.0 / float64(n)
	gs := []Graph{
		New(n),
		Complete(n),
		Cycle(n),
		Star(n, n/2),
		Random(rng, n, p),
		Random(rng, n, 3*p),
	}
	if n <= 128 {
		gs = append(gs, Random(rng, n, 0.5), Deaf(Complete(n), n-1))
	}
	return gs
}

func TestBoundaryProductVsBig(t *testing.T) {
	for _, n := range boundaryNs {
		gs := boundaryGraphs(n)
		for i := 0; i+1 < len(gs); i++ {
			g, h := gs[i], gs[i+1]
			got := Product(g, h)
			want := refProduct(toBig(g), toBig(h))
			if !want.equal(got) {
				t.Fatalf("n=%d: Product(gs[%d], gs[%d]) disagrees with the big.Int reference", n, i, i+1)
			}
		}
	}
}

func TestBoundaryDiameterClosureVsBig(t *testing.T) {
	// Repeated self-product doubles the path length covered each step;
	// after ceil(log2(n)) squarings the product is the full closure of
	// the reflexive graph. Compare the kernel against the reference at
	// every intermediate power, not just the fixpoint.
	for _, n := range boundaryNs {
		rng := rand.New(rand.NewSource(int64(2 * n)))
		g := Random(rng, n, 4.0/float64(n))
		ref := toBig(g)
		for step := 0; step < 4; step++ {
			g = Product(g, g)
			ref = refProduct(ref, ref)
			if !ref.equal(g) {
				t.Fatalf("n=%d: squaring step %d disagrees with the big.Int reference", n, step+1)
			}
		}
	}
}

func TestBoundaryRootsVsBig(t *testing.T) {
	for _, n := range boundaryNs {
		for i, g := range boundaryGraphs(n) {
			got := setToBig(g.RootsSet())
			want := refRoots(toBig(g))
			if got.Cmp(want) != 0 {
				t.Fatalf("n=%d gs[%d]: RootsSet disagrees with the big.Int closure reference", n, i)
			}
			if g.IsRooted() != (want.Sign() != 0) {
				t.Fatalf("n=%d gs[%d]: IsRooted disagrees with the reference root set", n, i)
			}
		}
	}
}

func TestBoundaryNonSplitVsBig(t *testing.T) {
	for _, n := range boundaryNs {
		for i, g := range boundaryGraphs(n) {
			if got, want := g.IsNonSplit(), refNonSplit(toBig(g)); got != want {
				t.Fatalf("n=%d gs[%d]: IsNonSplit = %v, reference says %v", n, i, got, want)
			}
		}
	}
}

func TestBoundarySetIterationVsBig(t *testing.T) {
	for _, n := range boundaryNs {
		for i, g := range boundaryGraphs(n) {
			roots := g.RootsSet()
			ref := setToBig(roots)
			nodes := SetToNodes(roots)
			if len(nodes) != SetCount(roots) {
				t.Fatalf("n=%d gs[%d]: SetToNodes yields %d nodes, SetCount says %d", n, i, len(nodes), SetCount(roots))
			}
			count := 0
			for b := 0; b < n; b++ {
				if ref.Bit(b) == 1 {
					if count >= len(nodes) || nodes[count] != b {
						t.Fatalf("n=%d gs[%d]: SetToNodes misses or misorders bit %d", n, i, b)
					}
					count++
				}
			}
			if count != len(nodes) {
				t.Fatalf("n=%d gs[%d]: SetToNodes has %d extra nodes", n, i, len(nodes)-count)
			}
		}
	}
}

func TestBoundaryMaskKeyBytesVsBig(t *testing.T) {
	// AppendMaskKey must serialize each row as exactly WordsFor(n)
	// little-endian words, rows in node order — the identity the plan
	// cache, the trace codec, and the sweep cache all key on.
	for _, n := range boundaryNs {
		w := WordsFor(n)
		for i, g := range boundaryGraphs(n) {
			key := g.AppendMaskKey(nil)
			if len(key) != n*w*8 {
				t.Fatalf("n=%d gs[%d]: mask key is %d bytes, want %d", n, i, len(key), n*w*8)
			}
			ref := toBig(g)
			for j := 0; j < n; j++ {
				row := key[j*w*8 : (j+1)*w*8]
				be := make([]byte, len(row))
				for k, b := range row {
					be[len(row)-1-k] = b
				}
				if new(big.Int).SetBytes(be).Cmp(ref.rows[j]) != 0 {
					t.Fatalf("n=%d gs[%d]: mask key row %d is not the row's little-endian words", n, i, j)
				}
			}
		}
	}
}
