package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSynchronousCrashRoundStructure(t *testing.T) {
	// n = 4: agent 0 crashed earlier, agent 1 crashes now reaching only
	// agent 2.
	g, err := SynchronousCrashRound(4, 0b0001, map[int]uint64{1: 1 << 2})
	if err != nil {
		t.Fatal(err)
	}
	// Nobody hears agent 0 (except its mandatory self-loop).
	for j := 1; j < 4; j++ {
		if g.HasEdge(0, j) {
			t.Errorf("agent %d hears crashed agent 0", j)
		}
	}
	// Only agent 2 hears the crashing agent 1.
	if !g.HasEdge(1, 2) {
		t.Error("agent 2 should hear crashing agent 1")
	}
	if g.HasEdge(1, 3) || g.HasEdge(1, 0) {
		t.Error("agents other than 2 should not hear crashing agent 1")
	}
	// Correct agents 2, 3 are heard by everyone.
	for _, i := range []int{2, 3} {
		for j := 0; j < 4; j++ {
			if !g.HasEdge(i, j) {
				t.Errorf("agent %d does not hear correct agent %d", j, i)
			}
		}
	}
	if !g.IsNonSplit() {
		t.Error("synchronous crash round should be non-split")
	}
	if got := g.CorrectCount(); got != 2 {
		t.Errorf("CorrectCount = %d, want 2", got)
	}
}

func TestSynchronousCrashRoundValidation(t *testing.T) {
	if _, err := SynchronousCrashRound(3, 1<<5, nil); err == nil {
		t.Error("out-of-range crashed set accepted")
	}
	if _, err := SynchronousCrashRound(3, 0, map[int]uint64{5: 0}); err == nil {
		t.Error("out-of-range crashing agent accepted")
	}
	if _, err := SynchronousCrashRound(3, 0b001, map[int]uint64{0: 0}); err == nil {
		t.Error("agent both crashed and crashing accepted")
	}
	if _, err := SynchronousCrashRound(3, 0, map[int]uint64{0: 1 << 5}); err == nil {
		t.Error("out-of-range reach set accepted")
	}
}

func TestSendOmissionRoundStructure(t *testing.T) {
	// Agent 0 omits toward 1 and 2; agent 3 omits toward 0.
	g, err := SendOmissionRound(4, map[int]uint64{0: 0b0110, 3: 0b0001})
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Error("omitted edges present")
	}
	if !g.HasEdge(0, 3) {
		t.Error("non-omitted edge 0->3 missing")
	}
	if g.HasEdge(3, 0) {
		t.Error("omitted edge 3->0 present")
	}
	// Self-loops survive even for faulty agents.
	for i := 0; i < 4; i++ {
		if !g.HasEdge(i, i) {
			t.Errorf("self-loop of %d lost", i)
		}
	}
	if !g.IsNonSplit() {
		t.Error("send-omission round should be non-split")
	}
	if _, err := SendOmissionRound(3, map[int]uint64{7: 0}); err == nil {
		t.Error("out-of-range faulty agent accepted")
	}
}

// TestFailureModelGraphsAreNonSplit is the paper's property (i): the
// per-round graphs of synchronous crashes, synchronous send omissions,
// and asynchronous minority crashes are all non-split (and hence rooted).
func TestFailureModelGraphsAreNonSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(6)
		fPrior := rng.Intn(n / 2)
		f := rng.Intn(n - fPrior - 1)
		if g := RandomSynchronousCrashRound(rng, n, fPrior, f); !g.IsNonSplit() {
			t.Fatalf("crash round splits: n=%d %v", n, g)
		}
		if g := RandomSendOmissionRound(rng, n, n-1); !g.IsNonSplit() {
			t.Fatalf("omission round splits: n=%d %v", n, g)
		}
		fa := rng.Intn((n+1)/2 - 0) // 0 .. ceil(n/2)-1, keeps 2f < n
		if 2*fa >= n {
			fa = (n - 1) / 2
		}
		if g := RandomAsyncMinorityCrashRound(rng, n, fa); !g.IsNonSplit() {
			t.Fatalf("async minority round splits: n=%d f=%d %v", n, fa, g)
		}
	}
}

// TestAsyncMinorityQuorumSizes checks the async-minority generator honors
// the quorum discipline: every agent hears itself and at least n-f agents
// in total.
func TestAsyncMinorityQuorumSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(7)
		f := rng.Intn((n - 1) / 2)
		g := RandomAsyncMinorityCrashRound(rng, n, f)
		if g.MinInDegree() < n-f {
			t.Fatalf("n=%d f=%d: quorum too small: %d", n, f, g.MinInDegree())
		}
		for i := 0; i < n; i++ {
			if !g.HasEdge(i, i) {
				t.Fatalf("self-loop lost at %d", i)
			}
		}
	}
}

// TestFailureGraphsNonSplitQuick is the quick-check variant over the
// whole failure family with arbitrary seeds.
func TestFailureGraphsNonSplitQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		g1 := RandomSynchronousCrashRound(rng, n, 0, n-1)
		g2 := RandomSendOmissionRound(rng, n, n-1)
		return g1.IsNonSplit() && g1.IsRooted() && g2.IsNonSplit() && g2.IsRooted()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCrashRoundBudgetPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Error("over-budget crash round did not panic")
		}
	}()
	RandomSynchronousCrashRound(rng, 3, 2, 1)
}
