package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestEdgesOrderingAndCount(t *testing.T) {
	g := MustFromEdges(4, [2]int{2, 1}, [2]int{0, 3}, [2]int{0, 1}, [2]int{3, 0})
	edges := g.Edges()
	want := [][2]int{{0, 1}, {0, 3}, {2, 1}, {3, 0}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("Edges[%d] = %v, want %v (sorted order)", i, edges[i], want[i])
		}
	}
	if g.EdgeCount() != 4+4 { // 4 listed + 4 self-loops
		t.Errorf("EdgeCount = %d, want 8", g.EdgeCount())
	}
}

func TestSingletonGraphRendering(t *testing.T) {
	g := New(1)
	if got := g.String(); got != "G(1){}" {
		t.Errorf("String = %q", got)
	}
	dot := g.DOT("solo")
	if !strings.Contains(dot, "digraph solo") || strings.Contains(dot, "->") {
		t.Errorf("DOT for singleton: %s", dot)
	}
	if !g.IsRooted() || !g.IsNonSplit() || !g.IsComplete() {
		t.Error("singleton graph predicates wrong")
	}
}

// TestDeafIdempotent: making an agent deaf twice equals once, and making
// everyone deaf yields the identity graph.
func TestDeafIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		g := Random(rng, n, 0.5)
		i := rng.Intn(n)
		once := Deaf(g, i)
		twice := Deaf(once, i)
		if !once.Equal(twice) {
			t.Fatalf("Deaf not idempotent on %v", g)
		}
		all := g
		for j := 0; j < n; j++ {
			all = Deaf(all, j)
		}
		if !all.Equal(New(n)) {
			t.Fatalf("deafening everyone should give the identity graph, got %v", all)
		}
	}
}

// TestProductRootMonotonicity: the roots of a product of two graphs
// sharing a common root r include r.
func TestProductRootMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		r := rng.Intn(n)
		mk := func() Graph {
			b := NewBuilder(n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j && rng.Float64() < 0.3 {
						b.Edge(i, j)
					}
				}
			}
			order := rng.Perm(n)
			for k, v := range order {
				if v == r {
					order[0], order[k] = order[k], order[0]
				}
			}
			for k := 1; k < n; k++ {
				b.Edge(order[rng.Intn(k)], order[k])
			}
			return b.Graph()
		}
		g, h := mk(), mk()
		if g.Roots()&(1<<uint(r)) == 0 || h.Roots()&(1<<uint(r)) == 0 {
			t.Fatal("construction broken: r not a root")
		}
		p := Product(g, h)
		if p.Roots()&(1<<uint(r)) == 0 {
			t.Fatalf("common root %d lost in product", r)
		}
	}
}
