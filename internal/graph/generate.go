package graph

import (
	"fmt"
	"math/rand"
)

// This file enumerates and samples communication graphs. Enumeration is
// exponential in n*(n-1) and is only offered for very small n, where the
// solvability machinery and the valency explorer need exhaustive sets.

// maxEnumerateNodes bounds exhaustive enumeration: n=4 already yields
// 2^12 = 4096 graphs; n=5 would yield 2^20, which is still tractable but
// pointless for the experiments, so we stop there.
const maxEnumerateNodes = 5

// EnumerateAll returns every communication graph on n nodes (self-loops
// mandatory), in a deterministic order. It returns an error for n above
// the enumeration cap.
func EnumerateAll(n int) ([]Graph, error) {
	checkN(n)
	if n > maxEnumerateNodes {
		return nil, fmt.Errorf("graph: refusing to enumerate 2^%d graphs (n=%d > %d)",
			n*(n-1), n, maxEnumerateNodes)
	}
	free := n - 1 // free bits per node (all but the self-loop)
	total := 1
	for i := 0; i < n*free; i++ {
		total *= 2
	}
	graphs := make([]Graph, 0, total)
	masks := make([]uint64, n)
	var build func(node int, code int)
	_ = build
	// Iterate a single code over all n*(n-1) optional edge bits.
	for code := 0; code < total; code++ {
		c := code
		for i := 0; i < n; i++ {
			m := uint64(1) << uint(i)
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if c&1 == 1 {
					m |= 1 << uint(j)
				}
				c >>= 1
			}
			masks[i] = m
		}
		in := make([]uint64, n)
		copy(in, masks)
		graphs = append(graphs, Graph{n: n, w: 1, in: in})
	}
	return graphs, nil
}

// EnumerateRooted returns every rooted graph on n nodes. For n = 2 this is
// exactly {H0, H1, H2} up to ordering.
func EnumerateRooted(n int) ([]Graph, error) {
	all, err := EnumerateAll(n)
	if err != nil {
		return nil, err
	}
	var rooted []Graph
	for _, g := range all {
		if g.IsRooted() {
			rooted = append(rooted, g)
		}
	}
	return rooted, nil
}

// EnumerateNonSplit returns every non-split graph on n nodes.
func EnumerateNonSplit(n int) ([]Graph, error) {
	all, err := EnumerateAll(n)
	if err != nil {
		return nil, err
	}
	var ns []Graph
	for _, g := range all {
		if g.IsNonSplit() {
			ns = append(ns, g)
		}
	}
	return ns, nil
}

// Random returns a graph on n nodes in which each non-self-loop edge is
// present independently with probability p.
func Random(rng *rand.Rand, n int, p float64) Graph {
	checkN(n)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				b.Edge(i, j)
			}
		}
	}
	return b.Graph()
}

// RandomRooted returns a random rooted graph on n nodes. It samples
// Random(n, p) until the result is rooted; for p >= 1/2 the expected number
// of attempts is small. It panics if p <= 0 makes success impossible.
func RandomRooted(rng *rand.Rand, n int, p float64) Graph {
	if p <= 0 {
		panic("graph: RandomRooted requires p > 0")
	}
	for {
		g := Random(rng, n, p)
		if g.IsRooted() {
			return g
		}
	}
}

// RandomNonSplit returns a random non-split graph on n nodes: it samples
// Random(n, p) and, if the result splits some pair, patches each splitting
// pair with a common in-neighbor chosen at random.
func RandomNonSplit(rng *rand.Rand, n int, p float64) Graph {
	g := Random(rng, n, p)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.SetInRow(i, g.row(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			gi := b.row(i)
			gj := b.row(j)
			meet := false
			for wi := range gi {
				if gi[wi]&gj[wi] != 0 {
					meet = true
					break
				}
			}
			if !meet {
				k := rng.Intn(n)
				b.Edge(k, i)
				b.Edge(k, j)
			}
		}
	}
	out := b.Graph()
	if !out.IsNonSplit() {
		// A patch can never undo earlier patches (edges are only added),
		// so a single pass suffices; this is a defensive invariant check.
		panic("graph: RandomNonSplit produced a split graph")
	}
	return out
}

// RandomExactInDegree returns a random graph in which every agent hears
// itself plus exactly n-f-1 other agents, i.e. in-degree exactly n-f
// (n-f >= 1 required). This models a round-based asynchronous agent that
// steps on exactly its first n-f round messages, own message included.
func RandomExactInDegree(rng *rand.Rand, n, f int) Graph {
	checkN(n)
	if f < 0 || f >= n {
		panic(fmt.Sprintf("graph: RandomExactInDegree requires 0 <= f < n, got f=%d n=%d", f, n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		perm := rng.Perm(n)
		picked := 0
		for _, j := range perm {
			if picked == n-f-1 {
				break
			}
			if j == i {
				continue
			}
			b.Edge(j, i)
			picked++
		}
	}
	return b.Graph()
}

// RandomMinInDegree returns a random graph with minimum in-degree >= n-f,
// i.e. a member of the asynchronous-round model N_A(n, f): each agent hears
// itself and a uniformly random superset of size >= n-f of the agents.
func RandomMinInDegree(rng *rand.Rand, n, f int) Graph {
	checkN(n)
	if f < 0 || f >= n {
		panic(fmt.Sprintf("graph: RandomMinInDegree requires 0 <= f < n, got f=%d n=%d", f, n))
	}
	b := NewBuilder(n)
	row := make([]uint64, WordsFor(n))
	for i := 0; i < n; i++ {
		// Choose how many agents to drop (0..f, but never drop self).
		drop := rng.Intn(f + 1)
		perm := rng.Perm(n)
		dropped := 0
		fillFull(row, n)
		for _, j := range perm {
			if dropped == drop {
				break
			}
			if j == i {
				continue
			}
			row[j/wordBits] &^= 1 << uint(j%wordBits)
			dropped++
		}
		b.SetInRow(i, row)
	}
	return b.Graph()
}
