package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCsExamples(t *testing.T) {
	// Path: every node its own component, reverse topological order means
	// the sink comes first.
	p := PathGraph(3)
	comps := p.SCCs()
	if len(comps) != 3 {
		t.Fatalf("path SCCs = %v, want 3 singletons", comps)
	}
	if comps[0][0] != 2 || comps[2][0] != 0 {
		t.Errorf("path SCC order %v, want sink first", comps)
	}
	// Cycle: one component.
	c := Cycle(4)
	if comps := c.SCCs(); len(comps) != 1 || len(comps[0]) != 4 {
		t.Errorf("cycle SCCs = %v, want one of size 4", comps)
	}
	// Two 2-cycles: two components.
	g := MustFromEdges(4, [2]int{0, 1}, [2]int{1, 0}, [2]int{2, 3}, [2]int{3, 2})
	if comps := g.SCCs(); len(comps) != 2 {
		t.Errorf("two-cycles SCCs = %v, want 2", comps)
	}
}

func TestSCCsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		g := Random(rng, n, 0.3)
		comps := g.SCCs()
		seen := make([]bool, n)
		for _, comp := range comps {
			for _, v := range comp {
				if seen[v] {
					t.Fatalf("node %d in two components: %v", v, comps)
				}
				seen[v] = true
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("node %d missing from %v", v, comps)
			}
		}
		// Mutual reachability within components; edges between components
		// respect reverse topological order.
		for ci, comp := range comps {
			for _, u := range comp {
				for _, v := range comp {
					if g.ReachMask(u)&(1<<uint(v)) == 0 {
						t.Fatalf("component %d not strongly connected: %d !-> %d", ci, u, v)
					}
				}
			}
		}
	}
}

// TestRootsViaSCCMatchesRoots cross-validates the two root computations
// on random graphs — a classic independent-implementations check.
func TestRootsViaSCCMatchesRoots(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		g := Random(rng, n, rng.Float64()*0.6)
		return g.Roots() == g.RootsViaSCC()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// And on the paper's families.
	fams := []Graph{H(0), H(1), H(2), Psi(5, 0), Psi(6, 2), Deaf(Complete(4), 1),
		SilenceBlock(6, 2, 1), Star(5, 3), Cycle(5), PathGraph(4), New(3), Complete(6)}
	for _, g := range fams {
		if g.Roots() != g.RootsViaSCC() {
			t.Errorf("root mismatch on %v: %b vs %b", g, g.Roots(), g.RootsViaSCC())
		}
	}
}

func TestSCCReverseTopologicalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		g := Random(rng, n, 0.3)
		comps := g.SCCs()
		pos := make([]int, n)
		for ci, comp := range comps {
			for _, v := range comp {
				pos[v] = ci
			}
		}
		for _, e := range g.Edges() {
			if pos[e[0]] < pos[e[1]] {
				t.Fatalf("edge %v goes from earlier to later component in %v of %v", e, comps, g)
			}
		}
	}
}
