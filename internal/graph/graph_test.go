package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNewIsIdentity(t *testing.T) {
	for _, n := range []int{1, 2, 5, 64} {
		g := New(n)
		if g.N() != n {
			t.Fatalf("N() = %d, want %d", g.N(), n)
		}
		for i := 0; i < n; i++ {
			if got := g.InMask(i); got != 1<<uint(i) {
				t.Errorf("n=%d: InMask(%d) = %x, want self-loop only", n, i, got)
			}
			if !g.HasEdge(i, i) {
				t.Errorf("n=%d: missing self-loop at %d", n, i)
			}
		}
		if g.EdgeCount() != n {
			t.Errorf("n=%d: EdgeCount = %d, want %d self-loops", n, g.EdgeCount(), n)
		}
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -1, MaxNodes + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestCompleteProperties(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7} {
		g := Complete(n)
		if !g.IsComplete() {
			t.Errorf("Complete(%d) not complete", n)
		}
		if !g.IsRooted() {
			t.Errorf("Complete(%d) not rooted", n)
		}
		if !g.IsNonSplit() {
			t.Errorf("Complete(%d) not non-split", n)
		}
		if g.Roots() != fullMask(n) {
			t.Errorf("Complete(%d): Roots = %x, want all", n, g.Roots())
		}
	}
}

func TestCyclePathStar(t *testing.T) {
	c := Cycle(4)
	if !c.IsRooted() || c.Roots() != fullMask(4) {
		t.Errorf("Cycle(4): every node should be a root, got %x", c.Roots())
	}
	p := PathGraph(4)
	if p.Roots() != 1 {
		t.Errorf("PathGraph(4): only node 0 should be a root, got %x", p.Roots())
	}
	s := Star(5, 2)
	if s.Roots() != 1<<2 {
		t.Errorf("Star(5,2): only center should be a root, got %x", s.Roots())
	}
	if s.IsNonSplit() != true {
		t.Errorf("Star(5,2) should be non-split (center feeds everyone)")
	}
	if got := len(s.Out(2)); got != 5 {
		t.Errorf("Star(5,2): center out-degree = %d, want 5", got)
	}
}

func TestFromEdgesValidation(t *testing.T) {
	if _, err := FromEdges(3, [2]int{0, 3}); err == nil {
		t.Error("FromEdges accepted out-of-range target")
	}
	if _, err := FromEdges(3, [2]int{-1, 0}); err == nil {
		t.Error("FromEdges accepted negative source")
	}
	g, err := FromEdges(3, [2]int{0, 1}, [2]int{1, 2})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(2, 0) {
		t.Errorf("FromEdges wrong edges: %v", g)
	}
}

func TestFromInMasksValidation(t *testing.T) {
	if _, err := FromInMasks(2, []uint64{0b01, 0b01}); err == nil {
		t.Error("FromInMasks accepted missing self-loop")
	}
	if _, err := FromInMasks(2, []uint64{0b101, 0b10}); err == nil {
		t.Error("FromInMasks accepted out-of-range bit")
	}
	if _, err := FromInMasks(2, []uint64{0b01}); err == nil {
		t.Error("FromInMasks accepted wrong mask count")
	}
	g, err := FromInMasks(2, []uint64{0b11, 0b10})
	if err != nil {
		t.Fatalf("FromInMasks: %v", err)
	}
	if !g.Equal(H(2)) {
		t.Errorf("FromInMasks = %v, want H2", g)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		g := Random(rng, n, 0.4)
		back, err := FromKey(g.Key())
		if err != nil {
			t.Fatalf("FromKey(%q): %v", g.Key(), err)
		}
		if !back.Equal(g) {
			t.Fatalf("round trip failed: %v -> %q -> %v", g, g.Key(), back)
		}
	}
	for _, bad := range []string{"", "3", "x:1,2,3", "2:1", "2:3,zz", "99:0,0"} {
		if _, err := FromKey(bad); err == nil {
			t.Errorf("FromKey(%q) succeeded, want error", bad)
		}
	}
}

func TestInOutConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(7)
		g := Random(rng, n, 0.5)
		for i := 0; i < n; i++ {
			for _, j := range g.Out(i) {
				if !g.HasEdge(i, j) {
					t.Fatalf("Out(%d) lists %d but edge absent", i, j)
				}
			}
			for _, j := range g.In(i) {
				if !g.HasEdge(j, i) {
					t.Fatalf("In(%d) lists %d but edge absent", i, j)
				}
			}
			if g.OutMask(i) != NodesToMask(g.Out(i)) {
				t.Fatalf("OutMask/Out mismatch at %d", i)
			}
			if g.InDegree(i) != len(g.In(i)) {
				t.Fatalf("InDegree/In mismatch at %d", i)
			}
		}
	}
}

func TestProductDefinition(t *testing.T) {
	// Edge (i,j) in G∘H iff exists k: (i,k) in G and (k,j) in H.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		g := Random(rng, n, 0.4)
		h := Random(rng, n, 0.4)
		p := Product(g, h)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := false
				for k := 0; k < n; k++ {
					if g.HasEdge(i, k) && h.HasEdge(k, j) {
						want = true
						break
					}
				}
				if p.HasEdge(i, j) != want {
					t.Fatalf("product edge (%d,%d): got %v want %v\nG=%v\nH=%v", i, j, p.HasEdge(i, j), want, g, h)
				}
			}
		}
	}
}

func TestProductAssociativeAndIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		a := Random(rng, n, 0.4)
		b := Random(rng, n, 0.4)
		c := Random(rng, n, 0.4)
		left := Product(Product(a, b), c)
		right := Product(a, Product(b, c))
		if !left.Equal(right) {
			t.Fatalf("product not associative for\n%v\n%v\n%v", a, b, c)
		}
		id := New(n)
		if !Product(id, a).Equal(a) || !Product(a, id).Equal(a) {
			t.Fatalf("identity graph is not a product identity for %v", a)
		}
	}
}

// TestProductOfRootedIsNonSplit machine-checks the substrate theorem from
// Charron-Bost et al. (ICALP'15) that the paper relies on: any product of
// n-1 rooted graphs with n nodes is non-split.
func TestProductOfRootedIsNonSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 3, 4, 5, 6, 7} {
		for trial := 0; trial < 25; trial++ {
			gs := make([]Graph, n-1)
			for i := range gs {
				gs[i] = RandomRooted(rng, n, 0.3)
			}
			p := ProductAll(gs...)
			if !p.IsNonSplit() {
				t.Fatalf("n=%d: product of %d rooted graphs splits: %v", n, n-1, p)
			}
		}
	}
}

func TestRootsExamples(t *testing.T) {
	tests := []struct {
		name  string
		g     Graph
		roots uint64
	}{
		{"identity2", New(2), 0},
		{"H0", H(0), 0b11},
		{"H1", H(1), 0b01},
		{"H2", H(2), 0b10},
		{"path3", PathGraph(3), 0b001},
		{"two-cliques", MustFromEdges(4, [2]int{0, 1}, [2]int{1, 0}, [2]int{2, 3}, [2]int{3, 2}), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Roots(); got != tt.roots {
				t.Errorf("Roots(%v) = %b, want %b", tt.g, got, tt.roots)
			}
		})
	}
}

func TestNonSplitExamples(t *testing.T) {
	tests := []struct {
		name string
		g    Graph
		want bool
	}{
		{"identity3", New(3), false},
		{"complete3", Complete(3), true},
		{"H0", H(0), true},
		{"H1", H(1), true}, // 0 is common in-neighbor of both
		{"H2", H(2), true},
		{"star", Star(4, 0), true},
		// Cycle(3): in(0) = {2,0}, in(1) = {0,1}, in(2) = {1,2}.
		// Pairs: (0,1) share 0, (0,2) share 2, (1,2) share 1 -> non-split.
		{"cycle3", Cycle(3), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.IsNonSplit(); got != tt.want {
				t.Errorf("IsNonSplit(%v) = %v, want %v", tt.g, got, tt.want)
			}
		})
	}
	// A genuinely split graph: two disjoint self-feeding pairs.
	split := MustFromEdges(4, [2]int{0, 1}, [2]int{2, 3})
	if split.IsNonSplit() {
		t.Errorf("disjoint pairs graph should split")
	}
}

func TestNonSplitImpliesRooted(t *testing.T) {
	// Every non-split graph is rooted (folklore; the converse fails).
	all, err := EnumerateAll(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range all {
		if g.IsNonSplit() && !g.IsRooted() {
			t.Fatalf("non-split graph %v is not rooted", g)
		}
	}
}

func TestReachMask(t *testing.T) {
	g := PathGraph(4)
	if got := g.ReachMask(0); got != 0b1111 {
		t.Errorf("ReachMask(0) = %b, want 1111", got)
	}
	if got := g.ReachMask(2); got != 0b1100 {
		t.Errorf("ReachMask(2) = %b, want 1100", got)
	}
	if got := g.ReachMask(3); got != 0b1000 {
		t.Errorf("ReachMask(3) = %b, want 1000", got)
	}
}

func TestInMaskSetAndInsOn(t *testing.T) {
	g := MustFromEdges(3, [2]int{0, 1}, [2]int{2, 1})
	// In_{1,2}(g) = in(1) ∪ in(2) = {0,1,2} ∪ {2} = {0,1,2}
	if got := g.InMaskSet(0b110); got != 0b111 {
		t.Errorf("InMaskSet = %b, want 111", got)
	}
	h := MustFromEdges(3, [2]int{0, 1}, [2]int{2, 1}, [2]int{1, 0})
	if !InsOn(g, h, 0b110) {
		t.Error("g,h agree on nodes 1,2 but InsOn says no")
	}
	if InsOn(g, h, 0b001) {
		t.Error("g,h differ on node 0 but InsOn says yes")
	}
	if InsOn(g, Complete(4), 0) {
		t.Error("InsOn across sizes should be false")
	}
}

func TestStringAndDOT(t *testing.T) {
	g := MustFromEdges(3, [2]int{0, 1}, [2]int{1, 2})
	if got, want := g.String(), "G(3){0->1 1->2}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	dot := g.DOT("g")
	for _, frag := range []string{"digraph g {", "0 -> 1;", "1 -> 2;"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
}
