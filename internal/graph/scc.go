package graph

import (
	"math/bits"
	"sort"
)

// SCCs returns the strongly connected components of the graph in reverse
// topological order of the condensation (every edge between components
// goes from a later to an earlier component in the returned slice), each
// component sorted by node id. Tarjan's algorithm, iterative within the
// recursion via an explicit low-link stack.
//
// SCC structure underlies root analysis: the roots of a graph are exactly
// the members of the unique source component of the condensation when
// that component reaches every other component, and there are no roots
// otherwise. RootsViaSCC (and the multi-word sccRootsSet behind RootsSet)
// implements that characterization; the test suite cross-validates it
// against the reachability-based Roots.
func (g Graph) SCCs() [][]int {
	n, w := g.n, g.w
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	counter := 0

	// Out-neighbor rows once (the transpose of the in-rows), for edge
	// iteration.
	out := make([]uint64, n*w)
	for j := 0; j < n; j++ {
		row := g.row(j)
		jw, jb := j/wordBits, uint64(1)<<uint(j%wordBits)
		for wi, m := range row {
			base := wi * wordBits
			for m != 0 {
				i := base + bits.TrailingZeros64(m)
				m &= m - 1
				out[i*w+jw] |= jb
			}
		}
	}

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for wi, m := range out[v*w : (v+1)*w] {
			base := wi * wordBits
			for m != 0 {
				u := base + bits.TrailingZeros64(m)
				m &= m - 1
				if u == v {
					continue
				}
				if index[u] < 0 {
					strongconnect(u)
					if low[u] < low[v] {
						low[v] = low[u]
					}
				} else if onStack[u] && index[u] < low[v] {
					low[v] = index[u]
				}
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[u] = false
				comp = append(comp, u)
				if u == v {
					break
				}
			}
			sort.Ints(comp)
			comps = append(comps, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strongconnect(v)
		}
	}
	return comps
}

// sccRootsSet computes the root set through the condensation for any word
// count: a node is a root iff its component is the unique source of the
// condensation and that component's reachable set covers everything.
func (g Graph) sccRootsSet() []uint64 {
	comps := g.SCCs()
	empty := make([]uint64, g.w)
	// Component id per node.
	id := make([]int, g.n)
	for ci, comp := range comps {
		for _, v := range comp {
			id[v] = ci
		}
	}
	// Sources: components with no incoming edge from another component.
	incoming := make([]bool, len(comps))
	for j := 0; j < g.n; j++ {
		for wi, m := range g.row(j) {
			if wi == j/wordBits {
				m &^= 1 << uint(j%wordBits)
			}
			base := wi * wordBits
			for m != 0 {
				i := base + bits.TrailingZeros64(m)
				m &= m - 1
				if id[i] != id[j] {
					incoming[id[j]] = true
				}
			}
		}
	}
	source := -1
	for ci, has := range incoming {
		if !has {
			if source >= 0 {
				return empty // several sources: nobody reaches everyone
			}
			source = ci
		}
	}
	// The single source must reach all nodes.
	rep := comps[source][0]
	if SetCount(g.ReachSet(rep)) != g.n {
		return empty
	}
	return NodesToSet(g.n, comps[source])
}

// RootsViaSCC computes the root set through the condensation: a node is a
// root iff its component reaches every component, which for a DAG holds
// iff the component is the unique source and its reachable set covers
// everything. It returns a single-word mask and panics for n > 64; use
// RootsSet there.
func (g Graph) RootsViaSCC() uint64 {
	g.single("RootsViaSCC")
	return g.sccRootsSet()[0]
}
