package graph

import (
	"math/bits"
	"sort"
)

// SCCs returns the strongly connected components of the graph in reverse
// topological order of the condensation (every edge between components
// goes from a later to an earlier component in the returned slice), each
// component sorted by node id. Tarjan's algorithm, iterative within the
// recursion via an explicit low-link stack kept small by n <= 64.
//
// SCC structure underlies root analysis: the roots of a graph are exactly
// the members of the unique source component of the condensation when
// that component reaches every other component, and there are no roots
// otherwise. RootsViaSCC implements that characterization; the test suite
// cross-validates it against the reachability-based Roots.
func (g Graph) SCCs() [][]int {
	n := g.n
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	counter := 0

	// Out-neighbor masks once, for edge iteration.
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = g.OutMask(i)
	}

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		m := out[v]
		for m != 0 {
			w := bits.TrailingZeros64(m)
			m &= m - 1
			if w == v {
				continue
			}
			if index[w] < 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			comps = append(comps, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strongconnect(v)
		}
	}
	return comps
}

// RootsViaSCC computes the root set through the condensation: a node is a
// root iff its component reaches every component, which for a DAG holds
// iff the component is the unique source and its reachable set covers
// everything.
func (g Graph) RootsViaSCC() uint64 {
	comps := g.SCCs()
	// Component id per node.
	id := make([]int, g.n)
	for ci, comp := range comps {
		for _, v := range comp {
			id[v] = ci
		}
	}
	// Sources: components with no incoming edge from another component.
	incoming := make([]bool, len(comps))
	for j := 0; j < g.n; j++ {
		m := g.in[j] &^ (1 << uint(j))
		for m != 0 {
			i := bits.TrailingZeros64(m)
			m &= m - 1
			if id[i] != id[j] {
				incoming[id[j]] = true
			}
		}
	}
	var sources []int
	for ci, has := range incoming {
		if !has {
			sources = append(sources, ci)
		}
	}
	if len(sources) != 1 {
		return 0 // several sources: nobody reaches everyone
	}
	// The single source must reach all nodes.
	rep := comps[sources[0]][0]
	if g.ReachMask(rep) != fullMask(g.n) {
		return 0
	}
	var roots uint64
	for _, v := range comps[sources[0]] {
		roots |= 1 << uint(v)
	}
	return roots
}
