package graph

import "fmt"

// This file constructs the graph families the paper's bounds are built
// from: the two-agent graphs H0, H1, H2 (Figure 1), the deaf(G) family
// (Section 5), the Ψ graphs and σ blocks (Figure 2, Section 6), and the
// silenced-block graphs of Lemma 24 (Section 8).

// H returns one of the three rooted (and non-split) communication graphs on
// two agents from Figure 1 of the paper:
//
//	H(0): both messages received      (0 <-> 1)
//	H(1): agent 1 hears agent 0 only  (0 -> 1); agent 0 is deaf
//	H(2): agent 0 hears agent 1 only  (1 -> 0); agent 1 is deaf
//
// These are all rooted graphs on two nodes, and {H0, H1, H2} is the weakest
// two-agent model in which asymptotic consensus is solvable. Theorem 1
// proves the 1/3 contraction lower bound for any model containing all
// three.
func H(k int) Graph {
	switch k {
	case 0:
		return Complete(2)
	case 1:
		return MustFromEdges(2, [2]int{0, 1})
	case 2:
		return MustFromEdges(2, [2]int{1, 0})
	default:
		panic(fmt.Sprintf("graph: H(%d) undefined, want 0..2", k))
	}
}

// HFamily returns {H0, H1, H2}, the full set of rooted two-agent graphs.
func HFamily() []Graph {
	return []Graph{H(0), H(1), H(2)}
}

// Deaf returns the graph F_i obtained from g by making agent i deaf:
// all incoming edges of i except the self-loop are removed (paper,
// Section 5).
func Deaf(g Graph, i int) Graph {
	checkNode(g.n, i)
	in := make([]uint64, len(g.in))
	copy(in, g.in)
	row := in[i*g.w : (i+1)*g.w]
	for wi := range row {
		row[wi] = 0
	}
	row[i/wordBits] = 1 << uint(i%wordBits)
	return Graph{n: g.n, w: g.w, in: in}
}

// IsDeaf reports whether agent i is deaf in g, i.e. hears only itself.
func (g Graph) IsDeaf(i int) bool {
	checkNode(g.n, i)
	for wi, m := range g.row(i) {
		want := uint64(0)
		if wi == i/wordBits {
			want = 1 << uint(i%wordBits)
		}
		if m != want {
			return false
		}
	}
	return true
}

// DeafFamily returns deaf(g) = {F_1, ..., F_n} where F_i makes agent i deaf
// in g. Theorem 2 proves the 1/2 contraction lower bound for any model of
// n >= 3 agents containing deaf(g) for some graph g.
func DeafFamily(g Graph) []Graph {
	fam := make([]Graph, g.n)
	for i := 0; i < g.n; i++ {
		fam[i] = Deaf(g, i)
	}
	return fam
}

// Psi returns the rooted communication graph Ψ_i of Figure 2 for
// i in {0, 1, 2} on n >= 4 nodes. Translated to 0-based indices from the
// paper's 1-based ones:
//
//   - nodes 3..n-2 form a path with edges j -> j+1,
//   - the two agents of {0, 1, 2} other than i have node n-1 as their
//     in-neighbor and node 3 as their out-neighbor,
//   - agent i has node 3 as its out-neighbor and hears nobody (i is deaf).
//
// Agent i is the unique root. Theorem 3 proves the (n-2)-th-root-of-1/2
// contraction lower bound for models containing the Ψ graphs.
func Psi(n, i int) Graph {
	if n < 4 {
		panic(fmt.Sprintf("graph: Psi requires n >= 4, got %d", n))
	}
	if i < 0 || i > 2 {
		panic(fmt.Sprintf("graph: Psi trio agent %d out of {0,1,2}", i))
	}
	b := NewBuilder(n)
	for j := 3; j+1 <= n-1; j++ {
		b.Edge(j, j+1)
	}
	for u := 0; u < 3; u++ {
		b.Edge(u, 3)
		if u != i {
			b.Edge(n-1, u)
		}
	}
	return b.Graph()
}

// PsiFamily returns {Ψ_0, Ψ_1, Ψ_2} on n nodes.
func PsiFamily(n int) []Graph {
	return []Graph{Psi(n, 0), Psi(n, 1), Psi(n, 2)}
}

// SigmaBlock returns σ_i: the sequence consisting of n-2 copies of Ψ_i.
// The lower-bound adversary of Theorem 3 plays whole σ blocks; after one
// block, the two trio agents other than i cannot distinguish which block
// was played (Lemma 14).
func SigmaBlock(n, i int) []Graph {
	psi := Psi(n, i)
	block := make([]Graph, n-2)
	for k := range block {
		block[k] = psi
	}
	return block
}

// SilenceBlock returns the graph K_r of Lemma 24 (made self-loop-correct):
// every agent hears every agent except the agents in block r, where blocks
// partition [n] into ⌈n/f⌉ chunks of size at most f (block r covers nodes
// r*f .. min((r+1)*f, n)-1, r counted from 0). Members of the silenced
// block additionally hear themselves. Its root set is exactly the
// complement of block r.
func SilenceBlock(n, f, r int) Graph {
	checkN(n)
	if f < 1 || f >= n {
		panic(fmt.Sprintf("graph: SilenceBlock requires 1 <= f < n, got f=%d n=%d", f, n))
	}
	lo := r * f
	hi := lo + f
	if hi > n {
		hi = n
	}
	if lo < 0 || lo >= n {
		panic(fmt.Sprintf("graph: SilenceBlock block %d out of range for n=%d f=%d", r, n, f))
	}
	base := make([]uint64, WordsFor(n))
	fillFull(base, n)
	for i := lo; i < hi; i++ {
		base[i/wordBits] &^= 1 << uint(i%wordBits)
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.SetInRow(i, base) // SetInRow restores i's self-loop
	}
	return b.Graph()
}

// NumBlocks returns ⌈n/f⌉, the number of silenced blocks for Lemma 24.
func NumBlocks(n, f int) int {
	return (n + f - 1) / f
}

// Lemma24Chain constructs, for two graphs g and h on n nodes with minimum
// in-degree >= n-f, the chain H_0 = g, H_1, ..., H_q = h and the witnesses
// K_1, ..., K_q of Lemma 24 with q = ⌈n/f⌉:
//
//	In_i(H_r) = In_i(g) for i < r*f, and In_i(h) otherwise,
//	K_r       = SilenceBlock(n, f, r-1).
//
// Every H_r and K_r again has minimum in-degree >= n-f, and consecutive
// chain members agree on the in-neighborhoods of all roots of K_r, which
// is exactly the alpha_{N,K_r} relation of Definition 15. The chain proves
// that the alpha-diameter of the asynchronous-round model N_A is at most
// ⌈n/f⌉, and with it the 1/(⌈n/f⌉+1) round-based contraction bound of
// Theorem 6.
func Lemma24Chain(g, h Graph, f int) (hs, ks []Graph, err error) {
	n := g.n
	if h.n != n {
		return nil, nil, fmt.Errorf("graph: Lemma24Chain size mismatch %d vs %d", n, h.n)
	}
	if f < 1 || 2*f >= n {
		return nil, nil, fmt.Errorf("graph: Lemma24Chain requires 0 < f < n/2, got f=%d n=%d", f, n)
	}
	for i := 0; i < n; i++ {
		if g.InDegree(i) < n-f || h.InDegree(i) < n-f {
			return nil, nil, fmt.Errorf("graph: node %d has in-degree below n-f=%d", i, n-f)
		}
	}
	q := NumBlocks(n, f)
	hs = make([]Graph, q+1)
	ks = make([]Graph, q)
	for r := 0; r <= q; r++ {
		// Nodes below r*f have already switched to h's in-neighborhoods;
		// the rest still carry g's. (The paper states the mixture with g
		// and h swapped, which contradicts its own H_0 = G, H_q = H; we
		// follow the stated endpoints.)
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			if i < r*f {
				b.SetInRow(i, h.row(i))
			} else {
				b.SetInRow(i, g.row(i))
			}
		}
		hs[r] = b.Graph()
	}
	for r := 1; r <= q; r++ {
		ks[r-1] = SilenceBlock(n, f, r-1)
	}
	return hs, ks, nil
}

// MinInDegree returns the smallest in-degree over all nodes (self-loops
// counted). Graphs of the asynchronous-round model N_A(n, f) are exactly
// those with MinInDegree >= n-f.
func (g Graph) MinInDegree() int {
	min := g.n + 1
	for i := 0; i < g.n; i++ {
		if d := g.InDegree(i); d < min {
			min = d
		}
	}
	return min
}
