package graph

import (
	"math/rand"
	"testing"
)

func TestHFamilyMatchesFigure1(t *testing.T) {
	h0, h1, h2 := H(0), H(1), H(2)
	if !h0.HasEdge(0, 1) || !h0.HasEdge(1, 0) {
		t.Error("H0 should have both cross edges")
	}
	if !h1.HasEdge(0, 1) || h1.HasEdge(1, 0) {
		t.Error("H1 should have only 0->1")
	}
	if !h2.HasEdge(1, 0) || h2.HasEdge(0, 1) {
		t.Error("H2 should have only 1->0")
	}
	// Agent 0 is deaf in H1, agent 1 is deaf in H2 (paper, Theorem 1 proof).
	if !h1.IsDeaf(0) {
		t.Error("agent 0 should be deaf in H1")
	}
	if !h2.IsDeaf(1) {
		t.Error("agent 1 should be deaf in H2")
	}
	for k, g := range HFamily() {
		if !g.IsRooted() {
			t.Errorf("H%d not rooted", k)
		}
		if !g.IsNonSplit() {
			t.Errorf("H%d not non-split", k)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("H(3) did not panic")
			}
		}()
		H(3)
	}()
}

// TestHFamilyIsAllRootedTwoAgentGraphs checks the paper's remark that for
// n = 2 there are exactly three rooted communication graphs, all non-split.
func TestHFamilyIsAllRootedTwoAgentGraphs(t *testing.T) {
	rooted, err := EnumerateRooted(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rooted) != 3 {
		t.Fatalf("got %d rooted graphs on 2 nodes, want 3", len(rooted))
	}
	for _, g := range rooted {
		found := false
		for _, h := range HFamily() {
			if g.Equal(h) {
				found = true
			}
		}
		if !found {
			t.Errorf("rooted 2-agent graph %v is not an H graph", g)
		}
		if !g.IsNonSplit() {
			t.Errorf("rooted 2-agent graph %v should be non-split", g)
		}
	}
}

func TestDeaf(t *testing.T) {
	g := Complete(4)
	f2 := Deaf(g, 2)
	if !f2.IsDeaf(2) {
		t.Error("agent 2 should be deaf in Deaf(K4, 2)")
	}
	for i := 0; i < 4; i++ {
		if i != 2 && f2.InMask(i) != g.InMask(i) {
			t.Errorf("Deaf changed in-neighbors of %d", i)
		}
	}
	// Deaf must not mutate the original.
	if !g.IsComplete() {
		t.Error("Deaf mutated its argument")
	}
	fam := DeafFamily(g)
	if len(fam) != 4 {
		t.Fatalf("DeafFamily length %d, want 4", len(fam))
	}
	for i, f := range fam {
		if !f.IsDeaf(i) {
			t.Errorf("agent %d not deaf in F_%d", i, i)
		}
		if !f.IsRooted() {
			t.Errorf("F_%d of K4 should be rooted (the deaf agent is a root)", i)
		}
		if !f.IsNonSplit() {
			t.Errorf("F_%d of K4 should be non-split", i)
		}
	}
}

// TestDeafFamilyPairwiseInNeighborStructure checks the structural fact the
// Theorem 2 proof rests on: agent i is deaf in F_i and has the same
// in-neighbors in all F_j with j != i.
func TestDeafFamilyPairwiseInNeighborStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(5)
		g := Random(rng, n, 0.5)
		fam := DeafFamily(g)
		for i := 0; i < n; i++ {
			if !fam[i].IsDeaf(i) {
				t.Fatalf("agent %d not deaf in F_%d", i, i)
			}
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if fam[j].InMask(i) != g.InMask(i) {
					t.Fatalf("agent %d in-neighbors differ between G and F_%d", i, j)
				}
			}
		}
	}
}

func TestPsiStructure(t *testing.T) {
	for _, n := range []int{4, 5, 6, 8} {
		for i := 0; i < 3; i++ {
			psi := Psi(n, i)
			if !psi.IsDeaf(i) {
				t.Errorf("n=%d: trio agent %d should be deaf in Psi_%d", n, i, i)
			}
			if psi.Roots() != 1<<uint(i) {
				t.Errorf("n=%d: Psi_%d roots = %b, want only agent %d", n, i, psi.Roots(), i)
			}
			// All trio agents feed node 3.
			for u := 0; u < 3; u++ {
				if !psi.HasEdge(u, 3) {
					t.Errorf("n=%d: Psi_%d missing edge %d->3", n, i, u)
				}
			}
			// The two non-i trio agents hear the last node.
			for u := 0; u < 3; u++ {
				want := u != i
				if got := psi.HasEdge(n-1, u); got != want {
					t.Errorf("n=%d: Psi_%d edge (n-1)->%d = %v, want %v", n, i, u, got, want)
				}
			}
			// Path along 3..n-1.
			for j := 3; j+1 <= n-1; j++ {
				if !psi.HasEdge(j, j+1) {
					t.Errorf("n=%d: Psi_%d missing path edge %d->%d", n, i, j, j+1)
				}
			}
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Psi(3, 0) did not panic")
			}
		}()
		Psi(3, 0)
	}()
}

// TestPsiFigure2 pins the exact edge set for n = 6, i = 0, matching
// Figure 2 of the paper (nodes relabeled 1..6 -> 0..5, i=0, j=1, l=2).
func TestPsiFigure2(t *testing.T) {
	want := MustFromEdges(6,
		[2]int{0, 3}, [2]int{1, 3}, [2]int{2, 3}, // trio feeds 4 (paper numbering)
		[2]int{3, 4}, [2]int{4, 5}, // path 4->5->6
		[2]int{5, 1}, [2]int{5, 2}, // 6 feeds j and l
	)
	if got := Psi(6, 0); !got.Equal(want) {
		t.Errorf("Psi(6,0) = %v, want %v", got, want)
	}
}

func TestSigmaBlock(t *testing.T) {
	block := SigmaBlock(6, 1)
	if len(block) != 4 {
		t.Fatalf("SigmaBlock(6,1) length %d, want n-2 = 4", len(block))
	}
	for _, g := range block {
		if !g.Equal(Psi(6, 1)) {
			t.Errorf("sigma block member differs from Psi_1")
		}
	}
	// The product over a sigma block is rooted (information from the root
	// has spread); this is what makes concatenations of sigma blocks valid
	// rooted communication patterns.
	p := ProductAll(block...)
	if !p.IsRooted() {
		t.Errorf("product over sigma block not rooted: %v", p)
	}
}

func TestSilenceBlock(t *testing.T) {
	n, f := 6, 2
	q := NumBlocks(n, f)
	if q != 3 {
		t.Fatalf("NumBlocks(6,2) = %d, want 3", q)
	}
	for r := 0; r < q; r++ {
		k := SilenceBlock(n, f, r)
		if k.MinInDegree() < n-f {
			t.Errorf("K_%d has min in-degree %d < n-f", r, k.MinInDegree())
		}
		blockMask := uint64(0b11) << uint(r*f)
		if got, want := k.Roots(), fullMask(n)&^blockMask; got != want {
			t.Errorf("K_%d roots = %b, want %b", r, got, want)
		}
		// Nobody outside the block hears the block.
		for i := 0; i < n; i++ {
			if blockMask&(1<<uint(i)) != 0 {
				continue
			}
			if k.InMask(i)&blockMask != 0 {
				t.Errorf("K_%d: node %d hears the silenced block", r, i)
			}
		}
	}
	// Ragged last block: n=5, f=2 -> blocks {0,1},{2,3},{4}.
	k2 := SilenceBlock(5, 2, 2)
	if k2.InMask(0)&(1<<4) != 0 {
		t.Error("SilenceBlock(5,2,2): node 0 still hears node 4")
	}
}

func TestLemma24Chain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ n, f int }{{4, 1}, {6, 2}, {9, 3}, {7, 2}}
	for _, tc := range cases {
		g := RandomMinInDegree(rng, tc.n, tc.f)
		h := RandomMinInDegree(rng, tc.n, tc.f)
		hs, ks, err := Lemma24Chain(g, h, tc.f)
		if err != nil {
			t.Fatalf("n=%d f=%d: %v", tc.n, tc.f, err)
		}
		q := NumBlocks(tc.n, tc.f)
		if len(hs) != q+1 || len(ks) != q {
			t.Fatalf("n=%d f=%d: chain lengths %d/%d, want %d/%d", tc.n, tc.f, len(hs), len(ks), q+1, q)
		}
		if !hs[0].Equal(g) || !hs[q].Equal(h) {
			t.Errorf("n=%d f=%d: chain endpoints wrong", tc.n, tc.f)
		}
		for _, x := range hs {
			if x.MinInDegree() < tc.n-tc.f {
				t.Errorf("n=%d f=%d: chain member leaves N_A", tc.n, tc.f)
			}
		}
		// The alpha witness property: consecutive members agree on the
		// in-neighborhoods of all roots of K_r.
		for r := 1; r <= q; r++ {
			roots := ks[r-1].Roots()
			if !InsOn(hs[r-1], hs[r], roots) {
				t.Errorf("n=%d f=%d: H_%d and H_%d disagree on roots of K_%d", tc.n, tc.f, r-1, r, r)
			}
		}
	}
	// Error paths.
	if _, _, err := Lemma24Chain(Complete(4), Complete(5), 1); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, _, err := Lemma24Chain(Complete(4), Complete(4), 2); err == nil {
		t.Error("f >= n/2 accepted")
	}
	if _, _, err := Lemma24Chain(New(4), Complete(4), 1); err == nil {
		t.Error("in-degree violation accepted")
	}
}

func TestEnumerateCounts(t *testing.T) {
	all1, err := EnumerateAll(1)
	if err != nil || len(all1) != 1 {
		t.Fatalf("EnumerateAll(1) = %d graphs, err %v; want 1", len(all1), err)
	}
	all2, err := EnumerateAll(2)
	if err != nil || len(all2) != 4 {
		t.Fatalf("EnumerateAll(2) = %d graphs, err %v; want 4", len(all2), err)
	}
	all3, err := EnumerateAll(3)
	if err != nil || len(all3) != 64 {
		t.Fatalf("EnumerateAll(3) = %d graphs, err %v; want 64", len(all3), err)
	}
	// Deduplicate by key to make sure enumeration has no repeats.
	seen := map[string]bool{}
	for _, g := range all3 {
		k := g.Key()
		if seen[k] {
			t.Fatalf("duplicate graph %v in enumeration", g)
		}
		seen[k] = true
	}
	if _, err := EnumerateAll(6); err == nil {
		t.Error("EnumerateAll(6) should refuse")
	}
	ns3, err := EnumerateNonSplit(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range ns3 {
		if !g.IsNonSplit() {
			t.Fatalf("EnumerateNonSplit returned split graph %v", g)
		}
	}
	rooted3, err := EnumerateRooted(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rooted3) <= len(ns3) {
		t.Errorf("rooted graphs (%d) should strictly outnumber non-split ones (%d) at n=3",
			len(rooted3), len(ns3))
	}
}

func TestRandomGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(7)
		if g := RandomRooted(rng, n, 0.4); !g.IsRooted() {
			t.Fatal("RandomRooted returned unrooted graph")
		}
		if g := RandomNonSplit(rng, n, 0.3); !g.IsNonSplit() {
			t.Fatal("RandomNonSplit returned split graph")
		}
		f := 1 + rng.Intn(n-1)
		if g := RandomMinInDegree(rng, n, f); g.MinInDegree() < n-f {
			t.Fatalf("RandomMinInDegree(%d,%d) violated degree bound", n, f)
		}
	}
	// Determinism under a fixed seed.
	a := Random(rand.New(rand.NewSource(42)), 5, 0.5)
	b := Random(rand.New(rand.NewSource(42)), 5, 0.5)
	if !a.Equal(b) {
		t.Error("Random not deterministic under fixed seed")
	}
}

func TestBuilderReuse(t *testing.T) {
	b := NewBuilder(3)
	g1 := b.Edge(0, 1).Graph()
	g2 := b.Edge(1, 2).Graph()
	if g1.HasEdge(1, 2) {
		t.Error("builder snapshot g1 was mutated by later Edge call")
	}
	if !g2.HasEdge(0, 1) || !g2.HasEdge(1, 2) {
		t.Error("builder lost accumulated edges")
	}
}
