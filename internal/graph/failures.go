package graph

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// This file generates the communication graphs that arise from the benign
// classical failure models the paper's introduction points to (property
// (i) of non-split graphs, Section 1): synchronous rounds with crashes,
// synchronous rounds with send omissions, and asynchronous rounds with a
// minority of crashes. Each generator produces exactly the per-round
// graphs the failure model permits, and each family is non-split — which
// is what puts these classical systems inside the scope of the paper's
// non-split bounds (Theorem 2 and the midpoint algorithm's matching 1/2).

// check64 panics when n exceeds one mask word: the classical failure-model
// generators take uint64 node sets in their signatures and stay capped at
// 64 agents (the large-n plane has no use for them; scenario churn covers
// crash-style dynamics there).
func check64(n int, op string) {
	if n > wordBits {
		panic(fmt.Sprintf("graph: %s supports n <= 64, got %d", op, n))
	}
}

// SynchronousCrashRound returns the communication graph of one synchronous
// round in which the agents in the crashed set have crashed earlier (send
// nothing) and the agents in the crashing set crash during this round's
// broadcast: crashing agent i's message reaches only the recipients in
// reach[i] (a bitmask; i itself is excluded automatically because a
// crashed agent's state no longer matters — by convention it keeps its
// self-loop so the graph stays well-formed).
//
// All correct agents hear all correct agents, so any two nodes share every
// correct agent as a common in-neighbor: for crashed+crashing < n the
// graph is non-split.
func SynchronousCrashRound(n int, crashed uint64, crashing map[int]uint64) (Graph, error) {
	checkN(n)
	if n > wordBits {
		return Graph{}, fmt.Errorf("graph: SynchronousCrashRound supports n <= 64, got %d", n)
	}
	all := fullMask(n)
	if crashed&^all != 0 {
		return Graph{}, fmt.Errorf("graph: crashed set references nodes >= %d", n)
	}
	silent := crashed
	for i, reach := range crashing {
		if i < 0 || i >= n {
			return Graph{}, fmt.Errorf("graph: crashing agent %d out of range", i)
		}
		if crashed&(1<<uint(i)) != 0 {
			return Graph{}, fmt.Errorf("graph: agent %d both crashed and crashing", i)
		}
		if reach&^all != 0 {
			return Graph{}, fmt.Errorf("graph: reach set of %d references nodes >= %d", i, n)
		}
	}
	b := NewBuilder(n)
	for j := 0; j < n; j++ {
		// j hears every agent that is neither silent nor crashing...
		mask := all &^ silent
		for i := range crashing {
			mask &^= 1 << uint(i)
		}
		// ...plus any crashing agent whose final broadcast reaches j.
		for i, reach := range crashing {
			if reach&(1<<uint(j)) != 0 {
				mask |= 1 << uint(i)
			}
		}
		b.InMask(j, mask)
	}
	return b.Graph(), nil
}

// RandomSynchronousCrashRound samples a round graph with up to f agents
// crashing during the round (uncleanly, random recipient sets) on top of
// a random set of up to fPrior earlier crashes, keeping at least one
// correct agent.
func RandomSynchronousCrashRound(rng *rand.Rand, n, fPrior, f int) Graph {
	checkN(n)
	check64(n, "RandomSynchronousCrashRound")
	if fPrior+f >= n {
		panic(fmt.Sprintf("graph: crash budget %d+%d must stay below n=%d", fPrior, f, n))
	}
	perm := rng.Perm(n)
	var crashed uint64
	numPrior := rng.Intn(fPrior + 1)
	for _, i := range perm[:numPrior] {
		crashed |= 1 << uint(i)
	}
	crashing := make(map[int]uint64)
	numNow := rng.Intn(f + 1)
	for _, i := range perm[numPrior : numPrior+numNow] {
		crashing[i] = uint64(rng.Intn(1 << uint(n)))
	}
	g, err := SynchronousCrashRound(n, crashed, crashing)
	if err != nil {
		panic(err) // inputs are constructed valid
	}
	return g
}

// SendOmissionRound returns the communication graph of one synchronous
// round with send-omission faults: each faulty agent i's message is lost
// toward the recipients in omit[i] (bitmask); self-loops are unaffected
// (an agent always has its own state). Correct agents' messages are
// received by everyone.
//
// With at most n-1 faulty agents the graphs are non-split: every pair of
// nodes hears every correct agent.
func SendOmissionRound(n int, omit map[int]uint64) (Graph, error) {
	checkN(n)
	if n > wordBits {
		return Graph{}, fmt.Errorf("graph: SendOmissionRound supports n <= 64, got %d", n)
	}
	all := fullMask(n)
	for i, o := range omit {
		if i < 0 || i >= n {
			return Graph{}, fmt.Errorf("graph: faulty agent %d out of range", i)
		}
		if o&^all != 0 {
			return Graph{}, fmt.Errorf("graph: omission set of %d references nodes >= %d", i, n)
		}
	}
	b := NewBuilder(n)
	for j := 0; j < n; j++ {
		mask := all
		for i, o := range omit {
			if i != j && o&(1<<uint(j)) != 0 {
				mask &^= 1 << uint(i)
			}
		}
		b.InMask(j, mask)
	}
	return b.Graph(), nil
}

// RandomSendOmissionRound samples a round graph with up to f agents
// suffering random send omissions.
func RandomSendOmissionRound(rng *rand.Rand, n, f int) Graph {
	checkN(n)
	check64(n, "RandomSendOmissionRound")
	if f < 0 || f >= n {
		panic(fmt.Sprintf("graph: omission budget %d must stay below n=%d", f, n))
	}
	omit := make(map[int]uint64)
	perm := rng.Perm(n)
	num := rng.Intn(f + 1)
	for _, i := range perm[:num] {
		omit[i] = uint64(rng.Intn(1 << uint(n)))
	}
	g, err := SendOmissionRound(n, omit)
	if err != nil {
		panic(err)
	}
	return g
}

// CorrectCount returns the number of agents that are heard by everyone
// (a lower bound on the number of correct agents in a failure-model round
// graph).
func (g Graph) CorrectCount() int {
	count := 0
	for i := 0; i < g.n; i++ {
		wi, bit := i/wordBits, uint64(1)<<uint(i%wordBits)
		heardByAll := true
		for j := 0; j < g.n; j++ {
			if g.in[j*g.w+wi]&bit == 0 {
				heardByAll = false
				break
			}
		}
		if heardByAll {
			count++
		}
	}
	return count
}

// minorityCrashQuorumGraph is documented in RandomAsyncMinorityCrashRound.
func minorityCrashQuorumGraph(rng *rand.Rand, n, f int, crashed uint64) Graph {
	b := NewBuilder(n)
	alive := fullMask(n) &^ crashed
	aliveNodes := maskToNodes(alive)
	for j := 0; j < n; j++ {
		// Each agent hears itself plus the first n-f round messages to
		// arrive; crashed agents' messages may or may not be among them.
		// Sample a quorum of size n-f containing j from alive ∪ (a random
		// subset of crashed senders' last messages).
		candidates := append([]int(nil), aliveNodes...)
		crashedNodes := maskToNodes(crashed)
		rng.Shuffle(len(crashedNodes), func(a, b int) {
			crashedNodes[a], crashedNodes[b] = crashedNodes[b], crashedNodes[a]
		})
		candidates = append(candidates, crashedNodes...)
		mask := uint64(1) << uint(j)
		for _, i := range candidates {
			if bits.OnesCount64(mask) >= n-f {
				break
			}
			mask |= 1 << uint(i)
		}
		b.InMask(j, mask)
	}
	return b.Graph()
}

// RandomAsyncMinorityCrashRound samples the effective communication graph
// of one asynchronous round with f < n/2 crashes: each agent proceeds on
// its own message plus the first n-f-1 others to arrive, where up to f
// agents (the crashed minority) may be missing from everyone's quorums.
// Because quorums have size n-f > n/2, any two intersect: the graphs are
// non-split — the asynchronous-minority case of the paper's property (i).
func RandomAsyncMinorityCrashRound(rng *rand.Rand, n, f int) Graph {
	checkN(n)
	check64(n, "RandomAsyncMinorityCrashRound")
	if f < 0 || 2*f >= n {
		panic(fmt.Sprintf("graph: RandomAsyncMinorityCrashRound requires 0 <= f < n/2, got f=%d n=%d", f, n))
	}
	var crashed uint64
	perm := rng.Perm(n)
	num := rng.Intn(f + 1)
	for _, i := range perm[:num] {
		crashed |= 1 << uint(i)
	}
	return minorityCrashQuorumGraph(rng, n, f, crashed)
}
