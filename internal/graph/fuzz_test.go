package graph

import (
	"math/rand"
	"strings"
	"testing"
)

// FuzzFromKey checks that the Key parser never panics and that every
// successfully parsed key round-trips. Run the corpus as a plain test via
// `go test`; extend it with `go test -fuzz FuzzFromKey`.
func FuzzFromKey(f *testing.F) {
	f.Add("2:3,2")
	f.Add("3:1,2,4")
	f.Add("")
	f.Add("64:" + strings.Repeat("ffffffffffffffff,", 63) + "ffffffffffffffff")
	f.Add("1:0")
	f.Add("2:zz,qq")
	f.Add("-1:5")
	f.Add("2:3")
	f.Fuzz(func(t *testing.T, key string) {
		g, err := FromKey(key)
		if err != nil {
			return
		}
		back, err := FromKey(g.Key())
		if err != nil {
			t.Fatalf("re-parse of canonical key %q failed: %v", g.Key(), err)
		}
		if !back.Equal(g) {
			t.Fatalf("round trip changed graph: %v vs %v", g, back)
		}
	})
}

// FuzzProductInvariants checks product invariants on fuzzer-chosen seeds:
// self-loops preserved, rooted*rooted stays rooted when sharing a root,
// and product agrees with the brute-force edge definition.
func FuzzProductInvariants(f *testing.F) {
	f.Add(int64(1), 3)
	f.Add(int64(42), 7)
	f.Add(int64(-9), 2)
	f.Fuzz(func(t *testing.T, seed int64, nRaw int) {
		n := nRaw%8 + 2
		if n < 2 {
			n = -n + 2
		}
		rng := rand.New(rand.NewSource(seed))
		g := Random(rng, n, 0.4)
		h := Random(rng, n, 0.4)
		p := Product(g, h)
		for i := 0; i < n; i++ {
			if !p.HasEdge(i, i) {
				t.Fatalf("product lost self-loop at %d", i)
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := false
				for k := 0; k < n; k++ {
					if g.HasEdge(i, k) && h.HasEdge(k, j) {
						want = true
						break
					}
				}
				if p.HasEdge(i, j) != want {
					t.Fatalf("product edge (%d,%d) mismatch", i, j)
				}
			}
		}
	})
}

func TestMaxNodesBoundary(t *testing.T) {
	// Everything must work at the n = 64 representation boundary.
	g := Complete(64)
	if !g.IsRooted() || !g.IsNonSplit() || g.Roots() != ^uint64(0) {
		t.Error("Complete(64) predicates wrong")
	}
	id := New(64)
	if id.Roots() != 0 {
		t.Error("New(64) should have no roots")
	}
	p := Product(g, id)
	if !p.Equal(g) {
		t.Error("product with identity broken at n=64")
	}
	star := Star(64, 63)
	if star.Roots() != 1<<63 {
		t.Errorf("Star(64,63) roots = %x", star.Roots())
	}
	if star.ReachMask(63) != ^uint64(0) {
		t.Error("ReachMask at the top bit broken")
	}
	d := Deaf(g, 63)
	if !d.IsDeaf(63) {
		t.Error("Deaf at node 63 broken")
	}
	back, err := FromKey(g.Key())
	if err != nil || !back.Equal(g) {
		t.Errorf("Key round trip at n=64: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	if rr := RandomRooted(rng, 64, 0.2); !rr.IsRooted() {
		t.Error("RandomRooted(64) broken")
	}
	comps := Cycle(64).SCCs()
	if len(comps) != 1 || len(comps[0]) != 64 {
		t.Error("SCCs at n=64 broken")
	}
}

func TestNodesToMaskBoundary(t *testing.T) {
	if NodesToMask([]int{0, 63}) != 1|1<<63 {
		t.Error("NodesToMask top bit wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("NodesToMask(64) did not panic")
		}
	}()
	NodesToMask([]int{64})
}
