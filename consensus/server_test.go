package consensus

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/consensus/scenario"
	"repro/internal/graph"
)

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestServerRunValencyDecisionAsync(t *testing.T) {
	ts := httptest.NewServer(NewServer(ServerTimeout(time.Minute)))
	defer ts.Close()

	resp, body := postJSON(t, ts, "/api/v1/run",
		`{"model": "deaf:4", "algorithm": "midpoint", "adversary": "cycle", "rounds": 8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %s", resp.StatusCode, body)
	}
	var runOut struct {
		Summary   RunSummary `json:"summary"`
		Diameters []float64  `json:"diameters"`
	}
	if err := json.Unmarshal(body, &runOut); err != nil {
		t.Fatal(err)
	}
	if len(runOut.Diameters) != 9 || runOut.Summary.FinalDiameter >= 1 {
		t.Errorf("run response: %+v", runOut)
	}

	resp, body = postJSON(t, ts, "/api/v1/valency",
		`{"model": "twoagent", "algorithm": "twothirds", "inputs": [0, 1], "depth": 4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valency status %d: %s", resp.StatusCode, body)
	}
	var val ValencyReport
	if err := json.Unmarshal(body, &val); err != nil {
		t.Fatal(err)
	}
	// δ(C_0) = 1 for the two-agent H model: inner and outer must bracket it.
	if val.DeltaLower < 0.99 || val.Outer == nil || val.DeltaUpper < val.DeltaLower {
		t.Errorf("valency report: %+v", val)
	}

	resp, body = postJSON(t, ts, "/api/v1/decision",
		`{"model": "twoagent", "algorithm": "twothirds", "adversary": "fixed:1",
		  "inputs": [0, 1], "contraction": 0.333333333333333, "eps": [0.01], "theorem": "T8"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decision status %d: %s", resp.StatusCode, body)
	}
	var dec struct {
		Points []DecisionPoint `json:"points"`
	}
	if err := json.Unmarshal(body, &dec); err != nil {
		t.Fatal(err)
	}
	if len(dec.Points) != 1 || !dec.Points[0].OK || float64(dec.Points[0].Rounds) < dec.Points[0].LowerBound {
		t.Errorf("decision points: %+v", dec.Points)
	}

	resp, body = postJSON(t, ts, "/api/v1/async",
		`{"process": "minrelay", "n": 6, "f": 3, "worst_case": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("async status %d: %s", resp.StatusCode, body)
	}
	var as AsyncResult
	if err := json.Unmarshal(body, &as); err != nil {
		t.Fatal(err)
	}
	if as.MinRelayAgreed == nil || !*as.MinRelayAgreed {
		t.Errorf("Theorem 7 verdict missing or false: %+v", as)
	}
}

func TestServerExperimentEndpoints(t *testing.T) {
	ts := httptest.NewServer(NewServer(ServerTimeout(time.Minute)))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Experiments) == 0 {
		t.Fatal("no experiments listed")
	}

	// Run the cheapest listed experiment end-to-end.
	id := listing.Experiments[0].ID
	for _, e := range listing.Experiments {
		if e.ID == "T1/twoagent" {
			id = e.ID
		}
	}
	r2, body := postJSON(t, ts, "/api/v1/experiment", `{"id": `+jsonString(id)+`}`)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("experiment status %d: %s", r2.StatusCode, body)
	}
	var res struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
		Text string     `json:"text"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != id || len(res.Rows) == 0 || !strings.Contains(res.Text, res.ID) {
		t.Errorf("experiment response: id=%q rows=%d", res.ID, len(res.Rows))
	}
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func TestServerErrorsAndTimeout(t *testing.T) {
	ts := httptest.NewServer(NewServer(ServerTimeout(time.Minute)))
	defer ts.Close()

	// Malformed body.
	resp, _ := postJSON(t, ts, "/api/v1/run", `{"model": 17}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d, want 400", resp.StatusCode)
	}
	// Unknown field (strict decoding).
	resp, _ = postJSON(t, ts, "/api/v1/run", `{"model": "deaf:3", "wat": true}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d, want 400", resp.StatusCode)
	}
	// Unknown spec.
	resp, _ = postJSON(t, ts, "/api/v1/run", `{"model": "bogus"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown model status %d, want 400", resp.StatusCode)
	}
	// Out-of-range async parameters must 400, not panic the handler.
	resp, _ = postJSON(t, ts, "/api/v1/async", `{"n": 3, "f": 1, "delay_floor": 2}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad delay floor status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/api/v1/async", `{"n": 63, "f": 1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized async n status %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	getResp, err := http.Get(ts.URL + "/api/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run status %d, want 405", getResp.StatusCode)
	}

	// A server with an expired per-query budget answers 504.
	slow := httptest.NewServer(NewServer(ServerTimeout(time.Nanosecond), ServerCacheSize(0)))
	defer slow.Close()
	r3, err := http.Get(slow.URL + "/api/v1/solvability?model=deaf:4")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("expired budget status %d, want 504", r3.StatusCode)
	}
}

func TestServerHealthz(t *testing.T) {
	ts := httptest.NewServer(NewServer())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestServerScenarioEndpoint(t *testing.T) {
	ts := httptest.NewServer(NewServer(ServerTimeout(time.Minute)))
	defer ts.Close()

	// Inspect + certify + run a generated scenario by spec.
	resp, body := postJSON(t, ts, "/api/v1/scenario",
		`{"scenario": "partitionheal:6,2,4", "rounds": 12, "run": true,
		  "algorithm": "midpoint", "inputs": [0, 0, 0, 1, 1, 1]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario status %d: %s", resp.StatusCode, body)
	}
	var rep ScenarioReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.N != 6 || rep.Fingerprint == "" || len(rep.Trace) == 0 {
		t.Fatalf("scenario report incomplete: %+v", rep)
	}
	if rep.Certificate.Rooted || rep.Certificate.FirstUnrooted != 1 {
		t.Errorf("partition rounds not flagged: %+v", rep.Certificate)
	}
	if rep.Summary == nil || rep.Summary.FinalDiameter >= 1 {
		t.Errorf("healed run did not contract: %+v", rep.Summary)
	}

	// Upload the returned trace; the schedule identity must survive.
	upload, err := json.Marshal(ScenarioRequest{Trace: rep.Trace})
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts, "/api/v1/scenario", string(upload))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace upload status %d: %s", resp.StatusCode, body)
	}
	var rep2 ScenarioReport
	if err := json.Unmarshal(body, &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Fingerprint != rep.Fingerprint {
		t.Error("uploaded trace changed identity")
	}

	// Bad requests are 400s.
	resp, _ = postJSON(t, ts, "/api/v1/scenario", `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty request status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/api/v1/scenario", `{"scenario": "nosuch:1"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown scenario status %d, want 400", resp.StatusCode)
	}
	// Hostile generator arguments must come back as 400s, not panics.
	for _, spec := range []string{
		"partitionheal:2000,2,4",
		"churn:4,1,3074457345618258603,3,1",
		"repeat:4611686018427387904;eventuallyrooted:4,2",
	} {
		resp, _ = postJSON(t, ts, "/api/v1/scenario", `{"scenario": "`+spec+`"}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("hostile spec %q status %d, want 400", spec, resp.StatusCode)
		}
	}
}

// TestServerScenarioCertifyHorizonCapped: a certify-only upload whose
// default horizon exceeds the served-run cap must be rejected before
// any per-round work, not ground through.
func TestServerScenarioCertifyHorizonCapped(t *testing.T) {
	ts := httptest.NewServer(NewServer(ServerTimeout(time.Minute)))
	defer ts.Close()

	long := make([]graph.Graph, MaxServedRounds+1)
	for i := range long {
		long[i] = graph.Complete(2)
	}
	sch, err := scenario.NewLasso(2, long, nil)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(ScenarioRequest{Trace: sch.Encode()})
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postJSON(t, ts, "/api/v1/scenario", string(body))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized certify horizon status %d, want 400: %s", resp.StatusCode, out)
	}
	// An explicit in-cap horizon over the same trace is fine.
	body, _ = json.Marshal(ScenarioRequest{Trace: sch.Encode(), Rounds: 16})
	resp, out = postJSON(t, ts, "/api/v1/scenario", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capped certify status %d: %s", resp.StatusCode, out)
	}
}
