package consensus

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/adversary"
	"repro/internal/algorithms"
	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

// registryIDs hands every registry a process-unique identity. Cache keys
// embed the id (never the address, which the GC may reuse) so entries
// produced under one registry can never alias another's resolutions.
var registryIDs atomic.Uint64

// A spec string is "name" or "name:arg"; splitSpec separates the two.
func splitSpec(s string) (name, arg string) {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

// FactoryInfo describes one registry entry for listings (cmd -list flags,
// the server's /api/v1/registry endpoint).
type FactoryInfo struct {
	Name    string `json:"name"`
	Usage   string `json:"usage"`
	Summary string `json:"summary"`
}

// AlgorithmFactory builds a core algorithm from the argument part of a
// spec string; n is the system size (used for validation).
type AlgorithmFactory struct {
	Name    string
	Usage   string
	Summary string
	New     func(arg string, n int) (core.Algorithm, error)
}

// AlgorithmRegistry maps spec names to algorithm factories. It is safe
// for concurrent use.
type AlgorithmRegistry struct {
	id uint64
	mu sync.RWMutex
	m  map[string]AlgorithmFactory
}

// NewAlgorithmRegistry returns an empty registry.
func NewAlgorithmRegistry() *AlgorithmRegistry {
	return &AlgorithmRegistry{id: registryIDs.Add(1), m: make(map[string]AlgorithmFactory)}
}

// Register adds a factory; registering a duplicate or empty name errors.
func (r *AlgorithmRegistry) Register(f AlgorithmFactory) error {
	if f.Name == "" || f.New == nil {
		return fmt.Errorf("consensus: algorithm factory needs a name and a constructor")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[f.Name]; dup {
		return fmt.Errorf("consensus: algorithm %q already registered", f.Name)
	}
	r.m[f.Name] = f
	return nil
}

// New resolves a spec string ("name" or "name:arg") to an algorithm.
func (r *AlgorithmRegistry) New(spec string, n int) (core.Algorithm, error) {
	name, arg := splitSpec(spec)
	r.mu.RLock()
	f, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("consensus: unknown algorithm %q (have %s)", name, strings.Join(r.Names(), ", "))
	}
	return f.New(arg, n)
}

// Names returns the sorted registered names.
func (r *AlgorithmRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the sorted entry descriptions.
func (r *AlgorithmRegistry) Describe() []FactoryInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]FactoryInfo, 0, len(r.m))
	for _, f := range r.m {
		out = append(out, FactoryInfo{Name: f.Name, Usage: f.Usage, Summary: f.Summary})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ModelFactory builds a network model from the argument part of a spec
// string.
type ModelFactory struct {
	Name    string
	Usage   string
	Summary string
	New     func(arg string) (*model.Model, error)
}

// ModelRegistry maps spec names to model factories. It is safe for
// concurrent use.
type ModelRegistry struct {
	id uint64
	mu sync.RWMutex
	m  map[string]ModelFactory
}

// NewModelRegistry returns an empty registry.
func NewModelRegistry() *ModelRegistry {
	return &ModelRegistry{id: registryIDs.Add(1), m: make(map[string]ModelFactory)}
}

// Register adds a factory; registering a duplicate or empty name errors.
func (r *ModelRegistry) Register(f ModelFactory) error {
	if f.Name == "" || f.New == nil {
		return fmt.Errorf("consensus: model factory needs a name and a constructor")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[f.Name]; dup {
		return fmt.Errorf("consensus: model %q already registered", f.Name)
	}
	r.m[f.Name] = f
	return nil
}

// New resolves a spec string to a model.
func (r *ModelRegistry) New(spec string) (*model.Model, error) {
	name, arg := splitSpec(spec)
	r.mu.RLock()
	f, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("consensus: unknown model %q (have %s)", name, strings.Join(r.Names(), ", "))
	}
	return f.New(arg)
}

// Names returns the sorted registered names.
func (r *ModelRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the sorted entry descriptions.
func (r *ModelRegistry) Describe() []FactoryInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]FactoryInfo, 0, len(r.m))
	for _, f := range r.m {
		out = append(out, FactoryInfo{Name: f.Name, Usage: f.Usage, Summary: f.Summary})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AdversaryEnv is what an adversary factory gets to work with: the
// session's model (nil for model-free schedulers), the algorithm under
// attack, the system size, the RNG seed, the valency exploration depth,
// and — for valency-driven adversaries — the session's shared engine.
type AdversaryEnv struct {
	Model     *model.Model
	Algorithm core.Algorithm
	N         int
	Seed      int64
	Depth     int
	Engine    *valency.Engine
}

// AdversaryFactory builds a pattern source (scheduler or adversary) from
// the argument part of a spec string and the session environment. Every
// call must return a fresh source: pattern sources are stateful and owned
// by a single run.
type AdversaryFactory struct {
	Name    string
	Usage   string
	Summary string
	// NeedsModel marks factories that require env.Model.
	NeedsModel bool
	// NeedsEngine marks valency-driven factories that require env.Engine.
	NeedsEngine bool
	New         func(arg string, env AdversaryEnv) (core.PatternSource, error)
}

// AdversaryRegistry maps spec names to adversary factories. It is safe
// for concurrent use.
type AdversaryRegistry struct {
	id uint64
	mu sync.RWMutex
	m  map[string]AdversaryFactory
}

// NewAdversaryRegistry returns an empty registry.
func NewAdversaryRegistry() *AdversaryRegistry {
	return &AdversaryRegistry{id: registryIDs.Add(1), m: make(map[string]AdversaryFactory)}
}

// Register adds a factory; registering a duplicate or empty name errors.
func (r *AdversaryRegistry) Register(f AdversaryFactory) error {
	if f.Name == "" || f.New == nil {
		return fmt.Errorf("consensus: adversary factory needs a name and a constructor")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[f.Name]; dup {
		return fmt.Errorf("consensus: adversary %q already registered", f.Name)
	}
	r.m[f.Name] = f
	return nil
}

// lookup returns the factory for a spec string.
func (r *AdversaryRegistry) lookup(spec string) (AdversaryFactory, string, error) {
	name, arg := splitSpec(spec)
	r.mu.RLock()
	f, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return AdversaryFactory{}, "", fmt.Errorf("consensus: unknown adversary %q (have %s)", name, strings.Join(r.Names(), ", "))
	}
	return f, arg, nil
}

// New resolves a spec string to a fresh pattern source.
func (r *AdversaryRegistry) New(spec string, env AdversaryEnv) (core.PatternSource, error) {
	f, arg, err := r.lookup(spec)
	if err != nil {
		return nil, err
	}
	if f.NeedsModel && env.Model == nil {
		return nil, fmt.Errorf("consensus: adversary %q requires a model", f.Name)
	}
	if f.NeedsEngine && env.Engine == nil {
		return nil, fmt.Errorf("consensus: adversary %q requires a valency engine", f.Name)
	}
	return f.New(arg, env)
}

// Names returns the sorted registered names.
func (r *AdversaryRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the sorted entry descriptions.
func (r *AdversaryRegistry) Describe() []FactoryInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]FactoryInfo, 0, len(r.m))
	for _, f := range r.m {
		out = append(out, FactoryInfo{Name: f.Name, Usage: f.Usage, Summary: f.Summary})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Library bundles the three registries a session resolves its specs
// against. The zero fields of a Library fall back to the package-level
// defaults.
type Library struct {
	Algorithms  *AlgorithmRegistry
	Models      *ModelRegistry
	Adversaries *AdversaryRegistry
	Scenarios   *ScenarioRegistry
}

// algorithms returns the effective algorithm registry.
func (l *Library) algorithms() *AlgorithmRegistry {
	if l != nil && l.Algorithms != nil {
		return l.Algorithms
	}
	return Algorithms
}

// models returns the effective model registry.
func (l *Library) models() *ModelRegistry {
	if l != nil && l.Models != nil {
		return l.Models
	}
	return Models
}

// adversaries returns the effective adversary registry.
func (l *Library) adversaries() *AdversaryRegistry {
	if l != nil && l.Adversaries != nil {
		return l.Adversaries
	}
	return Adversaries
}

// scenarios returns the effective scenario registry.
func (l *Library) scenarios() *ScenarioRegistry {
	if l != nil && l.Scenarios != nil {
		return l.Scenarios
	}
	return Scenarios
}

// Algorithms, Models and Adversaries are the default registries, pre-
// populated with everything the repository implements. The cmd tools and
// examples resolve their spec flags against these.
var (
	Algorithms  = NewAlgorithmRegistry()
	Models      = NewModelRegistry()
	Adversaries = NewAdversaryRegistry()
)

func mustRegisterAlgorithm(f AlgorithmFactory) {
	if err := Algorithms.Register(f); err != nil {
		panic(err)
	}
}

func mustRegisterModel(f ModelFactory) {
	if err := Models.Register(f); err != nil {
		panic(err)
	}
}

func mustRegisterAdversary(f AdversaryFactory) {
	if err := Adversaries.Register(f); err != nil {
		panic(err)
	}
}

func noArg(name, arg string) error {
	if arg != "" {
		return fmt.Errorf("consensus: %s takes no argument, got %q", name, arg)
	}
	return nil
}

func init() {
	registerBuiltinAlgorithms()
	registerBuiltinModels()
	registerBuiltinAdversaries()
}

func registerBuiltinAlgorithms() {
	mustRegisterAlgorithm(AlgorithmFactory{
		Name: "midpoint", Usage: "midpoint",
		Summary: "midpoint rule (min+max)/2 — Algorithm 2, optimal 1/2 contraction on non-split models",
		New: func(arg string, n int) (core.Algorithm, error) {
			if err := noArg("midpoint", arg); err != nil {
				return nil, err
			}
			return algorithms.Midpoint{}, nil
		},
	})
	mustRegisterAlgorithm(AlgorithmFactory{
		Name: "mean", Usage: "mean",
		Summary: "arithmetic mean of the received values",
		New: func(arg string, n int) (core.Algorithm, error) {
			if err := noArg("mean", arg); err != nil {
				return nil, err
			}
			return algorithms.Mean{}, nil
		},
	})
	mustRegisterAlgorithm(AlgorithmFactory{
		Name: "amortized", Usage: "amortized",
		Summary: "amortized midpoint — Algorithm 3, halves the diameter every n-1 rounds on rooted models",
		New: func(arg string, n int) (core.Algorithm, error) {
			if err := noArg("amortized", arg); err != nil {
				return nil, err
			}
			return algorithms.AmortizedMidpoint{}, nil
		},
	})
	mustRegisterAlgorithm(AlgorithmFactory{
		Name: "twothirds", Usage: "twothirds",
		Summary: "two-thirds rule — Algorithm 1, optimal 1/3 contraction at n = 2",
		New: func(arg string, n int) (core.Algorithm, error) {
			if err := noArg("twothirds", arg); err != nil {
				return nil, err
			}
			if n != 2 {
				return nil, fmt.Errorf("consensus: twothirds requires n = 2, got %d", n)
			}
			return algorithms.TwoThirds{}, nil
		},
	})
	mustRegisterAlgorithm(AlgorithmFactory{
		Name: "selfweighted", Usage: "selfweighted:ALPHA",
		Summary: "keep weight alpha on the own value, spread 1-alpha over the heard values",
		New: func(arg string, n int) (core.Algorithm, error) {
			a, err := strconv.ParseFloat(arg, 64)
			if err != nil || a < 0 || a > 1 {
				return nil, fmt.Errorf("consensus: selfweighted needs alpha in [0,1], got %q", arg)
			}
			return algorithms.SelfWeighted{Alpha: a}, nil
		},
	})
	mustRegisterAlgorithm(AlgorithmFactory{
		Name: "quantized", Usage: "quantized:Q",
		Summary: "quantized midpoint on the grid Q·Z — reference [9], exact termination on grid inputs",
		New: func(arg string, n int) (core.Algorithm, error) {
			q, err := strconv.ParseFloat(arg, 64)
			if err != nil || !(q > 0) {
				return nil, fmt.Errorf("consensus: quantized needs a grid spacing Q > 0, got %q", arg)
			}
			return algorithms.QuantizedMidpoint{Q: q}, nil
		},
	})
	mustRegisterAlgorithm(AlgorithmFactory{
		Name: "floodroot", Usage: "floodroot:ROOT",
		Summary: "exact consensus by flooding the designated common root's value (Theorem 19 models)",
		New: func(arg string, n int) (core.Algorithm, error) {
			root := 0
			if arg != "" {
				r, err := strconv.Atoi(arg)
				if err != nil {
					return nil, fmt.Errorf("consensus: floodroot needs an agent index, got %q", arg)
				}
				root = r
			}
			if root < 0 || root >= n {
				return nil, fmt.Errorf("consensus: floodroot root %d out of range [0,%d)", root, n)
			}
			return algorithms.FloodRoot{Root: root}, nil
		},
	})
	mustRegisterAlgorithm(AlgorithmFactory{
		Name: "rb-midpoint", Usage: "rb-midpoint",
		Summary: "round-based asynchronous midpoint embedded in the Heard-Of model (Section 8.1)",
		New: func(arg string, n int) (core.Algorithm, error) {
			if err := noArg("rb-midpoint", arg); err != nil {
				return nil, err
			}
			return async.AsCoreAlgorithm("rb-midpoint", async.MidpointUpdate), nil
		},
	})
	mustRegisterAlgorithm(AlgorithmFactory{
		Name: "rb-selectedmean", Usage: "rb-selectedmean:F",
		Summary: "Fekete-style selected mean for up to F crashes — the Theorem 6 round-based baseline",
		New: func(arg string, n int) (core.Algorithm, error) {
			f, err := strconv.Atoi(arg)
			if err != nil || f < 1 {
				return nil, fmt.Errorf("consensus: rb-selectedmean needs F >= 1, got %q", arg)
			}
			return async.AsCoreAlgorithm(fmt.Sprintf("rb-selected-mean(f=%d)", f), async.SelectedMeanUpdate(f)), nil
		},
	})
}

func parseN(arg string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(arg))
	if err != nil || n < 1 {
		return 0, fmt.Errorf("consensus: bad node count %q", arg)
	}
	return n, nil
}

func parseNF(arg string) (int, int, error) {
	parts := strings.Split(arg, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("consensus: want N,F, got %q", arg)
	}
	n, err := parseN(parts[0])
	if err != nil {
		return 0, 0, err
	}
	f, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil || f < 1 {
		return 0, 0, fmt.Errorf("consensus: bad crash count %q", parts[1])
	}
	return n, f, nil
}

// parseGraphSpec parses "N;A>B,C>D,..." into a graph with the listed
// edges (self-loops are always present).
func parseGraphSpec(arg string) (graph.Graph, error) {
	parts := strings.SplitN(arg, ";", 2)
	n, err := parseN(parts[0])
	if err != nil {
		return graph.Graph{}, err
	}
	var edges [][2]int
	if len(parts) == 2 && parts[1] != "" {
		for _, e := range strings.Split(parts[1], ",") {
			ft := strings.SplitN(e, ">", 2)
			if len(ft) != 2 {
				return graph.Graph{}, fmt.Errorf("consensus: malformed edge %q (want A>B)", e)
			}
			from, err := strconv.Atoi(strings.TrimSpace(ft[0]))
			if err != nil {
				return graph.Graph{}, fmt.Errorf("consensus: edge %q: %v", e, err)
			}
			to, err := strconv.Atoi(strings.TrimSpace(ft[1]))
			if err != nil {
				return graph.Graph{}, fmt.Errorf("consensus: edge %q: %v", e, err)
			}
			edges = append(edges, [2]int{from, to})
		}
	}
	return graph.FromEdges(n, edges...)
}

func registerBuiltinModels() {
	mustRegisterModel(ModelFactory{
		Name: "twoagent", Usage: "twoagent",
		Summary: "the Figure 1 model {H0, H1, H2} on two agents",
		New: func(arg string) (*model.Model, error) {
			if err := noArg("twoagent", arg); err != nil {
				return nil, err
			}
			return model.TwoAgent(), nil
		},
	})
	mustRegisterModel(ModelFactory{
		Name: "deaf", Usage: "deaf:N",
		Summary: "deaf(K_N): the complete graph with one agent's ears removed, per agent (Section 5)",
		New: func(arg string) (*model.Model, error) {
			n, err := parseN(arg)
			if err != nil {
				return nil, err
			}
			return model.DeafModel(graph.Complete(n)), nil
		},
	})
	mustRegisterModel(ModelFactory{
		Name: "psi", Usage: "psi:N",
		Summary: "the Figure 2 model {Psi_0, Psi_1, Psi_2} on N >= 4 nodes",
		New: func(arg string) (*model.Model, error) {
			n, err := parseN(arg)
			if err != nil {
				return nil, err
			}
			if n < 4 {
				return nil, fmt.Errorf("consensus: psi requires n >= 4, got %d", n)
			}
			return model.PsiModel(n), nil
		},
	})
	mustRegisterModel(ModelFactory{
		Name: "rooted", Usage: "rooted:N",
		Summary: "all rooted graphs on N nodes (N <= 5)",
		New: func(arg string) (*model.Model, error) {
			n, err := parseN(arg)
			if err != nil {
				return nil, err
			}
			return model.AllRooted(n)
		},
	})
	mustRegisterModel(ModelFactory{
		Name: "nonsplit", Usage: "nonsplit:N",
		Summary: "all non-split graphs on N nodes (N <= 5)",
		New: func(arg string) (*model.Model, error) {
			n, err := parseN(arg)
			if err != nil {
				return nil, err
			}
			return model.AllNonSplit(n)
		},
	})
	mustRegisterModel(ModelFactory{
		Name: "na", Usage: "na:N,F",
		Summary: "the full asynchronous-round model N_A(N, F) (small N)",
		New: func(arg string) (*model.Model, error) {
			n, f, err := parseNF(arg)
			if err != nil {
				return nil, err
			}
			return model.FullAsyncRound(n, f)
		},
	})
	mustRegisterModel(ModelFactory{
		Name: "asyncchain", Usage: "asyncchain:N,F",
		Summary: "the Lemma 24 chain sub-model of N_A(N, F)",
		New: func(arg string) (*model.Model, error) {
			n, f, err := parseNF(arg)
			if err != nil {
				return nil, err
			}
			return model.AsyncChain(n, f)
		},
	})
	mustRegisterModel(ModelFactory{
		Name: "edges", Usage: "edges:N;A>B,C>D",
		Summary: "a singleton model with the given edge list",
		New: func(arg string) (*model.Model, error) {
			g, err := parseGraphSpec(arg)
			if err != nil {
				return nil, err
			}
			return model.New(g)
		},
	})
}

// parseProbability parses an edge probability in (0, 1].
func parseProbability(name, arg string) (float64, error) {
	p, err := strconv.ParseFloat(arg, 64)
	if err != nil || !(p > 0) || p > 1 {
		return 0, fmt.Errorf("consensus: %s needs an edge probability in (0,1], got %q", name, arg)
	}
	return p, nil
}

func registerBuiltinAdversaries() {
	mustRegisterAdversary(AdversaryFactory{
		Name: "greedy", Usage: "greedy",
		Summary:    "the valency-splitting adversary of Theorems 1, 2 and 5: always play the successor with the largest certified valency diameter",
		NeedsModel: true, NeedsEngine: true,
		New: func(arg string, env AdversaryEnv) (core.PatternSource, error) {
			if err := noArg("greedy", arg); err != nil {
				return nil, err
			}
			return &adversary.Greedy{Est: valency.EstimatorFromEngine(env.Engine)}, nil
		},
	})
	mustRegisterAdversary(AdversaryFactory{
		Name: "blockgreedy", Usage: "blockgreedy",
		Summary:    "the Theorem 3 block adversary: choose among whole sigma_i blocks of n-2 Psi_i graphs (Psi models only)",
		NeedsModel: true, NeedsEngine: true,
		New: func(arg string, env AdversaryEnv) (core.PatternSource, error) {
			if err := noArg("blockgreedy", arg); err != nil {
				return nil, err
			}
			return adversary.NewBlockGreedy(valency.EstimatorFromEngine(env.Engine), adversary.SigmaBlocks(env.N))
		},
	})
	mustRegisterAdversary(AdversaryFactory{
		Name: "random", Usage: "random",
		Summary:    "a uniformly random member of the model every round, from the session seed",
		NeedsModel: true,
		New: func(arg string, env AdversaryEnv) (core.PatternSource, error) {
			if err := noArg("random", arg); err != nil {
				return nil, err
			}
			return core.RandomFromModel{Model: env.Model, Rng: rand.New(rand.NewSource(env.Seed))}, nil
		},
	})
	mustRegisterAdversary(AdversaryFactory{
		Name: "cycle", Usage: "cycle",
		Summary:    "the model's graphs in round-robin order",
		NeedsModel: true,
		New: func(arg string, env AdversaryEnv) (core.PatternSource, error) {
			if err := noArg("cycle", arg); err != nil {
				return nil, err
			}
			return core.Cycle{Graphs: env.Model.Graphs()}, nil
		},
	})
	mustRegisterAdversary(AdversaryFactory{
		Name: "fixed", Usage: "fixed:K",
		Summary:    "the model's graph K every round (default 0) — the classical fixed-topology setting",
		NeedsModel: true,
		New: func(arg string, env AdversaryEnv) (core.PatternSource, error) {
			k := 0
			if arg != "" {
				var err error
				if k, err = strconv.Atoi(arg); err != nil {
					return nil, fmt.Errorf("consensus: fixed needs a graph index, got %q", arg)
				}
			}
			if k < 0 || k >= env.Model.Size() {
				return nil, fmt.Errorf("consensus: fixed graph index %d out of range [0,%d)", k, env.Model.Size())
			}
			return core.Fixed{G: env.Model.Graph(k)}, nil
		},
	})
	mustRegisterAdversary(AdversaryFactory{
		Name: "randomrooted", Usage: "randomrooted:P",
		Summary: "a fresh random rooted graph with edge probability P every round (model-free)",
		New: func(arg string, env AdversaryEnv) (core.PatternSource, error) {
			p, err := parseProbability("randomrooted", arg)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(env.Seed))
			n := env.N
			return core.ObliviousFunc(func(int) graph.Graph {
				return graph.RandomRooted(rng, n, p)
			}), nil
		},
	})
	mustRegisterAdversary(AdversaryFactory{
		Name: "randomnonsplit", Usage: "randomnonsplit:P",
		Summary: "a fresh random non-split graph with edge probability P every round (model-free)",
		New: func(arg string, env AdversaryEnv) (core.PatternSource, error) {
			p, err := parseProbability("randomnonsplit", arg)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(env.Seed))
			n := env.N
			return core.ObliviousFunc(func(int) graph.Graph {
				return graph.RandomNonSplit(rng, n, p)
			}), nil
		},
	})
}

// ParseFloats parses a comma-separated float list ("0, 1, 0.5").
func ParseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("consensus: empty float list")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("consensus: bad float %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
