package consensus

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/consensus/scenario"
	"repro/internal/core"
	"repro/internal/graph"
)

// RunSpec is the declarative form of a session configuration — the batch
// and wire counterpart of the functional options. Zero fields take the
// session defaults.
type RunSpec struct {
	Model     string    `json:"model,omitempty"`
	Algorithm string    `json:"algorithm,omitempty"`
	Adversary string    `json:"adversary,omitempty"`
	Scenario  string    `json:"scenario,omitempty"`
	Inputs    []float64 `json:"inputs,omitempty"`
	Rounds    int       `json:"rounds,omitempty"`
	Seed      int64     `json:"seed,omitempty"`
	Depth     int       `json:"depth,omitempty"`
}

// options lowers the spec to session options.
func (spec RunSpec) options() []Option {
	var opts []Option
	if spec.Model != "" {
		opts = append(opts, WithModel(spec.Model))
	}
	if spec.Algorithm != "" {
		opts = append(opts, WithAlgorithm(spec.Algorithm))
	}
	if spec.Adversary != "" {
		opts = append(opts, WithAdversary(spec.Adversary))
	}
	if spec.Scenario != "" {
		opts = append(opts, WithScenarioSpec(spec.Scenario))
	}
	if spec.Inputs != nil {
		opts = append(opts, WithInputs(spec.Inputs...))
	}
	if spec.Rounds != 0 {
		opts = append(opts, WithRounds(spec.Rounds))
	}
	if spec.Seed != 0 {
		opts = append(opts, WithSeed(spec.Seed))
	}
	if spec.Depth != 0 {
		opts = append(opts, WithDepth(spec.Depth))
	}
	return opts
}

// NewSession builds a session from a declarative spec plus optional extra
// options (applied after the spec's).
func NewSession(spec RunSpec, extra ...Option) (*Session, error) {
	return New(append(spec.options(), extra...)...)
}

// RunSummary condenses one completed run for batch and wire use.
type RunSummary struct {
	Algorithm       string    `json:"algorithm"`
	Rounds          int       `json:"rounds"`
	InitialDiameter float64   `json:"initial_diameter"`
	FinalDiameter   float64   `json:"final_diameter"`
	GeometricRate   float64   `json:"geometric_rate"`
	WorstRoundRatio float64   `json:"worst_round_ratio"`
	FinalOutputs    []float64 `json:"final_outputs"`
	Validity        bool      `json:"validity"`
}

// Summarize condenses a result.
func Summarize(res *Result) RunSummary {
	return RunSummary{
		Algorithm:       res.Algorithm(),
		Rounds:          res.Rounds(),
		InitialDiameter: res.DiameterAt(0),
		FinalDiameter:   res.DiameterAt(res.Rounds()),
		GeometricRate:   res.GeometricRate(),
		WorstRoundRatio: res.WorstRoundRatio(),
		FinalOutputs:    res.FinalOutputs(),
		Validity:        res.ValidityHolds(validityTol),
	}
}

// SweepCache memoizes run summaries by configuration fingerprint. It is
// safe for concurrent use and shareable across Sweep calls and servers.
// The cache is bounded: past its entry capacity (NewSweepCacheSize, or
// SweepCacheCapacity as a sweep option) insertions evict the oldest
// entries first, so a long-lived server facing unbounded distinct specs
// holds at most Capacity summaries.
type SweepCache struct {
	mu        sync.Mutex
	m         map[string]RunSummary
	order     []string // insertion order; order[head:] are live, FIFO eviction
	head      int
	max       int
	hits      uint64
	misses    uint64
	evictions uint64
}

// defaultSweepCacheSize bounds a cache built by NewSweepCache.
const defaultSweepCacheSize = 1 << 16

// NewSweepCache returns an empty cache with the default size bound.
func NewSweepCache() *SweepCache { return NewSweepCacheSize(defaultSweepCacheSize) }

// NewSweepCacheSize returns an empty cache holding at most max entries
// (the default bound for max <= 0).
func NewSweepCacheSize(max int) *SweepCache {
	if max <= 0 {
		max = defaultSweepCacheSize
	}
	return &SweepCache{m: make(map[string]RunSummary), max: max}
}

// defaultSweepCache is the cache Sweep uses when the caller supplies
// none, so independent sweeps of identical work share results.
var defaultSweepCache = NewSweepCache()

// get looks up a summary.
func (c *SweepCache) get(key string) (RunSummary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return s, ok
}

// setCapacity bounds the entry count, evicting down to the new cap.
func (c *SweepCache) setCapacity(max int) {
	if max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.max = max
	c.evictLocked(0)
}

// Capacity returns the entry bound.
func (c *SweepCache) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max <= 0 {
		return defaultSweepCacheSize
	}
	return c.max
}

// evictLocked drops oldest entries until the cache fits max minus room.
func (c *SweepCache) evictLocked(room int) {
	for len(c.m)+room > c.max && c.head < len(c.order) {
		delete(c.m, c.order[c.head])
		c.order[c.head] = ""
		c.head++
		c.evictions++
	}
	// Reclaim the order slice once the dead prefix dominates.
	if c.head > len(c.order)/2 {
		c.order = append(c.order[:0], c.order[c.head:]...)
		c.head = 0
	}
}

// put stores a summary, evicting the oldest entries when full. It
// tolerates a zero-value SweepCache by lazily adopting the defaults.
func (c *SweepCache) put(key string, s RunSummary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]RunSummary)
	}
	if c.max <= 0 {
		c.max = defaultSweepCacheSize
	}
	if _, exists := c.m[key]; !exists {
		c.evictLocked(1)
		c.order = append(c.order, key)
	}
	c.m[key] = s
}

// lateGet re-checks a key that already missed once (and was counted) in
// this sweep: a concurrent sweep may have computed it in the meantime.
// It counts a hit when served but no second miss otherwise.
func (c *SweepCache) lateGet(key string) (RunSummary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[key]
	if ok {
		c.hits++
	}
	return s, ok
}

// Stats returns (hits, misses, entries).
func (c *SweepCache) Stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.m)
}

// SweepCacheCounters is a cache's lifetime accounting snapshot, as the
// status endpoints report it.
type SweepCacheCounters struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// HitRate returns hits/(hits+misses), 0 before any lookup.
func (c SweepCacheCounters) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// Counters returns the cache's full accounting snapshot.
func (c *SweepCache) Counters() SweepCacheCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	max := c.max
	if max <= 0 {
		max = defaultSweepCacheSize
	}
	return SweepCacheCounters{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.m),
		Capacity:  max,
	}
}

// Lookup returns the summary stored under key, counting a hit or a
// miss — the exported form of the sweep's internal lookup, for callers
// (the distributed result store) addressing the cache by their own
// fingerprint keys.
func (c *SweepCache) Lookup(key string) (RunSummary, bool) { return c.get(key) }

// Insert stores a summary under key, evicting oldest-first past the
// capacity — the exported counterpart of Lookup.
func (c *SweepCache) Insert(key string, s RunSummary) { c.put(key, s) }

// cacheKey derives the fingerprint key of a session: the canonical
// initial-configuration fingerprint (the same encoding the valency
// engine's transposition tables are keyed by) plus every run parameter
// that can change the outcome — including the identity of the resolving
// registries, because two libraries may map one spec name to different
// engines. The execution backend is deliberately absent — the backends
// are differentially tested to be bit-identical. ok is false for
// non-fingerprintable algorithms; those runs are never cached.
func (s *Session) cacheKey() (string, bool) {
	ck, ok := s.contentKey()
	if !ok {
		return "", false
	}
	key := make([]byte, 0, 32+len(ck))
	key = strconv.AppendUint(key, s.lib.models().id, 10)
	key = append(key, '/')
	key = strconv.AppendUint(key, s.lib.algorithms().id, 10)
	key = append(key, '/')
	key = strconv.AppendUint(key, s.lib.adversaries().id, 10)
	key = append(key, '|')
	key = append(key, ck...)
	return string(key), true
}

// contentKey is the registry-independent part of cacheKey: the canonical
// byte encoding of everything that determines a run's outcome given the
// repository's built-in factories — resolved model spec, algorithm name,
// adversary spec (the schedule's SHA-256 fingerprint for scenario runs),
// run parameters, and the initial-configuration fingerprint. Unlike
// cacheKey it is stable across processes, so its hash can address
// results computed by another machine running the same build.
func (s *Session) contentKey() ([]byte, bool) {
	fp, ok := core.NewConfig(s.alg, s.inputs).AppendFingerprint(nil)
	if !ok {
		return nil, false
	}
	key := make([]byte, 0, 96+len(fp))
	key = append(key, s.modelSpec...)
	key = append(key, '|')
	key = append(key, s.alg.Name()...)
	key = append(key, '|')
	key = append(key, s.advSpec...)
	key = append(key, "|r"...)
	key = strconv.AppendInt(key, int64(s.rounds), 10)
	key = append(key, "|s"...)
	key = strconv.AppendInt(key, s.seed, 10)
	key = append(key, "|d"...)
	key = strconv.AppendInt(key, int64(s.depth), 10)
	// The fingerprint is raw bytes, so length-prefix it: without the
	// length the digit fields before it would not be uniquely decodable
	// against fingerprints that happen to start with digits or '|'.
	key = append(key, '|')
	key = strconv.AppendInt(key, int64(len(fp)), 10)
	key = append(key, ':')
	key = append(key, fp...)
	return key, true
}

// Fingerprint returns the session's content address: the hex SHA-256 of
// the canonical registry-independent configuration key (see contentKey).
// Two sessions with equal fingerprints produce bit-identical results on
// any backend and any machine running the same build, so the fingerprint
// keys the distributed result store and names shards. ok is false for
// non-fingerprintable algorithms, whose runs are never content-addressed.
func (s *Session) Fingerprint() (string, bool) {
	ck, ok := s.contentKey()
	if !ok {
		return "", false
	}
	sum := sha256.Sum256(ck)
	return hex.EncodeToString(sum[:]), true
}

// SpecFingerprint resolves a spec into its content address (see
// Session.Fingerprint). A nil error with an empty fingerprint marks a
// valid but non-fingerprintable configuration.
func SpecFingerprint(spec RunSpec, extra ...Option) (string, error) {
	s, err := NewSession(spec, extra...)
	if err != nil {
		return "", err
	}
	fp, _ := s.Fingerprint()
	return fp, nil
}

// SweepResult is one sweep entry's outcome. Fingerprint is the run's
// content address (Session.Fingerprint); empty for non-fingerprintable
// configurations and for specs that failed to resolve.
type SweepResult struct {
	Index       int         `json:"index"`
	Spec        RunSpec     `json:"spec"`
	Fingerprint string      `json:"fingerprint,omitempty"`
	Cached      bool        `json:"cached"`
	Summary     *RunSummary `json:"summary,omitempty"`
	Err         string      `json:"error,omitempty"`
}

// sweepConfig collects sweep options.
type sweepConfig struct {
	workers  int
	cache    *SweepCache
	backend  Backend
	lib      *Library
	batch    int
	cacheCap int
	// batchPar is the raw SweepBatchParallelism setting (0 inherit the
	// process default, < 0 auto, >= 1 pinned); intra is its resolved
	// per-tile worker count.
	batchPar int
	intra    int

	// scenMemo shares resolved schedules across the sweep's specs:
	// schedules are immutable and content-addressed, so a grid of one
	// scenario × K algorithms generates/encodes/fingerprints it once,
	// not K times. Entries are single-flight — concurrent prepare
	// workers hitting the same spec wait on one resolution instead of
	// duplicating it.
	scenMu     sync.Mutex
	scenMemo   map[string]*scenarioMemoEntry
	scenBudget int
}

// scenarioMemoEntry is one single-flight memo slot.
type scenarioMemoEntry struct {
	once sync.Once
	s    *scenario.Schedule
	err  error
}

// resolveScenario resolves a scenario spec through the sweep-wide
// single-flight memo. Resolution is deterministic, so errors are
// memoized alongside successes. Distinct specs draw on one sweep-wide
// materialization budget: every resolved schedule stays live in the
// memo for the whole sweep, so without an aggregate bound a single
// request of many long-schedule specs could pin gigabytes.
func (c *sweepConfig) resolveScenario(spec string) (*scenario.Schedule, error) {
	c.scenMu.Lock()
	if c.scenMemo == nil {
		c.scenMemo = make(map[string]*scenarioMemoEntry)
		c.scenBudget = maxScenarioResolveRounds
	}
	e, ok := c.scenMemo[spec]
	if !ok {
		e = &scenarioMemoEntry{}
		c.scenMemo[spec] = e
	}
	c.scenMu.Unlock()
	e.once.Do(func() {
		lib := c.lib
		e.s, e.err = lib.scenarios().New(spec, ScenarioEnv{Models: lib.models(), Scenarios: lib.scenarios()})
		if e.err != nil {
			return
		}
		c.scenMu.Lock()
		c.scenBudget -= e.s.PrefixLen() + e.s.LoopLen()
		over := c.scenBudget < 0
		c.scenMu.Unlock()
		if over {
			e.s, e.err = nil, fmt.Errorf("consensus: sweep scenarios materialize more than %d rounds in total", maxScenarioResolveRounds)
		}
	})
	return e.s, e.err
}

// DefaultSweepBatch is the default cap on runs per batch tile.
const DefaultSweepBatch = 64

// SweepOption configures Sweep.
type SweepOption func(*sweepConfig)

// SweepWorkers bounds the worker pool (default: GOMAXPROCS).
func SweepWorkers(n int) SweepOption {
	return func(c *sweepConfig) { c.workers = n }
}

// WithSweepCache uses the given cache instead of the shared default.
func WithSweepCache(cache *SweepCache) SweepOption {
	return func(c *sweepConfig) { c.cache = cache }
}

// SweepBackend pins the execution backend of every swept session.
func SweepBackend(b Backend) SweepOption {
	return func(c *sweepConfig) { c.backend = b }
}

// SweepLibrary resolves every swept spec against lib.
func SweepLibrary(lib *Library) SweepOption {
	return func(c *sweepConfig) { c.lib = lib }
}

// SweepBatchSize caps the runs stepped together per batch tile
// (default DefaultSweepBatch). n <= 1 disables batching entirely — every
// spec runs through its own Session.Run, the pre-batch-plane behavior
// the differential tests compare against.
func SweepBatchSize(n int) SweepOption {
	return func(c *sweepConfig) { c.batch = n }
}

// SweepBatchParallelism sets the intra-step worker count of every
// batch tile: n >= 1 pins it (1 = sequential tiles), n <= 0 selects
// auto (GOMAXPROCS); without the option tiles inherit the process
// default (REPRO_BATCH_PARALLELISM / SetProcessBatchParallelism).
// When the resolved count exceeds 1, the sweep divides its worker
// budget between the two layers — tile-level workers shrink to about
// workers/n — so tile fan-out times intra-tile stepping stays near the
// machine size instead of oversubscribing it (the shared step pool
// bounds the whole process as a backstop). Results are byte-identical
// at every setting.
func SweepBatchParallelism(n int) SweepOption {
	return func(c *sweepConfig) {
		if n <= 0 {
			n = -1
		}
		c.batchPar = n
	}
}

// SweepCacheCapacity bounds the entry count of the sweep's cache,
// evicting oldest-first past the cap. With WithSweepCache it re-bounds
// that cache (the bound persists on it); without, the sweep uses a
// private bounded cache — the process-wide shared default is never
// shrunk by one caller's option.
func SweepCacheCapacity(n int) SweepOption {
	return func(c *sweepConfig) { c.cacheCap = n }
}

// Sweep runs every spec and returns one result per spec, in input
// order. Individual failures land in the result's Err field; the
// returned error is non-nil only when ctx is cancelled, in which case
// unprocessed entries carry the context error. Results are memoized in
// the (shared, bounded, fingerprint-keyed) sweep cache, so repeated and
// overlapping sweeps do not recompute identical runs; valency-driven
// entries additionally share the per-model engine pool.
//
// Execution is tiled onto the batch plane: after a parallel
// resolve-and-cache-check pass, specs that share a (model, algorithm,
// agent count, round budget) tile and can run densely under an
// oblivious pattern source are stepped together as one core.BatchRunner
// per tile — graphs still drawn per run, collapsing to one shared
// segmentation when every run plays the same graph — while adaptive or
// agent-backend specs keep the per-session path. Tiles and leftover
// singles are then executed over a bounded worker pool. Per-run outputs,
// summaries, and cache fingerprints are byte-identical either way
// (SweepBatchSize(1) forces the unbatched path; the differential tests
// compare the two).
func Sweep(ctx context.Context, specs []RunSpec, opts ...SweepOption) ([]SweepResult, error) {
	cfg := sweepConfig{workers: runtime.GOMAXPROCS(0), batch: DefaultSweepBatch}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.workers > len(specs) {
		cfg.workers = len(specs)
	}
	// Resolve the intra-tile worker count and split the budget: with
	// n-way stepping inside each tile, about workers/n tile-level
	// workers keep total parallelism near the configured budget.
	switch {
	case cfg.batchPar >= 1:
		cfg.intra = cfg.batchPar
	case cfg.batchPar < 0:
		cfg.intra = runtime.GOMAXPROCS(0)
	default:
		cfg.intra = core.DefaultBatchParallelism()
	}
	execWorkers := cfg.workers
	if cfg.intra > 1 {
		execWorkers = cfg.workers / cfg.intra
		if execWorkers < 1 {
			execWorkers = 1
		}
	}
	switch {
	case cfg.cache != nil && cfg.cacheCap > 0:
		cfg.cache.setCapacity(cfg.cacheCap)
	case cfg.cache == nil && cfg.cacheCap > 0:
		cfg.cache = NewSweepCacheSize(cfg.cacheCap)
	case cfg.cache == nil:
		cfg.cache = defaultSweepCache
	}

	// Phase 1: resolve every spec, consult the cache, and build the
	// fresh pattern source the run will consume — in parallel.
	tasks := make([]sweepTask, len(specs))
	runParallel(cfg.workers, len(specs), func(i int) {
		tasks[i].prepare(ctx, specs[i], i, &cfg)
	})

	// Phase 2: tile the batchable remainder by (model, algorithm, n,
	// rounds); everything else stays a single.
	var units [][]*sweepTask
	tiles := make(map[string][]*sweepTask)
	var tileKeys []string
	for i := range tasks {
		t := &tasks[i]
		if t.done {
			continue
		}
		if cfg.batch > 1 && t.batchable {
			key := t.tileKey()
			if _, seen := tiles[key]; !seen {
				tileKeys = append(tileKeys, key)
			}
			tiles[key] = append(tiles[key], t)
		} else {
			units = append(units, []*sweepTask{t})
		}
	}
	for _, key := range tileKeys {
		group := tiles[key]
		// Order the group by schedule identity (the session's pattern
		// spec — "scenario:<fingerprint>" for schedule-driven runs)
		// before chunking, so runs replaying equal schedules land in the
		// same tile and the batch runner's graph clustering collapses
		// them onto shared step plans. The sort is stable on the spec
		// index, so equal-schedule runs keep submission order and sweeps
		// with all-distinct schedules keep their original tiling.
		sort.SliceStable(group, func(i, j int) bool {
			return group[i].session.advSpec < group[j].session.advSpec
		})
		// Split large tiles so one tile cannot serialize the pool: at
		// most cfg.batch runs per tile, and at least one tile per
		// tile-level worker when the group is large enough (intra-tile
		// parallelism shrinks that layer, leaving larger tiles for the
		// in-step workers to shard).
		tile := (len(group) + execWorkers - 1) / execWorkers
		if tile > cfg.batch {
			tile = cfg.batch
		}
		if tile < 1 {
			tile = 1
		}
		for len(group) > 0 {
			end := tile
			if end > len(group) {
				end = len(group)
			}
			units = append(units, group[:end])
			group = group[end:]
		}
	}

	// Phase 3: execute the units over the worker pool.
	runParallel(execWorkers, len(units), func(u int) {
		if len(units[u]) == 1 {
			units[u][0].runSingle(ctx, &cfg)
		} else {
			runSweepTile(ctx, units[u], &cfg)
		}
	})

	results := make([]SweepResult, len(specs))
	for i := range tasks {
		results[i] = tasks[i].res
	}
	observeSweepOutcome(results)
	return results, ctx.Err()
}

// runParallel fans f(0..n-1) out over at most workers goroutines.
func runParallel(workers, n int, f func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// sweepTask is one sweep entry moving through the phases.
type sweepTask struct {
	res       SweepResult
	session   *Session
	src       core.PatternSource
	key       string
	cacheable bool
	batchable bool
	done      bool
}

// prepare resolves the spec, consults the cache, and classifies the
// task for tiling.
func (t *sweepTask) prepare(ctx context.Context, spec RunSpec, index int, cfg *sweepConfig) {
	t.res = SweepResult{Index: index, Spec: spec}
	if err := ctx.Err(); err != nil {
		t.fail(err)
		return
	}
	var extra []Option
	if cfg.lib != nil {
		extra = append(extra, WithLibrary(cfg.lib))
	}
	if cfg.backend != "" {
		extra = append(extra, WithBackend(cfg.backend))
	}
	sessionSpec := spec
	if spec.Scenario != "" {
		// Resolve through the sweep-wide memo and hand the session the
		// schedule itself, so grid entries sharing a scenario spec do
		// not re-materialize it per entry.
		sch, err := cfg.resolveScenario(spec.Scenario)
		if err != nil {
			t.fail(err)
			return
		}
		extra = append(extra, WithScenario(sch))
		sessionSpec.Scenario = ""
	}
	session, err := NewSession(sessionSpec, extra...)
	if err != nil {
		t.fail(err)
		return
	}
	t.session = session
	t.key, t.cacheable = session.cacheKey()
	if t.cacheable {
		t.res.Fingerprint, _ = session.Fingerprint()
		if summary, hit := cfg.cache.get(t.key); hit {
			t.res.Cached = true
			t.res.Summary = &summary
			t.done = true
			t.release()
			return
		}
	}
	src, _, err := session.newSource()
	if err != nil {
		t.fail(err)
		return
	}
	t.src = src
	if _, denseOK := core.AsDense(session.alg); denseOK &&
		session.resolveBackend().DenseEnabled() && core.IsOblivious(src) {
		t.batchable = true
	}
}

// fail finalizes the task with an error.
func (t *sweepTask) fail(err error) {
	t.res.Err = err.Error()
	t.done = true
	t.release()
}

// finish records the computed summary and feeds the cache.
func (t *sweepTask) finish(summary RunSummary, cfg *sweepConfig) {
	if t.cacheable {
		cfg.cache.put(t.key, summary)
	}
	t.res.Summary = &summary
	t.done = true
	t.release()
}

// release drops the task's session and source once its result is final,
// so a large sweep does not hold every resolved session live until the
// last unit completes.
func (t *sweepTask) release() {
	t.session, t.src = nil, nil
}

// tileKey groups batchable tasks that may step together: same library
// (cfg-wide), model, algorithm, agent count, and round budget. The
// algorithm is keyed by its exact spec string — display names are lossy
// (a formatted parameter can collide across distinct parameterizations)
// and every run of a tile steps under the first task's algorithm, so
// only specs the registry resolves identically may share a tile.
func (t *sweepTask) tileKey() string {
	s := t.session
	return fmt.Sprintf("%s|%s|%d|%d", s.modelSpec, t.res.Spec.Algorithm, s.N(), s.rounds)
}

// serveLate re-checks the cache at execution time: a concurrent sweep
// may have computed this run since the prepare phase.
func (t *sweepTask) serveLate(cfg *sweepConfig) bool {
	if !t.cacheable {
		return false
	}
	summary, hit := cfg.cache.lateGet(t.key)
	if !hit {
		return false
	}
	t.res.Cached = true
	t.res.Summary = &summary
	t.done = true
	t.release()
	return true
}

// runSingle executes one task through the per-session path (the
// pre-batch-plane behavior), reusing the already-built source.
func (t *sweepTask) runSingle(ctx context.Context, cfg *sweepConfig) {
	if err := ctx.Err(); err != nil {
		t.fail(err)
		return
	}
	if t.serveLate(cfg) {
		return
	}
	s := t.session
	tr, err := core.RunBackendCtx(ctx, s.alg, s.inputs, t.src, s.rounds, s.resolveBackend())
	if err != nil {
		t.fail(err)
		return
	}
	t.finish(Summarize(&Result{tr: tr}), cfg)
}

// runSweepTile steps every task of one tile together on the batch
// plane, computing per-run summaries on the fly — no trace
// materialization: only the diameter series (needed by GeometricRate
// and WorstRoundRatio), the running validity flag, and the final
// outputs are kept per run.
// sweepPlanCacheCap sizes a sweep runner's step-plan cache by a ~4 MiB
// byte budget at roughly 40n+300 bytes per cached plan (segments, fold
// scratch, and the mask key), never below the runner's flat default —
// e.g. ~4400 plans at n = 16, ~1400 at n = 64. Churn-style generators
// draw from populations of a few thousand distinct graphs, so holding
// the whole working set converts steady-state lookups into map hits.
func sweepPlanCacheCap(n int) int {
	c := (4 << 20) / (40*n + 300)
	if c < core.DefaultPlanCacheCap {
		return core.DefaultPlanCacheCap
	}
	return c
}

// planCacheTotals aggregates every sweep tile's step-plan cache
// accounting process-wide. Per-runner counters are plain fields on the
// hot path; each tile flushes them here once, on completion, so the
// status endpoints can report plan reuse without slowing stepping.
var planCacheTotals struct {
	hits, misses, evictions, deferrals atomic.Uint64
}

// PlanCacheCounters is the process-wide step-plan cache accounting
// (see core.BatchRunner.PlanCacheStats for the per-field semantics),
// summed over every completed sweep tile.
type PlanCacheCounters struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Deferrals uint64 `json:"deferrals"`
}

// PlanCacheTotals returns the process-wide plan-cache counters.
func PlanCacheTotals() PlanCacheCounters {
	return PlanCacheCounters{
		Hits:      planCacheTotals.hits.Load(),
		Misses:    planCacheTotals.misses.Load(),
		Evictions: planCacheTotals.evictions.Load(),
		Deferrals: planCacheTotals.deferrals.Load(),
	}
}

func runSweepTile(ctx context.Context, tile []*sweepTask, cfg *sweepConfig) {
	if err := ctx.Err(); err != nil {
		for _, t := range tile {
			t.fail(err)
		}
		return
	}
	live := tile[:0:0]
	for _, t := range tile {
		if !t.serveLate(cfg) {
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return
	}
	tile = live
	s0 := tile[0].session
	d, _ := core.AsDense(s0.alg)
	rounds, n := s0.rounds, s0.N()
	B := len(tile)
	inputs := make([][]float64, B)
	for i, t := range tile {
		inputs[i] = t.session.inputs
	}
	br := core.NewBatchRunner(d, inputs)
	tileStart := time.Now()
	defer func() {
		h, m, e, df, _ := br.PlanCacheStats()
		planCacheTotals.hits.Add(h)
		planCacheTotals.misses.Add(m)
		planCacheTotals.evictions.Add(e)
		planCacheTotals.deferrals.Add(df)
		if sweepObs != nil {
			sweepObs.tiles.Inc()
			sweepObs.tileSeconds.Observe(time.Since(tileStart).Seconds())
		}
	}()
	// Intra-tile parallelism: the sweep-resolved count, raised by any
	// session in the tile that pinned a higher one via
	// WithBatchParallelism (parallel stepping is bit-identical, so
	// raising it for tile-mates only trades latency).
	par := cfg.intra
	for _, t := range tile {
		if p := t.session.batchPar; p > par {
			par = p
		}
	}
	br.SetParallelism(par)
	// Scenario sweeps revisit graphs heavily (lassos, churn epochs, and
	// generators drawing from small graph populations), so size the plan
	// cache by a byte budget instead of the flat default: small-n plans
	// are tiny, and holding the whole working set turns the per-round
	// lookup into a map hit instead of rebuild churn.
	br.SetPlanCacheCap(sweepPlanCacheCap(n))

	diams := make([][]float64, B)
	valid := make([]bool, B)
	lo0 := make([]float64, B)
	hi0 := make([]float64, B)
	los := make([]float64, B)
	his := make([]float64, B)
	out := make([]float64, n)
	for i := 0; i < B; i++ {
		diams[i] = make([]float64, 0, rounds+1)
		lo, hi := br.Hull(i)
		lo0[i], hi0[i] = lo, hi
		diams[i] = append(diams[i], hi-lo)
		valid[i] = true
	}

	// Schedule-driven sources (the scenario path — the common case) are
	// devirtualized once here: the per-round loop indexes the lasso
	// directly instead of paying an interface dispatch per run per round.
	gs := make([]graph.Graph, B)
	scheds := make([]core.Schedule, B)
	schedOK := true
	for i, t := range tile {
		var ok bool
		if scheds[i], ok = t.src.(core.Schedule); !ok {
			schedOK = false
			break
		}
	}
	done := ctx.Done()
	for round := 1; round <= rounds; round++ {
		if done != nil {
			select {
			case <-done:
				for _, t := range tile {
					t.fail(ctx.Err())
				}
				return
			default:
			}
		}
		if schedOK {
			for i := range scheds {
				gs[i] = scheds[i].At(round)
			}
		} else {
			for i, t := range tile {
				gs[i] = t.src.Next(round, nil)
			}
		}
		br.StepEachWithHulls(gs, los, his)
		for i := 0; i < B; i++ {
			diams[i] = append(diams[i], his[i]-los[i])
			// Equivalent to checking every output against the initial
			// hull, since lo/hi are exact selections from the outputs.
			if los[i] < lo0[i]-validityTol || his[i] > hi0[i]+validityTol {
				valid[i] = false
			}
		}
	}

	for i, t := range tile {
		br.Outputs(i, out)
		final := append([]float64(nil), out...)
		t.finish(RunSummary{
			Algorithm:       t.session.alg.Name(),
			Rounds:          rounds,
			InitialDiameter: diams[i][0],
			FinalDiameter:   diams[i][rounds],
			GeometricRate:   GeometricRate(diams[i]),
			WorstRoundRatio: WorstRoundRatio(diams[i]),
			FinalOutputs:    final,
			Validity:        valid[i],
		}, cfg)
	}
}

// validityTol is the tolerance Summarize passes to ValidityHolds.
const validityTol = 1e-9
