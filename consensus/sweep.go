package consensus

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// RunSpec is the declarative form of a session configuration — the batch
// and wire counterpart of the functional options. Zero fields take the
// session defaults.
type RunSpec struct {
	Model     string    `json:"model,omitempty"`
	Algorithm string    `json:"algorithm,omitempty"`
	Adversary string    `json:"adversary,omitempty"`
	Inputs    []float64 `json:"inputs,omitempty"`
	Rounds    int       `json:"rounds,omitempty"`
	Seed      int64     `json:"seed,omitempty"`
	Depth     int       `json:"depth,omitempty"`
}

// options lowers the spec to session options.
func (spec RunSpec) options() []Option {
	var opts []Option
	if spec.Model != "" {
		opts = append(opts, WithModel(spec.Model))
	}
	if spec.Algorithm != "" {
		opts = append(opts, WithAlgorithm(spec.Algorithm))
	}
	if spec.Adversary != "" {
		opts = append(opts, WithAdversary(spec.Adversary))
	}
	if spec.Inputs != nil {
		opts = append(opts, WithInputs(spec.Inputs...))
	}
	if spec.Rounds != 0 {
		opts = append(opts, WithRounds(spec.Rounds))
	}
	if spec.Seed != 0 {
		opts = append(opts, WithSeed(spec.Seed))
	}
	if spec.Depth != 0 {
		opts = append(opts, WithDepth(spec.Depth))
	}
	return opts
}

// NewSession builds a session from a declarative spec plus optional extra
// options (applied after the spec's).
func NewSession(spec RunSpec, extra ...Option) (*Session, error) {
	return New(append(spec.options(), extra...)...)
}

// RunSummary condenses one completed run for batch and wire use.
type RunSummary struct {
	Algorithm       string    `json:"algorithm"`
	Rounds          int       `json:"rounds"`
	InitialDiameter float64   `json:"initial_diameter"`
	FinalDiameter   float64   `json:"final_diameter"`
	GeometricRate   float64   `json:"geometric_rate"`
	WorstRoundRatio float64   `json:"worst_round_ratio"`
	FinalOutputs    []float64 `json:"final_outputs"`
	Validity        bool      `json:"validity"`
}

// Summarize condenses a result.
func Summarize(res *Result) RunSummary {
	return RunSummary{
		Algorithm:       res.Algorithm(),
		Rounds:          res.Rounds(),
		InitialDiameter: res.DiameterAt(0),
		FinalDiameter:   res.DiameterAt(res.Rounds()),
		GeometricRate:   res.GeometricRate(),
		WorstRoundRatio: res.WorstRoundRatio(),
		FinalOutputs:    res.FinalOutputs(),
		Validity:        res.ValidityHolds(1e-9),
	}
}

// SweepCache memoizes run summaries by configuration fingerprint. It is
// safe for concurrent use and shareable across Sweep calls and servers.
type SweepCache struct {
	mu     sync.Mutex
	m      map[string]RunSummary
	max    int
	hits   uint64
	misses uint64
}

// defaultSweepCacheSize bounds a cache built by NewSweepCache; past the
// cap insertions drop the oldest-unspecified entries (map order) to stay
// bounded.
const defaultSweepCacheSize = 1 << 16

// NewSweepCache returns an empty cache with the default size bound.
func NewSweepCache() *SweepCache {
	return &SweepCache{m: make(map[string]RunSummary), max: defaultSweepCacheSize}
}

// defaultSweepCache is the cache Sweep uses when the caller supplies
// none, so independent sweeps of identical work share results.
var defaultSweepCache = NewSweepCache()

// get looks up a summary.
func (c *SweepCache) get(key string) (RunSummary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return s, ok
}

// put stores a summary, evicting arbitrary entries when full. It
// tolerates a zero-value SweepCache by lazily adopting the defaults.
func (c *SweepCache) put(key string, s RunSummary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]RunSummary)
	}
	if c.max <= 0 {
		c.max = defaultSweepCacheSize
	}
	if len(c.m) >= c.max {
		for k := range c.m {
			delete(c.m, k)
			if len(c.m) < c.max {
				break
			}
		}
	}
	c.m[key] = s
}

// Stats returns (hits, misses, entries).
func (c *SweepCache) Stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.m)
}

// cacheKey derives the fingerprint key of a session: the canonical
// initial-configuration fingerprint (the same encoding the valency
// engine's transposition tables are keyed by) plus every run parameter
// that can change the outcome — including the identity of the resolving
// registries, because two libraries may map one spec name to different
// engines. The execution backend is deliberately absent — the backends
// are differentially tested to be bit-identical. ok is false for
// non-fingerprintable algorithms; those runs are never cached.
func (s *Session) cacheKey() (string, bool) {
	fp, ok := core.NewConfig(s.alg, s.inputs).AppendFingerprint(nil)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%d/%d/%d|%s|%s|%s|r%d|s%d|d%d|%x",
		s.lib.models().id, s.lib.algorithms().id, s.lib.adversaries().id,
		s.modelSpec, s.alg.Name(), s.advSpec, s.rounds, s.seed, s.depth, fp), true
}

// SweepResult is one sweep entry's outcome.
type SweepResult struct {
	Index   int         `json:"index"`
	Spec    RunSpec     `json:"spec"`
	Cached  bool        `json:"cached"`
	Summary *RunSummary `json:"summary,omitempty"`
	Err     string      `json:"error,omitempty"`
}

// sweepConfig collects sweep options.
type sweepConfig struct {
	workers int
	cache   *SweepCache
	backend Backend
	lib     *Library
}

// SweepOption configures Sweep.
type SweepOption func(*sweepConfig)

// SweepWorkers bounds the worker pool (default: GOMAXPROCS).
func SweepWorkers(n int) SweepOption {
	return func(c *sweepConfig) { c.workers = n }
}

// WithSweepCache uses the given cache instead of the shared default.
func WithSweepCache(cache *SweepCache) SweepOption {
	return func(c *sweepConfig) { c.cache = cache }
}

// SweepBackend pins the execution backend of every swept session.
func SweepBackend(b Backend) SweepOption {
	return func(c *sweepConfig) { c.backend = b }
}

// SweepLibrary resolves every swept spec against lib.
func SweepLibrary(lib *Library) SweepOption {
	return func(c *sweepConfig) { c.lib = lib }
}

// Sweep runs every spec over a bounded worker pool and returns one result
// per spec, in input order. Individual failures land in the result's Err
// field; the returned error is non-nil only when ctx is cancelled, in
// which case unprocessed entries carry the context error. Results are
// memoized in the (shared, fingerprint-keyed) sweep cache, so repeated
// and overlapping sweeps do not recompute identical runs; valency-driven
// entries additionally share the per-model engine pool.
func Sweep(ctx context.Context, specs []RunSpec, opts ...SweepOption) ([]SweepResult, error) {
	cfg := sweepConfig{workers: runtime.GOMAXPROCS(0), cache: defaultSweepCache}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.workers > len(specs) {
		cfg.workers = len(specs)
	}

	results := make([]SweepResult, len(specs))
	var next int64
	var wg sync.WaitGroup
	wg.Add(cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(specs) {
					return
				}
				results[i] = sweepOne(ctx, specs[i], i, &cfg)
			}
		}()
	}
	wg.Wait()
	return results, ctx.Err()
}

// sweepOne processes one sweep entry: resolve, consult the cache, run.
func sweepOne(ctx context.Context, spec RunSpec, index int, cfg *sweepConfig) SweepResult {
	res := SweepResult{Index: index, Spec: spec}
	if err := ctx.Err(); err != nil {
		res.Err = err.Error()
		return res
	}
	var extra []Option
	if cfg.lib != nil {
		extra = append(extra, WithLibrary(cfg.lib))
	}
	if cfg.backend != "" {
		extra = append(extra, WithBackend(cfg.backend))
	}
	session, err := NewSession(spec, extra...)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	key, cacheable := session.cacheKey()
	if cacheable {
		if summary, hit := cfg.cache.get(key); hit {
			res.Cached = true
			res.Summary = &summary
			return res
		}
	}
	out, err := session.Run(ctx)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	summary := Summarize(out)
	if cacheable {
		cfg.cache.put(key, summary)
	}
	res.Summary = &summary
	return res
}
