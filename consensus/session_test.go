package consensus

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

func TestSessionDefaultsAndValidation(t *testing.T) {
	s, err := New(WithModel("deaf:4"))
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 4 || s.Algorithm() != "midpoint" || s.Adversary() != "cycle" || s.RoundBudget() != DefaultRounds {
		t.Errorf("defaults: n=%d alg=%s adv=%s rounds=%d", s.N(), s.Algorithm(), s.Adversary(), s.RoundBudget())
	}
	if got := s.Inputs(); got[0] != 0 || got[1] != 1 || got[2] != 0.5 {
		t.Errorf("default inputs = %v", got)
	}

	for _, bad := range [][]Option{
		{},                                     // no model, no inputs
		{WithModel("bogus")},                   // unknown model
		{WithModel("deaf:3"), WithAlgorithm("bogus")},            // unknown algorithm
		{WithModel("deaf:3"), WithAdversary("bogus")},            // unknown adversary
		{WithModel("deaf:3"), WithInputs(0, 1)},                  // arity mismatch
		{WithModel("deaf:3"), WithRounds(-1)},                    // negative rounds
		{WithModel("deaf:3"), WithDepth(-1)},                     // negative depth
		{WithModel("deaf:3"), WithBackend("bogus")},              // unknown backend
		{WithInputs(0, 1, 0.5)},                                  // inputs without model or adversary
		{WithInputs(0, 1, 0.5), WithAdversary("cycle")},          // model-needing adversary without model
		{WithInputs(0, 1, 0.5), WithValencyFloor(), WithAdversary("randomrooted:0.5")}, // floor without model
	} {
		if _, err := New(bad...); err == nil {
			t.Errorf("New(%d opts) succeeded, want error", len(bad))
		}
	}
}

// A session run must be bit-identical to driving the engines directly.
func TestSessionRunMatchesCore(t *testing.T) {
	const rounds = 9
	s, err := New(
		WithModel("deaf:4"),
		WithAdversary("random"),
		WithSeed(42),
		WithInputs(0, 1, 0.2, 0.8),
		WithRounds(rounds),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	m := model.DeafModel(graph.Complete(4))
	alg, err := Algorithms.New("midpoint", 4)
	if err != nil {
		t.Fatal(err)
	}
	src := core.RandomFromModel{Model: m, Rng: rand.New(rand.NewSource(42))}
	tr := core.Run(alg, []float64{0, 1, 0.2, 0.8}, src, rounds)

	for tt := 0; tt <= rounds; tt++ {
		want, got := tr.Outputs[tt], res.Outputs(tt)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("round %d agent %d: session %v, core %v", tt, i, got[i], want[i])
			}
		}
	}
	if res.GeometricRate() != tr.GeometricRate() {
		t.Errorf("geometric rate %v vs %v", res.GeometricRate(), tr.GeometricRate())
	}
}

// Both execution backends must produce identical sessions, and streaming
// must agree with the materialized run.
func TestSessionBackendParityAndStreaming(t *testing.T) {
	for _, algorithm := range []string{"midpoint", "amortized", "quantized:0.125"} {
		var runs [][]float64
		for _, backend := range []Backend{BackendAgents, BackendDense} {
			s, err := New(
				WithModel("deaf:5"),
				WithAlgorithm(algorithm),
				WithAdversary("cycle"),
				WithRounds(7),
				WithBackend(backend),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, res.FinalOutputs())

			// Streaming must visit the same states.
			var last Snapshot
			count := 0
			for snap, err := range s.Rounds(context.Background()) {
				if err != nil {
					t.Fatal(err)
				}
				if snap.Round != count {
					t.Fatalf("snapshot round %d at position %d", snap.Round, count)
				}
				count++
				last = snap
			}
			if count != 8 {
				t.Fatalf("%s/%s: %d snapshots, want 8", algorithm, backend, count)
			}
			final := res.FinalOutputs()
			for i := range final {
				if last.Outputs[i] != final[i] {
					t.Fatalf("%s/%s: streamed final %v, run final %v", algorithm, backend, last.Outputs, final)
				}
			}
		}
		a, b := runs[0], runs[1]
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: backend divergence %v vs %v", algorithm, a, b)
			}
		}
	}
}

// The certified floor streamed by a greedy session must match the direct
// estimator bounds, and sessions of one configuration share one engine.
func TestSessionFloorAndEngineSharing(t *testing.T) {
	newSession := func() *Session {
		s, err := New(
			WithModel("twoagent"),
			WithAlgorithm("twothirds"),
			WithAdversary("greedy"),
			WithDepth(4),
			WithInputs(0, 1),
			WithRounds(3),
			WithValencyFloor(),
			WithGreedyTrace(),
		)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := newSession(), newSession()
	if s1.engine == nil || s1.engine != s2.engine {
		t.Fatal("sessions of one configuration must share one pooled engine")
	}

	var floors []float64
	for snap, err := range s1.Rounds(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if !snap.HasFloor {
			t.Fatal("floor missing")
		}
		floors = append(floors, snap.Floor)
		if snap.Round > 0 && len(snap.Successors) != 3 {
			t.Fatalf("round %d: %d successor intervals, want 3", snap.Round, len(snap.Successors))
		}
	}
	// Replay directly against the engines.
	m := model.TwoAgent()
	alg, _ := Algorithms.New("twothirds", 2)
	est := valency.NewEstimator(m, 4, alg.Convex())
	c := core.NewConfig(alg, []float64{0, 1})
	if floors[0] != est.DeltaLower(c) {
		t.Errorf("round-0 floor %v, estimator %v", floors[0], est.DeltaLower(c))
	}
	// The greedy race decays by 1/3 per round for two-thirds (up to the
	// estimator's settle tolerance).
	for tt := 1; tt < len(floors); tt++ {
		ratio := floors[tt] / floors[tt-1]
		if ratio < 1.0/3.0-1e-6 || ratio > 1.0/3.0+1e-6 {
			t.Errorf("floor ratio at round %d = %v, want 1/3", tt, ratio)
		}
	}
}

// cancelAfterLibrary builds a library whose "cancelafter" adversary
// cancels the given context after k rounds, to exercise mid-run
// cancellation.
func cancelAfterLibrary(t *testing.T, cancel context.CancelFunc, k int) *Library {
	t.Helper()
	reg := NewAdversaryRegistry()
	err := reg.Register(AdversaryFactory{
		Name:       "cancelafter",
		Usage:      "cancelafter",
		Summary:    "test source cancelling its context mid-run",
		NeedsModel: true,
		New: func(arg string, env AdversaryEnv) (core.PatternSource, error) {
			return core.Func(func(round int, c *core.Config) graph.Graph {
				if round == k {
					cancel()
				}
				return env.Model.Graph(0)
			}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Library{Adversaries: reg}
}

func TestSessionRunHonorsCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := New(
		WithModel("deaf:4"),
		WithAdversary("cancelafter"),
		WithRounds(1000),
		WithLibrary(cancelAfterLibrary(t, cancel, 5)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx); err != context.Canceled {
		t.Fatalf("Run under mid-run cancellation: %v, want context.Canceled", err)
	}

	// A pre-cancelled context stops before the first round.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := s.Run(pre); err != context.Canceled {
		t.Fatalf("Run under pre-cancelled context: %v, want context.Canceled", err)
	}
}

func TestSessionRoundsHonorsCancellationMidStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := New(
		WithModel("deaf:4"),
		WithAdversary("cancelafter"),
		WithRounds(1000),
		WithLibrary(cancelAfterLibrary(t, cancel, 7)),
	)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	var got error
	for snap, err := range s.Rounds(ctx) {
		if err != nil {
			got = err
			break
		}
		seen = snap.Round
	}
	if got != context.Canceled {
		t.Fatalf("stream error %v, want context.Canceled", got)
	}
	if seen == 0 || seen >= 1000 {
		t.Fatalf("stream stopped after round %d, want mid-run", seen)
	}
}

// N parallel sessions sharing the default registries, the engine pool,
// and the sweep cache — the -race acceptance test.
func TestConcurrentSessionsSharedRegistriesAndCache(t *testing.T) {
	cache := NewSweepCache()
	specs := []RunSpec{
		{Model: "twoagent", Algorithm: "twothirds", Adversary: "greedy", Rounds: 4, Depth: 4},
		{Model: "deaf:4", Algorithm: "midpoint", Adversary: "random", Rounds: 8, Seed: 3},
		{Model: "psi:4", Algorithm: "amortized", Adversary: "cycle", Rounds: 6},
	}
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Direct session use...
			s, err := New(
				WithModel("twoagent"),
				WithAlgorithm("twothirds"),
				WithAdversary("greedy"),
				WithDepth(4),
				WithRounds(4),
			)
			if err != nil {
				errs <- err
				return
			}
			if _, err := s.Run(context.Background()); err != nil {
				errs <- err
				return
			}
			// ...and sweeps over the shared cache, concurrently.
			results, err := Sweep(context.Background(), specs, WithSweepCache(cache), SweepWorkers(2))
			if err != nil {
				errs <- err
				return
			}
			for _, r := range results {
				if r.Err != "" {
					errs <- &errString{r.Err}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses, entries := cache.Stats()
	if entries == 0 || hits == 0 {
		t.Errorf("shared cache unused: hits=%d misses=%d entries=%d", hits, misses, entries)
	}
}

type errString struct{ s string }

func (e *errString) Error() string { return e.s }
