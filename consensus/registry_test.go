package consensus

import (
	"testing"
)

func TestModelRegistrySpecs(t *testing.T) {
	cases := []struct {
		in      string
		wantN   int
		wantLen int
	}{
		{"twoagent", 2, 3},
		{"deaf:4", 4, 4},
		{"psi:5", 5, 3},
		{"rooted:2", 2, 3},
		{"nonsplit:2", 2, 3},
		{"na:4,1", 4, 256},
		{"edges:3;0>1,1>2", 3, 1},
	}
	for _, tc := range cases {
		m, err := Models.New(tc.in)
		if err != nil {
			t.Errorf("Models.New(%q): %v", tc.in, err)
			continue
		}
		if m.N() != tc.wantN || m.Size() != tc.wantLen {
			t.Errorf("Models.New(%q) = n=%d size=%d, want n=%d size=%d",
				tc.in, m.N(), m.Size(), tc.wantN, tc.wantLen)
		}
	}
	m, err := Models.New("asyncchain:6,2")
	if err != nil {
		t.Fatalf("asyncchain: %v", err)
	}
	if m.N() != 6 || m.Size() < 4 {
		t.Errorf("asyncchain:6,2 = n=%d size=%d", m.N(), m.Size())
	}
	for _, bad := range []string{"", "wat", "deaf:x", "deaf:0", "psi:3", "na:4", "na:4,0",
		"edges:3;0-1", "edges:3;9>1", "edges:x;0>1", "rooted:9", "twoagent:arg"} {
		if _, err := Models.New(bad); err == nil {
			t.Errorf("Models.New(%q) succeeded, want error", bad)
		}
	}
}

func TestAlgorithmRegistrySpecs(t *testing.T) {
	for _, tc := range []struct {
		in   string
		n    int
		name string
	}{
		{"midpoint", 3, "midpoint"},
		{"mean", 3, "mean"},
		{"amortized", 4, "amortized-midpoint"},
		{"twothirds", 2, "two-thirds"},
		{"selfweighted:0.25", 3, "self-weighted(0.25)"},
		{"quantized:0.125", 4, "quantized-midpoint(q=0.125)"},
		{"floodroot:1", 4, "flood-root(1)"},
		{"floodroot", 4, "flood-root(0)"},
		{"rb-midpoint", 4, "rb-midpoint"},
		{"rb-selectedmean:2", 6, "rb-selected-mean(f=2)"},
	} {
		alg, err := Algorithms.New(tc.in, tc.n)
		if err != nil {
			t.Errorf("Algorithms.New(%q): %v", tc.in, err)
			continue
		}
		if alg.Name() != tc.name {
			t.Errorf("Algorithms.New(%q).Name = %q, want %q", tc.in, alg.Name(), tc.name)
		}
	}
	for _, bad := range []struct {
		in string
		n  int
	}{
		{"nope", 3}, {"twothirds", 3}, {"selfweighted:2", 3},
		{"selfweighted:x", 3}, {"rb-selectedmean:0", 4},
		{"quantized:0", 4}, {"quantized:x", 4},
		{"floodroot:9", 4}, {"floodroot:x", 4},
		{"midpoint:arg", 3},
	} {
		if _, err := Algorithms.New(bad.in, bad.n); err == nil {
			t.Errorf("Algorithms.New(%q, n=%d) succeeded, want error", bad.in, bad.n)
		}
	}
}

func TestAdversaryRegistrySpecs(t *testing.T) {
	m, err := Models.New("deaf:3")
	if err != nil {
		t.Fatal(err)
	}
	alg, err := Algorithms.New("midpoint", 3)
	if err != nil {
		t.Fatal(err)
	}
	env := AdversaryEnv{Model: m, Algorithm: alg, N: 3, Seed: 1, Depth: 2}
	for _, good := range []string{"random", "cycle", "fixed:1", "randomrooted:0.3", "randomnonsplit:0.3"} {
		if _, err := Adversaries.New(good, env); err != nil {
			t.Errorf("Adversaries.New(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"", "nope", "fixed:9", "fixed:x", "randomrooted:0",
		"randomrooted:2", "random:arg", "cycle:arg"} {
		if _, err := Adversaries.New(bad, env); err == nil {
			t.Errorf("Adversaries.New(%q) succeeded, want error", bad)
		}
	}
	// greedy without an engine must be rejected, not crash.
	if _, err := Adversaries.New("greedy", env); err == nil {
		t.Error("greedy without an engine accepted")
	}
	// Model-needing sources without a model must be rejected.
	if _, err := Adversaries.New("cycle", AdversaryEnv{N: 3, Seed: 1}); err == nil {
		t.Error("cycle without a model accepted")
	}
}

func TestRegistryRegistrationErrors(t *testing.T) {
	r := NewAlgorithmRegistry()
	if err := r.Register(AlgorithmFactory{}); err == nil {
		t.Error("empty algorithm factory accepted")
	}
	ok := AlgorithmFactory{Name: "x", New: Algorithms.New}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Error("duplicate algorithm factory accepted")
	}

	mr := NewModelRegistry()
	if err := mr.Register(ModelFactory{}); err == nil {
		t.Error("empty model factory accepted")
	}
	ar := NewAdversaryRegistry()
	if err := ar.Register(AdversaryFactory{}); err == nil {
		t.Error("empty adversary factory accepted")
	}
}

func TestRegistryDescribe(t *testing.T) {
	if names := Algorithms.Names(); len(names) < 9 {
		t.Errorf("algorithm registry too small: %v", names)
	}
	infos := Models.Describe()
	if len(infos) != len(Models.Names()) {
		t.Errorf("Describe/Names mismatch: %d vs %d", len(infos), len(Models.Names()))
	}
	for _, info := range infos {
		if info.Name == "" || info.Usage == "" || info.Summary == "" {
			t.Errorf("incomplete model info: %+v", info)
		}
	}
}

func TestParseFloats(t *testing.T) {
	got, err := ParseFloats("0, 1, 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 0.5 {
		t.Errorf("ParseFloats = %v", got)
	}
	for _, bad := range []string{"", "a,b", "1,,2"} {
		if _, err := ParseFloats(bad); err == nil {
			t.Errorf("ParseFloats(%q) succeeded, want error", bad)
		}
	}
}
