package consensus

import (
	"context"
	"testing"
)

func TestSweepOrderErrorsAndCaching(t *testing.T) {
	cache := NewSweepCache()
	specs := []RunSpec{
		{Model: "deaf:4", Algorithm: "midpoint", Adversary: "cycle", Rounds: 6},
		{Model: "bogus"},
		{Model: "twoagent", Algorithm: "twothirds", Adversary: "cycle", Rounds: 5},
	}
	results, err := Sweep(context.Background(), specs, WithSweepCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
	}
	if results[0].Err != "" || results[2].Err != "" {
		t.Errorf("good entries failed: %q, %q", results[0].Err, results[2].Err)
	}
	if results[1].Err == "" {
		t.Error("bad entry succeeded")
	}
	if results[0].Cached || results[2].Cached {
		t.Error("first sweep reported cache hits")
	}
	if results[0].Summary.FinalDiameter >= results[0].Summary.InitialDiameter {
		t.Errorf("no contraction: %+v", results[0].Summary)
	}

	// The identical sweep must be served from the cache with identical
	// summaries.
	again, err := Sweep(context.Background(), specs, WithSweepCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		if !again[i].Cached {
			t.Errorf("entry %d not cached on second sweep", i)
		}
		a, b := again[i].Summary, results[i].Summary
		if a.FinalDiameter != b.FinalDiameter || a.GeometricRate != b.GeometricRate ||
			a.Algorithm != b.Algorithm || a.Rounds != b.Rounds {
			t.Errorf("cached summary diverged: %+v vs %+v", a, b)
		}
	}
	hits, misses, entries := cache.Stats()
	if hits < 2 || entries < 2 {
		t.Errorf("cache stats hits=%d misses=%d entries=%d", hits, misses, entries)
	}
}

func TestSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := make([]RunSpec, 16)
	for i := range specs {
		specs[i] = RunSpec{Model: "deaf:4", Algorithm: "midpoint", Adversary: "cycle", Rounds: 4, Seed: int64(i + 1)}
	}
	results, err := Sweep(ctx, specs)
	if err != context.Canceled {
		t.Fatalf("Sweep under cancelled context: %v, want context.Canceled", err)
	}
	for _, r := range results {
		if r.Err == "" && r.Summary == nil {
			t.Error("cancelled sweep entry has neither result nor error")
		}
	}
}

func TestSweepSeedsDiffer(t *testing.T) {
	// Different seeds must be distinct cache keys.
	cache := NewSweepCache()
	specs := []RunSpec{
		{Model: "deaf:4", Algorithm: "midpoint", Adversary: "random", Rounds: 5, Seed: 1},
		{Model: "deaf:4", Algorithm: "midpoint", Adversary: "random", Rounds: 5, Seed: 2},
	}
	results, err := Sweep(context.Background(), specs, WithSweepCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Cached || results[1].Cached {
		t.Error("distinct seeds served from one cache entry")
	}
	if _, _, entries := cache.Stats(); entries != 2 {
		t.Errorf("cache entries = %d, want 2", entries)
	}
}
