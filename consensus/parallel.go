package consensus

import (
	"flag"
	"fmt"
	"runtime"
	"strconv"

	"repro/internal/core"
)

// This file is the facade over the batch plane's intra-step
// parallelism knob (core.BatchRunner.SetParallelism): the process-wide
// default, the shared "-batch-parallelism" flag helper for the cmds,
// and — in session.go / sweep.go — the WithBatchParallelism and
// SweepBatchParallelism options. Parallel stepping is bit-identical to
// sequential stepping at every setting, so the knob only trades
// latency for cores, never results.

// ProcessBatchParallelism returns the process-wide default intra-step
// worker count for batched execution (1 = sequential unless
// REPRO_BATCH_PARALLELISM or SetProcessBatchParallelism says
// otherwise).
func ProcessBatchParallelism() int { return core.DefaultBatchParallelism() }

// SetProcessBatchParallelism sets the process-wide default intra-step
// worker count: n >= 1 pins it, n <= 0 selects auto (GOMAXPROCS). It
// returns the previous resolved default.
func SetProcessBatchParallelism(n int) int { return core.SetDefaultBatchParallelism(n) }

// BatchParallelismSelection is the result of BatchParallelismFlag: a
// pending -batch-parallelism flag value to be installed after parsing.
type BatchParallelismSelection struct {
	value string
}

// BatchParallelismFlag registers the canonical "-batch-parallelism"
// flag on fs and returns the selection to Install after parsing,
// mirroring BackendFlag: precedence is explicit flag >
// REPRO_BATCH_PARALLELISM environment variable > sequential.
func BatchParallelismFlag(fs *flag.FlagSet) *BatchParallelismSelection {
	sel := &BatchParallelismSelection{}
	fs.StringVar(&sel.value, "batch-parallelism", "",
		"intra-step batch workers: auto | N >= 1 (default $REPRO_BATCH_PARALLELISM or 1)")
	return sel
}

// Install applies the parsed flag value to the process default. When
// the flag was not given, the process default is left untouched.
func (s *BatchParallelismSelection) Install() error {
	if s.value == "" {
		return nil
	}
	if s.value == "auto" {
		core.SetDefaultBatchParallelism(0)
		return nil
	}
	k, err := strconv.Atoi(s.value)
	if err != nil || k < 1 {
		return fmt.Errorf("consensus: -batch-parallelism: want auto or an integer >= 1, got %q", s.value)
	}
	core.SetDefaultBatchParallelism(k)
	return nil
}

// Value returns the worker count the selection resolves to right now.
func (s *BatchParallelismSelection) Value() int {
	if s.value == "" {
		return ProcessBatchParallelism()
	}
	if s.value == "auto" {
		return runtime.GOMAXPROCS(0)
	}
	k, err := strconv.Atoi(s.value)
	if err != nil || k < 1 {
		return ProcessBatchParallelism()
	}
	return k
}
