package consensus

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/consensus/scenario"
	"repro/internal/core"
)

// TestRecordedGreedyReplayExact is the PR's acceptance differential: a
// greedy-adversary run (adaptive, agent-path) is recorded, and its trace
// replayed through WithScenario must reproduce the original run's
// per-round outputs AND per-round configuration fingerprints exactly —
// under both the agents and the dense backend.
func TestRecordedGreedyReplayExact(t *testing.T) {
	const rounds = 8
	ctx := context.Background()
	rec, err := New(WithModel("psi:4"), WithAlgorithm("midpoint"),
		WithAdversary("greedy"), WithRounds(rounds))
	if err != nil {
		t.Fatal(err)
	}
	orig, sch, err := rec.RunRecorded(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sch.PrefixLen() != rounds || !sch.Finite() {
		t.Fatalf("recorded schedule shape prefix=%d loop=%d", sch.PrefixLen(), sch.LoopLen())
	}

	// Reference per-round fingerprints: step an agent configuration
	// through the recorded graphs.
	alg, err := Algorithms.New("midpoint", rec.N())
	if err != nil {
		t.Fatal(err)
	}
	wantFPs := make([][]byte, 0, rounds+1)
	c := core.NewConfig(alg, rec.Inputs())
	fp, ok := c.AppendFingerprint(nil)
	if !ok {
		t.Fatal("midpoint configuration not fingerprintable")
	}
	wantFPs = append(wantFPs, fp)
	for round := 1; round <= rounds; round++ {
		c = c.Step(sch.At(round))
		fp, _ := c.AppendFingerprint(nil)
		wantFPs = append(wantFPs, fp)
	}

	for _, backend := range []Backend{BackendAgents, BackendDense} {
		t.Run(string(backend), func(t *testing.T) {
			replay, err := New(WithScenario(sch), WithAlgorithm("midpoint"),
				WithRounds(rounds), WithBackend(backend))
			if err != nil {
				t.Fatal(err)
			}
			res, err := replay.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round <= rounds; round++ {
				want, got := orig.Outputs(round), res.Outputs(round)
				for i := range want {
					if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
						t.Fatalf("round %d agent %d: replay %v != original %v", round, i, got[i], want[i])
					}
				}
			}

			// Per-round fingerprints through the engine-level replay.
			if backend == BackendAgents {
				c := core.NewConfig(alg, rec.Inputs())
				for round := 1; round <= rounds; round++ {
					c = c.Step(sch.At(round))
					fp, _ := c.AppendFingerprint(nil)
					if !bytes.Equal(fp, wantFPs[round]) {
						t.Fatalf("round %d: agent-path replay fingerprint differs", round)
					}
				}
			} else {
				d, ok := core.AsDense(alg)
				if !ok {
					t.Fatal("midpoint must be dense-capable")
				}
				r := core.NewDenseRunner(d, rec.Inputs())
				for round := 1; round <= rounds; round++ {
					r.Step(sch.At(round))
					fp, ok := core.AppendDenseFingerprint(d, r.State(), nil)
					if !ok {
						t.Fatal("dense state not fingerprintable")
					}
					if !bytes.Equal(fp, wantFPs[round]) {
						t.Fatalf("round %d: dense replay fingerprint differs", round)
					}
				}
			}
		})
	}

	// The trace round-trips through the codec without changing identity.
	reloaded, err := scenario.Decode(sch.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Fingerprint() != sch.Fingerprint() {
		t.Fatal("fingerprint changed across encode/decode")
	}
}

// TestScenarioSweepBatchParity runs a 64-scenario grid through the
// batched sweep and the per-session sweep; summaries must be identical
// (per-run schedules inside one BatchRunner tile vs. independent runs).
func TestScenarioSweepBatchParity(t *testing.T) {
	const B, rounds = 64, 50
	specs := make([]RunSpec, B)
	for i := range specs {
		specs[i] = RunSpec{
			Scenario:  fmt.Sprintf("churn:16,%d,5,4,4", i+1),
			Algorithm: "midpoint",
			Rounds:    rounds,
		}
	}
	assertSweepBatchParity(t, specs)
}

// assertSweepBatchParity sweeps specs through the batched path (with
// any extra sweep options, e.g. SweepBatchParallelism) and the
// per-session path and requires bit-identical summaries.
func assertSweepBatchParity(t *testing.T, specs []RunSpec, batchOpts ...SweepOption) {
	t.Helper()
	ctx := context.Background()
	opts := append([]SweepOption{WithSweepCache(NewSweepCache())}, batchOpts...)
	batched, err := Sweep(ctx, specs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Sweep(ctx, specs, WithSweepCache(NewSweepCache()), SweepBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		b, s := batched[i], single[i]
		if b.Err != "" || s.Err != "" {
			t.Fatalf("spec %d errored: batch=%q single=%q", i, b.Err, s.Err)
		}
		if b.Summary == nil || s.Summary == nil {
			t.Fatalf("spec %d missing summary", i)
		}
		if len(b.Summary.FinalOutputs) != len(s.Summary.FinalOutputs) {
			t.Fatalf("spec %d output length mismatch", i)
		}
		for j := range b.Summary.FinalOutputs {
			if math.Float64bits(b.Summary.FinalOutputs[j]) != math.Float64bits(s.Summary.FinalOutputs[j]) {
				t.Fatalf("spec %d agent %d: batch %v != single %v", i, j,
					b.Summary.FinalOutputs[j], s.Summary.FinalOutputs[j])
			}
		}
		if b.Summary.FinalDiameter != s.Summary.FinalDiameter ||
			b.Summary.GeometricRate != s.Summary.GeometricRate ||
			b.Summary.WorstRoundRatio != s.Summary.WorstRoundRatio ||
			b.Summary.Validity != s.Summary.Validity {
			t.Fatalf("spec %d summary mismatch:\nbatch:  %+v\nsingle: %+v", i, *b.Summary, *s.Summary)
		}
	}
}

// TestScenarioResolutionCache pins the registry-level resolution memo:
// re-resolving a spec returns the identical schedule object (not a
// re-materialization) and counts as a cache hit, while distinct specs
// miss and errors are not cached.
func TestScenarioResolutionCache(t *testing.T) {
	r := NewScenarioRegistry()
	if err := r.Register(ScenarioFactory{
		Name: "testchurn", Usage: "testchurn:SEED",
		New: func(arg string, env ScenarioEnv) (*scenario.Schedule, error) {
			v, err := parseInts("testchurn", arg, 1)
			if err != nil {
				return nil, err
			}
			return scenario.Churn(8, v[0], 3, 4, 2)
		},
	}); err != nil {
		t.Fatal(err)
	}
	env := ScenarioEnv{Models: Models, Scenarios: r}
	a, err := r.New("testchurn:1", env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.New("testchurn:1", env)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("re-resolving the same spec re-materialized the schedule")
	}
	if _, err := r.New("testchurn:2", env); err != nil {
		t.Fatal(err)
	}
	if _, err := r.New("testchurn:bogus", env); err == nil {
		t.Fatal("bad arg must error")
	}
	if _, err := r.New("testchurn:bogus", env); err == nil {
		t.Fatal("bad arg must error on re-resolution too (errors are not cached)")
	}
	hits, misses, entries := r.ResolveCacheStats()
	if hits != 1 || entries != 2 {
		t.Fatalf("stats hits=%d misses=%d entries=%d, want hits=1 entries=2", hits, misses, entries)
	}
}

// TestScenarioSweepBatchParityBlended mixes shared-schedule and per-run-
// schedule runs in one sweep: groups of runs replaying one schedule
// (some under distinct spec strings resolving to the same fingerprint,
// so they only meet through fingerprint-sorted tiling), interleaved with
// runs playing their own. The clustered stepper must collapse the shared
// groups onto common plans and keep every summary bit-identical to the
// per-session path.
func TestScenarioSweepBatchParityBlended(t *testing.T) {
	const rounds = 40
	shared, err := Scenarios.New("churn:16,7,5,8,4", ScenarioEnv{Models: Models, Scenarios: Scenarios})
	if err != nil {
		t.Fatal(err)
	}
	sharedTrace := "trace:" + EncodeTraceString(shared)
	var specs []RunSpec
	for i := 0; i < 48; i++ {
		var spec string
		switch i % 4 {
		case 0:
			// One shared schedule under its generator spec...
			spec = "churn:16,7,5,8,4"
		case 1:
			// ...and under the trace spelling of the same fingerprint,
			// interleaved so only schedule-sorted tiling reunites them.
			spec = sharedTrace
		default:
			// Everyone else plays their own schedule.
			spec = fmt.Sprintf("churn:16,%d,5,8,4", 100+i)
		}
		specs = append(specs, RunSpec{Scenario: spec, Algorithm: "midpoint", Rounds: rounds})
	}
	assertSweepBatchParity(t, specs)
}

// TestScenarioSweepBatchParityParallel exercises the intra-step
// parallel path through the public sweep surface: the same blended
// shared/per-run schedule mix as the Blended parity test, swept with
// SweepBatchParallelism at several levels (including workers above the
// tile sizes), plus the session-level WithBatchParallelism carrier via
// the process default. Summaries must stay bit-identical to the
// sequential per-session path at every level.
func TestScenarioSweepBatchParityParallel(t *testing.T) {
	const rounds = 40
	shared, err := Scenarios.New("churn:16,5,5,8,4", ScenarioEnv{Models: Models, Scenarios: Scenarios})
	if err != nil {
		t.Fatal(err)
	}
	sharedTrace := "trace:" + EncodeTraceString(shared)
	var specs []RunSpec
	for i := 0; i < 48; i++ {
		var spec string
		switch i % 4 {
		case 0:
			spec = "churn:16,5,5,8,4"
		case 1:
			spec = sharedTrace
		default:
			spec = fmt.Sprintf("churn:16,%d,5,8,4", 300+i)
		}
		specs = append(specs, RunSpec{Scenario: spec, Algorithm: "midpoint", Rounds: rounds})
	}
	for _, par := range []int{2, 3, 17} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			assertSweepBatchParity(t, specs, SweepBatchParallelism(par))
		})
	}
	t.Run("process-default", func(t *testing.T) {
		prev := SetProcessBatchParallelism(3)
		defer SetProcessBatchParallelism(prev)
		assertSweepBatchParity(t, specs)
	})
}

// TestScenarioSweepBatchParityCacheOverflow runs schedules whose joint
// distinct-graph count far exceeds the runner's plan-cache cap (churn
// with period 1 changes graph every round), so the batched sweep evicts
// and recycles plans continuously. Summaries must stay bit-identical to
// the per-session path.
func TestScenarioSweepBatchParityCacheOverflow(t *testing.T) {
	const B, rounds = 16, 120
	// 16 runs x 120 single-round epochs ~ 1920 distinct graphs, against
	// a default cap of 512.
	specs := make([]RunSpec, B)
	for i := range specs {
		specs[i] = RunSpec{
			Scenario:  fmt.Sprintf("churn:16,%d,1,%d,4", i+1, rounds),
			Algorithm: "midpoint",
			Rounds:    rounds,
		}
	}
	assertSweepBatchParity(t, specs)
}

// TestScenarioSweepCachedByFingerprint re-sweeps distinct spec strings
// resolving to the same trace; the second pass must be served from the
// sweep cache (keyed by the schedule fingerprint, not the spec string).
func TestScenarioSweepCachedByFingerprint(t *testing.T) {
	cache := NewSweepCache()
	ctx := context.Background()
	a := []RunSpec{{Scenario: "eventuallyrooted:5,2", Algorithm: "midpoint", Rounds: 12}}
	first, err := Sweep(ctx, a, WithSweepCache(cache))
	if err != nil || first[0].Err != "" {
		t.Fatalf("first sweep: %v %s", err, first[0].Err)
	}
	// The same schedule inlined as a trace spec: different spec string,
	// same fingerprint, so the cache must hit.
	sch, err := Scenarios.New("eventuallyrooted:5,2", ScenarioEnv{Models: Models, Scenarios: Scenarios})
	if err != nil {
		t.Fatal(err)
	}
	b := []RunSpec{{Scenario: "trace:" + EncodeTraceString(sch), Algorithm: "midpoint", Rounds: 12}}
	second, err := Sweep(ctx, b, WithSweepCache(cache))
	if err != nil || second[0].Err != "" {
		t.Fatalf("second sweep: %v %s", err, second[0].Err)
	}
	if !second[0].Cached {
		t.Fatal("trace-spec rerun of an identical schedule missed the cache")
	}
	if second[0].Summary.FinalDiameter != first[0].Summary.FinalDiameter {
		t.Fatal("cached summary differs")
	}
}

// TestWithScenarioSessionValidation covers the option interplay.
func TestWithScenarioSessionValidation(t *testing.T) {
	sch, err := Scenarios.New("partitionheal:6,2,3", ScenarioEnv{Models: Models, Scenarios: Scenarios})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(WithScenario(sch), WithAdversary("cycle")); err == nil {
		t.Error("scenario plus adversary accepted")
	}
	if _, err := New(WithScenario(sch), WithScenarioSpec("eventuallyrooted:6,1")); err == nil {
		t.Error("scenario plus scenario spec accepted")
	}
	if _, err := New(WithScenario(sch), WithInputs(0, 1)); err == nil {
		t.Error("input count mismatching the scenario accepted")
	}
	if _, err := New(WithScenario(sch), WithModel("deaf:4")); err == nil {
		t.Error("model on a different agent count accepted")
	}
	if _, err := New(WithScenario(sch), WithGreedyTrace()); err == nil {
		t.Error("greedy trace on a scenario replay accepted silently")
	}
	s, err := New(WithScenario(sch))
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 6 {
		t.Fatalf("scenario did not fix the agent count: n=%d", s.N())
	}
	if s.Scenario() != sch {
		t.Fatal("Scenario accessor lost the schedule")
	}
	if got := s.Adversary(); got != "scenario:"+sch.Fingerprint() {
		t.Fatalf("Adversary() = %q, want the trace fingerprint form", got)
	}
}

// TestCompositeSpecNesting resolves composites whose operands are
// themselves composites: bracketed operands protect their '+' from the
// outer split.
func TestCompositeSpecNesting(t *testing.T) {
	env := ScenarioEnv{Models: Models, Scenarios: Scenarios}
	inner, err := Scenarios.New("concat:frommodel:psi:4;1;2+frommodel:psi:4;2;3", env)
	if err != nil {
		t.Fatal(err)
	}
	nested, err := Scenarios.New("interleave:[concat:frommodel:psi:4;1;2+frommodel:psi:4;2;3]+eventuallyrooted:4,3", env)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := Scenarios.New("eventuallyrooted:4,3", env)
	if err != nil {
		t.Fatal(err)
	}
	// Round 2t-1 must be the bracketed concat's round t.
	for tt := 1; tt <= 8; tt++ {
		if !nested.At(2*tt - 1).Equal(inner.At(tt)) {
			t.Fatalf("odd round %d is not the nested concat's round %d", 2*tt-1, tt)
		}
		if !nested.At(2 * tt).Equal(outer.At(tt)) {
			t.Fatalf("even round %d is not the second operand's round %d", 2*tt, tt)
		}
	}
	// An unbracketed nested composite is ambiguous and must error, not
	// silently regroup.
	if _, err := Scenarios.New("interleave:concat:frommodel:psi:4;1;2+frommodel:psi:4;2;3+eventuallyrooted:4,3", env); err == nil {
		t.Fatal("ambiguous unbracketed nesting accepted")
	}
}

// TestScenarioResolutionBounded: hostile nested composites must be
// rejected by the shared depth/round budget, not ground through — each
// "repeat:1;" level re-copies the inner schedule, so without the budget
// a kilobyte-scale spec costs minutes of CPU.
func TestScenarioResolutionBounded(t *testing.T) {
	env := ScenarioEnv{Models: Models, Scenarios: Scenarios}
	deep := strings.Repeat("repeat:1;", 100) + "eventuallyrooted:2,1"
	if _, err := Scenarios.New(deep, env); err == nil {
		t.Error("over-deep nesting accepted")
	}
	wide := strings.Repeat("repeat:2;", 30) + "eventuallyrooted:2,8"
	if _, err := Scenarios.New(wide, env); err == nil {
		t.Error("budget-exceeding composition accepted")
	}
	// Legitimate nesting still resolves.
	if _, err := Scenarios.New("repeat:3;repeat:2;eventuallyrooted:4,1", env); err != nil {
		t.Errorf("modest nesting rejected: %v", err)
	}
}

// TestSweepResolvesScenarioOnce: grid entries sharing a scenario spec
// must resolve it through the sweep-wide memo, not once per entry.
func TestSweepResolvesScenarioOnce(t *testing.T) {
	var calls atomic.Int64
	reg := NewScenarioRegistry()
	if err := reg.Register(ScenarioFactory{
		Name: "counted", Usage: "counted", Summary: "test",
		New: func(arg string, env ScenarioEnv) (*scenario.Schedule, error) {
			calls.Add(1)
			return Scenarios.New("eventuallyrooted:4,1", ScenarioEnv{Models: Models, Scenarios: Scenarios})
		},
	}); err != nil {
		t.Fatal(err)
	}
	lib := &Library{Scenarios: reg}
	specs := ScenarioGrid([]string{"counted"}, []string{"midpoint", "mean", "selfweighted:0.25", "amortized"}, 10)
	results, err := Sweep(context.Background(), specs,
		WithSweepCache(NewSweepCache()), SweepLibrary(lib))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("spec %d: %s", r.Index, r.Err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("scenario resolved %d times for a 4-entry grid, want 1", got)
	}
}

// TestScenarioGridShape checks the cross-product expansion.
func TestScenarioGridShape(t *testing.T) {
	specs := ScenarioGrid(
		[]string{"eventuallyrooted:4,1", "partitionheal:4,2,2"},
		[]string{"midpoint", "mean"}, 30)
	if len(specs) != 4 {
		t.Fatalf("got %d specs, want 4", len(specs))
	}
	if specs[0].Scenario != "eventuallyrooted:4,1" || specs[1].Algorithm != "mean" || specs[3].Rounds != 30 {
		t.Fatalf("grid misordered: %+v", specs)
	}
}

// TestRunScenarioQuery exercises the query helper end to end: spec
// resolution, certification, trace round trip, and an executed replay.
func TestRunScenarioQuery(t *testing.T) {
	ctx := context.Background()
	rep, err := RunScenario(ctx, ScenarioRequest{
		Scenario: "partitionheal:6,2,4",
		Run:      true, Algorithm: "midpoint", Rounds: 12,
		// Disagreement across the two blocks: inside a block everyone
		// agrees, so no contraction can happen before healing.
		Inputs: []float64{0, 0, 0, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 6 || rep.PrefixRounds != 4 || rep.LoopRounds != 1 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	if rep.Certificate.Rooted || rep.Certificate.FirstUnrooted != 1 {
		t.Fatalf("partition rounds not flagged unrooted: %+v", rep.Certificate)
	}
	if rep.Summary == nil || rep.Summary.Rounds != 12 || len(rep.Diameters) != 13 {
		t.Fatalf("run summary missing or wrong: %+v", rep.Summary)
	}
	// The partition never mixes the blocks, so the cross-block diameter
	// survives every partitioned round and contracts only after healing.
	if rep.Diameters[4] != 1 {
		t.Fatalf("diameter %v after the partition, want 1", rep.Diameters[4])
	}
	if rep.Diameters[12] >= rep.Diameters[4] {
		t.Fatal("healing did not contract the diameter")
	}

	// Round trip: upload the returned trace instead of the spec.
	rep2, err := RunScenario(ctx, ScenarioRequest{Trace: rep.Trace})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Fingerprint != rep.Fingerprint {
		t.Fatal("uploaded trace resolved to a different schedule")
	}

	if _, err := RunScenario(ctx, ScenarioRequest{}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := RunScenario(ctx, ScenarioRequest{Scenario: "eventuallyrooted:4,1", Trace: rep.Trace}); err == nil {
		t.Error("spec plus trace accepted")
	}
}
