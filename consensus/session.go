package consensus

import (
	"context"
	"fmt"
	"iter"
	"math"
	"sync"

	"repro/consensus/scenario"
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/valency"
)

// Session defaults.
const (
	// DefaultRounds is the round budget of sessions without WithRounds.
	DefaultRounds = 10
	// DefaultDepth is the valency exploration depth of sessions without
	// WithDepth.
	DefaultDepth = 3
	// DefaultSeed is the RNG seed of sessions without WithSeed.
	DefaultSeed = 1
)

// sessionConfig collects the functional options before resolution.
type sessionConfig struct {
	lib           *Library
	modelSpec     string
	model         *model.Model // pre-resolved modelSpec, when the caller already built it
	algorithmSpec string
	adversarySpec string
	scenario      *scenario.Schedule
	scenarioSpec  string
	inputs        []float64
	rounds        int
	seed          int64
	depth         int
	backend       Backend
	batchPar      int
	floor         bool
	trace         bool
}

// Option configures a Session under construction.
type Option func(*sessionConfig) error

// WithModel selects the network model by spec string (see the Models
// registry, e.g. "deaf:4" or "twoagent").
func WithModel(spec string) Option {
	return func(c *sessionConfig) error { c.modelSpec = spec; c.model = nil; return nil }
}

// withResolvedModel is WithModel for callers that already resolved the
// spec (the scenario query certifies against the model before building
// the session); the spec string still names the model in cache keys.
func withResolvedModel(spec string, m *model.Model) Option {
	return func(c *sessionConfig) error { c.modelSpec = spec; c.model = m; return nil }
}

// WithAlgorithm selects the algorithm by spec string (see the Algorithms
// registry, e.g. "midpoint" or "selfweighted:0.25"). Default "midpoint".
func WithAlgorithm(spec string) Option {
	return func(c *sessionConfig) error { c.algorithmSpec = spec; return nil }
}

// WithAdversary selects the pattern source by spec string (see the
// Adversaries registry, e.g. "greedy", "random", "randomrooted:0.2").
// Default "cycle" for sessions with a model.
func WithAdversary(spec string) Option {
	return func(c *sessionConfig) error { c.adversarySpec = spec; return nil }
}

// WithInputs sets the initial values (one per agent). Without it the
// session uses SpreadInputs.
func WithInputs(inputs ...float64) Option {
	return func(c *sessionConfig) error {
		c.inputs = append([]float64(nil), inputs...)
		return nil
	}
}

// WithRounds sets the round budget.
func WithRounds(n int) Option {
	return func(c *sessionConfig) error {
		if n < 0 {
			return fmt.Errorf("consensus: negative round count %d", n)
		}
		c.rounds = n
		return nil
	}
}

// WithSeed sets the RNG seed consumed by seeded adversaries.
func WithSeed(seed int64) Option {
	return func(c *sessionConfig) error { c.seed = seed; return nil }
}

// WithDepth sets the valency exploration depth used by the greedy
// adversaries and the certified floor.
func WithDepth(d int) Option {
	return func(c *sessionConfig) error {
		if d < 0 {
			return fmt.Errorf("consensus: negative valency depth %d", d)
		}
		c.depth = d
		return nil
	}
}

// WithBackend pins the execution backend for this session; without it
// the session follows the process default at run time.
func WithBackend(b Backend) Option {
	return func(c *sessionConfig) error {
		if err := b.Validate(); err != nil {
			return err
		}
		c.backend = b
		return nil
	}
}

// WithBatchParallelism pins the intra-step worker count used when this
// session's configuration executes on the batch plane (sweep tiles and
// batched scenario grids): n >= 1 shards each batch round across n
// workers (1 = sequential stepping), n == 0 — the default — inherits
// the process default (REPRO_BATCH_PARALLELISM /
// SetProcessBatchParallelism). Outputs are byte-identical at every
// setting; single-run Run/Rounds executions are unaffected.
func WithBatchParallelism(n int) Option {
	return func(c *sessionConfig) error {
		if n < 0 {
			return fmt.Errorf("consensus: negative batch parallelism %d", n)
		}
		c.batchPar = n
		return nil
	}
}

// WithValencyFloor makes Rounds snapshots carry the certified valency
// diameter floor δ(C_t) of every visited configuration, computed at the
// session depth on the session's shared engine. Requires a model.
func WithValencyFloor() Option {
	return func(c *sessionConfig) error { c.floor = true; return nil }
}

// WithGreedyTrace makes Rounds snapshots of greedy-adversary sessions
// carry the per-round successor valency intervals the adversary ranked.
func WithGreedyTrace() Option {
	return func(c *sessionConfig) error { c.trace = true; return nil }
}

// WithLibrary resolves the session's specs against lib instead of the
// default registries.
func WithLibrary(lib *Library) Option {
	return func(c *sessionConfig) error { c.lib = lib; return nil }
}

// Diameter returns max(values) - min(values), the 1-dimensional diameter
// Δ(y) of a value set; 0 for empty input.
func Diameter(values []float64) float64 { return core.Diameter(values) }

// SpreadInputs returns the canonical maximally spread initial values the
// tools default to: agent 1 at 1, everyone else at 0.5 except agent 0 at
// 0 — initial diameter exactly 1.
func SpreadInputs(n int) []float64 {
	if n < 1 {
		return nil
	}
	inputs := make([]float64, n)
	inputs[1%n] = 1
	for i := 2; i < n; i++ {
		inputs[i] = 0.5
	}
	return inputs
}

// Session is one configured execution. Sessions are immutable after New:
// every Run/Rounds call starts from the initial inputs with a fresh
// pattern source, so a Session is safe for concurrent use (valency-driven
// sessions share one engine whose transposition tables are
// concurrency-safe).
type Session struct {
	lib       *Library
	modelSpec string
	advSpec   string
	model     *model.Model
	scenario  *scenario.Schedule
	alg       core.Algorithm
	inputs    []float64
	rounds    int
	seed      int64
	depth     int
	backend   Backend
	batchPar  int
	floor     bool
	trace     bool
	engine    *valency.Engine
}

// enginePool shares one valency engine per (model registry, model spec,
// algorithm name, depth, convexity) across all sessions, so that
// concurrent and repeated sessions reuse each other's transposition
// tables — the same cross-round reuse the greedy adversaries depend on
// within a single run. The registry is part of the key because two
// libraries may resolve the same spec name to different models; model
// factories are expected to be deterministic per registry.
//
// The pool is bounded: past maxPooledEngines, engines are built
// per-session (still correct, garbage-collected after use) so that a
// long-lived server facing unbounded distinct specs cannot grow without
// limit.
var (
	engineMu   sync.Mutex
	enginePool = map[engineKey]*valency.Engine{}
)

const maxPooledEngines = 64

type engineKey struct {
	models *ModelRegistry
	model  string
	alg    string
	depth  int
	convex bool
}

func sharedEngine(models *ModelRegistry, modelSpec, algName string, m *model.Model, depth int, convex bool) *valency.Engine {
	key := engineKey{models: models, model: modelSpec, alg: algName, depth: depth, convex: convex}
	engineMu.Lock()
	defer engineMu.Unlock()
	if e, ok := enginePool[key]; ok {
		return e
	}
	e := valency.NewEngine(m, valency.DefaultParams(depth, convex))
	if len(enginePool) < maxPooledEngines {
		enginePool[key] = e
	}
	return e
}

// New builds a session from functional options. It resolves every spec
// eagerly (including a trial pattern-source construction), so a non-nil
// error here means Run cannot fail on configuration.
func New(opts ...Option) (*Session, error) {
	cfg := sessionConfig{
		algorithmSpec: "midpoint",
		rounds:        DefaultRounds,
		depth:         DefaultDepth,
		seed:          DefaultSeed,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	s := &Session{
		lib:       cfg.lib,
		modelSpec: cfg.modelSpec,
		advSpec:   cfg.adversarySpec,
		scenario:  cfg.scenario,
		inputs:    cfg.inputs,
		rounds:    cfg.rounds,
		seed:      cfg.seed,
		depth:     cfg.depth,
		backend:   cfg.backend,
		batchPar:  cfg.batchPar,
		floor:     cfg.floor,
		trace:     cfg.trace,
	}

	if cfg.scenarioSpec != "" {
		if s.scenario != nil {
			return nil, fmt.Errorf("consensus: WithScenario and WithScenarioSpec are mutually exclusive")
		}
		sch, err := s.lib.scenarios().New(cfg.scenarioSpec,
			ScenarioEnv{Models: s.lib.models(), Scenarios: s.lib.scenarios()})
		if err != nil {
			return nil, err
		}
		s.scenario = sch
	}
	if s.scenario != nil && s.advSpec != "" {
		return nil, fmt.Errorf("consensus: a session takes a scenario or an adversary, not both")
	}
	if s.scenario != nil && s.trace {
		return nil, fmt.Errorf("consensus: WithGreedyTrace requires a greedy adversary; a scenario replay makes no decisions")
	}

	switch {
	case cfg.model != nil:
		s.model = cfg.model
	case cfg.modelSpec != "":
		m, err := s.lib.models().New(cfg.modelSpec)
		if err != nil {
			return nil, err
		}
		s.model = m
	}

	n := 0
	switch {
	case s.model != nil:
		n = s.model.N()
		if s.inputs != nil && len(s.inputs) != n {
			return nil, fmt.Errorf("consensus: got %d inputs for %d agents", len(s.inputs), n)
		}
	case s.scenario != nil:
		n = s.scenario.N()
		if s.inputs != nil && len(s.inputs) != n {
			return nil, fmt.Errorf("consensus: got %d inputs for a %d-agent scenario", len(s.inputs), n)
		}
	case s.inputs != nil:
		n = len(s.inputs)
	default:
		return nil, fmt.Errorf("consensus: a session needs WithModel, WithScenario, or WithInputs to fix the agent count")
	}
	if s.scenario != nil && s.scenario.N() != n {
		return nil, fmt.Errorf("consensus: %d-agent scenario in a %d-agent session", s.scenario.N(), n)
	}
	if s.inputs == nil {
		s.inputs = SpreadInputs(n)
	}

	alg, err := s.lib.algorithms().New(cfg.algorithmSpec, n)
	if err != nil {
		return nil, err
	}
	s.alg = alg

	if s.scenario != nil {
		// The schedule is the pattern source; its fingerprint takes the
		// adversary spec's slot so sweep-cache keys are keyed by trace.
		s.advSpec = "scenario:" + s.scenario.Fingerprint()
		if s.floor {
			if s.model == nil {
				return nil, fmt.Errorf("consensus: the valency floor requires a model")
			}
			s.engine = sharedEngine(s.lib.models(), s.modelSpec, alg.Name(), s.model, s.depth, alg.Convex())
		}
		return s, nil
	}

	if s.advSpec == "" {
		if s.model == nil {
			return nil, fmt.Errorf("consensus: a session without a model needs WithAdversary (a model-free source such as randomrooted:P)")
		}
		s.advSpec = "cycle"
	}
	fac, _, err := s.lib.adversaries().lookup(s.advSpec)
	if err != nil {
		return nil, err
	}
	if (fac.NeedsModel || fac.NeedsEngine || s.floor) && s.model == nil {
		return nil, fmt.Errorf("consensus: %q and the valency floor require a model", s.advSpec)
	}
	if fac.NeedsEngine || s.floor {
		s.engine = sharedEngine(s.lib.models(), s.modelSpec, alg.Name(), s.model, s.depth, alg.Convex())
	}
	if _, _, err := s.newSource(); err != nil {
		return nil, err
	}
	return s, nil
}

// N returns the number of agents.
func (s *Session) N() int { return len(s.inputs) }

// RoundBudget returns the configured number of rounds. (The streaming
// iterator over an execution is the Rounds method taking a context.)
func (s *Session) RoundBudget() int { return s.rounds }

// Algorithm returns the resolved algorithm name.
func (s *Session) Algorithm() string { return s.alg.Name() }

// Adversary returns the resolved adversary spec; scenario-driven
// sessions report "scenario:" plus the schedule's trace fingerprint.
func (s *Session) Adversary() string { return s.advSpec }

// Inputs returns a copy of the initial values.
func (s *Session) Inputs() []float64 { return append([]float64(nil), s.inputs...) }

// Convex reports whether the session's algorithm is a convex combination
// algorithm.
func (s *Session) Convex() bool { return s.alg.Convex() }

// ModelInfo describes the session's model, if any.
func (s *Session) ModelInfo() (spec string, n, graphs int, ok bool) {
	if s.model == nil {
		return "", 0, 0, false
	}
	return s.modelSpec, s.model.N(), s.model.Size(), true
}

// ContractionBound returns the strongest proven contraction-rate lower
// bound for the session's model (the header cmd/contraction prints),
// computed on the already-built model — no Solvability round trip. ok is
// false for model-free sessions.
func (s *Session) ContractionBound() (rate float64, theorem, detail string, ok bool) {
	if s.model == nil {
		return 0, "", "", false
	}
	b := s.model.ContractionLowerBound()
	return b.Rate, b.Theorem, b.Detail, true
}

// newSource builds a fresh pattern source for one run, plus the greedy
// decision trace sink when tracing is on.
func (s *Session) newSource() (core.PatternSource, *[]adversary.Decision, error) {
	if s.scenario != nil {
		return s.scenario.Source(), nil, nil
	}
	env := AdversaryEnv{
		Model:     s.model,
		Algorithm: s.alg,
		N:         s.N(),
		Seed:      s.seed,
		Depth:     s.depth,
		Engine:    s.engine,
	}
	src, err := s.lib.adversaries().New(s.advSpec, env)
	if err != nil {
		return nil, nil, err
	}
	var decs *[]adversary.Decision
	if s.trace {
		if g, ok := src.(*adversary.Greedy); ok {
			decs = new([]adversary.Decision)
			g.Trace = decs
		}
	}
	return src, decs, nil
}

// resolveBackend maps the session backend to the engine-level selection.
func (s *Session) resolveBackend() core.Backend {
	b, err := s.backend.resolve()
	if err != nil {
		// Unreachable: WithBackend validates.
		return core.CurrentBackend()
	}
	return b
}

// Run executes the session from its initial inputs and returns the full
// result. It honors ctx cancellation between rounds; a context that can
// never be cancelled adds no per-round work, keeping the facade overhead
// of long measurement runs in the noise (see BenchmarkSessionVsCore).
func (s *Session) Run(ctx context.Context) (*Result, error) {
	src, _, err := s.newSource()
	if err != nil {
		return nil, err
	}
	tr, err := core.RunBackendCtx(ctx, s.alg, s.inputs, src, s.rounds, s.resolveBackend())
	if err != nil {
		return nil, err
	}
	return &Result{tr: tr}, nil
}

// Result is a completed session run. Accessors returning slices return
// fresh copies.
type Result struct {
	tr *core.Trace
}

// Algorithm returns the algorithm name.
func (r *Result) Algorithm() string { return r.tr.Algorithm }

// Rounds returns the number of executed rounds.
func (r *Result) Rounds() int { return r.tr.Rounds() }

// Inputs returns the initial values.
func (r *Result) Inputs() []float64 { return append([]float64(nil), r.tr.Inputs...) }

// Outputs returns the value vector after round t (t = 0 is the inputs).
func (r *Result) Outputs(t int) []float64 { return append([]float64(nil), r.tr.Outputs[t]...) }

// FinalOutputs returns the value vector after the last round.
func (r *Result) FinalOutputs() []float64 { return r.Outputs(r.Rounds()) }

// DiameterAt returns Δ(y(t)).
func (r *Result) DiameterAt(t int) float64 { return r.tr.DiameterAt(t) }

// Diameters returns Δ(y(t)) for t = 0..Rounds.
func (r *Result) Diameters() []float64 { return r.tr.Diameters() }

// GeometricRate returns the fitted per-round contraction factor
// (Δ(y(T))/Δ(y(0)))^(1/T); 0 when either end diameter is 0.
func (r *Result) GeometricRate() float64 { return r.tr.GeometricRate() }

// WorstRoundRatio returns the largest single-round contraction ratio.
func (r *Result) WorstRoundRatio() float64 { return r.tr.WorstRoundRatio() }

// ValidityHolds reports whether every recorded value stayed inside the
// input hull, with the given absolute tolerance.
func (r *Result) ValidityHolds(tol float64) bool { return r.tr.ValidityHolds(tol) }

// GraphName renders the graph played in round t (1-based).
func (r *Result) GraphName(t int) string { return r.tr.Graphs[t-1].String() }

// GeometricRate returns the fitted per-round contraction factor
// (Δ(T)/Δ(0))^(1/T) of a streamed diameter series (diameters[t] = Δ(y(t))
// as Snapshot.Diameter yields them); 0 when either end diameter is 0 or
// no round was run. It matches Result.GeometricRate by the same
// convention.
func GeometricRate(diameters []float64) float64 {
	T := len(diameters) - 1
	if T <= 0 || diameters[0] == 0 || diameters[T] == 0 {
		return 0
	}
	return math.Pow(diameters[T]/diameters[0], 1/float64(T))
}

// WorstRoundRatio returns the largest single-round contraction ratio of a
// streamed diameter series; rounds whose predecessor diameter is 0 count
// as 0, matching Result.WorstRoundRatio.
func WorstRoundRatio(diameters []float64) float64 {
	worst := 0.0
	for t := 1; t < len(diameters); t++ {
		if diameters[t-1] != 0 && diameters[t]/diameters[t-1] > worst {
			worst = diameters[t] / diameters[t-1]
		}
	}
	return worst
}

// Snapshot is one streamed round of a session execution.
type Snapshot struct {
	// Round is the completed round number; 0 is the initial configuration.
	Round int
	// Graph renders the communication graph played this round ("" at 0).
	Graph string
	// ModelIndex is the played graph's index in the session model, or -1
	// when the session has no model or the graph is not a member.
	ModelIndex int
	// Outputs is a fresh copy of the value vector after the round.
	Outputs []float64
	// Diameter is Δ(y) after the round.
	Diameter float64
	// Floor is the certified valency-diameter floor δ(C) (WithValencyFloor
	// sessions only; see HasFloor). Matching the repository's printed
	// tables, rounds >= 1 of non-convex algorithms report 0.
	Floor float64
	// HasFloor marks sessions computing the floor.
	HasFloor bool
	// Successors holds the greedy adversary's ranked successor valency
	// intervals for this round's decision (WithGreedyTrace sessions only).
	Successors []Interval
}

// Rounds streams the execution one completed round at a time — snapshot 0
// first — without materializing a trace, so arbitrarily long executions
// run in constant memory. The iterator stops early when ctx is cancelled
// (yielding the context error) or when the consumer breaks.
func (s *Session) Rounds(ctx context.Context) iter.Seq2[Snapshot, error] {
	return func(yield func(Snapshot, error) bool) {
		yield = observeContraction(yield)
		src, decs, err := s.newSource()
		if err != nil {
			yield(Snapshot{}, err)
			return
		}
		var est valency.Estimator
		if s.floor {
			est = valency.EstimatorFromEngine(s.engine)
		}
		backend := s.resolveBackend()
		done := ctx.Done()

		if backend.DenseEnabled() && core.IsOblivious(src) {
			if d, ok := core.AsDense(s.alg); ok {
				r := core.NewDenseRunner(d, s.inputs)
				if !yield(s.denseSnapshot(r, 0, graph.Graph{}, est, nil), nil) {
					return
				}
				for t := 1; t <= s.rounds; t++ {
					if done != nil {
						select {
						case <-done:
							yield(Snapshot{}, ctx.Err())
							return
						default:
						}
					}
					g := src.Next(t, nil)
					r.Step(g)
					if !yield(s.denseSnapshot(r, t, g, est, s.lastDecision(decs, t)), nil) {
						return
					}
				}
				return
			}
		}

		c := core.NewConfig(s.alg, s.inputs)
		if !yield(s.agentSnapshot(c, 0, graph.Graph{}, est, nil), nil) {
			return
		}
		for t := 1; t <= s.rounds; t++ {
			if done != nil {
				select {
				case <-done:
					yield(Snapshot{}, ctx.Err())
					return
				default:
				}
			}
			g := src.Next(t, c)
			c = c.Step(g)
			if !yield(s.agentSnapshot(c, t, g, est, s.lastDecision(decs, t)), nil) {
				return
			}
		}
	}
}

// lastDecision pops the greedy decision recorded for round t, if any.
// The trace sink is truncated after every read so that streaming — which
// promises constant memory over arbitrarily many rounds — never
// accumulates per-round decisions.
func (s *Session) lastDecision(decs *[]adversary.Decision, t int) *adversary.Decision {
	if decs == nil || len(*decs) == 0 {
		return nil
	}
	d := (*decs)[len(*decs)-1]
	*decs = (*decs)[:0]
	if d.Round != t {
		return nil
	}
	return &d
}

// snapshotCommon fills the round-independent snapshot fields.
func (s *Session) snapshotCommon(t int, g graph.Graph, dec *adversary.Decision) Snapshot {
	snap := Snapshot{Round: t, ModelIndex: -1, HasFloor: s.floor}
	if t > 0 {
		snap.Graph = g.String()
		if s.model != nil {
			snap.ModelIndex = s.model.Index(g)
		}
	}
	if dec != nil {
		snap.ModelIndex = dec.Chosen
		snap.Successors = make([]Interval, len(dec.Inner))
		for i, iv := range dec.Inner {
			snap.Successors[i] = Interval{Lo: iv.Lo, Hi: iv.Hi}
		}
	}
	return snap
}

// floorOf computes the snapshot floor for a materialized configuration,
// replicating the repository's printed tables: the initial configuration
// always gets the certified bound, later rounds only for convex
// combination algorithms (0 otherwise).
func (s *Session) floorOf(est valency.Estimator, c *core.Config, t int) float64 {
	if t == 0 || s.alg.Convex() {
		return est.DeltaLower(c)
	}
	return 0
}

func (s *Session) agentSnapshot(c *core.Config, t int, g graph.Graph, est valency.Estimator, dec *adversary.Decision) Snapshot {
	snap := s.snapshotCommon(t, g, dec)
	snap.Outputs = c.Outputs()
	snap.Diameter = c.Diameter()
	if s.floor {
		snap.Floor = s.floorOf(est, c, t)
	}
	return snap
}

func (s *Session) denseSnapshot(r *core.DenseRunner, t int, g graph.Graph, est valency.Estimator, dec *adversary.Decision) Snapshot {
	snap := s.snapshotCommon(t, g, dec)
	snap.Outputs = r.Outputs()
	snap.Diameter = r.Diameter()
	if s.floor {
		snap.Floor = s.floorOf(est, r.Config(), t)
	}
	return snap
}
