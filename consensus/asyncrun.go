package consensus

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/vector"
)

// AsyncCrash schedules one unclean crash: the agent stops after its
// AfterBroadcasts-th broadcast, whose final copy reaches only Recipients.
type AsyncCrash struct {
	Agent           int   `json:"agent"`
	AfterBroadcasts int   `json:"after_broadcasts"`
	Recipients      []int `json:"recipients"`
}

// AsyncSpec configures one asynchronous crash-fault simulation (the
// Section 8 system). Zero fields take defaults.
type AsyncSpec struct {
	// Process is "minrelay" or any algorithm spec from the Algorithms
	// registry; registry algorithms run round-based (wait for n-f
	// messages per round) through the async agent bridge, so quantized or
	// flood-root variants work here too. "midpoint" and "selectedmean"
	// are accepted as the classical aliases.
	Process string `json:"process"`
	N       int    `json:"n"`
	F       int    `json:"f"`
	// Rounds caps round-based algorithms (default 20).
	Rounds int `json:"rounds,omitempty"`
	// Seed seeds the input and crash-schedule RNG. It is used verbatim
	// (seed 0 is seed 0), so any historical asyncsim invocation replays
	// exactly; cmd/asyncsim's flag default is 1.
	Seed int64 `json:"seed,omitempty"`
	// WorstCase plays the Theorem 7 worst-case crash chain under constant
	// delays instead of random crashes.
	WorstCase bool `json:"worst_case,omitempty"`
	// Inputs overrides the seeded random initial values.
	Inputs []float64 `json:"inputs,omitempty"`
	// Crashes overrides the generated crash schedule.
	Crashes []AsyncCrash `json:"crashes,omitempty"`
	// DelayFloor is the uniform-delay lower bound (default 0.05).
	DelayFloor float64 `json:"delay_floor,omitempty"`
	// DelaySeed seeds the delay RNG (default: Seed).
	DelaySeed int64 `json:"delay_seed,omitempty"`
	// SampleEvery sets the observation cadence (default 0.5 time units).
	SampleEvery float64 `json:"sample_every,omitempty"`
	// Horizon overrides the simulated time span (default f+2 for
	// minrelay, rounds+2 otherwise).
	Horizon float64 `json:"horizon,omitempty"`
}

// AsyncSample is one observation of the running simulation.
type AsyncSample struct {
	Time      float64 `json:"time"`
	Delivered int     `json:"delivered"`
	// Diameter is the diameter of the correct (non-crashed) agents.
	Diameter float64 `json:"diameter"`
}

// AsyncResult reports one asynchronous simulation.
type AsyncResult struct {
	Process          string        `json:"process"`
	N                int           `json:"n"`
	F                int           `json:"f"`
	ScheduledCrashes int           `json:"scheduled_crashes"`
	Horizon          float64       `json:"horizon"`
	Samples          []AsyncSample `json:"samples"`
	FinalOutputs     []float64     `json:"final_outputs"`
	// MinRelayAgreed reports, for minrelay runs, whether all correct
	// agents held identical values at the horizon — the Theorem 7
	// guarantee for horizons >= f+1.
	MinRelayAgreed *bool `json:"minrelay_agreed,omitempty"`
}

// AsyncRun simulates an asynchronous crash-fault execution, checking ctx
// between samples.
func AsyncRun(ctx context.Context, spec AsyncSpec, opts ...QueryOption) (*AsyncResult, error) {
	cfg := applyQueryOptions(opts)
	n, f := spec.N, spec.F
	if n < 2 || f < 0 || f >= n {
		return nil, fmt.Errorf("consensus: async run needs n >= 2 and 0 <= f < n, got n=%d f=%d", n, f)
	}
	if n > 62 {
		return nil, fmt.Errorf("consensus: async run supports at most 62 agents, got %d", n)
	}
	if spec.DelayFloor < 0 || spec.DelayFloor > 1 {
		return nil, fmt.Errorf("consensus: delay floor %v outside (0,1]", spec.DelayFloor)
	}
	rounds := spec.Rounds
	if rounds == 0 {
		rounds = 20
	}
	if rounds < 1 {
		return nil, fmt.Errorf("consensus: async run needs rounds >= 1, got %d", rounds)
	}
	seed := spec.Seed
	procSpec := spec.Process
	if procSpec == "" {
		procSpec = "minrelay"
	}
	// Classical alias from the original asyncsim switch.
	if procSpec == "selectedmean" {
		procSpec = fmt.Sprintf("rb-selectedmean:%d", f)
	}

	// The input and crash-schedule RNG draws must stay in this order to
	// reproduce the historical asyncsim executions for a given seed.
	rng := rand.New(rand.NewSource(seed))
	inputs := make([]float64, n)
	for i := range inputs {
		inputs[i] = rng.Float64()
	}
	if spec.Inputs != nil {
		if len(spec.Inputs) != n {
			return nil, fmt.Errorf("consensus: got %d inputs for %d agents", len(spec.Inputs), n)
		}
		copy(inputs, spec.Inputs)
	}
	if spec.WorstCase {
		// The Theorem 7 worst case relays a unique minimum through a chain
		// of f unclean crashes; all other inputs coincide so that nothing
		// else triggers relays (and premature crash broadcasts).
		inputs[0] = -1
		for i := 1; i < n; i++ {
			inputs[i] = 1
		}
	}

	procs := make([]async.Process, n)
	isMinRelay := procSpec == "minrelay"
	if isMinRelay {
		for i := range procs {
			procs[i] = async.NewMinRelay(i, inputs[i])
		}
	} else {
		alg, err := cfg.lib.algorithms().New(procSpec, n)
		if err != nil {
			return nil, err
		}
		for i := range procs {
			procs[i] = async.NewAgentRoundBased(alg.NewAgent(i, n, inputs[i]), i, n, f, rounds)
		}
	}

	var crashes []async.Crash
	switch {
	case spec.Crashes != nil:
		for _, c := range spec.Crashes {
			if c.Agent < 0 || c.Agent >= n {
				return nil, fmt.Errorf("consensus: crash agent %d out of range [0,%d)", c.Agent, n)
			}
			for _, r := range c.Recipients {
				if r < 0 || r >= n {
					return nil, fmt.Errorf("consensus: crash recipient %d out of range [0,%d)", r, n)
				}
			}
			crashes = append(crashes, async.Crash{
				Agent:           c.Agent,
				AfterBroadcasts: c.AfterBroadcasts,
				Recipients:      graph.NodesToMask(c.Recipients),
			})
		}
	case spec.WorstCase:
		crashes = append(crashes, async.Crash{Agent: 0, AfterBroadcasts: 0, Recipients: 1 << 1})
		for i := 1; i < f; i++ {
			crashes = append(crashes, async.Crash{Agent: i, AfterBroadcasts: 1, Recipients: 1 << uint(i+1)})
		}
	default:
		perm := rng.Perm(n)
		for _, a := range perm[:f] {
			crashes = append(crashes, async.Crash{
				Agent:           a,
				AfterBroadcasts: rng.Intn(3),
				Recipients:      uint64(rng.Intn(1 << uint(n))),
			})
		}
	}

	delaySeed := spec.DelaySeed
	if delaySeed == 0 {
		delaySeed = seed
	}
	delayFloor := spec.DelayFloor
	if delayFloor == 0 {
		delayFloor = 0.05
	}
	delay := async.UniformDelays(delaySeed, delayFloor)
	if spec.WorstCase {
		delay = async.ConstantDelay(1)
	}
	sim, err := async.NewSimulator(procs, delay, crashes)
	if err != nil {
		return nil, err
	}

	horizon := spec.Horizon
	if horizon == 0 {
		horizon = float64(f + 2)
		if !isMinRelay {
			horizon = float64(rounds + 2)
		}
	}
	sampleEvery := spec.SampleEvery
	if sampleEvery == 0 {
		sampleEvery = 0.5
	}
	if sampleEvery <= 0 {
		return nil, fmt.Errorf("consensus: async sample cadence must be positive, got %v", sampleEvery)
	}

	res := &AsyncResult{
		Process:          procSpec,
		N:                n,
		F:                f,
		ScheduledCrashes: len(crashes),
		Horizon:          horizon,
	}
	done := ctx.Done()
	// Integer step count: accumulating t += sampleEvery drifts for
	// non-dyadic cadences and can drop the final horizon sample.
	steps := int(horizon/sampleEvery + 1e-9)
	sample := func(t float64) error {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		sim.RunUntil(t)
		res.Samples = append(res.Samples, AsyncSample{
			Time:      t,
			Delivered: sim.Delivered(),
			Diameter:  sim.CorrectDiameter(),
		})
		return nil
	}
	for i := 1; i <= steps; i++ {
		if err := sample(float64(i) * sampleEvery); err != nil {
			return nil, err
		}
	}
	// When the horizon is not a cadence multiple, still observe it: the
	// final outputs and the MinRelay verdict are defined at the horizon.
	if float64(steps)*sampleEvery < horizon-1e-12 {
		if err := sample(horizon); err != nil {
			return nil, err
		}
	}
	res.FinalOutputs = sim.CorrectOutputs()
	if isMinRelay {
		agreed := sim.CorrectDiameter() == 0
		res.MinRelayAgreed = &agreed
	}
	return res, nil
}

// VectorSpec configures a coordinate-wise multidimensional run (the
// d-dimensional lift of internal/vector).
type VectorSpec struct {
	Algorithm string `json:"algorithm,omitempty"`
	// Adversary must be model-free unless Model is set.
	Adversary string `json:"adversary"`
	Model     string `json:"model,omitempty"`
	// Points are the initial positions, one []float64 per agent, all of
	// equal dimension.
	Points [][]float64 `json:"points"`
	Rounds int         `json:"rounds,omitempty"`
	Seed   int64       `json:"seed,omitempty"`
}

// VectorResult reports one multidimensional run.
type VectorResult struct {
	// Positions are the final positions.
	Positions [][]float64 `json:"positions"`
	// Diameters[t] is the max pairwise distance after round t.
	Diameters []float64 `json:"diameters"`
}

// VectorRun executes an algorithm coordinate-wise on d-dimensional
// points, all coordinates sharing each round's communication graph (one
// physical broadcast per round), checking ctx between rounds.
func VectorRun(ctx context.Context, spec VectorSpec, opts ...QueryOption) (*VectorResult, error) {
	cfg := applyQueryOptions(opts)
	n := len(spec.Points)
	if n == 0 {
		return nil, fmt.Errorf("consensus: vector run needs initial points")
	}
	points := make([]vector.Point, n)
	for i, p := range spec.Points {
		if len(p) == 0 || len(p) != len(spec.Points[0]) {
			return nil, fmt.Errorf("consensus: vector point %d has dimension %d, want %d", i, len(p), len(spec.Points[0]))
		}
		points[i] = vector.Point(append([]float64(nil), p...))
	}
	algSpec := spec.Algorithm
	if algSpec == "" {
		algSpec = "midpoint"
	}
	alg, err := cfg.lib.algorithms().New(algSpec, n)
	if err != nil {
		return nil, err
	}
	rounds := spec.Rounds
	if rounds == 0 {
		rounds = DefaultRounds
	}
	if rounds < 0 {
		return nil, fmt.Errorf("consensus: negative round count %d", rounds)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = DefaultSeed
	}

	env := AdversaryEnv{N: n, Seed: seed, Depth: DefaultDepth, Algorithm: alg}
	if spec.Model != "" {
		m, err := cfg.lib.models().New(spec.Model)
		if err != nil {
			return nil, err
		}
		if m.N() != n {
			return nil, fmt.Errorf("consensus: model on %d agents with %d points", m.N(), n)
		}
		env.Model = m
	}
	src, err := cfg.lib.adversaries().New(spec.Adversary, env)
	if err != nil {
		return nil, err
	}

	runner, err := vector.NewRunner(alg, points)
	if err != nil {
		return nil, err
	}
	res := &VectorResult{Diameters: make([]float64, 0, rounds+1)}
	res.Diameters = append(res.Diameters, runner.Diameter())
	done := ctx.Done()
	for t := 1; t <= rounds; t++ {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		runner.Run(src, 1)
		res.Diameters = append(res.Diameters, runner.Diameter())
	}
	for _, p := range runner.Positions() {
		res.Positions = append(res.Positions, []float64(p))
	}
	return res, nil
}
