package consensus

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// ServerOption configures a Server.
type ServerOption func(*Server)

// ServerTimeout bounds each query's computation (default 30s).
func ServerTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.timeout = d }
}

// ServerCacheSize bounds the response cache entry count (default 1024;
// 0 disables response caching).
func ServerCacheSize(n int) ServerOption {
	return func(s *Server) { s.cacheMax = n }
}

// ServerLibrary resolves every query against lib.
func ServerLibrary(lib *Library) ServerOption {
	return func(s *Server) { s.lib = lib }
}

// ServerSweepCache uses the given sweep cache instead of the shared
// default.
func ServerSweepCache(c *SweepCache) ServerOption {
	return func(s *Server) { s.sweepCache = c }
}

// ServerObsRegistry backs the server's request metrics and cache
// gauges with the given registry instead of a private one — the
// distributed worker shares its registry with its embedded server so
// one /metrics scrape covers both.
func ServerObsRegistry(r *obs.Registry) ServerOption {
	return func(s *Server) { s.reg = r }
}

// Server is the query server over the engines: an http.Handler exposing
// runs, sweeps, solvability and valency analysis, asynchronous
// simulations, and the paper-reproduction experiments as JSON endpoints.
//
// Endpoints (all under /api/v1):
//
//	GET  /healthz              liveness
//	GET  /api/v1/status        cache hit/miss/eviction counters
//	GET  /api/v1/registry      registered algorithms, models, adversaries
//	POST /api/v1/run           RunSpec -> RunSummary (+ diameters)
//	POST /api/v1/sweep         {"specs": [RunSpec...]} -> {"results": ...}
//	GET  /api/v1/solvability   ?model=SPEC -> SolvabilityReport
//	POST /api/v1/valency       ValencyRequest -> ValencyReport
//	POST /api/v1/decision      DecisionRequest -> {"points": ...}
//	POST /api/v1/async         AsyncSpec -> AsyncResult
//	POST /api/v1/scenario      ScenarioRequest -> ScenarioReport
//	GET  /api/v1/experiments   experiment listing
//	POST /api/v1/experiment    {"id": ...} -> table (+ rendered text)
//
// Every query runs under the server's per-query timeout. Successful
// responses of deterministic endpoints are cached by canonical request
// body; the X-Repro-Cache header reports hit or miss.
type Server struct {
	mux        *http.ServeMux
	timeout    time.Duration
	lib        *Library
	sweepCache *SweepCache

	// reg is the server's always-on instance metrics registry (per-
	// endpoint request counters and latency histograms, cache gauges),
	// served by GET /metrics alongside the process-wide obs.Default()
	// series. Instance registries are deliberately not subject to
	// REPRO_OBS: status endpoints read them.
	reg *obs.Registry

	cacheMu     sync.Mutex
	cache       map[string][]byte
	cacheMax    int
	cacheBytes  int
	cacheHits   uint64
	cacheMisses uint64
}

// Response-cache byte bounds: the entry-count cap alone would not stop a
// few maximum-size run responses (megabytes of diameters each) from
// growing the cache without limit in bytes.
const (
	maxCacheTotalBytes = 64 << 20
	maxCacheEntryBytes = 4 << 20
)

// NewServer builds the query server.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		timeout:    30 * time.Second,
		cacheMax:   1024,
		cache:      make(map[string][]byte),
		sweepCache: defaultSweepCache,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.registerCacheGauges()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /api/v1/status", s.instrument("status", s.handleStatus))
	mux.HandleFunc("GET /api/v1/registry", s.instrument("registry", s.handleRegistry))
	mux.HandleFunc("POST /api/v1/run", s.instrument("run", s.handleRun))
	mux.HandleFunc("POST /api/v1/sweep", s.instrument("sweep", s.handleSweep))
	mux.HandleFunc("GET /api/v1/solvability", s.instrument("solvability", s.handleSolvability))
	mux.HandleFunc("POST /api/v1/valency", s.instrument("valency", s.handleValency))
	mux.HandleFunc("POST /api/v1/decision", s.instrument("decision", s.handleDecision))
	mux.HandleFunc("POST /api/v1/async", s.instrument("async", s.handleAsync))
	mux.HandleFunc("POST /api/v1/scenario", s.instrument("scenario", s.handleScenario))
	mux.HandleFunc("GET /api/v1/experiments", s.instrument("experiments", s.handleExperiments))
	mux.HandleFunc("POST /api/v1/experiment", s.instrument("experiment", s.handleExperiment))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Registry returns the server's instance metrics registry, so
// embedding handlers (the distributed worker) can add their own series
// to the same /metrics exposition.
func (s *Server) Registry() *obs.Registry { return s.reg }

// instrument wraps an endpoint handler with its per-endpoint request
// counter and latency histogram. The instruments are resolved once at
// registration; the per-request cost is one clock pair and two atomic
// updates.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.reg.Counter(
		fmt.Sprintf("repro_server_requests_total{endpoint=%q}", endpoint),
		"HTTP requests served, by endpoint.")
	lat := s.reg.Histogram(
		fmt.Sprintf("repro_server_request_seconds{endpoint=%q}", endpoint),
		"HTTP request latency in seconds, by endpoint.",
		obs.DurationBuckets())
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		lat.Observe(time.Since(start).Seconds())
		reqs.Inc()
	}
}

// registerCacheGauges exposes the serving caches' accounting as
// scrape-time gauges on the instance registry — the same numbers
// /api/v1/status reports, in Prometheus form.
func (s *Server) registerCacheGauges() {
	respStat := func(pick func(ResponseCacheStats) float64) func() float64 {
		return func() float64 { return pick(s.Status().ResponseCache) }
	}
	s.reg.GaugeFunc("repro_server_response_cache_hits",
		"Response-cache hits (lifetime).", respStat(func(c ResponseCacheStats) float64 { return float64(c.Hits) }))
	s.reg.GaugeFunc("repro_server_response_cache_misses",
		"Response-cache misses (lifetime).", respStat(func(c ResponseCacheStats) float64 { return float64(c.Misses) }))
	s.reg.GaugeFunc("repro_server_response_cache_entries",
		"Response-cache entries resident.", respStat(func(c ResponseCacheStats) float64 { return float64(c.Entries) }))
	s.reg.GaugeFunc("repro_server_response_cache_bytes",
		"Response-cache resident bytes.", respStat(func(c ResponseCacheStats) float64 { return float64(c.Bytes) }))
	s.reg.GaugeFunc("repro_server_sweep_cache_hits",
		"Sweep-cache hits (lifetime).", func() float64 { return float64(s.sweepCache.Counters().Hits) })
	s.reg.GaugeFunc("repro_server_sweep_cache_misses",
		"Sweep-cache misses (lifetime).", func() float64 { return float64(s.sweepCache.Counters().Misses) })
	s.reg.GaugeFunc("repro_server_sweep_cache_entries",
		"Sweep-cache entries resident.", func() float64 { return float64(s.sweepCache.Counters().Entries) })
	s.reg.GaugeFunc("repro_server_sweep_cache_hit_rate",
		"Sweep-cache hit rate (lifetime).", func() float64 { return s.sweepCache.Counters().HitRate() })
	s.reg.GaugeFunc("repro_server_scenario_cache_hits",
		"Scenario resolution cache hits (lifetime).", func() float64 {
			h, _, _ := s.lib.scenarios().ResolveCacheStats()
			return float64(h)
		})
	s.reg.GaugeFunc("repro_server_scenario_cache_misses",
		"Scenario resolution cache misses (lifetime).", func() float64 {
			_, m, _ := s.lib.scenarios().ResolveCacheStats()
			return float64(m)
		})
}

// handleMetrics serves the Prometheus text exposition: the server's
// instance registry followed by the process-wide hot-path series
// (kernel, sweep, valency, convergence — absent under REPRO_OBS=off).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WriteAllPrometheus(w, s.reg, obs.Default())
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// statusOf maps a query error to an HTTP status.
func statusOf(err error) int {
	if err == context.DeadlineExceeded || err == context.Canceled {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

// queryCtx derives the per-query context.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.timeout)
}

// maxRequestBytes bounds a request body: the server caps its outputs
// (MaxServedRounds, the cache byte bounds), so inputs must be bounded
// too or one oversized POST buffers gigabytes before validation runs.
const maxRequestBytes = 8 << 20

// decodeBody strictly decodes the size-limited JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("consensus: bad request body: %v", err)
	}
	return nil
}

// cached serves the response for key from the cache, or computes it via
// f, caching successes. The cache key must canonically determine the
// response.
func (s *Server) cached(w http.ResponseWriter, key string, f func() (any, error)) {
	if s.cacheMax > 0 {
		s.cacheMu.Lock()
		body, hit := s.cache[key]
		if hit {
			s.cacheHits++
		} else {
			s.cacheMisses++
		}
		s.cacheMu.Unlock()
		if hit {
			w.Header().Set("X-Repro-Cache", "hit")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(body)
			return
		}
	}
	v, err := f()
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	body = append(body, '\n')
	if s.cacheMax > 0 && len(body) <= maxCacheEntryBytes {
		s.cacheMu.Lock()
		for k, v := range s.cache {
			if len(s.cache) < s.cacheMax && s.cacheBytes+len(body) <= maxCacheTotalBytes {
				break
			}
			delete(s.cache, k)
			s.cacheBytes -= len(v)
		}
		s.cache[key] = body
		s.cacheBytes += len(body)
		s.cacheMu.Unlock()
	}
	w.Header().Set("X-Repro-Cache", "miss")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ResponseCacheStats is the /api/v1/status view of the server's
// canonical-request response cache.
type ResponseCacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Bytes    int    `json:"bytes"`
	Capacity int    `json:"capacity"`
}

// ScenarioCacheStats is the /api/v1/status view of the scenario
// registry's resolution cache.
type ScenarioCacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// StatusReport is the /api/v1/status payload: the serving caches'
// hit/miss/eviction accounting. The same report (extended with shard
// and queue sections) backs the distributed coordinator and worker
// status endpoints.
type StatusReport struct {
	SweepCache    SweepCacheCounters `json:"sweep_cache"`
	SweepHitRate  float64            `json:"sweep_cache_hit_rate"`
	PlanCache     PlanCacheCounters  `json:"plan_cache"`
	ResponseCache ResponseCacheStats `json:"response_cache"`
	ScenarioCache ScenarioCacheStats `json:"scenario_cache"`
}

// Status returns the server's cache accounting snapshot.
func (s *Server) Status() StatusReport {
	sc := s.sweepCache.Counters()
	rep := StatusReport{
		SweepCache:   sc,
		SweepHitRate: sc.HitRate(),
		PlanCache:    PlanCacheTotals(),
	}
	s.cacheMu.Lock()
	rep.ResponseCache = ResponseCacheStats{
		Hits:     s.cacheHits,
		Misses:   s.cacheMisses,
		Entries:  len(s.cache),
		Bytes:    s.cacheBytes,
		Capacity: s.cacheMax,
	}
	s.cacheMu.Unlock()
	h, m, n := s.lib.scenarios().ResolveCacheStats()
	rep.ScenarioCache = ScenarioCacheStats{Hits: h, Misses: m, Entries: n}
	return rep
}

// SweepCacheCounters returns the accounting of the sweep cache this
// server serves from (for startup logging and tests).
func (s *Server) SweepCacheCounters() SweepCacheCounters { return s.sweepCache.Counters() }

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

// registryResponse is the /api/v1/registry payload.
type registryResponse struct {
	Algorithms  []FactoryInfo `json:"algorithms"`
	Models      []FactoryInfo `json:"models"`
	Adversaries []FactoryInfo `json:"adversaries"`
	Scenarios   []FactoryInfo `json:"scenarios"`
	Experiments int           `json:"experiments"`
}

func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, registryResponse{
		Algorithms:  s.lib.algorithms().Describe(),
		Models:      s.lib.models().Describe(),
		Adversaries: s.lib.adversaries().Describe(),
		Scenarios:   s.lib.scenarios().Describe(),
		Experiments: len(Experiments()),
	})
}

// runResponse is the /api/v1/run payload.
type runResponse struct {
	Spec      RunSpec    `json:"spec"`
	Summary   RunSummary `json:"summary"`
	Diameters []float64  `json:"diameters"`
}

// MaxServedRounds bounds a single served run: the run endpoint
// materializes one value vector per round (and JSON-encodes the diameter
// series), so unbounded client-chosen round counts would trade the
// per-query CPU timeout for unbounded memory. Longer executions belong
// in-process on the constant-memory Rounds iterator. The distributed
// coordinator and workers enforce the same cap per shard spec.
const MaxServedRounds = 1 << 20

// CheckServedRounds rejects round budgets past MaxServedRounds.
func CheckServedRounds(rounds int) error {
	if rounds > MaxServedRounds {
		return fmt.Errorf("consensus: served runs are capped at %d rounds, got %d", MaxServedRounds, rounds)
	}
	return nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	if err := decodeBody(w, r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := CheckServedRounds(spec.Rounds); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := cacheKeyOf("run", spec)
	s.cached(w, key, func() (any, error) {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		session, err := NewSession(spec, WithLibrary(s.lib))
		if err != nil {
			return nil, err
		}
		res, err := session.Run(ctx)
		if err != nil {
			return nil, err
		}
		return runResponse{Spec: spec, Summary: Summarize(res), Diameters: res.Diameters()}, nil
	})
}

// sweepRequest is the /api/v1/sweep body.
type sweepRequest struct {
	Specs   []RunSpec `json:"specs"`
	Workers int       `json:"workers,omitempty"`
}

// sweepResponse is the /api/v1/sweep payload.
type sweepResponse struct {
	Results []SweepResult `json:"results"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("consensus: sweep needs at least one spec"))
		return
	}
	for _, spec := range req.Specs {
		if err := CheckServedRounds(spec.Rounds); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	key := cacheKeyOf("sweep", req)
	s.cached(w, key, func() (any, error) {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		opts := []SweepOption{WithSweepCache(s.sweepCache)}
		if s.lib != nil {
			opts = append(opts, SweepLibrary(s.lib))
		}
		if req.Workers > 0 {
			opts = append(opts, SweepWorkers(req.Workers))
		}
		results, err := Sweep(ctx, req.Specs, opts...)
		if err != nil {
			return nil, err
		}
		return sweepResponse{Results: results}, nil
	})
}

func (s *Server) handleSolvability(w http.ResponseWriter, r *http.Request) {
	modelSpec := r.URL.Query().Get("model")
	if modelSpec == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("consensus: solvability needs a ?model= spec"))
		return
	}
	s.cached(w, "solvability|"+modelSpec, func() (any, error) {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		return Solvability(ctx, modelSpec, s.queryOptions()...)
	})
}

func (s *Server) handleValency(w http.ResponseWriter, r *http.Request) {
	var req ValencyRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := cacheKeyOf("valency", req)
	s.cached(w, key, func() (any, error) {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		rep, err := ValencyBounds(ctx, req, s.queryOptions()...)
		if err != nil {
			return nil, err
		}
		// The hit rate depends on query order, not on the query itself;
		// zero it so cached responses are canonical.
		rep.CacheHitRate = 0
		return rep, nil
	})
}

// decisionResponse is the /api/v1/decision payload.
type decisionResponse struct {
	Points []DecisionPoint `json:"points"`
}

func (s *Server) handleDecision(w http.ResponseWriter, r *http.Request) {
	var req DecisionRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := cacheKeyOf("decision", req)
	s.cached(w, key, func() (any, error) {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		points, err := DecisionSweep(ctx, req, s.queryOptions()...)
		if err != nil {
			return nil, err
		}
		return decisionResponse{Points: points}, nil
	})
}

func (s *Server) handleAsync(w http.ResponseWriter, r *http.Request) {
	var spec AsyncSpec
	if err := decodeBody(w, r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := cacheKeyOf("async", spec)
	s.cached(w, key, func() (any, error) {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		return AsyncRun(ctx, spec, s.queryOptions()...)
	})
}

func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	var req ScenarioRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := CheckServedRounds(req.Rounds); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := cacheKeyOf("scenario", req)
	s.cached(w, key, func() (any, error) {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		sch, err := resolveScenarioRequest(req, s.lib)
		if err != nil {
			return nil, err
		}
		// The certification and run horizon defaults to the schedule's
		// Horizon, which an uploaded trace chooses; hold it to the
		// served-run cap before doing per-round work.
		horizon := req.Rounds
		if horizon <= 0 {
			horizon = sch.Horizon()
		}
		if err := CheckServedRounds(horizon); err != nil {
			return nil, err
		}
		return runScenarioResolved(ctx, sch, req, s.lib)
	})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": Experiments()})
}

// experimentRequest is the /api/v1/experiment body.
type experimentRequest struct {
	ID string `json:"id"`
}

// experimentResponse is the /api/v1/experiment payload.
type experimentResponse struct {
	*ExperimentResult
	Text string `json:"text"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	var req experimentRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.cached(w, "experiment|"+req.ID, func() (any, error) {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		res, err := RunExperiment(ctx, req.ID)
		if err != nil {
			return nil, err
		}
		return experimentResponse{ExperimentResult: res, Text: res.Render()}, nil
	})
}

// queryOptions lowers the server library to query options.
func (s *Server) queryOptions() []QueryOption {
	if s.lib == nil {
		return nil
	}
	return []QueryOption{QueryLibrary(s.lib)}
}

// cacheKeyOf canonicalizes a request into a cache key.
func cacheKeyOf(endpoint string, v any) string {
	body, err := json.Marshal(v)
	if err != nil {
		return endpoint + "|uncacheable"
	}
	return endpoint + "|" + string(body)
}
