package scenario

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

// mk returns a helper that unwraps (*Schedule, error) constructor
// results, failing the test on error.
func mk(t *testing.T) func(*Schedule, error) *Schedule {
	return func(s *Schedule, err error) *Schedule {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := New(3, graph.Complete(4)); err == nil {
		t.Error("node-count mismatch accepted")
	}
	if _, err := NewLasso(0, nil, []graph.Graph{graph.Complete(1)}); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestEncodeDecodeFingerprint(t *testing.T) {
	s := mk(t)(NewLasso(4,
		[]graph.Graph{graph.Star(4, 1), graph.Cycle(4)},
		[]graph.Graph{graph.Complete(4)}))
	enc := s.Encode()
	d, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(d) {
		t.Fatal("decode is not the encoded schedule")
	}
	if s.Fingerprint() != d.Fingerprint() {
		t.Fatal("fingerprint changed across encode/decode")
	}
	if !bytes.Equal(enc, d.Encode()) {
		t.Fatal("re-encode not byte-identical")
	}
}

func TestSourceIsObliviousAndMatchesAt(t *testing.T) {
	s := mk(t)(NewLasso(3,
		[]graph.Graph{graph.Cycle(3)},
		[]graph.Graph{graph.Complete(3), graph.Star(3, 2)}))
	src := s.Source()
	if !core.IsOblivious(src) {
		t.Fatal("schedule source must be oblivious")
	}
	for round := 1; round <= 9; round++ {
		if !src.Next(round, nil).Equal(s.At(round)) {
			t.Fatalf("round %d: source disagrees with At", round)
		}
	}
}

func TestRecorderCapturesAdaptiveSource(t *testing.T) {
	// A source whose graph depends on the round only; wrap and replay.
	base := core.ObliviousFunc(func(round int) graph.Graph {
		if round%2 == 0 {
			return graph.Complete(3)
		}
		return graph.Cycle(3)
	})
	rec := NewRecorder(base, 3)
	if !core.IsOblivious(rec) {
		t.Fatal("recorder must stay oblivious over an oblivious source")
	}
	for round := 1; round <= 5; round++ {
		rec.Next(round, nil)
	}
	s, err := rec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if s.PrefixLen() != 5 || !s.Finite() {
		t.Fatalf("recorded schedule has shape prefix=%d loop=%d", s.PrefixLen(), s.LoopLen())
	}
	for round := 1; round <= 5; round++ {
		if !s.At(round).Equal(base.Next(round, nil)) {
			t.Fatalf("round %d: replay differs from the recorded source", round)
		}
	}
}

func TestGenerators(t *testing.T) {
	t.Run("FromModel", func(t *testing.T) {
		m := model.TwoAgent()
		a := mk(t)(FromModel(m, 7, 20))
		b := mk(t)(FromModel(m, 7, 20))
		if !a.Equal(b) {
			t.Fatal("FromModel is not deterministic in the seed")
		}
		c := mk(t)(FromModel(m, 8, 20))
		if a.Equal(c) {
			t.Fatal("different seeds produced identical draws")
		}
		for round := 1; round <= 20; round++ {
			if !m.Contains(a.At(round)) {
				t.Fatalf("round %d plays a non-member graph", round)
			}
		}
	})
	t.Run("PartitionHeal", func(t *testing.T) {
		s := mk(t)(PartitionHeal(6, 2, 4))
		if s.PrefixLen() != 4 || s.LoopLen() != 1 {
			t.Fatalf("shape prefix=%d loop=%d", s.PrefixLen(), s.LoopLen())
		}
		if s.At(1).IsRooted() {
			t.Fatal("partitioned round must be unrooted")
		}
		if !s.At(1).HasEdge(0, 1) || s.At(1).HasEdge(0, 5) {
			t.Fatal("partition blocks wrong")
		}
		if !s.At(5).IsComplete() {
			t.Fatal("healed round must be complete")
		}
	})
	t.Run("Churn", func(t *testing.T) {
		s := mk(t)(Churn(8, 3, 5, 4, 3))
		if s.PrefixLen() != 20 {
			t.Fatalf("prefix %d, want 20", s.PrefixLen())
		}
		for round := 1; round <= 20; round++ {
			if !s.At(round).IsRooted() {
				t.Fatalf("churn round %d unrooted", round)
			}
		}
		if !mk(t)(Churn(8, 3, 5, 4, 3)).Equal(s) {
			t.Fatal("Churn is not deterministic in the seed")
		}
	})
	t.Run("EventuallyRooted", func(t *testing.T) {
		s := mk(t)(EventuallyRooted(4, 3))
		for round := 1; round <= 3; round++ {
			if s.At(round).IsRooted() {
				t.Fatalf("silent round %d is rooted", round)
			}
		}
		if !s.At(4).IsComplete() {
			t.Fatal("round k+1 must be complete")
		}
	})
}

// TestGeneratorsRejectHostileArguments: generator arguments arrive from
// untrusted spec strings (the server's scenario endpoint), so out-of-
// range agent counts and overflow-inducing sizes must error, not panic.
func TestGeneratorsRejectHostileArguments(t *testing.T) {
	const huge = int(^uint(0) >> 2)
	cases := map[string]func() (*Schedule, error){
		"PartitionHeal n>1024": func() (*Schedule, error) { return PartitionHeal(1025, 2, 4) },
		"Churn n>1024":         func() (*Schedule, error) { return Churn(1025, 1, 3, 4, 2) },
		"Churn n<1":            func() (*Schedule, error) { return Churn(0, 1, 3, 4, 0) },
		"EventuallyRooted n":   func() (*Schedule, error) { return EventuallyRooted(1025, 2) },
		"Churn cap overflow":   func() (*Schedule, error) { return Churn(4, 1, huge, 3, 1) },
		"Repeat cap overflow": func() (*Schedule, error) {
			s, err := EventuallyRooted(4, 2)
			if err != nil {
				return nil, err
			}
			return Repeat(s, huge)
		},
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panicked instead of erroring: %v", r)
				}
			}()
			if _, err := f(); err == nil {
				t.Fatal("hostile arguments accepted")
			}
		})
	}
}

func TestLassoAlgebra(t *testing.T) {
	a := mk(t)(New(3, graph.Cycle(3), graph.Complete(3)))
	b := mk(t)(NewLasso(3, []graph.Graph{graph.Star(3, 0)}, []graph.Graph{graph.Star(3, 1), graph.Star(3, 2)}))

	t.Run("Repeat", func(t *testing.T) {
		r := mk(t)(Repeat(a, 3))
		if r.PrefixLen() != 6 {
			t.Fatalf("prefix %d, want 6", r.PrefixLen())
		}
		for i := 0; i < 3; i++ {
			if !r.At(2*i+1).Equal(graph.Cycle(3)) || !r.At(2*i+2).Equal(graph.Complete(3)) {
				t.Fatalf("repetition %d wrong", i)
			}
		}
	})
	t.Run("Concat", func(t *testing.T) {
		c := mk(t)(Concat(a, b))
		want := []graph.Graph{graph.Cycle(3), graph.Complete(3), graph.Star(3, 0), graph.Star(3, 1), graph.Star(3, 2), graph.Star(3, 1)}
		for i, g := range want {
			if !c.At(i + 1).Equal(g) {
				t.Fatalf("round %d wrong", i+1)
			}
		}
		if _, err := Concat(b, a); err == nil {
			t.Fatal("Concat accepted an infinite non-final operand")
		}
	})
	t.Run("Interleave", func(t *testing.T) {
		il := mk(t)(Interleave(a, b))
		// Round 2t-1 = a.At(t), round 2t = b.At(t), for any horizon.
		for tt := 1; tt <= 12; tt++ {
			if !il.At(2*tt - 1).Equal(a.At(tt)) {
				t.Fatalf("odd round %d: not a's round %d", 2*tt-1, tt)
			}
			if !il.At(2 * tt).Equal(b.At(tt)) {
				t.Fatalf("even round %d: not b's round %d", 2*tt, tt)
			}
		}
	})
}

func TestCertify(t *testing.T) {
	t.Run("EventuallyRooted", func(t *testing.T) {
		s := mk(t)(EventuallyRooted(4, 3))
		cert, err := s.Certify(context.Background(), 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cert.Rooted || cert.FirstUnrooted != 1 {
			t.Fatalf("silent prefix not flagged: %+v", cert)
		}
		// k=3 fails on the all-silent window 1..3; k=4 forces every
		// window to contain at least one complete round, whose product
		// with anything is rooted.
		if cert.RootedWindow != 4 {
			t.Fatalf("rooted window %d, want 4", cert.RootedWindow)
		}
	})
	t.Run("AllRootedNonSplit", func(t *testing.T) {
		s := mk(t)(New(3, graph.Complete(3)))
		cert, err := s.Certify(context.Background(), 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !cert.Rooted || !cert.NonSplit || cert.RootedWindow != 1 {
			t.Fatalf("complete graph miscertified: %+v", cert)
		}
	})
	t.Run("WindowWrapsLoop", func(t *testing.T) {
		// A pure-loop lasso [P, E, P]: P is two isolated complete
		// blocks, E a single cross edge. The replayed schedule plays
		// (P, P) across the loop boundary (rounds 3-4), whose product
		// is unrooted, so RootedWindow must not be 2 even though no
		// 2-window inside one loop iteration read off the horizon
		// alone would show it.
		p := graph.MustFromEdges(4, [2]int{0, 1}, [2]int{1, 0}, [2]int{2, 3}, [2]int{3, 2})
		e := graph.MustFromEdges(4, [2]int{1, 2})
		s := mk(t)(NewLasso(4, nil, []graph.Graph{p, e, p}))
		cert, err := s.Certify(context.Background(), 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cert.RootedWindow == 2 {
			t.Fatal("RootedWindow 2 certified despite the unrooted (P,P) window across the loop boundary")
		}
		// Any 3 consecutive rounds contain E exactly once; with both
		// blocks internally complete and the 1->2 bridge, the product
		// is rooted, so 3 is the true answer at any horizon.
		if cert.RootedWindow != 3 {
			t.Fatalf("rooted window %d, want 3", cert.RootedWindow)
		}
	})
	t.Run("ModelMembership", func(t *testing.T) {
		m := model.TwoAgent()
		member := mk(t)(FromModel(m, 1, 8))
		cert, err := member.Certify(context.Background(), 8, m)
		if err != nil {
			t.Fatal(err)
		}
		if !cert.ModelChecked || !cert.ModelMember {
			t.Fatalf("member schedule not certified: %+v", cert)
		}
		outside := mk(t)(New(2, graph.New(2))) // identity graph is not in TwoAgent
		cert, err = outside.Certify(context.Background(), 3, m)
		if err != nil {
			t.Fatal(err)
		}
		if cert.ModelMember || cert.FirstNonMember != 1 {
			t.Fatalf("non-member schedule passed: %+v", cert)
		}
		if _, err := member.Certify(context.Background(), 1, model.MustNew(graph.Complete(3))); err == nil {
			t.Fatal("model on wrong n accepted")
		}
	})
	t.Run("SummaryRenders", func(t *testing.T) {
		s := mk(t)(PartitionHeal(6, 3, 2))
		cert, err := s.Certify(context.Background(), 6, nil)
		if err != nil {
			t.Fatal(err)
		}
		text := cert.Summary()
		for _, frag := range []string{"rounds certified", "rooted every round", "first at round 1"} {
			if !bytes.Contains([]byte(text), []byte(frag)) {
				t.Fatalf("summary missing %q:\n%s", frag, text)
			}
		}
	})
}
