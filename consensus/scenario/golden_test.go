package scenario

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// The committed fixture testdata/golden_rsc1.trace pins the single-word
// trace format and its replay semantics across refactors: the ceiling
// lift (multi-word masks, RSC2) must leave every n <= 64 artifact
// byte-identical, and these constants are what "identical" means. If
// this test ever needs a regenerated fixture, that is a format break —
// committed trace fingerprints in the wild would silently change
// identity.
const (
	goldenTraceFP = "6268f7395682b661383b615c7ad22b61fe60b0c8797a725d709cc92dcf8c417f"
	goldenRunFP   = "0600000000000000100000000000000001aaaaaaaaaa2ae73f01aaaaaaaaaa2ae73f01aaaaaaaaaa2ae73f01aaaaaaaaaa2ae73f01aaaaaaaaaa2ae73f01aaaaaaaaaa2ae73f"
	goldenRounds  = 16
)

// goldenSchedule reconstructs the fixture's schedule from first
// principles — the same explicit lasso that generated the file.
func goldenSchedule(t *testing.T) *Schedule {
	t.Helper()
	n := 6
	return mk(t)(NewLasso(n,
		[]graph.Graph{graph.Star(n, 1), graph.Cycle(n), graph.Deaf(graph.Complete(n), 3)},
		[]graph.Graph{graph.Complete(n), graph.Cycle(n)}))
}

func goldenInputs() []float64 {
	return []float64{0, 1, 0.25, 0.75, 0.5, 1.0 / 3.0}
}

func TestGoldenRSC1Trace(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_rsc1.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("RSC1")) {
		t.Fatalf("fixture does not start with the RSC1 magic: %q", raw[:4])
	}

	// Encoding today's schedule must reproduce the committed bytes, and
	// decoding the committed bytes must reproduce the schedule.
	s := goldenSchedule(t)
	if !bytes.Equal(s.Encode(), raw) {
		t.Fatal("encoding the golden schedule no longer matches the committed RSC1 bytes")
	}
	d, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(d) {
		t.Fatal("decoded fixture is not the golden schedule")
	}
	if got := d.Fingerprint(); got != goldenTraceFP {
		t.Fatalf("trace fingerprint drifted:\n got %s\nwant %s", got, goldenTraceFP)
	}

	// Replay through both backends; the run fingerprint is pinned too,
	// so a codec that decodes "something equivalent" cannot hide a
	// semantic change behind a matching trace digest.
	want, err := hex.DecodeString(goldenRunFP)
	if err != nil {
		t.Fatal(err)
	}
	inputs := goldenInputs()

	c := core.NewConfig(algorithms.Midpoint{}, inputs)
	for round := 1; round <= goldenRounds; round++ {
		c = c.Step(d.At(round))
	}
	afp, ok := c.AppendFingerprint(nil)
	if !ok {
		t.Fatal("agent replay not fingerprintable")
	}
	if !bytes.Equal(afp, want) {
		t.Fatalf("agent replay fingerprint drifted:\n got %s\nwant %s", hex.EncodeToString(afp), goldenRunFP)
	}

	alg, ok := core.AsDense(algorithms.Midpoint{})
	if !ok {
		t.Fatal("midpoint must be dense-capable")
	}
	r := core.NewDenseRunner(alg, inputs)
	for round := 1; round <= goldenRounds; round++ {
		r.Step(d.At(round))
	}
	dfp, ok := core.AppendDenseFingerprint(alg, r.State(), nil)
	if !ok {
		t.Fatal("dense replay not fingerprintable")
	}
	if !bytes.Equal(dfp, want) {
		t.Fatalf("dense replay fingerprint drifted:\n got %s\nwant %s", hex.EncodeToString(dfp), goldenRunFP)
	}
}
