package scenario

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
)

// Certificate is the result of checking a schedule horizon against the
// paper's solvability preconditions. All round numbers are 1-based; a
// First* field of 0 means "no violation within the horizon".
type Certificate struct {
	// N is the agent count, Rounds the checked horizon.
	N      int `json:"n"`
	Rounds int `json:"rounds"`

	// Rooted reports whether every checked round's graph is rooted — the
	// per-round form of the paper's asymptotic-consensus solvability
	// condition (Section 2.2, Theorem 1: solvable iff every graph of the
	// model is rooted). FirstUnrooted is the earliest offending round.
	Rooted        bool `json:"rooted"`
	FirstUnrooted int  `json:"first_unrooted,omitempty"`

	// NonSplit reports whether every checked round's graph is non-split,
	// the precondition for the midpoint algorithm's optimal 1/2
	// contraction per round (Section 8, Algorithm 2).
	NonSplit   bool `json:"non_split"`
	FirstSplit int  `json:"first_split,omitempty"`

	// RootedWindow is the smallest k such that every k consecutive
	// rounds of the schedule *as replayed forever* have a rooted product
	// — the eventually-rooted(k) certificate under which the amortized
	// midpoint contracts every k rounds. Unlike the per-round fields it
	// is a property of the whole schedule, not of the checked horizon:
	// the lasso shape makes the infinite check finite (window contents
	// repeat once the start passes the prefix). 1 means every round is
	// rooted; 0 means no such k was found up to MaxRootedWindow — or,
	// when RootedWindowSkipped is set, that the schedule has more than
	// MaxRootedWindowStarts distinct window starts and the k >= 2
	// search was skipped (never truncated to a false "yes").
	RootedWindow        int  `json:"rooted_window,omitempty"`
	RootedWindowSkipped bool `json:"rooted_window_skipped,omitempty"`

	// ModelChecked marks certificates computed against a model;
	// ModelMember then reports whether every checked round's graph is a
	// member, with FirstNonMember the earliest round playing a graph
	// outside the model. A schedule whose rounds all lie inside a model
	// inherits every bound proven for that model.
	ModelChecked   bool `json:"model_checked"`
	ModelMember    bool `json:"model_member,omitempty"`
	FirstNonMember int  `json:"first_non_member,omitempty"`
}

// MaxRootedWindow caps the eventually-rooted window length searched:
// windows beyond this length are of no practical certification value.
const MaxRootedWindow = 64

// MaxRootedWindowStarts caps the number of distinct window starts the
// eventually-rooted search will scan (one per prefix round plus one per
// loop round — starts beyond that repeat by periodicity). Schedules
// with larger lassos skip the k >= 2 search and report RootedWindow 0
// (an under-claim, never a false certificate), which bounds the
// worst-case certification cost at MaxRootedWindowStarts·MaxRootedWindow²/2
// graph products regardless of the schedule or horizon a client
// uploads.
const MaxRootedWindowStarts = 4096

// Certify checks the first rounds rounds of the schedule (its Horizon
// when rounds <= 0) against the paper's per-round preconditions, and
// against model membership when m is non-nil. m must be on the same
// agent count. Certification honors ctx — the horizon and the window
// search are client-controlled work, so servers bound it with their
// per-query deadline — returning ctx.Err() when cancelled.
func (s *Schedule) Certify(ctx context.Context, rounds int, m *model.Model) (Certificate, error) {
	if rounds <= 0 {
		rounds = s.Horizon()
	}
	if m != nil && m.N() != s.n {
		return Certificate{}, fmt.Errorf("scenario: certifying a %d-agent schedule against a %d-agent model", s.n, m.N())
	}
	cert := Certificate{
		N: s.n, Rounds: rounds,
		Rooted: true, NonSplit: true,
		ModelChecked: m != nil, ModelMember: m != nil,
	}
	// Distinct graphs are few by construction (the codec dedups them);
	// memoize the per-graph predicates so a million-round schedule over a
	// handful of topologies costs a handful of root computations.
	type props struct{ rooted, nonSplit, member bool }
	memo := make(map[string]props, 8)
	var key []byte
	done := ctx.Done()
	for t := 1; t <= rounds; t++ {
		if done != nil && t%65536 == 0 {
			select {
			case <-done:
				return Certificate{}, ctx.Err()
			default:
			}
		}
		g := s.At(t)
		key = graphMemoKey(key, g)
		p, ok := memo[string(key)]
		if !ok {
			p = props{rooted: g.IsRooted(), nonSplit: g.IsNonSplit()}
			if m != nil {
				p.member = m.Contains(g)
			}
			memo[string(key)] = p
		}
		if !p.rooted && cert.FirstUnrooted == 0 {
			cert.Rooted = false
			cert.FirstUnrooted = t
		}
		if !p.nonSplit && cert.FirstSplit == 0 {
			cert.NonSplit = false
			cert.FirstSplit = t
		}
		if m != nil && !p.member && cert.FirstNonMember == 0 {
			cert.ModelMember = false
			cert.FirstNonMember = t
		}
	}
	window, windowSkipped, err := s.rootedWindow(ctx)
	if err != nil {
		return Certificate{}, err
	}
	cert.RootedWindow, cert.RootedWindowSkipped = window, windowSkipped
	return cert, nil
}

// rootedWindow returns the smallest k <= MaxRootedWindow such that
// every window of k consecutive rounds of the replayed schedule has a
// rooted product, or 0 when none qualifies (or the search is skipped;
// see MaxRootedWindowStarts). Information that flows along G1 then G2
// flows along their product (paper, Section 2), so a rooted k-window
// product certifies that some agent's value reaches everyone within
// any k rounds.
//
// The replayed schedule is infinite, but its windows are not: a window
// starting past the prefix repeats with the loop period (and every
// window of a finite schedule starting past the prefix is the repeated
// last graph alone), so scanning starts 1..PrefixLen+max(LoopLen,1) —
// with windows extending past the horizon through At — covers every
// window the schedule ever plays.
func (s *Schedule) rootedWindow(ctx context.Context) (window int, skipped bool, err error) {
	// k = 1 is "every graph the schedule ever plays is rooted", which
	// needs no products: scan the distinct graphs with memoization.
	memo := make(map[string]bool, 8)
	var key []byte
	rooted := func(g graph.Graph) bool {
		key = graphMemoKey(key, g)
		r, ok := memo[string(key)]
		if !ok {
			r = g.IsRooted()
			memo[string(key)] = r
		}
		return r
	}
	allRooted := true
	for _, g := range s.prefix {
		if !rooted(g) {
			allRooted = false
			break
		}
	}
	if allRooted {
		for _, g := range s.loop {
			if !rooted(g) {
				allRooted = false
				break
			}
		}
	}
	if allRooted {
		return 1, false, nil
	}
	starts := len(s.prefix) + max(len(s.loop), 1)
	if starts > MaxRootedWindowStarts {
		return 0, true, nil
	}
	done := ctx.Done()
	for k := 2; k <= MaxRootedWindow; k++ {
		ok := true
		for start := 1; start <= starts; start++ {
			if done != nil && start%256 == 0 {
				select {
				case <-done:
					return 0, false, ctx.Err()
				default:
				}
			}
			p := s.At(start)
			for t := start + 1; t < start+k; t++ {
				p = graph.Product(p, s.At(t))
			}
			if !p.IsRooted() {
				ok = false
				break
			}
		}
		if ok {
			return k, false, nil
		}
	}
	return 0, false, nil
}

// Summary renders the certificate as the human-readable lines the
// scenario tool prints.
func (c Certificate) Summary() string {
	verdict := func(ok bool, firstBad int, okText, badText string) string {
		if ok {
			return okText
		}
		return fmt.Sprintf("%s (first at round %d)", badText, firstBad)
	}
	out := fmt.Sprintf("rounds certified:        %d (n=%d)\n", c.Rounds, c.N)
	out += "rooted every round:      " + verdict(c.Rooted, c.FirstUnrooted,
		"yes — asymptotic consensus solvable over these graphs (Theorem 1)", "no") + "\n"
	out += "non-split every round:   " + verdict(c.NonSplit, c.FirstSplit,
		"yes — midpoint contracts by 1/2 per round (Algorithm 2)", "no") + "\n"
	switch {
	case c.RootedWindow == 1:
		out += "rooted window:           1 (every round rooted)\n"
	case c.RootedWindow > 1:
		out += fmt.Sprintf("rooted window:           %d (eventually rooted: every %d-round product is rooted)\n",
			c.RootedWindow, c.RootedWindow)
	case c.RootedWindowSkipped:
		out += fmt.Sprintf("rooted window:           not searched (more than %d distinct window starts)\n", MaxRootedWindowStarts)
	default:
		out += fmt.Sprintf("rooted window:           none up to %d\n", MaxRootedWindow)
	}
	if c.ModelChecked {
		out += "model membership:        " + verdict(c.ModelMember, c.FirstNonMember,
			"yes — every round plays a model graph", "no") + "\n"
	}
	return out
}
