package scenario

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/model"
)

// This file implements the composable schedule generators: concrete
// dynamic-network scenarios (model draws, partitions that heal, churn,
// eventually rooted runs) and the lasso algebra that combines them
// (Repeat, Concat, Interleave). Every generator is deterministic in its
// arguments — randomized ones take an explicit seed — so a generated
// schedule is as replayable as a recorded one.

// FromModel returns the finite schedule of rounds uniform draws from the
// model, using the given seed — the recorded form of the "random"
// adversary, detached from any session.
func FromModel(m *model.Model, seed int64, rounds int) (*Schedule, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("scenario: FromModel needs rounds >= 1, got %d", rounds)
	}
	if rounds > maxGeneratedRounds {
		return nil, fmt.Errorf("scenario: FromModel rounds %d exceeds the %d cap", rounds, maxGeneratedRounds)
	}
	rng := rand.New(rand.NewSource(seed))
	gs := make([]graph.Graph, rounds)
	for t := range gs {
		gs[t] = m.Graph(rng.Intn(m.Size()))
	}
	return New(m.N(), gs...)
}

// maxGeneratedRounds bounds materialized generator output; far below the
// codec cap, since generated prefixes are meant to be human-sized.
const maxGeneratedRounds = 1 << 20

// checkAgents validates a generator's agent count up front: generators
// are fed spec strings from untrusted sources (the server's scenario
// endpoint), so an out-of-range n must error here, before any
// graph-package constructor panics on it.
func checkAgents(n int) error {
	if n < 1 || n > graph.MaxNodes {
		return fmt.Errorf("scenario: invalid agent count %d (want 1..%d)", n, graph.MaxNodes)
	}
	return nil
}

// PartitionHeal returns the schedule in which the agents are split into
// the given number of contiguous, equally sized blocks that communicate
// only internally (complete within a block, silence across) for healAt
// rounds, after which the network heals into the complete graph forever.
// With two or more blocks the partition rounds are unrooted — no agent
// reaches the other blocks — so the schedule is a canonical
// eventually-rooted workload: consensus can only contract once healing
// starts.
func PartitionHeal(n, blocks, healAt int) (*Schedule, error) {
	if err := checkAgents(n); err != nil {
		return nil, err
	}
	if blocks < 1 || blocks > n {
		return nil, fmt.Errorf("scenario: %d partition blocks for %d agents", blocks, n)
	}
	if healAt < 0 || healAt > maxGeneratedRounds {
		return nil, fmt.Errorf("scenario: heal round %d out of range [0,%d]", healAt, maxGeneratedRounds)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Contiguous blocks: agent k belongs to block k*blocks/n.
			if i*blocks/n == j*blocks/n {
				b.Edge(i, j)
			}
		}
	}
	part := b.Graph()
	prefix := make([]graph.Graph, healAt)
	for t := range prefix {
		prefix[t] = part
	}
	return NewLasso(n, prefix, []graph.Graph{graph.Complete(n)})
}

// Churn returns the schedule of epochs epochs, each holding one topology
// for period rounds: a random subset of at most maxDown agents is down —
// a down agent's transmitter fails, so it keeps listening to every up
// agent but nobody hears it — while the up agents form a complete
// cluster. Every round stays rooted (any up agent reaches everyone), so
// churn schedules satisfy the paper's asymptotic-consensus precondition
// while stressing the engines with per-epoch topology changes.
func Churn(n int, seed int64, period, epochs, maxDown int) (*Schedule, error) {
	if err := checkAgents(n); err != nil {
		return nil, err
	}
	if period < 1 || epochs < 1 {
		return nil, fmt.Errorf("scenario: Churn needs period >= 1 and epochs >= 1, got %d and %d", period, epochs)
	}
	if maxDown < 0 || maxDown >= n {
		return nil, fmt.Errorf("scenario: Churn needs 0 <= maxDown < n, got maxDown=%d n=%d", maxDown, n)
	}
	// Division form: period*epochs would overflow for hostile values.
	if period > maxGeneratedRounds/epochs {
		return nil, fmt.Errorf("scenario: Churn schedule of %d x %d rounds exceeds the %d cap", period, epochs, maxGeneratedRounds)
	}
	rng := rand.New(rand.NewSource(seed))
	prefix := make([]graph.Graph, 0, period*epochs)
	down := make([]bool, n)
	upRow := make([]uint64, graph.WordsFor(n))
	for e := 0; e < epochs; e++ {
		downCount := rng.Intn(maxDown + 1)
		for i := range down {
			down[i] = false
		}
		for _, i := range rng.Perm(n)[:downCount] {
			down[i] = true
		}
		// Edge i -> j: i transmits to j. Down agents do not transmit;
		// everyone (down agents included) hears every up agent. Every
		// receiver therefore shares the all-up in-row, plus its own
		// self-loop (restored by SetInRow).
		for w := range upRow {
			upRow[w] = 0
		}
		for i := 0; i < n; i++ {
			if !down[i] {
				upRow[i/64] |= 1 << uint(i%64)
			}
		}
		b := graph.NewBuilder(n)
		for j := 0; j < n; j++ {
			b.SetInRow(j, upRow)
		}
		g := b.Graph()
		for t := 0; t < period; t++ {
			prefix = append(prefix, g)
		}
	}
	return New(n, prefix...)
}

// EventuallyRooted returns the schedule that plays k silent rounds (the
// identity graph: nobody hears anybody, unrooted for n >= 2) and then
// the complete graph forever — the minimal eventually-rooted(k)
// schedule. Certify reports the silent prefix via FirstUnrooted and the
// healed tail via RootedWindow.
func EventuallyRooted(n, k int) (*Schedule, error) {
	if err := checkAgents(n); err != nil {
		return nil, err
	}
	if k < 0 || k > maxGeneratedRounds {
		return nil, fmt.Errorf("scenario: EventuallyRooted needs 0 <= k <= %d, got %d", maxGeneratedRounds, k)
	}
	silent := graph.New(n)
	prefix := make([]graph.Graph, k)
	for t := range prefix {
		prefix[t] = silent
	}
	return NewLasso(n, prefix, []graph.Graph{graph.Complete(n)})
}

// Repeat returns the schedule playing s's prefix k times and then s's
// loop (for finite s: the prefix k times, then its last graph forever).
func Repeat(s *Schedule, k int) (*Schedule, error) {
	if k < 1 {
		return nil, fmt.Errorf("scenario: Repeat needs k >= 1, got %d", k)
	}
	// Division form: len(prefix)*k would overflow for hostile k.
	if len(s.prefix) > 0 && k > maxGeneratedRounds/len(s.prefix) {
		return nil, fmt.Errorf("scenario: Repeat of %d x %d rounds exceeds the %d cap", len(s.prefix), k, maxGeneratedRounds)
	}
	prefix := make([]graph.Graph, 0, len(s.prefix)*k)
	for i := 0; i < k; i++ {
		prefix = append(prefix, s.prefix...)
	}
	return NewLasso(s.n, prefix, s.loop)
}

// Concat returns the schedule playing the given schedules back to back.
// Every schedule except the last must be finite (an infinite loop never
// hands over); the result inherits the last schedule's loop.
func Concat(ss ...*Schedule) (*Schedule, error) {
	if len(ss) == 0 {
		return nil, fmt.Errorf("scenario: Concat of no schedules")
	}
	n := ss[0].n
	total := 0
	for i, s := range ss {
		if s.n != n {
			return nil, fmt.Errorf("scenario: Concat mixes %d and %d agents", n, s.n)
		}
		if i < len(ss)-1 && !s.Finite() {
			return nil, fmt.Errorf("scenario: Concat operand %d is infinite (only the last may loop)", i)
		}
		total += len(s.prefix)
	}
	if total > maxGeneratedRounds {
		return nil, fmt.Errorf("scenario: Concat of %d rounds exceeds the %d cap", total, maxGeneratedRounds)
	}
	prefix := make([]graph.Graph, 0, total)
	for _, s := range ss {
		prefix = append(prefix, s.prefix...)
	}
	return NewLasso(n, prefix, ss[len(ss)-1].loop)
}

// Interleave returns the schedule alternating rounds of a and b on their
// own clocks: round 2t-1 plays a's round t, round 2t plays b's round t.
// The result is again a lasso: its prefix covers both operands' prefixes
// and its loop is one period of the combined tail (2·lcm of the loop
// lengths).
func Interleave(a, b *Schedule) (*Schedule, error) {
	if a.n != b.n {
		return nil, fmt.Errorf("scenario: Interleave mixes %d and %d agents", a.n, b.n)
	}
	// Operand clocks enter their loops after their prefixes; treat a
	// finite schedule as looping on its last graph (length 1).
	la, lb := len(a.loop), len(b.loop)
	if la == 0 {
		la = 1
	}
	if lb == 0 {
		lb = 1
	}
	p := max(len(a.prefix), len(b.prefix))
	l := lcm(la, lb)
	if 2*(p+l) > maxGeneratedRounds {
		return nil, fmt.Errorf("scenario: Interleave of %d rounds exceeds the %d cap", 2*(p+l), maxGeneratedRounds)
	}
	weave := func(from, to int) []graph.Graph {
		out := make([]graph.Graph, 0, 2*(to-from))
		for t := from + 1; t <= to; t++ {
			out = append(out, a.At(t), b.At(t))
		}
		return out
	}
	return NewLasso(a.n, weave(0, p), weave(p, p+l))
}

// lcm returns the least common multiple of two positive integers.
func lcm(a, b int) int {
	x, y := a, b
	for y != 0 {
		x, y = y, x%y
	}
	return a / x * b
}
