// Package scenario makes dynamic-network schedules a first-class
// artifact: a Schedule is a concrete, replayable round-by-round sequence
// of communication graphs — partitions that heal, churn, eventually
// rooted runs, recorded adversary traces — that can be persisted to a
// compact deterministic binary trace, fingerprinted, certified against
// the paper's solvability preconditions (rooted, non-split, model
// membership; Függer, Nowak, Schwarz, PODC 2018, Sections 2 and 8), and
// replayed exactly on any execution backend.
//
// A Schedule is a lasso rho·lambda^omega: a finite prefix of per-round
// graphs followed by a loop that repeats forever. Every ultimately
// periodic schedule has this shape, so infinite scenarios (a partition
// that heals into a stable topology, periodic churn) stay finitely
// encodable; a Schedule with an empty loop is a finite trace that
// extends by repeating its last graph. Composable generators (FromModel,
// PartitionHeal, Churn, EventuallyRooted, Repeat, Concat, Interleave,
// Recorded) build schedules; Encode/Decode round-trip them losslessly;
// Certify checks their properties; Source lowers them to the execution
// engines, where they are oblivious pattern sources and therefore run on
// the dense backend and batch onto the batched execution plane.
package scenario

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	codec "repro/internal/scenario"
)

// Schedule is an immutable round-by-round dynamic-network schedule in
// lasso form. The zero value is not valid; use New, NewLasso, Decode, or
// a generator.
type Schedule struct {
	n      int
	prefix []graph.Graph
	loop   []graph.Graph

	// fp memoizes Fingerprint: schedules are immutable and every
	// consumer of one (session identity, sweep caching, registry
	// caching, tile ordering) keys on the same digest, so it is
	// computed at most once per schedule.
	fpOnce sync.Once
	fp     string
}

// New returns the finite schedule playing the given graphs in order
// (rounds beyond the last graph repeat it). At least one graph is
// required and all must share the node count n.
func New(n int, graphs ...graph.Graph) (*Schedule, error) {
	return NewLasso(n, graphs, nil)
}

// NewLasso returns the schedule playing prefix once and then loop
// forever (an empty loop repeats the last prefix graph). The schedule
// must be non-empty and every graph must be on n nodes.
func NewLasso(n int, prefix, loop []graph.Graph) (*Schedule, error) {
	if n < 1 || n > graph.MaxNodes {
		return nil, fmt.Errorf("scenario: invalid agent count %d (want 1..%d)", n, graph.MaxNodes)
	}
	if len(prefix)+len(loop) == 0 {
		return nil, fmt.Errorf("scenario: empty schedule")
	}
	if len(prefix) > codec.MaxRounds || len(loop) > codec.MaxRounds {
		return nil, fmt.Errorf("scenario: schedule of %d+%d rounds exceeds the %d-round cap",
			len(prefix), len(loop), codec.MaxRounds)
	}
	s := &Schedule{
		n:      n,
		prefix: append([]graph.Graph(nil), prefix...),
		loop:   append([]graph.Graph(nil), loop...),
	}
	for i, g := range s.prefix {
		if g.N() != n {
			return nil, fmt.Errorf("scenario: prefix round %d is on %d nodes, want %d", i+1, g.N(), n)
		}
	}
	for i, g := range s.loop {
		if g.N() != n {
			return nil, fmt.Errorf("scenario: loop round %d is on %d nodes, want %d", i+1, g.N(), n)
		}
	}
	return s, nil
}

// N returns the number of agents.
func (s *Schedule) N() int { return s.n }

// PrefixLen returns the number of prefix rounds.
func (s *Schedule) PrefixLen() int { return len(s.prefix) }

// LoopLen returns the loop length; 0 marks a finite schedule (the last
// prefix graph repeats).
func (s *Schedule) LoopLen() int { return len(s.loop) }

// Finite reports whether the schedule is a finite trace (empty loop).
func (s *Schedule) Finite() bool { return len(s.loop) == 0 }

// Horizon returns the number of rounds after which the schedule is fully
// exhibited: the prefix plus one full loop iteration (just the prefix
// for finite schedules). It is the default certification and replay
// horizon.
func (s *Schedule) Horizon() int { return len(s.prefix) + len(s.loop) }

// At returns the communication graph of the given round (1-based). It
// delegates to the execution-engine source, so what Certify and
// inspection see is by construction what a replay plays.
func (s *Schedule) At(round int) graph.Graph {
	return core.Schedule{Prefix: s.prefix, Loop: s.loop}.At(round)
}

// Graphs materializes the first rounds graphs of the schedule.
func (s *Schedule) Graphs(rounds int) []graph.Graph {
	out := make([]graph.Graph, rounds)
	for t := range out {
		out[t] = s.At(t + 1)
	}
	return out
}

// Source lowers the schedule to an execution-engine pattern source. The
// source is oblivious, so schedule-driven runs use the dense backend and
// tile onto the batched execution plane.
func (s *Schedule) Source() core.PatternSource {
	return core.Schedule{Prefix: s.prefix, Loop: s.loop}
}

// Encode serializes the schedule to the canonical binary trace format
// (see repro/internal/scenario for the layout). Equal schedules encode
// to equal bytes.
func (s *Schedule) Encode() []byte { return codec.Encode(s.n, s.prefix, s.loop) }

// Decode parses a binary trace produced by Encode.
func Decode(data []byte) (*Schedule, error) {
	n, prefix, loop, err := codec.Decode(data)
	if err != nil {
		return nil, err
	}
	return NewLasso(n, prefix, loop)
}

// Fingerprint returns the hex SHA-256 digest of the canonical encoding —
// the schedule's identity, computed once and memoized. Two schedules are
// interchangeable for replay iff their fingerprints agree.
func (s *Schedule) Fingerprint() string {
	s.fpOnce.Do(func() { s.fp = codec.Fingerprint(s.n, s.prefix, s.loop) })
	return s.fp
}

// Equal reports whether the two schedules play identical graphs in every
// round (same lasso decomposition).
func (s *Schedule) Equal(t *Schedule) bool {
	if s.n != t.n || len(s.prefix) != len(t.prefix) || len(s.loop) != len(t.loop) {
		return false
	}
	for i := range s.prefix {
		if !s.prefix[i].Equal(t.prefix[i]) {
			return false
		}
	}
	for i := range s.loop {
		if !s.loop[i].Equal(t.loop[i]) {
			return false
		}
	}
	return true
}

// graphMemoKey returns g's raw little-endian mask rows appended to
// buf[:0] — the cheap per-graph memo key (the same representation the
// codec dedups on; an order of magnitude cheaper than the fmt-formatted
// graph.Key, which matters on million-round certifications). At any
// width the key is the full row words, so multi-word graphs memo just
// as cheaply.
func graphMemoKey(buf []byte, g graph.Graph) []byte {
	return g.AppendMaskKey(buf[:0])
}

// DistinctGraphs returns the number of distinct graphs the schedule ever
// plays.
func (s *Schedule) DistinctGraphs() int {
	seen := make(map[string]struct{}, 8)
	var key []byte
	for _, g := range s.prefix {
		key = graphMemoKey(key, g)
		seen[string(key)] = struct{}{}
	}
	for _, g := range s.loop {
		key = graphMemoKey(key, g)
		seen[string(key)] = struct{}{}
	}
	return len(seen)
}

// String renders a compact summary, e.g.
// "scenario(n=4, prefix=6, loop=2, fp=1a2b3c4d)".
func (s *Schedule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario(n=%d, prefix=%d", s.n, len(s.prefix))
	if len(s.loop) > 0 {
		fmt.Fprintf(&sb, ", loop=%d", len(s.loop))
	}
	fmt.Fprintf(&sb, ", fp=%.8s)", s.Fingerprint())
	return sb.String()
}

// Recorder wraps any pattern source — benign scheduler or adaptive
// adversary — and captures every graph it plays, so the run can be
// persisted and replayed exactly. It implements core.PatternSource and
// declares itself oblivious exactly when the wrapped source is, so
// recording never changes which backend a run takes.
type Recorder struct {
	src    core.PatternSource
	n      int
	graphs []graph.Graph
}

// NewRecorder wraps src, recording graphs on n agents.
func NewRecorder(src core.PatternSource, n int) *Recorder {
	return &Recorder{src: src, n: n}
}

// Next implements core.PatternSource.
func (r *Recorder) Next(round int, c *core.Config) graph.Graph {
	g := r.src.Next(round, c)
	r.graphs = append(r.graphs, g)
	return g
}

// ObliviousSource implements core.Oblivious by delegation.
func (r *Recorder) ObliviousSource() bool { return core.IsOblivious(r.src) }

// Rounds returns the number of rounds recorded so far.
func (r *Recorder) Rounds() int { return len(r.graphs) }

// Schedule returns the finite schedule of the rounds recorded so far.
func (r *Recorder) Schedule() (*Schedule, error) {
	return Recorded(r.n, r.graphs)
}

// Recorded returns the finite schedule replaying a captured graph
// sequence (e.g. core.Trace.Graphs of an adversary-driven run).
func Recorded(n int, graphs []graph.Graph) (*Schedule, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("scenario: recorded run played no rounds")
	}
	return New(n, graphs...)
}
