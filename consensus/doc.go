// Package consensus is the public facade of the repository: one session
// API, shared registries, and query helpers over the execution and
// analysis engines that implement Függer, Nowak, Schwarz, "Tight Bounds
// for Asymptotic and Approximate Consensus" (PODC 2018).
//
// Everything user-facing code needs is reachable from here; the engines
// themselves live under internal/ and are not part of the public API.
//
// # Sessions
//
// A Session is one configured execution: a network model, an algorithm,
// inputs, a pattern source (scheduler or adversary), a round budget, and
// an execution backend, all supplied as functional options:
//
//	s, err := consensus.New(
//		consensus.WithModel("deaf:4"),
//		consensus.WithAlgorithm("midpoint"),
//		consensus.WithAdversary("random"),
//		consensus.WithSeed(42),
//		consensus.WithRounds(12),
//	)
//	res, err := s.Run(ctx)            // full trace, context-cancellable
//	for snap, err := range s.Rounds(ctx) { ... } // streamed, no trace
//
// Run materializes the whole execution; Rounds streams one Snapshot per
// round without retaining history, so arbitrarily long executions run in
// constant memory. Sessions are stateless between runs (every Run starts
// from the initial inputs) and safe for concurrent use.
//
// # Registries
//
// The spec strings above resolve through four registries — Algorithms,
// Models, Adversaries, and Scenarios — which subsume the per-command
// string switches the repository previously carried. The registries are
// extensible at runtime (Register) and self-describing (Describe),
// which is what the query server's /api/v1/registry endpoint serves.
//
// # Scenarios
//
// A scenario (package repro/consensus/scenario) is a first-class
// round-by-round schedule of communication graphs. WithScenario pins a
// session to one — the run becomes an exact, backend-independent
// replay — and Session.RunRecorded captures any adversary-driven run as
// one. Scenario specs resolve through the Scenarios registry
// ("partitionheal:8,2,5", "churn:16,1,10,100,4", inline
// "trace:BASE64URL", ...), ride Sweep via RunSpec.Scenario (grids via
// ScenarioGrid, batched with per-run schedules, cached by trace
// fingerprint), and serve over HTTP via RunScenario and the
// /api/v1/scenario endpoint. cmd/scenario is the command-line face.
//
// # Batch and query APIs
//
// Sweep runs many sessions over a bounded worker pool with
// fingerprint-keyed result caching; Solvability, ValencyBounds,
// DecisionSweep, AsyncRun, and VectorRun expose the analysis engines,
// the approximate-consensus deciders, the asynchronous crash-fault
// simulator, and the multidimensional lift. Experiments lists and runs
// the paper-reproduction registry consumed by cmd/paperbench.
//
// # Serving
//
// Server is an http.Handler exposing run, sweep, solvability, valency,
// async, scenario, and experiment queries as JSON endpoints with
// per-query timeouts and a response cache; cmd/reprod serves it.
package consensus
