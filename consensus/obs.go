package consensus

import (
	"math"

	"repro/internal/obs"
	"repro/internal/valency"
)

// This file binds the sweep plane and the paper-level convergence
// instrument to the process-wide obs registry. Everything here rides
// obs.Default(): with REPRO_OBS=off every instrument is nil and the
// recording calls are no-ops. Sampling stays coarse by design — per
// sweep, per tile, per streamed round — never inside the kernel's
// fold loops (those series live in internal/core/obs.go).
var sweepObs = func() *sweepMetrics {
	r := obs.Default()
	if r == nil {
		return nil
	}
	m := &sweepMetrics{
		sweeps: r.Counter("repro_sweep_sweeps_total",
			"Sweep invocations (local execution, including worker shards)."),
		specs: r.Counter("repro_sweep_specs_total",
			"Run specs submitted to local sweeps."),
		cachedSpecs: r.Counter("repro_sweep_cached_specs_total",
			"Sweep specs served from the sweep cache without stepping."),
		failedSpecs: r.Counter("repro_sweep_failed_specs_total",
			"Sweep specs that finished with an error."),
		tiles: r.Counter("repro_sweep_tiles_total",
			"Batched tiles executed on the batch plane."),
		tileSeconds: r.Histogram("repro_sweep_tile_seconds",
			"Wall time of one batched sweep tile, prep to summaries.",
			obs.DurationBuckets()),
		contraction: r.Histogram("repro_run_contraction_rate",
			"Per-round diameter contraction rate d_t/d_{t-1} observed by streamed runs (Session.Rounds).",
			obs.RatioBuckets()),
	}
	registerValencyGauges(r)
	return m
}()

type sweepMetrics struct {
	sweeps      *obs.Counter
	specs       *obs.Counter
	cachedSpecs *obs.Counter
	failedSpecs *obs.Counter
	tiles       *obs.Counter
	tileSeconds *obs.Histogram
	contraction *obs.Histogram
}

// registerValencyGauges exposes the pooled valency engines' aggregate
// transposition-table accounting as scrape-time gauges: the pool is
// shared process-wide (one engine per model spec/params), so the sum
// over it is the process's valency cache state.
func registerValencyGauges(r *obs.Registry) {
	sum := func(pick func(valency.CacheStats) float64) func() float64 {
		return func() float64 {
			engineMu.Lock()
			defer engineMu.Unlock()
			total := 0.0
			for _, e := range enginePool {
				total += pick(e.Stats())
			}
			return total
		}
	}
	r.GaugeFunc("repro_valency_engines",
		"Pooled valency engines (one per model spec and parameter set).",
		func() float64 {
			engineMu.Lock()
			defer engineMu.Unlock()
			return float64(len(enginePool))
		})
	r.GaugeFunc("repro_valency_cache_hits",
		"Aggregate transposition-table hits across pooled valency engines.",
		sum(func(s valency.CacheStats) float64 {
			return float64(s.InnerHits + s.OuterHits + s.LimitHits)
		}))
	r.GaugeFunc("repro_valency_cache_misses",
		"Aggregate transposition-table misses across pooled valency engines.",
		sum(func(s valency.CacheStats) float64 {
			return float64(s.InnerMisses + s.OuterMisses + s.LimitMisses)
		}))
	r.GaugeFunc("repro_valency_cache_entries",
		"Aggregate memoized entries across pooled valency engines.",
		sum(func(s valency.CacheStats) float64 {
			return float64(s.InnerEntries + s.OuterEntries + s.LimitEntries)
		}))
}

// observeSweepOutcome records a finished local sweep's spec-level
// accounting. No-op when obs is off.
func observeSweepOutcome(results []SweepResult) {
	if sweepObs == nil {
		return
	}
	var cached, failed uint64
	for i := range results {
		if results[i].Cached {
			cached++
		}
		if results[i].Err != "" {
			failed++
		}
	}
	sweepObs.sweeps.Inc()
	sweepObs.specs.Add(uint64(len(results)))
	sweepObs.cachedSpecs.Add(cached)
	sweepObs.failedSpecs.Add(failed)
}

// observeContraction wraps a Rounds yield so every consecutive
// diameter pair feeds the contraction-rate histogram — the ICALP'15
// convergence quantity: rate 1.0 means the round contracted nothing,
// +Inf (rate > 1) means expansion. Runs already at diameter 0 stop
// observing. When obs is off the original yield is returned untouched.
func observeContraction(yield func(Snapshot, error) bool) func(Snapshot, error) bool {
	if sweepObs == nil {
		return yield
	}
	prev := math.NaN()
	return func(snap Snapshot, err error) bool {
		if err == nil {
			if prev > 0 {
				sweepObs.contraction.Observe(snap.Diameter / prev)
			}
			prev = snap.Diameter
		}
		return yield(snap, err)
	}
}
