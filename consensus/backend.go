package consensus

import (
	"flag"
	"fmt"

	"repro/internal/core"
)

// Backend names an execution backend: "auto" (dense kernel where
// supported, the default), "agents" (the interface-based reference
// path), or "dense". The empty string means "inherit the process
// default", which is "auto" unless overridden by the REPRO_BACKEND
// environment variable or SetProcessBackend.
type Backend string

// The recognized backends.
const (
	BackendAuto   Backend = "auto"
	BackendAgents Backend = "agents"
	BackendDense  Backend = "dense"
)

// resolve maps a Backend to the engine-level selection; "" inherits the
// process default.
func (b Backend) resolve() (core.Backend, error) {
	if b == "" {
		return core.CurrentBackend(), nil
	}
	return core.ParseBackend(string(b))
}

// Validate reports whether the backend name is recognized ("" included).
func (b Backend) Validate() error {
	_, err := b.resolve()
	return err
}

// ProcessBackend returns the current process-wide default backend.
func ProcessBackend() Backend { return Backend(core.CurrentBackend().String()) }

// SetProcessBackend sets the process-wide default backend (the one
// sessions with no explicit WithBackend use) and returns the previous
// value. It errors on unknown names; the empty string is a no-op.
func SetProcessBackend(b Backend) (Backend, error) {
	if b == "" {
		return ProcessBackend(), nil
	}
	cb, err := core.ParseBackend(string(b))
	if err != nil {
		return "", err
	}
	return Backend(core.SetDefaultBackend(cb).String()), nil
}

// BackendSelection is the result of BackendFlag: a pending -backend flag
// value to be installed after flag parsing.
type BackendSelection struct {
	value string
}

// BackendFlag registers the canonical "-backend" flag on fs and returns
// the selection to Install after parsing. It is the one shared backend-
// selection helper for command-line tools (previously copy-pasted per
// cmd): precedence is explicit flag > REPRO_BACKEND environment variable
// > "auto".
func BackendFlag(fs *flag.FlagSet) *BackendSelection {
	sel := &BackendSelection{}
	fs.StringVar(&sel.value, "backend", "",
		"execution backend: auto | agents | dense (default $REPRO_BACKEND or auto)")
	return sel
}

// Install applies the parsed flag value to the process default. When the
// flag was not given, the process default (REPRO_BACKEND or auto) is left
// untouched.
func (s *BackendSelection) Install() error {
	if s.value == "" {
		return nil
	}
	if _, err := SetProcessBackend(Backend(s.value)); err != nil {
		return fmt.Errorf("consensus: -backend: %v", err)
	}
	return nil
}

// Value returns the backend the selection resolves to right now.
func (s *BackendSelection) Value() Backend {
	if s.value == "" {
		return ProcessBackend()
	}
	return Backend(s.value)
}
